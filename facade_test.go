package damq_test

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"damq"
)

// tinyScale keeps facade-level experiment tests fast.
var tinyScale = damq.ExperimentScale{Warmup: 200, Measure: 1200, Seed: 2}

func TestReproduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several simulations")
	}
	if _, err := damq.ReproduceTable3(tinyScale); err != nil {
		t.Errorf("table3: %v", err)
	}
	rows4, err := damq.ReproduceTable4(tinyScale)
	if err != nil || len(rows4) != 4 {
		t.Errorf("table4: %v (%d rows)", err, len(rows4))
	}
	rows5, err := damq.ReproduceTable5(tinyScale)
	if err != nil || len(rows5) != 6 {
		t.Errorf("table5: %v (%d rows)", err, len(rows5))
	}
	rows6, err := damq.ReproduceTable6(tinyScale)
	if err != nil || len(rows6) != 4 {
		t.Errorf("table6: %v (%d rows)", err, len(rows6))
	}
	if _, err := damq.ReproduceVarLen(tinyScale); err != nil {
		t.Errorf("varlen: %v", err)
	}
	if _, err := damq.ReproduceAsync(tinyScale); err != nil {
		t.Errorf("async: %v", err)
	}
}

func TestReproduceFigure3AndSVG(t *testing.T) {
	series, err := damq.ReproduceFigure3([]damq.BufferKind{damq.DAMQ}, 4, tinyScale)
	if err != nil || len(series) != 1 {
		t.Fatalf("figure3: %v (%d series)", err, len(series))
	}
	txt := damq.RenderFigure3(series)
	if !strings.Contains(txt, "DAMQ/4") {
		t.Error("text render missing series")
	}
	svg := damq.RenderFigure3SVG(series, "test figure")
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "test figure") {
		t.Error("SVG render malformed")
	}
}

func TestAblationFacades(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several simulations")
	}
	if rows, err := damq.AblateConnectivity(tinyScale); err != nil || len(rows) != 4 {
		t.Errorf("connectivity: %v (%d rows)", err, len(rows))
	}
	if rows, err := damq.AblateArbitration(tinyScale); err != nil || len(rows) != 4 {
		t.Errorf("arbitration: %v (%d rows)", err, len(rows))
	}
	if rows, err := damq.AblateBurstiness(tinyScale); err != nil || len(rows) != 4 {
		t.Errorf("burstiness: %v (%d rows)", err, len(rows))
	}
}

func TestRunAsyncNetworkFacade(t *testing.T) {
	res, err := damq.RunAsyncNetwork(damq.AsyncNetworkConfig{
		BufferKind: damq.DAMQ,
		Load:       0.3,
		Warmup:     2000,
		Measure:    10000,
		Seed:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LinkUtilization < 0.25 || res.LinkUtilization > 0.35 {
		t.Fatalf("utilization = %v", res.LinkUtilization)
	}
	if _, err := damq.RunAsyncNetwork(damq.AsyncNetworkConfig{Load: 2}); err == nil {
		t.Fatal("accepted invalid load")
	}
}

func TestChipOmegaFacade(t *testing.T) {
	net, err := damq.NewChipOmegaNetwork(damq.ChipOmegaConfig{Inputs: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Send(1, 14, []byte{9, 9, 9}, 0); err != nil {
		t.Fatal(err)
	}
	net.Run(60)
	if got := net.Delivered(14); len(got) != 1 || len(got[0].Data) != 3 {
		t.Fatalf("delivery wrong: %+v", got)
	}
	if _, err := damq.NewChipOmegaNetwork(damq.ChipOmegaConfig{Inputs: 17}); err == nil {
		t.Fatal("accepted bad width")
	}
}

func TestReproduceTable2Facade(t *testing.T) {
	if testing.Short() {
		t.Skip("solves 128 chains")
	}
	res, err := damq.ReproduceTable2()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 16 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

// optionTestConfig is a small deterministic network config shared by the
// option-combination tests.
func optionTestConfig() damq.NetworkConfig {
	return damq.NetworkConfig{
		Inputs:        16,
		BufferKind:    damq.DAMQ,
		Capacity:      4,
		Policy:        damq.SmartArbitration,
		Protocol:      damq.Blocking,
		Traffic:       damq.TrafficSpec{Kind: damq.UniformTraffic, Load: 0.6},
		WarmupCycles:  100,
		MeasureCycles: 400,
		Seed:          3,
	}
}

func TestFacadeSentinelErrors(t *testing.T) {
	if k, err := damq.ParseBufferKind("DaMq"); err != nil || k != damq.DAMQ {
		t.Errorf("case-insensitive parse failed: %v %v", k, err)
	}
	if _, err := damq.ParseBufferKind("ring"); !errors.Is(err, damq.ErrBadKind) {
		t.Errorf("bad kind error = %v, want ErrBadKind", err)
	} else if !strings.Contains(err.Error(), "damq") || !strings.Contains(err.Error(), "fifo") {
		t.Errorf("bad kind error does not list valid names: %v", err)
	}
	if p, err := damq.ParseProtocol("Blocking"); err != nil || p != damq.Blocking {
		t.Errorf("protocol parse: %v %v", p, err)
	}
	if _, err := damq.ParseProtocol("wormhole"); !errors.Is(err, damq.ErrBadProtocol) {
		t.Errorf("bad protocol error = %v, want ErrBadProtocol", err)
	}
	if p, err := damq.ParseArbitrationPolicy("SMART"); err != nil || p != damq.SmartArbitration {
		t.Errorf("policy parse: %v %v", p, err)
	}
	if _, err := damq.ParseArbitrationPolicy("psychic"); !errors.Is(err, damq.ErrBadPolicy) {
		t.Errorf("bad policy error = %v, want ErrBadPolicy", err)
	}

	badSwitch := damq.SwitchConfig{
		Ports: 4, BufferKind: damq.SAMQ, Capacity: 7, Policy: damq.SmartArbitration,
	}
	if err := badSwitch.Validate(); !errors.Is(err, damq.ErrBadCapacity) {
		t.Errorf("switch validate = %v, want ErrBadCapacity", err)
	}
	if _, err := damq.NewSwitch(badSwitch); !errors.Is(err, damq.ErrBadCapacity) {
		t.Errorf("NewSwitch = %v, want ErrBadCapacity", err)
	}
	if err := (damq.SwitchConfig{BufferKind: damq.DAMQ, Capacity: 4}).Validate(); !errors.Is(err, damq.ErrBadPorts) {
		t.Errorf("zero-port switch = %v, want ErrBadPorts", err)
	}

	if err := (damq.NetworkConfig{}).Validate(); err != nil {
		t.Errorf("zero network config must validate (defaults fill it): %v", err)
	}
	cfg := optionTestConfig()
	cfg.Traffic.Load = 2
	if _, err := damq.RunNetwork(cfg); !errors.Is(err, damq.ErrBadLoad) {
		t.Errorf("overload = %v, want ErrBadLoad", err)
	}
	if _, err := damq.NewNetwork(damq.NetworkConfig{Radix: 3}); !errors.Is(err, damq.ErrBadRadix) {
		t.Errorf("radix 3 = %v, want ErrBadRadix", err)
	}
	cfg = optionTestConfig()
	cfg.Traffic = damq.TrafficSpec{Kind: damq.HotSpotTraffic, Load: 0.5, HotFraction: 2}
	if _, err := damq.NewNetwork(cfg); !errors.Is(err, damq.ErrBadTraffic) {
		t.Errorf("hot fraction 2 = %v, want ErrBadTraffic", err)
	}
}

func TestFacadeNetworkOptions(t *testing.T) {
	base, err := damq.RunNetwork(optionTestConfig())
	if err != nil {
		t.Fatal(err)
	}

	// WithSeed overrides Config.Seed: seeding via option must reproduce
	// the config-seeded run exactly.
	reseeded := optionTestConfig()
	reseeded.Seed = 999
	viaOpt, err := damq.RunNetwork(reseeded, damq.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, viaOpt) {
		t.Error("WithSeed(3) does not reproduce the Seed:3 run")
	}

	// WithObserver collects metrics without perturbing results.
	o := damq.NewObserver()
	o.SetInterval(50)
	observed, err := damq.RunNetwork(optionTestConfig(), damq.WithObserver(o))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, observed) {
		t.Error("observed run diverged from unobserved run")
	}
	raw, err := o.Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := damq.ValidateMetricsJSON(raw); err != nil {
		t.Errorf("snapshot invalid: %v", err)
	}
	snap, err := damq.DecodeMetrics(raw)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := snap.Counter("net.packets.delivered"); v != base.Delivered {
		t.Errorf("delivered counter = %d, want %d", v, base.Delivered)
	}
	if len(snap.Series) == 0 {
		t.Error("interval series empty despite SetInterval")
	}

	// Options combine: observer + seed override together.
	o2 := damq.NewObserver()
	both, err := damq.RunNetwork(reseeded, damq.WithObserver(o2), damq.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, both) {
		t.Error("combined WithObserver+WithSeed diverged")
	}
	if v, _ := o2.Snapshot().Counter("net.packets.delivered"); v != base.Delivered {
		t.Error("combined-option observer missed deliveries")
	}

	// A nil observer option is a no-op, not a crash.
	if _, err := damq.RunNetwork(optionTestConfig(), damq.WithObserver(nil)); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeObservedBufferAndChip(t *testing.T) {
	o := damq.NewObserver()
	buf, err := damq.NewBuffer(damq.DAMQ, 4, 2, damq.WithObserver(o))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		p := &damq.Packet{OutPort: i % 2, Slots: 1}
		if err := buf.Accept(p); (err != nil) != (i == 2) {
			t.Fatalf("accept %d: %v", i, err)
		}
	}
	buf.Pop(0)
	snap := o.Snapshot()
	for name, want := range map[string]int64{
		"buffer.accepted": 2,
		"buffer.rejected": 1,
		"buffer.popped":   1,
	} {
		if got, _ := snap.Counter(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}

	co := damq.NewObserver()
	chip := damq.NewChip(damq.ChipConfig{}, damq.WithObserver(co))
	damq.NewChipNetwork(chip).Run(7)
	if v, _ := co.Snapshot().Counter("chip.cycles"); v != 7 {
		t.Errorf("chip.cycles = %d, want 7", v)
	}
}

func TestFacadeExperimentOptions(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several simulations")
	}
	// WithScale replaces the base scale; WithSeed then overrides its seed,
	// so both spellings of "tinyScale at seed 2" agree.
	direct, err := damq.ReproduceFigure3([]damq.BufferKind{damq.DAMQ}, 4, tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	bumped := tinyScale
	bumped.Seed = 77
	viaOpts, err := damq.ReproduceFigure3([]damq.BufferKind{damq.DAMQ}, 4, damq.QuickScale,
		damq.WithScale(bumped), damq.WithSeed(tinyScale.Seed), damq.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, viaOpts) {
		t.Error("option-built scale does not reproduce the direct scale")
	}
	if _, err := damq.ReproduceTable2(damq.WithWorkers(2)); err != nil {
		t.Errorf("table2 with workers: %v", err)
	}
}

func TestBufferKindStrings(t *testing.T) {
	kinds := damq.BufferKinds()
	if len(kinds) != 4 {
		t.Fatalf("kinds = %v", kinds)
	}
	if damq.DAFC.String() != "DAFC" {
		t.Fatal("DAFC name wrong")
	}
	if damq.Blocking.String() != "blocking" || damq.Discarding.String() != "discarding" {
		t.Fatal("protocol names wrong")
	}
	if damq.SmartArbitration.String() != "smart" || damq.DumbArbitration.String() != "dumb" {
		t.Fatal("policy names wrong")
	}
}
