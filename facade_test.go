package damq_test

import (
	"strings"
	"testing"

	"damq"
)

// tinyScale keeps facade-level experiment tests fast.
var tinyScale = damq.ExperimentScale{Warmup: 200, Measure: 1200, Seed: 2}

func TestReproduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several simulations")
	}
	if _, err := damq.ReproduceTable3(tinyScale); err != nil {
		t.Errorf("table3: %v", err)
	}
	rows4, err := damq.ReproduceTable4(tinyScale)
	if err != nil || len(rows4) != 4 {
		t.Errorf("table4: %v (%d rows)", err, len(rows4))
	}
	rows5, err := damq.ReproduceTable5(tinyScale)
	if err != nil || len(rows5) != 6 {
		t.Errorf("table5: %v (%d rows)", err, len(rows5))
	}
	rows6, err := damq.ReproduceTable6(tinyScale)
	if err != nil || len(rows6) != 4 {
		t.Errorf("table6: %v (%d rows)", err, len(rows6))
	}
	if _, err := damq.ReproduceVarLen(tinyScale); err != nil {
		t.Errorf("varlen: %v", err)
	}
	if _, err := damq.ReproduceAsync(tinyScale); err != nil {
		t.Errorf("async: %v", err)
	}
}

func TestReproduceFigure3AndSVG(t *testing.T) {
	series, err := damq.ReproduceFigure3([]damq.BufferKind{damq.DAMQ}, 4, tinyScale)
	if err != nil || len(series) != 1 {
		t.Fatalf("figure3: %v (%d series)", err, len(series))
	}
	txt := damq.RenderFigure3(series)
	if !strings.Contains(txt, "DAMQ/4") {
		t.Error("text render missing series")
	}
	svg := damq.RenderFigure3SVG(series, "test figure")
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "test figure") {
		t.Error("SVG render malformed")
	}
}

func TestAblationFacades(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several simulations")
	}
	if rows, err := damq.AblateConnectivity(tinyScale); err != nil || len(rows) != 4 {
		t.Errorf("connectivity: %v (%d rows)", err, len(rows))
	}
	if rows, err := damq.AblateArbitration(tinyScale); err != nil || len(rows) != 4 {
		t.Errorf("arbitration: %v (%d rows)", err, len(rows))
	}
	if rows, err := damq.AblateBurstiness(tinyScale); err != nil || len(rows) != 4 {
		t.Errorf("burstiness: %v (%d rows)", err, len(rows))
	}
}

func TestRunAsyncNetworkFacade(t *testing.T) {
	res, err := damq.RunAsyncNetwork(damq.AsyncNetworkConfig{
		BufferKind: damq.DAMQ,
		Load:       0.3,
		Warmup:     2000,
		Measure:    10000,
		Seed:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LinkUtilization < 0.25 || res.LinkUtilization > 0.35 {
		t.Fatalf("utilization = %v", res.LinkUtilization)
	}
	if _, err := damq.RunAsyncNetwork(damq.AsyncNetworkConfig{Load: 2}); err == nil {
		t.Fatal("accepted invalid load")
	}
}

func TestChipOmegaFacade(t *testing.T) {
	net, err := damq.NewChipOmegaNetwork(damq.ChipOmegaConfig{Inputs: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Send(1, 14, []byte{9, 9, 9}, 0); err != nil {
		t.Fatal(err)
	}
	net.Run(60)
	if got := net.Delivered(14); len(got) != 1 || len(got[0].Data) != 3 {
		t.Fatalf("delivery wrong: %+v", got)
	}
	if _, err := damq.NewChipOmegaNetwork(damq.ChipOmegaConfig{Inputs: 17}); err == nil {
		t.Fatal("accepted bad width")
	}
}

func TestReproduceTable2Facade(t *testing.T) {
	if testing.Short() {
		t.Skip("solves 128 chains")
	}
	res, err := damq.ReproduceTable2()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 16 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestBufferKindStrings(t *testing.T) {
	kinds := damq.BufferKinds()
	if len(kinds) != 4 {
		t.Fatalf("kinds = %v", kinds)
	}
	if damq.DAFC.String() != "DAFC" {
		t.Fatal("DAFC name wrong")
	}
	if damq.Blocking.String() != "blocking" || damq.Discarding.String() != "discarding" {
		t.Fatal("protocol names wrong")
	}
	if damq.SmartArbitration.String() != "smart" || damq.DumbArbitration.String() != "dumb" {
		t.Fatal("policy names wrong")
	}
}
