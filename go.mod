module damq

go 1.22
