package damq_test

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"damq"
)

// TestWithFaultsNetwork: the option arms link faults on a network run and
// the losses surface as FaultedInNet; a disabled config is equivalent to
// no option at all.
func TestWithFaultsNetwork(t *testing.T) {
	cfg := optionTestConfig()
	cfg.Protocol = damq.Discarding
	base, err := damq.RunNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}

	fc := damq.FaultConfig{Seed: 9, LinkTransientRate: 0.01}
	o := damq.NewObserver()
	faulted, err := damq.RunNetwork(cfg, damq.WithFaults(fc), damq.WithObserver(o))
	if err != nil {
		t.Fatal(err)
	}
	if faulted.FaultedInNet == 0 {
		t.Fatal("no faulted discards at link rate 0.01")
	}
	if drops, ok := o.Snapshot().Counter("fault.net.link_drops"); !ok || drops == 0 {
		t.Fatalf("fault.net.link_drops = %d, %v", drops, ok)
	}

	// Replaying the same fault seed reproduces the run exactly.
	again, err := damq.RunNetwork(cfg, damq.WithFaults(fc))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(faulted, again) {
		t.Fatal("same fault seed did not replay identically")
	}

	// All-rates-zero WithFaults is bit-identical to no option.
	off, err := damq.RunNetwork(cfg, damq.WithFaults(damq.FaultConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, off) {
		t.Fatal("disabled WithFaults perturbed the run")
	}

	// Invalid rates surface the sentinel through the constructor.
	if _, err := damq.RunNetwork(cfg, damq.WithFaults(damq.FaultConfig{LinkDeadRate: -1})); !errors.Is(err, damq.ErrBadFaultRate) {
		t.Fatalf("bad rate error = %v, want ErrBadFaultRate", err)
	}
}

// TestWithFaultsChip: the option arms wire corruption + parity + NACK on
// a chip, visible through the fault.* metrics and the retransmit ledger.
func TestWithFaultsChip(t *testing.T) {
	o := damq.NewObserver()
	chip := damq.NewChip(damq.ChipConfig{},
		damq.WithObserver(o),
		damq.WithFaults(damq.FaultConfig{Seed: 4, WireCorruptRate: 0.05, RetryLimit: 4}))
	chip.In(0).Router().Set(0x01, damq.Route{Out: 1, NewHeader: 0x02})
	drv := damq.NewChipDriver(chip.InLink(0),
		damq.WithObserver(o),
		damq.WithFaults(damq.FaultConfig{RetryLimit: 4, RetryBackoff: 2}))
	for i := 0; i < 30; i++ {
		drv.Queue(0x01, []byte{byte(i), 0x5A}, 0)
	}
	for i := 0; i < 6000 && drv.Pending() > 0; i++ {
		drv.Tick()
		chip.Tick()
	}
	snap := o.Snapshot()
	corrupted, _ := snap.Counter("fault.wire.corrupted")
	if corrupted == 0 {
		t.Fatal("no corruption counted at rate 0.05")
	}
	nacks, _ := snap.Counter("fault.wire.nacks")
	retries, _ := snap.Counter("fault.driver.retries")
	gaveup, _ := snap.Counter("fault.driver.gaveup")
	if nacks != retries+gaveup {
		t.Fatalf("NACK ledger unbalanced in metrics: %d != %d + %d", nacks, retries, gaveup)
	}
}

// TestWithFaultsBufferStuckAtBirth: slots whose failure draw lands on
// cycle 0 are quarantined before the buffer is handed out.
func TestWithFaultsBufferStuckAtBirth(t *testing.T) {
	buf, err := damq.NewBuffer(damq.DAMQ, 4, 64,
		damq.WithFaults(damq.FaultConfig{Seed: 11, SlotStuckRate: 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	q, ok := buf.(interface {
		Quarantined() int
		CheckInvariants() error
	})
	if !ok {
		t.Fatal("DAMQ buffer lost its quarantine surface through the facade")
	}
	if q.Quarantined() == 0 {
		t.Fatal("no slot stuck at birth at rate 0.5 over 64 slots")
	}
	if err := q.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Organizations without a slot pool ignore slot faults.
	if _, err := damq.NewBuffer(damq.FIFO, 4, 64,
		damq.WithFaults(damq.FaultConfig{SlotStuckRate: 0.5})); err != nil {
		t.Fatal(err)
	}
	if _, err := damq.NewBuffer(damq.DAMQ, 4, 64,
		damq.WithFaults(damq.FaultConfig{SlotStuckRate: 2})); !errors.Is(err, damq.ErrBadFaultRate) {
		t.Fatalf("bad rate error = %v, want ErrBadFaultRate", err)
	}
}

// TestRunNetworkCtx: an uncancelled context reproduces Run exactly; a
// pre-cancelled one returns a partial result that says so.
func TestRunNetworkCtx(t *testing.T) {
	cfg := optionTestConfig()
	base, err := damq.RunNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full, err := damq.RunNetworkCtx(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, full) {
		t.Fatal("RunNetworkCtx with live context diverged from Run")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	partial, err := damq.RunNetworkCtx(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if partial == nil {
		t.Fatal("cancelled run returned no partial result")
	}
	if partial.Config.MeasureCycles >= cfg.MeasureCycles {
		t.Fatalf("cancelled run claims %d measured cycles (configured %d)",
			partial.Config.MeasureCycles, cfg.MeasureCycles)
	}
}

// TestFaultParsersFacade exercises the re-exported spec/kind parsers and
// their sentinels.
func TestFaultParsersFacade(t *testing.T) {
	fc, err := damq.ParseFaultSpec("SlotStuck=1e-4, linktransient=0.001, seed=7, retries=3, backoff=4")
	if err != nil {
		t.Fatal(err)
	}
	want := damq.FaultConfig{
		Seed: 7, SlotStuckRate: 1e-4, LinkTransientRate: 0.001,
		RetryLimit: 3, RetryBackoff: 4,
	}
	if fc != want {
		t.Fatalf("parsed %+v, want %+v", fc, want)
	}
	if !fc.Enabled() {
		t.Fatal("parsed config not enabled")
	}
	if _, err := damq.ParseFaultSpec("wirecorrupt=3"); !errors.Is(err, damq.ErrBadFaultRate) {
		t.Fatalf("rate 3 error = %v, want ErrBadFaultRate", err)
	}
	if _, err := damq.ParseFaultSpec("retries=-1"); !errors.Is(err, damq.ErrBadRetryLimit) {
		t.Fatalf("retries -1 error = %v, want ErrBadRetryLimit", err)
	}
	if _, err := damq.ParseFaultSpec("gamma=1"); !errors.Is(err, damq.ErrBadKind) {
		t.Fatalf("unknown kind error = %v, want ErrBadKind", err)
	}

	if k, err := damq.ParseFaultKind("LINKDEAD"); err != nil || k != damq.FaultLinkDead {
		t.Fatalf("ParseFaultKind = %v, %v", k, err)
	}
	if _, err := damq.ParseFaultKind("meteor"); !errors.Is(err, damq.ErrBadKind) {
		t.Fatalf("unknown kind = %v, want ErrBadKind", err)
	} else if !strings.Contains(err.Error(), "slotstuck") {
		t.Fatalf("error does not list valid names: %v", err)
	}
	if n := len(damq.FaultKinds()); n != 4 {
		t.Fatalf("FaultKinds() = %d kinds", n)
	}
}
