package damq

// Option configures a facade constructor or experiment runner. Options
// carry the cross-cutting knobs (observability, seeding, parallelism,
// run length) so they do not have to widen every Config struct; bare
// Configs with no options remain the zero-cost default path.
type Option func(*options)

// options is the resolved option set. Boolean *Set flags distinguish
// "explicitly chosen zero" from "not given", so WithSeed(0) and
// WithWorkers(1) behave as written rather than falling back to defaults.
type options struct {
	observer   *Observer
	seed       uint64
	seedSet    bool
	workers    int
	workersSet bool
	scale      ExperimentScale
	scaleSet   bool
	faults     FaultConfig
	faultsSet  bool
}

// WithObserver attaches an observer: the constructed simulation, buffer,
// switch, or chip registers its instruments in o's registry and updates
// them as it runs. Passing nil is a no-op (observability stays off).
// Observed and unobserved runs of the same config produce bit-identical
// results; the probes consume no randomness.
func WithObserver(o *Observer) Option {
	return func(op *options) { op.observer = o }
}

// WithSeed overrides the PRNG seed of the constructed simulation or
// experiment scale, taking precedence over both Config.Seed and a
// WithScale seed.
func WithSeed(seed uint64) Option {
	return func(op *options) {
		op.seed = seed
		op.seedSet = true
	}
}

// WithWorkers sets the parallelism of whatever it is applied to, and it
// means two things depending on the target:
//
//   - Experiment runners (ReproduceTable2..6, sweeps, ablations): how many
//     simulation points run concurrently — fan-out across runs.
//   - NewNetwork/RunNetwork and the other single-simulation constructors:
//     how many cores step that one network — the run is sharded into
//     contiguous switch ranges per stage, stepped in barrier-separated
//     phases (NetworkConfig.Workers carries the same knob).
//
// In both meanings 0 = GOMAXPROCS and 1 = serial, and results are
// byte-identical at any worker count: sweeps because each run owns its
// RNG, intra-run sharding because the shard partition and its RNG streams
// are pure functions of the topology and seed. A count exceeding the
// network's switches per stage fails validation with ErrBadWorkers.
func WithWorkers(n int) Option {
	return func(op *options) {
		op.workers = n
		op.workersSet = true
	}
}

// WithFaults arms deterministic fault injection on the constructed
// simulation, chip, or buffer: stuck buffer slots are quarantined out of
// the free lists (capacity shrinks, structure stays sound), corrupted
// wire bytes are caught by parity and NACK-retransmitted, and dead or
// flapping network links turn their traffic into counted faulted
// discards. Fault decisions are pure functions of (seed, site, cycle),
// so a schedule replays byte-for-byte; a disabled config (all rates
// zero) is exactly equivalent to omitting the option.
func WithFaults(fc FaultConfig) Option {
	return func(op *options) {
		op.faults = fc
		op.faultsSet = true
	}
}

// WithScale replaces an experiment's scale wholesale (run length, seed,
// workers). WithSeed and WithWorkers, if also given, override the
// corresponding fields of this scale regardless of option order.
func WithScale(sc ExperimentScale) Option {
	return func(op *options) {
		op.scale = sc
		op.scaleSet = true
	}
}

// applyOptions folds opts into a resolved set.
func applyOptions(opts []Option) options {
	var op options
	for _, o := range opts {
		if o != nil {
			o(&op)
		}
	}
	return op
}

// scaleFor resolves the effective experiment scale: base unless WithScale
// replaced it, with WithSeed/WithWorkers overrides applied last.
func (op options) scaleFor(base ExperimentScale) ExperimentScale {
	sc := base
	if op.scaleSet {
		sc = op.scale
	}
	if op.seedSet {
		sc.Seed = op.seed
	}
	if op.workersSet {
		sc.Workers = op.workers
	}
	return sc
}
