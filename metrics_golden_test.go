package damq_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"damq"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestMetricsSnapshotGolden pins the -metrics JSON contract byte for
// byte: metric names, histogram shapes, the time-series record layout,
// and the deterministic values of one small fixed-seed run. A diff here
// means the exported metrics schema (or the simulation itself) changed;
// regenerate with `go test -run MetricsSnapshotGolden -update .` and
// review the diff as an API change.
func TestMetricsSnapshotGolden(t *testing.T) {
	o := damq.NewObserver()
	o.SetInterval(50)
	_, err := damq.RunNetwork(damq.NetworkConfig{
		Inputs:        16,
		BufferKind:    damq.DAMQ,
		Capacity:      4,
		Policy:        damq.SmartArbitration,
		Protocol:      damq.Discarding,
		Traffic:       damq.TrafficSpec{Kind: damq.UniformTraffic, Load: 0.9},
		WarmupCycles:  50,
		MeasureCycles: 200,
		Seed:          9,
	}, damq.WithObserver(o))
	if err != nil {
		t.Fatal(err)
	}
	got, err := o.Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := damq.ValidateMetricsJSON(got); err != nil {
		t.Fatalf("snapshot fails its own validator: %v", err)
	}

	path := filepath.Join("testdata", "metrics_golden.json")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("metrics snapshot diverges from %s (run with -update to regenerate):\ngot %d bytes, want %d", path, len(got), len(want))
	}
}
