// Package markov provides a small exact Markov-chain engine: reachable
// state enumeration from a model's transition function, a sparse
// transition matrix, steady-state solution, and expected reward rates.
//
// The paper (Section 4.1) evaluates 2×2 discarding switches by Markov
// analysis; package markov2x2 defines the per-buffer-type models, and this
// package does the numerical work. The engine is generic over any finite
// discrete-time chain whose states the model encodes as uint64 keys.
package markov

import (
	"fmt"
	"math"
	"sort"
)

// Arc is one outgoing transition: with probability P the chain moves to
// state To, collecting the per-transition Rewards (e.g. packets arrived,
// packets discarded).
type Arc struct {
	To      uint64
	P       float64
	Rewards []float64
}

// Model defines a chain. Implementations must be deterministic: Next must
// always return the same distribution for the same state.
type Model interface {
	// Initial is the key of the start state (typically "empty switch").
	Initial() uint64
	// Next appends state s's outgoing arcs to dst and returns it. The
	// arcs' probabilities must sum to 1 (within tolerance); the engine
	// validates this during enumeration.
	Next(s uint64, dst []Arc) []Arc
	// NumRewards is the length of every arc's Rewards vector.
	NumRewards() int
}

// Chain is an enumerated, indexed model ready to solve.
type Chain struct {
	keys   []uint64       // state index -> key
	index  map[uint64]int // key -> state index
	rows   [][]entry      // sparse rows: rows[i] = outgoing arcs of state i
	reward [][]float64    // reward[i][r] = expected reward r leaving state i
	nr     int
}

type entry struct {
	to int
	p  float64
}

// probTol is the tolerance for per-state probability normalization.
const probTol = 1e-9

// Build enumerates all states reachable from model.Initial and indexes
// the transition structure. It fails if probabilities do not normalize or
// reward vectors have inconsistent length. maxStates guards against
// runaway models (0 means no limit).
func Build(model Model, maxStates int) (*Chain, error) {
	c := &Chain{
		index: make(map[uint64]int),
		nr:    model.NumRewards(),
	}
	var frontier []uint64
	add := func(key uint64) int {
		if i, ok := c.index[key]; ok {
			return i
		}
		i := len(c.keys)
		c.keys = append(c.keys, key)
		c.index[key] = i
		c.rows = append(c.rows, nil)
		c.reward = append(c.reward, make([]float64, c.nr))
		frontier = append(frontier, key)
		return i
	}
	add(model.Initial())

	var arcs []Arc
	for len(frontier) > 0 {
		key := frontier[0]
		frontier = frontier[1:]
		i := c.index[key]
		arcs = model.Next(key, arcs[:0])
		if len(arcs) == 0 {
			return nil, fmt.Errorf("markov: state %#x has no transitions", key)
		}
		total := 0.0
		// Merge duplicate targets while building the row.
		rowIdx := make(map[int]int, len(arcs))
		for _, a := range arcs {
			if a.P < 0 {
				return nil, fmt.Errorf("markov: state %#x has negative probability arc", key)
			}
			if a.P == 0 {
				continue
			}
			if len(a.Rewards) != c.nr {
				return nil, fmt.Errorf("markov: state %#x arc has %d rewards, model declares %d",
					key, len(a.Rewards), c.nr)
			}
			total += a.P
			j := add(a.To)
			if k, ok := rowIdx[j]; ok {
				c.rows[i][k].p += a.P
			} else {
				rowIdx[j] = len(c.rows[i])
				c.rows[i] = append(c.rows[i], entry{to: j, p: a.P})
			}
			for r, v := range a.Rewards {
				c.reward[i][r] += a.P * v
			}
		}
		if math.Abs(total-1) > probTol {
			return nil, fmt.Errorf("markov: state %#x probabilities sum to %v", key, total)
		}
		if maxStates > 0 && len(c.keys) > maxStates {
			return nil, fmt.Errorf("markov: more than %d reachable states", maxStates)
		}
	}
	return c, nil
}

// NumStates reports the size of the reachable state space.
func (c *Chain) NumStates() int { return len(c.keys) }

// Key returns the model key of state index i.
func (c *Chain) Key(i int) uint64 { return c.keys[i] }

// SolveOpts tunes the steady-state solver.
type SolveOpts struct {
	// Tol is the convergence threshold on the L1 change of the
	// distribution per iteration. Default 1e-12.
	Tol float64
	// MaxIter bounds iterations. Default 1_000_000.
	MaxIter int
}

func (o SolveOpts) withDefaults() SolveOpts {
	if o.Tol <= 0 {
		o.Tol = 1e-12
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 1_000_000
	}
	return o
}

// Steady computes the stationary distribution by power iteration
// (pi <- pi P). The chains arising from the switch models are finite,
// irreducible and aperiodic (self-loops exist at the empty state for
// load < 1), so the iteration converges geometrically.
func (c *Chain) Steady(opts SolveOpts) ([]float64, error) {
	opts = opts.withDefaults()
	n := len(c.keys)
	if n == 0 {
		return nil, fmt.Errorf("markov: empty chain")
	}
	pi := make([]float64, n)
	next := make([]float64, n)
	pi[0] = 1
	for iter := 0; iter < opts.MaxIter; iter++ {
		for i := range next {
			next[i] = 0
		}
		for i, row := range c.rows {
			m := pi[i]
			if m == 0 {
				continue
			}
			for _, e := range row {
				next[e.to] += m * e.p
			}
		}
		// Normalize to shed rounding drift, then test convergence.
		sum := 0.0
		for _, v := range next {
			sum += v
		}
		delta := 0.0
		for i := range next {
			next[i] /= sum
			delta += math.Abs(next[i] - pi[i])
		}
		pi, next = next, pi
		if delta < opts.Tol {
			return pi, nil
		}
	}
	return nil, fmt.Errorf("markov: power iteration did not converge in %d iterations", opts.MaxIter)
}

// RewardRates returns the long-run average reward per step for each reward
// dimension under stationary distribution pi.
func (c *Chain) RewardRates(pi []float64) []float64 {
	out := make([]float64, c.nr)
	for i, w := range pi {
		for r := 0; r < c.nr; r++ {
			out[r] += w * c.reward[i][r]
		}
	}
	return out
}

// StateProb returns the stationary probability of the state with the given
// model key (0 if unreachable).
func (c *Chain) StateProb(pi []float64, key uint64) float64 {
	if i, ok := c.index[key]; ok {
		return pi[i]
	}
	return 0
}

// TopStates returns the k most probable states (key, probability), for
// diagnostics and tests.
func (c *Chain) TopStates(pi []float64, k int) []struct {
	Key uint64
	P   float64
} {
	type kv struct {
		Key uint64
		P   float64
	}
	all := make([]kv, len(pi))
	for i, p := range pi {
		all[i] = kv{Key: c.keys[i], P: p}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].P > all[j].P })
	if k > len(all) {
		k = len(all)
	}
	out := make([]struct {
		Key uint64
		P   float64
	}, k)
	for i := 0; i < k; i++ {
		out[i] = struct {
			Key uint64
			P   float64
		}{all[i].Key, all[i].P}
	}
	return out
}
