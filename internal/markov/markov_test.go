package markov

import (
	"math"
	"testing"
)

// twoState is the classic 2-state chain with known stationary distribution.
// P(0->1)=a, P(1->0)=b; pi = (b/(a+b), a/(a+b)).
type twoState struct{ a, b float64 }

func (m twoState) Initial() uint64 { return 0 }
func (m twoState) NumRewards() int { return 1 }
func (m twoState) Next(s uint64, dst []Arc) []Arc {
	switch s {
	case 0:
		return append(dst,
			Arc{To: 1, P: m.a, Rewards: []float64{1}}, // reward 1 on 0->1
			Arc{To: 0, P: 1 - m.a, Rewards: []float64{0}},
		)
	default:
		return append(dst,
			Arc{To: 0, P: m.b, Rewards: []float64{0}},
			Arc{To: 1, P: 1 - m.b, Rewards: []float64{0}},
		)
	}
}

func TestTwoStateSteady(t *testing.T) {
	m := twoState{a: 0.3, b: 0.1}
	c, err := Build(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumStates() != 2 {
		t.Fatalf("states = %d", c.NumStates())
	}
	pi, err := c.Steady(SolveOpts{})
	if err != nil {
		t.Fatal(err)
	}
	want0 := m.b / (m.a + m.b)
	if math.Abs(pi[0]-want0) > 1e-9 {
		t.Fatalf("pi[0] = %v, want %v", pi[0], want0)
	}
	// Reward rate: transitions 0->1 happen at rate pi0 * a.
	rates := c.RewardRates(pi)
	if math.Abs(rates[0]-want0*m.a) > 1e-9 {
		t.Fatalf("reward rate = %v, want %v", rates[0], want0*m.a)
	}
}

// ring is a deterministic k-cycle; stationary distribution is uniform.
type ring struct{ k uint64 }

func (m ring) Initial() uint64 { return 0 }
func (m ring) NumRewards() int { return 0 }
func (m ring) Next(s uint64, dst []Arc) []Arc {
	// A tiny self-loop keeps the chain aperiodic so power iteration
	// converges to the uniform distribution.
	return append(dst,
		Arc{To: (s + 1) % m.k, P: 0.9, Rewards: []float64{}},
		Arc{To: s, P: 0.1, Rewards: []float64{}},
	)
}

func TestRingUniform(t *testing.T) {
	c, err := Build(ring{k: 7}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.Steady(SolveOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pi {
		if math.Abs(p-1.0/7.0) > 1e-9 {
			t.Fatalf("pi[%d] = %v", i, p)
		}
	}
}

// birthDeath is an M/M/1/K-like discrete chain with arrival probability a
// and service probability d per step (at most one event per step).
type birthDeath struct {
	k    uint64
	a, d float64
}

func (m birthDeath) Initial() uint64 { return 0 }
func (m birthDeath) NumRewards() int { return 2 } // [arrivals, losses]
func (m birthDeath) Next(s uint64, dst []Arc) []Arc {
	stay := 1.0
	if s < m.k {
		dst = append(dst, Arc{To: s + 1, P: m.a * (1 - m.d), Rewards: []float64{1, 0}})
		stay -= m.a * (1 - m.d)
	} else {
		// Arrival lost at capacity (unless a departure frees space in the
		// same step, which this simple model does not allow).
		dst = append(dst, Arc{To: s, P: m.a * (1 - m.d), Rewards: []float64{1, 1}})
		stay -= m.a * (1 - m.d)
	}
	if s > 0 {
		dst = append(dst, Arc{To: s - 1, P: m.d * (1 - m.a), Rewards: []float64{0, 0}})
		stay -= m.d * (1 - m.a)
	}
	dst = append(dst, Arc{To: s, P: stay, Rewards: []float64{0, 0}})
	return dst
}

func TestBirthDeathLossMonotoneInLoad(t *testing.T) {
	// Higher arrival probability must not lower the loss fraction.
	prev := -1.0
	for _, a := range []float64{0.1, 0.3, 0.5, 0.7} {
		c, err := Build(birthDeath{k: 3, a: a, d: 0.4}, 0)
		if err != nil {
			t.Fatal(err)
		}
		pi, err := c.Steady(SolveOpts{})
		if err != nil {
			t.Fatal(err)
		}
		r := c.RewardRates(pi)
		loss := r[1] / r[0]
		if loss < prev {
			t.Fatalf("loss fraction decreased with load: %v -> %v at a=%v", prev, loss, a)
		}
		prev = loss
	}
}

func TestBuildRejectsBadProbabilities(t *testing.T) {
	bad := modelFunc{
		next: func(s uint64, dst []Arc) []Arc {
			return append(dst, Arc{To: 0, P: 0.5, Rewards: []float64{}})
		},
	}
	if _, err := Build(bad, 0); err == nil {
		t.Fatal("accepted non-normalized model")
	}
}

func TestBuildRejectsNegativeProbability(t *testing.T) {
	bad := modelFunc{
		next: func(s uint64, dst []Arc) []Arc {
			return append(dst,
				Arc{To: 0, P: 1.5, Rewards: []float64{}},
				Arc{To: 1, P: -0.5, Rewards: []float64{}})
		},
	}
	if _, err := Build(bad, 0); err == nil {
		t.Fatal("accepted negative probability")
	}
}

func TestBuildRejectsBadRewardLength(t *testing.T) {
	bad := modelFunc{
		nr: 2,
		next: func(s uint64, dst []Arc) []Arc {
			return append(dst, Arc{To: 0, P: 1, Rewards: []float64{1}})
		},
	}
	if _, err := Build(bad, 0); err == nil {
		t.Fatal("accepted wrong reward vector length")
	}
}

func TestBuildMaxStates(t *testing.T) {
	counter := modelFunc{
		next: func(s uint64, dst []Arc) []Arc {
			return append(dst, Arc{To: s + 1, P: 1, Rewards: []float64{}})
		},
	}
	if _, err := Build(counter, 100); err == nil {
		t.Fatal("unbounded chain not rejected")
	}
}

func TestZeroProbabilityArcsDropped(t *testing.T) {
	m := modelFunc{
		next: func(s uint64, dst []Arc) []Arc {
			return append(dst,
				Arc{To: 0, P: 1, Rewards: []float64{}},
				Arc{To: 99, P: 0, Rewards: []float64{}})
		},
	}
	c, err := Build(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumStates() != 1 {
		t.Fatalf("zero-probability arc expanded the state space: %d states", c.NumStates())
	}
}

func TestDuplicateArcsMerged(t *testing.T) {
	m := modelFunc{
		next: func(s uint64, dst []Arc) []Arc {
			return append(dst,
				Arc{To: 0, P: 0.5, Rewards: []float64{}},
				Arc{To: 0, P: 0.5, Rewards: []float64{}})
		},
	}
	c, err := Build(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.Steady(SolveOpts{})
	if err != nil || math.Abs(pi[0]-1) > 1e-12 {
		t.Fatalf("merge failed: pi=%v err=%v", pi, err)
	}
}

func TestStateProbAndTopStates(t *testing.T) {
	m := twoState{a: 0.5, b: 0.5}
	c, _ := Build(m, 0)
	pi, _ := c.Steady(SolveOpts{})
	if math.Abs(c.StateProb(pi, 0)-0.5) > 1e-9 {
		t.Fatal("StateProb wrong")
	}
	if c.StateProb(pi, 1234) != 0 {
		t.Fatal("unreachable state should have probability 0")
	}
	top := c.TopStates(pi, 5)
	if len(top) != 2 {
		t.Fatalf("TopStates returned %d entries", len(top))
	}
	if top[0].P < top[1].P {
		t.Fatal("TopStates not sorted")
	}
}

// modelFunc adapts closures to Model for error-path tests.
type modelFunc struct {
	nr   int
	next func(s uint64, dst []Arc) []Arc
}

func (m modelFunc) Initial() uint64                { return 0 }
func (m modelFunc) NumRewards() int                { return m.nr }
func (m modelFunc) Next(s uint64, dst []Arc) []Arc { return m.next(s, dst) }
