package markov

import (
	"fmt"
	"math"
)

// SteadyGaussSeidel computes the stationary distribution by Gauss-Seidel
// sweeps over the balance equations pi = pi P, using in-place updates so
// fresh values propagate within a sweep. For the switch chains it
// typically converges in far fewer sweeps than power iteration needs
// steps — the solver ablation benchmark quantifies this — at the cost of
// needing the transposed (incoming-arc) structure.
func (c *Chain) SteadyGaussSeidel(opts SolveOpts) ([]float64, error) {
	opts = opts.withDefaults()
	n := len(c.keys)
	if n == 0 {
		return nil, fmt.Errorf("markov: empty chain")
	}

	// Build incoming arcs (transpose) and per-state self-loop weight.
	type inArc struct {
		from int
		p    float64
	}
	incoming := make([][]inArc, n)
	selfP := make([]float64, n)
	for i, row := range c.rows {
		for _, e := range row {
			if e.to == i {
				selfP[i] = e.p
				continue
			}
			incoming[e.to] = append(incoming[e.to], inArc{from: i, p: e.p})
		}
	}

	pi := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	for sweep := 0; sweep < opts.MaxIter; sweep++ {
		delta := 0.0
		for i := 0; i < n; i++ {
			sum := 0.0
			for _, a := range incoming[i] {
				sum += pi[a.from] * a.p
			}
			// pi_i = sum_{j != i} pi_j P_ji + pi_i P_ii
			// => pi_i (1 - P_ii) = sum  => pi_i = sum / (1 - P_ii)
			denom := 1 - selfP[i]
			var v float64
			if denom <= 1e-15 {
				// Absorbing state: it must carry all mass; handled by
				// normalization below.
				v = pi[i] + sum
			} else {
				v = sum / denom
			}
			delta += math.Abs(v - pi[i])
			pi[i] = v
		}
		// Normalize each sweep (Gauss-Seidel on a singular system drifts).
		total := 0.0
		for _, v := range pi {
			total += v
		}
		if total <= 0 {
			return nil, fmt.Errorf("markov: gauss-seidel lost all probability mass")
		}
		for i := range pi {
			pi[i] /= total
		}
		if delta < opts.Tol*float64(n) {
			return pi, nil
		}
	}
	return nil, fmt.Errorf("markov: gauss-seidel did not converge in %d sweeps", opts.MaxIter)
}

// MixingTime estimates how many steps the chain needs from its initial
// state until the state distribution is within tvTol total-variation
// distance of the stationary distribution pi. The network simulators use
// it to justify their warm-up lengths; it is exact for the chain, not an
// eigenvalue bound.
func (c *Chain) MixingTime(pi []float64, tvTol float64, maxSteps int) (int, error) {
	if tvTol <= 0 {
		return 0, fmt.Errorf("markov: tvTol must be positive")
	}
	if maxSteps <= 0 {
		maxSteps = 1_000_000
	}
	n := len(c.keys)
	cur := make([]float64, n)
	next := make([]float64, n)
	cur[0] = 1
	for step := 0; step <= maxSteps; step++ {
		tv := 0.0
		for i := range cur {
			tv += math.Abs(cur[i] - pi[i])
		}
		if tv/2 <= tvTol {
			return step, nil
		}
		for i := range next {
			next[i] = 0
		}
		for i, row := range c.rows {
			m := cur[i]
			if m == 0 {
				continue
			}
			for _, e := range row {
				next[e.to] += m * e.p
			}
		}
		cur, next = next, cur
	}
	return 0, fmt.Errorf("markov: chain did not mix to %v within %d steps", tvTol, maxSteps)
}
