package markov

import (
	"math"
	"testing"
)

func TestGaussSeidelMatchesPowerIteration(t *testing.T) {
	models := []Model{
		twoState{a: 0.3, b: 0.1},
		ring{k: 7},
		birthDeath{k: 5, a: 0.4, d: 0.3},
	}
	for mi, m := range models {
		c, err := Build(m, 0)
		if err != nil {
			t.Fatal(err)
		}
		power, err := c.Steady(SolveOpts{})
		if err != nil {
			t.Fatal(err)
		}
		gs, err := c.SteadyGaussSeidel(SolveOpts{})
		if err != nil {
			t.Fatalf("model %d: %v", mi, err)
		}
		for i := range power {
			if math.Abs(power[i]-gs[i]) > 1e-8 {
				t.Fatalf("model %d state %d: power %v vs gauss-seidel %v", mi, i, power[i], gs[i])
			}
		}
	}
}

func TestGaussSeidelEmptyChain(t *testing.T) {
	c := &Chain{}
	if _, err := c.SteadyGaussSeidel(SolveOpts{}); err == nil {
		t.Fatal("empty chain accepted")
	}
}

func TestMixingTimeTwoState(t *testing.T) {
	m := twoState{a: 0.5, b: 0.5}
	c, _ := Build(m, 0)
	pi, _ := c.Steady(SolveOpts{})
	// With a=b=0.5 the chain reaches the uniform distribution in one
	// step exactly.
	steps, err := c.MixingTime(pi, 1e-9, 100)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 1 {
		t.Fatalf("mixing time = %d, want 1", steps)
	}
}

func TestMixingTimeMonotoneInTolerance(t *testing.T) {
	m := birthDeath{k: 6, a: 0.45, d: 0.35}
	c, _ := Build(m, 0)
	pi, _ := c.Steady(SolveOpts{})
	loose, err := c.MixingTime(pi, 0.1, 100000)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := c.MixingTime(pi, 0.001, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if tight < loose {
		t.Fatalf("tight tolerance mixed faster: %d < %d", tight, loose)
	}
	if loose == 0 {
		t.Fatal("non-stationary start cannot mix in 0 steps")
	}
}

func TestMixingTimeValidation(t *testing.T) {
	m := twoState{a: 0.5, b: 0.5}
	c, _ := Build(m, 0)
	pi, _ := c.Steady(SolveOpts{})
	if _, err := c.MixingTime(pi, 0, 10); err == nil {
		t.Fatal("accepted zero tolerance")
	}
	// Impossible tolerance within one step budget.
	m2 := birthDeath{k: 6, a: 0.45, d: 0.35}
	c2, _ := Build(m2, 0)
	pi2, _ := c2.Steady(SolveOpts{})
	if _, err := c2.MixingTime(pi2, 1e-12, 1); err == nil {
		t.Fatal("accepted unreachable step budget")
	}
}

func BenchmarkSteadyPower(b *testing.B) {
	c, _ := Build(birthDeath{k: 30, a: 0.45, d: 0.4}, 0)
	for i := 0; i < b.N; i++ {
		if _, err := c.Steady(SolveOpts{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSteadyGaussSeidel(b *testing.B) {
	c, _ := Build(birthDeath{k: 30, a: 0.45, d: 0.4}, 0)
	for i := 0; i < b.N; i++ {
		if _, err := c.SteadyGaussSeidel(SolveOpts{}); err != nil {
			b.Fatal(err)
		}
	}
}
