package checkpoint_test

// The decode fuzzer lives in an external test package: it drives the
// full restore path (netsim imports checkpoint, so the harness cannot
// sit inside package checkpoint's own tests without a cycle) while CI
// still targets ./internal/checkpoint for the fuzz-smoke step.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"damq/internal/buffer"
	"damq/internal/cfgerr"
	"damq/internal/fault"
	"damq/internal/netsim"
	"damq/internal/obs"
	"damq/internal/sw"
)

// fuzzSeedCheckpoint builds a real mid-run checkpoint for the seed
// corpus: blocking protocol (source backlog), faults armed, observer
// attached, so every section of the format is present.
func fuzzSeedCheckpoint(f *testing.F, seed uint64, withExtras bool) []byte {
	cfg := netsim.Config{
		Radix: 4, Inputs: 16, Capacity: 4, ClocksPerCycle: 12,
		WarmupCycles: 20, MeasureCycles: 30, Seed: seed,
		BufferKind: buffer.DAMQ,
		Traffic:    netsim.TrafficSpec{Kind: netsim.Uniform, Load: 0.8},
	}
	if withExtras {
		cfg.Protocol = sw.Blocking
	}
	s, err := netsim.New(cfg)
	if err != nil {
		f.Fatal(err)
	}
	defer s.Close()
	if withExtras {
		if err := s.SetFaults(fault.Config{SlotStuckRate: 1e-4, LinkTransientRate: 1e-3}); err != nil {
			f.Fatal(err)
		}
		o := obs.NewObserver()
		o.SetInterval(8)
		s.SetObserver(o)
	}
	for i := 0; i < 25; i++ {
		s.Step(i >= 20)
	}
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDecodeCheckpoint throws arbitrary bytes at RestoreSim. The
// contract under fuzzing: every rejection is one of the two typed
// sentinels, and every accepted stream yields a simulation that can
// step and collect without panicking. The harness re-seals the CRC so
// mutations reach the structural validators instead of dying at the
// frame checksum.
func FuzzDecodeCheckpoint(f *testing.F) {
	f.Add(fuzzSeedCheckpoint(f, 1, false))
	f.Add(fuzzSeedCheckpoint(f, 2, true))
	f.Add([]byte("DAMQCKPT"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		raw := append([]byte(nil), data...)
		if len(raw) >= 24 {
			sum := crc32.ChecksumIEEE(raw[:len(raw)-4])
			binary.LittleEndian.PutUint32(raw[len(raw)-4:], sum)
		}
		s, err := netsim.RestoreSimOpts(bytes.NewReader(raw),
			netsim.RestoreOpts{Workers: 1, WorkersSet: true})
		if err != nil {
			if !errors.Is(err, cfgerr.ErrBadCheckpoint) && !errors.Is(err, cfgerr.ErrCheckpointVersion) {
				t.Fatalf("untyped restore error: %v", err)
			}
			return
		}
		// A stream that passed every validator must be runnable.
		s.Step(false)
		s.Step(true)
		s.Collect()
		s.Close()
	})
}
