// Package checkpoint is the versioned binary codec under the simulator
// checkpoint/restore path (DESIGN.md §13). It provides the framing —
// magic, format version, section tags, and a CRC32 trailer — plus
// bounds-checked primitive readers and an atomic file writer; the
// simulator packages own what goes inside the sections
// (netsim.(*Sim).Checkpoint / netsim.RestoreSim).
//
// Framing, in order:
//
//	magic    [8]byte  "DAMQCKPT"
//	version  uint32   little-endian, currently 1
//	length   uint64   payload byte count
//	payload  [length]byte   section-tagged body
//	crc      uint32   CRC-32 (IEEE) of everything before it
//
// Inside the payload each section is `tag uint8, length uint64, body`.
// Decoding is defensive end to end: every failure — short stream, bad
// magic, CRC mismatch, impossible count, trailing garbage — returns an
// error wrapping cfgerr.ErrBadCheckpoint (or cfgerr.ErrCheckpointVersion
// for a well-formed stream from an incompatible codec), never a panic.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"damq/internal/cfgerr"
)

// Version is the current checkpoint format version. It changes whenever
// the payload layout changes incompatibly; there is no cross-version
// migration — a version-skewed stream fails with ErrCheckpointVersion.
const Version = 1

// magic identifies a checkpoint stream. Any other prefix fails decoding
// immediately with a "not a checkpoint" error.
var magic = [8]byte{'D', 'A', 'M', 'Q', 'C', 'K', 'P', 'T'}

// headerLen is the byte count before the payload: magic + version + length.
const headerLen = len(magic) + 4 + 8

// errf wraps a decode failure in the corrupt-checkpoint sentinel.
func errf(format string, args ...any) error {
	return fmt.Errorf("checkpoint: "+format+": %w", append(args, cfgerr.ErrBadCheckpoint)...)
}

// Encoder accumulates a checkpoint payload in memory. The zero value is
// not ready; use NewEncoder. Emit writes the framed stream.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty payload encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends an int64 (two's complement, little-endian).
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as an int64.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// I32 appends an int32.
func (e *Encoder) I32(v int32) { e.U32(uint32(v)) }

// F64 appends a float64 as its IEEE-754 bit pattern.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends a bool as one byte (0 or 1).
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Bytes appends a length-prefixed byte string.
func (e *Encoder) Bytes(b []byte) {
	e.U64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) { e.Bytes([]byte(s)) }

// I64s appends a length-prefixed []int64.
func (e *Encoder) I64s(vs []int64) {
	e.U64(uint64(len(vs)))
	for _, v := range vs {
		e.I64(v)
	}
}

// I32s appends a length-prefixed []int32.
func (e *Encoder) I32s(vs []int32) {
	e.U64(uint64(len(vs)))
	for _, v := range vs {
		e.I32(v)
	}
}

// Ints appends a length-prefixed []int (as int64s).
func (e *Encoder) Ints(vs []int) {
	e.U64(uint64(len(vs)))
	for _, v := range vs {
		e.Int(v)
	}
}

// Section appends one tagged section: tag, byte length, then whatever
// body writes. Lengths are patched in after the body runs, so sections
// nest without pre-computing sizes.
func (e *Encoder) Section(tag uint8, body func(*Encoder)) {
	e.U8(tag)
	at := len(e.buf)
	e.U64(0) // length placeholder
	body(e)
	binary.LittleEndian.PutUint64(e.buf[at:], uint64(len(e.buf)-at-8))
}

// Emit frames the accumulated payload — magic, version, length,
// payload, CRC trailer — and writes it to w.
func (e *Encoder) Emit(w io.Writer) error {
	out := make([]byte, 0, headerLen+len(e.buf)+4)
	out = append(out, magic[:]...)
	out = binary.LittleEndian.AppendUint32(out, Version)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(e.buf)))
	out = append(out, e.buf...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
	_, err := w.Write(out)
	return err
}

// Decoder reads a framed checkpoint stream. NewDecoder verifies the
// envelope (magic, version, length, CRC) up front; the Get methods then
// walk the payload with a sticky error, so a caller can decode a whole
// structure and check Err once. All counts are bounded by the remaining
// payload before any allocation sized from them.
type Decoder struct {
	buf []byte // payload (or section body)
	off int
	err error
}

// NewDecoder reads the entire stream from r and verifies its envelope.
func NewDecoder(r io.Reader) (*Decoder, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, errf("read: %v", err)
	}
	return NewDecoderBytes(raw)
}

// NewDecoderBytes verifies the envelope of a fully buffered stream.
func NewDecoderBytes(raw []byte) (*Decoder, error) {
	if len(raw) < len(magic) || string(raw[:len(magic)]) != string(magic[:]) {
		return nil, errf("not a checkpoint stream (bad magic)")
	}
	if len(raw) < headerLen {
		return nil, errf("truncated header (%d bytes)", len(raw))
	}
	if v := binary.LittleEndian.Uint32(raw[len(magic):]); v != Version {
		return nil, fmt.Errorf("checkpoint: stream version %d, this build reads version %d: %w",
			v, Version, cfgerr.ErrCheckpointVersion)
	}
	n := binary.LittleEndian.Uint64(raw[len(magic)+4:])
	if n != uint64(len(raw)-headerLen-4) {
		return nil, errf("payload length %d does not match stream size %d", n, len(raw))
	}
	body := raw[:len(raw)-4]
	want := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, errf("CRC mismatch (stream %08x, computed %08x)", want, got)
	}
	return &Decoder{buf: raw[headerLen : len(raw)-4]}, nil
}

// fail records the first error and poisons all further reads.
func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = errf(format, args...)
	}
}

// Err returns the sticky decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the unread payload byte count.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// take consumes n bytes, or poisons the decoder if they are not there.
func (d *Decoder) take(n int) []byte {
	if d.err != nil || n < 0 || n > d.Remaining() {
		d.fail("truncated at offset %d (need %d bytes, have %d)", d.off, n, d.Remaining())
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int stored as an int64, rejecting values outside the
// platform int range.
func (d *Decoder) Int() int {
	v := d.I64()
	if int64(int(v)) != v {
		d.fail("integer %d overflows int", v)
		return 0
	}
	return int(v)
}

// I32 reads an int32.
func (d *Decoder) I32() int32 { return int32(d.U32()) }

// F64 reads a float64 bit pattern.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads a one-byte bool, rejecting values other than 0 and 1.
func (d *Decoder) Bool() bool {
	switch v := d.U8(); v {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("bool byte %d at offset %d", v, d.off-1)
		return false
	}
}

// Count reads a collection length and verifies the collection could fit
// in the remaining payload at minSize bytes per element, so corrupted
// counts cannot drive huge allocations or quadratic loops.
func (d *Decoder) Count(minSize int) int {
	if minSize < 1 {
		minSize = 1
	}
	v := d.U64()
	if d.err != nil {
		return 0
	}
	if v > uint64(d.Remaining()/minSize) {
		d.fail("count %d exceeds remaining payload (%d bytes)", v, d.Remaining())
		return 0
	}
	return int(v)
}

// Bytes reads a length-prefixed byte string (aliasing the stream buffer).
func (d *Decoder) Bytes() []byte {
	n := d.Count(1)
	return d.take(n)
}

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.Bytes()) }

// I64s reads a length-prefixed []int64.
func (d *Decoder) I64s() []int64 {
	n := d.Count(8)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = d.I64()
	}
	return out
}

// I32s reads a length-prefixed []int32.
func (d *Decoder) I32s() []int32 {
	n := d.Count(4)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = d.I32()
	}
	return out
}

// Ints reads a length-prefixed []int.
func (d *Decoder) Ints() []int {
	n := d.Count(8)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = d.Int()
	}
	return out
}

// Section reads the next section header and returns its tag and a
// sub-decoder over exactly its body. ok is false at a clean end of
// payload or after an error.
func (d *Decoder) Section() (tag uint8, body *Decoder, ok bool) {
	if d.err != nil || d.Remaining() == 0 {
		return 0, nil, false
	}
	tag = d.U8()
	n := d.Count(1)
	b := d.take(n)
	if d.err != nil {
		return 0, nil, false
	}
	return tag, &Decoder{buf: b}, true
}

// Done verifies the decoder consumed its input exactly: no sticky error
// and no trailing bytes.
func (d *Decoder) Done() error {
	if d.err != nil {
		return d.err
	}
	if r := d.Remaining(); r != 0 {
		return errf("%d trailing bytes after decode", r)
	}
	return nil
}

// WriteFile atomically replaces path with whatever write produces: the
// bytes go to a temporary file in the same directory, are fsynced, and
// only then renamed over path, with a directory fsync sealing the rename.
// A crash or SIGKILL at any point leaves either the old complete file or
// the new complete file — never a torn mix — which is what lets a
// checkpoint file be overwritten in place every N cycles.
func WriteFile(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("checkpoint: create temp: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("checkpoint: write %s: %w", path, err)
	}
	// CreateTemp opens 0600; widen to the usual artifact mode before the
	// rename so the published file matches a plain os.WriteFile's.
	if err = tmp.Chmod(0o644); err != nil {
		return fmt.Errorf("checkpoint: chmod %s: %w", tmp.Name(), err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("checkpoint: sync %s: %w", tmp.Name(), err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: close %s: %w", tmp.Name(), err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	if d, derr := os.Open(dir); derr == nil {
		// Seal the rename; ignore sync errors on filesystems that do not
		// support directory fsync — the rename itself is still atomic.
		d.Sync()
		d.Close()
	}
	return nil
}
