package checkpoint

import (
	"bytes"
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"

	"damq/internal/cfgerr"
)

// frame encodes a payload built by build into a complete framed stream.
func frame(t *testing.T, build func(e *Encoder)) []byte {
	t.Helper()
	e := NewEncoder()
	build(e)
	var buf bytes.Buffer
	if err := e.Emit(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestPrimitiveRoundTrip(t *testing.T) {
	raw := frame(t, func(e *Encoder) {
		e.U8(7)
		e.U32(1 << 30)
		e.U64(1 << 60)
		e.I64(-5)
		e.Int(-42)
		e.I32(-9)
		e.F64(math.Pi)
		e.Bool(true)
		e.Bool(false)
		e.Bytes([]byte("abc"))
		e.String("déjà")
		e.I64s([]int64{1, -2, 3})
		e.I32s([]int32{-4, 5})
		e.Ints([]int{6, -7})
	})
	d, err := NewDecoderBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if v := d.U8(); v != 7 {
		t.Errorf("U8 = %d", v)
	}
	if v := d.U32(); v != 1<<30 {
		t.Errorf("U32 = %d", v)
	}
	if v := d.U64(); v != 1<<60 {
		t.Errorf("U64 = %d", v)
	}
	if v := d.I64(); v != -5 {
		t.Errorf("I64 = %d", v)
	}
	if v := d.Int(); v != -42 {
		t.Errorf("Int = %d", v)
	}
	if v := d.I32(); v != -9 {
		t.Errorf("I32 = %d", v)
	}
	if v := d.F64(); v != math.Pi {
		t.Errorf("F64 = %v", v)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round-trip failed")
	}
	if v := d.Bytes(); !bytes.Equal(v, []byte("abc")) {
		t.Errorf("Bytes = %q", v)
	}
	if v := d.String(); v != "déjà" {
		t.Errorf("String = %q", v)
	}
	if v := d.I64s(); len(v) != 3 || v[0] != 1 || v[1] != -2 || v[2] != 3 {
		t.Errorf("I64s = %v", v)
	}
	if v := d.I32s(); len(v) != 2 || v[0] != -4 || v[1] != 5 {
		t.Errorf("I32s = %v", v)
	}
	if v := d.Ints(); len(v) != 2 || v[0] != 6 || v[1] != -7 {
		t.Errorf("Ints = %v", v)
	}
	if err := d.Done(); err != nil {
		t.Errorf("Done: %v", err)
	}
}

func TestSectionRoundTrip(t *testing.T) {
	raw := frame(t, func(e *Encoder) {
		e.Section(1, func(e *Encoder) { e.I64(11) })
		e.Section(2, func(e *Encoder) { e.String("body") })
	})
	d, err := NewDecoderBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	tag, body, ok := d.Section()
	if !ok || tag != 1 {
		t.Fatalf("first section tag %d ok=%v", tag, ok)
	}
	if v := body.I64(); v != 11 || body.Done() != nil {
		t.Errorf("section 1 body = %d (%v)", v, body.Done())
	}
	tag, body, ok = d.Section()
	if !ok || tag != 2 {
		t.Fatalf("second section tag %d ok=%v", tag, ok)
	}
	if v := body.String(); v != "body" || body.Done() != nil {
		t.Errorf("section 2 body = %q", v)
	}
	if _, _, ok := d.Section(); ok {
		t.Error("phantom third section")
	}
	if err := d.Done(); err != nil {
		t.Errorf("Done: %v", err)
	}
}

// TestDecoderDefensiveness drives the sticky-error paths: every
// corruption must yield the typed sentinel, never a panic.
func TestDecoderDefensiveness(t *testing.T) {
	valid := frame(t, func(e *Encoder) { e.I64(1) })

	check := func(name string, raw []byte, want error) {
		t.Helper()
		_, err := NewDecoderBytes(raw)
		if !errors.Is(err, want) {
			t.Errorf("%s: got %v, want %v", name, err, want)
		}
	}
	check("empty", nil, cfgerr.ErrBadCheckpoint)
	check("short header", valid[:10], cfgerr.ErrBadCheckpoint)

	badMagic := append([]byte(nil), valid...)
	badMagic[0] = 'X'
	check("bad magic", badMagic, cfgerr.ErrBadCheckpoint)

	skew := append([]byte(nil), valid...)
	skew[8] = 99
	check("version skew", skew, cfgerr.ErrCheckpointVersion)

	short := append([]byte(nil), valid...)
	check("truncated payload", short[:len(short)-3], cfgerr.ErrBadCheckpoint)

	flipped := append([]byte(nil), valid...)
	flipped[headerLen] ^= 0xFF
	check("CRC mismatch", flipped, cfgerr.ErrBadCheckpoint)

	// A count far beyond the remaining payload fails instead of
	// allocating.
	huge := frame(t, func(e *Encoder) { e.Int(1 << 40) })
	d, err := NewDecoderBytes(huge)
	if err != nil {
		t.Fatal(err)
	}
	if n := d.Count(8); n != 0 || d.Err() == nil {
		t.Errorf("Count accepted an impossible length %d (err %v)", n, d.Err())
	}

	// Bool bytes other than 0/1 are corruption.
	boolRaw := frame(t, func(e *Encoder) { e.U8(2) })
	d, err = NewDecoderBytes(boolRaw)
	if err != nil {
		t.Fatal(err)
	}
	if d.Bool(); d.Err() == nil {
		t.Error("Bool accepted byte 2")
	}

	// Trailing bytes after a complete decode are corruption.
	d, err = NewDecoderBytes(valid)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Done(); !errors.Is(err, cfgerr.ErrBadCheckpoint) {
		t.Errorf("Done with unread payload: %v", err)
	}

	// Reading past the end sticks the error and returns zeros.
	d, err = NewDecoderBytes(valid)
	if err != nil {
		t.Fatal(err)
	}
	d.I64()
	if v := d.I64(); v != 0 || d.Err() == nil {
		t.Errorf("overread returned %d with err %v", v, d.Err())
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.bin")

	if err := WriteFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("first"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "first" {
		t.Fatalf("after first write: %q, %v", got, err)
	}

	// A failing writer must leave the previous file untouched and no
	// temporary behind.
	sentinel := errors.New("boom")
	if err := WriteFile(path, func(w io.Writer) error {
		_, _ = w.Write([]byte("torn"))
		return sentinel
	}); !errors.Is(err, sentinel) {
		t.Fatalf("WriteFile swallowed the writer error: %v", err)
	}
	got, err = os.ReadFile(path)
	if err != nil || string(got) != "first" {
		t.Fatalf("failed write clobbered the file: %q, %v", got, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Errorf("temporary file left behind: %v", ents)
	}

	if err := WriteFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("second"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "second" {
		t.Fatalf("after replace: %q", got)
	}
}
