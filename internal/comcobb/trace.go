package comcobb

import (
	"fmt"

	"damq/internal/obs"
)

// Event is one timestamped occurrence inside the chip, at clock-cycle and
// phase resolution — the unit Table 1 is written in.
type Event struct {
	Cycle int64
	Phase int // 0 or 1
	Unit  string
	Msg   string
}

// String renders the event in the style of the paper's Table 1.
func (e Event) String() string {
	return fmt.Sprintf("cycle %3d phase %d  %-12s %s", e.Cycle, e.Phase, e.Unit, e.Msg)
}

// Trace records chip events for timing assertions and the cmd/comcobb
// demonstration. A nil *Trace discards events, so tracing costs nothing
// when disabled — the nil-guard convention the obs layer generalizes.
type Trace struct {
	Events []Event
	// Metrics, when non-nil, additionally counts each event under
	// "chip.events.<unit>" in an observer's registry (NewChip sets it
	// when a Config carries both a Trace and an Observer). Counting
	// happens inside add, which only runs behind the trace's own nil
	// guard, so it inherits the trace's cold-path status.
	Metrics *obs.Registry
}

// add records one event.
func (t *Trace) add(cycle int64, phase int, unit, format string, args ...any) {
	if t == nil {
		return
	}
	t.Events = append(t.Events, Event{Cycle: cycle, Phase: phase, Unit: unit, Msg: fmt.Sprintf(format, args...)})
	if t.Metrics != nil {
		t.Metrics.Counter("chip.events." + unit).Inc()
	}
}

// Find returns the first event whose unit and message match exactly, and
// whether one was found.
func (t *Trace) Find(unit, msg string) (Event, bool) {
	if t == nil {
		return Event{}, false
	}
	for _, e := range t.Events {
		if e.Unit == unit && e.Msg == msg {
			return e, true
		}
	}
	return Event{}, false
}

// FindAll returns every event for the given unit.
func (t *Trace) FindAll(unit string) []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for _, e := range t.Events {
		if e.Unit == unit {
			out = append(out, e)
		}
	}
	return out
}
