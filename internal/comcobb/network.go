package comcobb

// Network ticks a set of connected chips with correct wire settling
// order: every chip drives its output wires, then every chip samples its
// input wires, then every chip runs its phase-1 control logic. Because a
// symbol driven at cycle t is sampled at cycle t and only released from
// the synchronizer at t+1, the ordering among chips within a phase does
// not matter.
type Network struct {
	chips []*Chip
}

// NewNetwork groups chips for lockstep ticking.
func NewNetwork(chips ...*Chip) *Network {
	return &Network{chips: chips}
}

// Add registers another chip.
func (n *Network) Add(c *Chip) { n.chips = append(n.chips, c) }

// Tick advances every chip one clock cycle.
func (n *Network) Tick() {
	for _, c := range n.chips {
		c.phase0Out()
	}
	for _, c := range n.chips {
		c.phase0In()
	}
	for _, c := range n.chips {
		c.phase1()
	}
}

// Run ticks the network for the given number of cycles.
func (n *Network) Run(cycles int) {
	for i := 0; i < cycles; i++ {
		n.Tick()
	}
}

// Driver feeds a scripted symbol sequence into one link, one symbol per
// cycle, standing in for an upstream chip in testbenches and examples.
type Driver struct {
	link *Link
	syms []wireSymbol
	pos  int
}

// NewDriver attaches a driver to a link.
func NewDriver(link *Link) *Driver { return &Driver{link: link} }

// Queue appends a first-of-message packet's wire symbols (plus a trailing
// idle gap of gap cycles) to the script.
func (d *Driver) Queue(header byte, data []byte, gap int) {
	d.compact()
	d.syms = AppendWire(d.syms, header, data)
	for i := 0; i < gap; i++ {
		d.syms = append(d.syms, wireSymbol{})
	}
}

// QueueCont appends a continuation packet (no length byte on the wire;
// the receiving circuit's ContLength must equal len(data)).
func (d *Driver) QueueCont(header byte, data []byte, gap int) {
	d.compact()
	d.syms = AppendWireCont(d.syms, header, data)
	for i := 0; i < gap; i++ {
		d.syms = append(d.syms, wireSymbol{})
	}
}

// compact reclaims the script buffer once every queued symbol has been
// driven, so a long-lived driver reuses one buffer instead of growing it
// with every transmission.
func (d *Driver) compact() {
	if d.pos == len(d.syms) {
		d.syms = d.syms[:0]
		d.pos = 0
	}
}

// Pending reports how many scripted symbols remain.
func (d *Driver) Pending() int { return len(d.syms) - d.pos }

// Tick drives the next scripted symbol (or idle) onto the link. Call it
// before the network's Tick for the same cycle.
func (d *Driver) Tick() {
	if d.pos < len(d.syms) {
		d.link.drive(d.syms[d.pos])
		d.pos++
		return
	}
	d.link.drive(wireSymbol{})
}
