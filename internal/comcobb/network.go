package comcobb

import (
	"damq/internal/fault"
	"damq/internal/obs"
)

// Network ticks a set of connected chips with correct wire settling
// order: every chip drives its output wires, then every chip samples its
// input wires, then every chip runs its phase-1 control logic. Because a
// symbol driven at cycle t is sampled at cycle t and only released from
// the synchronizer at t+1, the ordering among chips within a phase does
// not matter.
type Network struct {
	chips []*Chip
}

// NewNetwork groups chips for lockstep ticking.
func NewNetwork(chips ...*Chip) *Network {
	return &Network{chips: chips}
}

// Add registers another chip.
func (n *Network) Add(c *Chip) { n.chips = append(n.chips, c) }

// Tick advances every chip one clock cycle.
func (n *Network) Tick() {
	for _, c := range n.chips {
		c.phase0Out()
	}
	for _, c := range n.chips {
		c.phase0In()
	}
	for _, c := range n.chips {
		c.phase1()
	}
}

// Run ticks the network for the given number of cycles.
func (n *Network) Run(cycles int) {
	for i := 0; i < cycles; i++ {
		n.Tick()
	}
}

// Driver feeds a scripted symbol sequence into one link, one symbol per
// cycle, standing in for an upstream chip in testbenches and examples.
//
// With SetRetryPolicy the driver becomes fault-tolerant: it transmits
// stop-and-wait, watching the link's NACK wire, and retransmits a NACKed
// packet after an exponential backoff, up to the retry limit. Without a
// policy it streams the flat script exactly as before.
type Driver struct {
	link *Link
	syms []wireSymbol
	pos  int

	retry *retryState // nil: plain flat-stream driver
	spans []drvSpan   // packet boundaries within syms (retry mode only)
}

// drvSpan is one queued packet's symbol range [start, end) in the script
// buffer (trailing gap idles excluded — the retry guard supplies the
// inter-packet spacing).
type drvSpan struct {
	start, end int
}

// Retry-mode transmission phases.
const (
	drvIdle      = iota // no packet in flight
	drvStreaming        // driving the current packet's symbols
	drvGuard            // packet sent; watching for a late NACK
	drvBackoff          // NACKed; idling before retransmission
)

// nackGuard is how many idle cycles after a packet's last symbol the
// driver keeps watching for a NACK: the last byte crosses the wire one
// cycle after it is driven and leaves the receiver's synchronizer one
// cycle later, so its NACK is visible two driver ticks after the byte.
const nackGuard = 2

// retryState is the stop-and-wait machinery of a fault-tolerant driver.
type retryState struct {
	limit   int // retransmissions allowed per packet
	backoff int // idle cycles before attempt k: backoff << (k-1)

	phase    int
	count    int // cycles left in guard or backoff
	attempts int // NACKs received for the current packet

	retries   int64
	gaveUp    int64
	delivered int64

	m *driverFaultMetrics // nil without an observer
}

// driverFaultMetrics are the driver's recovery instruments, registered
// under the shared fault.* names only when faults are in play.
type driverFaultMetrics struct {
	retries  *obs.Counter
	gaveUp   *obs.Counter
	attempts *obs.Histogram
}

// NewDriver attaches a driver to a link.
func NewDriver(link *Link) *Driver { return &Driver{link: link} }

// SetRetryPolicy arms NACK-triggered retransmission: a NACKed packet is
// resent after backoff<<(attempt-1) idle cycles, at most limit times,
// then abandoned (counted by GaveUp). backoff <= 0 selects
// fault.DefaultRetryBackoff. Must be called before the first Tick.
func (d *Driver) SetRetryPolicy(limit, backoff int) {
	if backoff <= 0 {
		backoff = fault.DefaultRetryBackoff
	}
	d.retry = &retryState{limit: limit, backoff: backoff}
}

// ObserveFaults registers the driver's recovery instruments (retry and
// give-up counters, attempts-per-delivery histogram) in o's registry.
// Call after SetRetryPolicy.
func (d *Driver) ObserveFaults(o *obs.Observer) {
	if d.retry == nil || o == nil {
		return
	}
	r := o.Registry()
	d.retry.m = &driverFaultMetrics{
		retries:  r.Counter(fault.MetricRetries),
		gaveUp:   r.Counter(fault.MetricGaveUp),
		attempts: r.Histogram(fault.MetricRetryAttempts, 8, 1),
	}
}

// Retries reports how many retransmissions the driver has performed.
func (d *Driver) Retries() int64 {
	if d.retry == nil {
		return 0
	}
	return d.retry.retries
}

// GaveUp reports how many packets were abandoned after the retry budget.
func (d *Driver) GaveUp() int64 {
	if d.retry == nil {
		return 0
	}
	return d.retry.gaveUp
}

// Queue appends a first-of-message packet's wire symbols (plus a trailing
// idle gap of gap cycles) to the script.
func (d *Driver) Queue(header byte, data []byte, gap int) {
	d.compact()
	start := len(d.syms)
	d.syms = AppendWire(d.syms, header, data)
	d.markSpan(start)
	for i := 0; i < gap; i++ {
		d.syms = append(d.syms, wireSymbol{})
	}
}

// QueueCont appends a continuation packet (no length byte on the wire;
// the receiving circuit's ContLength must equal len(data)).
func (d *Driver) QueueCont(header byte, data []byte, gap int) {
	d.compact()
	start := len(d.syms)
	d.syms = AppendWireCont(d.syms, header, data)
	d.markSpan(start)
	for i := 0; i < gap; i++ {
		d.syms = append(d.syms, wireSymbol{})
	}
}

func (d *Driver) markSpan(start int) {
	if d.retry != nil {
		d.spans = append(d.spans, drvSpan{start: start, end: len(d.syms)})
	}
}

// compact reclaims the script buffer once every queued symbol has been
// driven, so a long-lived driver reuses one buffer instead of growing it
// with every transmission.
func (d *Driver) compact() {
	if d.retry != nil {
		if len(d.spans) == 0 && d.retry.phase == drvIdle {
			d.syms = d.syms[:0]
		}
		return
	}
	if d.pos == len(d.syms) {
		d.syms = d.syms[:0]
		d.pos = 0
	}
}

// Pending reports how many scripted symbols remain.
func (d *Driver) Pending() int {
	if d.retry != nil {
		n := 0
		for _, s := range d.spans {
			n += s.end - s.start
		}
		if d.retry.phase == drvStreaming || d.retry.phase == drvGuard || d.retry.phase == drvBackoff {
			// The in-flight packet still occupies the wire even once all
			// its symbols are out.
			if n == 0 {
				n = 1
			}
		}
		return n
	}
	return len(d.syms) - d.pos
}

// Tick drives the next scripted symbol (or idle) onto the link. Call it
// before the network's Tick for the same cycle.
func (d *Driver) Tick() {
	if d.retry != nil {
		d.tickRetry()
		return
	}
	if d.pos < len(d.syms) {
		d.link.drive(d.syms[d.pos])
		d.pos++
		return
	}
	d.link.drive(wireSymbol{})
}

// tickRetry is Tick under a retry policy: stop-and-wait with NACK
// detection, exponential backoff, and a bounded retry budget.
func (d *Driver) tickRetry() {
	r := d.retry
	// The NACK wire is consumed every tick so a stale flag can never
	// blame a later packet. A NACK matters only while a packet is in
	// flight (streaming or guard).
	if d.link.TakeNACK() && (r.phase == drvStreaming || r.phase == drvGuard) {
		r.attempts++
		if r.attempts > r.limit {
			r.gaveUp++
			if r.m != nil {
				r.m.gaveUp.Inc()
			}
			d.finishPacket()
		} else {
			r.retries++
			if r.m != nil {
				r.m.retries.Inc()
			}
			r.phase = drvBackoff
			r.count = r.backoff << (r.attempts - 1)
		}
		d.link.drive(wireSymbol{})
		return
	}
	switch r.phase {
	case drvIdle:
		if len(d.spans) == 0 {
			d.link.drive(wireSymbol{})
			return
		}
		r.phase = drvStreaming
		d.pos = d.spans[0].start
		d.driveStream()
	case drvStreaming:
		d.driveStream()
	case drvGuard:
		d.link.drive(wireSymbol{})
		if r.count--; r.count == 0 {
			// No NACK within the guard window: the packet is in the
			// receiver's buffer.
			r.delivered++
			if r.m != nil {
				r.m.attempts.Observe(int64(r.attempts + 1))
			}
			d.finishPacket()
		}
	case drvBackoff:
		d.link.drive(wireSymbol{})
		if r.count--; r.count == 0 {
			r.phase = drvStreaming
			d.pos = d.spans[0].start
		}
	}
}

// driveStream emits the current packet's next symbol, entering the guard
// window after the last one.
func (d *Driver) driveStream() {
	d.link.drive(d.syms[d.pos])
	d.pos++
	if d.pos == d.spans[0].end {
		d.retry.phase = drvGuard
		d.retry.count = nackGuard
	}
}

// finishPacket retires the current packet (delivered or abandoned) and
// returns the driver to idle.
func (d *Driver) finishPacket() {
	d.spans = d.spans[1:]
	if len(d.spans) == 0 {
		d.spans = nil
	}
	d.retry.phase = drvIdle
	d.retry.attempts = 0
}
