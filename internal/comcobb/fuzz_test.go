package comcobb

import (
	"bytes"
	"testing"
)

// FuzzDecodeWire feeds arbitrary byte streams, reinterpreted as wire
// symbol captures, to the decoder: it must never panic and never return
// packets longer than its input could encode.
func FuzzDecodeWire(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add([]byte{0xFF, 0x00, 0x20, 0x01, 0x02})
	f.Add([]byte{0x80, 0x42, 0x00}) // zero length byte
	f.Fuzz(func(t *testing.T, raw []byte) {
		// Reinterpret: byte with high bit set = start symbol, otherwise a
		// data byte; 0xFE = idle gap.
		var syms []wireSymbol
		for _, b := range raw {
			switch {
			case b == 0xFE:
				syms = append(syms, wireSymbol{})
			case b >= 0x80:
				syms = append(syms, wireSymbol{start: true})
			default:
				syms = append(syms, wireSymbol{valid: true, b: b})
			}
		}
		pkts := DecodeWire(syms)
		total := 0
		for _, p := range pkts {
			total += 3 + len(p.Data)
		}
		if total > len(syms)+MaxDataBytes {
			t.Fatalf("decoded %d symbol-equivalents from %d symbols", total, len(syms))
		}
		// Continuation-aware decoding must not panic either.
		_ = DecodeWireWith(syms, map[byte]int{0x01: 8, 0x02: 32})
	})
}

// FuzzDecodeWireAppend drives the scratch-reusing decoder with arbitrary
// framing-wire states — start+valid set together, stale parity, fuzzed
// continuation tables — which the simpler byte reinterpretation above
// cannot express. It must never panic, never fabricate payload beyond
// the advertised length, and must decode identically into fresh or
// reused scratch.
func FuzzDecodeWireAppend(f *testing.F) {
	// Flags byte per symbol: bit0 start, bit1 valid, bit2 parity wire.
	f.Add([]byte{1, 0, 2, 0x01, 2, 2, 2, 0xA0, 2, 0xA1}, byte(0), byte(0))
	f.Add([]byte{1, 0}, byte(0), byte(0))                                  // truncated after start bit
	f.Add([]byte{0, 0, 0, 0, 1, 0, 2, 0x05, 6, 0x10}, byte(0x05), byte(3)) // continuation circuit
	f.Add([]byte{3, 0x7F, 7, 0xFF}, byte(0xFF), byte(32))                  // start+valid, all wires high
	f.Fuzz(func(t *testing.T, raw []byte, contHdr, contLen byte) {
		syms := make([]wireSymbol, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			syms = append(syms, wireSymbol{
				start: raw[i]&1 != 0,
				valid: raw[i]&2 != 0,
				par:   raw[i]&4 != 0,
				b:     raw[i+1],
			})
		}
		var cl map[byte]int
		if contLen > 0 {
			cl = map[byte]int{contHdr: int(contLen)}
		}
		pkts := DecodeWireAppend(nil, syms, cl)
		for _, p := range pkts {
			max := 255
			if n, ok := cl[p.Header]; ok {
				max = n
			}
			if len(p.Data) > max {
				t.Fatalf("decoded %d payload bytes for header %#02x, advertised at most %d",
					len(p.Data), p.Header, max)
			}
		}
		// Reused scratch must not change what is decoded.
		scratch := make([]DecodedPacket, 4, 8)
		again := DecodeWireAppend(scratch[:0], syms, cl)
		if len(again) != len(pkts) {
			t.Fatalf("scratch re-decode found %d packets, first pass %d", len(again), len(pkts))
		}
		for i := range pkts {
			if pkts[i].Header != again[i].Header || !bytes.Equal(pkts[i].Data, again[i].Data) {
				t.Fatalf("scratch re-decode diverged at packet %d: %+v vs %+v", i, pkts[i], again[i])
			}
		}
	})
}

// FuzzWireRoundTrip: encode-decode is the identity for every legal
// (header, payload).
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(byte(0x01), []byte{1, 2, 3})
	f.Add(byte(0xFF), bytes.Repeat([]byte{0xAA}, 32))
	f.Fuzz(func(t *testing.T, header byte, data []byte) {
		if len(data) == 0 || len(data) > MaxDataBytes {
			return
		}
		pkts := DecodeWire(Wire(header, data))
		if len(pkts) != 1 || pkts[0].Header != header || !bytes.Equal(pkts[0].Data, data) {
			t.Fatalf("round trip failed: %+v", pkts)
		}
		cont := DecodeWireWith(WireCont(header, data), map[byte]int{header: len(data)})
		if len(cont) != 1 || !bytes.Equal(cont[0].Data, data) {
			t.Fatalf("continuation round trip failed: %+v", cont)
		}
	})
}
