package comcobb

import (
	"bytes"
	"testing"
)

// FuzzDecodeWire feeds arbitrary byte streams, reinterpreted as wire
// symbol captures, to the decoder: it must never panic and never return
// packets longer than its input could encode.
func FuzzDecodeWire(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add([]byte{0xFF, 0x00, 0x20, 0x01, 0x02})
	f.Add([]byte{0x80, 0x42, 0x00}) // zero length byte
	f.Fuzz(func(t *testing.T, raw []byte) {
		// Reinterpret: byte with high bit set = start symbol, otherwise a
		// data byte; 0xFE = idle gap.
		var syms []wireSymbol
		for _, b := range raw {
			switch {
			case b == 0xFE:
				syms = append(syms, wireSymbol{})
			case b >= 0x80:
				syms = append(syms, wireSymbol{start: true})
			default:
				syms = append(syms, wireSymbol{valid: true, b: b})
			}
		}
		pkts := DecodeWire(syms)
		total := 0
		for _, p := range pkts {
			total += 3 + len(p.Data)
		}
		if total > len(syms)+MaxDataBytes {
			t.Fatalf("decoded %d symbol-equivalents from %d symbols", total, len(syms))
		}
		// Continuation-aware decoding must not panic either.
		_ = DecodeWireWith(syms, map[byte]int{0x01: 8, 0x02: 32})
	})
}

// FuzzWireRoundTrip: encode-decode is the identity for every legal
// (header, payload).
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(byte(0x01), []byte{1, 2, 3})
	f.Add(byte(0xFF), bytes.Repeat([]byte{0xAA}, 32))
	f.Fuzz(func(t *testing.T, header byte, data []byte) {
		if len(data) == 0 || len(data) > MaxDataBytes {
			return
		}
		pkts := DecodeWire(Wire(header, data))
		if len(pkts) != 1 || pkts[0].Header != header || !bytes.Equal(pkts[0].Data, data) {
			t.Fatalf("round trip failed: %+v", pkts)
		}
		cont := DecodeWireWith(WireCont(header, data), map[byte]int{header: len(data)})
		if len(cont) != 1 || !bytes.Equal(cont[0].Data, data) {
			t.Fatalf("continuation round trip failed: %+v", cont)
		}
	})
}
