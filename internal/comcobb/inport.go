package comcobb

import "fmt"

// rxState is the receiver FSM state (the paper's "buffer manager" FSM).
type rxState int

const (
	rxIdle   rxState = iota
	rxHeader         // start bit seen; header byte inside the synchronizer
	rxLength         // header latched; length byte inside the synchronizer
	rxData           // streaming payload bytes into slots
	rxDrop           // parity error: packet dropped, swallowing until the next start bit
)

// rxPacket is the bookkeeping for one packet resident in (or streaming
// through) an input buffer. The chip keeps this state in the registers
// associated with the packet's first slot; the model groups it in one
// record holding the slot chain. Records are recycled through the input
// port's free list, so a steady packet stream allocates nothing.
type rxPacket struct {
	slots     []int                  // slot indices in allocation order, backed by slotsArr
	slotsArr  [MaxSlotsPerPacket]int // inline backing store: a packet never has more slots
	dest      int                    // output port (crossbar column)
	newHeader byte
	length    int  // payload bytes, from the length register
	written   int  // payload bytes stored so far
	noLenByte bool // continuation packet: no length byte on the wire

	// Receive-pipeline staging: values seen at phase 0 that the FSMs
	// latch at phase 1 (Table 1's two-phase discipline).
	pendingHeader byte
	pendingLength int
	routed        bool
	routedCycle   int64 // cycle whose phase 1 posted the crossbar request

	// Fault-recovery state: granted marks the packet connected to an
	// output (cut-through may be mid-stream), poisoned marks corruption
	// that arrived too late to drop the packet.
	granted  bool
	poisoned bool
}

// complete reports end-of-packet (the write counter's EOP signal).
func (p *rxPacket) complete() bool { return p.written == p.length }

// pktRing is a fixed-capacity FIFO of packet records. Every resident
// packet owns at least one slot (the router allocates the first slot when
// it enqueues the packet), so a ring sized to the port's slot count can
// never overflow, and pushes and pops move no memory.
type pktRing struct {
	buf  []*rxPacket
	head int
	n    int
}

// damqvet:hotpath
func (q *pktRing) len() int { return q.n }

// damqvet:hotpath
func (q *pktRing) front() *rxPacket {
	if q.n == 0 {
		return nil
	}
	return q.buf[q.head]
}

// damqvet:hotpath
func (q *pktRing) push(p *rxPacket) {
	if q.n == len(q.buf) {
		panic("comcobb: destination queue overflow (flow control violated)")
	}
	q.buf[(q.head+q.n)%len(q.buf)] = p
	q.n++
}

// damqvet:hotpath
func (q *pktRing) popFront() *rxPacket {
	p := q.front()
	if p == nil {
		return nil
	}
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return p
}

// popBack removes the most recently pushed packet. Fault recovery uses it
// to un-enqueue a packet that was still being received when a parity
// error arrived: the in-flight packet is always the newest entry of its
// destination queue.
// damqvet:hotpath
func (q *pktRing) popBack() *rxPacket {
	if q.n == 0 {
		return nil
	}
	i := (q.head + q.n - 1) % len(q.buf)
	p := q.buf[i]
	q.buf[i] = nil
	q.n--
	return p
}

// InPort models one input port: start-bit detector, synchronizer, router,
// receiver FSM, slot RAM, and the five destination queues of the DAMQ
// buffer (the queue for the port's own pair is never used).
type InPort struct {
	chip *Chip
	id   int
	name string // "in[id]", precomputed off the trace path

	ram    *slotRAM
	router *Router
	queues [NumPorts]pktRing // FIFO per destination

	state rxState
	// sync models the one-cycle synchronizer: the symbol sampled from the
	// wire this cycle is released to the FSM next cycle.
	sync    wireSymbol
	syncOld wireSymbol

	cur *rxPacket // packet currently being received
	// readBusy marks the buffer's single read port occupied by an output
	// mid-transmission; the arbiter will not grant a second queue.
	readBusy bool

	// pktFree recycles rxPacket records (at most one live record per
	// buffer slot, since every resident packet owns a slot).
	pktFree []*rxPacket
}

func newInPort(chip *Chip, id, slots int, minMode bool) *InPort {
	in := &InPort{
		chip:    chip,
		id:      id,
		name:    fmt.Sprintf("in[%d]", id),
		ram:     newSlotRAM(slots),
		router:  newRouter(id, minMode),
		pktFree: make([]*rxPacket, 0, slots),
	}
	for d := range in.queues {
		in.queues[d].buf = make([]*rxPacket, slots)
	}
	return in
}

// newPacket takes a recycled packet record, or allocates one while the
// pool is still warming up.
// damqvet:hotpath
func (in *InPort) newPacket() *rxPacket {
	if n := len(in.pktFree); n > 0 {
		p := in.pktFree[n-1]
		in.pktFree = in.pktFree[:n-1]
		return p
	}
	p := &rxPacket{}
	p.slots = p.slotsArr[:0]
	return p
}

// recyclePacket clears a retired record and returns it to the pool.
// damqvet:hotpath
func (in *InPort) recyclePacket(p *rxPacket) {
	*p = rxPacket{}
	p.slots = p.slotsArr[:0]
	in.pktFree = append(in.pktFree, p)
}

// Router exposes the port's virtual-circuit table for configuration.
func (in *InPort) Router() *Router { return in.router }

// FreeSlots reports buffer space, the figure flow control exports.
func (in *InPort) FreeSlots() int { return in.ram.free() }

// QueueLen reports packets queued for output dest (including one still
// being received).
func (in *InPort) QueueLen(dest int) int { return in.queues[dest].len() }

// head returns the first packet queued for dest, or nil.
// damqvet:hotpath
func (in *InPort) head(dest int) *rxPacket {
	return in.queues[dest].front()
}

// pop removes the head packet for dest (on transmission grant).
// damqvet:hotpath
func (in *InPort) pop(dest int) *rxPacket {
	p := in.queues[dest].popFront()
	if p == nil {
		panic(fmt.Sprintf("comcobb: pop from empty queue %d of input %d", dest, in.id))
	}
	return p
}

// phase0 runs the input port's phase-0 work: shift the synchronizer, let
// the FSM consume the byte it releases, then run the start-bit detector
// on the raw wire. The FSM goes first so that a start bit arriving in the
// same cycle the previous packet's last byte is released (back-to-back
// packets) is seen with the receiver already idle, as in the chip, where
// the detector and the FSM are separate hardware.
// damqvet:hotpath
func (in *InPort) phase0(link *Link) {
	// The synchronizer releases last cycle's wire symbol this phase.
	in.syncOld = in.sync
	in.sync = link.sample()
	sym := in.syncOld
	t := in.chip.trace
	cyc := in.chip.cycle

	// Parity check (fault-checking chips only): a released data byte whose
	// parity wire disagrees with its data wires triggers per-state
	// recovery. onParityError reports whether it consumed the symbol; a
	// poisoned cut-through byte still falls through to writeData so the
	// read counter never outruns the write counter.
	if in.chip.flt != nil && sym.valid && sym.par != oddParity(sym.b) {
		if in.onParityError(link, sym) {
			in.detectStart(t, cyc)
			return
		}
	}

	switch in.state {
	case rxIdle, rxHeader:
		if in.state == rxHeader && sym.valid {
			// Header byte released by the synchronizer (cycle 2 phase 0).
			in.cur = in.newPacket()
			in.cur.pendingHeader = sym.b
			in.state = rxLength
			if t != nil {
				t.add(cyc, 0, in.name, "header byte %#02x latched into header register", sym.b)
			}
		}
	case rxLength:
		if !sym.valid {
			panic(fmt.Sprintf("comcobb: input %d missing length byte", in.id))
		}
		if int(sym.b) == 0 {
			panic(fmt.Sprintf("comcobb: input %d received zero length byte", in.id))
		}
		// Length byte released (cycle 3 phase 0), loaded into the router;
		// it is latched into the write counter at phase 1.
		in.cur.pendingLength = int(sym.b)
		if t != nil {
			t.add(cyc, 0, in.name, "length byte %d loaded into router", sym.b)
		}
	case rxData:
		if !sym.valid {
			panic(fmt.Sprintf("comcobb: input %d payload underrun (%d/%d bytes)",
				in.id, in.cur.written, in.cur.length))
		}
		in.writeData(sym.b)
	case rxDrop:
		// Swallow the remainder of the dropped packet; the next start bit
		// re-arms the receiver.
	}

	in.detectStart(t, cyc)
}

// detectStart runs the start-bit detector (cycle 0 of Table 1): it
// watches the raw wire, not the synchronizer output. A start bit
// mid-packet is a protocol violation — except after a fault drop, where
// it is exactly how the receiver resynchronizes with the next packet.
// damqvet:hotpath
func (in *InPort) detectStart(t *Trace, cyc int64) {
	if !in.sync.start {
		return
	}
	switch in.state {
	case rxIdle:
		in.state = rxHeader
		if t != nil {
			t.add(cyc, 0, in.name, "start bit detected; synchronizer armed")
		}
	case rxDrop:
		in.state = rxHeader
		if t != nil {
			t.add(cyc, 0, in.name, "start bit detected; receiver resynchronized after drop")
		}
	default:
		panic(fmt.Sprintf("comcobb: input %d saw a start bit mid-packet", in.id))
	}
}

// onParityError performs graceful degradation for one corrupted byte and
// reports whether the symbol was consumed (the packet is gone and the
// receiver is swallowing). The invariant behind each branch: a packet
// still being received is the newest entry of its destination queue, so
// un-enqueueing it is popBack; a granted packet has already left its
// queue and its transmitter is mid-stream, so it cannot be revoked — it
// is poisoned and delivered corrupted, with no NACK (a retransmission
// would duplicate it).
func (in *InPort) onParityError(link *Link, sym wireSymbol) bool {
	f := in.chip.flt
	t := in.chip.trace
	cyc := in.chip.cycle
	switch in.state {
	case rxIdle, rxDrop:
		// Stray corrupted byte outside any packet; nothing to recover.
		return true
	case rxHeader:
		// Header byte corrupted before any record or slot exists.
		if t != nil {
			t.add(cyc, 0, in.name, "parity error on header byte %#02x; packet dropped, NACK", sym.b)
		}
		link.postNACK()
		if f != nil {
			f.countNACK()
		}
		in.state = rxDrop
		return true
	case rxLength:
		// The length byte is released one cycle after routing ran: the
		// packet owns its first slot and sits at the tail of its queue,
		// and cannot have been granted (its length register is 0).
		p := in.cur
		if p.routed {
			if got := in.queues[p.dest].popBack(); got != p {
				panic(fmt.Sprintf("comcobb: input %d drop of %v un-enqueued %v", in.id, p, got))
			}
			in.releasePacketSlots(p)
		} else {
			in.recyclePacket(p)
		}
		if t != nil {
			t.add(cyc, 0, in.name, "parity error on length byte; packet dropped, NACK")
		}
		in.cur = nil
		link.postNACK()
		if f != nil {
			f.countNACK()
		}
		in.state = rxDrop
		return true
	default: // rxData
		p := in.cur
		if p.granted {
			if !p.poisoned {
				p.poisoned = true
				if f != nil {
					f.countPoisoned()
				}
				if t != nil {
					t.add(cyc, 0, in.name, "parity error mid-cut-through: packet poisoned, no NACK")
				}
			}
			return false
		}
		if t != nil {
			t.add(cyc, 0, in.name, "parity error on data byte %d/%d; packet dropped, NACK", p.written, p.length)
		}
		if got := in.queues[p.dest].popBack(); got != p {
			panic(fmt.Sprintf("comcobb: input %d drop of %v un-enqueued %v", in.id, p, got))
		}
		in.releasePacketSlots(p)
		in.cur = nil
		link.postNACK()
		if f != nil {
			f.countNACK()
		}
		in.state = rxDrop
		return true
	}
}

// writeData stores one payload byte, allocating a fresh slot at each
// 8-byte boundary (the write shift register stepping to the next slot).
// damqvet:hotpath
func (in *InPort) writeData(b byte) {
	p := in.cur
	off := p.written % SlotBytes
	if off == 0 && p.written > 0 {
		// Chain a new slot: point the previous slot's register at it.
		s := in.ram.alloc()
		prev := p.slots[len(p.slots)-1]
		in.ram.next[prev] = s
		p.slots = append(p.slots, s)
	}
	slot := p.slots[len(p.slots)-1]
	in.ram.write(slot, off, b)
	p.written++
	if p.complete() {
		if t := in.chip.trace; t != nil {
			t.add(in.chip.cycle, 0, in.name, "EOP: %d bytes in %d slot(s)", p.length, len(p.slots))
		}
		if in.chip.m != nil {
			in.chip.m.rxPackets.Inc()
		}
		in.cur = nil
		in.state = rxIdle
	}
}

// phase1 runs routing and length latching (cycles 2 and 3 phase 1 of
// Table 1).
// damqvet:hotpath
func (in *InPort) phase1() {
	if in.cur == nil || in.state != rxLength {
		return
	}
	t := in.chip.trace
	cyc := in.chip.cycle
	p := in.cur
	if !p.routed {
		// Router resolves the circuit and the packet's first slot is
		// linked into the destination queue; the arbiter learns of the
		// request this phase.
		route, err := in.router.Lookup(p.pendingHeader)
		if err != nil {
			panic(err)
		}
		p.dest = route.Out
		p.newHeader = route.NewHeader
		p.routed = true
		p.routedCycle = cyc
		first := in.ram.alloc()
		p.slots = append(p.slots, first)
		in.ram.header[first] = route.NewHeader
		in.queues[p.dest].push(p)
		if t != nil {
			t.add(cyc, 1, in.name, "routed to output %d, new header %#02x; first slot %d enqueued",
				p.dest, p.newHeader, first)
		}
		if route.ContLength > 0 {
			// Continuation packet: the router supplies the length; the
			// next wire byte is already payload.
			p.length = route.ContLength
			p.noLenByte = true
			in.ram.length[first] = p.length
			in.state = rxData
			if t != nil {
				t.add(cyc, 1, in.name, "continuation circuit: length %d from router table", p.length)
			}
		}
		return
	}
	if p.pendingLength > 0 && p.length == 0 {
		// Length decoder output latched into the write counter and the
		// first slot's length register.
		if p.pendingLength > MaxDataBytes {
			panic(fmt.Sprintf("comcobb: input %d length %d exceeds %d", in.id, p.pendingLength, MaxDataBytes))
		}
		p.length = p.pendingLength
		in.ram.length[p.slots[0]] = p.length
		in.state = rxData
		if t != nil {
			t.add(cyc, 1, in.name, "length %d latched into write counter", p.length)
		}
	}
}

// releasePacketSlots returns a fully transmitted packet's slots to the
// free list (the transmission manager FSM's cleanup) and retires the
// record itself to the pool. The caller must drop its reference.
// damqvet:hotpath
func (in *InPort) releasePacketSlots(p *rxPacket) {
	for _, s := range p.slots {
		in.ram.release(s)
	}
	in.recyclePacket(p)
}

// readByte fetches payload byte idx of p for the crossbar. The read must
// chase, never pass, the write.
// damqvet:hotpath
func (in *InPort) readByte(p *rxPacket, idx int) byte {
	if idx >= p.written {
		panic(fmt.Sprintf("comcobb: read of byte %d before it was written (%d/%d)", idx, p.written, p.length))
	}
	return in.ram.read(p.slots[idx/SlotBytes], idx%SlotBytes)
}
