package comcobb

import "fmt"

// SlotBytes is the slot size chosen in the paper (Section 3.2.3): small
// enough to waste little storage on short packets, large enough that the
// per-slot pointer/length/header registers and per-byte FSM work stay
// cheap.
const SlotBytes = 8

// MaxDataBytes is the largest packet payload (32 bytes = 4 slots).
const MaxDataBytes = 32

// MaxSlotsPerPacket is the worst-case slot footprint of one packet.
const MaxSlotsPerPacket = (MaxDataBytes + SlotBytes - 1) / SlotBytes

// slotRAM models the input port's buffer pool: an array of 8-byte slots
// with an explicit free list threaded through per-slot pointer registers,
// plus the per-slot length and new-header registers the chip associates
// with a packet's first slot. Reads and writes are independent (the chip's
// dual-ported cells + separate read/write shift registers).
type slotRAM struct {
	data   [][SlotBytes]byte
	next   []int // per-slot pointer register; -1 terminates a list
	length []int // data-byte count, valid on a packet's first slot
	header []byte

	freeHead, freeTail int
	freeCount          int
}

func newSlotRAM(slots int) *slotRAM {
	r := &slotRAM{
		data:   make([][SlotBytes]byte, slots),
		next:   make([]int, slots),
		length: make([]int, slots),
		header: make([]byte, slots),
	}
	r.reset()
	return r
}

func (r *slotRAM) reset() {
	n := len(r.data)
	for i := 0; i < n; i++ {
		r.next[i] = i + 1
	}
	if n > 0 {
		r.next[n-1] = -1
		r.freeHead, r.freeTail = 0, n-1
	} else {
		r.freeHead, r.freeTail = -1, -1
	}
	r.freeCount = n
}

// free reports available slots, the quantity exported to flow control.
func (r *slotRAM) free() int { return r.freeCount }

// alloc removes the head of the free list. It panics when empty: credits
// must prevent over-allocation, so exhaustion is a simulator bug.
func (r *slotRAM) alloc() int {
	if r.freeCount == 0 {
		panic("comcobb: slot pool exhausted (flow control violated)")
	}
	s := r.freeHead
	r.freeHead = r.next[s]
	if r.freeHead == -1 {
		r.freeTail = -1
	}
	r.next[s] = -1
	r.freeCount--
	return s
}

// release returns a slot to the tail of the free list.
func (r *slotRAM) release(s int) {
	if s < 0 || s >= len(r.data) {
		panic(fmt.Sprintf("comcobb: release of invalid slot %d", s))
	}
	r.next[s] = -1
	if r.freeTail == -1 {
		r.freeHead = s
	} else {
		r.next[r.freeTail] = s
	}
	r.freeTail = s
	r.freeCount++
}

// write stores one byte at (slot, offset).
func (r *slotRAM) write(slot, offset int, b byte) {
	r.data[slot][offset] = b
}

// read fetches one byte.
func (r *slotRAM) read(slot, offset int) byte {
	return r.data[slot][offset]
}
