package comcobb

import "fmt"

// OutPort models one byte-serial output port plus its slice of the
// crossbar: once the arbiter connects it to an input buffer's queue it
// streams start bit, new header, length, and payload at one symbol per
// cycle until the read counter expires.
type OutPort struct {
	chip *Chip
	id   int
	name string // "out[id]", precomputed off the trace path
	link *Link

	active   bool
	src      *InPort
	pkt      *rxPacket
	sent     int // symbols emitted: 0 start, 1 header, 2 length, 3+i data i
	finished bool

	// Hold, when set, keeps the arbiter from granting this port —
	// modeling a link that is down or an output whose far end asserted
	// back-pressure. Tests and failure-injection experiments use it.
	Hold bool
}

func newOutPort(chip *Chip, id int, link *Link) *OutPort {
	return &OutPort{chip: chip, id: id, name: fmt.Sprintf("out[%d]", id), link: link}
}

// Busy reports whether the port is mid-packet.
func (out *OutPort) Busy() bool { return out.active }

// grant connects this port to the head packet of src's queue for this
// output (latched at phase 1; transmission starts next cycle).
// damqvet:hotpath
func (out *OutPort) grant(src *InPort) {
	if out.active {
		panic(fmt.Sprintf("comcobb: grant to busy output %d", out.id))
	}
	pkt := src.pop(out.id)
	pkt.granted = true
	out.active = true
	out.src = src
	out.pkt = pkt
	out.sent = 0
	out.finished = false
	src.readBusy = true
	if t := out.chip.trace; t != nil {
		t.add(out.chip.cycle, 1, out.name,
			"crossbar grant latched: input %d queue %d (len %d)", src.id, out.id, pkt.length)
	}
}

// phase0 emits this cycle's symbol onto the wire.
// damqvet:hotpath
func (out *OutPort) phase0() {
	if !out.active || out.finished {
		return
	}
	t := out.chip.trace
	cyc := out.chip.cycle
	// Continuation packets carry no length byte downstream: their data
	// starts one symbol earlier.
	dataStart := 3
	if out.pkt.noLenByte {
		dataStart = 2
	}
	switch {
	case out.sent == 0:
		out.link.drive(wireSymbol{start: true})
		if t != nil {
			t.add(cyc, 0, out.name, "start bit transmitted")
		}
	case out.sent == 1:
		out.link.drive(dataSymbol(out.pkt.newHeader))
		if t != nil {
			t.add(cyc, 0, out.name, "header byte %#02x transmitted", out.pkt.newHeader)
		}
	case out.sent == 2 && !out.pkt.noLenByte:
		out.link.drive(dataSymbol(byte(out.pkt.length)))
		if t != nil {
			t.add(cyc, 0, out.name, "length byte %d transmitted; read counter loaded", out.pkt.length)
		}
	default:
		idx := out.sent - dataStart
		b := out.src.readByte(out.pkt, idx)
		// Parity is regenerated from the stored byte, as the hardware's
		// output stage does — which is why a poisoned packet's corruption
		// survives undetected downstream.
		out.link.drive(dataSymbol(b))
		if idx == out.pkt.length-1 {
			out.finished = true
			if t != nil {
				t.add(cyc, 0, out.name, "last data byte transmitted (read counter 0)")
			}
		}
	}
	out.sent++
}

// phase1 performs end-of-packet cleanup: the transmission manager FSM
// returns the packet's slots to the free list and frees the read port and
// the output for re-arbitration in this same phase.
// damqvet:hotpath
func (out *OutPort) phase1() {
	if !out.active || !out.finished {
		return
	}
	out.src.releasePacketSlots(out.pkt)
	out.src.readBusy = false
	out.active = false
	out.src = nil
	out.pkt = nil
	if out.chip.m != nil {
		out.chip.m.txPackets.Inc()
	}
}
