package comcobb

import "fmt"

// NumPorts is the chip's port count: four network ports plus the
// processor interface, all joined by a 5×5 crossbar.
const NumPorts = 5

// ProcPort is the index of the processor-interface port.
const ProcPort = 4

// Route is one virtual-circuit table entry: a packet whose header byte is
// the table key leaves through Out carrying NewHeader.
//
// ContLength implements the paper's message protocol: only the first
// packet of a message carries a length byte; continuation packets take
// their length from the router's table ("the router ... determines the
// packet's output port and new header (and length, if this is not the
// first packet in the message)"). A circuit with ContLength > 0 is a
// continuation circuit: its packets carry no length byte on the wire and
// are ContLength data bytes long. ContLength == 0 means the length byte
// is on the wire (first-of-message packets, or single-packet messages).
type Route struct {
	Out        int
	NewHeader  byte
	ContLength int
}

// Router is the per-input-port routing unit. The ComCoBB routes with
// virtual circuits: the header byte indexes a local table yielding the
// output port and the header to present downstream (Section 3.2.1). The
// table is a direct 256-entry array, like the chip's RAM: a map here put
// hash lookups on the per-packet hot path and hash-table nodes on the
// heap for every chip in a network.
type Router struct {
	port          int // which input port this router serves
	allowTurnback bool
	table         [256]Route
	present       [256]bool
}

func newRouter(port int, allowTurnback bool) *Router {
	return &Router{port: port, allowTurnback: allowTurnback}
}

// Set installs a circuit. In coprocessor mode the chip never routes a
// packet straight back out the port pair it arrived on (Section 3.1), so
// that is rejected; a chip built with Config.MINMode permits it, since in
// a multistage network input port i and output port i connect different
// neighbors ("an almost identical design can be used for DAMQ buffers in
// a switch of a multistage interconnection network").
func (r *Router) Set(header byte, route Route) error {
	if route.Out < 0 || route.Out >= NumPorts {
		return fmt.Errorf("comcobb: route to invalid port %d", route.Out)
	}
	if route.Out == r.port && r.port != ProcPort && !r.allowTurnback {
		return fmt.Errorf("comcobb: input %d may not route header %#x back to its own pair", r.port, header)
	}
	if route.ContLength < 0 || route.ContLength > MaxDataBytes {
		return fmt.Errorf("comcobb: continuation length %d out of 0..%d", route.ContLength, MaxDataBytes)
	}
	r.table[header] = route
	r.present[header] = true
	return nil
}

// Lookup resolves a header byte. Unknown headers are a configuration
// error surfaced to the caller.
func (r *Router) Lookup(header byte) (Route, error) {
	if !r.present[header] {
		// damqvet:coldcall an unknown header is a configuration error; the chip aborts the run
		return Route{}, fmt.Errorf("comcobb: input %d has no circuit for header %#x", r.port, header)
	}
	return r.table[header], nil
}
