// Package comcobb is a clock-cycle/phase-accurate model of the ComCoBB
// communication coprocessor's DAMQ buffer micro-architecture (Section 3 of
// the paper): start-bit detection, a one-cycle synchronizer, a
// virtual-circuit router, an 8-byte-slot buffer pool with an explicit free
// list, per-destination packet queues, a 5×5 crossbar with a central
// arbiter, and byte-serial output ports — one byte per 20 MHz clock cycle
// per link.
//
// The model exists to reproduce Table 1: a packet arriving at an idle
// switch whose destination queue is empty and output port idle is cut
// through with a turn-around of exactly four clock cycles (start bit in at
// cycle 0 → start bit out at cycle 4), regardless of packet length. It
// also exercises everything the long-clock simulators abstract away:
// variable-length packets (1-32 data bytes in 1-4 slots), multi-packet
// messages over virtual circuits, per-slot storage reclamation, and
// credit-based flow control between chips.
//
// # Timing model
//
// Each clock cycle has two phases. The reception pipeline follows the
// paper's Table 1 exactly:
//
//	cycle 0        start bit on the wire; detector arms the synchronizer
//	cycle 1        header byte enters the synchronizer
//	cycle 2 ph0    synchronizer releases the header into the header register
//	cycle 2 ph1    router resolves (output port, new header), links the
//	               packet's first slot into the destination queue, and
//	               requests crossbar arbitration
//	cycle 3 ph0    length byte released, loaded into the router
//	cycle 3 ph1    arbitration result latched; length latched into the
//	               write counter and the slot's length register
//	cycle 4 ph0    first data byte written to the buffer; on cut-through
//	               the new header crosses the crossbar and the output port
//	               drives the start bit
//	cycle 4+i ph0  data byte i written
//
// The transmission pipeline, measured from the cycle g whose phase 1
// latched the grant: start bit at g+1, new header byte at g+2, length
// byte at g+3, data byte i at g+4+i. For the cut-through case g = 3, so
// data byte i leaves at cycle 7+i, two cycles after it was written — the
// read safely chases the write, which is how the chip forwards a packet it
// has not finished receiving.
//
// # Simplifications (documented per DESIGN.md)
//
//   - Every packet carries a length byte. (In the chip only the first
//     packet of a message does; continuation lengths come from the
//     router's tables. The timing is identical.)
//   - The processor interface is modeled as a fifth link-connected port
//     pair rather than a parallel bus.
//   - Inter-chip flow control is a direct free-slot probe of the
//     downstream input buffer (standing in for the chip's flow-control
//     wires): an output port does not start a packet unless the
//     downstream buffer can hold all of it.
//   - Electrical details (shift-register addressing, dual-ported cells)
//     are represented by their architectural consequence: reads and
//     writes of the slot RAM proceed independently, one byte per cycle
//     each, with no port conflicts.
package comcobb
