package comcobb

import (
	"strings"
	"testing"
)

func TestChipAccessors(t *testing.T) {
	c := NewChip(Config{})
	if c.Cycle() != 0 {
		t.Fatal("fresh chip cycle != 0")
	}
	c.Tick()
	if c.Cycle() != 1 {
		t.Fatal("Tick did not advance cycle")
	}
	if c.OutLink(2) == nil || c.InLink(3) == nil {
		t.Fatal("link accessors nil")
	}
	if c.Out(1).Busy() {
		t.Fatal("fresh output busy")
	}
	if c.Trace() != nil {
		t.Fatal("trace should be nil when not configured")
	}
}

func TestNetworkRunAndAdd(t *testing.T) {
	a := NewChip(Config{})
	net := NewNetwork()
	net.Add(a)
	b := NewChip(Config{})
	net.Add(b)
	net.Run(7)
	if a.Cycle() != 7 || b.Cycle() != 7 {
		t.Fatalf("cycles = %d, %d", a.Cycle(), b.Cycle())
	}
}

func TestDriverPending(t *testing.T) {
	l := &Link{}
	d := NewDriver(l)
	if d.Pending() != 0 {
		t.Fatal("fresh driver pending != 0")
	}
	d.Queue(0x01, []byte{1, 2}, 3)
	// start + header + length + 2 data + 3 gap = 8 symbols.
	if d.Pending() != 8 {
		t.Fatalf("pending = %d", d.Pending())
	}
	d.QueueCont(0x02, []byte{9}, 0)
	// + start + header + 1 data = 3 symbols.
	if d.Pending() != 11 {
		t.Fatalf("pending after cont = %d", d.Pending())
	}
	for d.Pending() > 0 {
		d.Tick()
		l.sample()
	}
	d.Tick() // idle drive once drained
	if s := l.sample(); s.start || s.valid {
		t.Fatal("drained driver drove a symbol")
	}
}

func TestEventString(t *testing.T) {
	e := Event{Cycle: 4, Phase: 0, Unit: "out[1]", Msg: "start bit transmitted"}
	s := e.String()
	for _, want := range []string{"cycle", "4", "phase 0", "out[1]", "start bit"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Event.String() = %q missing %q", s, want)
		}
	}
}

func TestTraceNilFind(t *testing.T) {
	var tr *Trace
	if _, ok := tr.Find("x", "y"); ok {
		t.Fatal("nil trace found an event")
	}
	if tr.FindAll("x") != nil {
		t.Fatal("nil trace returned events")
	}
	tr.add(0, 0, "x", "y") // must not panic
}

func TestSlotRAMReleasePanicsOnBadSlot(t *testing.T) {
	r := newSlotRAM(4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.release(99)
}

func TestReadBeforeWritePanics(t *testing.T) {
	c := NewChip(Config{})
	in := c.In(0)
	p := &rxPacket{slots: []int{0}, length: 8, written: 2}
	defer func() {
		if recover() == nil {
			t.Fatal("read overtook write without panic")
		}
	}()
	in.readByte(p, 5)
}
