package comcobb

import (
	"fmt"

	"damq/internal/cfgerr"
	"damq/internal/fault"
	"damq/internal/obs"
)

// DefaultSlots is the per-input-port slot count used when a Config leaves
// it zero: 12 slots, the paper's "96 static cells on a single bus line
// (12 slots)".
const DefaultSlots = 12

// Config parameterizes a chip.
type Config struct {
	// Slots is the per-input-port buffer size in 8-byte slots.
	Slots int
	// Trace, when non-nil, records cycle/phase events.
	Trace *Trace
	// Observer, when non-nil, registers the chip.* counters (cycles,
	// grants, rx/tx packets) in its registry; if a Trace is also present
	// the trace counts per-unit events there too. Like Trace, a nil
	// Observer costs nothing on the cycle path.
	Observer *obs.Observer
	// MINMode relaxes the coprocessor rule that input port i never
	// routes to output port i: in a multistage interconnection network
	// the two sides of a port pair face different neighbors, so the turn
	// is legitimate. Package chipnet sets this.
	MINMode bool
	// Faults, when any rate is non-zero, arms wire-corruption injection
	// on the chip's input links and parity checking in its receivers
	// (drop + NACK on mismatch). The zero value keeps the chip exactly
	// as fast and deterministic as a fault-free build.
	Faults fault.Config
	// FaultChip is this chip's number in the fault engine's site space
	// (fault.ChipLinkSite), so multi-chip systems give every chip a
	// distinct corruption schedule. Standalone chips leave it 0.
	FaultChip int
}

// Validate checks the config under the repo-wide sentinel-error
// convention: an explicit Slots below MaxSlotsPerPacket (a buffer that
// cannot hold one full packet) wraps cfgerr.ErrBadCapacity. Zero Slots
// is valid and means DefaultSlots.
func (cfg Config) Validate() error {
	if cfg.Slots != 0 && cfg.Slots < MaxSlotsPerPacket {
		return fmt.Errorf("comcobb: need at least %d slots per buffer, got %d: %w",
			MaxSlotsPerPacket, cfg.Slots, cfgerr.ErrBadCapacity)
	}
	return cfg.Faults.Validate()
}

// Chip is one ComCoBB communication coprocessor: five port pairs (four
// network links plus the processor interface) around a 5×5 crossbar.
type Chip struct {
	cycle    int64
	trace    *Trace
	m        *chipMetrics // nil when no observer is attached
	flt      *chipFaults  // nil when fault injection is off
	inPorts  [NumPorts]*InPort
	outPorts [NumPorts]*OutPort
	inLinks  [NumPorts]*Link
	outLinks [NumPorts]*Link
	prio     int // arbiter round-robin pointer
}

// NewChip builds a chip with fresh, unconnected links on every port.
func NewChip(cfg Config) *Chip {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	slots := cfg.Slots
	if slots == 0 {
		slots = DefaultSlots
	}
	c := &Chip{trace: cfg.Trace}
	if cfg.Faults.Enabled() {
		inj, err := fault.NewInjector(cfg.Faults)
		if err != nil {
			panic(err) // unreachable: Validate already passed
		}
		c.flt = newChipFaults(inj, cfg.FaultChip, cfg.Observer)
	}
	if cfg.Observer != nil {
		c.m = newChipMetrics(cfg.Observer)
		if c.trace != nil {
			// Generalized tracing: the event recorder also counts events
			// per unit in the observer's registry.
			c.trace.Metrics = cfg.Observer.Registry()
		}
	}
	for i := 0; i < NumPorts; i++ {
		c.inLinks[i] = &Link{}
		c.outLinks[i] = &Link{}
		c.inPorts[i] = newInPort(c, i, slots, cfg.MINMode)
		c.outPorts[i] = newOutPort(c, i, c.outLinks[i])
		c.inLinks[i].downstream = c.inPorts[i]
	}
	return c
}

// Cycle returns the current clock cycle.
func (c *Chip) Cycle() int64 { return c.cycle }

// Trace returns the chip's event trace (may be nil).
func (c *Chip) Trace() *Trace { return c.trace }

// FaultStats returns the chip's fault counters (all zero on a fault-free
// chip).
func (c *Chip) FaultStats() FaultStats {
	if c.flt == nil {
		return FaultStats{}
	}
	return c.flt.stats
}

// In returns input port i, for configuration (routing tables) and
// inspection.
func (c *Chip) In(i int) *InPort { return c.inPorts[i] }

// Out returns output port i.
func (c *Chip) Out(i int) *OutPort { return c.outPorts[i] }

// InLink returns the link feeding input port i. Testbenches drive it;
// Connect rewires it between chips.
func (c *Chip) InLink(i int) *Link { return c.inLinks[i] }

// OutLink returns the link driven by output port i. Unconnected output
// links collect their traffic into a sink readable via Delivered.
func (c *Chip) OutLink(i int) *Link { return c.outLinks[i] }

// Delivered decodes and returns the packets collected at unconnected
// output port i (a testbench memory or the local processor). All packets
// are assumed to carry length bytes; use DeliveredWith when the sink
// receives continuation circuits.
func (c *Chip) Delivered(i int) []DecodedPacket {
	return DecodeWire(c.outLinks[i].sink)
}

// DeliveredWith decodes output port i's capture using the receiver's
// knowledge of continuation circuits (header byte → continuation length).
func (c *Chip) DeliveredWith(i int, contLength map[byte]int) []DecodedPacket {
	return DecodeWireWith(c.outLinks[i].sink, contLength)
}

// Connect wires output port out of chip a to input port in of chip b:
// they share one Link, and flow control probes b's buffer.
func Connect(a *Chip, out int, b *Chip, in int) {
	l := &Link{downstream: b.inPorts[in]}
	a.outLinks[out] = l
	a.outPorts[out].link = l
	b.inLinks[in] = l
}

// phase0Out drives all output wires for this cycle.
// damqvet:hotpath
func (c *Chip) phase0Out() {
	for _, op := range c.outPorts {
		op.phase0()
	}
}

// phase0In samples all input wires and collects sink links. Wire
// corruption is injected here — after every producer has driven, before
// any consumer samples — so a corrupted byte is what the synchronizer
// actually latches.
// damqvet:hotpath
func (c *Chip) phase0In() {
	if c.flt != nil {
		c.flt.corrupt(c)
	}
	for i, ip := range c.inPorts {
		ip.phase0(c.inLinks[i])
	}
	for _, l := range c.outLinks {
		if l.downstream == nil {
			l.collect()
		}
	}
}

// phase1 runs routing/latching, transmission cleanup, then arbitration.
// damqvet:hotpath
func (c *Chip) phase1() {
	for _, ip := range c.inPorts {
		ip.phase1()
	}
	for _, op := range c.outPorts {
		op.phase1()
	}
	c.arbitrate()
	c.cycle++
	if c.m != nil {
		c.m.cycles.Inc()
	}
}

// Tick advances a single standalone chip one clock cycle. Multi-chip
// systems must use Network.Tick so wires settle in dependency order.
// damqvet:hotpath
func (c *Chip) Tick() {
	c.phase0Out()
	c.phase0In()
	c.phase1()
}

// slotsNeeded is the buffer footprint of a packet with n payload bytes.
func slotsNeeded(n int) int { return (n + SlotBytes - 1) / SlotBytes }

// arbitrate implements the central crossbar arbiter (phase 1). Requests
// posted by the router in an earlier phase (Table 1: router → arbiter at
// cycle 2 phase 1, grant latched cycle 3 phase 1) compete; each input
// buffer has a single read port, each output takes one connection, and a
// grant requires downstream space for the whole packet (credit-based flow
// control).
// damqvet:hotpath
func (c *Chip) arbitrate() {
	for k := 0; k < NumPorts; k++ {
		i := (c.prio + k) % NumPorts
		in := c.inPorts[i]
		if in.readBusy {
			continue
		}
		// Longest eligible queue first, as in the network-level arbiter.
		best, bestLen := -1, 0
		for o := 0; o < NumPorts; o++ {
			if c.outPorts[o].Busy() || c.outPorts[o].Hold {
				continue
			}
			pkt := in.head(o)
			if pkt == nil || !c.eligible(pkt, o) {
				continue
			}
			if l := in.QueueLen(o); best == -1 || l > bestLen {
				best, bestLen = o, l
			}
		}
		if best >= 0 {
			c.outPorts[best].grant(in)
			if c.m != nil {
				c.m.grants.Inc()
			}
		}
	}
	c.prio = (c.prio + 1) % NumPorts
}

// eligible applies the per-packet grant conditions: the request must be
// at least one full cycle old (the arbitration latency of Table 1), the
// length register must be loaded, and the downstream buffer must have
// room for the entire packet.
// damqvet:hotpath
func (c *Chip) eligible(pkt *rxPacket, out int) bool {
	if pkt.routedCycle >= c.cycle {
		return false // request posted this phase; grant next cycle
	}
	if pkt.length == 0 {
		return false // length byte not latched yet
	}
	if down := c.outPorts[out].link.downstream; down != nil {
		if down.FreeSlots() < slotsNeeded(pkt.length) {
			return false
		}
	}
	return true
}
