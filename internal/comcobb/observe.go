package comcobb

import "damq/internal/obs"

// Chip metric names, registered when a Config carries an Observer.
const (
	// MetricChipCycles counts clock cycles executed.
	MetricChipCycles = "chip.cycles"
	// MetricChipGrants counts crossbar grants latched by the arbiter.
	MetricChipGrants = "chip.grants"
	// MetricChipRxPackets counts packets fully received into a buffer
	// (the write counter's EOP events).
	MetricChipRxPackets = "chip.rx_packets"
	// MetricChipTxPackets counts packets fully transmitted and cleaned up.
	MetricChipTxPackets = "chip.tx_packets"
)

// chipMetrics is the chip's probe set; every hot-path use is nil-guarded
// like the chip's *Trace, so an unobserved chip runs no instrument code.
type chipMetrics struct {
	cycles    *obs.Counter
	grants    *obs.Counter
	rxPackets *obs.Counter
	txPackets *obs.Counter
}

func newChipMetrics(o *obs.Observer) *chipMetrics {
	r := o.Registry()
	return &chipMetrics{
		cycles:    r.Counter(MetricChipCycles),
		grants:    r.Counter(MetricChipGrants),
		rxPackets: r.Counter(MetricChipRxPackets),
		txPackets: r.Counter(MetricChipTxPackets),
	}
}
