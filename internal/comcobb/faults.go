package comcobb

import (
	"damq/internal/fault"
	"damq/internal/obs"
)

// FaultStats are a fault-checking chip's plain counters, readable without
// an observer. All are zero on a fault-free chip.
type FaultStats struct {
	// Corrupted counts wire bytes the injector flipped on this chip's
	// input links.
	Corrupted int64
	// Nacks counts parity failures NACKed back upstream (one per dropped
	// packet).
	Nacks int64
	// Dropped counts packets a receiver discarded on a parity error
	// before or during buffering (never silently: each is NACKed).
	Dropped int64
	// Poisoned counts packets that were already granted and cutting
	// through the crossbar when corruption arrived: the damaged byte
	// propagates downstream with regenerated parity, so only an
	// end-to-end check can catch it. The receiver does not NACK these —
	// the packet was delivered (corrupted), and a retransmission would
	// duplicate it.
	Poisoned int64
}

// chipFaults is the per-chip fault-injection state: the injector that
// decides corruption, the chip's site number, the plain counters, and the
// optional observer instruments. The Chip holds a nil *chipFaults when
// faults are off, so the entire machinery sits behind one pointer check
// on the cycle path.
type chipFaults struct {
	inj   *fault.Injector
	chip  int // site number for fault.ChipLinkSite
	stats FaultStats
	m     *chipFaultMetrics // nil without an observer
}

// chipFaultMetrics mirrors FaultStats into an observer's registry using
// the shared fault.* names. Registered only when faults are enabled, so a
// faults-off snapshot is byte-identical to pre-fault builds.
type chipFaultMetrics struct {
	corrupted *obs.Counter
	nacks     *obs.Counter
	dropped   *obs.Counter
	poisoned  *obs.Counter
}

func newChipFaults(inj *fault.Injector, chip int, o *obs.Observer) *chipFaults {
	f := &chipFaults{inj: inj, chip: chip}
	if o != nil {
		r := o.Registry()
		f.m = &chipFaultMetrics{
			corrupted: r.Counter(fault.MetricWireCorrupted),
			nacks:     r.Counter(fault.MetricNACKs),
			dropped:   r.Counter(fault.MetricRxDropped),
			poisoned:  r.Counter(fault.MetricRxPoisoned),
		}
	}
	return f
}

// corrupt applies this cycle's wire corruption to the chip's input links,
// after every producer has driven and before any consumer samples. Only
// valid data symbols are touched; the parity wire is left stale, which is
// what makes the corruption detectable.
// damqvet:hotpath
func (f *chipFaults) corrupt(c *Chip) {
	for i, l := range c.inLinks {
		if !l.cur.valid || l.cur.start {
			continue
		}
		mask, ok := f.inj.CorruptWire(fault.ChipLinkSite(f.chip, i), c.cycle)
		if !ok {
			continue
		}
		l.cur.b ^= mask
		f.stats.Corrupted++
		if f.m != nil {
			f.m.corrupted.Inc()
		}
	}
}

// countNACK records one receiver drop + NACK pair.
func (f *chipFaults) countNACK() {
	f.stats.Nacks++
	f.stats.Dropped++
	if f.m != nil {
		f.m.nacks.Inc()
		f.m.dropped.Inc()
	}
}

// countPoisoned records one packet poisoned mid-cut-through.
func (f *chipFaults) countPoisoned() {
	f.stats.Poisoned++
	if f.m != nil {
		f.m.poisoned.Inc()
	}
}
