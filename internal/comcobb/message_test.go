package comcobb

import (
	"bytes"
	"testing"
)

// msgChip builds a chip with a message circuit on input 0: header 0x01 is
// the first-of-message packet (length byte on the wire), header 0x09 its
// continuation circuit with a fixed 32-byte continuation length, both
// toward output 1.
func msgChip(t *testing.T) *Chip {
	t.Helper()
	c := NewChip(Config{Trace: &Trace{}})
	if err := c.In(0).Router().Set(0x01, Route{Out: 1, NewHeader: 0x01}); err != nil {
		t.Fatal(err)
	}
	if err := c.In(0).Router().Set(0x09, Route{Out: 1, NewHeader: 0x09, ContLength: 32}); err != nil {
		t.Fatal(err)
	}
	return c
}

// contSink is the receiver-side circuit knowledge for decoding.
var contSink = map[byte]int{0x09: 32}

func TestContinuationPacketIntegrity(t *testing.T) {
	c := msgChip(t)
	d := NewDriver(c.InLink(0))
	// A three-packet message: first (with length byte), two continuations
	// (no length byte).
	first := payload(16)
	cont1 := pattern32(0x40)
	cont2 := pattern32(0x80)
	d.Queue(0x01, first, 0)
	d.QueueCont(0x09, cont1, 0)
	d.QueueCont(0x09, cont2, 0)
	for i := 0; i < 200; i++ {
		d.Tick()
		c.Tick()
	}
	got := c.DeliveredWith(1, contSink)
	if len(got) != 3 {
		t.Fatalf("delivered %d packets, want 3", len(got))
	}
	if !bytes.Equal(got[0].Data, first) || got[0].Header != 0x01 {
		t.Fatalf("first packet wrong: %+v", got[0])
	}
	if !bytes.Equal(got[1].Data, cont1) || !bytes.Equal(got[2].Data, cont2) {
		t.Fatal("continuation payload corrupted")
	}
	if got[1].Header != 0x09 {
		t.Fatalf("continuation header = %#x", got[1].Header)
	}
	// Slot conservation after the message.
	if c.In(0).FreeSlots() != DefaultSlots {
		t.Fatalf("slots leaked: %d free", c.In(0).FreeSlots())
	}
}

func TestContinuationCutThroughStillFourCycles(t *testing.T) {
	c := msgChip(t)
	d := NewDriver(c.InLink(0))
	d.QueueCont(0x09, pattern32(0x10), 0)
	for i := 0; i < 80; i++ {
		d.Tick()
		c.Tick()
	}
	in, ok1 := c.Trace().Find("in[0]", "start bit detected; synchronizer armed")
	out, ok2 := c.Trace().Find("out[1]", "start bit transmitted")
	if !ok1 || !ok2 {
		t.Fatal("missing trace events")
	}
	if out.Cycle-in.Cycle != 4 {
		t.Fatalf("continuation turn-around = %d, want 4", out.Cycle-in.Cycle)
	}
	// The router-supplied length must be visible in the trace.
	if _, ok := c.Trace().Find("in[0]", "continuation circuit: length 32 from router table"); !ok {
		t.Fatal("continuation routing event missing")
	}
	// And the outgoing wire must NOT contain a length symbol: the data
	// starts one cycle earlier than for a length-carrying packet.
	if _, ok := c.Trace().Find("out[1]", "length byte 32 transmitted; read counter loaded"); ok {
		t.Fatal("continuation packet transmitted a length byte")
	}
}

func TestContinuationWireOneCycleShorter(t *testing.T) {
	// Same payload, with and without length byte: the continuation's last
	// data byte leaves one cycle earlier.
	lastByteCycle := func(cont bool) int64 {
		c := msgChip(t)
		d := NewDriver(c.InLink(0))
		if cont {
			d.QueueCont(0x09, pattern32(0), 0)
		} else {
			d.Queue(0x01, pattern32(0), 0)
		}
		for i := 0; i < 80; i++ {
			d.Tick()
			c.Tick()
		}
		e, ok := c.Trace().Find("out[1]", "last data byte transmitted (read counter 0)")
		if !ok {
			t.Fatal("no completion event")
		}
		return e.Cycle
	}
	withLen := lastByteCycle(false)
	withoutLen := lastByteCycle(true)
	if withoutLen != withLen-1 {
		t.Fatalf("continuation finished at %d, length-carrying at %d (want exactly 1 cycle earlier)",
			withoutLen, withLen)
	}
}

func TestMultiHopMessage(t *testing.T) {
	// A full message across two chips, continuations included.
	a := msgChip(t)
	b := NewChip(Config{Trace: &Trace{}})
	if err := b.In(2).Router().Set(0x01, Route{Out: 3, NewHeader: 0x01}); err != nil {
		t.Fatal(err)
	}
	if err := b.In(2).Router().Set(0x09, Route{Out: 3, NewHeader: 0x09, ContLength: 32}); err != nil {
		t.Fatal(err)
	}
	Connect(a, 1, b, 2)
	net := NewNetwork(a, b)
	d := NewDriver(a.InLink(0))
	d.Queue(0x01, payload(8), 0)
	d.QueueCont(0x09, pattern32(0x20), 0)
	for i := 0; i < 300; i++ {
		d.Tick()
		net.Tick()
	}
	got := b.DeliveredWith(3, contSink)
	if len(got) != 2 {
		t.Fatalf("delivered %d packets at far chip, want 2", len(got))
	}
	if len(got[0].Data) != 8 || len(got[1].Data) != 32 {
		t.Fatalf("sizes %d, %d", len(got[0].Data), len(got[1].Data))
	}
}

func TestRouterRejectsBadContLength(t *testing.T) {
	c := NewChip(Config{})
	if err := c.In(0).Router().Set(0x01, Route{Out: 1, ContLength: 33}); err == nil {
		t.Fatal("accepted oversized continuation length")
	}
	if err := c.In(0).Router().Set(0x01, Route{Out: 1, ContLength: -1}); err == nil {
		t.Fatal("accepted negative continuation length")
	}
}

func pattern32(base byte) []byte {
	p := make([]byte, 32)
	for i := range p {
		p[i] = base + byte(i)
	}
	return p
}
