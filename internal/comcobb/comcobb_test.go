package comcobb

import (
	"bytes"
	"fmt"
	"testing"
)

// newTestChip builds a chip with tracing and a simple circuit table on
// input 0: header h routes to output h%5 (except 0, its own pair) with
// new header h+1.
func newTestChip(t *testing.T) *Chip {
	t.Helper()
	c := NewChip(Config{Trace: &Trace{}})
	for in := 0; in < NumPorts; in++ {
		for h := 0; h < 16; h++ {
			out := h % NumPorts
			if out == in && in != ProcPort {
				continue
			}
			if err := c.In(in).Router().Set(byte(h), Route{Out: out, NewHeader: byte(h + 1)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return c
}

func payload(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(0x10 + i)
	}
	return b
}

// runPacket drives one packet into input port in and ticks until the
// chip is quiet, returning the trace.
func runPacket(t *testing.T, c *Chip, in int, header byte, data []byte, cycles int) {
	t.Helper()
	d := NewDriver(c.InLink(in))
	d.Queue(header, data, 0)
	for i := 0; i < cycles; i++ {
		d.Tick()
		c.Tick()
	}
}

// TestCutThroughTiming is the repo's Table 1: a packet arriving at an
// idle switch must produce the outgoing start bit exactly four cycles
// after the incoming one, independent of packet length.
func TestCutThroughTiming(t *testing.T) {
	for _, n := range []int{1, 4, 8, 20, 32} {
		c := newTestChip(t)
		runPacket(t, c, 0, 0x01, payload(n), 50)
		tr := c.Trace()

		in, ok := tr.Find("in[0]", "start bit detected; synchronizer armed")
		if !ok {
			t.Fatalf("n=%d: no start bit event", n)
		}
		out, ok := tr.Find("out[1]", "start bit transmitted")
		if !ok {
			t.Fatalf("n=%d: no outgoing start bit", n)
		}
		if got := out.Cycle - in.Cycle; got != 4 {
			for _, e := range tr.Events {
				t.Log(e)
			}
			t.Fatalf("n=%d: turn-around = %d cycles, want 4", n, got)
		}
	}
}

// TestTable1EventSchedule pins the full phase-by-phase schedule of the
// paper's Table 1 for a cut-through packet arriving at cycle 0.
func TestTable1EventSchedule(t *testing.T) {
	c := newTestChip(t)
	runPacket(t, c, 0, 0x01, payload(8), 40)
	tr := c.Trace()

	want := []struct {
		cycle int64
		phase int
		unit  string
		msg   string
	}{
		{0, 0, "in[0]", "start bit detected; synchronizer armed"},
		{2, 0, "in[0]", "header byte 0x01 latched into header register"},
		{2, 1, "in[0]", "routed to output 1, new header 0x02; first slot 0 enqueued"},
		{3, 0, "in[0]", "length byte 8 loaded into router"},
		{3, 1, "in[0]", "length 8 latched into write counter"},
		{3, 1, "out[1]", "crossbar grant latched: input 0 queue 1 (len 8)"},
		{4, 0, "out[1]", "start bit transmitted"},
		{5, 0, "out[1]", "header byte 0x02 transmitted"},
		{6, 0, "out[1]", "length byte 8 transmitted; read counter loaded"},
	}
	for _, w := range want {
		e, ok := tr.Find(w.unit, w.msg)
		if !ok {
			for _, ev := range tr.Events {
				t.Log(ev)
			}
			t.Fatalf("missing event: %s %q", w.unit, w.msg)
		}
		if e.Cycle != w.cycle || e.Phase != w.phase {
			t.Errorf("%s %q at cycle %d phase %d, want cycle %d phase %d",
				w.unit, w.msg, e.Cycle, e.Phase, w.cycle, w.phase)
		}
	}
}

// TestPacketIntegrity: data delivered downstream must be byte-identical,
// with the rewritten header, across all packet lengths.
func TestPacketIntegrity(t *testing.T) {
	for n := 1; n <= MaxDataBytes; n++ {
		c := newTestChip(t)
		runPacket(t, c, 0, 0x01, payload(n), 60)
		got := c.Delivered(1)
		if len(got) != 1 {
			t.Fatalf("n=%d: delivered %d packets", n, len(got))
		}
		if got[0].Header != 0x02 {
			t.Fatalf("n=%d: header = %#x, want 0x02 (rewritten)", n, got[0].Header)
		}
		if !bytes.Equal(got[0].Data, payload(n)) {
			t.Fatalf("n=%d: payload corrupted: %v", n, got[0].Data)
		}
	}
}

// TestSlotAccounting: after the packet leaves, every slot is back on the
// free list; during reception the footprint matches ceil(n/8).
func TestSlotAccounting(t *testing.T) {
	c := newTestChip(t)
	if c.In(0).FreeSlots() != DefaultSlots {
		t.Fatalf("fresh chip free slots = %d", c.In(0).FreeSlots())
	}
	runPacket(t, c, 0, 0x01, payload(20), 60)
	if c.In(0).FreeSlots() != DefaultSlots {
		t.Fatalf("slots leaked: free = %d, want %d", c.In(0).FreeSlots(), DefaultSlots)
	}
}

// TestBufferedWhenOutputBusy: two packets from different inputs to the
// same output — the second is buffered, not cut through, and both arrive
// intact.
func TestBufferedWhenOutputBusy(t *testing.T) {
	c := newTestChip(t)
	d0 := NewDriver(c.InLink(0))
	d2 := NewDriver(c.InLink(2))
	d0.Queue(0x01, payload(32), 0) // 0 -> out 1, long packet
	d2.Queue(0x01, payload(4), 0)  // 2 -> out 1, arrives while busy
	for i := 0; i < 120; i++ {
		d0.Tick()
		d2.Tick()
		c.Tick()
	}
	got := c.Delivered(1)
	if len(got) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(got))
	}
	if len(got[0].Data) != 32 || len(got[1].Data) != 4 {
		t.Fatalf("delivery order/sizes wrong: %d, %d", len(got[0].Data), len(got[1].Data))
	}
	// The second packet cannot have been cut through: its start bit must
	// come after the first packet's last byte.
	outs := c.Trace().FindAll("out[1]")
	var starts []int64
	for _, e := range outs {
		if e.Msg == "start bit transmitted" {
			starts = append(starts, e.Cycle)
		}
	}
	if len(starts) != 2 {
		t.Fatalf("start bits = %v", starts)
	}
	// First packet occupies out[1] from its start until start+2+32 data.
	if starts[1] <= starts[0]+int64(2+32) {
		t.Fatalf("second packet started at %d, inside first packet's transmission from %d", starts[1], starts[0])
	}
}

// TestNonFIFOForwarding is the DAMQ's reason to exist, at chip level:
// input 0 holds a packet for a busy output and a later packet for an idle
// output; the later packet must overtake the earlier one.
func TestNonFIFOForwarding(t *testing.T) {
	c := newTestChip(t)
	// Keep output 1 busy with a 32-byte packet from input 2.
	d2 := NewDriver(c.InLink(2))
	d2.Queue(0x01, payload(32), 0)
	// Input 0: first a packet for (busy) output 1, then one for (idle)
	// output 3.
	d0 := NewDriver(c.InLink(0))
	for i := 0; i < 4; i++ { // let input 2 win output 1 first
		d2.Tick()
		d0.Tick()
		c.Tick()
	}
	d0.Queue(0x01, payload(8), 0) // -> output 1 (busy)
	d0.Queue(0x03, payload(8), 0) // -> output 3 (idle)
	for i := 0; i < 150; i++ {
		d2.Tick()
		d0.Tick()
		c.Tick()
	}
	to1 := c.Delivered(1)
	to3 := c.Delivered(3)
	if len(to1) != 2 || len(to3) != 1 {
		t.Fatalf("deliveries: out1=%d out3=%d", len(to1), len(to3))
	}
	// The overtaking is visible in the trace: out[3]'s start precedes
	// out[1]'s second start.
	var start3, secondStart1 int64 = -1, -1
	for _, e := range c.Trace().FindAll("out[3]") {
		if e.Msg == "start bit transmitted" {
			start3 = e.Cycle
			break
		}
	}
	count := 0
	for _, e := range c.Trace().FindAll("out[1]") {
		if e.Msg == "start bit transmitted" {
			count++
			if count == 2 {
				secondStart1 = e.Cycle
			}
		}
	}
	if start3 < 0 || secondStart1 < 0 {
		t.Fatal("expected transmissions missing")
	}
	if start3 >= secondStart1 {
		t.Fatalf("no overtaking: out3 start %d, out1 second start %d", start3, secondStart1)
	}
}

// TestSingleReadPort: two queues of the same input buffer must not
// transmit simultaneously even when both outputs are idle.
func TestSingleReadPort(t *testing.T) {
	c := newTestChip(t)
	d0 := NewDriver(c.InLink(0))
	d0.Queue(0x01, payload(16), 0) // -> out 1
	d0.Queue(0x03, payload(16), 0) // -> out 3
	for i := 0; i < 120; i++ {
		d0.Tick()
		c.Tick()
	}
	if len(c.Delivered(1)) != 1 || len(c.Delivered(3)) != 1 {
		t.Fatal("packets lost")
	}
	// out[3] may only start after out[1] finished reading (start1 + 2 +
	// 16 data bytes).
	e1, _ := c.Trace().Find("out[1]", "start bit transmitted")
	e3, _ := c.Trace().Find("out[3]", "start bit transmitted")
	if e3.Cycle <= e1.Cycle+int64(2+16) {
		t.Fatalf("read port shared: out1 start %d, out3 start %d", e1.Cycle, e3.Cycle)
	}
}

// TestMultiChipForwarding: two chips in series; a packet crosses both
// with 4-cycle turnaround each when idle.
func TestMultiChipForwarding(t *testing.T) {
	a := newTestChip(t)
	b := NewChip(Config{Trace: &Trace{}})
	for h := 0; h < 16; h++ {
		// Chip b input 2: route everything to output 3 for delivery.
		if err := b.In(2).Router().Set(byte(h), Route{Out: 3, NewHeader: byte(h)}); err != nil {
			t.Fatal(err)
		}
	}
	Connect(a, 1, b, 2) // a's output 1 feeds b's input 2
	net := NewNetwork(a, b)
	d := NewDriver(a.InLink(0))
	d.Queue(0x01, payload(10), 0)
	for i := 0; i < 80; i++ {
		d.Tick()
		net.Tick()
	}
	got := b.Delivered(3)
	if len(got) != 1 {
		t.Fatalf("delivered %d packets at far chip", len(got))
	}
	if !bytes.Equal(got[0].Data, payload(10)) {
		t.Fatal("payload corrupted across two hops")
	}
	// Turnaround on chip b: 4 cycles from its start-bit arrival.
	inB, ok := b.Trace().Find("in[2]", "start bit detected; synchronizer armed")
	if !ok {
		t.Fatal("chip b never saw the start bit")
	}
	outB, ok := b.Trace().Find("out[3]", "start bit transmitted")
	if !ok {
		t.Fatal("chip b never transmitted")
	}
	if outB.Cycle-inB.Cycle != 4 {
		t.Fatalf("chip b turnaround = %d, want 4", outB.Cycle-inB.Cycle)
	}
}

// TestFlowControlBlocksWhenDownstreamFull: with the downstream buffer
// full and unable to drain, the upstream output must hold its packet; it
// transmits as soon as space frees.
func TestFlowControlBlocksWhenDownstreamFull(t *testing.T) {
	a := newTestChip(t)
	b := NewChip(Config{Slots: 4, Trace: &Trace{}}) // room for one 32-byte packet
	for h := 0; h < 16; h++ {
		if err := b.In(2).Router().Set(byte(h), Route{Out: 3, NewHeader: byte(h)}); err != nil {
			t.Fatal(err)
		}
	}
	Connect(a, 1, b, 2)
	net := NewNetwork(a, b)

	// Freeze b's only drain, then send two 32-byte packets from a. The
	// first fills b's 4-slot buffer; the second must wait in a.
	b.Out(3).Hold = true
	da := NewDriver(a.InLink(0))
	da.Queue(0x01, payload(32), 0)
	da.Queue(0x01, payload(32), 0)
	for i := 0; i < 300; i++ {
		da.Tick()
		net.Tick()
	}
	startsWhileHeld := 0
	for _, e := range a.Trace().FindAll("out[1]") {
		if e.Msg == "start bit transmitted" {
			startsWhileHeld++
		}
	}
	if startsWhileHeld != 1 {
		t.Fatalf("upstream transmitted %d packets into a full downstream, want 1", startsWhileHeld)
	}
	if b.In(2).FreeSlots() != 0 {
		t.Fatalf("downstream buffer should be full, has %d free slots", b.In(2).FreeSlots())
	}
	if len(b.Delivered(3)) != 0 {
		t.Fatal("held output delivered packets")
	}

	// Release the drain: both packets flow through.
	b.Out(3).Hold = false
	for i := 0; i < 300; i++ {
		da.Tick()
		net.Tick()
	}
	got := b.Delivered(3)
	if len(got) != 2 {
		t.Fatalf("delivered %d packets after release, want 2", len(got))
	}
	for _, p := range got {
		if !bytes.Equal(p.Data, payload(32)) {
			t.Fatal("payload corrupted through back-pressure")
		}
	}
	if b.In(2).FreeSlots() != 4 {
		t.Fatalf("slots leaked downstream: %d free", b.In(2).FreeSlots())
	}
}

// TestProcessorInterface: the processor injects via port 4 and receives
// via port 4.
func TestProcessorInterface(t *testing.T) {
	c := newTestChip(t)
	// Route input 4 header 0x06 -> output 1; input 2 header 0x04 -> out 4.
	if err := c.In(4).Router().Set(0x06, Route{Out: 1, NewHeader: 0x07}); err != nil {
		t.Fatal(err)
	}
	dProc := NewDriver(c.InLink(ProcPort))
	dProc.Queue(0x06, payload(5), 0)
	dNet := NewDriver(c.InLink(2))
	dNet.Queue(0x04, payload(7), 0) // 4 % 5 == 4 -> processor
	for i := 0; i < 80; i++ {
		dProc.Tick()
		dNet.Tick()
		c.Tick()
	}
	if got := c.Delivered(1); len(got) != 1 || len(got[0].Data) != 5 {
		t.Fatalf("processor->net delivery wrong: %v", got)
	}
	if got := c.Delivered(ProcPort); len(got) != 1 || len(got[0].Data) != 7 {
		t.Fatalf("net->processor delivery wrong: %v", got)
	}
}

// TestRouterValidation covers the routing-table error paths.
func TestRouterValidation(t *testing.T) {
	c := NewChip(Config{})
	if err := c.In(0).Router().Set(0x01, Route{Out: 0}); err == nil {
		t.Error("accepted route back to own pair")
	}
	if err := c.In(0).Router().Set(0x01, Route{Out: 7}); err == nil {
		t.Error("accepted invalid port")
	}
	if _, err := c.In(0).Router().Lookup(0x55); err == nil {
		t.Error("lookup of missing circuit succeeded")
	}
	if err := c.In(ProcPort).Router().Set(0x01, Route{Out: ProcPort}); err != nil {
		t.Errorf("processor loopback should be allowed: %v", err)
	}
}

func TestNewChipPanicsOnTinyBuffer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewChip(Config{Slots: 2})
}

func TestWireRoundTrip(t *testing.T) {
	syms := Wire(0x09, payload(13))
	// Prepend idle noise and append another packet.
	var capture []wireSymbol
	capture = append(capture, wireSymbol{}, wireSymbol{})
	capture = append(capture, syms...)
	capture = append(capture, Wire(0x0a, payload(1))...)
	pkts := DecodeWire(capture)
	if len(pkts) != 2 {
		t.Fatalf("decoded %d packets", len(pkts))
	}
	if pkts[0].Header != 0x09 || !bytes.Equal(pkts[0].Data, payload(13)) {
		t.Fatal("first packet wrong")
	}
	if pkts[1].Header != 0x0a || len(pkts[1].Data) != 1 {
		t.Fatal("second packet wrong")
	}
}

func TestWirePanicsOnBadLength(t *testing.T) {
	for _, n := range []int{0, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Wire accepted %d-byte payload", n)
				}
			}()
			Wire(0x01, make([]byte, n))
		}()
	}
}

// TestBackToBackPackets: contiguous packets on one link (next start bit
// immediately after the previous packet's last byte) must both survive.
func TestBackToBackPackets(t *testing.T) {
	c := newTestChip(t)
	d := NewDriver(c.InLink(0))
	d.Queue(0x01, payload(6), 0)
	d.Queue(0x01, payload(9), 0) // immediately follows, no idle gap
	for i := 0; i < 100; i++ {
		d.Tick()
		c.Tick()
	}
	got := c.Delivered(1)
	if len(got) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(got))
	}
	if len(got[0].Data) != 6 || len(got[1].Data) != 9 {
		t.Fatalf("sizes: %d, %d", len(got[0].Data), len(got[1].Data))
	}
}

// TestTraceNilSafe: a chip without a trace must run identically.
func TestTraceNilSafe(t *testing.T) {
	c := NewChip(Config{})
	for h := 0; h < 16; h++ {
		if out := h % NumPorts; out != 0 {
			if err := c.In(0).Router().Set(byte(h), Route{Out: out, NewHeader: byte(h)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	runPacket(t, c, 0, 0x01, payload(8), 40)
	if len(c.Delivered(1)) != 1 {
		t.Fatal("nil-trace chip lost the packet")
	}
}

// TestSoakManyPackets pushes a few hundred randomized-length packets
// through all four network inputs concurrently and checks full delivery
// and slot conservation.
func TestSoakManyPackets(t *testing.T) {
	c := newTestChip(t)
	var drivers []*Driver
	sent := map[int]int{} // per output port
	for in := 0; in < 4; in++ {
		d := NewDriver(c.InLink(in))
		drivers = append(drivers, d)
		for k := 0; k < 50; k++ {
			// Cycle through that input's legal outputs.
			h := byte((in + 1 + k%3) % NumPorts)
			if int(h) == in {
				h = byte((int(h) + 1) % NumPorts)
			}
			n := 1 + (k*7)%32
			d.Queue(h, payload(n), k%3)
			sent[int(h)%NumPorts]++
		}
	}
	for i := 0; i < 20000; i++ {
		for _, d := range drivers {
			d.Tick()
		}
		c.Tick()
	}
	totalSent, totalGot := 0, 0
	for out := 0; out < NumPorts; out++ {
		totalGot += len(c.Delivered(out))
	}
	for _, n := range sent {
		totalSent += n
	}
	if totalGot != totalSent {
		t.Fatalf("delivered %d of %d packets", totalGot, totalSent)
	}
	for in := 0; in < 4; in++ {
		if c.In(in).FreeSlots() != DefaultSlots {
			t.Fatalf("input %d leaked slots: %d free", in, c.In(in).FreeSlots())
		}
	}
}

func BenchmarkChipCutThrough(b *testing.B) {
	c := NewChip(Config{})
	for h := 0; h < 16; h++ {
		if out := h % NumPorts; out != 0 {
			if err := c.In(0).Router().Set(byte(h), Route{Out: out, NewHeader: byte(h)}); err != nil {
				b.Fatal(err)
			}
		}
	}
	d := NewDriver(c.InLink(0))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Queue(0x01, []byte{1, 2, 3, 4, 5, 6, 7, 8}, 4)
		for d.Pending() > 0 {
			d.Tick()
			c.Tick()
		}
	}
	// Drain.
	for i := 0; i < 64; i++ {
		d.Tick()
		c.Tick()
	}
	_ = fmt.Sprint(c.Cycle())
}
