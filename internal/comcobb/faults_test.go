package comcobb

import (
	"bytes"
	"fmt"
	"testing"

	"damq/internal/fault"
)

// faultChip builds a standalone chip routing header 0x01 to output 1
// (rewritten to 0x02), with the given fault config.
func faultChip(t *testing.T, fc fault.Config) *Chip {
	t.Helper()
	c := NewChip(Config{Faults: fc})
	c.In(0).Router().Set(0x01, Route{Out: 1, NewHeader: 0x02})
	return c
}

// runDriverChip ticks driver + chip until the driver drains (or cycles
// runs out), then a few more cycles to flush the pipeline.
func runDriverChip(d *Driver, c *Chip, cycles int) {
	for i := 0; i < cycles; i++ {
		d.Tick()
		c.Tick()
		if d.Pending() == 0 {
			break
		}
	}
	for i := 0; i < 64; i++ {
		d.Tick()
		c.Tick()
	}
}

// TestRetransmitDeliversExactlyOnce is the heart of the recovery
// machinery: under wire corruption with retries enabled, every queued
// packet is either delivered exactly once or explicitly given up — never
// duplicated, never silently lost — and the NACK ledger balances:
// receiver NACKs == driver retries + give-ups.
func TestRetransmitDeliversExactlyOnce(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			c := faultChip(t, fault.Config{Seed: seed, WireCorruptRate: 0.02})
			d := NewDriver(c.InLink(0))
			d.SetRetryPolicy(4, 2)

			const packets = 60
			payload := func(i int) []byte {
				return []byte{byte(i), byte(i >> 8), 0xA5, byte(i * 7)}
			}
			for i := 0; i < packets; i++ {
				d.Queue(0x01, payload(i), 0)
			}
			runDriverChip(d, c, 20000)

			if d.Pending() != 0 {
				t.Fatalf("driver stuck with %d symbols pending", d.Pending())
			}
			st := c.FaultStats()
			delivered := d.retry.delivered
			if delivered+d.GaveUp() != packets {
				t.Fatalf("delivered %d + gaveUp %d != queued %d", delivered, d.GaveUp(), packets)
			}
			if st.Nacks != d.Retries()+d.GaveUp() {
				t.Fatalf("NACK ledger unbalanced: receiver %d, driver retries %d + gaveUp %d",
					st.Nacks, d.Retries(), d.GaveUp())
			}
			if st.Dropped != st.Nacks {
				t.Fatalf("dropped %d != nacks %d", st.Dropped, st.Nacks)
			}

			got := c.Delivered(1)
			if int64(len(got)) != delivered {
				t.Fatalf("sink has %d packets, driver delivered %d (duplicate or loss)", len(got), delivered)
			}
			// Every non-poisoned delivery must be byte-perfect; poisoned
			// ones carry exactly the injected corruption.
			mismatched := 0
			for _, p := range got {
				if p.Header != 0x02 {
					t.Fatalf("delivered header %#02x, want 0x02", p.Header)
				}
				ok := false
				for i := 0; i < packets; i++ {
					if bytes.Equal(p.Data, payload(i)) {
						ok = true
						break
					}
				}
				if !ok {
					mismatched++
				}
			}
			if int64(mismatched) != st.Poisoned {
				t.Fatalf("%d corrupted deliveries, %d poisoned packets counted", mismatched, st.Poisoned)
			}
			if st.Corrupted == 0 {
				t.Fatalf("no corruption injected at rate 0.02 over the run; seed %d schedule suspect", seed)
			}
		})
	}
}

// TestRetryGivesUpAtLimit drives a packet through certain corruption
// (rate 1: every byte flipped) so every attempt is NACKed on its header
// byte, and checks the driver abandons after exactly the budget.
func TestRetryGivesUpAtLimit(t *testing.T) {
	c := faultChip(t, fault.Config{Seed: 3, WireCorruptRate: 1})
	d := NewDriver(c.InLink(0))
	d.SetRetryPolicy(3, 1)
	d.Queue(0x01, []byte{1, 2, 3}, 0)
	runDriverChip(d, c, 4000)

	if d.Pending() != 0 {
		t.Fatalf("driver stuck with %d symbols pending", d.Pending())
	}
	if d.GaveUp() != 1 {
		t.Fatalf("gaveUp = %d, want 1", d.GaveUp())
	}
	if d.Retries() != 3 {
		t.Fatalf("retries = %d, want 3 (the full budget)", d.Retries())
	}
	if n := len(c.Delivered(1)); n != 0 {
		t.Fatalf("%d packets delivered under total corruption", n)
	}
	if st := c.FaultStats(); st.Nacks != 4 {
		t.Fatalf("nacks = %d, want 4 (first attempt + 3 retries)", st.Nacks)
	}
}

// TestRetryLimitZeroMeansNoRetransmit pins the RetryLimit == 0 contract.
func TestRetryLimitZeroMeansNoRetransmit(t *testing.T) {
	c := faultChip(t, fault.Config{Seed: 3, WireCorruptRate: 1})
	d := NewDriver(c.InLink(0))
	d.SetRetryPolicy(0, 1)
	d.Queue(0x01, []byte{9}, 0)
	runDriverChip(d, c, 1000)
	if d.Retries() != 0 || d.GaveUp() != 1 {
		t.Fatalf("retries=%d gaveUp=%d, want 0/1", d.Retries(), d.GaveUp())
	}
}

// TestFaultsOffChipUnchanged checks a zero fault config leaves the chip
// on the fault-free code path entirely: no fault state, no parity
// checking (even deliberately bad parity is ignored), identical traffic.
func TestFaultsOffChipUnchanged(t *testing.T) {
	c := faultChip(t, fault.Config{})
	if c.flt != nil {
		t.Fatal("zero fault config armed the fault machinery")
	}
	// Drive a packet with deliberately wrong parity everywhere: a
	// fault-free chip must not care.
	d := NewDriver(c.InLink(0))
	d.Queue(0x01, []byte{0xFF, 0x00, 0x55}, 2)
	for i := 0; i < len(d.syms); i++ {
		d.syms[i].par = !d.syms[i].par
	}
	for i := 0; i < 40; i++ {
		d.Tick()
		c.Tick()
	}
	got := c.Delivered(1)
	if len(got) != 1 || !bytes.Equal(got[0].Data, []byte{0xFF, 0x00, 0x55}) {
		t.Fatalf("fault-free chip mangled traffic: %+v", got)
	}
	if st := c.FaultStats(); st != (FaultStats{}) {
		t.Fatalf("fault-free chip counted faults: %+v", st)
	}
}

// TestChipFaultDeterminism runs the same faulted scenario twice and
// requires identical counters and identical delivered bytes.
func TestChipFaultDeterminism(t *testing.T) {
	run := func() (FaultStats, []DecodedPacket, int64, int64) {
		c := faultChip(t, fault.Config{Seed: 77, WireCorruptRate: 0.05})
		d := NewDriver(c.InLink(0))
		d.SetRetryPolicy(5, 2)
		for i := 0; i < 40; i++ {
			d.Queue(0x01, []byte{byte(i), byte(i + 1), byte(i + 2)}, 0)
		}
		runDriverChip(d, c, 20000)
		return c.FaultStats(), c.Delivered(1), d.Retries(), d.GaveUp()
	}
	st1, got1, r1, g1 := run()
	st2, got2, r2, g2 := run()
	if st1 != st2 || r1 != r2 || g1 != g2 {
		t.Fatalf("fault counters differ across identical runs: %+v/%d/%d vs %+v/%d/%d", st1, r1, g1, st2, r2, g2)
	}
	if len(got1) != len(got2) {
		t.Fatalf("delivered %d vs %d packets", len(got1), len(got2))
	}
	for i := range got1 {
		if got1[i].Header != got2[i].Header || !bytes.Equal(got1[i].Data, got2[i].Data) {
			t.Fatalf("delivery %d differs: %+v vs %+v", i, got1[i], got2[i])
		}
	}
}
