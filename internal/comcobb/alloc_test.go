package comcobb

import "testing"

// TestChipSteadyStateAllocs pins the chip model's allocation diet: once
// the packet-record pool is warm and the driver's script buffer has grown
// to its high-water mark, streaming packets through a chip must be
// allocation-free with tracing disabled. The test mirrors the netsim
// steady-state test (internal/netsim/alloc_test.go) so both simulation
// cores are held to the same standard; regressions here (a packet record
// allocated per hop, a routing-table hash node per lookup, a queue
// re-sliced per pop, a Sprintf on the trace path) show up as allocations
// proportional to the packet rate and fail loudly.
func TestChipSteadyStateAllocs(t *testing.T) {
	chip := NewChip(Config{MINMode: true})
	for in := 0; in < 4; in++ {
		for h := 0; h < 4; h++ {
			if err := chip.In(in).Router().Set(byte(h), Route{Out: h, NewHeader: byte(h)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	drivers := [4]*Driver{}
	for in := 0; in < 4; in++ {
		drivers[in] = NewDriver(chip.InLink(in))
	}
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}

	// One "round" sends a packet from every input to a distinct output and
	// drains the chip: the drains bound the resident packet count, so after
	// warmup every record comes from the pool.
	round := func(i int) {
		for in := 0; in < 4; in++ {
			drivers[in].Queue(byte((in+i)%4), payload, 0)
		}
		for c := 0; c < 40; c++ {
			for in := 0; in < 4; in++ {
				drivers[in].Tick()
			}
			chip.Tick()
		}
	}
	for i := 0; i < 10; i++ {
		round(i)
	}

	i := 0
	avg := testing.AllocsPerRun(200, func() {
		round(i)
		i++
	})
	// The only remaining allocation source is the amortized doubling of the
	// four output-sink captures, which grow for the lifetime of the chip.
	const limit = 0.25
	if avg > limit {
		t.Errorf("steady-state round allocates %.3f allocs/op, want <= %v", avg, limit)
	}
}

// TestNetworkSteadyStateAllocs is the same diet assertion at network
// scale: a 2-chip pipeline forwarding continuation circuits, exercising
// the inter-chip link, credit flow control, and the continuation decode
// path with zero steady-state allocations.
func TestNetworkSteadyStateAllocs(t *testing.T) {
	a := NewChip(Config{})
	b := NewChip(Config{})
	// Route header 0x10 through a (in 0 → out 1), then through b
	// (in 2 → out 3).
	if err := a.In(0).Router().Set(0x10, Route{Out: 1, NewHeader: 0x11}); err != nil {
		t.Fatal(err)
	}
	if err := b.In(2).Router().Set(0x11, Route{Out: 3, NewHeader: 0x12}); err != nil {
		t.Fatal(err)
	}
	Connect(a, 1, b, 2)
	net := NewNetwork(a, b)
	drv := NewDriver(a.InLink(0))
	payload := []byte{9, 8, 7, 6}

	round := func() {
		drv.Queue(0x10, payload, 0)
		for c := 0; c < 40; c++ {
			drv.Tick()
			net.Tick()
		}
	}
	for i := 0; i < 10; i++ {
		round()
	}
	avg := testing.AllocsPerRun(200, round)
	const limit = 0.25
	if avg > limit {
		t.Errorf("steady-state round allocates %.3f allocs/op, want <= %v", avg, limit)
	}
}
