package comcobb

import "math/bits"

// wireSymbol is what one link carries in one clock cycle: either nothing,
// a start bit, or a data byte. The chip's links are 8 data wires plus
// framing; the start bit occupies its own cycle before the header byte
// (Section 3.2). The parity wire (par) carries odd parity over the data
// byte; a fault-checking receiver compares it against the byte it sees,
// so any single-bit corruption of the data wires is detected. Fault-free
// chips ignore it.
type wireSymbol struct {
	start bool
	valid bool
	b     byte
	par   bool
}

// oddParity is the parity wire's value for byte b.
// damqvet:hotpath
func oddParity(b byte) bool { return bits.OnesCount8(b)&1 == 1 }

// dataSymbol builds a valid data-byte symbol with its parity wire set.
// damqvet:hotpath
func dataSymbol(b byte) wireSymbol {
	return wireSymbol{valid: true, b: b, par: oddParity(b)}
}

// Link is a unidirectional point-to-point connection delivering one
// symbol per clock cycle with the paper's single-cycle synchronized
// transmission. The producer writes during its phase-0 step; the consumer
// samples during its own phase-0 step of the same cycle (the network
// ticker orders producers before consumers).
type Link struct {
	cur wireSymbol
	// downstream is the input port fed by this link, used by the
	// producer's flow control to probe free buffer space; nil for sinks.
	downstream *InPort
	// sink collects delivered symbols when there is no downstream port
	// (testbench memories / the local processor).
	sink []wireSymbol
	// nack is the reverse-direction NACK wire: a fault-checking receiver
	// raises it when it drops a packet on a parity error, and the
	// upstream driver consumes it with TakeNACK to trigger retransmission.
	nack bool
}

// postNACK raises the link's NACK wire (receiver side).
// damqvet:hotpath
func (l *Link) postNACK() { l.nack = true }

// TakeNACK reads and clears the NACK wire (sender side).
// damqvet:hotpath
func (l *Link) TakeNACK() bool {
	n := l.nack
	l.nack = false
	return n
}

// drive places this cycle's symbol on the wire.
// damqvet:hotpath
func (l *Link) drive(s wireSymbol) { l.cur = s }

// sample reads this cycle's symbol and clears the wire.
// damqvet:hotpath
func (l *Link) sample() wireSymbol {
	s := l.cur
	l.cur = wireSymbol{}
	return s
}

// collect appends the current symbol to the sink (used by links that end
// outside the modeled network).
// damqvet:hotpath
func (l *Link) collect() {
	s := l.sample()
	if s.start || s.valid {
		l.sink = append(l.sink, s)
	}
}

// AppendWire appends a first-of-message packet's on-wire symbol sequence
// to dst and returns the extended slice: start bit, header byte, length
// byte, then data. Drivers encoding a stream of packets pass their script
// buffer as dst so encoding reuses its capacity.
// damqvet:hotpath
func AppendWire(dst []wireSymbol, header byte, data []byte) []wireSymbol {
	if len(data) == 0 || len(data) > MaxDataBytes {
		panic("comcobb: packet data must be 1..32 bytes")
	}
	dst = append(dst, wireSymbol{start: true},
		dataSymbol(header),
		dataSymbol(byte(len(data))))
	for _, b := range data {
		dst = append(dst, dataSymbol(b))
	}
	return dst
}

// Wire encodes a first-of-message packet into a fresh symbol slice.
// Tests and testbench drivers use it.
func Wire(header byte, data []byte) []wireSymbol {
	return AppendWire(nil, header, data)
}

// AppendWireCont appends a continuation packet's symbols to dst: start
// bit, header byte, then data with no length byte — the receiving
// router's circuit table must carry ContLength == len(data).
// damqvet:hotpath
func AppendWireCont(dst []wireSymbol, header byte, data []byte) []wireSymbol {
	if len(data) == 0 || len(data) > MaxDataBytes {
		panic("comcobb: packet data must be 1..32 bytes")
	}
	dst = append(dst, wireSymbol{start: true}, dataSymbol(header))
	for _, b := range data {
		dst = append(dst, dataSymbol(b))
	}
	return dst
}

// WireCont encodes a continuation packet into a fresh symbol slice.
func WireCont(header byte, data []byte) []wireSymbol {
	return AppendWireCont(nil, header, data)
}

// DecodeWire parses a sink's collected symbols back into packets,
// returning (header, data) pairs. It is the inverse of Wire (all packets
// carry length bytes) and tolerates idle gaps between packets.
func DecodeWire(syms []wireSymbol) []DecodedPacket {
	return DecodeWireWith(syms, nil)
}

// DecodeWireWith decodes a capture that may contain continuation packets.
// contLength maps a header byte to that circuit's continuation length; a
// header absent from the map (or a nil map) is decoded as length-carrying.
// A real receiver knows this from its own circuit tables, exactly like a
// switch's router does.
func DecodeWireWith(syms []wireSymbol, contLength map[byte]int) []DecodedPacket {
	return DecodeWireAppend(nil, syms, contLength)
}

// DecodeWireAppend is DecodeWireWith appending into caller-provided
// scratch: repeated decoders (testbenches polling a sink every few cycles)
// pass dst[:0] to reuse the packet slice across calls. The payload of each
// DecodedPacket is still freshly allocated — it must outlive the capture.
func DecodeWireAppend(dst []DecodedPacket, syms []wireSymbol, contLength map[byte]int) []DecodedPacket {
	out := dst
	i := 0
	for i < len(syms) {
		if !syms[i].start {
			i++
			continue
		}
		if i+1 >= len(syms) {
			break
		}
		hdr := syms[i+1].b
		var n, dataAt int
		if cl, ok := contLength[hdr]; ok && cl > 0 {
			n, dataAt = cl, i+2
		} else {
			if i+2 >= len(syms) {
				break
			}
			n, dataAt = int(syms[i+2].b), i+3
		}
		data := make([]byte, 0, n)
		for j := 0; j < n && dataAt+j < len(syms); j++ {
			data = append(data, syms[dataAt+j].b)
		}
		out = append(out, DecodedPacket{Header: hdr, Data: data})
		i = dataAt + n
	}
	return out
}

// DecodedPacket is one packet recovered from a wire capture.
type DecodedPacket struct {
	Header byte
	Data   []byte
}
