// Package packet defines the packet model shared by the long-clock switch
// and network simulators.
//
// In the paper's evaluation (Section 4) packets are fixed length and move
// whole-packet-at-a-time on a "long clock"; the variable-length,
// byte-serial behaviour is modeled separately, at clock-cycle granularity,
// by package comcobb. A Packet here therefore carries routing and
// accounting metadata but no payload bytes.
package packet

import "fmt"

// Packet is one fixed- or variable-length packet traversing a simulated
// network. Fields are exported because the simulator packages in this
// module construct and inspect packets directly; external users go through
// the damq facade.
type Packet struct {
	// ID is unique per simulation run, assigned by the allocator.
	ID uint64
	// Source is the network input (processor) that generated the packet.
	Source int
	// Dest is the network output (memory module) the packet is addressed to.
	Dest int
	// Slots is the storage the packet occupies in a buffer, in slot units.
	// Fixed-length experiments use 1; the variable-length extension uses
	// 1..4 (the paper's 1-32 bytes in 8-byte slots).
	Slots int
	// Born is the long-clock cycle in which the packet was generated.
	Born int64
	// Injected is the cycle the packet entered the first network stage
	// (-1 until then). Network latency in saturated regimes is measured
	// from Injected; end-to-end latency from Born.
	Injected int64
	// Hot marks hot-spot packets, for per-class accounting.
	Hot bool
	// OutPort is scratch used inside a switch: the local output port the
	// packet has been routed to. It is rewritten at every stage.
	OutPort int
	// Bytes is the payload size in bytes; used by the asynchronous
	// event-driven simulator, where link occupancy is per byte. The
	// long-clock simulators use Slots only.
	Bytes int
	// ReadyAt is event-simulator scratch: the time the packet's routing
	// completes at its current switch and it becomes eligible for the
	// crossbar. Rewritten at every hop.
	ReadyAt int64
}

// String renders the packet for traces and test failures.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt#%d %d->%d slots=%d born=%d", p.ID, p.Source, p.Dest, p.Slots, p.Born)
}

// Alloc hands out packets with unique IDs, recycling retired packets
// through a free list. A long-clock simulation births one packet per
// source per cycle at full load and retires one per delivery or discard,
// so without recycling the packet churn dominates the allocation profile
// of a run; with it, steady state allocates nothing — the live set plus
// free list plateau at the simulation's high-water mark.
//
// An Alloc belongs to one simulation shard (it is not safe for concurrent
// use); parallel sweeps give each run its own Alloc, and a sharded run
// gives each shard its own, partitioned over the ID space with
// SetIDStream so IDs stay unique network-wide.
type Alloc struct {
	next uint64
	// offset/stride partition the ID space across shards (SetIDStream).
	// The zero value issues 1, 2, 3, ... exactly as before.
	offset uint64
	stride uint64
	free   []*Packet
}

// SetIDStream partitions the ID space for sharded simulations: the n-th
// packet (1-based) gets ID offset + (n-1)*stride + 1, so shard k of S
// calling SetIDStream(k, S) issues IDs congruent to k+1 mod S — unique
// across shards without any cross-shard coordination. Call before the
// first New; the zero state behaves as SetIDStream(0, 1).
func (a *Alloc) SetIDStream(offset, stride uint64) {
	if stride == 0 {
		stride = 1
	}
	a.offset = offset
	a.stride = stride
}

// New returns a packet with the next unique ID and Injected = -1,
// reusing a recycled packet when one is available. Every field is reset,
// so a recycled packet is indistinguishable from a fresh one.
// damqvet:hotpath
func (a *Alloc) New(source, dest, slots int, born int64) *Packet {
	a.next++
	id := a.next
	if a.stride > 1 {
		id = a.offset + (a.next-1)*a.stride + 1
	}
	var p *Packet
	if n := len(a.free); n > 0 {
		p = a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
	} else {
		p = new(Packet)
	}
	*p = Packet{
		ID:       id,
		Source:   source,
		Dest:     dest,
		Slots:    slots,
		Born:     born,
		Injected: -1,
	}
	return p
}

// Clone returns a copy of src drawn from the free list (or fresh if the
// list is empty), every field equal — including ID, which is deliberately
// not re-issued: a clone is the same packet duplicated across a
// cut-through hop, not a new birth, so Issued and the ID stream are
// untouched. The event-driven simulator clones a packet into the next
// stage's buffer while the original's tail is still draining out of the
// current one.
// damqvet:hotpath
func (a *Alloc) Clone(src *Packet) *Packet {
	var p *Packet
	if n := len(a.free); n > 0 {
		p = a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
	} else {
		p = new(Packet)
	}
	*p = *src
	return p
}

// Recycle returns a retired packet to the free list. The caller must hold
// the only remaining reference: the packet will be handed out again by a
// future New with all fields rewritten.
// damqvet:hotpath
func (a *Alloc) Recycle(p *Packet) {
	if p == nil {
		return
	}
	a.free = append(a.free, p)
}

// Donate moves up to n retired packets from a's free list to dst's and
// reports how many moved. A sharded simulation's coordinator rebalances
// pools with it between cycles: packets recycle into the pool of the
// shard that retires them, not the one that birthed them, so without
// rebalancing the birth-heavy pools allocate forever while the others
// hoard. A donated packet carries no state — New rewrites every field —
// so donation cannot affect simulation results.
func (a *Alloc) Donate(dst *Alloc, n int) int {
	if n > len(a.free) {
		n = len(a.free)
	}
	if n <= 0 || dst == a {
		return 0
	}
	cut := len(a.free) - n
	for i, p := range a.free[cut:] {
		dst.free = append(dst.free, p)
		a.free[cut+i] = nil
	}
	a.free = a.free[:cut]
	return n
}

// Issued reports how many packets have been allocated (recycled reuses
// count again: Issued tracks IDs handed out, not distinct allocations).
func (a *Alloc) Issued() uint64 { return a.next }

// FreeListLen reports how many retired packets are waiting for reuse.
func (a *Alloc) FreeListLen() int { return len(a.free) }

// SetIssued overwrites the ID-stream position, for checkpoint restore:
// with the position and SetIDStream's (offset, stride) restored, the
// allocator reissues the identical ID sequence the checkpointed run
// would have continued with. The free list is deliberately not part of
// checkpoint state — New rewrites every field of a reused packet, so
// free-list contents cannot affect simulation results.
func (a *Alloc) SetIssued(n uint64) { a.next = n }
