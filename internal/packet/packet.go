// Package packet defines the packet model shared by the long-clock switch
// and network simulators.
//
// In the paper's evaluation (Section 4) packets are fixed length and move
// whole-packet-at-a-time on a "long clock"; the variable-length,
// byte-serial behaviour is modeled separately, at clock-cycle granularity,
// by package comcobb. A Packet here therefore carries routing and
// accounting metadata but no payload bytes.
package packet

import "fmt"

// Packet is one fixed- or variable-length packet traversing a simulated
// network. Fields are exported because the simulator packages in this
// module construct and inspect packets directly; external users go through
// the damq facade.
type Packet struct {
	// ID is unique per simulation run, assigned by the allocator.
	ID uint64
	// Source is the network input (processor) that generated the packet.
	Source int
	// Dest is the network output (memory module) the packet is addressed to.
	Dest int
	// Slots is the storage the packet occupies in a buffer, in slot units.
	// Fixed-length experiments use 1; the variable-length extension uses
	// 1..4 (the paper's 1-32 bytes in 8-byte slots).
	Slots int
	// Born is the long-clock cycle in which the packet was generated.
	Born int64
	// Injected is the cycle the packet entered the first network stage
	// (-1 until then). Network latency in saturated regimes is measured
	// from Injected; end-to-end latency from Born.
	Injected int64
	// Hot marks hot-spot packets, for per-class accounting.
	Hot bool
	// OutPort is scratch used inside a switch: the local output port the
	// packet has been routed to. It is rewritten at every stage.
	OutPort int
	// Bytes is the payload size in bytes; used by the asynchronous
	// event-driven simulator, where link occupancy is per byte. The
	// long-clock simulators use Slots only.
	Bytes int
	// ReadyAt is event-simulator scratch: the time the packet's routing
	// completes at its current switch and it becomes eligible for the
	// crossbar. Rewritten at every hop.
	ReadyAt int64
}

// String renders the packet for traces and test failures.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt#%d %d->%d slots=%d born=%d", p.ID, p.Source, p.Dest, p.Slots, p.Born)
}

// Alloc hands out packets with unique IDs. It recycles nothing: packets
// are small and the Go allocator handles churn; the simulators hold at most
// a few thousand live packets.
type Alloc struct {
	next uint64
}

// New returns a fresh packet with the next unique ID and Injected = -1.
func (a *Alloc) New(source, dest, slots int, born int64) *Packet {
	a.next++
	return &Packet{
		ID:       a.next,
		Source:   source,
		Dest:     dest,
		Slots:    slots,
		Born:     born,
		Injected: -1,
	}
}

// Issued reports how many packets have been allocated.
func (a *Alloc) Issued() uint64 { return a.next }
