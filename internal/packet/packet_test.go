package packet

import (
	"strings"
	"testing"
)

func TestAllocUniqueIDs(t *testing.T) {
	var a Alloc
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		p := a.New(1, 2, 1, int64(i))
		if seen[p.ID] {
			t.Fatalf("duplicate ID %d", p.ID)
		}
		seen[p.ID] = true
	}
	if a.Issued() != 1000 {
		t.Fatalf("Issued = %d", a.Issued())
	}
}

func TestNewFields(t *testing.T) {
	var a Alloc
	p := a.New(3, 7, 2, 42)
	if p.Source != 3 || p.Dest != 7 || p.Slots != 2 || p.Born != 42 {
		t.Fatalf("fields wrong: %+v", p)
	}
	if p.Injected != -1 {
		t.Fatalf("Injected should start at -1, got %d", p.Injected)
	}
	if p.Hot {
		t.Fatal("packets are cold by default")
	}
}

func TestString(t *testing.T) {
	var a Alloc
	p := a.New(3, 7, 2, 42)
	s := p.String()
	for _, want := range []string{"3->7", "slots=2", "born=42"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}
