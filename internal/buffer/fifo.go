package buffer

import (
	"fmt"

	"damq/internal/packet"
	"damq/internal/pktq"
)

// fifo is the control design: one queue, one read port, whole pool shared.
// Any packet can use any free slot (good storage utilization) but only the
// head packet is visible to the crossbar (head-of-line blocking).
type fifo struct {
	numOutputs int
	capacity   int
	used       int // slots occupied
	q          pktq.Queue
}

func newFIFO(numOutputs, capacity int) *fifo {
	return &fifo{numOutputs: numOutputs, capacity: capacity}
}

func (b *fifo) Kind() Kind            { return FIFO }
func (b *fifo) NumOutputs() int       { return b.numOutputs }
func (b *fifo) Capacity() int         { return b.capacity }
func (b *fifo) Free() int             { return b.capacity - b.used }
func (b *fifo) Len() int              { return b.q.Len() }
func (b *fifo) Empty() bool           { return b.q.Len() == 0 }
func (b *fifo) MaxReadsPerCycle() int { return 1 }

func (b *fifo) CanAccept(p *packet.Packet) bool {
	return p.Slots <= b.Free()
}

func (b *fifo) Accept(p *packet.Packet) error {
	if p.OutPort < 0 || p.OutPort >= b.numOutputs {
		return fmt.Errorf("fifo: %w: %d", ErrBadPort, p.OutPort)
	}
	if !b.CanAccept(p) {
		return fmt.Errorf("fifo: %w (free %d, need %d)", ErrFull, b.Free(), p.Slots)
	}
	b.used += p.Slots
	b.q.PushBack(p)
	return nil
}

func (b *fifo) QueueLen(out int) int {
	head := b.q.Front()
	if head == nil || head.OutPort != out {
		return 0
	}
	return b.q.Len()
}

func (b *fifo) Head(out int) *packet.Packet {
	head := b.q.Front()
	if head == nil || head.OutPort != out {
		return nil
	}
	return head
}

func (b *fifo) Pop(out int) *packet.Packet {
	p := b.Head(out)
	if p == nil {
		return nil
	}
	b.q.PopFront()
	b.used -= p.Slots
	return p
}

func (b *fifo) Reset() {
	b.q.Reset()
	b.used = 0
}
