package buffer

import (
	"fmt"

	"damq/internal/packet"
)

// fifo is the control design: one queue, one read port, whole pool shared.
// Any packet can use any free slot (good storage utilization) but only the
// head packet is visible to the crossbar (head-of-line blocking).
type fifo struct {
	numOutputs int
	capacity   int
	used       int // slots occupied
	q          []*packet.Packet
}

func newFIFO(numOutputs, capacity int) *fifo {
	return &fifo{numOutputs: numOutputs, capacity: capacity}
}

func (b *fifo) Kind() Kind            { return FIFO }
func (b *fifo) NumOutputs() int       { return b.numOutputs }
func (b *fifo) Capacity() int         { return b.capacity }
func (b *fifo) Free() int             { return b.capacity - b.used }
func (b *fifo) Len() int              { return len(b.q) }
func (b *fifo) MaxReadsPerCycle() int { return 1 }

func (b *fifo) CanAccept(p *packet.Packet) bool {
	return p.Slots <= b.Free()
}

func (b *fifo) Accept(p *packet.Packet) error {
	if p.OutPort < 0 || p.OutPort >= b.numOutputs {
		return fmt.Errorf("fifo: %w: %d", ErrBadPort, p.OutPort)
	}
	if !b.CanAccept(p) {
		return fmt.Errorf("fifo: %w (free %d, need %d)", ErrFull, b.Free(), p.Slots)
	}
	b.used += p.Slots
	b.q = append(b.q, p)
	return nil
}

func (b *fifo) QueueLen(out int) int {
	if len(b.q) == 0 || b.q[0].OutPort != out {
		return 0
	}
	return len(b.q)
}

func (b *fifo) Head(out int) *packet.Packet {
	if len(b.q) == 0 || b.q[0].OutPort != out {
		return nil
	}
	return b.q[0]
}

func (b *fifo) Pop(out int) *packet.Packet {
	p := b.Head(out)
	if p == nil {
		return nil
	}
	b.q[0] = nil // allow GC of the slot
	b.q = b.q[1:]
	b.used -= p.Slots
	// Reclaim backing array occasionally so a long run does not grow it
	// without bound (slicing b.q[1:] leaks the front otherwise).
	if len(b.q) == 0 {
		b.q = nil
	}
	return p
}

func (b *fifo) Reset() {
	b.q = nil
	b.used = 0
}
