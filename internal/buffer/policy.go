package buffer

import "damq/internal/packet"

// PoolState is the read-only occupancy view an AdmissionPolicy decides
// over. It is implemented by the shared group behind each composed
// buffer; every method is O(1) and allocation-free so admission stays on
// the switch's hot path.
type PoolState interface {
	// Capacity is the pool's total slot count.
	Capacity() int
	// FreeSlots is the number of unoccupied, in-service slots.
	FreeSlots() int
	// QueueSlots is the slots held by queue q.
	QueueSlots(q int) int
	// QueueLen is the packets held by queue q.
	QueueLen(q int) int
	// ClassSlots is the slots held pool-wide by priority class c, 0 when
	// the pool does not track classes.
	ClassSlots(c int) int
	// HeadAge is how long queue q's head packet has waited, in pool
	// ticks; 0 for an empty queue or a clockless pool.
	HeadAge(q int) int64
}

// AdmissionPolicy is the decision half of the admission/storage split:
// given a routed packet, the pool's occupancy state, and the queue the
// packet would join, Admit says whether the packet may enter. Policies
// are pure — no mutation, no allocation, no randomness — so the same
// (packet, state) always decides the same way regardless of worker
// count; that is what keeps the sharded simulator byte-identical.
type AdmissionPolicy interface {
	// Name is the policy's short name for error messages and reports.
	Name() string
	// Admit reports whether p may join queue q. The composed buffer has
	// already rejected out-of-range ports (where the kind demands it)
	// and packets larger than the pool's free space.
	Admit(p *packet.Packet, st PoolState, q int) bool
}

// completeSharing is 1988's FIFO/DAMQ/DAFC admission: any packet that
// fits in the pool's free space enters. Maximal storage utilization, no
// isolation — one hot output can monopolize every slot.
type completeSharing struct{}

func (completeSharing) Name() string { return "complete-sharing" }

// damqvet:hotpath
func (completeSharing) Admit(p *packet.Packet, st PoolState, q int) bool {
	return p.Slots <= st.FreeSlots()
}

// completePartition is 1988's SAMQ/SAFC admission: each queue owns a
// fixed share of the slots that no other traffic can use, so a burst
// toward one output can be rejected while slots reserved for other
// outputs sit empty — the storage inefficiency the DAMQ removes.
type completePartition struct {
	perQueue int // slots statically owned by each queue
}

func (completePartition) Name() string { return "complete-partitioning" }

// damqvet:hotpath
func (cp completePartition) Admit(p *packet.Packet, st PoolState, q int) bool {
	return st.QueueSlots(q)+p.Slots <= cp.perQueue
}

// dynThreshold is the classic Dynamic Threshold policy (Choudhury &
// Hahne): a queue may grow to at most alpha times the pool's current
// free space. The threshold is self-regulating — as the pool fills,
// free space shrinks and with it every queue's allowance, deliberately
// holding a fraction 1/(1+alpha·n_active) of the pool in reserve for
// queues that were idle when a burst began.
type dynThreshold struct {
	alpha float64
}

func (dynThreshold) Name() string { return "dynamic-threshold" }

// damqvet:hotpath
func (dt dynThreshold) Admit(p *packet.Packet, st PoolState, q int) bool {
	return float64(st.QueueSlots(q)+p.Slots) <= dt.alpha*float64(st.FreeSlots())
}

// fbSharing is FB-style flexible sharing across priority classes
// (Apostolaki et al.): class c gets a reserved quota no other class can
// touch, plus a dynamic-threshold share of free space that halves with
// each step down in priority (alpha_c = alpha / 2^c). High classes
// therefore burst into most of the pool while low classes are capped
// early, and the reserved quota keeps every class live under overload.
type fbSharing struct {
	classes int
	alpha   float64
	reserve int // slots guaranteed per class
}

func (fbSharing) Name() string { return "fb-flexible" }

// damqvet:hotpath
func (fb fbSharing) Admit(p *packet.Packet, st PoolState, q int) bool {
	c := classOf(p, fb.classes)
	after := st.ClassSlots(c) + p.Slots
	if after <= fb.reserve {
		return true
	}
	alphaC := fb.alpha / float64(int64(1)<<uint(c))
	return float64(after) <= float64(fb.reserve)+alphaC*float64(st.FreeSlots())
}

// bshare is BShare-style queueing-delay-driven sharing (Agarwal et
// al.): admission starts from a dynamic threshold, but a queue whose
// head packet has waited past the delay target is draining too slowly
// to justify its share — its allowance shrinks in proportion to the
// overshoot (never below a one-packet reserve), shifting buffer toward
// queues that are actually moving.
type bshare struct {
	alpha   float64
	target  int64 // head-of-line delay target, in pool ticks
	reserve int   // slots a queue may always hold
}

func (bshare) Name() string { return "bshare-delay" }

// damqvet:hotpath
func (bs bshare) Admit(p *packet.Packet, st PoolState, q int) bool {
	limit := bs.alpha * float64(st.FreeSlots())
	if age := st.HeadAge(q); age > bs.target {
		limit *= float64(bs.target) / float64(age)
		if limit < float64(bs.reserve) {
			limit = float64(bs.reserve)
		}
	}
	return float64(st.QueueSlots(q)+p.Slots) <= limit
}

// classOf derives a packet's priority class from its ID with a
// splitmix64-style finalizer. A plain ID%classes would correlate class
// with the sharded simulator's per-shard ID striding (shard k mints IDs
// k, k+stride, 2k+stride, ...), silently segregating classes by shard;
// mixing first makes class assignment uniform and — because it depends
// only on the packet's identity — identical at any worker count.
// damqvet:hotpath
func classOf(p *packet.Packet, classes int) int {
	x := p.ID
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(classes))
}

// Class is the priority class the FB policy files p under, given the
// configured class count. Exported so traffic generators, metrics, and
// tests agree with admission on the class mapping.
func Class(p *packet.Packet, classes int) int {
	if classes <= 1 {
		return 0
	}
	return classOf(p, classes)
}
