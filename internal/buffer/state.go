package buffer

import (
	"fmt"

	"damq/internal/packet"
)

// This file is the buffer half of the simulator checkpoint codec
// (DESIGN.md §13): the slot pool's exact register state — linked free
// list, per-slot next pointers, queue head/tail registers, quarantine
// bytes, and the BShare clock — is what Restore must reproduce, because
// slot assignment order is observable (quarantine schedules target slot
// indices and delay-driven admission reads enqueue stamps). The derived
// per-view and per-group counters of the composed buffers are not
// serialized; ResyncAfterRestore recomputes them and then audits the
// loaded pool with CheckInvariants.

// SlotPoolState is the serializable state of one SlotPool. Owner maps
// each slot to an index into Packets (-1 for none), so the caller
// serializes packet bodies once each, in slot order of their first
// slots.
type SlotPoolState struct {
	Next      []int32
	Owner     []int32
	FreeHead  int32
	FreeTail  int32
	FreeCount int
	QHead     []int32
	QTail     []int32
	QPkts     []int
	QSlots    []int
	Quar      []uint8 // nil when no quarantine state exists
	QuarCount int
	HasClock  bool
	Stamp     []int64
	Now       int64
	Packets   []*packet.Packet
}

// SaveState captures the pool's register state. All slices are copies;
// the packet pointers are shared (checkpointing serializes their fields,
// it does not mutate them).
func (sp *SlotPool) SaveState() *SlotPoolState {
	st := &SlotPoolState{
		Next:      append([]int32(nil), sp.next...),
		Owner:     make([]int32, sp.capacity),
		FreeHead:  sp.freeHead,
		FreeTail:  sp.freeTail,
		FreeCount: sp.freeCount,
		QHead:     append([]int32(nil), sp.qHead...),
		QTail:     append([]int32(nil), sp.qTail...),
		QPkts:     append([]int(nil), sp.qPkts...),
		QSlots:    append([]int(nil), sp.qSlots...),
		QuarCount: sp.quarCount,
		HasClock:  sp.stamp != nil,
		Now:       sp.now,
	}
	if sp.quar != nil {
		st.Quar = append([]uint8(nil), sp.quar...)
	}
	if sp.stamp != nil {
		st.Stamp = append([]int64(nil), sp.stamp...)
	}
	for s, p := range sp.owner {
		if p == nil {
			st.Owner[s] = -1
			continue
		}
		st.Owner[s] = int32(len(st.Packets))
		st.Packets = append(st.Packets, p)
	}
	return st
}

// LoadState overwrites the pool's registers with a previously saved
// state. It validates every index against the pool's construction-time
// geometry (which the caller has already rebuilt from the simulation
// config) so that the structural audit that follows — CheckInvariants,
// via ResyncAfterRestore — cannot be driven out of bounds by a corrupted
// stream. Any mismatch is an error; the pool is unchanged on failure
// only in the sense that the caller must treat it as dead.
func (sp *SlotPool) LoadState(st *SlotPoolState) error {
	if len(st.Next) != sp.capacity || len(st.Owner) != sp.capacity {
		return fmt.Errorf("slotpool: state for %d slots loaded into %d-slot pool", len(st.Next), sp.capacity)
	}
	if len(st.QHead) != sp.numQueues || len(st.QTail) != sp.numQueues ||
		len(st.QPkts) != sp.numQueues || len(st.QSlots) != sp.numQueues {
		return fmt.Errorf("slotpool: state for %d queues loaded into %d-queue pool", len(st.QHead), sp.numQueues)
	}
	if st.HasClock != (sp.stamp != nil) {
		return fmt.Errorf("slotpool: clock presence mismatch (state %v, pool %v)", st.HasClock, sp.stamp != nil)
	}
	if st.HasClock && len(st.Stamp) != sp.capacity {
		return fmt.Errorf("slotpool: %d enqueue stamps for %d slots", len(st.Stamp), sp.capacity)
	}
	if st.Quar != nil && len(st.Quar) != sp.capacity {
		return fmt.Errorf("slotpool: %d quarantine bytes for %d slots", len(st.Quar), sp.capacity)
	}
	inRange := func(s int32) bool { return s == nilSlot || (s >= 0 && int(s) < sp.capacity) }
	for _, s := range st.Next {
		if !inRange(s) {
			return fmt.Errorf("slotpool: next register points at invalid slot %d", s)
		}
	}
	for q := 0; q < sp.numQueues; q++ {
		if !inRange(st.QHead[q]) || !inRange(st.QTail[q]) {
			return fmt.Errorf("slotpool: queue %d head/tail registers out of range", q)
		}
		if st.QPkts[q] < 0 || st.QSlots[q] < 0 || st.QSlots[q] > sp.capacity {
			return fmt.Errorf("slotpool: queue %d has impossible counters (%d pkts, %d slots)",
				q, st.QPkts[q], st.QSlots[q])
		}
	}
	if !inRange(st.FreeHead) || !inRange(st.FreeTail) ||
		st.FreeCount < 0 || st.FreeCount > sp.capacity {
		return fmt.Errorf("slotpool: free list registers out of range")
	}
	if st.QuarCount < 0 || st.QuarCount > sp.capacity {
		return fmt.Errorf("slotpool: quarantine count %d out of range", st.QuarCount)
	}
	for s, v := range st.Quar {
		if v > slotQuarantined {
			return fmt.Errorf("slotpool: slot %d has unknown quarantine state %d", s, v)
		}
	}
	seen := 0
	for s, idx := range st.Owner {
		if idx == -1 {
			continue
		}
		// Owner indices are assigned in slot order by SaveState, so a
		// well-formed state references Packets exactly once each, in
		// order.
		if int(idx) != seen || seen >= len(st.Packets) || st.Packets[seen] == nil {
			return fmt.Errorf("slotpool: slot %d owner index %d breaks packet order", s, idx)
		}
		seen++
	}
	if seen != len(st.Packets) {
		return fmt.Errorf("slotpool: %d owner slots for %d packets", seen, len(st.Packets))
	}
	// The free list is the one chain CheckInvariants does not tie to a
	// tail register; verify its termination, length, and tail here (all
	// indices are validated above, and the step bound kills cycles).
	last, steps := nilSlot, 0
	for s := st.FreeHead; s != nilSlot; s = st.Next[s] {
		if steps++; steps > sp.capacity {
			return fmt.Errorf("slotpool: free list is cyclic")
		}
		last = s
	}
	if steps != st.FreeCount || last != st.FreeTail {
		return fmt.Errorf("slotpool: free list walk (%d slots, tail %d) disagrees with registers (%d, %d)",
			steps, last, st.FreeCount, st.FreeTail)
	}
	copy(sp.next, st.Next)
	copy(sp.qHead, st.QHead)
	copy(sp.qTail, st.QTail)
	copy(sp.qPkts, st.QPkts)
	copy(sp.qSlots, st.QSlots)
	sp.freeHead, sp.freeTail, sp.freeCount = st.FreeHead, st.FreeTail, st.FreeCount
	sp.quar, sp.quarCount = nil, st.QuarCount
	if st.Quar != nil {
		sp.quar = append([]uint8(nil), st.Quar...)
	}
	if st.HasClock {
		copy(sp.stamp, st.Stamp)
	}
	sp.now = st.Now
	pkts := 0
	for s := range sp.owner {
		if st.Owner[s] == -1 {
			sp.owner[s] = nil
			continue
		}
		sp.owner[s] = st.Packets[st.Owner[s]]
		pkts++
	}
	sp.pkts = pkts
	return nil
}

// viewer exposes a composed buffer's view parameters to the restore
// path. Every Buffer this package constructs is a composed view (plain
// for the 1988 static kinds, PoolBuffer for the pooled ones), so the
// interface is satisfied across the board without widening Buffer.
type viewer interface {
	poolView() *composed
}

func (c *composed) poolView() *composed { return c }

// PoolOf returns the slot pool backing b, for the checkpoint codec.
func PoolOf(b Buffer) (*SlotPool, bool) {
	v, ok := b.(viewer)
	if !ok {
		return nil, false
	}
	return v.poolView().g.pool, true
}

// ResyncAfterRestore recomputes the derived counters of the views over
// one freshly loaded storage group — per-view packet counts and, for
// class-aware policies, the pool-wide per-class slot tally — and then
// audits the pool with CheckInvariants. All of bufs must share one
// group: pass one per-port buffer alone, or every view of a shared pool
// together. The audit runs before any chain walk that rebuilds class
// tallies, so a corrupted stream fails with an error instead of looping.
func ResyncAfterRestore(bufs []Buffer) error {
	var g *group
	views := make([]*composed, 0, len(bufs))
	for _, b := range bufs {
		v, ok := b.(viewer)
		if !ok {
			return fmt.Errorf("buffer: %T cannot be checkpoint-restored", b)
		}
		c := v.poolView()
		if g == nil {
			g = c.g
		} else if c.g != g {
			return fmt.Errorf("buffer: restored views do not share one storage group")
		}
		views = append(views, c)
	}
	if g == nil {
		return nil
	}
	if err := g.pool.CheckInvariants(g.expectOut); err != nil {
		return err
	}
	for _, c := range views {
		qn := c.numOutputs
		if c.single {
			qn = 1
		}
		n := 0
		for q := c.qBase; q < c.qBase+qn; q++ {
			n += g.pool.qPkts[q]
		}
		c.pkts = n
	}
	if g.classSlots != nil {
		for i := range g.classSlots {
			g.classSlots[i] = 0
		}
		for q := 0; q < g.pool.numQueues; q++ {
			for s := g.pool.qHead[q]; s != nilSlot; s = g.pool.next[s] {
				if p := g.pool.owner[s]; p != nil {
					g.classSlots[classOf(p, g.classes)] += p.Slots
				}
			}
		}
	}
	return nil
}
