package buffer

import "testing"

func TestDAFCBehaviour(t *testing.T) {
	b := MustNew(Config{Kind: DAFC, NumOutputs: 4, Capacity: 8})
	if b.Kind() != DAFC {
		t.Fatalf("kind = %v", b.Kind())
	}
	if b.MaxReadsPerCycle() != 4 {
		t.Fatalf("reads/cycle = %d, want 4", b.MaxReadsPerCycle())
	}
	// Pooled storage like DAMQ: all 8 slots available to one output.
	for i := uint64(1); i <= 8; i++ {
		if err := b.Accept(mk(i, 0, 1)); err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
	}
	if b.CanAccept(mk(9, 1, 1)) {
		t.Fatal("accepted into full pool")
	}
}

func TestDAFCInAllKinds(t *testing.T) {
	all := AllKinds()
	if len(all) != 8 || all[4] != DAFC {
		t.Fatalf("AllKinds = %v", all)
	}
	// The paper's list stays at four; the modern policies have their own.
	if len(Kinds()) != 4 {
		t.Fatalf("Kinds = %v", Kinds())
	}
	if len(ModernKinds()) != 3 {
		t.Fatalf("ModernKinds = %v", ModernKinds())
	}
	if DAFC.String() != "DAFC" {
		t.Fatalf("name = %q", DAFC.String())
	}
	if k, err := ParseKind("dafc"); err != nil || k != DAFC {
		t.Fatalf("parse: %v %v", k, err)
	}
}
