package buffer

import (
	"fmt"

	"damq/internal/cfgerr"
	"damq/internal/packet"
)

// group is the sharing unit of the admission/storage split: one slot
// pool, the admission policy that guards it, and the cross-queue
// accounting the policy reads. A per-port buffer owns a group privately;
// the switch-wide shared-pool mode hands one group to every input port's
// view, which is all it takes for admission at one port to see — and
// compete for — the whole switch's storage.
type group struct {
	pool    *SlotPool
	policy  AdmissionPolicy
	classes int
	// classSlots tracks pool-wide slots per priority class; nil unless the
	// policy is class-aware (FB), so everyone else skips the bookkeeping.
	classSlots []int
	// expectOut maps a pool queue index to the OutPort its packets must
	// carry; CheckInvariants uses it, nil skips the routing check.
	expectOut func(q int) int
}

func newGroup(pool *SlotPool, pol AdmissionPolicy, classes int, expectOut func(q int) int) *group {
	g := &group{pool: pool, policy: pol, classes: classes, expectOut: expectOut}
	if classes > 1 {
		g.classSlots = make([]int, classes)
	}
	return g
}

// group implements PoolState for its policy. All O(1), allocation-free.

// damqvet:hotpath
func (g *group) Capacity() int { return g.pool.capacity }

// damqvet:hotpath
func (g *group) FreeSlots() int { return g.pool.freeCount }

// damqvet:hotpath
func (g *group) QueueSlots(q int) int { return g.pool.qSlots[q] }

// damqvet:hotpath
func (g *group) QueueLen(q int) int { return g.pool.qPkts[q] }

// damqvet:hotpath
func (g *group) ClassSlots(c int) int {
	if g.classSlots == nil {
		return 0
	}
	return g.classSlots[c]
}

// damqvet:hotpath
func (g *group) HeadAge(q int) int64 { return g.pool.HeadAge(q) }

var _ PoolState = (*group)(nil)

// composed is a Buffer assembled from a storage group and the view
// parameters that map this input port onto it. Every kind in the package
// is a composed buffer; they differ only in policy, queue layout
// (single/per-output), read bandwidth, and which group they share.
type composed struct {
	g          *group
	kind       Kind
	numOutputs int
	nominalCap int // Capacity() this view reports: its own port's share
	qBase      int // first pool queue belonging to this view
	slotBase   int // first pool slot of this view's quarantine window
	maxReads   int
	perQueue   int // static per-queue budget; >0 only for partitioned kinds
	single     bool
	portCheck  bool // CanAccept rejects out-of-range ports (static kinds do)
	prefix     string
	pkts       int // packets in this view's queues, for O(1) Len
}

func (c *composed) Kind() Kind            { return c.kind }
func (c *composed) NumOutputs() int       { return c.numOutputs }
func (c *composed) Capacity() int         { return c.nominalCap }
func (c *composed) MaxReadsPerCycle() int { return c.maxReads }

// Free reports the slots available in the backing pool. For a shared
// group this is the switch-wide free count, which may exceed this view's
// nominal Capacity — admission is the policy's call, not a per-view cap.
// damqvet:hotpath
func (c *composed) Free() int { return c.g.pool.freeCount }

// damqvet:hotpath
func (c *composed) Len() int { return c.pkts }

// damqvet:hotpath
func (c *composed) Empty() bool { return c.pkts == 0 }

// queueOf maps a routed packet to its pool queue.
// damqvet:hotpath
func (c *composed) queueOf(p *packet.Packet) int {
	if c.single {
		return c.qBase
	}
	return c.qBase + p.OutPort
}

// CanAccept asks the admission policy whether p fits right now. The pool
// fit check runs first so policies may assume p.Slots <= FreeSlots.
// damqvet:hotpath
func (c *composed) CanAccept(p *packet.Packet) bool {
	if c.portCheck && (p.OutPort < 0 || p.OutPort >= c.numOutputs) {
		return false
	}
	if p.Slots > c.g.pool.freeCount {
		return false
	}
	return c.g.policy.Admit(p, c.g, c.queueOf(p))
}

func (c *composed) Accept(p *packet.Packet) error {
	if p.OutPort < 0 || p.OutPort >= c.numOutputs {
		return fmt.Errorf("%s: %w: %d", c.prefix, ErrBadPort, p.OutPort)
	}
	if p.Slots <= 0 {
		return fmt.Errorf("%s: packet %v has non-positive slot count", c.prefix, p)
	}
	if !c.CanAccept(p) {
		if c.perQueue > 0 {
			return fmt.Errorf("%s: %w (queue %d free %d, need %d)",
				c.prefix, ErrFull, p.OutPort, c.QueueFree(p.OutPort), p.Slots)
		}
		return fmt.Errorf("%s: %w (free %d, need %d)", c.prefix, ErrFull, c.g.pool.freeCount, p.Slots)
	}
	c.g.pool.Push(c.queueOf(p), p)
	if c.g.classSlots != nil {
		c.g.classSlots[classOf(p, c.g.classes)] += p.Slots
	}
	c.pkts++
	return nil
}

// damqvet:hotpath
func (c *composed) QueueLen(out int) int {
	if c.single {
		head := c.g.pool.Head(c.qBase)
		if head == nil || head.OutPort != out {
			return 0
		}
		return c.g.pool.qPkts[c.qBase]
	}
	return c.g.pool.qPkts[c.qBase+out]
}

// damqvet:hotpath
func (c *composed) Head(out int) *packet.Packet {
	if c.single {
		head := c.g.pool.Head(c.qBase)
		if head == nil || head.OutPort != out {
			return nil
		}
		return head
	}
	return c.g.pool.Head(c.qBase + out)
}

// damqvet:hotpath
func (c *composed) Pop(out int) *packet.Packet {
	q := c.qBase
	if c.single {
		head := c.g.pool.Head(c.qBase)
		if head == nil || head.OutPort != out {
			return nil
		}
	} else {
		q += out
	}
	p := c.g.pool.Pop(q)
	if p == nil {
		return nil
	}
	if c.g.classSlots != nil {
		c.g.classSlots[classOf(p, c.g.classes)] -= p.Slots
	}
	c.pkts--
	return p
}

// Reset discards the contents of the whole backing group, not just this
// view's queues — per-view partial reset of shared storage cannot be
// expressed in slot-pool hardware. Callers resetting a shared-pool
// switch reset every view (sw.Switch.Reset does), which also squares the
// per-view packet counters.
func (c *composed) Reset() {
	c.g.pool.Reset()
	for i := range c.g.classSlots {
		c.g.classSlots[i] = 0
	}
	c.pkts = 0
}

// QueueFree reports the free slots in the static budget of the queue
// serving out. It is the quantity the paper's per-queue flow control
// must communicate upstream (four times the flow-control information of
// a FIFO, as Section 2 notes). Meaningful only for partitioned kinds.
func (c *composed) QueueFree(out int) int {
	return c.perQueue - c.g.pool.qSlots[c.qBase+out]
}

// Tick advances the group's clock by one cycle. Exactly one view per
// group has qBase 0, so ticking every view of a shared pool — which is
// what a per-buffer loop naturally does — advances the clock once.
// damqvet:hotpath
func (c *composed) Tick() {
	if c.qBase == 0 {
		c.g.pool.Tick()
	}
}

var _ Buffer = (*composed)(nil)

// PoolBuffer is a composed buffer whose storage faults can be injected:
// it exposes the slot-pool quarantine machinery and structural
// self-checks. All dynamically pooled kinds (DAMQ, DAFC, DT, FB, BShare)
// construct as PoolBuffers; the 1988 non-pooled kinds (FIFO, SAMQ, SAFC)
// stay plain composed buffers so the fault injector's slot schedules —
// which target only quarantine-capable buffers — are unchanged from the
// seed implementations.
type PoolBuffer struct {
	composed
}

// DAMQBuffer is the paper's dynamically allocated multi-queue buffer —
// complete sharing composed over the slot pool. The name survives the
// admission/storage split as an alias so the facade, tests, and the
// comcobb chip model keep their vocabulary.
type DAMQBuffer = PoolBuffer

// NewDAMQ constructs a DAMQ buffer with the given queue count and total
// slot capacity.
func NewDAMQ(numOutputs, capacity int) *DAMQBuffer {
	return newPoolBuffer(DAMQ, numOutputs, capacity, 1, completeSharing{}, 0, false, false, "damq")
}

func newPoolBuffer(kind Kind, numOutputs, capacity, maxReads int, pol AdmissionPolicy, classes int, clocked, portCheck bool, prefix string) *PoolBuffer {
	pool := NewSlotPool(numOutputs, capacity)
	if clocked {
		pool.EnableClock()
	}
	g := newGroup(pool, pol, classes, func(q int) int { return q })
	return &PoolBuffer{composed{
		g:          g,
		kind:       kind,
		numOutputs: numOutputs,
		nominalCap: capacity,
		maxReads:   maxReads,
		portCheck:  portCheck,
		prefix:     prefix,
	}}
}

// QuarantineSlot takes this view's slot s out of service; see
// SlotPool.QuarantineSlot. Slot numbering is view-local: under a shared
// pool, each input port's view addresses its own nominal-capacity window
// of the pool, so fault schedules computed per buffer keep working when
// storage spans ports.
func (b *PoolBuffer) QuarantineSlot(s int) bool {
	if s < 0 || s >= b.nominalCap {
		panic(fmt.Sprintf("%s: QuarantineSlot(%d) out of range [0,%d)", b.prefix, s, b.nominalCap))
	}
	return b.g.pool.QuarantineSlot(b.slotBase + s)
}

// Quarantined reports how many slots of this view's window are fully out
// of service (pending slots still serving a packet are not counted until
// released).
func (b *PoolBuffer) Quarantined() int {
	return b.g.pool.QuarantinedIn(b.slotBase, b.slotBase+b.nominalCap)
}

// CheckInvariants verifies the structural health of the backing pool,
// including that every packet sits on the queue its OutPort routes to.
func (b *PoolBuffer) CheckInvariants() error {
	return b.g.pool.CheckInvariants(b.g.expectOut)
}

// Dump renders the backing pool's linked-list structure for debugging.
func (b *PoolBuffer) Dump() string { return b.g.pool.Dump() }

// QueueSlots reports the slots currently held by the queue for out, used
// by tests and the occupancy ablation.
func (b *PoolBuffer) QueueSlots(out int) int { return b.g.pool.qSlots[b.qBase+out] }

// Pool exposes the backing slot pool for tests and structural tooling.
func (b *PoolBuffer) Pool() *SlotPool { return b.g.pool }

var _ Buffer = (*PoolBuffer)(nil)

// newFIFO composes the control design: one queue over the whole pool,
// complete sharing, one read port. Only the head packet is visible to
// the crossbar — head-of-line blocking falls out of the single-queue
// layout, not the policy.
func newFIFO(numOutputs, capacity int) *composed {
	g := newGroup(NewSlotPool(1, capacity), completeSharing{}, 0, nil)
	return &composed{
		g:          g,
		kind:       FIFO,
		numOutputs: numOutputs,
		nominalCap: capacity,
		maxReads:   1,
		single:     true,
		prefix:     "fifo",
	}
}

// newStatic composes both statically allocated designs, SAMQ and SAFC:
// per-output queues with a complete-partitioning policy. The two differ
// only in read bandwidth: SAMQ keeps all queues in one single-read-port
// RAM, SAFC gives every queue its own RAM and crossbar lane. Admission
// is identical.
func newStatic(kind Kind, numOutputs, capacity int) *composed {
	per := capacity / numOutputs
	reads := 1
	if kind == SAFC {
		reads = numOutputs
	}
	g := newGroup(NewSlotPool(numOutputs, capacity), completePartition{perQueue: per},
		0, func(q int) int { return q })
	return &composed{
		g:          g,
		kind:       kind,
		numOutputs: numOutputs,
		nominalCap: capacity,
		maxReads:   reads,
		perQueue:   per,
		portCheck:  true,
		prefix:     kind.String(),
	}
}

// buildPolicy resolves cfg's kind and sharing knobs into the admission
// policy for a pool of poolCap total slots, plus the class count and
// whether the pool needs the enqueue-stamp clock. poolCap equals
// cfg.Capacity for a per-port buffer and inputs*cfg.Capacity for a
// shared group — FB's per-class reserve scales with the real pool.
func buildPolicy(cfg Config, poolCap int) (pol AdmissionPolicy, classes int, clocked bool) {
	switch cfg.Kind {
	case SAMQ, SAFC:
		return completePartition{perQueue: cfg.Capacity / cfg.NumOutputs}, 0, false
	case DT:
		return dynThreshold{alpha: cfg.Sharing.alpha()}, 0, false
	case FB:
		classes = cfg.Sharing.classes()
		// Half the pool is hard-reserved in equal per-class quotas, the
		// other half is shared under the per-class decaying thresholds.
		return fbSharing{
			classes: classes,
			alpha:   cfg.Sharing.alpha(),
			reserve: poolCap / classes / 2,
		}, classes, false
	case BSHARE:
		return bshare{
			alpha:   cfg.Sharing.alpha(),
			target:  cfg.Sharing.delayTarget(),
			reserve: 1,
		}, 0, true
	default: // FIFO, DAMQ, DAFC
		return completeSharing{}, 0, false
	}
}

func kindReads(k Kind, numOutputs int) int {
	if k == SAFC || k == DAFC {
		return numOutputs
	}
	return 1
}

func kindPrefix(k Kind) string {
	switch k {
	case FIFO:
		return "fifo"
	case DAMQ, DAFC:
		return "damq"
	case DT:
		return "dt"
	case FB:
		return "fb"
	case BSHARE:
		return "bshare"
	default:
		return k.String()
	}
}

// NewSharedGroup constructs one storage group spanning inputs ports and
// returns the per-port Buffer views onto it: pool capacity is
// inputs*cfg.Capacity, pool queues are the inputs*NumOutputs (input,
// output) pairs, and the admission policy decides over switch-wide
// occupancy. Only pooled kinds may share (KindSharesPool); the static
// 1988 designs pre-partition storage per port by definition, so asking
// for them shared is a config error wrapping cfgerr.ErrBadSharing.
//
// Every returned view is a *PoolBuffer whose quarantine window is its
// own port's cfg.Capacity slots, so per-buffer fault schedules hold when
// storage spans ports.
func NewSharedGroup(cfg Config, inputs int) ([]Buffer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if inputs <= 0 {
		return nil, fmt.Errorf("buffer: shared group needs positive inputs, got %d: %w",
			inputs, cfgerr.ErrBadPorts)
	}
	if !KindSharesPool(cfg.Kind) {
		return nil, fmt.Errorf("buffer: %v (policy %s) cannot share one pool across ports: %w",
			cfg.Kind, cfg.Kind.PolicyName(), cfgerr.ErrBadSharing)
	}
	poolCap := inputs * cfg.Capacity
	pol, classes, clocked := buildPolicy(cfg, poolCap)
	pool := NewSlotPool(inputs*cfg.NumOutputs, poolCap)
	if clocked {
		pool.EnableClock()
	}
	n := cfg.NumOutputs
	g := newGroup(pool, pol, classes, func(q int) int { return q % n })
	views := make([]Buffer, inputs)
	for i := range views {
		views[i] = &PoolBuffer{composed{
			g:          g,
			kind:       cfg.Kind,
			numOutputs: n,
			nominalCap: cfg.Capacity,
			qBase:      i * n,
			slotBase:   i * cfg.Capacity,
			maxReads:   kindReads(cfg.Kind, n),
			portCheck:  KindModern(cfg.Kind),
			prefix:     kindPrefix(cfg.Kind),
		}}
	}
	return views, nil
}
