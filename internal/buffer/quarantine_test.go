package buffer

import (
	"testing"

	"damq/internal/packet"
	"damq/internal/rng"
)

func TestQuarantineFreeSlotShrinksCapacity(t *testing.T) {
	b := NewDAMQ(2, 8)
	for _, s := range []int{0, 3, 7} {
		if !b.QuarantineSlot(s) {
			t.Fatalf("QuarantineSlot(%d) = false on healthy slot", s)
		}
	}
	if b.Quarantined() != 3 || b.Free() != 5 {
		t.Fatalf("quarantined=%d free=%d, want 3/5", b.Quarantined(), b.Free())
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Re-quarantining is a no-op.
	if b.QuarantineSlot(3) {
		t.Fatal("QuarantineSlot(3) = true on already-quarantined slot")
	}
	// The pool still works with shrunken capacity.
	for i := uint64(0); i < 5; i++ {
		if err := b.Accept(mk(i, int(i)%2, 1)); err != nil {
			t.Fatalf("accept %d: %v", i, err)
		}
	}
	if b.Free() != 0 {
		t.Fatalf("free = %d after filling shrunken pool", b.Free())
	}
	if b.CanAccept(mk(99, 0, 1)) {
		t.Fatal("CanAccept true with every healthy slot occupied")
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for out := 0; out < 2; out++ {
		for b.Pop(out) != nil {
		}
	}
	if b.Free() != 5 || b.Quarantined() != 3 {
		t.Fatalf("after drain: free=%d quarantined=%d, want 5/3", b.Free(), b.Quarantined())
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestQuarantineInUseSlotDeferredUntilRelease(t *testing.T) {
	b := NewDAMQ(2, 4)
	p := mk(1, 0, 2) // occupies slots 0 and 1
	if err := b.Accept(p); err != nil {
		t.Fatal(err)
	}
	if !b.QuarantineSlot(0) || !b.QuarantineSlot(1) {
		t.Fatal("QuarantineSlot on in-use slots returned false")
	}
	// Deferred: the packet still owns its slots.
	if b.Quarantined() != 0 {
		t.Fatalf("quarantined=%d before release, want 0", b.Quarantined())
	}
	if got := b.Head(0); got != p {
		t.Fatalf("Head = %v, want %v", got, p)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := b.Pop(0); got != p {
		t.Fatalf("Pop = %v, want %v", got, p)
	}
	// Released slots diverted to quarantine, not the free list.
	if b.Quarantined() != 2 || b.Free() != 2 {
		t.Fatalf("after release: quarantined=%d free=%d, want 2/2", b.Quarantined(), b.Free())
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestQuarantineFreeTailRepointed(t *testing.T) {
	// Quarantining the free tail must repoint freeTail or the next
	// giveFree writes through a stale register.
	b := NewDAMQ(1, 3)
	if !b.QuarantineSlot(2) { // slot 2 is the initial free tail
		t.Fatal("QuarantineSlot(2) = false")
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	p := mk(1, 0, 2)
	if err := b.Accept(p); err != nil {
		t.Fatal(err)
	}
	if b.Pop(0) != p {
		t.Fatal("Pop lost the packet")
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if b.Free() != 2 {
		t.Fatalf("free = %d, want 2", b.Free())
	}
}

func TestQuarantineWholePool(t *testing.T) {
	b := NewDAMQ(2, 4)
	for s := 0; s < 4; s++ {
		b.QuarantineSlot(s)
	}
	if b.Free() != 0 || b.Quarantined() != 4 {
		t.Fatalf("free=%d quarantined=%d, want 0/4", b.Free(), b.Quarantined())
	}
	if b.CanAccept(mk(1, 0, 1)) {
		t.Fatal("CanAccept true with the whole pool quarantined")
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestQuarantineResetRestoresPool(t *testing.T) {
	b := NewDAMQ(2, 6)
	b.QuarantineSlot(1)
	b.QuarantineSlot(4)
	b.Reset()
	if b.Quarantined() != 0 || b.Free() != 6 {
		t.Fatalf("after Reset: quarantined=%d free=%d, want 0/6", b.Quarantined(), b.Free())
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestQuarantineOutOfRangePanics(t *testing.T) {
	b := NewDAMQ(1, 2)
	for _, s := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("QuarantineSlot(%d) did not panic", s)
				}
			}()
			b.QuarantineSlot(s)
		}()
	}
}

func TestDAFCQuarantineInherited(t *testing.T) {
	b := MustNew(Config{Kind: DAFC, NumOutputs: 2, Capacity: 8})
	d, ok := b.(interface {
		QuarantineSlot(int) bool
		Quarantined() int
	})
	if !ok {
		t.Fatal("DAFC buffer does not expose quarantine")
	}
	if !d.QuarantineSlot(5) {
		t.Fatal("QuarantineSlot(5) = false")
	}
	if d.Quarantined() != 1 || b.Free() != 7 {
		t.Fatalf("quarantined=%d free=%d, want 1/7", d.Quarantined(), b.Free())
	}
}

// refModel is the map-based reference the property test checks the slot
// pool against: per-output FIFO packet queues plus free/quarantine
// accounting, with none of the linked-list machinery under test.
type refModel struct {
	queues  [][]*packet.Packet
	free    int
	quar    map[int]bool // slots fully out of service
	pending map[int]bool // quarantine deferred until release
}

func newRefModel(outputs, capacity int) *refModel {
	return &refModel{
		queues:  make([][]*packet.Packet, outputs),
		free:    capacity,
		quar:    map[int]bool{},
		pending: map[int]bool{},
	}
}

// TestDAMQPropertyVsReference drives random enqueue/dequeue/quarantine
// sequences against the reference model, running the self-checker after
// every operation. This is the linked-list integrity property test: if
// any pointer-register update is wrong, either CheckInvariants fires or
// the pool's observable behaviour diverges from the model.
func TestDAMQPropertyVsReference(t *testing.T) {
	const (
		outputs  = 4
		capacity = 16
		ops      = 4000
	)
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		src := rng.New(seed)
		b := NewDAMQ(outputs, capacity)
		ref := newRefModel(outputs, capacity)
		nextID := uint64(1)

		check := func(op string, step int) {
			t.Helper()
			if err := b.CheckInvariants(); err != nil {
				t.Fatalf("seed %d step %d after %s: %v\n%s", seed, step, op, err, b.Dump())
			}
			if b.Free() != ref.free {
				t.Fatalf("seed %d step %d after %s: free=%d ref=%d", seed, step, op, b.Free(), ref.free)
			}
			if b.Quarantined() != len(ref.quar) {
				t.Fatalf("seed %d step %d after %s: quarantined=%d ref=%d", seed, step, op, b.Quarantined(), len(ref.quar))
			}
			total := 0
			for out := 0; out < outputs; out++ {
				if b.QueueLen(out) != len(ref.queues[out]) {
					t.Fatalf("seed %d step %d after %s: queue %d len=%d ref=%d",
						seed, step, op, out, b.QueueLen(out), len(ref.queues[out]))
				}
				total += len(ref.queues[out])
				var want *packet.Packet
				if len(ref.queues[out]) > 0 {
					want = ref.queues[out][0]
				}
				if got := b.Head(out); got != want {
					t.Fatalf("seed %d step %d after %s: queue %d head=%v ref=%v", seed, step, op, out, got, want)
				}
			}
			if b.Len() != total {
				t.Fatalf("seed %d step %d after %s: len=%d ref=%d", seed, step, op, b.Len(), total)
			}
		}

		for step := 0; step < ops; step++ {
			switch r := src.Float64(); {
			case r < 0.45: // enqueue
				slots := 1 + src.Intn(4)
				out := src.Intn(outputs)
				p := &packet.Packet{ID: nextID, Dest: out, OutPort: out, Slots: slots}
				nextID++
				canRef := slots <= ref.free
				if got := b.CanAccept(p); got != canRef {
					t.Fatalf("seed %d step %d: CanAccept=%v ref=%v (slots %d free %d)",
						seed, step, got, canRef, slots, ref.free)
				}
				err := b.Accept(p)
				if canRef {
					if err != nil {
						t.Fatalf("seed %d step %d: Accept: %v", seed, step, err)
					}
					ref.queues[out] = append(ref.queues[out], p)
					ref.free -= slots
				} else if err == nil {
					t.Fatalf("seed %d step %d: Accept succeeded with free=%d need=%d", seed, step, ref.free, slots)
				}
				check("accept", step)
			case r < 0.85: // dequeue
				out := src.Intn(outputs)
				got := b.Pop(out)
				if len(ref.queues[out]) == 0 {
					if got != nil {
						t.Fatalf("seed %d step %d: Pop(%d) = %v from empty queue", seed, step, out, got)
					}
				} else {
					want := ref.queues[out][0]
					if got != want {
						t.Fatalf("seed %d step %d: Pop(%d) = %v, ref %v", seed, step, out, got, want)
					}
					ref.queues[out] = ref.queues[out][1:]
					// Released slots rejoin the pool unless marked for
					// deferred quarantine. The reference does not track
					// which physical slots a packet occupies (that is
					// the implementation detail under test), so it
					// reconciles pending marks against the
					// implementation's quarantine state and derives
					// free from its own occupancy bookkeeping.
					for s := 0; s < capacity; s++ {
						if ref.pending[s] && ref.quarReconcile(b, s) {
							delete(ref.pending, s)
						}
					}
					ref.free = capacity - len(ref.quar)
					for _, q := range ref.queues {
						for _, p := range q {
							ref.free -= p.Slots
						}
					}
				}
				check("pop", step)
			default: // quarantine a random slot
				s := src.Intn(capacity)
				got := b.QuarantineSlot(s)
				already := ref.quar[s] || ref.pending[s]
				if got == already {
					t.Fatalf("seed %d step %d: QuarantineSlot(%d) = %v, already=%v", seed, step, s, got, already)
				}
				if !already {
					if b.Quarantined() > len(ref.quar) {
						// Took effect immediately: the slot was free.
						ref.quar[s] = true
						ref.free--
					} else {
						ref.pending[s] = true
					}
				}
				check("quarantine", step)
			}
		}
	}
}

// quarReconcile moves slot s from pending to quarantined in the model iff
// the implementation has done so.
func (m *refModel) quarReconcile(b *DAMQBuffer, s int) bool {
	if b.Pool().slotOut(s) {
		m.quar[s] = true
		return true
	}
	return false
}
