package buffer

import (
	"fmt"
	"strings"

	"damq/internal/packet"
)

// Storage is the slot-pool contract of the admission/storage split: a
// fixed pool of packet slots threaded into per-queue linked lists, the
// hardware structure of Tamir & Frazier's DAMQ generalized to any queue
// count. Storage answers only "where do packets live"; whether a packet
// may enter at all is the AdmissionPolicy's question. Push has no
// admission logic and must only be called after the caller has
// established p.Slots <= FreeSlots() (composed buffers do this via
// their policy).
//
// SlotPool is the one implementation; the interface documents the
// contract an alternative backend (e.g. a banked RAM model) would have
// to meet.
type Storage interface {
	NumQueues() int
	Capacity() int
	FreeSlots() int
	Packets() int
	QueueLen(q int) int
	QueueSlots(q int) int
	Head(q int) *packet.Packet
	Push(q int, p *packet.Packet)
	Pop(q int) *packet.Packet
	Reset()
}

// SlotPool is the dynamically allocated slot pool of Tamir & Frazier —
// the storage half of every buffer kind in this package. It is
// deliberately implemented the way the hardware works rather than with
// Go slices:
//
//   - storage is a pool of fixed-size slots;
//   - every slot has a pointer register (next) naming the next slot of its
//     linked list;
//   - one linked list per queue holds that queue's packets in FIFO order,
//     plus one list of free slots;
//   - per-list head and tail registers locate the first and last slot.
//
// A packet occupying k slots is stored in k slots chained through their
// pointer registers; the last slot of a packet chains to the first slot of
// the next packet in the same queue, exactly as in the chip, so a queue is
// one continuous linked list of slots. Any free slot can serve any packet
// for any queue — this dynamic allocation is what distinguishes the pool
// from the statically partitioned SAMQ/SAFC admission policies layered on
// top of it.
//
// Queues are anonymous indices: a per-port buffer maps output ports to
// queues one-to-one, the switch-wide shared pool maps (input, output)
// pairs to queues, and a FIFO uses a single queue. That mapping lives in
// the composed Buffer, not here.
type SlotPool struct {
	numQueues int
	capacity  int

	next  []int32          // per-slot pointer register
	owner []*packet.Packet // packet whose *first* slot this is; nil for continuation slots

	freeHead  int32
	freeTail  int32
	freeCount int
	pkts      int // total packets across queues, kept for O(1) Packets

	qHead  []int32 // per-queue head register
	qTail  []int32 // per-queue tail register
	qPkts  []int   // packets per queue
	qSlots []int   // slots per queue

	// Quarantine state, nil until the first QuarantineSlot call so the
	// fault-free pool pays nothing beyond one nil check in giveFree.
	// A quarantined slot is on no list: the pool's capacity shrinks
	// instead of a dead pointer register corrupting a linked list.
	quar      []uint8
	quarCount int

	// Clock state for delay-driven admission (BShare): stamp records the
	// pool tick at which each packet's first slot was enqueued. nil unless
	// EnableClock was called, so clockless kinds pay one nil check in Push.
	stamp []int64
	now   int64
}

const nilSlot = int32(-1)

// Quarantine slot states (entries of quar).
const (
	slotHealthy     uint8 = iota
	slotQuarPending       // in use; quarantine when its packet releases it
	slotQuarantined       // out of service, on no list
)

// NewSlotPool constructs a pool with the given queue count and total
// slot capacity.
func NewSlotPool(numQueues, capacity int) *SlotPool {
	sp := &SlotPool{
		numQueues: numQueues,
		capacity:  capacity,
		next:      make([]int32, capacity),
		owner:     make([]*packet.Packet, capacity),
		qHead:     make([]int32, numQueues),
		qTail:     make([]int32, numQueues),
		qPkts:     make([]int, numQueues),
		qSlots:    make([]int, numQueues),
	}
	sp.Reset()
	return sp
}

func (sp *SlotPool) NumQueues() int { return sp.numQueues }
func (sp *SlotPool) Capacity() int  { return sp.capacity }

// FreeSlots is the number of slots available to a new packet, across the
// whole pool.
// damqvet:hotpath
func (sp *SlotPool) FreeSlots() int { return sp.freeCount }

// Packets is the number of packets stored across all queues, in O(1).
// damqvet:hotpath
func (sp *SlotPool) Packets() int { return sp.pkts }

// QueueLen is the number of packets in queue q.
// damqvet:hotpath
func (sp *SlotPool) QueueLen(q int) int { return sp.qPkts[q] }

// QueueSlots is the number of slots held by queue q.
// damqvet:hotpath
func (sp *SlotPool) QueueSlots(q int) int { return sp.qSlots[q] }

// Head returns the first packet of queue q without removing it, or nil.
// damqvet:hotpath
func (sp *SlotPool) Head(q int) *packet.Packet {
	if sp.qPkts[q] == 0 {
		return nil
	}
	return sp.owner[sp.qHead[q]]
}

// takeFree removes and returns the head of the free list.
// damqvet:hotpath
func (sp *SlotPool) takeFree() int32 {
	s := sp.freeHead
	sp.freeHead = sp.next[s]
	if sp.freeHead == nilSlot {
		sp.freeTail = nilSlot
	}
	sp.freeCount--
	return s
}

// giveFree appends slot s to the free list, mirroring the transmission
// manager FSM returning freed slots. A slot marked for quarantine is
// diverted out of service instead of rejoining the pool.
// damqvet:hotpath
func (sp *SlotPool) giveFree(s int32) {
	if sp.quar != nil && sp.quar[s] == slotQuarPending {
		sp.quar[s] = slotQuarantined
		sp.quarCount++
		sp.next[s] = nilSlot
		sp.owner[s] = nil
		return
	}
	sp.next[s] = nilSlot
	sp.owner[s] = nil
	if sp.freeTail == nilSlot {
		sp.freeHead = s
	} else {
		sp.next[sp.freeTail] = s
	}
	sp.freeTail = s
	sp.freeCount++
}

// Push stores p at the tail of queue q. The caller must have established
// admission: p.Slots in [1, FreeSlots()]. The packet's slots are pulled
// off the free list and chained; the first slot records the packet (the
// hardware's header/length registers are associated with the packet's
// first slot).
// damqvet:hotpath
func (sp *SlotPool) Push(q int, p *packet.Packet) {
	first := sp.takeFree()
	sp.owner[first] = p
	if sp.stamp != nil {
		sp.stamp[first] = sp.now
	}
	last := first
	for i := 1; i < p.Slots; i++ {
		s := sp.takeFree()
		sp.next[last] = s
		last = s
	}
	sp.next[last] = nilSlot

	// Append to the queue: point the old tail's slot at the packet's first
	// slot, then move the tail register.
	if sp.qTail[q] == nilSlot {
		sp.qHead[q] = first
	} else {
		sp.next[sp.qTail[q]] = first
	}
	sp.qTail[q] = last
	sp.qPkts[q]++
	sp.qSlots[q] += p.Slots
	sp.pkts++
}

// Pop removes and returns the head packet of queue q, or nil.
// damqvet:hotpath
func (sp *SlotPool) Pop(q int) *packet.Packet {
	if sp.qPkts[q] == 0 {
		return nil
	}
	first := sp.qHead[q]
	p := sp.owner[first]
	// Walk the packet's slots, advancing the head register and returning
	// each slot to the free list as the hardware does after transmission.
	s := first
	for i := 0; i < p.Slots; i++ {
		n := sp.next[s]
		sp.giveFree(s)
		s = n
	}
	sp.qHead[q] = s
	if s == nilSlot {
		sp.qTail[q] = nilSlot
	}
	sp.qPkts[q]--
	sp.qSlots[q] -= p.Slots
	sp.pkts--
	return p
}

// EnableClock allocates the per-slot enqueue stamps that HeadAge reads.
// Kinds whose admission policy is delay-driven (BShare) call it at
// construction; all other kinds leave the clock off and Push skips the
// stamp write.
func (sp *SlotPool) EnableClock() {
	if sp.stamp == nil {
		sp.stamp = make([]int64, sp.capacity)
	}
}

// Tick advances the pool clock by one cycle. The owning switch calls it
// once per long clock; under sharding the simulator calls it from the
// inject phase so it never races with cross-shard admission probes.
// damqvet:hotpath
func (sp *SlotPool) Tick() { sp.now++ }

// Now is the current pool tick.
// damqvet:hotpath
func (sp *SlotPool) Now() int64 { return sp.now }

// HeadAge is how many ticks the head packet of queue q has waited, or 0
// for an empty queue. It requires EnableClock; without it every age
// reads 0.
// damqvet:hotpath
func (sp *SlotPool) HeadAge(q int) int64 {
	if sp.qPkts[q] == 0 || sp.stamp == nil {
		return 0
	}
	return sp.now - sp.stamp[sp.qHead[q]]
}

// QuarantineSlot takes slot s out of service, modelling a stuck-at/dead
// slot detected by the hardware's self-test. A free slot is unlinked from
// the free list immediately; a slot currently holding packet data keeps
// serving its packet and is diverted to quarantine when released (yanking
// a live slot would corrupt its packet's chain — exactly the failure mode
// quarantine exists to prevent). Capacity shrinks by one either way; the
// nominal Capacity() is unchanged so occupancy ratios stay comparable.
//
// Returns true if this call newly removed the slot from service, false if
// it was already quarantined or pending. This is a cold path: it may
// allocate (first call) and walk the free list.
func (sp *SlotPool) QuarantineSlot(s int) bool {
	if s < 0 || s >= sp.capacity {
		panic(fmt.Sprintf("slotpool: QuarantineSlot(%d) out of range [0,%d)", s, sp.capacity))
	}
	if sp.quar == nil {
		sp.quar = make([]uint8, sp.capacity)
	}
	if sp.quar[s] != slotHealthy {
		return false
	}
	// Unlink from the free list if present; otherwise the slot is in use.
	prev := nilSlot
	for cur := sp.freeHead; cur != nilSlot; cur = sp.next[cur] {
		if cur == int32(s) {
			if prev == nilSlot {
				sp.freeHead = sp.next[cur]
			} else {
				sp.next[prev] = sp.next[cur]
			}
			if sp.freeTail == cur {
				sp.freeTail = prev
			}
			sp.freeCount--
			sp.next[cur] = nilSlot
			sp.quar[s] = slotQuarantined
			sp.quarCount++
			return true
		}
		prev = cur
	}
	sp.quar[s] = slotQuarPending
	return true
}

// Quarantined reports how many slots are fully out of service (pending
// slots still serving a packet are not counted until released).
func (sp *SlotPool) Quarantined() int { return sp.quarCount }

// QuarantinedIn counts fully out-of-service slots in [lo, hi). A shared
// pool's per-port views use it to report their own window's casualties.
// Cold path.
func (sp *SlotPool) QuarantinedIn(lo, hi int) int {
	if sp.quar == nil {
		return 0
	}
	n := 0
	for s := lo; s < hi; s++ {
		if sp.quar[s] == slotQuarantined {
			n++
		}
	}
	return n
}

// slotOut reports whether slot s is fully quarantined; tests reconcile
// deferred quarantine against it.
func (sp *SlotPool) slotOut(s int) bool {
	return sp.quar != nil && sp.quar[s] == slotQuarantined
}

// Reset returns every slot to the free list, in index order. Reset models
// a power cycle: quarantine state and the clock are cleared and every
// slot rejoins the pool.
func (sp *SlotPool) Reset() {
	sp.quar = nil
	sp.quarCount = 0
	sp.now = 0
	for i := range sp.next {
		sp.next[i] = int32(i + 1)
		sp.owner[i] = nil
	}
	if sp.capacity > 0 {
		sp.next[sp.capacity-1] = nilSlot
		sp.freeHead = 0
		sp.freeTail = int32(sp.capacity - 1)
	} else {
		sp.freeHead, sp.freeTail = nilSlot, nilSlot
	}
	sp.freeCount = sp.capacity
	for i := 0; i < sp.numQueues; i++ {
		sp.qHead[i] = nilSlot
		sp.qTail[i] = nilSlot
		sp.qPkts[i] = 0
		sp.qSlots[i] = 0
	}
	sp.pkts = 0
}

// CheckInvariants verifies the structural health of the slot pool: every
// slot is on exactly one list (or quarantined and on none), per-queue
// counters match the lists, queue order is intact, and free accounting is
// exact. expect, if non-nil, maps a queue index to the OutPort every
// packet on that queue must carry (the composed buffer supplies its
// queue-to-port layout); pass nil to skip the routing check. Tests call
// it after random operation sequences; it is the software analogue of the
// FSM synchronization argument in Section 3.2.3 of the paper.
func (sp *SlotPool) CheckInvariants(expect func(q int) int) error {
	seen := make([]bool, sp.capacity)

	walk := func(head int32, name string) (slots int, err error) {
		for s := head; s != nilSlot; s = sp.next[s] {
			if s < 0 || int(s) >= sp.capacity {
				return 0, fmt.Errorf("slotpool: %s list points at invalid slot %d", name, s)
			}
			if seen[s] {
				return 0, fmt.Errorf("slotpool: slot %d appears on two lists (second: %s)", s, name)
			}
			seen[s] = true
			slots++
			if slots > sp.capacity {
				return 0, fmt.Errorf("slotpool: %s list is cyclic", name)
			}
		}
		return slots, nil
	}

	freeSlots, err := walk(sp.freeHead, "free")
	if err != nil {
		return err
	}
	if freeSlots != sp.freeCount {
		return fmt.Errorf("slotpool: free list has %d slots, counter says %d", freeSlots, sp.freeCount)
	}
	for s := sp.freeHead; s != nilSlot; s = sp.next[s] {
		if sp.quar != nil && sp.quar[s] == slotQuarantined {
			return fmt.Errorf("slotpool: quarantined slot %d is on the free list", s)
		}
	}

	total := freeSlots
	for q := 0; q < sp.numQueues; q++ {
		// Walk the queue packet by packet to validate per-packet chaining.
		s := sp.qHead[q]
		pkts, slots := 0, 0
		for s != nilSlot {
			p := sp.owner[s]
			if p == nil {
				return fmt.Errorf("slotpool: queue %d head slot %d has no owner packet", q, s)
			}
			if expect != nil {
				if want := expect(q); p.OutPort != want {
					return fmt.Errorf("slotpool: packet %v found on queue %d (want OutPort %d)", p, q, want)
				}
			}
			last := s
			for i := 0; i < p.Slots; i++ {
				if last == nilSlot {
					return fmt.Errorf("slotpool: packet %v truncated in queue %d", p, q)
				}
				if i > 0 && sp.owner[last] != nil {
					return fmt.Errorf("slotpool: continuation slot %d of %v owns a packet", last, p)
				}
				if seen[last] {
					return fmt.Errorf("slotpool: slot %d double-booked in queue %d", last, q)
				}
				seen[last] = true
				slots++
				if i < p.Slots-1 {
					last = sp.next[last]
				}
			}
			if sp.next[last] == nilSlot && sp.qTail[q] != last {
				return fmt.Errorf("slotpool: queue %d tail register %d != actual tail %d", q, sp.qTail[q], last)
			}
			s = sp.next[last]
			pkts++
			if pkts > sp.capacity {
				return fmt.Errorf("slotpool: queue %d is cyclic", q)
			}
		}
		if pkts != sp.qPkts[q] {
			return fmt.Errorf("slotpool: queue %d has %d packets, counter says %d", q, pkts, sp.qPkts[q])
		}
		if slots != sp.qSlots[q] {
			return fmt.Errorf("slotpool: queue %d holds %d slots, counter says %d", q, slots, sp.qSlots[q])
		}
		if pkts == 0 && (sp.qHead[q] != nilSlot || sp.qTail[q] != nilSlot) {
			return fmt.Errorf("slotpool: empty queue %d has live head/tail registers", q)
		}
		total += slots
	}
	quarSlots := 0
	if sp.quar != nil {
		for s := 0; s < sp.capacity; s++ {
			if sp.quar[s] != slotQuarantined {
				continue
			}
			if seen[s] {
				return fmt.Errorf("slotpool: quarantined slot %d is on a list", s)
			}
			seen[s] = true
			quarSlots++
		}
	}
	if quarSlots != sp.quarCount {
		return fmt.Errorf("slotpool: %d slots quarantined, counter says %d", quarSlots, sp.quarCount)
	}
	total += quarSlots
	if total != sp.capacity {
		return fmt.Errorf("slotpool: %d slots accounted for, capacity %d", total, sp.capacity)
	}
	sum := 0
	for _, c := range sp.qPkts {
		sum += c
	}
	if sum != sp.pkts {
		return fmt.Errorf("slotpool: queues hold %d packets, total counter says %d", sum, sp.pkts)
	}
	return nil
}

// Dump renders the slot pool's linked-list structure for debugging: each
// queue as its chain of (slot, packet) hops and the free list as slot
// indices. The output is the software view of the chip's pointer
// registers.
func (sp *SlotPool) Dump() string {
	var sb strings.Builder
	for q := 0; q < sp.numQueues; q++ {
		fmt.Fprintf(&sb, "q%d:", q)
		s := sp.qHead[q]
		for n := 0; n < sp.qPkts[q]; n++ {
			p := sp.owner[s]
			fmt.Fprintf(&sb, " [pkt%d:", p.ID)
			for i := 0; i < p.Slots; i++ {
				fmt.Fprintf(&sb, " %d", s)
				s = sp.next[s]
			}
			sb.WriteString("]")
		}
		sb.WriteString("\n")
	}
	sb.WriteString("free:")
	for s := sp.freeHead; s != nilSlot; s = sp.next[s] {
		fmt.Fprintf(&sb, " %d", s)
	}
	sb.WriteString("\n")
	if sp.quarCount > 0 {
		sb.WriteString("quarantined:")
		for s := 0; s < sp.capacity; s++ {
			if sp.quar[s] == slotQuarantined {
				fmt.Fprintf(&sb, " %d", s)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

var _ Storage = (*SlotPool)(nil)
