package buffer

import (
	"testing"

	"damq/internal/packet"
)

// FuzzDAMQOperations drives a DAMQ buffer with an arbitrary operation
// script: every byte encodes accept/pop, output port, and packet size.
// The structural invariants must hold after every step regardless of the
// script — the fuzz-shaped twin of the quick.Check property test.
func FuzzDAMQOperations(f *testing.F) {
	f.Add([]byte{0x00, 0x81, 0x42, 0x03})
	f.Add([]byte{0xFF, 0xFF, 0x00, 0x00, 0x7F})
	f.Fuzz(func(t *testing.T, script []byte) {
		b := NewDAMQ(4, 12)
		var id uint64
		for i, op := range script {
			out := int(op>>2) % 4
			if op&1 == 0 {
				slots := int(op>>4)%4 + 1
				id++
				p := &packet.Packet{ID: id, OutPort: out, Slots: slots}
				if b.CanAccept(p) {
					if err := b.Accept(p); err != nil {
						t.Fatalf("step %d: accept after CanAccept: %v", i, err)
					}
				}
			} else {
				b.Pop(out)
			}
			if op&0x40 != 0 {
				if err := b.CheckInvariants(); err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
			}
		}
		if err := b.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}
