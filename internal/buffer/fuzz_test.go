package buffer

import (
	"errors"
	"testing"

	"damq/internal/cfgerr"
	"damq/internal/packet"
)

// FuzzDAMQOperations drives a DAMQ buffer with an arbitrary operation
// script: every byte encodes accept/pop, output port, and packet size.
// The structural invariants must hold after every step regardless of the
// script — the fuzz-shaped twin of the quick.Check property test.
func FuzzDAMQOperations(f *testing.F) {
	f.Add([]byte{0x00, 0x81, 0x42, 0x03})
	f.Add([]byte{0xFF, 0xFF, 0x00, 0x00, 0x7F})
	f.Fuzz(func(t *testing.T, script []byte) {
		b := NewDAMQ(4, 12)
		var id uint64
		for i, op := range script {
			out := int(op>>2) % 4
			if op&1 == 0 {
				slots := int(op>>4)%4 + 1
				id++
				p := &packet.Packet{ID: id, OutPort: out, Slots: slots}
				if b.CanAccept(p) {
					if err := b.Accept(p); err != nil {
						t.Fatalf("step %d: accept after CanAccept: %v", i, err)
					}
				}
			} else {
				b.Pop(out)
			}
			if op&0x40 != 0 {
				if err := b.CheckInvariants(); err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
			}
		}
		if err := b.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzParseSpec feeds arbitrary strings to the spec parser: it must
// never panic, every failure must wrap one of the two exported config
// errors, and every accepted spec must name a real kind with sharing
// knobs New is willing to validate (never crash on) and round-trip
// through the kind's canonical name.
func FuzzParseSpec(f *testing.F) {
	for _, s := range []string{
		"damq", "DAMQ", "fifo", "dt", "dt:alpha=2", "fb:classes=4,alpha=1.5",
		"bshare:delay=32", "dt:alpha=0.25,", "fb:classes=-1", "bshare:delay=1e9",
		"dt:alpha", "dt:=", ":alpha=1", "damq:", "dt:alpha=2,alpha=3",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		cfg, err := ParseSpec(s)
		if err != nil {
			if !errors.Is(err, cfgerr.ErrBadKind) && !errors.Is(err, cfgerr.ErrBadSharing) {
				t.Fatalf("ParseSpec(%q) error %v wraps neither ErrBadKind nor ErrBadSharing", s, err)
			}
			return
		}
		if cfg.Kind.String() == "INVALID" {
			t.Fatalf("ParseSpec(%q) accepted an invalid kind %d", s, int(cfg.Kind))
		}
		if _, err := ParseKind(cfg.Kind.String()); err != nil {
			t.Fatalf("ParseSpec(%q) kind %v does not round-trip: %v", s, cfg.Kind, err)
		}
		if cfg.Sharing.Alpha < 0 || cfg.Sharing.Classes < 0 || cfg.Sharing.DelayTarget < 0 {
			t.Fatalf("ParseSpec(%q) accepted negative sharing knobs: %+v", s, cfg.Sharing)
		}
		// Completing the config must never panic: New either builds the
		// buffer or reports a validation error — knob/kind mismatches wrap
		// ErrBadSharing, FB class counts that do not divide the capacity
		// wrap ErrBadCapacity.
		cfg.NumOutputs, cfg.Capacity = 2, 8
		if _, err := New(cfg); err != nil &&
			!errors.Is(err, cfgerr.ErrBadSharing) && !errors.Is(err, cfgerr.ErrBadCapacity) {
			t.Fatalf("New(ParseSpec(%q)) = %v, want nil, ErrBadSharing or ErrBadCapacity", s, err)
		}
	})
}
