package buffer

import (
	"strings"
	"testing"
	"testing/quick"

	"damq/internal/packet"
	"damq/internal/rng"
)

func TestDAMQInvariantsFresh(t *testing.T) {
	for _, cap := range []int{1, 4, 8, 12, 64} {
		b := NewDAMQ(4, cap)
		if err := b.CheckInvariants(); err != nil {
			t.Fatalf("cap %d: %v", cap, err)
		}
	}
}

func TestDAMQFreeListRecycling(t *testing.T) {
	b := NewDAMQ(2, 3)
	// Fill, drain, refill repeatedly; the free list must recycle slots.
	for round := 0; round < 10; round++ {
		for i := uint64(0); i < 3; i++ {
			if err := b.Accept(mk(i, int(i)%2, 1)); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
		if b.Free() != 0 {
			t.Fatalf("round %d: free = %d", round, b.Free())
		}
		if err := b.CheckInvariants(); err != nil {
			t.Fatalf("round %d full: %v", round, err)
		}
		for out := 0; out < 2; out++ {
			for b.Pop(out) != nil {
			}
		}
		if b.Free() != 3 || b.Len() != 0 {
			t.Fatalf("round %d: free=%d len=%d after drain", round, b.Free(), b.Len())
		}
		if err := b.CheckInvariants(); err != nil {
			t.Fatalf("round %d empty: %v", round, err)
		}
	}
}

func TestDAMQMultiSlotPacketChaining(t *testing.T) {
	b := NewDAMQ(4, 12)
	p1 := mk(1, 0, 3)
	p2 := mk(2, 0, 2)
	p3 := mk(3, 1, 4)
	for _, p := range []*packet.Packet{p1, p2, p3} {
		if err := b.Accept(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if b.Free() != 3 {
		t.Fatalf("free = %d, want 3", b.Free())
	}
	if b.QueueSlots(0) != 5 || b.QueueSlots(1) != 4 {
		t.Fatalf("queue slots = %d,%d", b.QueueSlots(0), b.QueueSlots(1))
	}
	if got := b.Pop(0); got != p1 {
		t.Fatalf("Pop(0) = %v", got)
	}
	if b.Free() != 6 {
		t.Fatalf("free = %d after pop, want 6", b.Free())
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := b.Pop(0); got != p2 {
		t.Fatalf("second Pop(0) = %v", got)
	}
	if got := b.Pop(1); got != p3 {
		t.Fatalf("Pop(1) = %v", got)
	}
	if b.Free() != 12 || b.Len() != 0 {
		t.Fatalf("buffer not empty after draining: free=%d len=%d", b.Free(), b.Len())
	}
}

func TestDAMQInterleavedQueuesShareSlots(t *testing.T) {
	// Interleave arrivals for different outputs so queue lists interleave
	// physically in the pool, then verify list integrity and order.
	b := NewDAMQ(4, 16)
	var ids [4][]uint64
	id := uint64(0)
	for i := 0; i < 16; i++ {
		out := i % 4
		id++
		if err := b.Accept(mk(id, out, 1)); err != nil {
			t.Fatal(err)
		}
		ids[out] = append(ids[out], id)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for out := 0; out < 4; out++ {
		for _, want := range ids[out] {
			got := b.Pop(out)
			if got == nil || got.ID != want {
				t.Fatalf("queue %d: got %v, want id %d", out, got, want)
			}
		}
	}
}

func TestDAMQRejectsZeroSlotPacket(t *testing.T) {
	b := NewDAMQ(2, 4)
	if err := b.Accept(&packet.Packet{OutPort: 0, Slots: 0}); err == nil {
		t.Fatal("accepted zero-slot packet")
	}
}

// damqOp is one random operation for the property test.
type damqOp struct {
	Accept bool
	Out    uint8
	Slots  uint8
}

func TestDAMQPropertyRandomOps(t *testing.T) {
	// Property: after any sequence of accepts and pops, all structural
	// invariants hold and slot conservation is exact.
	f := func(ops []damqOp, seed uint64) bool {
		b := NewDAMQ(4, 12)
		src := rng.New(seed)
		var id uint64
		for _, op := range ops {
			out := int(op.Out) % 4
			if op.Accept {
				slots := int(op.Slots)%4 + 1
				id++
				p := mk(id, out, slots)
				if b.CanAccept(p) {
					if err := b.Accept(p); err != nil {
						t.Logf("accept failed despite CanAccept: %v", err)
						return false
					}
				} else if b.Free() >= slots {
					t.Logf("CanAccept false with %d free, %d needed", b.Free(), slots)
					return false
				}
			} else {
				b.Pop(out)
			}
			if src.Bool(0.2) {
				if err := b.CheckInvariants(); err != nil {
					t.Log(err)
					return false
				}
			}
		}
		return b.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDAMQLongRandomSoak(t *testing.T) {
	// A longer directed soak than the quick property: heavy churn with
	// variable sizes and occasional full drains.
	src := rng.New(99)
	b := NewDAMQ(4, 32)
	live := 0
	for i := 0; i < 20000; i++ {
		switch {
		case src.Bool(0.55):
			p := mk(uint64(i), src.Intn(4), src.Intn(4)+1)
			if b.CanAccept(p) {
				if err := b.Accept(p); err != nil {
					t.Fatal(err)
				}
				live++
			}
		default:
			if b.Pop(src.Intn(4)) != nil {
				live--
			}
		}
		if live != b.Len() {
			t.Fatalf("step %d: live=%d, Len=%d", i, live, b.Len())
		}
		if i%997 == 0 {
			if err := b.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDAMQHeadStableAcrossForeignPops(t *testing.T) {
	// Popping one queue must not disturb another queue's head.
	b := NewDAMQ(4, 8)
	pA := mk(1, 0, 2)
	pB := mk(2, 1, 2)
	pC := mk(3, 0, 1)
	for _, p := range []*packet.Packet{pA, pB, pC} {
		if err := b.Accept(p); err != nil {
			t.Fatal(err)
		}
	}
	if b.Pop(1) != pB {
		t.Fatal("wrong pop")
	}
	if b.Head(0) != pA {
		t.Fatal("queue 0 head disturbed by queue 1 pop")
	}
	if b.Pop(0) != pA || b.Pop(0) != pC {
		t.Fatal("queue 0 order broken")
	}
}

func TestDAMQDump(t *testing.T) {
	b := NewDAMQ(2, 6)
	if err := b.Accept(mk(1, 0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := b.Accept(mk(2, 1, 1)); err != nil {
		t.Fatal(err)
	}
	out := b.Dump()
	for _, want := range []string{"q0: [pkt1: 0 1]", "q1: [pkt2: 2]", "free: 3 4 5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Dump missing %q:\n%s", want, out)
		}
	}
}

func BenchmarkDAMQAcceptPop(b *testing.B) {
	buf := NewDAMQ(4, 16)
	p := mk(1, 2, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := buf.Accept(p); err != nil {
			b.Fatal(err)
		}
		if buf.Pop(2) == nil {
			b.Fatal("lost packet")
		}
	}
}

func BenchmarkFIFOAcceptPop(b *testing.B) {
	buf := newFIFO(4, 16)
	p := mk(1, 2, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := buf.Accept(p); err != nil {
			b.Fatal(err)
		}
		if buf.Pop(2) == nil {
			b.Fatal("lost packet")
		}
	}
}
