package buffer

// dafc is the DAMQ slot pool with SAFC-style read bandwidth: every
// per-output queue gets its own read path, so several queues of the same
// input port can transmit in one cycle. In hardware this would cost a
// multi-ported (or banked) slot RAM plus per-output crossbar lanes —
// exactly the overhead the paper's Section 2 argues against; the
// connectivity ablation measures what that overhead would buy.
type dafc struct {
	*DAMQBuffer
}

// Kind reports DAFC.
func (b *dafc) Kind() Kind { return DAFC }

// MaxReadsPerCycle lifts the single-read-port restriction.
func (b *dafc) MaxReadsPerCycle() int { return b.NumOutputs() }

var _ Buffer = (*dafc)(nil)
