package buffer

import (
	"damq/internal/obs"
	"damq/internal/packet"
)

// Metric names the facade registers for an observed standalone buffer.
const (
	MetricAccepted = "buffer.accepted"
	MetricRejected = "buffer.rejected"
	MetricPopped   = "buffer.popped"
)

// Metrics is the instrument set an observed buffer maintains. Fields
// may be nil individually; every probe is nil-guarded, matching the
// zero-cost-off convention damqvet polices.
type Metrics struct {
	// Accepted counts packets stored by Accept.
	Accepted *obs.Counter
	// Rejected counts Accept calls that failed (full buffer or bad port).
	Rejected *obs.Counter
	// Popped counts packets removed by Pop.
	Popped *obs.Counter
}

// Instrumented decorates a Buffer with acceptance/rejection/drain
// counters. It is what the facade's NewBuffer returns when a
// damq.WithObserver option is present; all other Buffer methods
// delegate untouched.
type Instrumented struct {
	Buffer
	m *Metrics
}

// Instrument wraps b. A nil or empty metrics set is legal and makes the
// wrapper transparent.
func Instrument(b Buffer, m *Metrics) *Instrumented {
	return &Instrumented{Buffer: b, m: m}
}

// Accept stores p and counts the outcome.
func (b *Instrumented) Accept(p *packet.Packet) error {
	err := b.Buffer.Accept(p)
	if b.m != nil {
		if err != nil {
			if b.m.Rejected != nil {
				b.m.Rejected.Inc()
			}
		} else if b.m.Accepted != nil {
			b.m.Accepted.Inc()
		}
	}
	return err
}

// Pop removes and returns Head(out), counting successful drains.
func (b *Instrumented) Pop(out int) *packet.Packet {
	p := b.Buffer.Pop(out)
	if p != nil && b.m != nil {
		if b.m.Popped != nil {
			b.m.Popped.Inc()
		}
	}
	return p
}
