package buffer

import (
	"fmt"

	"damq/internal/packet"
	"damq/internal/pktq"
)

// static implements both statically allocated designs, SAMQ and SAFC.
// Storage is pre-partitioned: each output port owns capacity/numOutputs
// slots that no other traffic can use, so a burst toward one output can be
// rejected while slots reserved for other outputs sit empty — the storage
// inefficiency the DAMQ removes.
//
// The two designs differ only in read bandwidth: SAMQ keeps all queues in
// one single-read-port RAM (one packet may leave the buffer per cycle),
// SAFC gives every queue its own RAM and crossbar lane (all queues may
// transmit simultaneously). Admission is identical.
type static struct {
	kind       Kind
	numOutputs int
	perQueue   int // slots statically owned by each output's queue
	pkts       int // total packets across queues, kept for O(1) Len/Empty
	queues     []staticQueue
}

// staticQueue is one per-output FIFO with its own slot budget.
type staticQueue struct {
	used int
	pkts pktq.Queue
}

func newStatic(kind Kind, numOutputs, capacity int) *static {
	return &static{
		kind:       kind,
		numOutputs: numOutputs,
		perQueue:   capacity / numOutputs,
		queues:     make([]staticQueue, numOutputs),
	}
}

func (b *static) Kind() Kind      { return b.kind }
func (b *static) NumOutputs() int { return b.numOutputs }
func (b *static) Capacity() int   { return b.perQueue * b.numOutputs }

func (b *static) Free() int {
	free := 0
	for i := range b.queues {
		free += b.perQueue - b.queues[i].used
	}
	return free
}

// QueueFree reports the free slots in the queue serving out. It is the
// quantity the paper's per-queue flow control must communicate upstream
// (four times the flow-control information of a FIFO, as Section 2 notes).
func (b *static) QueueFree(out int) int {
	return b.perQueue - b.queues[out].used
}

func (b *static) Len() int    { return b.pkts }
func (b *static) Empty() bool { return b.pkts == 0 }

func (b *static) MaxReadsPerCycle() int {
	if b.kind == SAFC {
		return b.numOutputs
	}
	return 1
}

func (b *static) CanAccept(p *packet.Packet) bool {
	if p.OutPort < 0 || p.OutPort >= b.numOutputs {
		return false
	}
	return p.Slots <= b.QueueFree(p.OutPort)
}

func (b *static) Accept(p *packet.Packet) error {
	if p.OutPort < 0 || p.OutPort >= b.numOutputs {
		return fmt.Errorf("%v: %w: %d", b.kind, ErrBadPort, p.OutPort)
	}
	if !b.CanAccept(p) {
		return fmt.Errorf("%v: %w (queue %d free %d, need %d)",
			b.kind, ErrFull, p.OutPort, b.QueueFree(p.OutPort), p.Slots)
	}
	q := &b.queues[p.OutPort]
	q.used += p.Slots
	q.pkts.PushBack(p)
	b.pkts++
	return nil
}

func (b *static) QueueLen(out int) int { return b.queues[out].pkts.Len() }

func (b *static) Head(out int) *packet.Packet {
	return b.queues[out].pkts.Front()
}

func (b *static) Pop(out int) *packet.Packet {
	q := &b.queues[out]
	p := q.pkts.PopFront()
	if p == nil {
		return nil
	}
	q.used -= p.Slots
	b.pkts--
	return p
}

func (b *static) Reset() {
	for i := range b.queues {
		b.queues[i].pkts.Reset()
		b.queues[i].used = 0
	}
	b.pkts = 0
}
