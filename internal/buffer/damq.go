package buffer

import (
	"fmt"
	"strings"

	"damq/internal/packet"
)

// DAMQBuffer is the dynamically allocated multi-queue buffer of Tamir &
// Frazier — the paper's contribution. It is deliberately implemented the
// way the hardware works rather than with Go slices:
//
//   - storage is a pool of fixed-size slots;
//   - every slot has a pointer register (next) naming the next slot of its
//     linked list;
//   - one linked list per output port holds the packets routed to that
//     port, in FIFO order, plus one list of free slots;
//   - per-list head and tail registers locate the first and last slot.
//
// A packet occupying k slots is stored in k slots chained through their
// pointer registers; the last slot of a packet chains to the first slot of
// the next packet in the same queue, exactly as in the chip, so a queue is
// one continuous linked list of slots. Any free slot can serve any packet
// for any output — this dynamic allocation is what distinguishes the DAMQ
// from the statically partitioned SAMQ/SAFC.
//
// The exported type (rather than an unexported one behind New) lets tests
// and the comcobb package exercise the structural invariants directly.
type DAMQBuffer struct {
	numOutputs int
	capacity   int

	next  []int32          // per-slot pointer register
	owner []*packet.Packet // packet whose *first* slot this is; nil for continuation slots

	freeHead  int32
	freeTail  int32
	freeCount int
	pkts      int // total packets across queues, kept for O(1) Len/Empty

	qHead  []int32 // per-output head register
	qTail  []int32 // per-output tail register
	qPkts  []int   // packets per queue
	qSlots []int   // slots per queue

	// Quarantine state, nil until the first QuarantineSlot call so the
	// fault-free buffer pays nothing beyond one nil check in giveFree.
	// A quarantined slot is on no list: the pool's capacity shrinks
	// instead of a dead pointer register corrupting a linked list.
	quar      []uint8
	quarCount int
}

const nilSlot = int32(-1)

// Quarantine slot states (entries of quar).
const (
	slotHealthy     uint8 = iota
	slotQuarPending       // in use; quarantine when its packet releases it
	slotQuarantined       // out of service, on no list
)

// NewDAMQ constructs a DAMQ buffer with the given queue count and total
// slot capacity.
func NewDAMQ(numOutputs, capacity int) *DAMQBuffer {
	b := &DAMQBuffer{
		numOutputs: numOutputs,
		capacity:   capacity,
		next:       make([]int32, capacity),
		owner:      make([]*packet.Packet, capacity),
		qHead:      make([]int32, numOutputs),
		qTail:      make([]int32, numOutputs),
		qPkts:      make([]int, numOutputs),
		qSlots:     make([]int, numOutputs),
	}
	b.Reset()
	return b
}

func (b *DAMQBuffer) Kind() Kind            { return DAMQ }
func (b *DAMQBuffer) NumOutputs() int       { return b.numOutputs }
func (b *DAMQBuffer) Capacity() int         { return b.capacity }
func (b *DAMQBuffer) Free() int             { return b.freeCount }
func (b *DAMQBuffer) MaxReadsPerCycle() int { return 1 }

func (b *DAMQBuffer) Len() int { return b.pkts }

// Empty reports whether no packets are buffered, in O(1).
func (b *DAMQBuffer) Empty() bool { return b.pkts == 0 }

// QueueSlots reports the slots currently held by the queue for out, used
// by tests and the occupancy ablation.
func (b *DAMQBuffer) QueueSlots(out int) int { return b.qSlots[out] }

func (b *DAMQBuffer) CanAccept(p *packet.Packet) bool {
	return p.Slots <= b.freeCount
}

// takeFree removes and returns the head of the free list.
func (b *DAMQBuffer) takeFree() int32 {
	s := b.freeHead
	b.freeHead = b.next[s]
	if b.freeHead == nilSlot {
		b.freeTail = nilSlot
	}
	b.freeCount--
	return s
}

// giveFree appends slot s to the free list, mirroring the transmission
// manager FSM returning freed slots. A slot marked for quarantine is
// diverted out of service instead of rejoining the pool.
func (b *DAMQBuffer) giveFree(s int32) {
	if b.quar != nil && b.quar[s] == slotQuarPending {
		b.quar[s] = slotQuarantined
		b.quarCount++
		b.next[s] = nilSlot
		b.owner[s] = nil
		return
	}
	b.next[s] = nilSlot
	b.owner[s] = nil
	if b.freeTail == nilSlot {
		b.freeHead = s
	} else {
		b.next[b.freeTail] = s
	}
	b.freeTail = s
	b.freeCount++
}

func (b *DAMQBuffer) Accept(p *packet.Packet) error {
	out := p.OutPort
	if out < 0 || out >= b.numOutputs {
		return fmt.Errorf("damq: %w: %d", ErrBadPort, out)
	}
	if p.Slots <= 0 {
		return fmt.Errorf("damq: packet %v has non-positive slot count", p)
	}
	if p.Slots > b.freeCount {
		return fmt.Errorf("damq: %w (free %d, need %d)", ErrFull, b.freeCount, p.Slots)
	}
	// Pull the packet's slots off the free list and chain them. The first
	// slot records the packet (the hardware's header/length registers are
	// associated with the packet's first slot).
	first := b.takeFree()
	b.owner[first] = p
	last := first
	for i := 1; i < p.Slots; i++ {
		s := b.takeFree()
		b.next[last] = s
		last = s
	}
	b.next[last] = nilSlot

	// Append to the queue: point the old tail's slot at the packet's first
	// slot, then move the tail register.
	if b.qTail[out] == nilSlot {
		b.qHead[out] = first
	} else {
		b.next[b.qTail[out]] = first
	}
	b.qTail[out] = last
	b.qPkts[out]++
	b.qSlots[out] += p.Slots
	b.pkts++
	return nil
}

func (b *DAMQBuffer) QueueLen(out int) int { return b.qPkts[out] }

func (b *DAMQBuffer) Head(out int) *packet.Packet {
	if b.qPkts[out] == 0 {
		return nil
	}
	return b.owner[b.qHead[out]]
}

func (b *DAMQBuffer) Pop(out int) *packet.Packet {
	if b.qPkts[out] == 0 {
		return nil
	}
	first := b.qHead[out]
	p := b.owner[first]
	// Walk the packet's slots, advancing the head register and returning
	// each slot to the free list as the hardware does after transmission.
	s := first
	for i := 0; i < p.Slots; i++ {
		n := b.next[s]
		b.giveFree(s)
		s = n
	}
	b.qHead[out] = s
	if s == nilSlot {
		b.qTail[out] = nilSlot
	}
	b.qPkts[out]--
	b.qSlots[out] -= p.Slots
	b.pkts--
	return p
}

// QuarantineSlot takes slot s out of service, modelling a stuck-at/dead
// slot detected by the hardware's self-test. A free slot is unlinked from
// the free list immediately; a slot currently holding packet data keeps
// serving its packet and is diverted to quarantine when released (yanking
// a live slot would corrupt its packet's chain — exactly the failure mode
// quarantine exists to prevent). Capacity shrinks by one either way; the
// nominal Capacity() is unchanged so occupancy ratios stay comparable.
//
// Returns true if this call newly removed the slot from service, false if
// it was already quarantined or pending. This is a cold path: it may
// allocate (first call) and walk the free list.
func (b *DAMQBuffer) QuarantineSlot(s int) bool {
	if s < 0 || s >= b.capacity {
		panic(fmt.Sprintf("damq: QuarantineSlot(%d) out of range [0,%d)", s, b.capacity))
	}
	if b.quar == nil {
		b.quar = make([]uint8, b.capacity)
	}
	if b.quar[s] != slotHealthy {
		return false
	}
	// Unlink from the free list if present; otherwise the slot is in use.
	prev := nilSlot
	for cur := b.freeHead; cur != nilSlot; cur = b.next[cur] {
		if cur == int32(s) {
			if prev == nilSlot {
				b.freeHead = b.next[cur]
			} else {
				b.next[prev] = b.next[cur]
			}
			if b.freeTail == cur {
				b.freeTail = prev
			}
			b.freeCount--
			b.next[cur] = nilSlot
			b.quar[s] = slotQuarantined
			b.quarCount++
			return true
		}
		prev = cur
	}
	b.quar[s] = slotQuarPending
	return true
}

// Quarantined reports how many slots are fully out of service (pending
// slots still serving a packet are not counted until released).
func (b *DAMQBuffer) Quarantined() int { return b.quarCount }

func (b *DAMQBuffer) Reset() {
	// All slots onto the free list, in index order. Reset models a power
	// cycle: quarantine state is cleared and every slot rejoins the pool.
	b.quar = nil
	b.quarCount = 0
	for i := range b.next {
		b.next[i] = int32(i + 1)
		b.owner[i] = nil
	}
	if b.capacity > 0 {
		b.next[b.capacity-1] = nilSlot
		b.freeHead = 0
		b.freeTail = int32(b.capacity - 1)
	} else {
		b.freeHead, b.freeTail = nilSlot, nilSlot
	}
	b.freeCount = b.capacity
	for i := 0; i < b.numOutputs; i++ {
		b.qHead[i] = nilSlot
		b.qTail[i] = nilSlot
		b.qPkts[i] = 0
		b.qSlots[i] = 0
	}
	b.pkts = 0
}

// CheckInvariants verifies the structural health of the slot pool: every
// slot is on exactly one list (or quarantined and on none), per-queue
// counters match the lists, queue order is intact, and free accounting is
// exact. Tests call it after random operation sequences; it is the
// software analogue of the FSM synchronization argument in Section 3.2.3
// of the paper.
func (b *DAMQBuffer) CheckInvariants() error {
	seen := make([]bool, b.capacity)

	walk := func(head int32, name string) (slots int, err error) {
		for s := head; s != nilSlot; s = b.next[s] {
			if s < 0 || int(s) >= b.capacity {
				return 0, fmt.Errorf("damq: %s list points at invalid slot %d", name, s)
			}
			if seen[s] {
				return 0, fmt.Errorf("damq: slot %d appears on two lists (second: %s)", s, name)
			}
			seen[s] = true
			slots++
			if slots > b.capacity {
				return 0, fmt.Errorf("damq: %s list is cyclic", name)
			}
		}
		return slots, nil
	}

	freeSlots, err := walk(b.freeHead, "free")
	if err != nil {
		return err
	}
	if freeSlots != b.freeCount {
		return fmt.Errorf("damq: free list has %d slots, counter says %d", freeSlots, b.freeCount)
	}
	for s := b.freeHead; s != nilSlot; s = b.next[s] {
		if b.quar != nil && b.quar[s] == slotQuarantined {
			return fmt.Errorf("damq: quarantined slot %d is on the free list", s)
		}
	}

	total := freeSlots
	for out := 0; out < b.numOutputs; out++ {
		// Walk the queue packet by packet to validate per-packet chaining.
		s := b.qHead[out]
		pkts, slots := 0, 0
		for s != nilSlot {
			p := b.owner[s]
			if p == nil {
				return fmt.Errorf("damq: queue %d head slot %d has no owner packet", out, s)
			}
			if p.OutPort != out {
				return fmt.Errorf("damq: packet %v found on queue %d", p, out)
			}
			last := s
			for i := 0; i < p.Slots; i++ {
				if last == nilSlot {
					return fmt.Errorf("damq: packet %v truncated in queue %d", p, out)
				}
				if i > 0 && b.owner[last] != nil {
					return fmt.Errorf("damq: continuation slot %d of %v owns a packet", last, p)
				}
				if seen[last] {
					return fmt.Errorf("damq: slot %d double-booked in queue %d", last, out)
				}
				seen[last] = true
				slots++
				if i < p.Slots-1 {
					last = b.next[last]
				}
			}
			if b.next[last] == nilSlot && b.qTail[out] != last {
				return fmt.Errorf("damq: queue %d tail register %d != actual tail %d", out, b.qTail[out], last)
			}
			s = b.next[last]
			pkts++
			if pkts > b.capacity {
				return fmt.Errorf("damq: queue %d is cyclic", out)
			}
		}
		if pkts != b.qPkts[out] {
			return fmt.Errorf("damq: queue %d has %d packets, counter says %d", out, pkts, b.qPkts[out])
		}
		if slots != b.qSlots[out] {
			return fmt.Errorf("damq: queue %d holds %d slots, counter says %d", out, slots, b.qSlots[out])
		}
		if pkts == 0 && (b.qHead[out] != nilSlot || b.qTail[out] != nilSlot) {
			return fmt.Errorf("damq: empty queue %d has live head/tail registers", out)
		}
		total += slots
	}
	quarSlots := 0
	if b.quar != nil {
		for s := 0; s < b.capacity; s++ {
			if b.quar[s] != slotQuarantined {
				continue
			}
			if seen[s] {
				return fmt.Errorf("damq: quarantined slot %d is on a list", s)
			}
			seen[s] = true
			quarSlots++
		}
	}
	if quarSlots != b.quarCount {
		return fmt.Errorf("damq: %d slots quarantined, counter says %d", quarSlots, b.quarCount)
	}
	total += quarSlots
	if total != b.capacity {
		return fmt.Errorf("damq: %d slots accounted for, capacity %d", total, b.capacity)
	}
	sum := 0
	for _, c := range b.qPkts {
		sum += c
	}
	if sum != b.pkts {
		return fmt.Errorf("damq: queues hold %d packets, total counter says %d", sum, b.pkts)
	}
	return nil
}

// Dump renders the slot pool's linked-list structure for debugging: each
// queue as its chain of (slot, packet) hops and the free list as slot
// indices. The output is the software view of the chip's pointer
// registers.
func (b *DAMQBuffer) Dump() string {
	var sb strings.Builder
	for out := 0; out < b.numOutputs; out++ {
		fmt.Fprintf(&sb, "q%d:", out)
		s := b.qHead[out]
		for n := 0; n < b.qPkts[out]; n++ {
			p := b.owner[s]
			fmt.Fprintf(&sb, " [pkt%d:", p.ID)
			for i := 0; i < p.Slots; i++ {
				fmt.Fprintf(&sb, " %d", s)
				s = b.next[s]
			}
			sb.WriteString("]")
		}
		sb.WriteString("\n")
	}
	sb.WriteString("free:")
	for s := b.freeHead; s != nilSlot; s = b.next[s] {
		fmt.Fprintf(&sb, " %d", s)
	}
	sb.WriteString("\n")
	if b.quarCount > 0 {
		sb.WriteString("quarantined:")
		for s := 0; s < b.capacity; s++ {
			if b.quar[s] == slotQuarantined {
				fmt.Fprintf(&sb, " %d", s)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

var _ Buffer = (*DAMQBuffer)(nil)
