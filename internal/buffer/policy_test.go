package buffer

import "testing"

// TestDynThresholdAdmission pins the DT rule: a queue may grow to at
// most alpha times the current free space, so the threshold tightens as
// the pool fills.
func TestDynThresholdAdmission(t *testing.T) {
	b := MustNew(Config{Kind: DT, NumOutputs: 2, Capacity: 8, Sharing: Sharing{Alpha: 1}})
	// Empty pool: queue 0 may grow while qSlots+1 <= free.
	for i := uint64(1); i <= 4; i++ {
		if err := b.Accept(mk(i, 0, 1)); err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
	}
	// qSlots(0)=4, free=4: 4+1 > 1.0*4, the hot queue is cut off...
	if b.CanAccept(mk(9, 0, 1)) {
		t.Fatal("DT admitted past alpha*free on the hot queue")
	}
	// ...while the idle queue still gets in (1 <= 4).
	if !b.CanAccept(mk(10, 1, 1)) {
		t.Fatal("DT refused an idle queue with free space in reserve")
	}
	// A DAMQ at the same occupancy would admit the hot packet: that gap
	// is precisely the admission-control reserve.
	d := NewDAMQ(2, 8)
	for i := uint64(1); i <= 4; i++ {
		if err := d.Accept(mk(i, 0, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if !d.CanAccept(mk(9, 0, 1)) {
		t.Fatal("DAMQ refused a packet that fits")
	}
}

// TestFBReserveSurvivesOverload pins FB's guarantee: each class keeps a
// reserved quota other classes cannot consume.
func TestFBReserveSurvivesOverload(t *testing.T) {
	// 16 slots, 2 classes: reserve = 16/2/2 = 4 per class.
	b := MustNew(Config{Kind: FB, NumOutputs: 2, Capacity: 16, Sharing: Sharing{Alpha: 1, Classes: 2}})
	// Find packet IDs in each class (the mapping is the exported Class).
	idOfClass := func(c int) uint64 {
		for id := uint64(1); ; id++ {
			if Class(mk(id, 0, 1), 2) == c {
				return id
			}
		}
	}
	// Stuff class 0 until it is refused.
	var nextID uint64 = 1
	accepted := 0
	for ; accepted < 16; nextID++ {
		p := mk(nextID, int(nextID)%2, 1)
		if Class(p, 2) != 0 {
			continue
		}
		if !b.CanAccept(p) {
			break
		}
		if err := b.Accept(p); err != nil {
			t.Fatal(err)
		}
		accepted++
	}
	if accepted == 0 || accepted == 16 {
		t.Fatalf("class 0 accepted %d packets; want a cap strictly inside (0,16)", accepted)
	}
	// Class 1's reserve is untouched: its first packets still enter.
	p := mk(idOfClass(1), 0, 1)
	if !b.CanAccept(p) {
		t.Fatal("FB refused class 1 its reserved quota under class-0 overload")
	}
}

// TestBShareShrinksStalledQueue pins the delay response: once a queue's
// head has waited past the target, its allowance shrinks with the
// overshoot, while fresh queues keep the full dynamic threshold.
func TestBShareShrinksStalledQueue(t *testing.T) {
	b := MustNew(Config{Kind: BSHARE, NumOutputs: 2, Capacity: 12,
		Sharing: Sharing{Alpha: 1, DelayTarget: 4}})
	if err := b.Accept(mk(1, 0, 2)); err != nil {
		t.Fatal(err)
	}
	// Fresh head: qSlots(0)=2, free=10 — more fits.
	if !b.CanAccept(mk(2, 0, 2)) {
		t.Fatal("BSHARE refused a fresh queue under threshold")
	}
	// Stall the head far past the 4-tick target: allowance collapses
	// toward the one-packet reserve, so the same offer is now refused.
	for i := 0; i < 40; i++ {
		b.(Ticker).Tick()
	}
	if b.CanAccept(mk(2, 0, 2)) {
		t.Fatal("BSHARE kept admitting behind a stalled head")
	}
	// The other, empty queue is unaffected (HeadAge 0).
	if !b.CanAccept(mk(3, 1, 2)) {
		t.Fatal("BSHARE refused an empty queue")
	}
	// Draining the stalled head restores the allowance.
	if p := b.Pop(0); p == nil || p.ID != 1 {
		t.Fatalf("Pop = %v, want pkt 1", p)
	}
	if !b.CanAccept(mk(2, 0, 2)) {
		t.Fatal("BSHARE still refusing after the stalled head drained")
	}
}

// TestSharingValidation pins the knob rules: parameters set on a kind
// that does not read them are rejected, with the policy named.
func TestSharingValidation(t *testing.T) {
	bad := []Config{
		{Kind: DAMQ, NumOutputs: 2, Capacity: 4, Sharing: Sharing{Alpha: 2}},
		{Kind: FIFO, NumOutputs: 2, Capacity: 4, Sharing: Sharing{Classes: 2}},
		{Kind: DT, NumOutputs: 2, Capacity: 4, Sharing: Sharing{Classes: 2}},
		{Kind: DT, NumOutputs: 2, Capacity: 4, Sharing: Sharing{DelayTarget: 8}},
		{Kind: FB, NumOutputs: 2, Capacity: 4, Sharing: Sharing{DelayTarget: 8}},
		{Kind: FB, NumOutputs: 2, Capacity: 4, Sharing: Sharing{Classes: 5}}, // classes > capacity/2: no reserve
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("%v with sharing %+v: accepted, want error", cfg.Kind, cfg.Sharing)
		}
	}
	good := []Config{
		{Kind: DT, NumOutputs: 2, Capacity: 4, Sharing: Sharing{Alpha: 0.5}},
		{Kind: FB, NumOutputs: 2, Capacity: 8, Sharing: Sharing{Alpha: 2, Classes: 2}},
		{Kind: BSHARE, NumOutputs: 2, Capacity: 4, Sharing: Sharing{DelayTarget: 32}},
		{Kind: BSHARE, NumOutputs: 2, Capacity: 4}, // all defaults
	}
	for _, cfg := range good {
		if _, err := New(cfg); err != nil {
			t.Errorf("%v with sharing %+v: %v", cfg.Kind, cfg.Sharing, err)
		}
	}
}

// TestClassStableAndUniform: the class mapping depends only on packet
// identity (so it is worker-count independent) and spreads consecutive
// IDs across classes rather than striping them.
func TestClassStableAndUniform(t *testing.T) {
	const classes = 4
	counts := make([]int, classes)
	for id := uint64(0); id < 4096; id++ {
		c := Class(mk(id, 0, 1), classes)
		if c < 0 || c >= classes {
			t.Fatalf("Class(%d) = %d out of range", id, c)
		}
		counts[c]++
	}
	for c, n := range counts {
		if n < 4096/classes/2 || n > 4096/classes*2 {
			t.Fatalf("class %d holds %d of 4096 ids — mapping is badly skewed: %v", c, n, counts)
		}
	}
	if Class(mk(7, 0, 1), 1) != 0 {
		t.Fatal("single-class mapping must be 0")
	}
}

// BenchmarkPolicyAdmit measures the admission hot path of each 2026
// policy — one Accept/Pop round trip through CanAccept, the threshold
// arithmetic, and the slot pool — against the DAMQ baseline. The CI
// benchmark gate pins all of these at 0 allocs/op: admission decisions
// must stay pure arithmetic over pool state.
func BenchmarkPolicyAdmit(b *testing.B) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"DAMQ", Config{Kind: DAMQ, NumOutputs: 4, Capacity: 16}},
		{"DT", Config{Kind: DT, NumOutputs: 4, Capacity: 16}},
		{"FB", Config{Kind: FB, NumOutputs: 4, Capacity: 16, Sharing: Sharing{Classes: 4}}},
		{"BSHARE", Config{Kind: BSHARE, NumOutputs: 4, Capacity: 16}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			buf := MustNew(tc.cfg)
			// Half-fill the pool so every policy evaluates a contended
			// threshold, not the trivial empty case.
			for i := uint64(1); i <= 8; i++ {
				if err := buf.Accept(mk(i, int(i)%4, 1)); err != nil {
					b.Fatal(err)
				}
			}
			p := mk(100, 2, 1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !buf.CanAccept(p) {
					b.Fatal("refused in steady state")
				}
				if err := buf.Accept(p); err != nil {
					b.Fatal(err)
				}
				if buf.Pop(2) == nil {
					b.Fatal("lost packet")
				}
			}
		})
	}
}
