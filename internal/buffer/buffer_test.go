package buffer

import (
	"errors"
	"testing"

	"damq/internal/packet"
)

// mk builds a routed packet for tests.
func mk(id uint64, out, slots int) *packet.Packet {
	return &packet.Packet{ID: id, Dest: out, OutPort: out, Slots: slots}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{FIFO: "FIFO", SAMQ: "SAMQ", SAFC: "SAFC", DAMQ: "DAMQ"}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Errorf("out-of-range Kind string = %q", Kind(99).String())
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
		got, err = ParseKind("  ")
		if err == nil {
			t.Errorf("ParseKind of garbage succeeded: %v", got)
		}
	}
	if k, err := ParseKind("damq"); err != nil || k != DAMQ {
		t.Errorf("lower-case parse failed: %v %v", k, err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Kind: FIFO, NumOutputs: 0, Capacity: 4}); err == nil {
		t.Error("accepted zero outputs")
	}
	if _, err := New(Config{Kind: FIFO, NumOutputs: 4, Capacity: 0}); err == nil {
		t.Error("accepted zero capacity")
	}
	if _, err := New(Config{Kind: SAMQ, NumOutputs: 4, Capacity: 6}); err == nil {
		t.Error("SAMQ accepted capacity not divisible by outputs")
	}
	if _, err := New(Config{Kind: SAFC, NumOutputs: 4, Capacity: 7}); err == nil {
		t.Error("SAFC accepted capacity not divisible by outputs")
	}
	if _, err := New(Config{Kind: Kind(42), NumOutputs: 4, Capacity: 4}); err == nil {
		t.Error("accepted unknown kind")
	}
	if _, err := New(Config{Kind: DAMQ, NumOutputs: 4, Capacity: 5}); err != nil {
		t.Errorf("DAMQ rejected odd capacity: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on bad config")
		}
	}()
	MustNew(Config{Kind: SAMQ, NumOutputs: 4, Capacity: 5})
}

// all four kinds at 4 outputs, 8 slots.
func allBuffers(t *testing.T) map[Kind]Buffer {
	t.Helper()
	out := map[Kind]Buffer{}
	for _, k := range Kinds() {
		out[k] = MustNew(Config{Kind: k, NumOutputs: 4, Capacity: 8})
	}
	return out
}

func TestEmptyState(t *testing.T) {
	for k, b := range allBuffers(t) {
		if b.Kind() != k {
			t.Errorf("%v: Kind() = %v", k, b.Kind())
		}
		if b.Len() != 0 || b.Free() != 8 || b.Capacity() != 8 || b.NumOutputs() != 4 {
			t.Errorf("%v: bad empty state", k)
		}
		for out := 0; out < 4; out++ {
			if b.Head(out) != nil || b.Pop(out) != nil || b.QueueLen(out) != 0 {
				t.Errorf("%v: empty buffer reports contents at out %d", k, out)
			}
		}
	}
}

func TestAcceptPopRoundTrip(t *testing.T) {
	for k, b := range allBuffers(t) {
		p := mk(1, 2, 1)
		if !b.CanAccept(p) {
			t.Fatalf("%v: rejected first packet", k)
		}
		if err := b.Accept(p); err != nil {
			t.Fatalf("%v: accept: %v", k, err)
		}
		if b.Len() != 1 || b.Free() != 7 {
			t.Fatalf("%v: len/free after accept = %d/%d", k, b.Len(), b.Free())
		}
		if got := b.Head(2); got != p {
			t.Fatalf("%v: Head(2) = %v", k, got)
		}
		if got := b.Head(1); got != nil {
			t.Fatalf("%v: Head(1) = %v, want nil", k, got)
		}
		if got := b.Pop(2); got != p {
			t.Fatalf("%v: Pop(2) = %v", k, got)
		}
		if b.Len() != 0 || b.Free() != 8 {
			t.Fatalf("%v: len/free after pop = %d/%d", k, b.Len(), b.Free())
		}
	}
}

func TestFIFOOrderAndHOLBlocking(t *testing.T) {
	b := MustNew(Config{Kind: FIFO, NumOutputs: 4, Capacity: 8})
	p1, p2, p3 := mk(1, 0, 1), mk(2, 1, 1), mk(3, 0, 1)
	for _, p := range []*packet.Packet{p1, p2, p3} {
		if err := b.Accept(p); err != nil {
			t.Fatal(err)
		}
	}
	// Head-of-line blocking: p2 wants output 1 but p1 is at the head.
	if b.Head(1) != nil {
		t.Fatal("FIFO exposed a non-head packet")
	}
	if b.QueueLen(1) != 0 {
		t.Fatal("FIFO queue length for blocked output should be 0")
	}
	if b.QueueLen(0) != 3 {
		t.Fatalf("FIFO queue length for head output = %d, want 3", b.QueueLen(0))
	}
	if got := b.Pop(0); got != p1 {
		t.Fatalf("pop1 = %v", got)
	}
	// Now p2 is the head and output 1 becomes visible.
	if got := b.Pop(1); got != p2 {
		t.Fatalf("pop2 = %v", got)
	}
	if got := b.Pop(0); got != p3 {
		t.Fatalf("pop3 = %v", got)
	}
}

func TestMultiQueueNoHOLBlocking(t *testing.T) {
	for _, k := range []Kind{SAMQ, SAFC, DAMQ} {
		b := MustNew(Config{Kind: k, NumOutputs: 4, Capacity: 8})
		p1, p2 := mk(1, 0, 1), mk(2, 1, 1)
		if err := b.Accept(p1); err != nil {
			t.Fatal(err)
		}
		if err := b.Accept(p2); err != nil {
			t.Fatal(err)
		}
		// p2 is reachable even though p1 arrived first: no HOL blocking.
		if got := b.Head(1); got != p2 {
			t.Fatalf("%v: Head(1) = %v, want %v", k, got, p2)
		}
		if got := b.Pop(1); got != p2 {
			t.Fatalf("%v: Pop(1) = %v", k, got)
		}
		if got := b.Pop(0); got != p1 {
			t.Fatalf("%v: Pop(0) = %v", k, got)
		}
	}
}

func TestPerQueueFIFOOrder(t *testing.T) {
	for _, k := range []Kind{SAMQ, SAFC, DAMQ} {
		b := MustNew(Config{Kind: k, NumOutputs: 4, Capacity: 8})
		var want []uint64
		for i := uint64(1); i <= 2; i++ {
			p := mk(i, 3, 1)
			if err := b.Accept(p); err != nil {
				t.Fatal(err)
			}
			want = append(want, i)
		}
		for _, id := range want {
			got := b.Pop(3)
			if got == nil || got.ID != id {
				t.Fatalf("%v: out-of-order pop: got %v want id %d", k, got, id)
			}
		}
	}
}

func TestStaticPartitionRejectsWhileFree(t *testing.T) {
	// The paper's core criticism of SAMQ/SAFC: a queue can be full while
	// the buffer has free slots elsewhere.
	for _, k := range []Kind{SAMQ, SAFC} {
		b := MustNew(Config{Kind: k, NumOutputs: 4, Capacity: 8}) // 2 slots per queue
		if err := b.Accept(mk(1, 0, 1)); err != nil {
			t.Fatal(err)
		}
		if err := b.Accept(mk(2, 0, 1)); err != nil {
			t.Fatal(err)
		}
		p := mk(3, 0, 1)
		if b.CanAccept(p) {
			t.Fatalf("%v: accepted 3rd packet into 2-slot queue", k)
		}
		if err := b.Accept(p); !errors.Is(err, ErrFull) {
			t.Fatalf("%v: error = %v, want ErrFull", k, err)
		}
		if b.Free() != 6 {
			t.Fatalf("%v: free = %d, want 6", k, b.Free())
		}
	}
}

func TestDynamicPoolAdaptsToSkew(t *testing.T) {
	// FIFO and DAMQ accept 8 packets for a single output (whole pool).
	for _, k := range []Kind{FIFO, DAMQ} {
		b := MustNew(Config{Kind: k, NumOutputs: 4, Capacity: 8})
		for i := uint64(0); i < 8; i++ {
			if err := b.Accept(mk(i+1, 0, 1)); err != nil {
				t.Fatalf("%v: packet %d rejected: %v", k, i, err)
			}
		}
		if b.CanAccept(mk(9, 1, 1)) {
			t.Fatalf("%v: accepted packet into full buffer", k)
		}
	}
}

func TestBadPortRejected(t *testing.T) {
	for k, b := range allBuffers(t) {
		for _, out := range []int{-1, 4} {
			if err := b.Accept(mk(1, out, 1)); !errors.Is(err, ErrBadPort) {
				t.Errorf("%v: Accept(out=%d) error = %v, want ErrBadPort", k, out, err)
			}
		}
	}
}

func TestMaxReadsPerCycle(t *testing.T) {
	for k, b := range allBuffers(t) {
		want := 1
		if k == SAFC {
			want = 4
		}
		if b.MaxReadsPerCycle() != want {
			t.Errorf("%v: reads/cycle = %d, want %d", k, b.MaxReadsPerCycle(), want)
		}
	}
}

func TestReset(t *testing.T) {
	for k, b := range allBuffers(t) {
		if err := b.Accept(mk(1, 1, 1)); err != nil {
			t.Fatal(err)
		}
		b.Reset()
		if b.Len() != 0 || b.Free() != b.Capacity() {
			t.Errorf("%v: reset did not clear buffer", k)
		}
		if err := b.Accept(mk(2, 1, 1)); err != nil {
			t.Errorf("%v: accept after reset: %v", k, err)
		}
	}
}

func TestVariableLengthAccounting(t *testing.T) {
	for _, k := range []Kind{FIFO, DAMQ} {
		b := MustNew(Config{Kind: k, NumOutputs: 4, Capacity: 8})
		big := mk(1, 0, 4)
		if err := b.Accept(big); err != nil {
			t.Fatal(err)
		}
		if b.Free() != 4 {
			t.Fatalf("%v: free = %d after 4-slot packet", k, b.Free())
		}
		huge := mk(2, 1, 5)
		if b.CanAccept(huge) {
			t.Fatalf("%v: accepted 5-slot packet into 4 free slots", k)
		}
		mid := mk(3, 1, 4)
		if err := b.Accept(mid); err != nil {
			t.Fatalf("%v: exact-fit packet rejected: %v", k, err)
		}
		if b.Free() != 0 {
			t.Fatalf("%v: free = %d, want 0", k, b.Free())
		}
		b.Pop(0)
		if b.Free() != 4 {
			t.Fatalf("%v: free = %d after popping 4-slot packet", k, b.Free())
		}
	}
}

func TestSAMQVariableLength(t *testing.T) {
	b := MustNew(Config{Kind: SAMQ, NumOutputs: 2, Capacity: 8}) // 4 per queue
	if err := b.Accept(mk(1, 0, 3)); err != nil {
		t.Fatal(err)
	}
	if b.CanAccept(mk(2, 0, 2)) {
		t.Fatal("SAMQ accepted 2 slots into queue with 1 free")
	}
	if !b.CanAccept(mk(3, 1, 4)) {
		t.Fatal("SAMQ rejected exact-fit packet for the other queue")
	}
}

func TestStaticQueueFree(t *testing.T) {
	b := newStatic(SAMQ, 4, 8)
	if b.QueueFree(0) != 2 {
		t.Fatalf("QueueFree = %d", b.QueueFree(0))
	}
	if err := b.Accept(mk(1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if b.QueueFree(0) != 1 || b.QueueFree(1) != 2 {
		t.Fatal("QueueFree accounting wrong")
	}
}
