package buffer

// This file preserves the seed (pre-split) implementations of the five
// legacy kinds verbatim — renamed legacy* — and pins the policy×storage
// compositions bit-identical to them: same admission decisions, same
// error text, same observable state after any operation sequence. If a
// refactor of the split changes any legacy kind's behaviour, this is the
// test that names the divergence.

import (
	"fmt"
	"testing"

	"damq/internal/packet"
	"damq/internal/pktq"
	"damq/internal/rng"
)

// ---- seed FIFO (fifo.go at PR 8) ----

type legacyFIFO struct {
	numOutputs int
	capacity   int
	used       int
	q          pktq.Queue
}

func newLegacyFIFO(numOutputs, capacity int) *legacyFIFO {
	return &legacyFIFO{numOutputs: numOutputs, capacity: capacity}
}

func (b *legacyFIFO) Kind() Kind            { return FIFO }
func (b *legacyFIFO) NumOutputs() int       { return b.numOutputs }
func (b *legacyFIFO) Capacity() int         { return b.capacity }
func (b *legacyFIFO) Free() int             { return b.capacity - b.used }
func (b *legacyFIFO) Len() int              { return b.q.Len() }
func (b *legacyFIFO) Empty() bool           { return b.q.Len() == 0 }
func (b *legacyFIFO) MaxReadsPerCycle() int { return 1 }

func (b *legacyFIFO) CanAccept(p *packet.Packet) bool {
	return p.Slots <= b.Free()
}

func (b *legacyFIFO) Accept(p *packet.Packet) error {
	if p.OutPort < 0 || p.OutPort >= b.numOutputs {
		return fmt.Errorf("fifo: %w: %d", ErrBadPort, p.OutPort)
	}
	if !b.CanAccept(p) {
		return fmt.Errorf("fifo: %w (free %d, need %d)", ErrFull, b.Free(), p.Slots)
	}
	b.used += p.Slots
	b.q.PushBack(p)
	return nil
}

func (b *legacyFIFO) QueueLen(out int) int {
	head := b.q.Front()
	if head == nil || head.OutPort != out {
		return 0
	}
	return b.q.Len()
}

func (b *legacyFIFO) Head(out int) *packet.Packet {
	head := b.q.Front()
	if head == nil || head.OutPort != out {
		return nil
	}
	return head
}

func (b *legacyFIFO) Pop(out int) *packet.Packet {
	p := b.Head(out)
	if p == nil {
		return nil
	}
	b.q.PopFront()
	b.used -= p.Slots
	return p
}

func (b *legacyFIFO) Reset() {
	b.q.Reset()
	b.used = 0
}

// ---- seed SAMQ/SAFC (static.go at PR 8) ----

type legacyStatic struct {
	kind       Kind
	numOutputs int
	perQueue   int
	pkts       int
	queues     []legacyStaticQueue
}

type legacyStaticQueue struct {
	used int
	pkts pktq.Queue
}

func newLegacyStatic(kind Kind, numOutputs, capacity int) *legacyStatic {
	return &legacyStatic{
		kind:       kind,
		numOutputs: numOutputs,
		perQueue:   capacity / numOutputs,
		queues:     make([]legacyStaticQueue, numOutputs),
	}
}

func (b *legacyStatic) Kind() Kind      { return b.kind }
func (b *legacyStatic) NumOutputs() int { return b.numOutputs }
func (b *legacyStatic) Capacity() int   { return b.perQueue * b.numOutputs }

func (b *legacyStatic) Free() int {
	free := 0
	for i := range b.queues {
		free += b.perQueue - b.queues[i].used
	}
	return free
}

func (b *legacyStatic) QueueFree(out int) int {
	return b.perQueue - b.queues[out].used
}

func (b *legacyStatic) Len() int    { return b.pkts }
func (b *legacyStatic) Empty() bool { return b.pkts == 0 }

func (b *legacyStatic) MaxReadsPerCycle() int {
	if b.kind == SAFC {
		return b.numOutputs
	}
	return 1
}

func (b *legacyStatic) CanAccept(p *packet.Packet) bool {
	if p.OutPort < 0 || p.OutPort >= b.numOutputs {
		return false
	}
	return p.Slots <= b.QueueFree(p.OutPort)
}

func (b *legacyStatic) Accept(p *packet.Packet) error {
	if p.OutPort < 0 || p.OutPort >= b.numOutputs {
		return fmt.Errorf("%v: %w: %d", b.kind, ErrBadPort, p.OutPort)
	}
	if !b.CanAccept(p) {
		return fmt.Errorf("%v: %w (queue %d free %d, need %d)",
			b.kind, ErrFull, p.OutPort, b.QueueFree(p.OutPort), p.Slots)
	}
	q := &b.queues[p.OutPort]
	q.used += p.Slots
	q.pkts.PushBack(p)
	b.pkts++
	return nil
}

func (b *legacyStatic) QueueLen(out int) int { return b.queues[out].pkts.Len() }

func (b *legacyStatic) Head(out int) *packet.Packet {
	return b.queues[out].pkts.Front()
}

func (b *legacyStatic) Pop(out int) *packet.Packet {
	q := &b.queues[out]
	p := q.pkts.PopFront()
	if p == nil {
		return nil
	}
	q.used -= p.Slots
	b.pkts--
	return p
}

func (b *legacyStatic) Reset() {
	for i := range b.queues {
		b.queues[i].pkts.Reset()
		b.queues[i].used = 0
	}
	b.pkts = 0
}

// ---- seed DAMQ (damq.go at PR 8), including slot quarantine ----

type legacyDAMQ struct {
	numOutputs int
	capacity   int

	next  []int32
	owner []*packet.Packet

	freeHead  int32
	freeTail  int32
	freeCount int
	pkts      int

	qHead  []int32
	qTail  []int32
	qPkts  []int
	qSlots []int

	quar      []uint8
	quarCount int
}

func newLegacyDAMQ(numOutputs, capacity int) *legacyDAMQ {
	b := &legacyDAMQ{
		numOutputs: numOutputs,
		capacity:   capacity,
		next:       make([]int32, capacity),
		owner:      make([]*packet.Packet, capacity),
		qHead:      make([]int32, numOutputs),
		qTail:      make([]int32, numOutputs),
		qPkts:      make([]int, numOutputs),
		qSlots:     make([]int, numOutputs),
	}
	b.Reset()
	return b
}

func (b *legacyDAMQ) Kind() Kind            { return DAMQ }
func (b *legacyDAMQ) NumOutputs() int       { return b.numOutputs }
func (b *legacyDAMQ) Capacity() int         { return b.capacity }
func (b *legacyDAMQ) Free() int             { return b.freeCount }
func (b *legacyDAMQ) MaxReadsPerCycle() int { return 1 }
func (b *legacyDAMQ) Len() int              { return b.pkts }
func (b *legacyDAMQ) Empty() bool           { return b.pkts == 0 }

func (b *legacyDAMQ) CanAccept(p *packet.Packet) bool {
	return p.Slots <= b.freeCount
}

func (b *legacyDAMQ) takeFree() int32 {
	s := b.freeHead
	b.freeHead = b.next[s]
	if b.freeHead == nilSlot {
		b.freeTail = nilSlot
	}
	b.freeCount--
	return s
}

func (b *legacyDAMQ) giveFree(s int32) {
	if b.quar != nil && b.quar[s] == slotQuarPending {
		b.quar[s] = slotQuarantined
		b.quarCount++
		b.next[s] = nilSlot
		b.owner[s] = nil
		return
	}
	b.next[s] = nilSlot
	b.owner[s] = nil
	if b.freeTail == nilSlot {
		b.freeHead = s
	} else {
		b.next[b.freeTail] = s
	}
	b.freeTail = s
	b.freeCount++
}

func (b *legacyDAMQ) Accept(p *packet.Packet) error {
	out := p.OutPort
	if out < 0 || out >= b.numOutputs {
		return fmt.Errorf("damq: %w: %d", ErrBadPort, out)
	}
	if p.Slots <= 0 {
		return fmt.Errorf("damq: packet %v has non-positive slot count", p)
	}
	if p.Slots > b.freeCount {
		return fmt.Errorf("damq: %w (free %d, need %d)", ErrFull, b.freeCount, p.Slots)
	}
	first := b.takeFree()
	b.owner[first] = p
	last := first
	for i := 1; i < p.Slots; i++ {
		s := b.takeFree()
		b.next[last] = s
		last = s
	}
	b.next[last] = nilSlot

	if b.qTail[out] == nilSlot {
		b.qHead[out] = first
	} else {
		b.next[b.qTail[out]] = first
	}
	b.qTail[out] = last
	b.qPkts[out]++
	b.qSlots[out] += p.Slots
	b.pkts++
	return nil
}

func (b *legacyDAMQ) QueueLen(out int) int { return b.qPkts[out] }

func (b *legacyDAMQ) Head(out int) *packet.Packet {
	if b.qPkts[out] == 0 {
		return nil
	}
	return b.owner[b.qHead[out]]
}

func (b *legacyDAMQ) Pop(out int) *packet.Packet {
	if b.qPkts[out] == 0 {
		return nil
	}
	first := b.qHead[out]
	p := b.owner[first]
	s := first
	for i := 0; i < p.Slots; i++ {
		n := b.next[s]
		b.giveFree(s)
		s = n
	}
	b.qHead[out] = s
	if s == nilSlot {
		b.qTail[out] = nilSlot
	}
	b.qPkts[out]--
	b.qSlots[out] -= p.Slots
	b.pkts--
	return p
}

func (b *legacyDAMQ) QuarantineSlot(s int) bool {
	if s < 0 || s >= b.capacity {
		panic(fmt.Sprintf("damq: QuarantineSlot(%d) out of range [0,%d)", s, b.capacity))
	}
	if b.quar == nil {
		b.quar = make([]uint8, b.capacity)
	}
	if b.quar[s] != slotHealthy {
		return false
	}
	prev := nilSlot
	for cur := b.freeHead; cur != nilSlot; cur = b.next[cur] {
		if cur == int32(s) {
			if prev == nilSlot {
				b.freeHead = b.next[cur]
			} else {
				b.next[prev] = b.next[cur]
			}
			if b.freeTail == cur {
				b.freeTail = prev
			}
			b.freeCount--
			b.next[cur] = nilSlot
			b.quar[s] = slotQuarantined
			b.quarCount++
			return true
		}
		prev = cur
	}
	b.quar[s] = slotQuarPending
	return true
}

func (b *legacyDAMQ) Quarantined() int { return b.quarCount }

func (b *legacyDAMQ) Reset() {
	b.quar = nil
	b.quarCount = 0
	for i := range b.next {
		b.next[i] = int32(i + 1)
		b.owner[i] = nil
	}
	if b.capacity > 0 {
		b.next[b.capacity-1] = nilSlot
		b.freeHead = 0
		b.freeTail = int32(b.capacity - 1)
	} else {
		b.freeHead, b.freeTail = nilSlot, nilSlot
	}
	b.freeCount = b.capacity
	for i := 0; i < b.numOutputs; i++ {
		b.qHead[i] = nilSlot
		b.qTail[i] = nilSlot
		b.qPkts[i] = 0
		b.qSlots[i] = 0
	}
	b.pkts = 0
}

// ---- seed DAFC (dafc.go at PR 8) ----

type legacyDAFC struct {
	*legacyDAMQ
}

func (b *legacyDAFC) Kind() Kind            { return DAFC }
func (b *legacyDAFC) MaxReadsPerCycle() int { return b.NumOutputs() }

// quarantiner is the fault-injection surface DAMQ-pooled kinds expose.
type quarantiner interface {
	QuarantineSlot(int) bool
	Quarantined() int
}

func newLegacyBuffer(t *testing.T, k Kind, outputs, capacity int) Buffer {
	t.Helper()
	switch k {
	case FIFO:
		return newLegacyFIFO(outputs, capacity)
	case SAMQ, SAFC:
		return newLegacyStatic(k, outputs, capacity)
	case DAMQ:
		return newLegacyDAMQ(outputs, capacity)
	case DAFC:
		return &legacyDAFC{newLegacyDAMQ(outputs, capacity)}
	default:
		t.Fatalf("no legacy implementation for %v", k)
		return nil
	}
}

// compareState fails the test when the composed buffer's observable
// state differs in any way from the legacy implementation's.
func compareState(t *testing.T, k Kind, seed uint64, step int, op string, got, want Buffer) {
	t.Helper()
	if got.Len() != want.Len() || got.Free() != want.Free() || got.Empty() != want.Empty() {
		t.Fatalf("%v seed %d step %d after %s: len/free/empty = %d/%d/%v, legacy %d/%d/%v",
			k, seed, step, op, got.Len(), got.Free(), got.Empty(), want.Len(), want.Free(), want.Empty())
	}
	if got.Capacity() != want.Capacity() || got.MaxReadsPerCycle() != want.MaxReadsPerCycle() ||
		got.Kind() != want.Kind() || got.NumOutputs() != want.NumOutputs() {
		t.Fatalf("%v seed %d step %d: static facts diverge", k, seed, step)
	}
	for out := 0; out < want.NumOutputs(); out++ {
		if got.QueueLen(out) != want.QueueLen(out) {
			t.Fatalf("%v seed %d step %d after %s: QueueLen(%d) = %d, legacy %d",
				k, seed, step, op, out, got.QueueLen(out), want.QueueLen(out))
		}
		if got.Head(out) != want.Head(out) {
			t.Fatalf("%v seed %d step %d after %s: Head(%d) = %v, legacy %v",
				k, seed, step, op, out, got.Head(out), want.Head(out))
		}
	}
	gq, gok := got.(quarantiner)
	lq, lok := want.(quarantiner)
	if gok != lok {
		t.Fatalf("%v: quarantine surface differs: composed %v, legacy %v", k, gok, lok)
	}
	if gok && gq.Quarantined() != lq.Quarantined() {
		t.Fatalf("%v seed %d step %d after %s: Quarantined = %d, legacy %d",
			k, seed, step, op, gq.Quarantined(), lq.Quarantined())
	}
}

// TestLegacyKindsBitIdentical drives the composed implementation of each
// legacy kind and its preserved seed twin through the same random
// operation sequence — accepts (in- and out-of-range ports, 1–4 slot
// packets), pops, slot quarantines, resets — across 5 seeds, comparing
// every admission decision, error message, returned packet, and counter
// after every step. The same *packet.Packet pointers flow into both
// buffers, so Head/Pop comparisons are identity, not just equality.
func TestLegacyKindsBitIdentical(t *testing.T) {
	const (
		outputs  = 4
		capacity = 8
		ops      = 3000
	)
	for _, k := range []Kind{FIFO, SAMQ, SAFC, DAMQ, DAFC} {
		for _, seed := range []uint64{1, 2, 3, 4, 5} {
			src := rng.New(seed)
			composed := MustNew(Config{Kind: k, NumOutputs: outputs, Capacity: capacity})
			legacy := newLegacyBuffer(t, k, outputs, capacity)
			var id uint64

			for step := 0; step < ops; step++ {
				switch r := src.Float64(); {
				case r < 0.48: // accept
					out := src.Intn(outputs + 2)
					if src.Bool(0.05) {
						out = -1 // exercise the bad-port error path
					}
					id++
					p := &packet.Packet{ID: id, Dest: out, OutPort: out, Slots: src.Intn(4) + 1}
					if gc, lc := composed.CanAccept(p), legacy.CanAccept(p); gc != lc {
						t.Fatalf("%v seed %d step %d: CanAccept = %v, legacy %v (out %d slots %d)",
							k, seed, step, gc, lc, out, p.Slots)
					}
					ge, le := composed.Accept(p), legacy.Accept(p)
					if (ge == nil) != (le == nil) {
						t.Fatalf("%v seed %d step %d: Accept err = %v, legacy %v", k, seed, step, ge, le)
					}
					if ge != nil && ge.Error() != le.Error() {
						t.Fatalf("%v seed %d step %d: Accept error text diverges:\n  composed: %s\n  legacy:   %s",
							k, seed, step, ge, le)
					}
					compareState(t, k, seed, step, "accept", composed, legacy)
				case r < 0.88: // pop
					out := src.Intn(outputs)
					if gp, lp := composed.Pop(out), legacy.Pop(out); gp != lp {
						t.Fatalf("%v seed %d step %d: Pop(%d) = %v, legacy %v", k, seed, step, out, gp, lp)
					}
					compareState(t, k, seed, step, "pop", composed, legacy)
				case r < 0.96: // quarantine a random slot, where supported
					s := src.Intn(capacity)
					gq, gok := composed.(quarantiner)
					lq, lok := legacy.(quarantiner)
					if gok != lok {
						t.Fatalf("%v: quarantine surface differs: composed %v, legacy %v", k, gok, lok)
					}
					if !gok {
						continue
					}
					if gr, lr := gq.QuarantineSlot(s), lq.QuarantineSlot(s); gr != lr {
						t.Fatalf("%v seed %d step %d: QuarantineSlot(%d) = %v, legacy %v",
							k, seed, step, s, gr, lr)
					}
					compareState(t, k, seed, step, "quarantine", composed, legacy)
				default: // reset (rare)
					composed.Reset()
					legacy.Reset()
					compareState(t, k, seed, step, "reset", composed, legacy)
				}
			}
		}
	}
}

// TestComposedKindsReportPolicies pins the policy names the split
// assigns to each kind — these appear in validation errors and reports.
func TestComposedKindsReportPolicies(t *testing.T) {
	want := map[Kind]string{
		FIFO:   "complete-sharing",
		SAMQ:   "complete-partitioning",
		SAFC:   "complete-partitioning",
		DAMQ:   "complete-sharing",
		DAFC:   "complete-sharing",
		DT:     "dynamic-threshold",
		FB:     "fb-flexible",
		BSHARE: "bshare-delay",
	}
	for k, name := range want {
		if got := k.PolicyName(); got != name {
			t.Errorf("%v.PolicyName() = %q, want %q", k, got, name)
		}
	}
}
