package buffer

import (
	"errors"
	"testing"

	"damq/internal/cfgerr"
)

func sharedViews(t *testing.T, cfg Config, inputs int) []Buffer {
	t.Helper()
	views, err := NewSharedGroup(cfg, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != inputs {
		t.Fatalf("got %d views, want %d", len(views), inputs)
	}
	return views
}

// TestSharedGroupSpansPorts: one port can hold more than its nominal
// share because admission competes for the whole switch's storage.
func TestSharedGroupSpansPorts(t *testing.T) {
	views := sharedViews(t, Config{Kind: DAMQ, NumOutputs: 2, Capacity: 4}, 2)
	v0, v1 := views[0], views[1]
	// Fill six slots through port 0 alone — 150% of its nominal four.
	for i := uint64(1); i <= 6; i++ {
		if err := v0.Accept(mk(i, int(i)%2, 1)); err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
	}
	if v0.Len() != 6 || v1.Len() != 0 {
		t.Fatalf("Len = %d/%d, want 6/0", v0.Len(), v1.Len())
	}
	if v0.Free() != 2 || v1.Free() != 2 {
		t.Fatalf("Free = %d/%d, want 2/2 (shared pool)", v0.Free(), v1.Free())
	}
	// Port 1 sees the shrunken pool: two more fit, a third does not.
	if err := v1.Accept(mk(7, 0, 2)); err != nil {
		t.Fatal(err)
	}
	if v1.CanAccept(mk(8, 1, 1)) {
		t.Fatal("accepted into a full shared pool")
	}
	// Packets come back out of the right view: port 0's queues hold its
	// own packets only, regardless of where the slots physically live.
	if p := v0.Pop(1); p == nil || p.ID != 1 {
		t.Fatalf("v0.Pop(1) = %v, want pkt 1", p)
	}
	if p := v1.Pop(0); p == nil || p.ID != 7 {
		t.Fatalf("v1.Pop(0) = %v, want pkt 7", p)
	}
	for _, v := range views {
		if err := v.(*PoolBuffer).CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSharedGroupQuarantineWindows: per-view slot numbering maps onto
// disjoint windows of the pool, so per-buffer fault schedules span ports
// without colliding, and a quarantine anywhere shrinks everyone's Free.
func TestSharedGroupQuarantineWindows(t *testing.T) {
	views := sharedViews(t, Config{Kind: DT, NumOutputs: 2, Capacity: 4}, 2)
	v0, v1 := views[0].(*PoolBuffer), views[1].(*PoolBuffer)
	if !v1.QuarantineSlot(0) {
		t.Fatal("QuarantineSlot(0) on view 1 = false")
	}
	if v0.Quarantined() != 0 || v1.Quarantined() != 1 {
		t.Fatalf("quarantined = %d/%d, want 0/1", v0.Quarantined(), v1.Quarantined())
	}
	if v0.Free() != 7 || v1.Free() != 7 {
		t.Fatalf("Free = %d/%d, want 7/7", v0.Free(), v1.Free())
	}
	// Same view-local slot on the other view is a different pool slot.
	if !v0.QuarantineSlot(0) {
		t.Fatal("QuarantineSlot(0) on view 0 = false after quarantining view 1's slot 0")
	}
	if v0.Quarantined() != 1 || v1.Quarantined() != 1 || v0.Free() != 6 {
		t.Fatalf("quarantined = %d/%d free %d, want 1/1 free 6", v0.Quarantined(), v1.Quarantined(), v0.Free())
	}
	// View-local bounds still apply.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("QuarantineSlot(4) did not panic on a 4-slot view")
			}
		}()
		v0.QuarantineSlot(4)
	}()
	if err := v0.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSharedGroupTickOnce: a per-buffer tick loop over all views — what
// sw.Switch.Tick does — advances the shared clock exactly once per cycle.
func TestSharedGroupTickOnce(t *testing.T) {
	views := sharedViews(t, Config{Kind: BSHARE, NumOutputs: 2, Capacity: 4}, 4)
	for cycle := 0; cycle < 3; cycle++ {
		for _, v := range views {
			v.(Ticker).Tick()
		}
	}
	if now := views[0].(*PoolBuffer).Pool().Now(); now != 3 {
		t.Fatalf("pool clock = %d after 3 tick sweeps, want 3", now)
	}
}

// TestSharedGroupResetClearsGroup: Reset on any view clears the whole
// group (slot-pool hardware cannot partially reset shared storage), and
// resetting every view — what sw.Switch.Reset does — squares the
// per-view counters.
func TestSharedGroupResetClearsGroup(t *testing.T) {
	views := sharedViews(t, Config{Kind: DAMQ, NumOutputs: 2, Capacity: 4}, 2)
	v0, v1 := views[0], views[1]
	if err := v0.Accept(mk(1, 0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := v1.Accept(mk(2, 1, 2)); err != nil {
		t.Fatal(err)
	}
	for _, v := range views {
		v.Reset()
	}
	if v0.Len() != 0 || v1.Len() != 0 || v0.Free() != 8 {
		t.Fatalf("after reset: len %d/%d free %d, want 0/0/8", v0.Len(), v1.Len(), v0.Free())
	}
}

// TestSharedGroupRejectsUnpooledKinds: the static 1988 designs partition
// storage per port by definition; sharing them is a config error.
func TestSharedGroupRejectsUnpooledKinds(t *testing.T) {
	for _, kind := range []Kind{FIFO, SAMQ, SAFC} {
		_, err := NewSharedGroup(Config{Kind: kind, NumOutputs: 2, Capacity: 4}, 2)
		if !errors.Is(err, cfgerr.ErrBadSharing) {
			t.Fatalf("%v: err = %v, want ErrBadSharing", kind, err)
		}
	}
	if _, err := NewSharedGroup(Config{Kind: DAMQ, NumOutputs: 2, Capacity: 4}, 0); !errors.Is(err, cfgerr.ErrBadPorts) {
		t.Fatalf("inputs=0: err = %v, want ErrBadPorts", err)
	}
}
