// Package buffer implements the input-port buffer organizations compared
// in Tamir & Frazier (1988) under the long-clock packet model, plus their
// modern successors, all as compositions of one storage structure with
// one admission policy:
//
//   - Storage is always the paper's DAMQ slot pool (SlotPool): fixed
//     slots threaded into per-queue linked lists by per-slot pointer
//     registers. A FIFO is the pool with a single queue; multi-queue
//     kinds give each output port its own queue.
//   - An AdmissionPolicy decides, from read-only occupancy state, whether
//     a routed packet may enter. It is pure and allocation-free.
//
// The 1988 kinds under this split:
//
//   - FIFO: complete sharing × single queue. Only the head packet is
//     visible to the crossbar — head-of-line blocking.
//   - SAMQ: complete partitioning × per-output queues, one read port.
//   - SAFC: complete partitioning × per-output queues, every queue its
//     own read port.
//   - DAMQ: complete sharing × per-output queues (the paper's
//     contribution).
//   - DAFC: complete sharing × per-output queues with SAFC connectivity
//     (the design-space corner the connectivity ablation measures).
//
// And the 2026 kinds, which only exist because admission is a separate
// axis:
//
//   - DT: classic Dynamic Threshold (Choudhury & Hahne) — a queue may
//     hold at most alpha × current free space.
//   - FB: flexible sharing across priority classes (Apostolaki et al.) —
//     per-class reserved quotas plus thresholds that halve per class.
//   - BSHARE: queueing-delay-driven sharing (Agarwal et al.) — a queue
//     whose head packet overstays the delay target loses share.
//
// All kinds expose the same Buffer interface so the switch and network
// simulators are parameterized only by buffer kind. Storage is counted in
// slots; fixed-length experiments use one slot per packet, the
// variable-length extension uses several. NewSharedGroup builds the
// switch-wide shared-pool mode: one storage group spanning every input
// port of a switch.
package buffer

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"damq/internal/cfgerr"
	"damq/internal/names"
	"damq/internal/packet"
)

// Kind identifies a buffer organization: a (policy, storage-layout,
// connectivity) triple.
type Kind int

const (
	FIFO Kind = iota
	SAMQ
	SAFC
	DAMQ
	// DAFC (dynamically allocated, fully connected) is not one of the
	// paper's four designs but the fourth corner of its design space:
	// DAMQ's shared slot pool combined with SAFC's one-read-port-per-queue
	// connectivity. It exists to quantify the paper's observation that
	// "the additional throughput provided by fully connecting the inputs
	// with the outputs does not provide a significant boost" — see the
	// connectivity ablation in internal/experiments.
	DAFC
	// DT is the classic Dynamic Threshold policy over DAMQ storage.
	DT
	// FB is per-priority-class flexible sharing over DAMQ storage.
	FB
	// BSHARE is queueing-delay-driven sharing over DAMQ storage.
	BSHARE
)

var kindNames = [...]string{"FIFO", "SAMQ", "SAFC", "DAMQ", "DAFC", "DT", "FB", "BSHARE"}

// String returns the canonical name for the buffer kind.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// PolicyName is the short name of the admission policy the kind composes
// over the slot pool, for error messages, metrics, and reports.
func (k Kind) PolicyName() string {
	switch k {
	case SAMQ, SAFC:
		return completePartition{}.Name()
	case DT:
		return dynThreshold{}.Name()
	case FB:
		return fbSharing{}.Name()
	case BSHARE:
		return bshare{}.Name()
	default:
		return completeSharing{}.Name()
	}
}

// Kinds lists the paper's four buffer kinds in its comparison order.
// The DAFC ablation variant and the modern policies are excluded; use
// AllKinds or ModernKinds.
func Kinds() []Kind { return []Kind{FIFO, SAMQ, SAFC, DAMQ} }

// ModernKinds lists the post-1988 sharing policies.
func ModernKinds() []Kind { return []Kind{DT, FB, BSHARE} }

// AllKinds lists every constructible kind: the paper's four, the DAFC
// ablation, and the modern policies.
func AllKinds() []Kind { return []Kind{FIFO, SAMQ, SAFC, DAMQ, DAFC, DT, FB, BSHARE} }

// KindModern reports whether k is one of the post-1988 policies.
func KindModern(k Kind) bool { return k == DT || k == FB || k == BSHARE }

// KindSharesPool reports whether k's storage may span all input ports of
// a switch as one shared group (NewSharedGroup). True for every
// dynamically pooled kind; the statically partitioned SAMQ/SAFC and the
// single-queue FIFO pre-commit their layout per port by definition.
func KindSharesPool(k Kind) bool {
	return k == DAMQ || k == DAFC || KindModern(k)
}

// KindUsesClock reports whether k's admission policy reads packet ages,
// requiring the owning switch to tick its buffers each long cycle.
func KindUsesClock(k Kind) bool { return k == BSHARE }

// ParseKind converts a name like "damq" (any case) to its Kind. Its
// error lists every valid name and wraps cfgerr.ErrBadKind so CLIs can
// classify it without string matching.
func ParseKind(s string) (Kind, error) {
	if i := names.Index(s, kindNames[:]); i >= 0 {
		return Kind(i), nil
	}
	return 0, fmt.Errorf("buffer: unknown kind %q (want %s): %w",
		s, names.List(kindNames[:]), cfgerr.ErrBadKind)
}

// ParseSpec parses a buffer spec of the form "kind" or
// "kind:key=value,key=value", returning a Config with Kind and Sharing
// set (the caller supplies geometry). Keys tune the modern admission
// policies:
//
//	alpha=F    threshold multiplier for DT/FB/BSHARE (float, > 0)
//	classes=N  priority class count for FB (int, >= 1)
//	delay=N    head-of-line delay target in cycles for BSHARE (int, >= 1)
//
// Examples: "damq", "dt:alpha=2", "fb:classes=4,alpha=1.5",
// "bshare:delay=32". Errors wrap cfgerr.ErrBadKind or
// cfgerr.ErrBadSharing.
func ParseSpec(s string) (Config, error) {
	name, params, hasParams := strings.Cut(s, ":")
	k, err := ParseKind(name)
	if err != nil {
		return Config{}, err
	}
	cfg := Config{Kind: k}
	if !hasParams {
		return cfg, nil
	}
	for _, kv := range strings.Split(params, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Config{}, fmt.Errorf("buffer: spec parameter %q is not key=value: %w",
				kv, cfgerr.ErrBadSharing)
		}
		switch {
		case names.Equal(key, "alpha"):
			a, err := strconv.ParseFloat(val, 64)
			// !(a > 0) rather than a <= 0: it also rejects NaN, which
			// compares false both ways and would otherwise slip through
			// into the threshold arithmetic.
			if err != nil || !(a > 0) || math.IsInf(a, 0) {
				return Config{}, fmt.Errorf("buffer: alpha %q must be a positive finite number: %w",
					val, cfgerr.ErrBadSharing)
			}
			cfg.Sharing.Alpha = a
		case names.Equal(key, "classes"):
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Config{}, fmt.Errorf("buffer: classes %q must be a positive integer: %w",
					val, cfgerr.ErrBadSharing)
			}
			cfg.Sharing.Classes = n
		case names.Equal(key, "delay"):
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 1 {
				return Config{}, fmt.Errorf("buffer: delay %q must be a positive integer: %w",
					val, cfgerr.ErrBadSharing)
			}
			cfg.Sharing.DelayTarget = n
		default:
			return Config{}, fmt.Errorf("buffer: unknown spec parameter %q (want alpha|classes|delay): %w",
				key, cfgerr.ErrBadSharing)
		}
	}
	if err := cfg.validateSharing(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// Buffer is the long-clock behavioural contract shared by all
// organizations. A Buffer belongs to one input port of a switch; packets
// stored in it have already been routed (Packet.OutPort names the local
// output port the packet wants).
//
// Head/Pop semantics encode each design's read restrictions: Head(out)
// is the packet the buffer could deliver to output out this cycle, or nil.
// For multi-queue buffers that is the head of the per-output queue; for a
// FIFO it is the single head packet, and only for that packet's own
// destination — head-of-line blocking falls out of this definition.
// MaxReadsPerCycle is 1 for single-read-port designs (FIFO, SAMQ, DAMQ,
// and the modern policies) and NumOutputs for SAFC/DAFC; the crossbar
// arbiter enforces it.
type Buffer interface {
	// Kind reports the buffer organization.
	Kind() Kind
	// NumOutputs is the number of output ports packets may be routed to.
	NumOutputs() int
	// Capacity is this port's nominal storage in slots. Under a shared
	// pool it is the port's share of the group, not the group total.
	Capacity() int
	// Free is the number of slots available to a new packet addressed to
	// any output for dynamic designs; for static designs it is the total
	// free count across queues (use CanAccept for admission decisions).
	// Under a shared pool it reports the group-wide free count.
	Free() int
	// Len is the number of packets currently buffered at this port.
	// Implementations keep it O(1): network simulators read it on hot
	// paths.
	Len() int
	// Empty reports whether the buffer holds no packets, in O(1). It is
	// the emptiness hook the active-set network simulator polls.
	Empty() bool
	// CanAccept reports whether p (with OutPort set) fits right now — the
	// admission policy's decision.
	CanAccept(p *packet.Packet) bool
	// Accept stores p. It returns an error if CanAccept(p) is false or
	// p.OutPort is out of range.
	Accept(p *packet.Packet) error
	// QueueLen is the length, in packets, of the queue that would serve
	// output out. For a FIFO it is the whole queue length if the head
	// packet wants out, else 0.
	QueueLen(out int) int
	// Head returns the packet deliverable to out this cycle, or nil.
	Head(out int) *packet.Packet
	// Pop removes and returns Head(out); nil if there is none.
	Pop(out int) *packet.Packet
	// MaxReadsPerCycle is how many packets may leave per long cycle.
	MaxReadsPerCycle() int
	// Reset discards all contents — for shared-pool views, the whole
	// group's contents (reset every view; sw.Switch.Reset does).
	Reset()
}

// Ticker is implemented by buffers whose admission policy reads packet
// ages (KindUsesClock). The owning switch calls Tick once per buffer per
// long cycle; shared-pool views coordinate so the group clock still
// advances exactly once per cycle.
type Ticker interface {
	Tick()
}

// ErrFull is wrapped by Accept when the packet does not fit.
var ErrFull = errors.New("buffer full")

// ErrBadPort is wrapped by Accept when OutPort is out of range.
var ErrBadPort = errors.New("output port out of range")

// Sharing tunes the modern admission policies. The zero value means
// "kind defaults"; fields are only legal for kinds whose policy reads
// them (Validate enforces this, so a config cannot silently carry knobs
// that do nothing).
type Sharing struct {
	// Alpha is the threshold multiplier for DT, FB, and BSHARE.
	// 0 means the default 1.0.
	Alpha float64
	// Classes is FB's priority class count. 0 means the default 2.
	Classes int
	// DelayTarget is BSHARE's head-of-line delay target in cycles
	// (pool ticks). 0 means the default 16.
	DelayTarget int64
}

const (
	defaultAlpha       = 1.0
	defaultClasses     = 2
	defaultDelayTarget = 16
)

func (s Sharing) alpha() float64 {
	if s.Alpha > 0 {
		return s.Alpha
	}
	return defaultAlpha
}

func (s Sharing) classes() int {
	if s.Classes > 0 {
		return s.Classes
	}
	return defaultClasses
}

func (s Sharing) delayTarget() int64 {
	if s.DelayTarget > 0 {
		return s.DelayTarget
	}
	return defaultDelayTarget
}

// Config describes a buffer to construct.
type Config struct {
	Kind       Kind
	NumOutputs int // n of the n x n switch
	Capacity   int // total slots at this input port
	// Sharing tunes DT/FB/BSHARE; leave zero for the 1988 kinds.
	Sharing Sharing
}

// validateSharing checks the policy-tuning knobs against the kind,
// independent of geometry (ParseSpec calls it before NumOutputs and
// Capacity are known).
func (cfg Config) validateSharing() error {
	s := cfg.Sharing
	if s.Alpha < 0 || math.IsNaN(s.Alpha) || math.IsInf(s.Alpha, 0) {
		return fmt.Errorf("buffer: alpha must be positive and finite, got %g: %w", s.Alpha, cfgerr.ErrBadSharing)
	}
	if s.Classes < 0 {
		return fmt.Errorf("buffer: classes must be positive, got %d: %w", s.Classes, cfgerr.ErrBadSharing)
	}
	if s.DelayTarget < 0 {
		return fmt.Errorf("buffer: delay target must be positive, got %d: %w", s.DelayTarget, cfgerr.ErrBadSharing)
	}
	if s.Alpha != 0 && !KindModern(cfg.Kind) {
		return fmt.Errorf("buffer: alpha is only read by dt|fb|bshare, not %v (policy %s): %w",
			cfg.Kind, cfg.Kind.PolicyName(), cfgerr.ErrBadSharing)
	}
	if s.Classes != 0 && cfg.Kind != FB {
		return fmt.Errorf("buffer: classes is only read by fb, not %v (policy %s): %w",
			cfg.Kind, cfg.Kind.PolicyName(), cfgerr.ErrBadSharing)
	}
	if s.DelayTarget != 0 && cfg.Kind != BSHARE {
		return fmt.Errorf("buffer: delay target is only read by bshare, not %v (policy %s): %w",
			cfg.Kind, cfg.Kind.PolicyName(), cfgerr.ErrBadSharing)
	}
	return nil
}

// Validate checks the config without constructing anything. Errors wrap
// the cfgerr sentinels (ErrBadPorts, ErrBadCapacity, ErrBadKind,
// ErrBadSharing); the same convention holds for sw.Config,
// netsim.Config, and comcobb.Config.
func (cfg Config) Validate() error {
	if cfg.Kind < FIFO || int(cfg.Kind) >= len(kindNames) {
		return fmt.Errorf("buffer: unknown kind %v: %w", cfg.Kind, cfgerr.ErrBadKind)
	}
	if cfg.NumOutputs <= 0 {
		return fmt.Errorf("buffer: NumOutputs must be positive, got %d: %w", cfg.NumOutputs, cfgerr.ErrBadPorts)
	}
	if cfg.Capacity <= 0 {
		return fmt.Errorf("buffer: Capacity must be positive, got %d: %w", cfg.Capacity, cfgerr.ErrBadCapacity)
	}
	if err := cfg.validateSharing(); err != nil {
		return err
	}
	// Static partitions must divide evenly, or some queue (or class)
	// would own a fraction of a slot: SAMQ/SAFC partition across outputs,
	// FB's reserved quotas partition across priority classes.
	if (cfg.Kind == SAMQ || cfg.Kind == SAFC) && cfg.Capacity%cfg.NumOutputs != 0 {
		return fmt.Errorf("buffer: %v (policy %s) capacity %d not divisible by %d outputs: %w",
			cfg.Kind, cfg.Kind.PolicyName(), cfg.Capacity, cfg.NumOutputs, cfgerr.ErrBadCapacity)
	}
	if cfg.Kind == FB {
		classes := cfg.Sharing.classes()
		if classes > cfg.Capacity {
			return fmt.Errorf("buffer: FB (policy %s) wants %d classes in %d slots: %w",
				cfg.Kind.PolicyName(), classes, cfg.Capacity, cfgerr.ErrBadSharing)
		}
		if cfg.Capacity%classes != 0 {
			return fmt.Errorf("buffer: %v (policy %s) capacity %d not divisible by %d classes: %w",
				cfg.Kind, cfg.Kind.PolicyName(), cfg.Capacity, classes, cfgerr.ErrBadCapacity)
		}
	}
	return nil
}

// New constructs a per-port buffer: one storage group owned by one view.
// SAMQ and SAFC statically partition Capacity across NumOutputs queues,
// so Capacity must be a positive multiple of NumOutputs (the paper:
// "they can only have an even number of slots"); FB likewise partitions
// its reserved quotas across classes. FIFO, DAMQ, DT, and BSHARE accept
// any positive capacity. For one group spanning a whole switch, use
// NewSharedGroup.
func New(cfg Config) (Buffer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	switch cfg.Kind {
	case FIFO:
		return newFIFO(cfg.NumOutputs, cfg.Capacity), nil
	case SAMQ, SAFC:
		return newStatic(cfg.Kind, cfg.NumOutputs, cfg.Capacity), nil
	case DAMQ, DAFC, DT, FB, BSHARE:
		pol, classes, clocked := buildPolicy(cfg, cfg.Capacity)
		return newPoolBuffer(cfg.Kind, cfg.NumOutputs, cfg.Capacity,
			kindReads(cfg.Kind, cfg.NumOutputs), pol, classes, clocked,
			KindModern(cfg.Kind), kindPrefix(cfg.Kind)), nil
	default:
		return nil, fmt.Errorf("buffer: unknown kind %v: %w", cfg.Kind, cfgerr.ErrBadKind)
	}
}

// MustNew is New for tests and examples with known-good configs.
func MustNew(cfg Config) Buffer {
	b, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return b
}
