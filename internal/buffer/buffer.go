// Package buffer implements the four input-port buffer organizations
// compared in Tamir & Frazier (1988) under the long-clock packet model:
//
//   - FIFO: a single first-in-first-out queue over a shared slot pool.
//   - SAMQ: statically allocated multi-queue — one FIFO queue per output
//     port, each with a fixed share of the slots, all in one RAM with a
//     single read port.
//   - SAFC: statically allocated fully connected — like SAMQ but each
//     queue has its own RAM, so every queue of the buffer can be read in
//     the same cycle.
//   - DAMQ: dynamically allocated multi-queue — one FIFO queue per output
//     port threaded through a shared slot pool with hardware linked lists
//     (the paper's contribution).
//
// All four expose the same Buffer interface so the switch and network
// simulators are parameterized only by buffer kind. Storage is counted in
// slots; fixed-length experiments use one slot per packet, the
// variable-length extension uses several.
package buffer

import (
	"errors"
	"fmt"

	"damq/internal/cfgerr"
	"damq/internal/packet"
)

// Kind identifies one of the paper's four buffer organizations.
type Kind int

const (
	FIFO Kind = iota
	SAMQ
	SAFC
	DAMQ
	// DAFC (dynamically allocated, fully connected) is not one of the
	// paper's four designs but the fourth corner of its design space:
	// DAMQ's shared slot pool combined with SAFC's one-read-port-per-queue
	// connectivity. It exists to quantify the paper's observation that
	// "the additional throughput provided by fully connecting the inputs
	// with the outputs does not provide a significant boost" — see the
	// connectivity ablation in internal/experiments.
	DAFC
)

var kindNames = [...]string{"FIFO", "SAMQ", "SAFC", "DAMQ", "DAFC"}

// String returns the paper's name for the buffer kind.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Kinds lists the paper's four buffer kinds in its comparison order.
// The DAFC ablation variant is excluded; use AllKinds to include it.
func Kinds() []Kind { return []Kind{FIFO, SAMQ, SAFC, DAMQ} }

// AllKinds lists every constructible kind, including the DAFC ablation.
func AllKinds() []Kind { return []Kind{FIFO, SAMQ, SAFC, DAMQ, DAFC} }

// ParseKind converts a name like "damq" (any case) to its Kind. Its
// error lists every valid name and wraps cfgerr.ErrBadKind so CLIs can
// classify it without string matching.
func ParseKind(s string) (Kind, error) {
	for i, n := range kindNames {
		if equalFold(s, n) {
			return Kind(i), nil
		}
	}
	valid := ""
	for i, n := range kindNames {
		if i > 0 {
			valid += "|"
		}
		for j := 0; j < len(n); j++ {
			valid += string(n[j] | 0x20)
		}
	}
	return 0, fmt.Errorf("buffer: unknown kind %q (want %s): %w", s, valid, cfgerr.ErrBadKind)
}

// equalFold is a tiny ASCII-only case-insensitive comparison, avoiding a
// strings import for one call site.
func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// Buffer is the long-clock behavioural contract shared by all four
// organizations. A Buffer belongs to one input port of a switch; packets
// stored in it have already been routed (Packet.OutPort names the local
// output port the packet wants).
//
// Head/Pop semantics encode each design's read restrictions: Head(out)
// is the packet the buffer could deliver to output out this cycle, or nil.
// For multi-queue buffers that is the head of the per-output queue; for a
// FIFO it is the single head packet, and only for that packet's own
// destination — head-of-line blocking falls out of this definition.
// MaxReadsPerCycle is 1 for single-read-port designs (FIFO, SAMQ, DAMQ)
// and NumOutputs for SAFC; the crossbar arbiter enforces it.
type Buffer interface {
	// Kind reports the buffer organization.
	Kind() Kind
	// NumOutputs is the number of output ports packets may be routed to.
	NumOutputs() int
	// Capacity is total storage in slots.
	Capacity() int
	// Free is the number of slots available to a new packet addressed to
	// any output for dynamic designs; for static designs it is the total
	// free count across queues (use CanAccept for admission decisions).
	Free() int
	// Len is the number of packets currently buffered. Implementations
	// keep it O(1): network simulators read it on hot paths.
	Len() int
	// Empty reports whether the buffer holds no packets, in O(1). It is
	// the emptiness hook the active-set network simulator polls.
	Empty() bool
	// CanAccept reports whether p (with OutPort set) fits right now.
	CanAccept(p *packet.Packet) bool
	// Accept stores p. It returns an error if CanAccept(p) is false or
	// p.OutPort is out of range.
	Accept(p *packet.Packet) error
	// QueueLen is the length, in packets, of the queue that would serve
	// output out. For a FIFO it is the whole queue length if the head
	// packet wants out, else 0.
	QueueLen(out int) int
	// Head returns the packet deliverable to out this cycle, or nil.
	Head(out int) *packet.Packet
	// Pop removes and returns Head(out); nil if there is none.
	Pop(out int) *packet.Packet
	// MaxReadsPerCycle is how many packets may leave per long cycle.
	MaxReadsPerCycle() int
	// Reset discards all contents.
	Reset()
}

// ErrFull is wrapped by Accept when the packet does not fit.
var ErrFull = errors.New("buffer full")

// ErrBadPort is wrapped by Accept when OutPort is out of range.
var ErrBadPort = errors.New("output port out of range")

// Config describes a buffer to construct.
type Config struct {
	Kind       Kind
	NumOutputs int // n of the n x n switch
	Capacity   int // total slots at this input port
}

// Validate checks the config without constructing anything. Errors wrap
// the cfgerr sentinels (ErrBadPorts, ErrBadCapacity, ErrBadKind); the
// same convention holds for sw.Config, netsim.Config, and
// comcobb.Config.
func (cfg Config) Validate() error {
	if cfg.Kind < FIFO || int(cfg.Kind) >= len(kindNames) {
		return fmt.Errorf("buffer: unknown kind %v: %w", cfg.Kind, cfgerr.ErrBadKind)
	}
	if cfg.NumOutputs <= 0 {
		return fmt.Errorf("buffer: NumOutputs must be positive, got %d: %w", cfg.NumOutputs, cfgerr.ErrBadPorts)
	}
	if cfg.Capacity <= 0 {
		return fmt.Errorf("buffer: Capacity must be positive, got %d: %w", cfg.Capacity, cfgerr.ErrBadCapacity)
	}
	if (cfg.Kind == SAMQ || cfg.Kind == SAFC) && cfg.Capacity%cfg.NumOutputs != 0 {
		return fmt.Errorf("buffer: %v capacity %d not divisible by %d outputs: %w",
			cfg.Kind, cfg.Capacity, cfg.NumOutputs, cfgerr.ErrBadCapacity)
	}
	return nil
}

// New constructs a buffer. SAMQ and SAFC statically partition Capacity
// across NumOutputs queues, so Capacity must be a positive multiple of
// NumOutputs (the paper: "they can only have an even number of slots");
// FIFO and DAMQ accept any positive capacity.
func New(cfg Config) (Buffer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	switch cfg.Kind {
	case FIFO:
		return newFIFO(cfg.NumOutputs, cfg.Capacity), nil
	case SAMQ, SAFC:
		return newStatic(cfg.Kind, cfg.NumOutputs, cfg.Capacity), nil
	case DAMQ:
		return NewDAMQ(cfg.NumOutputs, cfg.Capacity), nil
	case DAFC:
		return &dafc{DAMQBuffer: NewDAMQ(cfg.NumOutputs, cfg.Capacity)}, nil
	default:
		return nil, fmt.Errorf("buffer: unknown kind %v: %w", cfg.Kind, cfgerr.ErrBadKind)
	}
}

// MustNew is New for tests and examples with known-good configs.
func MustNew(cfg Config) Buffer {
	b, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return b
}
