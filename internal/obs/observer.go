package obs

import (
	"encoding/json"
	"fmt"
)

// IntervalRecord is one point of the optional per-interval time series.
// All fields are cumulative totals as of Cycle; consumers difference
// adjacent records to recover per-interval rates (throughput, mean
// latency), which is how Figure-3-style curves are regenerated from a
// single instrumented run.
type IntervalRecord struct {
	Cycle        int64 `json:"cycle"`
	Generated    int64 `json:"generated"`
	Injected     int64 `json:"injected"`
	Delivered    int64 `json:"delivered"`
	Discarded    int64 `json:"discarded"`
	InFlight     int64 `json:"in_flight"`
	Backlog      int64 `json:"backlog"`
	LatencySum   int64 `json:"latency_sum"`
	LatencyCount int64 `json:"latency_count"`
}

// Observer owns a registry and an optional time series. One observer
// instruments one simulation; attach it via damq.WithObserver (facade)
// or the subsystem SetObserver/SetMetrics hooks (internal).
type Observer struct {
	reg      *Registry
	interval int64
	series   []IntervalRecord
}

// NewObserver returns an observer with an empty registry and the time
// series disabled.
func NewObserver() *Observer {
	return &Observer{reg: NewRegistry()}
}

// Registry exposes the observer's instrument registry.
func (o *Observer) Registry() *Registry { return o.reg }

// SetInterval enables the time series: instrumented simulators append
// an IntervalRecord every n measured cycles. n <= 0 disables it.
func (o *Observer) SetInterval(n int64) {
	if n < 0 {
		n = 0
	}
	o.interval = n
}

// Interval returns the configured sampling interval (0 = disabled).
func (o *Observer) Interval() int64 { return o.interval }

// RecordInterval appends one time-series point. Amortized append; only
// called every Interval cycles, never on the per-cycle hot path when
// the series is disabled.
func (o *Observer) RecordInterval(rec IntervalRecord) {
	o.series = append(o.series, rec)
}

// Series returns the recorded time series (nil when disabled).
func (o *Observer) Series() []IntervalRecord { return o.series }

// HistogramSnapshot is the exported form of a Histogram. Buckets are
// trimmed of trailing zeros so sparse wide histograms (e.g. 4096-bucket
// latency) stay compact in JSON; Total and Sum are preserved exactly,
// and Total always equals trimmed-bucket sum plus Overflow.
type HistogramSnapshot struct {
	Width    int64   `json:"width"`
	Buckets  []int64 `json:"buckets"`
	Overflow int64   `json:"overflow"`
	Total    int64   `json:"total"`
	Sum      int64   `json:"sum"`
}

// Mean returns the sample mean of the snapshotted histogram.
func (h HistogramSnapshot) Mean() float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Total)
}

// Snapshot is the stable JSON export shape: name-keyed instrument maps
// (keys sort on marshal, so deterministic runs produce byte-identical
// snapshots) plus the optional time series.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Series     []IntervalRecord             `json:"series,omitempty"`
}

// Snapshot captures every registered instrument and the time series.
func (o *Observer) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   make(map[string]int64, len(o.reg.counters)),
		Gauges:     make(map[string]int64, len(o.reg.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(o.reg.hists)),
	}
	for name, c := range o.reg.counters {
		s.Counters[name] = c.v
	}
	for name, g := range o.reg.gauges {
		s.Gauges[name] = g.v
	}
	for name, h := range o.reg.hists {
		n := len(h.buckets)
		for n > 0 && h.buckets[n-1] == 0 {
			n--
		}
		buckets := make([]int64, n)
		copy(buckets, h.buckets[:n])
		s.Histograms[name] = HistogramSnapshot{
			Width:    h.width,
			Buckets:  buckets,
			Overflow: h.overflow,
			Total:    h.total,
			Sum:      h.sum,
		}
	}
	if len(o.series) > 0 {
		s.Series = append([]IntervalRecord(nil), o.series...)
	}
	return s
}

// Counter looks up an exported counter by name.
func (s *Snapshot) Counter(name string) (int64, bool) {
	v, ok := s.Counters[name]
	return v, ok
}

// Gauge looks up an exported gauge by name.
func (s *Snapshot) Gauge(name string) (int64, bool) {
	v, ok := s.Gauges[name]
	return v, ok
}

// Histogram looks up an exported histogram by name.
func (s *Snapshot) Histogram(name string) (HistogramSnapshot, bool) {
	h, ok := s.Histograms[name]
	return h, ok
}

// Encode marshals the snapshot as indented JSON with a trailing
// newline — the exact bytes the CLIs write for -metrics and the golden
// test pins.
func (s *Snapshot) Encode() ([]byte, error) {
	raw, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("obs: encode snapshot: %w", err)
	}
	return append(raw, '\n'), nil
}

// DecodeSnapshot parses a snapshot produced by Encode.
func DecodeSnapshot(raw []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("obs: decode snapshot: %w", err)
	}
	return &s, nil
}

// RestoreSeries replaces the recorded interval series with a previously
// captured one, for checkpoint restore: the resumed run appends to the
// restored prefix so the final snapshot's time series is identical to an
// uninterrupted run's.
func (o *Observer) RestoreSeries(recs []IntervalRecord) {
	o.series = append(o.series[:0], recs...)
}
