// Package obs is the simulator's observability layer: a small registry
// of integer counters, gauges, and fixed-bucket histograms, plus an
// Observer that snapshots them to a stable JSON shape.
//
// The design contract, policed by cmd/damqvet's zeroalloc rule, is
// "zero cost when off, allocation-free when on":
//
//   - Instruments are plain int64 cells allocated once at registration
//     time. Inc/Add/Set/Observe never allocate, never format, and never
//     take locks, so they are safe inside // damqvet:hotpath bodies.
//   - Simulation code holds *Counter/*Gauge/*Histogram (or a struct of
//     them whose type name contains "Metrics") and guards every probe
//     with `if m != nil { ... }`. With no observer attached the pointer
//     is nil and the probe is a predicted-not-taken branch; results are
//     bit-identical because instruments consume no RNG.
//   - Registration (Registry.Counter and friends) is cold: it may
//     allocate and is meant for constructors, never for per-cycle code.
//
// Snapshots marshal counters/gauges/histograms as name-keyed JSON
// objects; encoding/json sorts map keys, so a snapshot of a
// deterministic run is byte-stable and can be golden-tested.
package obs

import (
	"fmt"
	"sort"
)

// Counter is a monotonically increasing integer instrument.
type Counter struct{ v int64 }

// Inc adds one.
//
// damqvet:hotpath
func (c *Counter) Inc() { c.v++ }

// Add adds d (d may be negative only for corrections; prefer Gauge for
// values that move both ways).
//
// damqvet:hotpath
func (c *Counter) Add(d int64) { c.v += d }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is an instantaneous integer level (occupancy, backlog).
type Gauge struct{ v int64 }

// Set overwrites the level.
//
// damqvet:hotpath
func (g *Gauge) Set(v int64) { g.v = v }

// Add moves the level by d.
//
// damqvet:hotpath
func (g *Gauge) Add(d int64) { g.v += d }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v }

// Histogram is a fixed-width integer bucket histogram. Values land in
// bucket v/width; values past the last bucket are counted in Overflow
// so Total always equals the number of Observe calls. Buckets are
// allocated once at registration; Observe is allocation-free.
type Histogram struct {
	width    int64
	buckets  []int64
	overflow int64
	total    int64
	sum      int64
}

// Observe records one sample. Negative samples clamp to zero (they
// indicate a caller bug but must not corrupt bucket indexing).
//
// damqvet:hotpath
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.total++
	h.sum += v
	b := v / h.width
	if b >= int64(len(h.buckets)) {
		h.overflow++
		return
	}
	h.buckets[b]++
}

// Total returns the number of samples observed.
func (h *Histogram) Total() int64 { return h.total }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the sample mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Width returns the bucket width.
func (h *Histogram) Width() int64 { return h.width }

// Registry is a get-or-create collection of named instruments. It is
// cold-path by design: constructors register instruments once and keep
// the returned pointers; per-cycle code touches only those pointers.
// A Registry is not safe for concurrent use — each simulation owns its
// own observer, mirroring the one-RNG-per-sim determinism rule.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket count and width on first use. Re-registering a
// name with a different shape is a programmer error and panics: two
// subsystems silently sharing mismatched buckets would corrupt both.
func (r *Registry) Histogram(name string, buckets int, width int64) *Histogram {
	if buckets <= 0 || width <= 0 {
		panic(fmt.Sprintf("obs: histogram %q needs positive buckets and width (got %d, %d)", name, buckets, width))
	}
	if h, ok := r.hists[name]; ok {
		if len(h.buckets) != buckets || h.width != width {
			panic(fmt.Sprintf("obs: histogram %q re-registered with shape %dx%d (have %dx%d)",
				name, buckets, width, len(h.buckets), h.width))
		}
		return h
	}
	h := &Histogram{width: width, buckets: make([]int64, buckets)}
	r.hists[name] = h
	return h
}

// Set overwrites the count, for checkpoint restore.
func (c *Counter) Set(v int64) { c.v = v }

// Buckets returns a copy of the bucket counts (excluding overflow).
func (h *Histogram) Buckets() []int64 { return append([]int64(nil), h.buckets...) }

// Overflow returns the overflow bucket count.
func (h *Histogram) Overflow() int64 { return h.overflow }

// Restore overwrites the histogram's contents with previously captured
// values, for checkpoint restore. The bucket count must match the
// registered shape, and the counts must be non-negative and sum (with
// overflow) to total — a stream that disagrees is corrupt.
func (h *Histogram) Restore(buckets []int64, overflow, total, sum int64) error {
	if len(buckets) != len(h.buckets) {
		return fmt.Errorf("obs: %d restored buckets for a %d-bucket histogram", len(buckets), len(h.buckets))
	}
	var n int64
	for _, c := range buckets {
		if c < 0 {
			return fmt.Errorf("obs: negative restored bucket count %d", c)
		}
		n += c
	}
	if overflow < 0 || n+overflow != total {
		return fmt.Errorf("obs: restored histogram total %d does not match bucket sum %d", total, n+overflow)
	}
	copy(h.buckets, buckets)
	h.overflow, h.total, h.sum = overflow, total, sum
	return nil
}

// CounterNames returns the registered counter names, sorted — the
// deterministic iteration order the checkpoint codec serializes in.
func (r *Registry) CounterNames() []string { return sortedKeys(r.counters) }

// GaugeNames returns the registered gauge names, sorted.
func (r *Registry) GaugeNames() []string { return sortedKeys(r.gauges) }

// HistogramNames returns the registered histogram names, sorted.
func (r *Registry) HistogramNames() []string { return sortedKeys(r.hists) }

// LookupHistogram returns the histogram registered under name without
// creating one: the restore path must never invent instruments (or
// shapes) the simulation did not register.
func (r *Registry) LookupHistogram(name string) (*Histogram, bool) {
	h, ok := r.hists[name]
	return h, ok
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
