package obs

import (
	"reflect"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Errorf("gauge = %d, want 4", g.Value())
	}
}

func TestHistogram(t *testing.T) {
	// Buckets [0,10) [10,20) [20,30) [30,40), overflow above.
	h := NewRegistry().Histogram("h", 4, 10)
	for _, v := range []int64{0, 9, 10, 35, 400, -5} {
		h.Observe(v)
	}
	if h.Total() != 6 {
		t.Errorf("total = %d, want 6", h.Total())
	}
	// The negative observation clamps to 0; sum counts clamped values.
	if h.Sum() != 0+9+10+35+400+0 {
		t.Errorf("sum = %d", h.Sum())
	}
	if got := h.buckets[0]; got != 3 { // 0, 9, clamped -5
		t.Errorf("bucket0 = %d, want 3", got)
	}
	if h.overflow != 1 {
		t.Errorf("overflow = %d, want 1", h.overflow)
	}
	if h.Mean() != float64(h.Sum())/6 {
		t.Errorf("mean = %v", h.Mean())
	}
}

func TestRegistryIdentityAndShapeChecks(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("same name must return the same counter")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("same name must return the same gauge")
	}
	if r.Histogram("h", 8, 2) != r.Histogram("h", 8, 2) {
		t.Error("same name+shape must return the same histogram")
	}
	mustPanic(t, "histogram shape mismatch", func() { r.Histogram("h", 8, 3) })
	mustPanic(t, "bad histogram shape", func() { r.Histogram("h2", 0, 1) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestSnapshotRoundTrip(t *testing.T) {
	o := NewObserver()
	r := o.Registry()
	r.Counter("c.one").Add(3)
	r.Gauge("g.level").Set(-2)
	h := r.Histogram("h.lat", 6, 5)
	h.Observe(0)
	h.Observe(12)
	h.Observe(999)
	o.SetInterval(10)
	o.RecordInterval(IntervalRecord{Cycle: 10, Delivered: 1})
	o.RecordInterval(IntervalRecord{Cycle: 20, Delivered: 4})

	s := o.Snapshot()
	if v, ok := s.Counter("c.one"); !ok || v != 3 {
		t.Errorf("counter = %d,%v", v, ok)
	}
	if v, ok := s.Gauge("g.level"); !ok || v != -2 {
		t.Errorf("gauge = %d,%v", v, ok)
	}
	hs, ok := s.Histogram("h.lat")
	if !ok || hs.Total != 3 || hs.Overflow != 1 || hs.Width != 5 {
		t.Fatalf("histogram snapshot = %+v,%v", hs, ok)
	}
	// Trailing zero buckets are trimmed: observations landed in buckets
	// 0 and 2, so exactly 3 buckets survive.
	if len(hs.Buckets) != 3 {
		t.Errorf("buckets = %v, want 3 entries", hs.Buckets)
	}
	var inBuckets int64
	for _, b := range hs.Buckets {
		inBuckets += b
	}
	if inBuckets+hs.Overflow != hs.Total {
		t.Errorf("bucket sum %d + overflow %d != total %d", inBuckets, hs.Overflow, hs.Total)
	}
	if len(s.Series) != 2 || s.Series[1].Delivered != 4 {
		t.Errorf("series = %+v", s.Series)
	}

	raw, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSnapshot(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Errorf("roundtrip mismatch:\n%+v\n%+v", s, back)
	}

	// Deterministic bytes: a second encode of an equal registry matches.
	raw2, err := o.Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(raw2) {
		t.Error("snapshot encoding is not byte-stable")
	}
}

func TestObserverIntervalClamp(t *testing.T) {
	o := NewObserver()
	o.SetInterval(-5)
	if o.Interval() != 0 {
		t.Errorf("interval = %d, want 0", o.Interval())
	}
	if o.Snapshot().Series != nil {
		t.Error("empty series must stay nil in snapshots")
	}
}
