package obs

import (
	"bytes"
	"testing"
)

// FuzzDecodeSnapshot feeds arbitrary bytes — broken JSON, valid JSON of
// the wrong shape, hostile numeric values — to the snapshot decoder.
// It must either return an error or a snapshot whose accessors and
// re-encode path are safe to use: no panics, and Encode∘Decode is a
// fixed point (the second decode reproduces the first snapshot's bytes).
func FuzzDecodeSnapshot(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"counters":{"a":1},"gauges":{"b":-2},"histograms":{}}`))
	f.Add([]byte(`{"histograms":{"h":{"width":0,"buckets":[1,2],"overflow":-1,"total":0,"sum":9}}}`))
	f.Add([]byte(`{"series":[{"cycle":1}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"counters":{"a":1e999}}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		s, err := DecodeSnapshot(raw)
		if err != nil {
			return
		}
		// Accessors tolerate any decoded shape, including nil maps and
		// zero-total histograms (Mean must not divide by zero).
		s.Counter("missing")
		s.Gauge("missing")
		s.Histogram("missing")
		for _, h := range s.Histograms {
			_ = h.Mean()
		}
		enc1, err := s.Encode()
		if err != nil {
			t.Fatalf("encode of decoded snapshot failed: %v", err)
		}
		s2, err := DecodeSnapshot(enc1)
		if err != nil {
			t.Fatalf("re-decode of encoded snapshot failed: %v\n%s", err, enc1)
		}
		enc2, err := s2.Encode()
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("Encode/Decode is not a fixed point:\nfirst:  %s\nsecond: %s", enc1, enc2)
		}
	})
}
