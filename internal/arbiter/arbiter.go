// Package arbiter implements the central crossbar arbiter of a switch,
// with the two arbitration policies the paper simulates (Section 4.2):
//
//   - Dumb: buffers are examined one at a time in round-robin priority
//     order; each cycle the priority pointer advances to the next buffer
//     regardless of whether the previous priority holder transmitted.
//   - Smart: the priority pointer advances only when the buffer that held
//     priority actually transmitted a packet — a turn is not "counted"
//     when every queue in the buffer was blocked. Additionally a stale
//     count per queue tracks how long a queue has held packets without
//     transmitting, and queue selection within a buffer prefers the
//     stalest queue (ties broken by longest queue), maintaining fairness
//     within the buffer.
//
// When examining a buffer the arbiter transmits from the longest eligible
// (non-blocked, output-still-free) queue. A buffer with a single read port
// (FIFO, SAMQ, DAMQ) gets at most one grant per cycle; an SAFC buffer may
// receive up to one grant per queue.
package arbiter

import (
	"fmt"

	"damq/internal/cfgerr"
	"damq/internal/names"
	"damq/internal/obs"
)

// Policy selects the fairness scheme.
type Policy int

const (
	// Dumb advances buffer priority round-robin unconditionally.
	Dumb Policy = iota
	// Smart advances priority only on successful transmission and applies
	// per-queue stale counts.
	Smart
)

// String names the policy as in the paper's tables.
func (p Policy) String() string {
	switch p {
	case Dumb:
		return "dumb"
	case Smart:
		return "smart"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// policyNames lists the policies in enum order for the shared parser.
var policyNames = [...]string{"dumb", "smart"}

// ParsePolicy converts "dumb" or "smart" (any case) to a Policy. The
// error wraps cfgerr.ErrBadPolicy.
func ParsePolicy(s string) (Policy, error) {
	if i := names.Index(s, policyNames[:]); i >= 0 {
		return Policy(i), nil
	}
	return 0, fmt.Errorf("arbiter: unknown policy %q (want %s): %w",
		s, names.List(policyNames[:]), cfgerr.ErrBadPolicy)
}

// View is what the arbiter can see of the switch each cycle: the state of
// every (input buffer, output queue) pair. Implementations are provided by
// the switch model. A queue with QueueLen > 0 is understood to have a
// deliverable head packet (FIFOs report 0 when the head is for a different
// output), so QueueLen doubles as the head-availability test.
type View interface {
	// Ports returns the number of input buffers and output ports.
	Ports() (inputs, outputs int)
	// InputLen is the total packet count buffered at input in, across all
	// of its queues. It must be O(1): the arbiter uses it to skip whole
	// input rows without touching their queues.
	InputLen(in int) int
	// QueueLen is the number of packets input in could eventually send to
	// out (0 when a FIFO's head is for a different output).
	QueueLen(in, out int) int
	// Blocked reports whether the head packet of (in, out) cannot be
	// forwarded because the downstream buffer refuses it. Only meaningful
	// when QueueLen > 0; under a discarding protocol it is always false.
	Blocked(in, out int) bool
	// MaxReads is the read-port limit of input in's buffer this cycle.
	MaxReads(in int) int
}

// Grant is one crossbar connection for the current cycle.
type Grant struct {
	In  int
	Out int
}

// Arbiter holds the priority pointer and stale counts across cycles.
type Arbiter struct {
	policy  Policy
	inputs  int
	outputs int
	prio    int
	stale   [][]int64 // [in][out] cycles the queue has waited with traffic

	// Per-cycle scratch, allocated once: Arbitrate runs for every switch
	// on every network cycle, so per-call slice allocations would dominate
	// the simulator's heap profile.
	outTaken []bool
	granted  []bool
	qlen     []int  // current input row's queue lengths
	sentRow  []bool // current input row's granted outputs

	// Observability probes (nil when no observer is attached). Every use
	// sits behind an `if x != nil` guard so the unobserved arbiter stays
	// branch-predictable, allocation-free, and bit-identical.
	mGrants    *obs.Counter // crossbar connections granted
	mConflicts *obs.Counter // occupied queues that lost because the output was taken
	mBlocked   *obs.Counter // queue heads refused by the downstream buffer
}

// New constructs an arbiter for a switch with the given port counts.
func New(policy Policy, inputs, outputs int) *Arbiter {
	if inputs <= 0 || outputs <= 0 {
		panic("arbiter: ports must be positive")
	}
	st := make([][]int64, inputs)
	for i := range st {
		st[i] = make([]int64, outputs)
	}
	return &Arbiter{
		policy: policy, inputs: inputs, outputs: outputs, stale: st,
		outTaken: make([]bool, outputs),
		granted:  make([]bool, inputs),
		qlen:     make([]int, outputs),
		sentRow:  make([]bool, outputs),
	}
}

// Policy returns the arbitration policy in use.
func (a *Arbiter) Policy() Policy { return a.policy }

// SetMetrics attaches (or, with nils, detaches) the grant/conflict/
// blocked-head counters. Cold path: call before simulation starts.
func (a *Arbiter) SetMetrics(grants, conflicts, blocked *obs.Counter) {
	a.mGrants = grants
	a.mConflicts = conflicts
	a.mBlocked = blocked
}

// AdvanceIdle fast-forwards the arbiter through cycles rounds in which
// every queue was empty, producing exactly the state Arbitrate would have
// left behind. An empty round mutates only the priority pointer: under
// Dumb it advances unconditionally, and under Smart an empty priority
// holder forfeits its turn (no grants, so the pointer falls through to the
// round-robin default); stale counts of empty queues are already zero and
// stay zero. Network simulators use this to skip arbitration of empty
// switches without perturbing later arbitration decisions.
// damqvet:hotpath
func (a *Arbiter) AdvanceIdle(cycles int64) {
	if cycles <= 0 {
		return
	}
	a.prio = int((int64(a.prio) + cycles) % int64(a.inputs))
}

// Stale exposes the stale counter of queue (in, out) for tests.
func (a *Arbiter) Stale(in, out int) int64 { return a.stale[in][out] }

// Reset clears priority and stale state.
func (a *Arbiter) Reset() {
	a.prio = 0
	for i := range a.stale {
		for j := range a.stale[i] {
			a.stale[i][j] = 0
		}
	}
}

// Arbitrate computes this cycle's crossbar matching. It appends grants to
// dst (pass nil to allocate) and returns the result; the order of grants
// follows the examination order, which tests rely on.
//
// The 2×2 single-read-port case — the building block of binary multistage
// networks — dispatches to a branchless fast path that computes the whole
// matching as boolean expressions; every other shape (or an arbiter with
// counters attached, which must count candidate rejections the boolean
// form never enumerates) takes the general scan. Both produce identical
// grants, priority movement, and stale counts; TestArbitrate2x2Equivalence
// pins that against the general path run on the same state.
// damqvet:hotpath
func (a *Arbiter) Arbitrate(v View, dst []Grant) []Grant {
	in, out := v.Ports()
	if in != a.inputs || out != a.outputs {
		panic(fmt.Sprintf("arbiter: view is %dx%d, arbiter is %dx%d", in, out, a.inputs, a.outputs))
	}
	if in == 2 && out == 2 &&
		a.mGrants == nil && a.mConflicts == nil && a.mBlocked == nil &&
		v.MaxReads(0) == 1 && v.MaxReads(1) == 1 {
		return a.arbitrate2x2(v, dst)
	}
	return a.arbitrateGeneral(v, dst)
}

// arbitrate2x2 is the fast path for a 2×2 switch whose buffers expose one
// read port: forwarding eligibility, conflict resolution, and priority
// movement reduce to pure boolean expressions over the four queue states,
// with no per-candidate loops — the style of hardware arbitration logic,
// one gate level per term. Row i0 (the priority holder) picks first; row
// i1 then sees i0's winning output as taken.
// damqvet:hotpath
func (a *Arbiter) arbitrate2x2(v View, dst []Grant) []Grant {
	i0 := a.prio
	i1 := i0 ^ 1
	len0 := v.InputLen(i0) > 0
	len1 := v.InputLen(i1) > 0

	var g0, g1, g0hi bool // row grants; g0hi = row i0 took output 1
	if len0 {
		p0, p1 := a.pick2(v, i0, false, false)
		g0 = p0 || p1
		g0hi = p1
		if g0 {
			dst = append(dst, Grant{In: i0, Out: b2i(p1)})
		}
	}
	if len1 {
		p0, p1 := a.pick2(v, i1, g0 && !g0hi, g0 && g0hi)
		g1 = p0 || p1
		if g1 {
			dst = append(dst, Grant{In: i1, Out: b2i(p1)})
		}
	}

	// Priority as one boolean term. Smart keeps the pointer on i0 when the
	// holder had traffic but sent nothing (blocked turns are not counted),
	// and lands on i0 after a round where only i1 transmitted (rotate past
	// the first server); every other case — any dumb round, a holder
	// grant, a completely idle round — moves it to i1.
	if a.policy == Smart && !g0 && (len0 || g1) {
		a.prio = i0
	} else {
		a.prio = i1
	}
	return dst
}

// pick2 computes one 2×2 row's winning output as boolean logic: e_o is
// the forward-eligibility of queue o (has traffic, output free, head not
// blocked downstream), beats is the policy's preference for output 1 over
// output 0 (stalest first under smart, then longest queue, ties to the
// lower output), and the one-hot pick follows. Stale counts transition
// exactly as the general row epilogue: waiting queues age, transmitting
// or empty queues reset.
// damqvet:hotpath
func (a *Arbiter) pick2(v View, i int, t0, t1 bool) (p0, p1 bool) {
	s := a.stale[i]
	q0 := v.QueueLen(i, 0)
	q1 := v.QueueLen(i, 1)
	e0 := !t0 && q0 > 0 && !v.Blocked(i, 0)
	e1 := !t1 && q1 > 0 && !v.Blocked(i, 1)
	smart := a.policy == Smart
	beats := (smart && s[1] > s[0]) || ((!smart || s[1] == s[0]) && q1 > q0)
	p1 = e1 && (!e0 || beats)
	p0 = e0 && !p1
	s[0] = staleNext(s[0], q0 > 0 && !p0)
	s[1] = staleNext(s[1], q1 > 0 && !p1)
	return p0, p1
}

// staleNext is the per-queue stale transition function.
// damqvet:hotpath
func staleNext(old int64, waiting bool) int64 {
	if waiting {
		return old + 1
	}
	return 0
}

// b2i maps a one-hot output-1 pick to its output index.
// damqvet:hotpath
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// arbitrateGeneral is the reference matching algorithm for every port
// count, read-port limit, and observed arbiter.
// damqvet:hotpath
func (a *Arbiter) arbitrateGeneral(v View, dst []Grant) []Grant {
	outTaken := a.outTaken
	granted := a.granted // whether the buffer transmitted at all
	for i := range outTaken {
		outTaken[i] = false
	}
	for i := range granted {
		granted[i] = false
	}
	firstGranted := -1 // first input served, in examination order
	qlen := a.qlen
	sentRow := a.sentRow

	for k := 0; k < a.inputs; k++ {
		i := (a.prio + k) % a.inputs
		if v.InputLen(i) == 0 {
			// An empty input can receive no grant, and its stale counts
			// are already zero (a queue only carries a nonzero stale
			// count while it holds traffic — any pop routes through a
			// grant, which resets the count), so the whole row is
			// skipped without touching its queues.
			continue
		}
		// Snapshot this row's queue lengths once. Arbitrate never pops,
		// so they cannot change mid-call; the snapshot replaces the
		// per-candidate HasHead/QueueLen view calls on the simulator's
		// hottest path.
		for o := 0; o < a.outputs; o++ {
			qlen[o] = v.QueueLen(i, o)
			sentRow[o] = false
		}
		stale := a.stale[i]
		reads := v.MaxReads(i)
		for r := 0; r < reads; r++ {
			best := -1
			// The three rejection tests keep the pre-observability
			// short-circuit order (taken output, empty queue, blocked head)
			// so the unobserved path performs the exact same view calls.
			for o := 0; o < a.outputs; o++ {
				if outTaken[o] {
					if a.mConflicts != nil {
						if qlen[o] > 0 {
							a.mConflicts.Inc()
						}
					}
					continue
				}
				if qlen[o] == 0 {
					continue
				}
				if v.Blocked(i, o) {
					if a.mBlocked != nil {
						a.mBlocked.Inc()
					}
					continue
				}
				if best == -1 || better(a.policy, stale, qlen, o, best) {
					best = o
				}
			}
			if best == -1 {
				break
			}
			outTaken[best] = true
			granted[i] = true
			sentRow[best] = true
			if firstGranted == -1 {
				firstGranted = i
			}
			dst = append(dst, Grant{In: i, Out: best})
			if a.mGrants != nil {
				a.mGrants.Inc()
			}
		}
		// Update this row's stale counts — final once its examination
		// ends, since later rows cannot grant to it: queues holding
		// traffic that did not transmit age by one; transmitting or
		// empty queues reset. (A queue that sent one of several waiting
		// packets still made progress, so it resets.)
		for o := 0; o < a.outputs; o++ {
			if qlen[o] > 0 && !sentRow[o] {
				stale[o]++
			} else {
				stale[o] = 0
			}
		}
	}

	// Advance the priority pointer.
	switch a.policy {
	case Dumb:
		a.prio = (a.prio + 1) % a.inputs
	case Smart:
		// The paper's rule: a priority holder whose packets were all
		// blocked keeps its turn ("does not count the times a buffer has
		// priority but still does not transmit"). That rule is only
		// about buffers that *held traffic*: an empty holder forfeits,
		// and the pointer rotates to just past the first buffer actually
		// served, so quiet inputs cannot pin the examination order and
		// starve later buffers.
		holderHadTraffic := v.InputLen(a.prio) > 0
		switch {
		case holderHadTraffic && !granted[a.prio]:
			// Blocked with traffic: turn not counted, priority retained.
		case firstGranted >= 0:
			a.prio = (firstGranted + 1) % a.inputs
		default:
			a.prio = (a.prio + 1) % a.inputs
		}
	}
	return dst
}

// better reports whether output o beats the incumbent best within one
// input row under the active policy's selection rule: stalest first
// (smart only), then longest queue, ties keeping the lowest output. It
// works on the row's snapshotted state so candidate comparison costs no
// interface calls.
// damqvet:hotpath
func better(policy Policy, stale []int64, qlen []int, o, best int) bool {
	if policy == Smart && stale[o] != stale[best] {
		return stale[o] > stale[best]
	}
	return qlen[o] > qlen[best]
}

// State is the arbiter's cross-cycle state — the round-robin priority
// pointer and the stale (age) counters — exposed for the simulator
// checkpoint codec. Everything else in an Arbiter is per-cycle scratch
// that Arbitrate rewrites before reading.
type State struct {
	Prio  int
	Stale []int64 // [in*outputs + out], row-major
}

// SaveState captures the cross-cycle state.
func (a *Arbiter) SaveState() State {
	st := State{Prio: a.prio, Stale: make([]int64, 0, a.inputs*a.outputs)}
	for _, row := range a.stale {
		st.Stale = append(st.Stale, row...)
	}
	return st
}

// LoadState overwrites the cross-cycle state with a previously saved
// one, validating its shape against the arbiter's port counts.
func (a *Arbiter) LoadState(st State) error {
	if st.Prio < 0 || st.Prio >= a.inputs {
		return fmt.Errorf("arbiter: priority %d out of range [0, %d)", st.Prio, a.inputs)
	}
	if len(st.Stale) != a.inputs*a.outputs {
		return fmt.Errorf("arbiter: %d stale counters for a %d×%d switch", len(st.Stale), a.inputs, a.outputs)
	}
	for _, v := range st.Stale {
		if v < 0 {
			return fmt.Errorf("arbiter: negative stale count %d", v)
		}
	}
	a.prio = st.Prio
	for i, row := range a.stale {
		copy(row, st.Stale[i*a.outputs:(i+1)*a.outputs])
	}
	return nil
}
