package arbiter

import (
	"reflect"
	"testing"

	"damq/internal/rng"
)

// clone2x2 builds an arbiter with the given cross-cycle state (priority
// pointer and stale counts) — the only state Arbitrate carries between
// cycles.
func clone2x2(policy Policy, prio int, stale [4]int64) *Arbiter {
	a := New(policy, 2, 2)
	a.prio = prio
	a.stale[0][0], a.stale[0][1] = stale[0], stale[1]
	a.stale[1][0], a.stale[1][1] = stale[2], stale[3]
	return a
}

// stateOf snapshots the cross-cycle state for comparison.
func stateOf(a *Arbiter) (int, [4]int64) {
	return a.prio, [4]int64{a.stale[0][0], a.stale[0][1], a.stale[1][0], a.stale[1][1]}
}

// TestArbitrate2x2Exhaustive proves the branchless 2×2 path equivalent to
// the general scan by brute force: every combination of queue lengths,
// blocked flags, priority position, and a spread of stale counts, under
// both policies. Grants (values and order), the next priority pointer,
// and every stale counter must match exactly.
func TestArbitrate2x2Exhaustive(t *testing.T) {
	qlens := []int{0, 1, 3}
	stales := []int64{0, 2}
	var cases int
	for _, policy := range []Policy{Dumb, Smart} {
		for prio := 0; prio < 2; prio++ {
			var q [4]int
			for _, q00 := range qlens {
				for _, q01 := range qlens {
					for _, q10 := range qlens {
						for _, q11 := range qlens {
							q = [4]int{q00, q01, q10, q11}
							for blk := 0; blk < 16; blk++ {
								var s [4]int64
								for _, s00 := range stales {
									for _, s11 := range stales {
										s = [4]int64{s00, 1, 0, s11}
										cases++
										fast := clone2x2(policy, prio, s)
										ref := clone2x2(policy, prio, s)
										v := newTableView(2, 2)
										for i := 0; i < 2; i++ {
											for o := 0; o < 2; o++ {
												v.set(i, o, q[2*i+o])
												v.block(i, o, blk&(1<<(2*i+o)) != 0)
											}
										}
										gotG := fast.arbitrate2x2(v, nil)
										wantG := ref.arbitrateGeneral(v, nil)
										if !reflect.DeepEqual(gotG, wantG) {
											t.Fatalf("%v prio=%d q=%v blk=%04b stale=%v: grants %v, general %v",
												policy, prio, q, blk, s, gotG, wantG)
										}
										gotP, gotS := stateOf(fast)
										wantP, wantS := stateOf(ref)
										if gotP != wantP || gotS != wantS {
											t.Fatalf("%v prio=%d q=%v blk=%04b stale=%v: state (%d,%v), general (%d,%v)",
												policy, prio, q, blk, s, gotP, gotS, wantP, wantS)
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	if cases < 10000 {
		t.Fatalf("exhaustive sweep covered only %d cases", cases)
	}
}

// TestArbitrate2x2Trajectory runs paired arbiters through thousands of
// random cycles, the fast one dispatched through the public Arbitrate
// (which must select the 2×2 path: no metrics, single read ports), the
// reference pinned to the general scan. State carried across cycles —
// priority rotation and stale aging — must never diverge.
func TestArbitrate2x2Trajectory(t *testing.T) {
	for _, policy := range []Policy{Dumb, Smart} {
		src := rng.New(42 + uint64(policy))
		fast := New(policy, 2, 2)
		ref := New(policy, 2, 2)
		v := newTableView(2, 2)
		for step := 0; step < 5000; step++ {
			for i := 0; i < 2; i++ {
				for o := 0; o < 2; o++ {
					v.set(i, o, int(src.Intn(4)))
					v.block(i, o, src.Intn(3) == 0)
				}
			}
			gotG := fast.Arbitrate(v, nil)
			wantG := ref.arbitrateGeneral(v, nil)
			if !reflect.DeepEqual(gotG, wantG) {
				t.Fatalf("%v step %d: grants %v, general %v", policy, step, gotG, wantG)
			}
			gotP, gotS := stateOf(fast)
			wantP, wantS := stateOf(ref)
			if gotP != wantP || gotS != wantS {
				t.Fatalf("%v step %d: state (%d,%v), general (%d,%v)", policy, step, gotP, gotS, wantP, wantS)
			}
		}
	}
}

// TestArbitrate2x2AllocFree pins the fast path's allocation budget: with
// scratch warmed, repeated arbitration allocates nothing.
func TestArbitrate2x2AllocFree(t *testing.T) {
	a := New(Smart, 2, 2)
	v := newTableView(2, 2)
	v.set(0, 0, 2)
	v.set(1, 1, 1)
	dst := make([]Grant, 0, 2)
	avg := testing.AllocsPerRun(1000, func() {
		dst = a.Arbitrate(v, dst[:0])
	})
	if avg != 0 {
		t.Fatalf("2x2 Arbitrate allocates %.3f allocs/op, want 0", avg)
	}
}
