package arbiter

import (
	"testing"
	"testing/quick"
)

// tableView is a scriptable View for tests.
type tableView struct {
	in, out  int
	queues   [][]int  // packets per (in,out)
	blocked  [][]bool // blocked per (in,out)
	maxReads []int
}

func newTableView(in, out int) *tableView {
	v := &tableView{in: in, out: out}
	v.queues = make([][]int, in)
	v.blocked = make([][]bool, in)
	v.maxReads = make([]int, in)
	for i := 0; i < in; i++ {
		v.queues[i] = make([]int, out)
		v.blocked[i] = make([]bool, out)
		v.maxReads[i] = 1
	}
	return v
}

func (v *tableView) Ports() (int, int)     { return v.in, v.out }
func (v *tableView) QueueLen(i, o int) int { return v.queues[i][o] }
func (v *tableView) InputLen(i int) int {
	total := 0
	for _, n := range v.queues[i] {
		total += n
	}
	return total
}
func (v *tableView) Blocked(i, o int) bool  { return v.blocked[i][o] }
func (v *tableView) MaxReads(i int) int     { return v.maxReads[i] }
func (v *tableView) set(i, o, n int)        { v.queues[i][o] = n }
func (v *tableView) block(i, o int, b bool) { v.blocked[i][o] = b }

func TestPolicyString(t *testing.T) {
	if Dumb.String() != "dumb" || Smart.String() != "smart" {
		t.Fatal("policy names wrong")
	}
	if Policy(7).String() != "Policy(7)" {
		t.Fatal("unknown policy name wrong")
	}
}

func TestParsePolicy(t *testing.T) {
	if p, err := ParsePolicy("smart"); err != nil || p != Smart {
		t.Fatal("parse smart failed")
	}
	if p, err := ParsePolicy("dumb"); err != nil || p != Dumb {
		t.Fatal("parse dumb failed")
	}
	if _, err := ParsePolicy("clever"); err == nil {
		t.Fatal("parse of bad policy succeeded")
	}
}

func TestLongestQueueWins(t *testing.T) {
	a := New(Dumb, 4, 4)
	v := newTableView(4, 4)
	v.set(0, 1, 2)
	v.set(0, 3, 5) // longest
	grants := a.Arbitrate(v, nil)
	if len(grants) != 1 || grants[0] != (Grant{In: 0, Out: 3}) {
		t.Fatalf("grants = %v", grants)
	}
}

func TestOneGrantPerOutput(t *testing.T) {
	a := New(Dumb, 4, 4)
	v := newTableView(4, 4)
	for i := 0; i < 4; i++ {
		v.set(i, 2, 1) // everyone wants output 2
	}
	grants := a.Arbitrate(v, nil)
	if len(grants) != 1 {
		t.Fatalf("output 2 granted %d times", len(grants))
	}
}

func TestOneGrantPerSingleReadBuffer(t *testing.T) {
	a := New(Dumb, 4, 4)
	v := newTableView(4, 4)
	v.set(0, 0, 1)
	v.set(0, 1, 1)
	v.set(0, 2, 1)
	grants := a.Arbitrate(v, nil)
	if len(grants) != 1 {
		t.Fatalf("single-read buffer got %d grants", len(grants))
	}
}

func TestSAFCMultiRead(t *testing.T) {
	a := New(Dumb, 4, 4)
	v := newTableView(4, 4)
	v.maxReads[0] = 4
	v.set(0, 0, 1)
	v.set(0, 1, 1)
	v.set(0, 2, 1)
	grants := a.Arbitrate(v, nil)
	if len(grants) != 3 {
		t.Fatalf("multi-read buffer got %d grants, want 3", len(grants))
	}
	outs := map[int]bool{}
	for _, g := range grants {
		if g.In != 0 || outs[g.Out] {
			t.Fatalf("bad grants %v", grants)
		}
		outs[g.Out] = true
	}
}

func TestBlockedQueueSkipped(t *testing.T) {
	a := New(Dumb, 2, 2)
	v := newTableView(2, 2)
	v.set(0, 0, 5)
	v.set(0, 1, 1)
	v.block(0, 0, true)
	grants := a.Arbitrate(v, nil)
	if len(grants) != 1 || grants[0].Out != 1 {
		t.Fatalf("grants = %v, want the unblocked queue", grants)
	}
}

func TestNothingEligible(t *testing.T) {
	a := New(Smart, 2, 2)
	v := newTableView(2, 2)
	v.set(0, 0, 3)
	v.block(0, 0, true)
	if grants := a.Arbitrate(v, nil); len(grants) != 0 {
		t.Fatalf("grants = %v, want none", grants)
	}
}

func TestDumbRoundRobinRotates(t *testing.T) {
	a := New(Dumb, 2, 2)
	v := newTableView(2, 2)
	// Both inputs always want output 0; dumb RR must alternate winners.
	v.set(0, 0, 1)
	v.set(1, 0, 1)
	winners := []int{}
	for c := 0; c < 4; c++ {
		g := a.Arbitrate(v, nil)
		if len(g) != 1 {
			t.Fatalf("cycle %d: %v", c, g)
		}
		winners = append(winners, g[0].In)
	}
	want := []int{0, 1, 0, 1}
	for i := range want {
		if winners[i] != want[i] {
			t.Fatalf("winners = %v, want %v", winners, want)
		}
	}
}

func TestSmartPriorityNotCountedWhenBlocked(t *testing.T) {
	// Input 0 has priority but is fully blocked; with smart arbitration it
	// must keep priority next cycle (its turn is not counted).
	a := New(Smart, 2, 2)
	v := newTableView(2, 2)
	v.set(0, 0, 1)
	v.block(0, 0, true)
	v.set(1, 1, 1)
	g := a.Arbitrate(v, nil)
	if len(g) != 1 || g[0].In != 1 {
		t.Fatalf("cycle 0 grants = %v", g)
	}
	// Unblock input 0: it should win output 0 immediately and input 1
	// should also win output 1 (different outputs).
	v.block(0, 0, false)
	g = a.Arbitrate(v, nil)
	if len(g) != 2 {
		t.Fatalf("cycle 1 grants = %v", g)
	}
	if g[0].In != 0 {
		t.Fatalf("input 0 did not retain priority: %v", g)
	}
}

func TestSmartEmptyHolderDoesNotRetainPriority(t *testing.T) {
	// Input 0 holds priority but is EMPTY: its turn is forfeited, not
	// retained — otherwise a quiet buffer would pin the priority pointer
	// and the next buffer in order would win every contested output
	// indefinitely (the starvation bug this test pins down).
	a := New(Smart, 3, 3)
	v := newTableView(3, 3)
	v.set(1, 0, 1)
	v.set(2, 0, 1)
	winners := map[int]int{}
	for c := 0; c < 40; c++ {
		g := a.Arbitrate(v, nil)
		if len(g) != 1 {
			t.Fatalf("cycle %d: %v", c, g)
		}
		winners[g[0].In]++
	}
	// Inputs 1 and 2 must share output 0 roughly evenly.
	if winners[1] < 15 || winners[2] < 15 {
		t.Fatalf("starvation through empty priority holder: %v", winners)
	}
}

func TestDumbPriorityAlwaysAdvances(t *testing.T) {
	a := New(Dumb, 2, 2)
	v := newTableView(2, 2)
	v.set(0, 0, 1)
	v.block(0, 0, true)
	a.Arbitrate(v, nil) // input 0 had priority, transmitted nothing
	// Priority must have moved to input 1 anyway: with both unblocked and
	// contending for output 0, input 1 now wins.
	v.block(0, 0, false)
	v.set(1, 0, 1)
	g := a.Arbitrate(v, nil)
	if len(g) != 1 || g[0].In != 1 {
		t.Fatalf("grants = %v, want input 1 to hold priority", g)
	}
}

func TestStaleCountPrefersStarvedQueue(t *testing.T) {
	a := New(Smart, 1, 2)
	v := newTableView(1, 2)
	// Queue for output 1 waits while output 1 is blocked; queue 0 keeps
	// transmitting. When output 1 unblocks, its higher stale count must
	// beat queue 0's greater length.
	v.set(0, 0, 5)
	v.set(0, 1, 1)
	v.block(0, 1, true)
	for c := 0; c < 3; c++ {
		g := a.Arbitrate(v, nil)
		if len(g) != 1 || g[0].Out != 0 {
			t.Fatalf("cycle %d: %v", c, g)
		}
	}
	if a.Stale(0, 1) != 3 {
		t.Fatalf("stale = %d, want 3", a.Stale(0, 1))
	}
	v.block(0, 1, false)
	g := a.Arbitrate(v, nil)
	if len(g) != 1 || g[0].Out != 1 {
		t.Fatalf("stale queue not preferred: %v", g)
	}
	if a.Stale(0, 1) != 0 {
		t.Fatalf("stale not reset after transmit: %d", a.Stale(0, 1))
	}
}

func TestDumbIgnoresStale(t *testing.T) {
	a := New(Dumb, 1, 2)
	v := newTableView(1, 2)
	v.set(0, 0, 5)
	v.set(0, 1, 1)
	v.block(0, 1, true)
	for c := 0; c < 3; c++ {
		a.Arbitrate(v, nil)
	}
	v.block(0, 1, false)
	g := a.Arbitrate(v, nil)
	// Dumb ignores stale counts: longest queue (output 0) still wins.
	if len(g) != 1 || g[0].Out != 0 {
		t.Fatalf("grants = %v, want longest queue", g)
	}
}

func TestReset(t *testing.T) {
	a := New(Smart, 2, 2)
	v := newTableView(2, 2)
	v.set(0, 0, 1)
	v.block(0, 0, true)
	a.Arbitrate(v, nil)
	if a.Stale(0, 0) == 0 {
		t.Fatal("stale should be nonzero before reset")
	}
	a.Reset()
	if a.Stale(0, 0) != 0 {
		t.Fatal("reset did not clear stale")
	}
}

func TestArbitratePanicsOnMismatchedView(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a := New(Dumb, 2, 2)
	a.Arbitrate(newTableView(3, 3), nil)
}

// TestMatchingValidityProperty: for random views, the matching is always
// valid (≤1 grant per output, ≤MaxReads per input, only eligible pairs)
// and maximal per the examination order (no eligible pair left when both
// sides are free).
func TestMatchingValidityProperty(t *testing.T) {
	f := func(queues [4][4]uint8, blocked [4][4]bool, smart bool, safc [4]bool) bool {
		policy := Dumb
		if smart {
			policy = Smart
		}
		a := New(policy, 4, 4)
		v := newTableView(4, 4)
		for i := 0; i < 4; i++ {
			if safc[i] {
				v.maxReads[i] = 4
			}
			for o := 0; o < 4; o++ {
				v.set(i, o, int(queues[i][o]%4))
				v.block(i, o, blocked[i][o])
			}
		}
		grants := a.Arbitrate(v, nil)
		outSeen := map[int]bool{}
		inCount := map[int]int{}
		for _, g := range grants {
			if outSeen[g.Out] {
				return false // output double-granted
			}
			outSeen[g.Out] = true
			inCount[g.In]++
			if inCount[g.In] > v.MaxReads(g.In) {
				return false // read-port violation
			}
			if v.queues[g.In][g.Out] == 0 || v.blocked[g.In][g.Out] {
				return false // ineligible grant
			}
		}
		// Maximality: no input with remaining read capacity has an
		// eligible queue for a free output.
		for i := 0; i < 4; i++ {
			if inCount[i] >= v.MaxReads(i) {
				continue
			}
			for o := 0; o < 4; o++ {
				if !outSeen[o] && v.queues[i][o] > 0 && !v.blocked[i][o] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkArbitrate4x4(b *testing.B) {
	a := New(Smart, 4, 4)
	v := newTableView(4, 4)
	for i := 0; i < 4; i++ {
		for o := 0; o < 4; o++ {
			v.set(i, o, (i+o)%3)
		}
	}
	var grants []Grant
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		grants = a.Arbitrate(v, grants[:0])
	}
}

// TestAdvanceIdleMatchesEmptyArbitration pins the contract the active-set
// network simulator depends on: AdvanceIdle(k) must leave the arbiter in
// exactly the state k Arbitrate calls against an empty view would, for
// both policies, so that skipping idle switches cannot perturb any later
// arbitration decision.
func TestAdvanceIdleMatchesEmptyArbitration(t *testing.T) {
	for _, policy := range []Policy{Dumb, Smart} {
		for _, k := range []int64{0, 1, 2, 3, 4, 5, 7, 8, 100, 101} {
			stepped := New(policy, 4, 4)
			jumped := New(policy, 4, 4)
			empty := newTableView(4, 4)
			for i := int64(0); i < k; i++ {
				if g := stepped.Arbitrate(empty, nil); len(g) != 0 {
					t.Fatalf("%v: empty view produced grants %v", policy, g)
				}
			}
			jumped.AdvanceIdle(k)

			// Same traffic must now yield the same grants from both.
			busy := newTableView(4, 4)
			busy.set(0, 1, 2)
			busy.set(1, 1, 1)
			busy.set(2, 3, 1)
			busy.set(3, 2, 4)
			gs := stepped.Arbitrate(busy, nil)
			gj := jumped.Arbitrate(busy, nil)
			if len(gs) != len(gj) {
				t.Fatalf("%v k=%d: grant counts differ: %v vs %v", policy, k, gs, gj)
			}
			for i := range gs {
				if gs[i] != gj[i] {
					t.Fatalf("%v k=%d: grants differ: %v vs %v", policy, k, gs, gj)
				}
			}
		}
	}
}
