// Package pktq provides a ring-buffer FIFO of packets for simulator hot
// paths.
//
// The naive Go idiom for a queue — append to push, q = q[1:] to pop, nil
// when empty — reallocates the backing array every time the queue drains
// and refills, which in the network simulators happens once per packet per
// buffer. At a few hundred switch buffers times tens of thousands of
// cycles per run that idiom dominates the allocation profile. Queue keeps
// one backing array per queue for the lifetime of the simulation, growing
// it (by doubling, to a power of two) only when the high-water mark rises.
package pktq

import "damq/internal/packet"

// Queue is a FIFO of packet pointers backed by a reusable ring buffer.
// The zero value is an empty queue ready for use.
type Queue struct {
	buf  []*packet.Packet // len(buf) is always 0 or a power of two
	head int
	n    int
}

// Len reports the number of queued packets.
func (q *Queue) Len() int { return q.n }

// Front returns the oldest packet without removing it, or nil if empty.
// damqvet:hotpath
func (q *Queue) Front() *packet.Packet {
	if q.n == 0 {
		return nil
	}
	return q.buf[q.head]
}

// At returns the i-th packet from the front (0 = Front) without removing
// it. It panics if i is out of range, like a slice index would.
// damqvet:hotpath
func (q *Queue) At(i int) *packet.Packet {
	if i < 0 || i >= q.n {
		panic("pktq: index out of range")
	}
	return q.buf[(q.head+i)&(len(q.buf)-1)]
}

// PushBack appends p to the queue.
// damqvet:hotpath
func (q *Queue) PushBack(p *packet.Packet) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = p
	q.n++
}

// shrinkFloor is the backing-array size below which PopFront never
// shrinks: steady-state simulator queues stay under it, so they keep one
// array forever and the shrink path costs them nothing.
const shrinkFloor = 64

// PopFront removes and returns the oldest packet, or nil if empty.
// damqvet:hotpath
func (q *Queue) PopFront() *packet.Packet {
	if q.n == 0 {
		return nil
	}
	p := q.buf[q.head]
	q.buf[q.head] = nil // release the reference for reuse/GC
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	// Shrink when occupancy falls to a quarter of a large backing array, so
	// a queue that ballooned during a transient (a saturated blocking
	// source's backlog, a hot-spot tree) returns the memory once the surge
	// drains. Halving at ≤1/4 occupancy keeps the new array at most half
	// full, preserving amortized O(1) push/pop.
	if len(q.buf) > shrinkFloor && q.n <= len(q.buf)/4 {
		q.resize(len(q.buf) / 2)
	}
	return p
}

// Reset empties the queue, releasing packet references but keeping the
// backing array for reuse.
func (q *Queue) Reset() {
	for q.n > 0 {
		q.PopFront()
	}
	q.head = 0
}

// grow doubles the backing array (minimum 8 slots) and re-bases the ring
// so the oldest packet sits at index 0.
func (q *Queue) grow() {
	newCap := len(q.buf) * 2
	if newCap == 0 {
		newCap = 8
	}
	q.resize(newCap)
}

// resize re-bases the ring into a fresh backing array of newCap slots
// (a power of two not smaller than q.n), oldest packet at index 0.
func (q *Queue) resize(newCap int) {
	nb := make([]*packet.Packet, newCap)
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = nb
	q.head = 0
}
