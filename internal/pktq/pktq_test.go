package pktq

import (
	"testing"

	"damq/internal/packet"
)

func pkt(id uint64) *packet.Packet { return &packet.Packet{ID: id} }

func TestFIFOOrder(t *testing.T) {
	var q Queue
	for i := uint64(1); i <= 100; i++ {
		q.PushBack(pkt(i))
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := uint64(1); i <= 100; i++ {
		if f := q.Front(); f == nil || f.ID != i {
			t.Fatalf("Front = %v, want id %d", f, i)
		}
		if p := q.PopFront(); p.ID != i {
			t.Fatalf("PopFront = %d, want %d", p.ID, i)
		}
	}
	if q.Len() != 0 || q.Front() != nil || q.PopFront() != nil {
		t.Fatal("queue not empty after draining")
	}
}

func TestWrapAround(t *testing.T) {
	var q Queue
	next := uint64(0)
	expect := uint64(0)
	// Interleave pushes and pops so head walks around the ring many times
	// at a size that forces wrapping within a small backing array.
	for round := 0; round < 1000; round++ {
		for i := 0; i < 3; i++ {
			next++
			q.PushBack(pkt(next))
		}
		for i := 0; i < 3; i++ {
			expect++
			if p := q.PopFront(); p.ID != expect {
				t.Fatalf("round %d: got %d, want %d", round, p.ID, expect)
			}
		}
	}
}

func TestAt(t *testing.T) {
	var q Queue
	for i := uint64(1); i <= 10; i++ {
		q.PushBack(pkt(i))
	}
	q.PopFront()
	q.PopFront()
	for i := 0; i < q.Len(); i++ {
		if got := q.At(i).ID; got != uint64(i+3) {
			t.Errorf("At(%d) = %d, want %d", i, got, i+3)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("At out of range did not panic")
		}
	}()
	q.At(q.Len())
}

func TestGrowPreservesOrderAcrossWrap(t *testing.T) {
	var q Queue
	// Fill, drain half (moves head), then push far past the old capacity
	// so grow() must re-base a wrapped ring.
	for i := uint64(1); i <= 8; i++ {
		q.PushBack(pkt(i))
	}
	for i := 0; i < 5; i++ {
		q.PopFront()
	}
	for i := uint64(9); i <= 40; i++ {
		q.PushBack(pkt(i))
	}
	for want := uint64(6); want <= 40; want++ {
		if p := q.PopFront(); p.ID != want {
			t.Fatalf("got %d, want %d", p.ID, want)
		}
	}
}

func TestResetKeepsCapacity(t *testing.T) {
	var q Queue
	for i := uint64(1); i <= 20; i++ {
		q.PushBack(pkt(i))
	}
	q.Reset()
	if q.Len() != 0 {
		t.Fatalf("Len after Reset = %d", q.Len())
	}
	// Refilling to the old size must not allocate.
	allocs := testing.AllocsPerRun(100, func() {
		for i := uint64(0); i < 20; i++ {
			q.PushBack(pkt(1)) // note: pkt itself allocates; measure push only
		}
		for q.Len() > 0 {
			q.PopFront()
		}
	})
	// 20 packet allocations per run come from pkt(); the queue itself must
	// add none.
	if allocs > 20 {
		t.Errorf("allocs per run = %v, want <= 20 (packet construction only)", allocs)
	}
}

func TestShrinkReleasesDrainedSurge(t *testing.T) {
	var q Queue
	// Surge: grow the backing array well past the shrink floor.
	const surge = 4096
	for i := uint64(0); i < surge; i++ {
		q.PushBack(pkt(i))
	}
	if len(q.buf) < surge {
		t.Fatalf("backing array %d after %d pushes", len(q.buf), surge)
	}
	// Drain: the array must shrink as occupancy falls, FIFO order intact.
	for i := uint64(0); i < surge; i++ {
		p := q.PopFront()
		if p == nil || p.ID != i {
			t.Fatalf("PopFront = %v, want id %d", p, i)
		}
		if q.n > len(q.buf) {
			t.Fatalf("occupancy %d exceeds backing array %d", q.n, len(q.buf))
		}
	}
	if len(q.buf) > shrinkFloor {
		t.Fatalf("drained queue kept a %d-slot array, want <= %d", len(q.buf), shrinkFloor)
	}
	if len(q.buf)&(len(q.buf)-1) != 0 {
		t.Fatalf("backing array %d is not a power of two", len(q.buf))
	}
}

func TestShrinkFloorPreventsThrash(t *testing.T) {
	// A queue that never outgrows the floor must keep one backing array
	// through any number of drain/refill rounds — the steady-state
	// allocation guarantee the simulators rely on.
	var q Queue
	for i := 0; i < shrinkFloor; i++ {
		q.PushBack(pkt(uint64(i)))
	}
	arr := &q.buf[0]
	for round := 0; round < 50; round++ {
		for q.Len() > 0 {
			q.PopFront()
		}
		for i := 0; i < shrinkFloor; i++ {
			q.PushBack(pkt(uint64(i)))
		}
	}
	if &q.buf[0] != arr {
		t.Fatal("backing array was replaced below the shrink floor")
	}
}

func TestShrinkPreservesOrderAcrossWrap(t *testing.T) {
	var q Queue
	// Build a wrapped ring above the floor, then shrink mid-wrap.
	for i := uint64(0); i < 300; i++ {
		q.PushBack(pkt(i))
	}
	for i := uint64(0); i < 200; i++ {
		q.PopFront()
	}
	for i := uint64(300); i < 400; i++ {
		q.PushBack(pkt(i))
	}
	for i := uint64(200); i < 400; i++ {
		p := q.PopFront()
		if p == nil || p.ID != i {
			t.Fatalf("PopFront = %v, want id %d", p, i)
		}
	}
}
