package names

import "testing"

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"damq", "DAMQ", true},
		{"DaMq", "dAmQ", true},
		{"", "", true},
		{"damq", "damqx", false},
		{"damq", "samq", false},
		{"bshare", "BShare", true},
		{"a_b", "A_B", true},
	}
	for _, c := range cases {
		if got := Equal(c.a, c.b); got != c.want {
			t.Errorf("Equal(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestIndex(t *testing.T) {
	valid := []string{"FIFO", "SAMQ", "SAFC", "DAMQ"}
	if i := Index("safc", valid); i != 2 {
		t.Errorf("Index(safc) = %d, want 2", i)
	}
	if i := Index("ring", valid); i != -1 {
		t.Errorf("Index(ring) = %d, want -1", i)
	}
	if i := Index("", nil); i != -1 {
		t.Errorf("Index on nil list = %d, want -1", i)
	}
}

func TestList(t *testing.T) {
	if got := List([]string{"FIFO", "DAMQ"}); got != "fifo|damq" {
		t.Errorf("List = %q", got)
	}
	if got := List(nil); got != "" {
		t.Errorf("List(nil) = %q", got)
	}
}

func TestFold(t *testing.T) {
	if got := Fold("BShare"); got != "bshare" {
		t.Errorf("Fold = %q", got)
	}
	// Already-lower strings come back without copying.
	s := "already"
	if got := Fold(s); got != s {
		t.Errorf("Fold(%q) = %q", s, got)
	}
}

func TestEqualDoesNotAllocate(t *testing.T) {
	n := testing.AllocsPerRun(100, func() {
		Equal("BShArE", "bshare")
		Index("damq", []string{"FIFO", "DAMQ"})
	})
	if n != 0 {
		t.Errorf("Equal/Index allocate %v per run", n)
	}
}
