// Package names is the one place the repo folds and lists enum names.
// Every CLI-facing parser (buffer kinds, flow-control protocols,
// arbitration policies, fault kinds) used to carry its own hand-rolled
// ASCII case-folding helper; they all route through this package now, so
// a newly added name gets case-insensitive matching and inclusion in the
// "want a|b|c" error listing for free.
//
// Matching is ASCII-only by design: every name in the repo is ASCII, and
// folding bytes (not runes) keeps the comparisons allocation-free.
package names

import "strings"

// Equal reports whether a and b match ignoring ASCII case. It never
// allocates, so parsers may call it in a loop over candidate names.
func Equal(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		if foldByte(a[i]) != foldByte(b[i]) {
			return false
		}
	}
	return true
}

// Index returns the position of s in valid under Equal, or -1. It is the
// shared lookup behind ParseKind-style functions whose enum values are
// their indices.
func Index(s string, valid []string) int {
	for i, n := range valid {
		if Equal(s, n) {
			return i
		}
	}
	return -1
}

// List renders the valid names lower-cased and joined with "|" — the
// conventional "(want fifo|samq|...)" fragment of parser errors. Cold
// path: it allocates the joined string.
func List(valid []string) string {
	var b strings.Builder
	for i, n := range valid {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(Fold(n))
	}
	return b.String()
}

// Fold lower-cases ASCII letters. Cold path: allocates when s contains
// an upper-case byte.
func Fold(s string) string {
	for i := 0; i < len(s); i++ {
		if c := s[i]; 'A' <= c && c <= 'Z' {
			out := make([]byte, len(s))
			for j := 0; j < len(s); j++ {
				out[j] = foldByte(s[j])
			}
			return string(out)
		}
	}
	return s
}

func foldByte(c byte) byte {
	if 'A' <= c && c <= 'Z' {
		c += 'a' - 'A'
	}
	return c
}
