package sw

import (
	"testing"

	"damq/internal/arbiter"
	"damq/internal/buffer"
	"damq/internal/packet"
	"damq/internal/rng"
)

func TestNewCentralValidation(t *testing.T) {
	if _, err := NewCentral(0, 4); err == nil {
		t.Error("accepted zero ports")
	}
	if _, err := NewCentral(4, 0); err == nil {
		t.Error("accepted zero capacity")
	}
}

func TestCentralOfferDepart(t *testing.T) {
	cs, err := NewCentral(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		p := &packet.Packet{ID: uint64(i), OutPort: i % 2, Slots: 1}
		if !cs.Offer(p) {
			t.Fatalf("offer %d rejected with %d free", i, cs.Free())
		}
	}
	if cs.Free() != 0 || cs.Len() != 4 {
		t.Fatalf("free=%d len=%d", cs.Free(), cs.Len())
	}
	if cs.Offer(&packet.Packet{OutPort: 3, Slots: 1}) {
		t.Fatal("offer into full pool accepted")
	}
	// Two queues are non-empty: two departures this cycle.
	if n := cs.Depart(); n != 2 {
		t.Fatalf("departures = %d", n)
	}
	if cs.Free() != 2 {
		t.Fatalf("free after departures = %d", cs.Free())
	}
	if cs.Offer(&packet.Packet{OutPort: 9, Slots: 1}) {
		t.Fatal("accepted invalid output port")
	}
}

// TestCentralPoolHogging reproduces Fujimoto's observation from the
// paper's Section 2: with a shared central pool, the flooding inputs
// consume all storage and traffic from quiet inputs — addressed to idle
// outputs — is discarded; with the same total storage split into
// per-input DAMQ buffers, the quiet inputs are isolated and lose
// (almost) nothing.
func TestCentralPoolHogging(t *testing.T) {
	const (
		ports     = 4
		totalCap  = 16
		lightLoad = 0.3
		cycles    = 100_000
	)
	central, err := RunCentralHog(ports, totalCap, lightLoad, cycles, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	damq := MustNew(Config{
		Ports: ports, BufferKind: buffer.DAMQ,
		Capacity: totalCap / ports, Policy: arbiter.Smart,
	}).RunPartitionedHog(lightLoad, cycles, rng.New(17))

	// Light inputs (2 and 3) under the central pool must suffer heavy
	// loss; under partitioned DAMQ buffers they must be near-lossless.
	for _, in := range []int{2, 3} {
		c := central.DiscardFraction(in)
		d := damq.DiscardFraction(in)
		if c < 0.10 {
			t.Errorf("input %d: central pool discards only %.3f — hogging not reproduced", in, c)
		}
		if d > 0.01 {
			t.Errorf("input %d: partitioned DAMQ discards %.3f, want ~0", in, d)
		}
		if c < 10*d+0.05 {
			t.Errorf("input %d: central %.3f not clearly worse than partitioned %.3f", in, c, d)
		}
	}
	// Sanity: the flooding pair as a whole loses ~half its traffic in
	// both designs (output 0 is 2x oversubscribed). Within the pair the
	// central pool is grossly unfair (the first-offered input grabs every
	// freed slot), so only the combined rate is meaningful there.
	combined := func(r HogResult) float64 {
		return float64(r.Discarded[0]+r.Discarded[1]) / float64(r.Arrivals[0]+r.Arrivals[1])
	}
	if c := combined(central); c < 0.3 {
		t.Errorf("central flooding pair discards only %.3f", c)
	}
	if d := combined(damq); d < 0.3 {
		t.Errorf("damq flooding pair discards only %.3f", d)
	}
}

func TestHogResultEmpty(t *testing.T) {
	r := HogResult{Arrivals: []int64{0}, Discarded: []int64{0}}
	if r.DiscardFraction(0) != 0 {
		t.Fatal("empty discard fraction should be 0")
	}
}
