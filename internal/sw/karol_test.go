package sw

import (
	"math"
	"testing"

	"damq/internal/rng"
)

// TestKarolSaturationMatchesTheory checks the simulated saturated
// head-of-line throughput against the exact values of Karol, Hluchyj &
// Morgan (1986): 0.75 for n=2, ~0.6553 for n=4, approaching 2-sqrt(2) =
// 0.5858 for large n.
func TestKarolSaturationMatchesTheory(t *testing.T) {
	cases := []struct {
		n    int
		want float64
		tol  float64
	}{
		{1, 1.0, 0.001},
		{2, 0.75, 0.01},
		{4, 0.6553, 0.01},
		{8, 0.6184, 0.01},
		{32, 0.59, 0.01}, // already close to the asymptote
	}
	for _, c := range cases {
		got := KarolSaturation(c.n, 200_000, rng.New(42))
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("n=%d: saturation throughput %v, want %v±%v", c.n, got, c.want, c.tol)
		}
	}
}

func TestKarolSaturationDegenerate(t *testing.T) {
	if KarolSaturation(0, 100, rng.New(1)) != 0 {
		t.Error("n=0 should yield 0")
	}
	if KarolSaturation(4, 0, rng.New(1)) != 0 {
		t.Error("0 cycles should yield 0")
	}
}

// TestKarolCeilingExplainsFIFONetwork ties the theory to Table 4: the
// FIFO network's measured saturation (~0.50) sits below the single-switch
// HOL ceiling for n=4 (~0.655) because the three cascaded stages make it
// worse, never better.
func TestKarolCeilingExplainsFIFONetwork(t *testing.T) {
	ceiling := KarolSaturation(4, 200_000, rng.New(7))
	if !(ceiling > 0.6 && ceiling < 0.7) {
		t.Fatalf("ceiling = %v", ceiling)
	}
	// The netsim measurement is taken in netsim tests; here we only pin
	// the single-switch ceiling's range so both numbers stay
	// interpretable together.
}
