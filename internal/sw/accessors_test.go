package sw

import (
	"testing"

	"damq/internal/arbiter"
	"damq/internal/buffer"
)

func TestAccessors(t *testing.T) {
	cfg := Config{Ports: 4, BufferKind: buffer.DAMQ, Capacity: 4, Policy: arbiter.Smart}
	s := MustNew(cfg)
	if s.Ports() != 4 {
		t.Fatalf("Ports = %d", s.Ports())
	}
	if s.Config() != cfg {
		t.Fatalf("Config = %+v", s.Config())
	}
	if s.Buffer(2) == nil || s.Buffer(2).Kind() != buffer.DAMQ {
		t.Fatal("Buffer accessor wrong")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(Config{Ports: -1})
}
