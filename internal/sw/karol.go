package sw

import "damq/internal/rng"

// KarolSaturation simulates the classic saturated input-queued switch of
// Karol, Hluchyj & Morgan (the paper's reference 5): every input has an
// infinite backlog; each head-of-line packet is addressed uniformly at
// random when it reaches the head; each output serves one of its
// contending heads chosen uniformly; losers stay at the head and retry.
// It returns the per-output throughput.
//
// This is a pure theory cross-check for the repository: the known limits
// are 0.75 for n=2, ≈0.6553 for n=4, and 2-√2 ≈ 0.5858 as n→∞ — the
// head-of-line-blocking ceiling that motivates the DAMQ. A multi-queue
// buffer in the same saturated setting serves every output every cycle
// (throughput 1), which is why Table 4's DAMQ keeps climbing where FIFO
// stalls.
func KarolSaturation(n int, cycles int64, src *rng.Source) float64 {
	if n <= 0 || cycles <= 0 {
		return 0
	}
	heads := make([]int, n) // destination of each input's head packet
	for i := range heads {
		heads[i] = src.Intn(n)
	}
	contenders := make([][]int, n)
	var served int64
	for c := int64(0); c < cycles; c++ {
		for o := range contenders {
			contenders[o] = contenders[o][:0]
		}
		for i, d := range heads {
			contenders[d] = append(contenders[d], i)
		}
		for o, ins := range contenders {
			if len(ins) == 0 {
				continue
			}
			winner := ins[src.Intn(len(ins))]
			served++
			_ = o
			heads[winner] = src.Intn(n) // next packet reaches the head
		}
	}
	return float64(served) / float64(cycles) / float64(n)
}
