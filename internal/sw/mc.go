package sw

import (
	"damq/internal/arbiter"
	"damq/internal/packet"
	"damq/internal/rng"
)

// MCResult summarizes a standalone Monte-Carlo switch run.
type MCResult struct {
	Cycles    int64
	Arrivals  int64
	Discarded int64
	Delivered int64
	// MeanOccupancy is the time-averaged number of packets in the switch.
	MeanOccupancy float64
}

// DiscardFraction is the probability estimate that an arriving packet is
// discarded — the quantity tabulated in the paper's Table 2.
func (r MCResult) DiscardFraction() float64 {
	if r.Arrivals == 0 {
		return 0
	}
	return float64(r.Discarded) / float64(r.Arrivals)
}

// RunDiscarding simulates a standalone discarding switch for the given
// number of long cycles. Each cycle every input port receives a packet
// with probability load, addressed to a uniformly random output. The
// cycle order matches the Markov models: departures first (arbitration on
// the pre-arrival state), then arrivals, which are discarded if they do
// not fit. Packets leaving the switch exit the system.
func (s *Switch) RunDiscarding(load float64, cycles int64, src *rng.Source) MCResult {
	n := s.cfg.Ports
	var alloc packet.Alloc
	var res MCResult
	var grants []arbiter.Grant
	occupancySum := 0.0

	for c := int64(0); c < cycles; c++ {
		// Departures.
		grants = s.Arbitrate(nil, grants[:0])
		for _, g := range grants {
			s.PopGrant(g)
			res.Delivered++
		}
		// Arrivals.
		for in := 0; in < n; in++ {
			if !src.Bool(load) {
				continue
			}
			res.Arrivals++
			dest := src.Intn(n)
			p := alloc.New(in, dest, 1, c)
			p.OutPort = dest
			if !s.Offer(in, p) {
				res.Discarded++
			}
		}
		occupancySum += float64(s.Len())
	}
	res.Cycles = cycles
	if cycles > 0 {
		res.MeanOccupancy = occupancySum / float64(cycles)
	}
	return res
}
