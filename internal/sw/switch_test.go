package sw

import (
	"testing"

	"damq/internal/arbiter"
	"damq/internal/buffer"
	"damq/internal/packet"
	"damq/internal/rng"
)

func cfg(kind buffer.Kind) Config {
	return Config{Ports: 4, BufferKind: kind, Capacity: 4, Policy: arbiter.Smart}
}

func routed(id uint64, dest int) *packet.Packet {
	return &packet.Packet{ID: id, Dest: dest, OutPort: dest, Slots: 1}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Ports: 0, BufferKind: buffer.FIFO, Capacity: 4}); err == nil {
		t.Fatal("accepted zero ports")
	}
	if _, err := New(Config{Ports: 4, BufferKind: buffer.SAMQ, Capacity: 5}); err == nil {
		t.Fatal("accepted SAMQ with indivisible capacity")
	}
}

func TestProtocolString(t *testing.T) {
	if Discarding.String() != "discarding" || Blocking.String() != "blocking" {
		t.Fatal("protocol names wrong")
	}
	if Protocol(9).String() != "Protocol(9)" {
		t.Fatal("unknown protocol name wrong")
	}
}

func TestOfferAndForward(t *testing.T) {
	for _, kind := range buffer.Kinds() {
		s := MustNew(cfg(kind))
		p := routed(1, 3)
		if !s.Offer(0, p) {
			t.Fatalf("%v: offer rejected on empty switch", kind)
		}
		if s.Len() != 1 {
			t.Fatalf("%v: len = %d", kind, s.Len())
		}
		grants := s.Arbitrate(nil, nil)
		if len(grants) != 1 || grants[0].In != 0 || grants[0].Out != 3 {
			t.Fatalf("%v: grants = %v", kind, grants)
		}
		if got := s.PopGrant(grants[0]); got != p {
			t.Fatalf("%v: popped %v", kind, got)
		}
		if s.Len() != 0 {
			t.Fatalf("%v: switch not empty after pop", kind)
		}
	}
}

func TestOfferFullDiscards(t *testing.T) {
	s := MustNew(Config{Ports: 2, BufferKind: buffer.FIFO, Capacity: 2, Policy: arbiter.Dumb})
	if !s.Offer(0, routed(1, 0)) || !s.Offer(0, routed(2, 0)) {
		t.Fatal("setup offers rejected")
	}
	if s.Offer(0, routed(3, 1)) {
		t.Fatal("offer accepted into full buffer")
	}
}

func TestBlockProbeStopsTransmission(t *testing.T) {
	s := MustNew(cfg(buffer.DAMQ))
	s.Offer(0, routed(1, 2))
	blockAll := func(out int, p *packet.Packet) bool { return true }
	if grants := s.Arbitrate(blockAll, nil); len(grants) != 0 {
		t.Fatalf("grants through a blocking probe: %v", grants)
	}
	// And with a selective probe only the free output transmits.
	s.Offer(0, routed(2, 1))
	probe := func(out int, p *packet.Packet) bool { return out == 2 }
	grants := s.Arbitrate(probe, nil)
	if len(grants) != 1 || grants[0].Out != 1 {
		t.Fatalf("grants = %v, want only output 1", grants)
	}
}

func TestCanAcceptAt(t *testing.T) {
	s := MustNew(Config{Ports: 2, BufferKind: buffer.SAMQ, Capacity: 2, Policy: arbiter.Dumb})
	if !s.CanAcceptAt(0, routed(1, 0)) {
		t.Fatal("empty switch refuses packet")
	}
	s.Offer(0, routed(1, 0))
	if s.CanAcceptAt(0, routed(2, 0)) {
		t.Fatal("SAMQ 1-slot queue accepted second packet")
	}
	if !s.CanAcceptAt(0, routed(3, 1)) {
		t.Fatal("SAMQ refused packet for the empty queue")
	}
}

func TestReset(t *testing.T) {
	s := MustNew(cfg(buffer.DAMQ))
	s.Offer(0, routed(1, 1))
	s.Reset()
	if s.Len() != 0 {
		t.Fatal("reset did not empty switch")
	}
}

func TestPopGrantPanicsOnStaleGrant(t *testing.T) {
	s := MustNew(cfg(buffer.FIFO))
	s.Offer(0, routed(1, 1))
	grants := s.Arbitrate(nil, nil)
	s.PopGrant(grants[0])
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on stale grant")
		}
	}()
	s.PopGrant(grants[0])
}

// TestMCConservation: arrivals = delivered + discarded + still buffered.
func TestMCConservation(t *testing.T) {
	for _, kind := range buffer.Kinds() {
		s := MustNew(cfg(kind))
		res := s.RunDiscarding(0.8, 5000, rng.New(1))
		inside := int64(s.Len())
		if res.Arrivals != res.Delivered+res.Discarded+inside {
			t.Fatalf("%v: %d arrivals != %d delivered + %d discarded + %d inside",
				kind, res.Arrivals, res.Delivered, res.Discarded, inside)
		}
	}
}

func TestMCDeterminism(t *testing.T) {
	a := MustNew(cfg(buffer.DAMQ)).RunDiscarding(0.7, 2000, rng.New(5))
	b := MustNew(cfg(buffer.DAMQ)).RunDiscarding(0.7, 2000, rng.New(5))
	if a != b {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
}

// TestMCOrderingMatchesPaper: at heavy load with equal storage, the
// discard ranking must be DAMQ < SAFC <= SAMQ < FIFO (Table 2's ordering).
func TestMCOrderingMatchesPaper(t *testing.T) {
	frac := map[buffer.Kind]float64{}
	for _, kind := range buffer.Kinds() {
		s := MustNew(cfg(kind))
		frac[kind] = s.RunDiscarding(0.9, 200000, rng.New(7)).DiscardFraction()
	}
	if !(frac[buffer.DAMQ] < frac[buffer.SAFC]) {
		t.Errorf("DAMQ %.4f !< SAFC %.4f", frac[buffer.DAMQ], frac[buffer.SAFC])
	}
	if !(frac[buffer.SAFC] <= frac[buffer.SAMQ]+0.01) {
		t.Errorf("SAFC %.4f !<= SAMQ %.4f", frac[buffer.SAFC], frac[buffer.SAMQ])
	}
	if !(frac[buffer.DAMQ] < frac[buffer.FIFO]) {
		t.Errorf("DAMQ %.4f !< FIFO %.4f", frac[buffer.DAMQ], frac[buffer.FIFO])
	}
}

func TestMCZeroLoad(t *testing.T) {
	s := MustNew(cfg(buffer.FIFO))
	res := s.RunDiscarding(0, 100, rng.New(1))
	if res.Arrivals != 0 || res.Discarded != 0 || res.Delivered != 0 {
		t.Fatalf("zero-load run moved packets: %+v", res)
	}
	if res.DiscardFraction() != 0 {
		t.Fatal("discard fraction of empty run should be 0")
	}
}
