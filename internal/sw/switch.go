// Package sw models one n×n packet switch under the long-clock model:
// per-input buffers of any of the paper's four organizations, a crossbar,
// and a central arbiter. A network simulator (package netsim) composes
// switches into stages; this package also supports standalone Monte-Carlo
// runs of a single discarding switch, used to cross-validate the Markov
// models and to reproduce Table-2-like behaviour by simulation.
//
// Cycle structure (one long clock, matching DESIGN.md §4):
//
//  1. Arbitrate: the switch inspects its buffers and the downstream
//     admission state (via a caller-supplied probe) and computes a
//     crossbar matching.
//  2. Transmit: granted packets are popped.
//  3. Deliver/accept: the caller moves popped packets downstream; freed
//     slots become visible to arrivals.
//  4. Arrivals: the caller offers new packets to input ports; a packet
//     that does not fit is discarded (discarding protocol) or stays
//     upstream (blocking protocol).
package sw

import (
	"fmt"

	"damq/internal/arbiter"
	"damq/internal/buffer"
	"damq/internal/cfgerr"
	"damq/internal/names"
	"damq/internal/obs"
	"damq/internal/packet"
)

// Protocol is the network flow-control discipline.
type Protocol int

const (
	// Discarding switches drop packets that arrive at a full buffer.
	Discarding Protocol = iota
	// Blocking switches prevent the upstream from sending into a full
	// buffer, propagating back-pressure.
	Blocking
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case Discarding:
		return "discarding"
	case Blocking:
		return "blocking"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// protocolNames lists the protocols in enum order for the shared parser.
var protocolNames = [...]string{"discarding", "blocking"}

// ParseProtocol converts "discarding" or "blocking" (any case) to a
// Protocol. The error wraps cfgerr.ErrBadProtocol.
func ParseProtocol(s string) (Protocol, error) {
	if i := names.Index(s, protocolNames[:]); i >= 0 {
		return Protocol(i), nil
	}
	return 0, fmt.Errorf("sw: unknown protocol %q (want %s): %w",
		s, names.List(protocolNames[:]), cfgerr.ErrBadProtocol)
}

// Config describes one switch.
type Config struct {
	Ports      int // n: number of input ports and of output ports
	BufferKind buffer.Kind
	Capacity   int // slots per input buffer
	Policy     arbiter.Policy
	// SharedPool makes all input ports share one storage group of
	// Ports*Capacity slots (buffer.NewSharedGroup) instead of owning
	// Capacity slots each. Requires a pooled kind (buffer.KindSharesPool).
	SharedPool bool
	// Sharing tunes the modern admission policies (DT/FB/BSHARE).
	Sharing buffer.Sharing
}

// bufferConfig is the per-input buffer geometry the switch constructs.
func (cfg Config) bufferConfig() buffer.Config {
	return buffer.Config{
		Kind:       cfg.BufferKind,
		NumOutputs: cfg.Ports,
		Capacity:   cfg.Capacity,
		Sharing:    cfg.Sharing,
	}
}

// Validate checks the config using the repo-wide sentinel-error
// convention (see internal/cfgerr): port-count errors wrap ErrBadPorts,
// buffer shape errors wrap ErrBadKind/ErrBadCapacity, policy errors
// wrap ErrBadPolicy, sharing errors wrap ErrBadSharing.
func (cfg Config) Validate() error {
	if cfg.Ports <= 0 {
		return fmt.Errorf("sw: ports must be positive, got %d: %w", cfg.Ports, cfgerr.ErrBadPorts)
	}
	if cfg.Policy != arbiter.Dumb && cfg.Policy != arbiter.Smart {
		return fmt.Errorf("sw: unknown policy %v: %w", cfg.Policy, cfgerr.ErrBadPolicy)
	}
	if cfg.SharedPool && !buffer.KindSharesPool(cfg.BufferKind) {
		return fmt.Errorf("sw: %v (policy %s) cannot span input ports as a shared pool: %w",
			cfg.BufferKind, cfg.BufferKind.PolicyName(), cfgerr.ErrBadSharing)
	}
	return cfg.bufferConfig().Validate()
}

// Switch is one n×n switch instance.
type Switch struct {
	cfg  Config
	bufs []buffer.Buffer
	arb  *arbiter.Arbiter
	// count tracks buffered packets across all input buffers so Len and
	// Empty are O(1); the active-set network simulator polls them every
	// cycle. It stays correct as long as buffer contents change only
	// through Offer, PopGrant, and Reset.
	count int
	// v is the reusable arbiter view: constructing it per Arbitrate call
	// would heap-allocate one adapter per switch per network cycle.
	v view
	// m holds the observability probes; nil (the default) keeps every
	// hot-path probe behind a never-taken branch.
	m *Metrics
	// tickers are the buffers whose admission policy reads packet ages;
	// nil unless the kind uses a clock (BSHARE), so clockless switches
	// pay one nil check in Tick. Shared-pool views coordinate internally
	// so the group clock advances exactly once per Tick sweep.
	tickers []buffer.Ticker
}

// Metrics is the instrument set one observed switch maintains. Grant,
// conflict, and blocked-head counts are delegated to the arbiter; the
// refused-offer count is the switch's own admission signal (under
// discarding these are drops at this switch, under blocking they are
// stage-0 injection stalls — in-network heads are never offered while
// blocked). Fields may be nil individually.
type Metrics struct {
	Grants       *obs.Counter
	Conflicts    *obs.Counter
	BlockedHeads *obs.Counter
	OfferRefused *obs.Counter
}

// SetMetrics attaches (nil detaches) the switch's instrument set and
// forwards the arbitration counters to the arbiter. Cold path.
func (s *Switch) SetMetrics(m *Metrics) {
	s.m = m
	if m == nil {
		s.arb.SetMetrics(nil, nil, nil)
		return
	}
	s.arb.SetMetrics(m.Grants, m.Conflicts, m.BlockedHeads)
}

// New builds a switch. It returns an error for invalid buffer configs
// (e.g. SAMQ capacity not divisible by the port count).
func New(cfg Config) (*Switch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Switch{
		cfg: cfg,
		arb: arbiter.New(cfg.Policy, cfg.Ports, cfg.Ports),
	}
	if cfg.SharedPool {
		bufs, err := buffer.NewSharedGroup(cfg.bufferConfig(), cfg.Ports)
		if err != nil {
			return nil, fmt.Errorf("sw: shared pool: %w", err)
		}
		s.bufs = bufs
	} else {
		for i := 0; i < cfg.Ports; i++ {
			b, err := buffer.New(cfg.bufferConfig())
			if err != nil {
				return nil, fmt.Errorf("sw: input %d: %w", i, err)
			}
			s.bufs = append(s.bufs, b)
		}
	}
	if buffer.KindUsesClock(cfg.BufferKind) {
		for _, b := range s.bufs {
			if tk, ok := b.(buffer.Ticker); ok {
				s.tickers = append(s.tickers, tk)
			}
		}
	}
	return s, nil
}

// Tick advances the clock of every age-reading buffer by one long cycle.
// Clockless kinds make it a nil-check no-op. The network simulator calls
// it from the inject phase — after all of a cycle's admission probes are
// done — so ages only ever change between cycles, never mid-arbitration.
// damqvet:hotpath
func (s *Switch) Tick() {
	for _, tk := range s.tickers {
		tk.Tick()
	}
}

// MustNew is New for known-good configs.
func MustNew(cfg Config) *Switch {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Ports returns n.
func (s *Switch) Ports() int { return s.cfg.Ports }

// Buffer exposes input i's buffer (for probes, tests, and statistics).
func (s *Switch) Buffer(i int) buffer.Buffer { return s.bufs[i] }

// Config returns the construction parameters.
func (s *Switch) Config() Config { return s.cfg }

// Len is the number of packets currently buffered in the whole switch.
func (s *Switch) Len() int { return s.count }

// Empty reports whether no packets are buffered anywhere in the switch.
func (s *Switch) Empty() bool { return s.count == 0 }

// Reset clears all buffers and arbitration state.
func (s *Switch) Reset() {
	for _, b := range s.bufs {
		b.Reset()
	}
	s.arb.Reset()
	s.count = 0
}

// AdvanceIdle fast-forwards the switch through cycles arbitration rounds
// in which it held no packets, reproducing exactly the arbiter state those
// empty rounds would have produced (the priority pointer advances once per
// round; nothing else changes). The active-set network simulator calls it
// when a switch that sat out of arbitration re-enters the active set —
// typically just after the packet ending the idle span was accepted, so
// the switch may be non-empty at call time. The caller asserts that the
// rounds being replayed themselves held no packets.
func (s *Switch) AdvanceIdle(cycles int64) {
	s.arb.AdvanceIdle(cycles)
}

// BlockProbe reports whether the head packet of queue (in → out) must not
// be transmitted because the downstream cannot take it. A nil probe means
// nothing ever blocks (discarding protocol, or final stage feeding sinks).
type BlockProbe func(out int, p *packet.Packet) bool

// view adapts the switch state + probe to the arbiter's View.
type view struct {
	s     *Switch
	probe BlockProbe
}

// damqvet:hotpath
func (v *view) Ports() (int, int) { return v.s.cfg.Ports, v.s.cfg.Ports }

// damqvet:hotpath
func (v *view) InputLen(i int) int { return v.s.bufs[i].Len() }

// damqvet:hotpath
func (v *view) QueueLen(i, o int) int { return v.s.bufs[i].QueueLen(o) }

// damqvet:hotpath
func (v *view) MaxReads(i int) int { return v.s.bufs[i].MaxReadsPerCycle() }

// damqvet:hotpath
func (v *view) Blocked(i, o int) bool {
	if v.probe == nil {
		return false
	}
	p := v.s.bufs[i].Head(o)
	if p == nil {
		return false
	}
	return v.probe(o, p)
}

// Arbitrate computes this cycle's matching. grants is reused storage
// (pass nil to allocate).
// damqvet:hotpath
func (s *Switch) Arbitrate(probe BlockProbe, grants []arbiter.Grant) []arbiter.Grant {
	s.v.s = s
	s.v.probe = probe
	grants = s.arb.Arbitrate(&s.v, grants)
	s.v.probe = nil // do not retain the probe between cycles
	return grants
}

// PopGrant removes and returns the packet named by a grant from Arbitrate.
// It panics if the grant no longer matches a head packet, which would mean
// the caller mutated buffers between Arbitrate and PopGrant.
// damqvet:hotpath
func (s *Switch) PopGrant(g arbiter.Grant) *packet.Packet {
	p := s.bufs[g.In].Pop(g.Out)
	if p == nil {
		panic(fmt.Sprintf("sw: grant %+v does not match buffer state", g))
	}
	s.count--
	return p
}

// Offer presents packet p (already routed: p.OutPort set) to input port
// in. Under Discarding, a packet that does not fit is dropped and Offer
// reports accepted=false. Under Blocking, Offer also reports false but the
// caller is expected to retain the packet upstream.
// damqvet:hotpath
func (s *Switch) Offer(in int, p *packet.Packet) (accepted bool) {
	b := s.bufs[in]
	if !b.CanAccept(p) {
		if s.m != nil {
			if s.m.OfferRefused != nil {
				s.m.OfferRefused.Inc()
			}
		}
		return false
	}
	if err := b.Accept(p); err != nil {
		// CanAccept said yes; Accept can only fail on a routing bug.
		panic(fmt.Sprintf("sw: accept after CanAccept: %v", err))
	}
	s.count++
	return true
}

// CanAcceptAt reports whether input in could take p right now. Upstream
// switches use this as their block probe under the blocking protocol.
// damqvet:hotpath
func (s *Switch) CanAcceptAt(in int, p *packet.Packet) bool {
	return s.bufs[in].CanAccept(p)
}

// Arbiter exposes the switch's crossbar arbiter for the checkpoint
// codec: its priority pointer and stale counters are the switch's only
// cross-cycle control state outside the buffers.
func (s *Switch) Arbiter() *arbiter.Arbiter { return s.arb }

// Buffers returns the switch's per-input buffer views, for the
// checkpoint codec (under a shared pool all views alias one group).
func (s *Switch) Buffers() []buffer.Buffer { return s.bufs }

// ResyncLen recomputes the cached switch-wide packet count after the
// buffers have been checkpoint-restored.
func (s *Switch) ResyncLen() {
	n := 0
	for _, b := range s.bufs {
		n += b.Len()
	}
	s.count = n
}
