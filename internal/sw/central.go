package sw

import (
	"fmt"

	"damq/internal/arbiter"
	"damq/internal/packet"
	"damq/internal/rng"
)

// CentralSwitch models the buffer organization the paper's Section 2
// rejects before arriving at input buffering: one central pool shared by
// every input port, organized as per-output queues. Theoretically a
// single shared pool beats partitioned ones ("a single queue for
// multiple servers is more efficient than multiple queues with the same
// total storage") — but Fujimoto's simulations found that busy inputs
// "hog" the shared memory and starve traffic arriving on quiet inputs,
// and a shared multi-write pool is hard to build at link rate. This type
// exists to reproduce the hogging effect; see the experiments package.
//
// The model is idealized in the central pool's favor: every input can
// write in the same cycle (no write-port limit) and every output reads
// its queue head independently — the pathology demonstrated is therefore
// purely the shared-storage dynamics, not an artifact of modeled port
// limits.
type CentralSwitch struct {
	ports    int
	capacity int // shared slots
	used     int
	queues   [][]*packet.Packet // per output
}

// NewCentral builds a central-pool switch with the given shared capacity.
func NewCentral(ports, capacity int) (*CentralSwitch, error) {
	if ports <= 0 || capacity <= 0 {
		return nil, fmt.Errorf("sw: central switch needs positive ports and capacity")
	}
	return &CentralSwitch{
		ports:    ports,
		capacity: capacity,
		queues:   make([][]*packet.Packet, ports),
	}, nil
}

// Free reports unused shared slots.
func (c *CentralSwitch) Free() int { return c.capacity - c.used }

// Len reports buffered packets.
func (c *CentralSwitch) Len() int {
	n := 0
	for _, q := range c.queues {
		n += len(q)
	}
	return n
}

// Offer stores p (routed: OutPort set) if the shared pool has room.
func (c *CentralSwitch) Offer(p *packet.Packet) bool {
	if p.OutPort < 0 || p.OutPort >= c.ports {
		return false
	}
	if p.Slots > c.Free() {
		return false
	}
	c.used += p.Slots
	c.queues[p.OutPort] = append(c.queues[p.OutPort], p)
	return true
}

// Depart pops the head of every non-empty output queue (each output
// transmits one packet per cycle) and returns how many left.
func (c *CentralSwitch) Depart() int {
	n := 0
	for out := range c.queues {
		q := c.queues[out]
		if len(q) == 0 {
			continue
		}
		c.used -= q[0].Slots
		q[0] = nil
		c.queues[out] = q[1:]
		if len(c.queues[out]) == 0 {
			c.queues[out] = nil
		}
		n++
	}
	return n
}

// HogResult captures per-input acceptance under the hogging scenario.
type HogResult struct {
	Arrivals  []int64 // per input
	Discarded []int64 // per input
}

// DiscardFraction returns input i's discard fraction.
func (r HogResult) DiscardFraction(i int) float64 {
	if r.Arrivals[i] == 0 {
		return 0
	}
	return float64(r.Discarded[i]) / float64(r.Arrivals[i])
}

// hogTraffic draws one cycle of the §2 hogging scenario for input in on
// an n-port switch: inputs 0 and 1 flood output 0 (2x oversubscribed),
// the remaining inputs offer light traffic to the other outputs.
func hogTraffic(n, in int, lightLoad float64, src *rng.Source) (dest int, ok bool) {
	if in <= 1 {
		return 0, true // full load toward the contended output
	}
	if !src.Bool(lightLoad) {
		return 0, false
	}
	return 1 + src.Intn(n-1), true // uniform over the idle outputs
}

// RunCentralHog simulates the central-pool switch under the hogging
// scenario and returns per-input discard statistics.
func RunCentralHog(ports, capacity int, lightLoad float64, cycles int64, src *rng.Source) (HogResult, error) {
	cs, err := NewCentral(ports, capacity)
	if err != nil {
		return HogResult{}, err
	}
	res := HogResult{
		Arrivals:  make([]int64, ports),
		Discarded: make([]int64, ports),
	}
	var alloc packet.Alloc
	for cyc := int64(0); cyc < cycles; cyc++ {
		cs.Depart()
		for in := 0; in < ports; in++ {
			dest, ok := hogTraffic(ports, in, lightLoad, src)
			if !ok {
				continue
			}
			res.Arrivals[in]++
			p := alloc.New(in, dest, 1, cyc)
			p.OutPort = dest
			if !cs.Offer(p) {
				res.Discarded[in]++
			}
		}
	}
	return res, nil
}

// RunPartitionedHog runs the identical scenario against a switch with
// per-input DAMQ buffers of capacity/ports slots each (equal total
// storage), using the standard switch machinery.
func (s *Switch) RunPartitionedHog(lightLoad float64, cycles int64, src *rng.Source) HogResult {
	n := s.cfg.Ports
	res := HogResult{
		Arrivals:  make([]int64, n),
		Discarded: make([]int64, n),
	}
	var alloc packet.Alloc
	var grants []arbiter.Grant
	for cyc := int64(0); cyc < cycles; cyc++ {
		grants = s.Arbitrate(nil, grants[:0])
		for _, g := range grants {
			s.PopGrant(g)
		}
		for in := 0; in < n; in++ {
			dest, ok := hogTraffic(n, in, lightLoad, src)
			if !ok {
				continue
			}
			res.Arrivals[in]++
			p := alloc.New(in, dest, 1, cyc)
			p.OutPort = dest
			if !s.Offer(in, p) {
				res.Discarded[in]++
			}
		}
	}
	return res
}
