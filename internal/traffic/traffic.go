// Package traffic provides the workload generators driving the network
// simulations: uniform random traffic, the 5% hot-spot pattern of Pfister
// and Norton used in the paper's Table 6, fixed permutations, and the
// variable-length extension the paper's conclusion motivates.
package traffic

import (
	"fmt"

	"damq/internal/rng"
)

// Pattern generates, per source and cycle, whether a packet is born and
// where it goes.
type Pattern interface {
	// Generate reports whether source src produces a packet this cycle
	// and, if so, its destination and whether it counts as hot-spot
	// traffic. Implementations draw from their own stream so simulations
	// stay reproducible.
	Generate(src int) (dest int, hot bool, ok bool)
	// Load returns the offered load (packets per source per cycle).
	Load() float64
	// String describes the pattern for logs and table captions.
	String() string
}

// Uniform generates Bernoulli(load) arrivals with uniformly random
// destinations — the paper's "uniformly distributed" traffic.
type Uniform struct {
	n    int
	load float64
	src  *rng.Source
}

// NewUniform builds a uniform pattern over n destinations.
func NewUniform(n int, load float64, src *rng.Source) (*Uniform, error) {
	if n <= 0 {
		return nil, fmt.Errorf("traffic: destinations must be positive, got %d", n)
	}
	if load < 0 || load > 1 {
		return nil, fmt.Errorf("traffic: load %v out of [0,1]", load)
	}
	return &Uniform{n: n, load: load, src: src}, nil
}

// Generate implements Pattern.
func (u *Uniform) Generate(int) (int, bool, bool) {
	if !u.src.Bool(u.load) {
		return 0, false, false
	}
	return u.src.Intn(u.n), false, true
}

// Load implements Pattern.
func (u *Uniform) Load() float64 { return u.load }

// String implements Pattern.
func (u *Uniform) String() string { return fmt.Sprintf("uniform(load=%.3g)", u.load) }

// HotSpot sends a fraction of all packets to one hot destination and the
// rest uniformly: Pfister & Norton's hot-spot model. With fraction h, the
// hot module receives offered traffic load*(h*N + (1-h)) and therefore
// saturates the whole network near 1/(h*N + 1-h) — ≈ 0.241 for h = 5%,
// N = 64, which is Table 6's universal saturation point.
type HotSpot struct {
	n        int
	load     float64
	fraction float64
	hot      int
	src      *rng.Source
}

// NewHotSpot builds a hot-spot pattern. fraction is the probability a
// generated packet is re-addressed to destination hot.
func NewHotSpot(n int, load, fraction float64, hot int, src *rng.Source) (*HotSpot, error) {
	if n <= 0 {
		return nil, fmt.Errorf("traffic: destinations must be positive, got %d", n)
	}
	if load < 0 || load > 1 {
		return nil, fmt.Errorf("traffic: load %v out of [0,1]", load)
	}
	if fraction < 0 || fraction > 1 {
		return nil, fmt.Errorf("traffic: hot fraction %v out of [0,1]", fraction)
	}
	if hot < 0 || hot >= n {
		return nil, fmt.Errorf("traffic: hot destination %d out of range", hot)
	}
	return &HotSpot{n: n, load: load, fraction: fraction, hot: hot, src: src}, nil
}

// Generate implements Pattern.
func (h *HotSpot) Generate(int) (int, bool, bool) {
	if !h.src.Bool(h.load) {
		return 0, false, false
	}
	if h.src.Bool(h.fraction) {
		return h.hot, true, true
	}
	return h.src.Intn(h.n), false, true
}

// Load implements Pattern.
func (h *HotSpot) Load() float64 { return h.load }

// String implements Pattern.
func (h *HotSpot) String() string {
	return fmt.Sprintf("hotspot(load=%.3g, %.1f%%->%d)", h.load, h.fraction*100, h.hot)
}

// Permutation sends every source's packets to one fixed destination given
// by a permutation — a conflict-free pattern on an Omega network when the
// permutation is passable, useful for latency floor measurements and
// tests.
type Permutation struct {
	perm []int
	load float64
	src  *rng.Source
}

// NewPermutation builds a fixed-destination pattern. perm must be a
// permutation of [0, n).
func NewPermutation(perm []int, load float64, src *rng.Source) (*Permutation, error) {
	seen := make([]bool, len(perm))
	for _, d := range perm {
		if d < 0 || d >= len(perm) || seen[d] {
			return nil, fmt.Errorf("traffic: not a permutation: %v", perm)
		}
		seen[d] = true
	}
	if load < 0 || load > 1 {
		return nil, fmt.Errorf("traffic: load %v out of [0,1]", load)
	}
	return &Permutation{perm: perm, load: load, src: src}, nil
}

// Identity returns the identity permutation of size n.
func Identity(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// Generate implements Pattern.
func (p *Permutation) Generate(src int) (int, bool, bool) {
	if !p.src.Bool(p.load) {
		return 0, false, false
	}
	return p.perm[src], false, true
}

// Load implements Pattern.
func (p *Permutation) Load() float64 { return p.load }

// String implements Pattern.
func (p *Permutation) String() string { return fmt.Sprintf("permutation(load=%.3g)", p.load) }

// Lengths draws packet sizes in slots. Fixed-length experiments use
// Fixed(1); the variable-length extension (paper §5: 1-32 byte packets in
// 8-byte slots) uses UniformLengths(1, 4).
type Lengths interface {
	// Draw returns the next packet's size in slots.
	Draw() int
	// Mean returns the expected size, used to normalize offered load.
	Mean() float64
}

// Fixed always returns the same size.
type Fixed int

// Draw implements Lengths.
func (f Fixed) Draw() int { return int(f) }

// Mean implements Lengths.
func (f Fixed) Mean() float64 { return float64(f) }

// UniformLengths draws uniformly from [Lo, Hi] slots.
type UniformLengths struct {
	Lo, Hi int
	Src    *rng.Source
}

// Draw implements Lengths.
func (u UniformLengths) Draw() int { return u.Src.IntnRange(u.Lo, u.Hi) }

// Mean implements Lengths.
func (u UniformLengths) Mean() float64 { return float64(u.Lo+u.Hi) / 2 }

// Src exposes the pattern's random stream for the checkpoint codec: a
// pattern's only cross-cycle state is its source (Bursty adds per-input
// burst registers, which it exposes separately).
func (u *Uniform) Src() *rng.Source { return u.src }

// Src exposes the pattern's random stream for the checkpoint codec.
func (h *HotSpot) Src() *rng.Source { return h.src }

// Src exposes the pattern's random stream for the checkpoint codec.
func (p *Permutation) Src() *rng.Source { return p.src }
