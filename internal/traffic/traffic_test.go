package traffic

import (
	"math"
	"testing"

	"damq/internal/rng"
)

func TestUniformValidation(t *testing.T) {
	if _, err := NewUniform(0, 0.5, rng.New(1)); err == nil {
		t.Error("accepted zero destinations")
	}
	if _, err := NewUniform(4, 1.5, rng.New(1)); err == nil {
		t.Error("accepted load > 1")
	}
	if _, err := NewUniform(4, -0.5, rng.New(1)); err == nil {
		t.Error("accepted negative load")
	}
}

func TestUniformRate(t *testing.T) {
	u, err := NewUniform(64, 0.4, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if u.Load() != 0.4 {
		t.Fatalf("Load() = %v", u.Load())
	}
	const n = 100000
	born := 0
	counts := make([]int, 64)
	for i := 0; i < n; i++ {
		if dest, hot, ok := u.Generate(0); ok {
			born++
			counts[dest]++
			if hot {
				t.Fatal("uniform produced hot packet")
			}
		}
	}
	rate := float64(born) / n
	if math.Abs(rate-0.4) > 0.01 {
		t.Fatalf("arrival rate = %v", rate)
	}
	// Destinations roughly uniform.
	want := float64(born) / 64
	for d, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("dest %d drawn %d times, want ~%.0f", d, c, want)
		}
	}
}

func TestHotSpotValidation(t *testing.T) {
	if _, err := NewHotSpot(0, 0.5, 0.05, 0, rng.New(1)); err == nil {
		t.Error("accepted zero destinations")
	}
	if _, err := NewHotSpot(4, 0.5, 1.5, 0, rng.New(1)); err == nil {
		t.Error("accepted fraction > 1")
	}
	if _, err := NewHotSpot(4, 0.5, 0.05, 9, rng.New(1)); err == nil {
		t.Error("accepted out-of-range hot destination")
	}
	if _, err := NewHotSpot(4, 2, 0.05, 0, rng.New(1)); err == nil {
		t.Error("accepted load > 1")
	}
}

func TestHotSpotFraction(t *testing.T) {
	h, err := NewHotSpot(64, 1.0, 0.05, 7, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	hotCount, toHot := 0, 0
	for i := 0; i < n; i++ {
		dest, hot, ok := h.Generate(0)
		if !ok {
			t.Fatal("load 1.0 must always generate")
		}
		if hot {
			hotCount++
			if dest != 7 {
				t.Fatal("hot packet not addressed to hot module")
			}
		}
		if dest == 7 {
			toHot++
		}
	}
	if f := float64(hotCount) / n; math.Abs(f-0.05) > 0.005 {
		t.Fatalf("hot fraction = %v", f)
	}
	// Total traffic to the hot module: 5% + 95%/64.
	wantHot := 0.05 + 0.95/64
	if f := float64(toHot) / n; math.Abs(f-wantHot) > 0.005 {
		t.Fatalf("traffic to hot module = %v, want ~%v", f, wantHot)
	}
}

func TestPermutation(t *testing.T) {
	perm := []int{2, 0, 3, 1}
	p, err := NewPermutation(perm, 1.0, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	for src, want := range perm {
		dest, hot, ok := p.Generate(src)
		if !ok || hot || dest != want {
			t.Fatalf("Generate(%d) = %d,%v,%v", src, dest, hot, ok)
		}
	}
	if p.String() == "" || p.Load() != 1.0 {
		t.Fatal("metadata wrong")
	}
}

func TestPermutationValidation(t *testing.T) {
	if _, err := NewPermutation([]int{0, 0, 1, 2}, 0.5, rng.New(1)); err == nil {
		t.Error("accepted duplicate destinations")
	}
	if _, err := NewPermutation([]int{0, 4, 1, 2}, 0.5, rng.New(1)); err == nil {
		t.Error("accepted out-of-range destination")
	}
	if _, err := NewPermutation(Identity(4), 1.5, rng.New(1)); err == nil {
		t.Error("accepted bad load")
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(5)
	for i, v := range id {
		if v != i {
			t.Fatalf("Identity = %v", id)
		}
	}
}

func TestFixedLengths(t *testing.T) {
	f := Fixed(3)
	if f.Draw() != 3 || f.Mean() != 3 {
		t.Fatal("Fixed lengths wrong")
	}
}

func TestUniformLengths(t *testing.T) {
	u := UniformLengths{Lo: 1, Hi: 4, Src: rng.New(5)}
	if u.Mean() != 2.5 {
		t.Fatalf("mean = %v", u.Mean())
	}
	sum := 0
	const n = 50000
	for i := 0; i < n; i++ {
		v := u.Draw()
		if v < 1 || v > 4 {
			t.Fatalf("Draw = %d", v)
		}
		sum += v
	}
	if mean := float64(sum) / n; math.Abs(mean-2.5) > 0.05 {
		t.Fatalf("empirical mean = %v", mean)
	}
}

func TestStrings(t *testing.T) {
	u, _ := NewUniform(4, 0.5, rng.New(1))
	h, _ := NewHotSpot(4, 0.5, 0.05, 0, rng.New(1))
	if u.String() == "" || h.String() == "" {
		t.Fatal("empty descriptions")
	}
}
