package traffic

import (
	"fmt"

	"damq/internal/rng"
)

// Bursty models multi-packet messages: each source alternates between
// idle periods and messages of geometrically distributed length whose
// packets all go to one destination, back to back — the traffic shape the
// ComCoBB's message/virtual-circuit design implies (Section 3 of the
// paper: "messages can be made up of multiple packets"). Burstiness
// stresses a single destination queue at a time, which is exactly where
// buffer organization matters.
type Bursty struct {
	n         int
	load      float64
	meanBurst float64
	startP    float64 // per-cycle probability an idle source starts a message
	src       *rng.Source

	remaining []int // packets left in each source's current message
	dest      []int // current message's destination per source
}

// NewBursty builds the pattern. load is the long-run offered load in
// packets per source per cycle; meanBurst is the mean message length in
// packets (>= 1). The idle-period start probability q is derived from the
// renewal equation load = mean / (mean + (1-q)/q).
func NewBursty(n int, load, meanBurst float64, src *rng.Source) (*Bursty, error) {
	if n <= 0 {
		return nil, fmt.Errorf("traffic: destinations must be positive, got %d", n)
	}
	if load < 0 || load > 1 {
		return nil, fmt.Errorf("traffic: load %v out of [0,1]", load)
	}
	if meanBurst < 1 {
		return nil, fmt.Errorf("traffic: mean burst %v must be >= 1", meanBurst)
	}
	b := &Bursty{
		n:         n,
		load:      load,
		meanBurst: meanBurst,
		src:       src,
		remaining: make([]int, n),
		dest:      make([]int, n),
	}
	if load > 0 {
		b.startP = load / (load + meanBurst*(1-load))
	}
	return b, nil
}

// Generate implements Pattern.
func (b *Bursty) Generate(src int) (int, bool, bool) {
	if src < 0 || src >= len(b.remaining) {
		panic(fmt.Sprintf("traffic: bursty source %d out of range", src))
	}
	if b.remaining[src] > 0 {
		b.remaining[src]--
		return b.dest[src], false, true
	}
	if b.startP == 0 || !b.src.Bool(b.startP) {
		return 0, false, false
	}
	length := b.src.Geometric(1 / b.meanBurst)
	b.remaining[src] = length - 1
	b.dest[src] = b.src.Intn(b.n)
	return b.dest[src], false, true
}

// Load implements Pattern.
func (b *Bursty) Load() float64 { return b.load }

// String implements Pattern.
func (b *Bursty) String() string {
	return fmt.Sprintf("bursty(load=%.3g, mean burst %.3g)", b.load, b.meanBurst)
}
