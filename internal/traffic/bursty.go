package traffic

import (
	"fmt"

	"damq/internal/rng"
)

// Bursty models multi-packet messages: each source alternates between
// idle periods and messages of geometrically distributed length whose
// packets all go to one destination, back to back — the traffic shape the
// ComCoBB's message/virtual-circuit design implies (Section 3 of the
// paper: "messages can be made up of multiple packets"). Burstiness
// stresses a single destination queue at a time, which is exactly where
// buffer organization matters.
type Bursty struct {
	n         int
	load      float64
	meanBurst float64
	startP    float64 // per-cycle probability an idle source starts a message
	src       *rng.Source

	remaining []int // packets left in each source's current message
	dest      []int // current message's destination per source
}

// NewBursty builds the pattern. load is the long-run offered load in
// packets per source per cycle; meanBurst is the mean message length in
// packets (>= 1). The idle-period start probability q is derived from the
// renewal equation load = mean / (mean + (1-q)/q).
func NewBursty(n int, load, meanBurst float64, src *rng.Source) (*Bursty, error) {
	if n <= 0 {
		return nil, fmt.Errorf("traffic: destinations must be positive, got %d", n)
	}
	if load < 0 || load > 1 {
		return nil, fmt.Errorf("traffic: load %v out of [0,1]", load)
	}
	if meanBurst < 1 {
		return nil, fmt.Errorf("traffic: mean burst %v must be >= 1", meanBurst)
	}
	b := &Bursty{
		n:         n,
		load:      load,
		meanBurst: meanBurst,
		src:       src,
		remaining: make([]int, n),
		dest:      make([]int, n),
	}
	if load > 0 {
		b.startP = load / (load + meanBurst*(1-load))
	}
	return b, nil
}

// Generate implements Pattern.
func (b *Bursty) Generate(src int) (int, bool, bool) {
	if src < 0 || src >= len(b.remaining) {
		panic(fmt.Sprintf("traffic: bursty source %d out of range", src))
	}
	if b.remaining[src] > 0 {
		b.remaining[src]--
		return b.dest[src], false, true
	}
	if b.startP == 0 || !b.src.Bool(b.startP) {
		return 0, false, false
	}
	length := b.src.Geometric(1 / b.meanBurst)
	b.remaining[src] = length - 1
	b.dest[src] = b.src.Intn(b.n)
	return b.dest[src], false, true
}

// Load implements Pattern.
func (b *Bursty) Load() float64 { return b.load }

// String implements Pattern.
func (b *Bursty) String() string {
	return fmt.Sprintf("bursty(load=%.3g, mean burst %.3g)", b.load, b.meanBurst)
}

// Src exposes the pattern's random stream for the checkpoint codec.
func (b *Bursty) Src() *rng.Source { return b.src }

// BurstState returns copies of the per-input burst registers — packets
// remaining in each source's current burst and its destination — for
// the checkpoint codec.
func (b *Bursty) BurstState() (remaining, dest []int) {
	return append([]int(nil), b.remaining...), append([]int(nil), b.dest...)
}

// SetBurstState overwrites the per-input burst registers with
// previously captured ones, validating lengths and ranges against the
// pattern's geometry.
func (b *Bursty) SetBurstState(remaining, dest []int) error {
	if len(remaining) != len(b.remaining) || len(dest) != len(b.dest) {
		return fmt.Errorf("traffic: burst state for %d inputs loaded into %d-input pattern",
			len(remaining), len(b.remaining))
	}
	for i := range remaining {
		if remaining[i] < 0 {
			return fmt.Errorf("traffic: negative burst remainder %d", remaining[i])
		}
		if dest[i] < 0 || dest[i] >= b.n {
			return fmt.Errorf("traffic: burst destination %d out of range [0, %d)", dest[i], b.n)
		}
	}
	copy(b.remaining, remaining)
	copy(b.dest, dest)
	return nil
}
