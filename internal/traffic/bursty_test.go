package traffic

import (
	"math"
	"testing"

	"damq/internal/rng"
)

func TestBurstyValidation(t *testing.T) {
	if _, err := NewBursty(0, 0.5, 4, rng.New(1)); err == nil {
		t.Error("accepted zero destinations")
	}
	if _, err := NewBursty(4, 1.5, 4, rng.New(1)); err == nil {
		t.Error("accepted load > 1")
	}
	if _, err := NewBursty(4, 0.5, 0.5, rng.New(1)); err == nil {
		t.Error("accepted mean burst < 1")
	}
}

func TestBurstyOfferedLoadMatches(t *testing.T) {
	for _, load := range []float64{0.2, 0.5, 0.8} {
		b, err := NewBursty(64, load, 4, rng.New(2))
		if err != nil {
			t.Fatal(err)
		}
		const cycles = 200000
		born := 0
		for c := 0; c < cycles; c++ {
			if _, _, ok := b.Generate(0); ok {
				born++
			}
		}
		rate := float64(born) / cycles
		if math.Abs(rate-load) > 0.02 {
			t.Fatalf("load %v: measured rate %v", load, rate)
		}
	}
}

func TestBurstyPacketsShareDestinationWithinMessage(t *testing.T) {
	b, err := NewBursty(64, 0.9, 8, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	// Collect runs of consecutive packets; within a run started together
	// the destination must be constant until the message ends. We detect
	// message boundaries via the internal counter.
	prevDest := -1
	inMsg := false
	for c := 0; c < 10000; c++ {
		before := b.remaining[0]
		dest, _, ok := b.Generate(0)
		if !ok {
			inMsg = false
			continue
		}
		if inMsg && before > 0 && dest != prevDest {
			t.Fatalf("destination changed mid-message: %d -> %d", prevDest, dest)
		}
		prevDest = dest
		inMsg = b.remaining[0] > 0
	}
}

func TestBurstyMeanBurstLength(t *testing.T) {
	b, err := NewBursty(64, 0.5, 4, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	// Measure mean message length by counting maximal generation runs of
	// the same message (remaining hits 0 at message end).
	lengths := []int{}
	cur := 0
	for c := 0; c < 300000; c++ {
		_, _, ok := b.Generate(0)
		if ok {
			cur++
			if b.remaining[0] == 0 {
				lengths = append(lengths, cur)
				cur = 0
			}
		}
	}
	if len(lengths) == 0 {
		t.Fatal("no messages completed")
	}
	sum := 0
	for _, l := range lengths {
		sum += l
	}
	mean := float64(sum) / float64(len(lengths))
	if math.Abs(mean-4) > 0.2 {
		t.Fatalf("mean burst length %v, want ~4", mean)
	}
}

func TestBurstyZeroLoad(t *testing.T) {
	b, err := NewBursty(4, 0, 4, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 1000; c++ {
		if _, _, ok := b.Generate(0); ok {
			t.Fatal("zero load generated a packet")
		}
	}
	if b.String() == "" {
		t.Fatal("empty description")
	}
}
