package traffic

import (
	"testing"

	"damq/internal/rng"
)

func TestLoadAccessors(t *testing.T) {
	h, _ := NewHotSpot(8, 0.3, 0.05, 0, rng.New(1))
	if h.Load() != 0.3 {
		t.Fatalf("hotspot Load = %v", h.Load())
	}
	p, _ := NewPermutation(Identity(4), 0.7, rng.New(1))
	if p.Load() != 0.7 {
		t.Fatalf("permutation Load = %v", p.Load())
	}
	b, _ := NewBursty(8, 0.4, 2, rng.New(1))
	if b.Load() != 0.4 {
		t.Fatalf("bursty Load = %v", b.Load())
	}
}

func TestPermutationZeroLoad(t *testing.T) {
	p, _ := NewPermutation(Identity(4), 0, rng.New(1))
	for i := 0; i < 100; i++ {
		if _, _, ok := p.Generate(0); ok {
			t.Fatal("zero-load permutation generated")
		}
	}
}

func TestBurstySourceOutOfRangePanics(t *testing.T) {
	b, _ := NewBursty(4, 0.5, 2, rng.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Generate(9)
}
