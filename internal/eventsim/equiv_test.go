package eventsim

// TestAsyncEngineMatchesLegacy is the golden equivalence gate for the
// typed calendar-queue rewrite: the new engine must not merely be
// statistically close to the seed engine, it must execute the *same
// simulation* — every packet delivered at the same cycle, in the same
// order, with the same aggregate curve points. Any divergence in event
// ordering, RNG call sequence, or cut-through bookkeeping shows up as a
// first-divergence failure here.

import (
	"fmt"
	"testing"

	"damq/internal/buffer"
	"damq/internal/packet"
)

// delivery is one sink-side observation: everything that identifies a
// packet plus the cycle its tail arrived. Compared by value, so it does
// not matter that the two engines hand different pointers to onDeliver.
type delivery struct {
	ID           uint64
	Source, Dest int
	Bytes        int
	Born, At     int64
}

func equivConfigs() []Config {
	base := Config{Capacity: 8, Warmup: 1_000, Measure: 5_000}
	var cfgs []Config
	// The E9 sweep's corners: both buffer kinds, fixed and variable
	// lengths, below and at saturation.
	for _, kind := range []buffer.Kind{buffer.FIFO, buffer.DAMQ} {
		for _, load := range []float64{0.5, 1.0} {
			for _, bytes := range [][2]int{{8, 8}, {1, 32}} {
				c := base
				c.BufferKind = kind
				c.Load = load
				c.MinBytes, c.MaxBytes = bytes[0], bytes[1]
				cfgs = append(cfgs, c)
			}
		}
	}
	// Hot-spot traffic and a narrow radix-2 network round out coverage.
	hot := base
	hot.BufferKind = buffer.DAMQ
	hot.Load = 0.6
	hot.HotFraction = 0.1
	hot.HotDest = 13
	cfgs = append(cfgs, hot)
	narrow := base
	narrow.BufferKind = buffer.DAMQ
	narrow.Radix = 2
	narrow.Inputs = 16
	narrow.Load = 0.8
	narrow.MinBytes, narrow.MaxBytes = 1, 32
	cfgs = append(cfgs, narrow)
	return cfgs
}

func describeCfg(c Config) string {
	name := fmt.Sprintf("%v_load%.1f_b%d-%d_seed%d",
		c.BufferKind, c.Load, c.MinBytes, c.MaxBytes, c.Seed)
	if c.HotFraction > 0 {
		name += "_hot"
	}
	if c.Radix != 0 {
		name += fmt.Sprintf("_r%d", c.Radix)
	}
	return name
}

func TestAsyncEngineMatchesLegacy(t *testing.T) {
	for _, cfg := range equivConfigs() {
		for _, seed := range []uint64{1, 2, 1988} {
			cfg.Seed = seed
			t.Run(describeCfg(cfg), func(t *testing.T) {
				legacy, err := newLegacySim(cfg)
				if err != nil {
					t.Fatal(err)
				}
				var want []delivery
				legacy.onDeliver = func(p *packet.Packet, at int64) {
					want = append(want, delivery{p.ID, p.Source, p.Dest, p.Bytes, p.Born, at})
				}
				wantRes := legacy.Run()

				sim, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				var got []delivery
				sim.onDeliver = func(p *packet.Packet, at int64) {
					got = append(got, delivery{p.ID, p.Source, p.Dest, p.Bytes, p.Born, at})
				}
				gotRes := sim.Run()

				if len(got) != len(want) {
					t.Fatalf("delivery count: typed engine %d, legacy %d", len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("delivery %d diverges:\n  typed : %+v\n  legacy: %+v", i, got[i], want[i])
					}
				}
				if gotRes.Generated != wantRes.Generated || gotRes.Delivered != wantRes.Delivered {
					t.Fatalf("counters diverge: typed gen=%d del=%d, legacy gen=%d del=%d",
						gotRes.Generated, gotRes.Delivered, wantRes.Generated, wantRes.Delivered)
				}
				if gotRes.Latency != wantRes.Latency {
					t.Fatalf("latency summary diverges:\n  typed : %v\n  legacy: %v",
						&gotRes.Latency, &wantRes.Latency)
				}
				if gotRes.LinkUtilization != wantRes.LinkUtilization {
					t.Fatalf("utilization diverges: typed %v, legacy %v",
						gotRes.LinkUtilization, wantRes.LinkUtilization)
				}
			})
		}
	}
}
