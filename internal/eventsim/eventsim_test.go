package eventsim

import (
	"math"
	"testing"

	"damq/internal/buffer"
)

func TestEngineOrdering(t *testing.T) {
	var e Engine
	var order []int
	e.At(10, func() { order = append(order, 2) })
	e.At(5, func() { order = append(order, 1) })
	e.At(10, func() { order = append(order, 3) }) // same time: FIFO
	e.At(20, func() { order = append(order, 4) })
	n := e.RunUntil(15)
	if n != 3 {
		t.Fatalf("executed %d events", n)
	}
	for i, want := range []int{1, 2, 3} {
		if order[i] != want {
			t.Fatalf("order = %v", order)
		}
	}
	if e.Now() != 15 {
		t.Fatalf("now = %d", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
	e.RunUntil(100)
	if len(order) != 4 {
		t.Fatal("remaining event not executed")
	}
}

func TestEngineCascade(t *testing.T) {
	var e Engine
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			e.After(3, tick)
		}
	}
	e.At(0, tick)
	e.RunUntil(100)
	if count != 10 {
		t.Fatalf("count = %d", count)
	}
	if e.Now() != 100 {
		t.Fatalf("now = %d", e.Now())
	}
}

func TestEngineRejectsPast(t *testing.T) {
	var e Engine
	e.At(10, func() {})
	e.RunUntil(10)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling into the past did not panic")
		}
	}()
	e.At(5, func() {})
}

func asyncCfg(kind buffer.Kind, load float64) Config {
	return Config{
		BufferKind: kind,
		Capacity:   4,
		Load:       load,
		Warmup:     5_000,
		Measure:    30_000,
		Seed:       3,
	}
}

func TestNewValidation(t *testing.T) {
	cfg := asyncCfg(buffer.DAMQ, 1.5)
	if _, err := New(cfg); err == nil {
		t.Error("accepted load > 1")
	}
	cfg = asyncCfg(buffer.DAMQ, 0.5)
	cfg.MinBytes, cfg.MaxBytes = 8, 4
	if _, err := New(cfg); err == nil {
		t.Error("accepted max < min bytes")
	}
	cfg = asyncCfg(buffer.DAMQ, 0.5)
	cfg.MaxBytes = 99
	if _, err := New(cfg); err == nil {
		t.Error("accepted oversized packets")
	}
	cfg = asyncCfg(buffer.SAMQ, 0.5)
	cfg.Capacity = 5
	if _, err := New(cfg); err == nil {
		t.Error("accepted SAMQ capacity not divisible by radix")
	}
}

// TestZeroLoadLatencyFloor: an uncontended 3-stage path delivers in
// stages*RouteDelay + Overhead + Bytes cycles.
func TestZeroLoadLatencyFloor(t *testing.T) {
	cfg := asyncCfg(buffer.DAMQ, 0.005)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	if res.Latency.N() == 0 {
		t.Fatal("no packets measured")
	}
	floor := float64(3*4 + 3 + 8) // 23 cycles
	if res.Latency.Min() < floor {
		t.Fatalf("latency below floor: %v < %v", res.Latency.Min(), floor)
	}
	if res.Latency.Mean() > floor+3 {
		t.Fatalf("near-zero-load mean latency %v, want close to %v", res.Latency.Mean(), floor)
	}
}

// TestVCTLatencyLengthIndependent: under cut-through, a 32-byte packet's
// zero-load latency exceeds a 1-byte packet's by only the extra drain
// time (31 cycles), not by 3 hops x 31.
func TestVCTLatencyLengthIndependent(t *testing.T) {
	lat := func(bytes int) float64 {
		cfg := asyncCfg(buffer.DAMQ, 0.005)
		cfg.MinBytes, cfg.MaxBytes = bytes, bytes
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run().Latency.Min()
	}
	short, long := lat(1), lat(32)
	if got := long - short; got != 31 {
		t.Fatalf("latency delta = %v, want 31 (one drain, not per hop)", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		sim, err := New(asyncCfg(buffer.DAMQ, 0.5))
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run()
	}
	a, b := run(), run()
	if a.Delivered != b.Delivered || a.Latency.Mean() != b.Latency.Mean() {
		t.Fatal("same seed, different results")
	}
}

// TestThroughputTracksOfferBelowSaturation.
func TestThroughputTracksOfferBelowSaturation(t *testing.T) {
	for _, kind := range []buffer.Kind{buffer.FIFO, buffer.DAMQ} {
		sim, err := New(asyncCfg(kind, 0.25))
		if err != nil {
			t.Fatal(err)
		}
		res := sim.Run()
		if math.Abs(res.LinkUtilization-0.25) > 0.02 {
			t.Fatalf("%v: utilization %v at offered 0.25", kind, res.LinkUtilization)
		}
	}
}

// TestAsyncDAMQBeatsFIFO: the paper's closing conjecture, in the
// asynchronous variable-length regime: DAMQ sustains higher utilization
// and lower latency than FIFO at the same storage.
func TestAsyncDAMQBeatsFIFO(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation runs")
	}
	util := map[buffer.Kind]float64{}
	for _, kind := range []buffer.Kind{buffer.FIFO, buffer.DAMQ} {
		cfg := asyncCfg(kind, 1.0)
		cfg.Capacity = 8
		cfg.MinBytes, cfg.MaxBytes = 1, 32
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		util[kind] = sim.Run().LinkUtilization
	}
	if util[buffer.DAMQ] <= util[buffer.FIFO] {
		t.Fatalf("async varlen: DAMQ %v !> FIFO %v", util[buffer.DAMQ], util[buffer.FIFO])
	}
}

// TestConservation: at the end of a run, generated packets are either
// delivered (inside or outside the window), buffered, queued at sources,
// or mid-flight duplicated downstream — the InFlight count must at least
// never exceed total buffering capacity.
func TestBufferBoundsRespected(t *testing.T) {
	cfg := asyncCfg(buffer.DAMQ, 1.0)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	// 3 stages x 16 switches x 4 buffers x 4 slots = 768 slots; each
	// packet is 1 slot here. A packet may appear in two buffers while in
	// flight, but never more.
	if got := sim.InFlight(); got > 768 {
		t.Fatalf("in-flight packets %d exceed total capacity", got)
	}
}

// TestAsyncHotSpotCeiling: the asynchronous model reproduces Table 6's
// structural result too — a 5% hot spot caps utilization near the hot
// link's share regardless of buffer design.
func TestAsyncHotSpotCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation runs")
	}
	for _, kind := range []buffer.Kind{buffer.FIFO, buffer.DAMQ} {
		cfg := asyncCfg(kind, 1.0)
		cfg.HotFraction = 0.05
		cfg.Warmup = 30_000
		cfg.Measure = 60_000
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		util := sim.Run().LinkUtilization
		// The hot link receives ~4.15x its capacity of offered traffic,
		// so delivered utilization collapses toward ~0.24; asynchrony
		// loosens the bound a little but it must sit far below the
		// uniform-traffic saturation.
		if util > 0.40 {
			t.Errorf("%v: hot-spot utilization %v did not collapse", kind, util)
		}
	}
}

func TestAsyncHotSpotValidation(t *testing.T) {
	cfg := asyncCfg(buffer.DAMQ, 0.5)
	cfg.HotFraction = 1.5
	if _, err := New(cfg); err == nil {
		t.Error("accepted hot fraction > 1")
	}
	cfg.HotFraction = 0.05
	cfg.HotDest = 999
	if _, err := New(cfg); err == nil {
		t.Error("accepted out-of-range hot destination")
	}
}

func TestRadix2Async(t *testing.T) {
	cfg := asyncCfg(buffer.DAMQ, 0.01)
	cfg.Radix = 2
	cfg.Inputs = 16 // 4 stages
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	floor := float64(4*4 + 3 + 8)
	if res.Latency.N() == 0 || res.Latency.Min() < floor {
		t.Fatalf("radix-2 latency floor violated: %v < %v", res.Latency.Min(), floor)
	}
}
