package eventsim

import (
	"math"
	"sort"
	"testing"

	"damq/internal/buffer"
	"damq/internal/rng"
)

// drain pops events at or before limit, appending their a-field markers
// to *order, and returns how many it executed.
func drain(e *Engine, limit int64, order *[]int) int {
	n := 0
	for {
		ev, ok := e.PopUntil(limit)
		if !ok {
			return n
		}
		*order = append(*order, int(ev.a))
		n++
	}
}

func TestEngineOrdering(t *testing.T) {
	var e Engine
	var order []int
	e.At(10, Event{a: 2})
	e.At(5, Event{a: 1})
	e.At(10, Event{a: 3}) // same time: FIFO
	e.At(20, Event{a: 4})
	n := drain(&e, 15, &order)
	if n != 3 {
		t.Fatalf("executed %d events", n)
	}
	for i, want := range []int{1, 2, 3} {
		if order[i] != want {
			t.Fatalf("order = %v", order)
		}
	}
	if e.Now() != 15 {
		t.Fatalf("now = %d", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
	drain(&e, 100, &order)
	if len(order) != 4 {
		t.Fatal("remaining event not executed")
	}
}

func TestEngineCascade(t *testing.T) {
	var e Engine
	count := 0
	e.At(0, Event{})
	for {
		if _, ok := e.PopUntil(100); !ok {
			break
		}
		count++
		if count < 10 {
			e.After(3, Event{})
		}
	}
	if count != 10 {
		t.Fatalf("count = %d", count)
	}
	if e.Now() != 100 {
		t.Fatalf("now = %d", e.Now())
	}
}

func TestEngineRejectsPast(t *testing.T) {
	var e Engine
	e.At(10, Event{})
	e.PopUntil(10)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling into the past did not panic")
		}
	}()
	e.At(5, Event{})
}

// TestEngineSameTimestampFIFO is the scheduler's ordering property test:
// a random event storm with heavy timestamp collisions must execute in
// exactly the order a stable sort by time would give — i.e. same-time
// events run in scheduling order, whatever the heap does internally.
func TestEngineSameTimestampFIFO(t *testing.T) {
	src := rng.New(42)
	var e Engine
	const n = 5000
	type ref struct {
		at  int64
		idx int
	}
	scheduled := make([]ref, 0, n)
	for i := 0; i < n; i++ {
		at := int64(src.Intn(97)) // ~50 collisions per timestamp
		e.At(at, Event{a: int32(i)})
		scheduled = append(scheduled, ref{at, i})
	}
	sort.SliceStable(scheduled, func(i, j int) bool { return scheduled[i].at < scheduled[j].at })
	var order []int
	if got := drain(&e, 1<<40, &order); got != n {
		t.Fatalf("executed %d of %d events", got, n)
	}
	for i, want := range scheduled {
		if order[i] != want.idx {
			t.Fatalf("position %d: got event %d, want %d (time %d)", i, order[i], want.idx, want.at)
		}
	}
}

// TestEngineStormMatchesReference interleaves random schedules and pops
// (exercising the free list's slot reuse mid-run) against a brute-force
// sort-stable reference queue.
func TestEngineStormMatchesReference(t *testing.T) {
	src := rng.New(7)
	var e Engine
	type ref struct {
		at  int64
		seq int
	}
	var pending []ref
	seq := 0
	for op := 0; op < 30000; op++ {
		if src.Intn(5) > 1 || len(pending) == 0 { // push-biased
			at := e.Now() + int64(src.Intn(50))
			e.At(at, Event{a: int32(seq)})
			pending = append(pending, ref{at, seq})
			seq++
			continue
		}
		// Reference pop: earliest (at, seq) wins.
		best := 0
		for i, r := range pending {
			if r.at < pending[best].at || (r.at == pending[best].at && r.seq < pending[best].seq) {
				best = i
			}
		}
		want := pending[best]
		pending = append(pending[:best], pending[best+1:]...)
		ev, ok := e.PopUntil(want.at)
		if !ok {
			t.Fatalf("op %d: engine had no event at or before %d, reference has seq %d", op, want.at, want.seq)
		}
		if int(ev.a) != want.seq || e.Now() != want.at {
			t.Fatalf("op %d: popped event %d at %d, want event %d at %d", op, ev.a, e.Now(), want.seq, want.at)
		}
	}
}

// TestEngineArenaHighWater checks the free list actually recycles: slot
// arena growth must stop at the run's concurrency high-water mark, not
// track the total number of events ever scheduled.
func TestEngineArenaHighWater(t *testing.T) {
	var e Engine
	var order []int
	for round := 0; round < 64; round++ {
		base := e.Now()
		for i := 0; i < 100; i++ {
			e.At(base+int64(i%7), Event{a: int32(i)})
		}
		order = order[:0]
		if got := drain(&e, base+7, &order); got != 100 {
			t.Fatalf("round %d: executed %d of 100", round, got)
		}
	}
	if len(e.slots) > 128 {
		t.Fatalf("arena grew to %d slots for a 100-event working set", len(e.slots))
	}
}

func asyncCfg(kind buffer.Kind, load float64) Config {
	return Config{
		BufferKind: kind,
		Capacity:   4,
		Load:       load,
		Warmup:     5_000,
		Measure:    30_000,
		Seed:       3,
	}
}

func TestNewValidation(t *testing.T) {
	cfg := asyncCfg(buffer.DAMQ, 1.5)
	if _, err := New(cfg); err == nil {
		t.Error("accepted load > 1")
	}
	cfg = asyncCfg(buffer.DAMQ, 0.5)
	cfg.MinBytes, cfg.MaxBytes = 8, 4
	if _, err := New(cfg); err == nil {
		t.Error("accepted max < min bytes")
	}
	cfg = asyncCfg(buffer.DAMQ, 0.5)
	cfg.MaxBytes = 99
	if _, err := New(cfg); err == nil {
		t.Error("accepted oversized packets")
	}
	cfg = asyncCfg(buffer.SAMQ, 0.5)
	cfg.Capacity = 5
	if _, err := New(cfg); err == nil {
		t.Error("accepted SAMQ capacity not divisible by radix")
	}
}

// TestZeroLoadLatencyFloor: an uncontended 3-stage path delivers in
// stages*RouteDelay + Overhead + Bytes cycles.
func TestZeroLoadLatencyFloor(t *testing.T) {
	cfg := asyncCfg(buffer.DAMQ, 0.005)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	if res.Latency.N() == 0 {
		t.Fatal("no packets measured")
	}
	floor := float64(3*4 + 3 + 8) // 23 cycles
	if res.Latency.Min() < floor {
		t.Fatalf("latency below floor: %v < %v", res.Latency.Min(), floor)
	}
	if res.Latency.Mean() > floor+3 {
		t.Fatalf("near-zero-load mean latency %v, want close to %v", res.Latency.Mean(), floor)
	}
}

// TestVCTLatencyLengthIndependent: under cut-through, a 32-byte packet's
// zero-load latency exceeds a 1-byte packet's by only the extra drain
// time (31 cycles), not by 3 hops x 31.
func TestVCTLatencyLengthIndependent(t *testing.T) {
	lat := func(bytes int) float64 {
		cfg := asyncCfg(buffer.DAMQ, 0.005)
		cfg.MinBytes, cfg.MaxBytes = bytes, bytes
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run().Latency.Min()
	}
	short, long := lat(1), lat(32)
	if got := long - short; got != 31 {
		t.Fatalf("latency delta = %v, want 31 (one drain, not per hop)", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		sim, err := New(asyncCfg(buffer.DAMQ, 0.5))
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run()
	}
	a, b := run(), run()
	if a.Delivered != b.Delivered || a.Latency.Mean() != b.Latency.Mean() {
		t.Fatal("same seed, different results")
	}
}

// TestThroughputTracksOfferBelowSaturation.
func TestThroughputTracksOfferBelowSaturation(t *testing.T) {
	for _, kind := range []buffer.Kind{buffer.FIFO, buffer.DAMQ} {
		sim, err := New(asyncCfg(kind, 0.25))
		if err != nil {
			t.Fatal(err)
		}
		res := sim.Run()
		if math.Abs(res.LinkUtilization-0.25) > 0.02 {
			t.Fatalf("%v: utilization %v at offered 0.25", kind, res.LinkUtilization)
		}
	}
}

// TestAsyncDAMQBeatsFIFO: the paper's closing conjecture, in the
// asynchronous variable-length regime: DAMQ sustains higher utilization
// and lower latency than FIFO at the same storage.
func TestAsyncDAMQBeatsFIFO(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation runs")
	}
	util := map[buffer.Kind]float64{}
	for _, kind := range []buffer.Kind{buffer.FIFO, buffer.DAMQ} {
		cfg := asyncCfg(kind, 1.0)
		cfg.Capacity = 8
		cfg.MinBytes, cfg.MaxBytes = 1, 32
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		util[kind] = sim.Run().LinkUtilization
	}
	if util[buffer.DAMQ] <= util[buffer.FIFO] {
		t.Fatalf("async varlen: DAMQ %v !> FIFO %v", util[buffer.DAMQ], util[buffer.FIFO])
	}
}

// TestConservation: at the end of a run, generated packets are either
// delivered (inside or outside the window), buffered, queued at sources,
// or mid-flight duplicated downstream — the InFlight count must at least
// never exceed total buffering capacity.
func TestBufferBoundsRespected(t *testing.T) {
	cfg := asyncCfg(buffer.DAMQ, 1.0)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	// 3 stages x 16 switches x 4 buffers x 4 slots = 768 slots; each
	// packet is 1 slot here. A packet may appear in two buffers while in
	// flight, but never more.
	if got := sim.InFlight(); got > 768 {
		t.Fatalf("in-flight packets %d exceed total capacity", got)
	}
}

// TestAsyncHotSpotCeiling: the asynchronous model reproduces Table 6's
// structural result too — a 5% hot spot caps utilization near the hot
// link's share regardless of buffer design.
func TestAsyncHotSpotCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation runs")
	}
	for _, kind := range []buffer.Kind{buffer.FIFO, buffer.DAMQ} {
		cfg := asyncCfg(kind, 1.0)
		cfg.HotFraction = 0.05
		cfg.Warmup = 30_000
		cfg.Measure = 60_000
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		util := sim.Run().LinkUtilization
		// The hot link receives ~4.15x its capacity of offered traffic,
		// so delivered utilization collapses toward ~0.24; asynchrony
		// loosens the bound a little but it must sit far below the
		// uniform-traffic saturation.
		if util > 0.40 {
			t.Errorf("%v: hot-spot utilization %v did not collapse", kind, util)
		}
	}
}

func TestAsyncHotSpotValidation(t *testing.T) {
	cfg := asyncCfg(buffer.DAMQ, 0.5)
	cfg.HotFraction = 1.5
	if _, err := New(cfg); err == nil {
		t.Error("accepted hot fraction > 1")
	}
	cfg.HotFraction = 0.05
	cfg.HotDest = 999
	if _, err := New(cfg); err == nil {
		t.Error("accepted out-of-range hot destination")
	}
}

func TestRadix2Async(t *testing.T) {
	cfg := asyncCfg(buffer.DAMQ, 0.01)
	cfg.Radix = 2
	cfg.Inputs = 16 // 4 stages
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	floor := float64(4*4 + 3 + 8)
	if res.Latency.N() == 0 || res.Latency.Min() < floor {
		t.Fatalf("radix-2 latency floor violated: %v < %v", res.Latency.Min(), floor)
	}
}
