package eventsim

// Per-event benchmarks for the asynchronous simulator, timed against
// their legacy (seed-engine) twins. BenchmarkAsyncEvent and
// BenchmarkAsyncExtension are in the BENCH_netsim.json regression gate
// at 0 allocs/op; the Legacy pair exists only to regenerate the
// before/after table in EXPERIMENTS.md E9 (run with -bench=Legacy).
//
// All four run sub-saturation (load 0.5): at saturation the source
// backlogs grow without bound, so no engine could hold a steady-state
// allocation plateau there. Below it, the arena, rings, and packet pool
// reach their high-water marks during the untimed warmup and the timed
// region recycles.

import (
	"testing"

	"damq/internal/buffer"
)

// benchCfg is the shared workload: 64-input DAMQ Omega at half load.
func benchCfg(minB, maxB int) Config {
	return Config{
		BufferKind: buffer.DAMQ,
		Capacity:   8,
		Load:       0.5,
		MinBytes:   minB,
		MaxBytes:   maxB,
		Seed:       1988,
	}
}

// benchAsync times the typed engine per executed event.
func benchAsync(b *testing.B, minB, maxB int) {
	sim, err := New(benchCfg(minB, maxB))
	if err != nil {
		b.Fatal(err)
	}
	sim.startSources()
	// Reach steady state before the timer: backlog and pool high-water
	// marks creep for tens of thousands of cycles (extreme values of the
	// queueing random walk), after which event execution recycles
	// through the arena and free lists without allocating.
	sim.runUntil(30_000)
	b.ReportAllocs()
	b.ResetTimer()
	executed := 0
	limit := sim.eng.Now()
	for executed < b.N {
		limit += 256
		executed += sim.runUntil(limit)
	}
}

// benchLegacyAsync times the seed closure-and-container/heap engine on
// the identical workload.
func benchLegacyAsync(b *testing.B, minB, maxB int) {
	sim, err := newLegacySim(benchCfg(minB, maxB))
	if err != nil {
		b.Fatal(err)
	}
	for src := 0; src < sim.cfg.Inputs; src++ {
		sim.scheduleGeneration(src)
	}
	sim.eng.RunUntil(30_000)
	b.ReportAllocs()
	b.ResetTimer()
	executed := 0
	limit := sim.eng.Now()
	for executed < b.N {
		limit += 256
		executed += sim.eng.RunUntil(limit)
	}
}

// BenchmarkAsyncEvent is the fixed-length case (8-byte packets): pure
// event-machinery cost, one op = one executed event.
func BenchmarkAsyncEvent(b *testing.B) { benchAsync(b, 8, 8) }

// BenchmarkAsyncExtension is the variable-length case (1-32 bytes), the
// conclusion's asynchronous extension workload.
func BenchmarkAsyncExtension(b *testing.B) { benchAsync(b, 1, 32) }

// BenchmarkLegacyAsyncEvent is BenchmarkAsyncEvent on the seed engine.
func BenchmarkLegacyAsyncEvent(b *testing.B) { benchLegacyAsync(b, 8, 8) }

// BenchmarkLegacyAsyncExtension is BenchmarkAsyncExtension on the seed
// engine.
func BenchmarkLegacyAsyncExtension(b *testing.B) { benchLegacyAsync(b, 1, 32) }
