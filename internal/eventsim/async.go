package eventsim

import (
	"fmt"

	"damq/internal/buffer"
	"damq/internal/omega"
	"damq/internal/packet"
	"damq/internal/pktq"
	"damq/internal/rng"
	"damq/internal/stats"
)

// Config parameterizes an asynchronous Omega-network simulation.
type Config struct {
	Radix      int // default 4
	Inputs     int // default 64
	BufferKind buffer.Kind
	Capacity   int // slots per input buffer, default 4

	// RouteDelay is the idle-path turn-around per switch in cycles
	// (Table 1: 4). Overhead is the per-packet framing on a link in
	// cycles (start bit + header + length: 3).
	RouteDelay int64
	Overhead   int64

	// MinBytes/MaxBytes bound the uniform payload-size distribution
	// (default 8..8, one slot). Slots per packet = ceil(bytes/8).
	MinBytes, MaxBytes int

	// Load is the offered load as a fraction of link capacity: each
	// source's long-run transmitted-cycles fraction. Sources are
	// renewal processes with geometric interarrivals.
	Load float64

	// HotFraction re-addresses that fraction of packets to HotDest
	// (0 = uniform destinations), mirroring netsim's hot-spot pattern.
	HotFraction float64
	HotDest     int

	// Warmup and Measure are simulation spans in cycles.
	Warmup  int64
	Measure int64
	Seed    uint64
}

func (c Config) withDefaults() Config {
	if c.Radix == 0 {
		c.Radix = 4
	}
	if c.Inputs == 0 {
		c.Inputs = 64
	}
	if c.Capacity == 0 {
		c.Capacity = 4
	}
	if c.RouteDelay == 0 {
		c.RouteDelay = 4
	}
	if c.Overhead == 0 {
		c.Overhead = 3
	}
	if c.MinBytes == 0 {
		c.MinBytes = 8
	}
	if c.MaxBytes == 0 {
		c.MaxBytes = c.MinBytes
	}
	if c.Warmup == 0 {
		c.Warmup = 20_000
	}
	if c.Measure == 0 {
		c.Measure = 100_000
	}
	return c
}

// Result aggregates an asynchronous run.
type Result struct {
	Config    Config
	Generated int64
	Delivered int64 // deliveries inside the measurement window
	// Latency is generation -> tail-at-sink, in cycles, for packets born
	// inside the window.
	Latency stats.Summary
	// LinkUtilization is delivered payload+overhead cycles per sink per
	// measured cycle — the async analogue of delivered throughput.
	LinkUtilization float64
}

// Sim is one asynchronous network instance.
type Sim struct {
	cfg Config
	top *omega.Topology
	eng Engine

	// Per stage, per switch, per port state.
	bufs         [][][]buffer.Buffer // [stage][switch][input]
	outBusyUntil [][][]int64         // [stage][switch][output]
	readCount    [][][]int           // concurrent reads per input buffer
	transmitting [][][]bool          // per switch, flat [in*radix+out]: pairs mid-transmission
	rr           [][]int             // per-switch rotating fairness offset

	srcQ         []pktq.Queue // per-source injection backlog (ring, shrink-on-drain)
	srcBusyUntil []int64

	gens  []*rng.Source // per-source generation streams
	sizes *rng.Source
	alloc packet.Alloc

	// probe is the reusable admission-probe scratch: CanAccept takes a
	// routed copy of the candidate packet, and handing every probe its
	// own heap copy (as the seed code did) allocated once per admission
	// check.
	probe packet.Packet

	measureStart, measureEnd int64
	res                      *Result
	busyCycles               int64 // link cycles delivered at sinks in window

	// onDeliver, when non-nil, observes every delivery as it happens.
	// The engine-equivalence tests use it to pin the typed engine's
	// per-packet delivery times and order against the seed engine;
	// production runs leave it nil.
	onDeliver func(p *packet.Packet, at int64)
}

// New validates and builds the simulation.
func New(cfg Config) (*Sim, error) {
	cfg = cfg.withDefaults()
	top, err := omega.New(cfg.Radix, cfg.Inputs)
	if err != nil {
		return nil, err
	}
	if cfg.Load < 0 || cfg.Load > 1 {
		return nil, fmt.Errorf("eventsim: load %v out of [0,1]", cfg.Load)
	}
	if cfg.MinBytes < 1 || cfg.MaxBytes < cfg.MinBytes || cfg.MaxBytes > 32 {
		return nil, fmt.Errorf("eventsim: payload bounds %d..%d invalid", cfg.MinBytes, cfg.MaxBytes)
	}
	if cfg.HotFraction < 0 || cfg.HotFraction > 1 {
		return nil, fmt.Errorf("eventsim: hot fraction %v out of [0,1]", cfg.HotFraction)
	}
	if cfg.HotFraction > 0 && (cfg.HotDest < 0 || cfg.HotDest >= cfg.Inputs) {
		return nil, fmt.Errorf("eventsim: hot destination %d out of range", cfg.HotDest)
	}
	s := &Sim{cfg: cfg, top: top}
	master := rng.New(cfg.Seed)
	s.sizes = master.Split()
	for i := 0; i < cfg.Inputs; i++ {
		s.gens = append(s.gens, master.Split())
	}

	for st := 0; st < top.Stages(); st++ {
		var bufRow [][]buffer.Buffer
		var busyRow [][]int64
		var readRow [][]int
		var txRow [][]bool
		for sw := 0; sw < top.SwitchesPerStage(); sw++ {
			var bs []buffer.Buffer
			for in := 0; in < cfg.Radix; in++ {
				b, err := buffer.New(buffer.Config{
					Kind:       cfg.BufferKind,
					NumOutputs: cfg.Radix,
					Capacity:   cfg.Capacity,
				})
				if err != nil {
					return nil, err
				}
				bs = append(bs, b)
			}
			bufRow = append(bufRow, bs)
			busyRow = append(busyRow, make([]int64, cfg.Radix))
			readRow = append(readRow, make([]int, cfg.Radix))
			txRow = append(txRow, make([]bool, cfg.Radix*cfg.Radix))
		}
		s.bufs = append(s.bufs, bufRow)
		s.outBusyUntil = append(s.outBusyUntil, busyRow)
		s.readCount = append(s.readCount, readRow)
		s.transmitting = append(s.transmitting, txRow)
		s.rr = append(s.rr, make([]int, top.SwitchesPerStage()))
	}
	s.srcQ = make([]pktq.Queue, cfg.Inputs)
	s.srcBusyUntil = make([]int64, cfg.Inputs)
	return s, nil
}

// duration is a packet's link occupancy in cycles.
// damqvet:hotpath
func (s *Sim) duration(p *packet.Packet) int64 {
	return s.cfg.Overhead + int64(p.Bytes)
}

// meanDuration is the expected link occupancy of one packet.
func (s *Sim) meanDuration() float64 {
	return float64(s.cfg.Overhead) + float64(s.cfg.MinBytes+s.cfg.MaxBytes)/2
}

// dispatch routes one typed event to its handler: the switch is the
// whole of what the seed engine used per-event closures for.
// damqvet:hotpath
func (s *Sim) dispatch(ev Event) {
	switch ev.kind {
	case evGenerate:
		s.generate(int(ev.a))
	case evKickSource:
		s.kickSource(int(ev.a))
	case evKickSwitch:
		s.kickSwitch(int(ev.a), int(ev.b))
	case evCompleteTx:
		s.completeTx(int(ev.a), int(ev.b), int(ev.c), int(ev.d))
	case evDeliver:
		s.deliver(ev.p)
	}
}

// runUntil executes events until none remain at or before limit and
// returns the number executed.
// damqvet:hotpath
func (s *Sim) runUntil(limit int64) int {
	n := 0
	for {
		ev, ok := s.eng.PopUntil(limit)
		if !ok {
			return n
		}
		s.dispatch(ev)
		n++
	}
}

// scheduleGeneration plants source src's next packet birth.
// damqvet:hotpath
func (s *Sim) scheduleGeneration(src int) {
	if s.cfg.Load <= 0 {
		return
	}
	p := s.cfg.Load / s.meanDuration()
	gap := int64(s.gens[src].Geometric(p))
	s.eng.After(gap, Event{kind: evGenerate, a: int32(src)})
}

// generate births one packet at source src and rearms the process.
// damqvet:hotpath
func (s *Sim) generate(src int) {
	nbytes := s.sizes.IntnRange(s.cfg.MinBytes, s.cfg.MaxBytes)
	var dest int
	if s.cfg.HotFraction > 0 && s.gens[src].Bool(s.cfg.HotFraction) {
		dest = s.cfg.HotDest
	} else {
		dest = s.gens[src].Intn(s.cfg.Inputs)
	}
	p := s.alloc.New(src, dest, (nbytes+7)/8, s.eng.Now())
	p.Bytes = nbytes
	if s.res != nil && s.eng.Now() >= s.measureStart && s.eng.Now() < s.measureEnd {
		s.res.Generated++
	}
	s.srcQ[src].PushBack(p)
	s.kickSource(src)
	s.scheduleGeneration(src)
}

// kickSource tries to begin injecting source src's head packet.
// damqvet:hotpath
func (s *Sim) kickSource(src int) {
	now := s.eng.Now()
	q := &s.srcQ[src]
	if q.Len() == 0 || s.srcBusyUntil[src] > now {
		return
	}
	p := q.Front()
	swIdx, port := s.top.FirstStageSwitch(src)
	s.probe = *p
	s.probe.OutPort = s.top.RouteDigit(p.Dest, 0)
	if !s.bufs[0][swIdx][port].CanAccept(&s.probe) {
		return // retried when the stage-0 buffer frees slots
	}
	q.PopFront()
	dur := s.duration(p)
	s.srcBusyUntil[src] = now + dur
	p.OutPort = s.probe.OutPort
	p.ReadyAt = now + s.cfg.RouteDelay
	p.Injected = now
	if err := s.bufs[0][swIdx][port].Accept(p); err != nil {
		panic(err)
	}
	s.eng.At(p.ReadyAt, Event{kind: evKickSwitch, a: 0, b: int32(swIdx)})
	s.eng.At(now+dur, Event{kind: evKickSource, a: int32(src)})
}

// kickSwitch runs the grant loop of one switch: every idle output picks
// the longest ready, unblocked queue among buffers with read capacity.
// A rotating offset breaks queue-length ties fairly across inputs.
// damqvet:hotpath
func (s *Sim) kickSwitch(st, sw int) {
	now := s.eng.Now()
	s.rr[st][sw]++
	tx := s.transmitting[st][sw]
	for out := 0; out < s.cfg.Radix; out++ {
		if s.outBusyUntil[st][sw][out] > now {
			continue
		}
		bestIn := -1
		bestLen := 0
		for k := 0; k < s.cfg.Radix; k++ {
			in := (k + s.rr[st][sw]) % s.cfg.Radix
			b := s.bufs[st][sw][in]
			if s.readCount[st][sw][in] >= b.MaxReadsPerCycle() {
				continue
			}
			if tx[in*s.cfg.Radix+out] {
				continue
			}
			p := b.Head(out)
			if p == nil || p.ReadyAt > now {
				continue
			}
			if !s.downstreamAccepts(st, sw, out, p) {
				continue
			}
			if l := b.QueueLen(out); bestIn == -1 || l > bestLen {
				bestIn, bestLen = in, l
			}
		}
		if bestIn >= 0 {
			s.startTx(st, sw, bestIn, out)
		}
	}
}

// downstreamAccepts probes the next hop's buffer (blocking flow control).
// damqvet:hotpath
func (s *Sim) downstreamAccepts(st, sw, out int, p *packet.Packet) bool {
	if st == s.top.Stages()-1 {
		return true // sinks always accept
	}
	nsw, nport := s.top.NextStage(sw, out)
	s.probe = *p
	s.probe.OutPort = s.top.RouteDigit(p.Dest, st+1)
	return s.bufs[st+1][nsw][nport].CanAccept(&s.probe)
}

// startTx begins forwarding the head of (st, sw, in)'s queue for out.
// damqvet:hotpath
func (s *Sim) startTx(st, sw, in, out int) {
	now := s.eng.Now()
	b := s.bufs[st][sw][in]
	p := b.Head(out)
	dur := s.duration(p)
	s.outBusyUntil[st][sw][out] = now + dur
	s.readCount[st][sw][in]++
	s.transmitting[st][sw][in*s.cfg.Radix+out] = true

	last := st == s.top.Stages()-1
	if last {
		s.eng.At(now+dur, Event{kind: evDeliver, p: p})
	} else {
		// Reserve the downstream footprint now; the head becomes
		// routable there after RouteDelay (cut-through: the downstream
		// read chases this write). The downstream gets its own copy of
		// the packet record: the original must stay unmodified in this
		// switch's queue until the tail finishes leaving (completeTx),
		// mirroring the bytes existing in both buffers at once. The copy
		// comes from the allocator's free list and keeps the packet's
		// identity — it is the same packet in flight, not a new birth.
		nsw, nport := s.top.NextStage(sw, out)
		np := s.alloc.Clone(p)
		np.OutPort = s.top.RouteDigit(p.Dest, st+1)
		np.ReadyAt = now + s.cfg.RouteDelay
		if err := s.bufs[st+1][nsw][nport].Accept(np); err != nil {
			panic(fmt.Sprintf("eventsim: downstream accept after probe: %v", err))
		}
		s.eng.At(np.ReadyAt, Event{kind: evKickSwitch, a: int32(st + 1), b: int32(nsw)})
	}

	s.eng.At(now+dur, Event{kind: evCompleteTx, a: int32(st), b: int32(sw), c: int32(in), d: int32(out)})
}

// completeTx finishes a transmission: the packet's slots leave this
// switch, the read port frees, and whoever was waiting gets another look.
// damqvet:hotpath
func (s *Sim) completeTx(st, sw, in, out int) {
	b := s.bufs[st][sw][in]
	p := b.Pop(out)
	if p == nil {
		panic("eventsim: completion found empty queue")
	}
	s.readCount[st][sw][in]--
	s.transmitting[st][sw][in*s.cfg.Radix+out] = false
	// The record's bytes now live only downstream (or were delivered —
	// deliver runs before completeTx at the same timestamp, having been
	// scheduled first). Recycle the retired copy so a generation or hop
	// can reuse it.
	s.alloc.Recycle(p)
	s.kickSwitch(st, sw)
	// Freed slots unblock the upstream sender of this input port.
	line := omega.Line(s.cfg.Radix, sw, in)
	upLine := s.top.InverseShuffle(line)
	if st == 0 {
		s.kickSource(upLine)
	} else {
		usw, _ := omega.SwitchPort(s.cfg.Radix, upLine)
		s.kickSwitch(st-1, usw)
	}
}

// deliver records a packet's tail reaching its memory module.
// damqvet:hotpath
func (s *Sim) deliver(p *packet.Packet) {
	now := s.eng.Now()
	if s.onDeliver != nil {
		s.onDeliver(p, now)
	}
	if s.res == nil || now < s.measureStart || now >= s.measureEnd {
		return
	}
	s.res.Delivered++
	s.busyCycles += s.duration(p)
	if p.Born >= s.measureStart {
		s.res.Latency.Add(float64(now - p.Born))
	}
}

// InFlight counts buffered packets (diagnostics and conservation tests).
func (s *Sim) InFlight() int {
	n := 0
	for _, stage := range s.bufs {
		for _, sw := range stage {
			for _, b := range sw {
				n += b.Len()
			}
		}
	}
	return n
}

// startSources plants every source's first generation event.
func (s *Sim) startSources() {
	for src := 0; src < s.cfg.Inputs; src++ {
		s.scheduleGeneration(src)
	}
}

// Run executes warmup + measurement and returns the results.
func (s *Sim) Run() *Result {
	s.startSources()
	s.measureStart = s.cfg.Warmup
	s.measureEnd = s.cfg.Warmup + s.cfg.Measure
	s.res = &Result{Config: s.cfg}
	s.runUntil(s.measureEnd)
	s.res.LinkUtilization = float64(s.busyCycles) /
		(float64(s.cfg.Inputs) * float64(s.cfg.Measure))
	return s.res
}
