// Package eventsim is a discrete-event simulator for *asynchronous*
// multistage networks with virtual cut-through and variable-length
// packets — the regime the paper's conclusion points at ("variable length
// packets which arrive at the inputs of the switch asynchronously") and
// that the synchronized long-clock model of package netsim cannot
// express. The original authors used Fujimoto's SIMON event-driven
// simulator; this package is our stdlib-only equivalent.
//
// Time is an integer count of link clock cycles (one byte per cycle on a
// link, as on the ComCoBB's 20 MHz byte-serial links). A packet of L
// payload bytes occupies a link for Overhead+L cycles (start bit, header,
// length, payload); a switch turns a packet around in RouteDelay cycles
// when the path is idle (Table 1's four-cycle cut-through), so the
// contention-free network latency of an h-hop path is
// h·RouteDelay + Overhead + L — latency essentially independent of length
// except for the final drain, which is exactly the virtual cut-through
// property of Kermani & Kleinrock.
package eventsim

import "container/heap"

// Engine is a deterministic discrete-event executor.
type Engine struct {
	pq  eventQueue
	seq uint64
	now int64
}

type event struct {
	at  int64
	seq uint64 // tie-break: FIFO among same-time events, for determinism
	fn  func()
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Now returns the current simulation time.
func (e *Engine) Now() int64 { return e.now }

// At schedules fn to run at time t (>= Now). Events at equal times run in
// scheduling order.
func (e *Engine) At(t int64, fn func()) {
	if t < e.now {
		panic("eventsim: scheduling into the past")
	}
	e.seq++
	heap.Push(&e.pq, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay int64, fn func()) { e.At(e.now+delay, fn) }

// RunUntil executes events until the queue is empty or the next event is
// later than limit. It returns the number of events executed.
func (e *Engine) RunUntil(limit int64) int {
	n := 0
	for len(e.pq) > 0 && e.pq[0].at <= limit {
		ev := heap.Pop(&e.pq).(event)
		e.now = ev.at
		ev.fn()
		n++
	}
	if e.now < limit {
		e.now = limit
	}
	return n
}

// Pending reports queued events.
func (e *Engine) Pending() int { return len(e.pq) }
