// Package eventsim is a discrete-event simulator for *asynchronous*
// multistage networks with virtual cut-through and variable-length
// packets — the regime the paper's conclusion points at ("variable length
// packets which arrive at the inputs of the switch asynchronously") and
// that the synchronized long-clock model of package netsim cannot
// express. The original authors used Fujimoto's SIMON event-driven
// simulator; this package is our stdlib-only equivalent.
//
// Time is an integer count of link clock cycles (one byte per cycle on a
// link, as on the ComCoBB's 20 MHz byte-serial links). A packet of L
// payload bytes occupies a link for Overhead+L cycles (start bit, header,
// length, payload); a switch turns a packet around in RouteDelay cycles
// when the path is idle (Table 1's four-cycle cut-through), so the
// contention-free network latency of an h-hop path is
// h·RouteDelay + Overhead + L — latency essentially independent of length
// except for the final drain, which is exactly the virtual cut-through
// property of Kermani & Kleinrock.
//
// The event core is built for throughput: events are small typed records
// (kind + site indices + an optional packet pointer) rather than
// closures, stored in a reusable slot arena and ordered by an indexed
// 4-ary min-heap. The seed implementation — `container/heap` over
// closure-valued events — paid one closure allocation plus one interface
// boxing per scheduled event; the typed engine's steady state allocates
// nothing, and the equivalence tests pin it bit-identical to the seed
// engine's execution order.
package eventsim

import "damq/internal/packet"

// eventKind discriminates the typed event records. Each kind names the
// handler its event is dispatched to; the a..d fields carry the
// handler's site indices.
type eventKind uint8

const (
	// evGenerate births a packet at source a and rearms the renewal
	// process.
	evGenerate eventKind = iota
	// evKickSource retries injecting source a's head packet.
	evKickSource
	// evKickSwitch runs the grant loop of switch (stage a, switch b).
	evKickSwitch
	// evCompleteTx finishes the transmission (stage a, switch b, input c,
	// output d).
	evCompleteTx
	// evDeliver records packet p's tail reaching its memory module.
	evDeliver
)

// Event is one typed event record: a kind plus the site indices and
// packet payload its handler needs. Events carry no func values and
// cross no interface, so scheduling one moves a few words — none of the
// closure or boxing allocations of the seed engine.
type Event struct {
	kind       eventKind
	a, b, c, d int32
	p          *packet.Packet
}

// slot is one arena entry: an event plus its scheduling key.
type slot struct {
	at  int64
	seq uint64
	ev  Event
}

// Engine is a deterministic discrete-event executor: an indexed 4-ary
// min-heap of slot ids over a reusable event arena. The heap orders ids
// by (time, scheduling sequence), so same-time events execute in exactly
// the order they were scheduled — the same total order as the seed
// container/heap engine, which TestAsyncEngineMatchesLegacy pins.
// Popped slots recycle through a free list, so once the arena reaches a
// run's high-water mark, scheduling and dispatch touch only preallocated
// memory: 0 allocs/op steady state (BenchmarkAsyncEvent).
type Engine struct {
	slots []slot  // event arena; index = slot id
	free  []int32 // retired slot ids awaiting reuse
	heap  []int32 // slot ids ordered as a 4-ary min-heap on (at, seq)
	seq   uint64
	now   int64
}

// Now returns the current simulation time.
func (e *Engine) Now() int64 { return e.now }

// Pending reports queued events.
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules ev to run at time t (>= Now). Events at equal times run
// in scheduling order.
// damqvet:hotpath
func (e *Engine) At(t int64, ev Event) {
	if t < e.now {
		panic("eventsim: scheduling into the past")
	}
	e.seq++
	var id int32
	if n := len(e.free); n > 0 {
		id = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.slots = append(e.slots, slot{})
		id = int32(len(e.slots) - 1)
	}
	e.slots[id] = slot{at: t, seq: e.seq, ev: ev}
	e.heap = append(e.heap, id)
	e.siftUp(len(e.heap) - 1)
}

// After schedules ev to run delay cycles from now.
// damqvet:hotpath
func (e *Engine) After(delay int64, ev Event) { e.At(e.now+delay, ev) }

// PopUntil advances time to the earliest pending event and returns it,
// provided that event is due at or before limit. Otherwise it advances
// time to limit and reports false.
// damqvet:hotpath
func (e *Engine) PopUntil(limit int64) (Event, bool) {
	if len(e.heap) == 0 || e.slots[e.heap[0]].at > limit {
		if e.now < limit {
			e.now = limit
		}
		return Event{}, false
	}
	id := e.heap[0]
	s := &e.slots[id]
	e.now = s.at
	ev := s.ev
	s.ev.p = nil // drop the packet reference while the slot idles
	e.free = append(e.free, id)
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap = e.heap[:last]
	if last > 0 {
		e.siftDown(0)
	}
	return ev, true
}

// less orders slot ids by (time, scheduling sequence): the sequence
// tie-break makes the heap's total order deterministic and FIFO among
// same-time events.
// damqvet:hotpath
func (e *Engine) less(a, b int32) bool {
	x, y := &e.slots[a], &e.slots[b]
	if x.at != y.at {
		return x.at < y.at
	}
	return x.seq < y.seq
}

// siftUp restores the heap invariant upward from position i.
// damqvet:hotpath
func (e *Engine) siftUp(i int) {
	id := e.heap[i]
	for i > 0 {
		parent := (i - 1) >> 2
		if !e.less(id, e.heap[parent]) {
			break
		}
		e.heap[i] = e.heap[parent]
		i = parent
	}
	e.heap[i] = id
}

// siftDown restores the heap invariant downward from position i. The
// 4-ary layout halves the binary heap's depth: sift-down does more
// comparisons per level but each level is one cache line of int32 ids,
// and pops dominate a simulation's heap traffic.
// damqvet:hotpath
func (e *Engine) siftDown(i int) {
	id := e.heap[i]
	n := len(e.heap)
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		best := first
		limit := first + 4
		if limit > n {
			limit = n
		}
		for c := first + 1; c < limit; c++ {
			if e.less(e.heap[c], e.heap[best]) {
				best = c
			}
		}
		if !e.less(e.heap[best], id) {
			break
		}
		e.heap[i] = e.heap[best]
		i = best
	}
	e.heap[i] = id
}
