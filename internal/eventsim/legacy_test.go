package eventsim

// This file preserves the seed implementation — the closure-valued
// container/heap engine and the map/append-slice network state — under
// legacy* names, as the behavioural reference the typed calendar-queue
// rewrite is pinned against. TestAsyncEngineMatchesLegacy replays
// identical configurations through both and requires bit-identical
// per-packet deliveries and aggregate results; BenchmarkLegacyAsync*
// time it so the before/after table in EXPERIMENTS.md E9 stays
// regenerable. Test-only on purpose: damqvet ignores _test.go files, so
// the container/heap use and per-event closures here don't trip the
// hot-path rules the production engine is held to.

import (
	"container/heap"
	"fmt"

	"damq/internal/buffer"
	"damq/internal/omega"
	"damq/internal/packet"
	"damq/internal/rng"
)

// legacyEngine is the seed deterministic discrete-event executor.
type legacyEngine struct {
	pq  legacyEventQueue
	seq uint64
	now int64
}

type legacyEvent struct {
	at  int64
	seq uint64 // tie-break: FIFO among same-time events, for determinism
	fn  func()
}

type legacyEventQueue []legacyEvent

func (q legacyEventQueue) Len() int { return len(q) }
func (q legacyEventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q legacyEventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *legacyEventQueue) Push(x any)   { *q = append(*q, x.(legacyEvent)) }
func (q *legacyEventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

func (e *legacyEngine) Now() int64 { return e.now }

func (e *legacyEngine) At(t int64, fn func()) {
	if t < e.now {
		panic("eventsim: scheduling into the past")
	}
	e.seq++
	heap.Push(&e.pq, legacyEvent{at: t, seq: e.seq, fn: fn})
}

func (e *legacyEngine) After(delay int64, fn func()) { e.At(e.now+delay, fn) }

func (e *legacyEngine) RunUntil(limit int64) int {
	n := 0
	for len(e.pq) > 0 && e.pq[0].at <= limit {
		ev := heap.Pop(&e.pq).(legacyEvent)
		e.now = ev.at
		ev.fn()
		n++
	}
	if e.now < limit {
		e.now = limit
	}
	return n
}

// legacySim is the seed asynchronous network simulation: one heap + one
// closure allocation per scheduled event, map-backed transmitting state,
// append-slice source queues, and a fresh heap copy per cut-through hop.
type legacySim struct {
	cfg Config
	top *omega.Topology
	eng legacyEngine

	bufs         [][][]buffer.Buffer
	outBusyUntil [][][]int64
	readCount    [][][]int
	transmitting [][]map[[2]int]bool
	rr           [][]int

	srcQ         [][]*packet.Packet
	srcBusyUntil []int64

	gens  []*rng.Source
	sizes *rng.Source
	alloc packet.Alloc

	measureStart, measureEnd int64
	res                      *Result
	busyCycles               int64

	onDeliver func(p *packet.Packet, at int64)
}

func newLegacySim(cfg Config) (*legacySim, error) {
	cfg = cfg.withDefaults()
	top, err := omega.New(cfg.Radix, cfg.Inputs)
	if err != nil {
		return nil, err
	}
	s := &legacySim{cfg: cfg, top: top}
	master := rng.New(cfg.Seed)
	s.sizes = master.Split()
	for i := 0; i < cfg.Inputs; i++ {
		s.gens = append(s.gens, master.Split())
	}

	for st := 0; st < top.Stages(); st++ {
		var bufRow [][]buffer.Buffer
		var busyRow [][]int64
		var readRow [][]int
		var txRow []map[[2]int]bool
		for sw := 0; sw < top.SwitchesPerStage(); sw++ {
			var bs []buffer.Buffer
			for in := 0; in < cfg.Radix; in++ {
				b, err := buffer.New(buffer.Config{
					Kind:       cfg.BufferKind,
					NumOutputs: cfg.Radix,
					Capacity:   cfg.Capacity,
				})
				if err != nil {
					return nil, err
				}
				bs = append(bs, b)
			}
			bufRow = append(bufRow, bs)
			busyRow = append(busyRow, make([]int64, cfg.Radix))
			readRow = append(readRow, make([]int, cfg.Radix))
			txRow = append(txRow, make(map[[2]int]bool))
		}
		s.bufs = append(s.bufs, bufRow)
		s.outBusyUntil = append(s.outBusyUntil, busyRow)
		s.readCount = append(s.readCount, readRow)
		s.transmitting = append(s.transmitting, txRow)
		s.rr = append(s.rr, make([]int, top.SwitchesPerStage()))
	}
	s.srcQ = make([][]*packet.Packet, cfg.Inputs)
	s.srcBusyUntil = make([]int64, cfg.Inputs)
	return s, nil
}

func (s *legacySim) duration(p *packet.Packet) int64 {
	return s.cfg.Overhead + int64(p.Bytes)
}

func (s *legacySim) meanDuration() float64 {
	return float64(s.cfg.Overhead) + float64(s.cfg.MinBytes+s.cfg.MaxBytes)/2
}

func (s *legacySim) scheduleGeneration(src int) {
	if s.cfg.Load <= 0 {
		return
	}
	p := s.cfg.Load / s.meanDuration()
	gap := int64(s.gens[src].Geometric(p))
	s.eng.After(gap, func() { s.generate(src) })
}

func (s *legacySim) generate(src int) {
	nbytes := s.sizes.IntnRange(s.cfg.MinBytes, s.cfg.MaxBytes)
	var dest int
	if s.cfg.HotFraction > 0 && s.gens[src].Bool(s.cfg.HotFraction) {
		dest = s.cfg.HotDest
	} else {
		dest = s.gens[src].Intn(s.cfg.Inputs)
	}
	p := s.alloc.New(src, dest, (nbytes+7)/8, s.eng.Now())
	p.Bytes = nbytes
	if s.res != nil && s.eng.Now() >= s.measureStart && s.eng.Now() < s.measureEnd {
		s.res.Generated++
	}
	s.srcQ[src] = append(s.srcQ[src], p)
	s.kickSource(src)
	s.scheduleGeneration(src)
}

func (s *legacySim) kickSource(src int) {
	now := s.eng.Now()
	if len(s.srcQ[src]) == 0 || s.srcBusyUntil[src] > now {
		return
	}
	p := s.srcQ[src][0]
	swIdx, port := s.top.FirstStageSwitch(src)
	probe := *p
	probe.OutPort = s.top.RouteDigit(p.Dest, 0)
	if !s.bufs[0][swIdx][port].CanAccept(&probe) {
		return // retried when the stage-0 buffer frees slots
	}
	s.srcQ[src][0] = nil
	s.srcQ[src] = s.srcQ[src][1:]
	dur := s.duration(p)
	s.srcBusyUntil[src] = now + dur
	p.OutPort = probe.OutPort
	p.ReadyAt = now + s.cfg.RouteDelay
	p.Injected = now
	if err := s.bufs[0][swIdx][port].Accept(p); err != nil {
		panic(err)
	}
	s.eng.At(p.ReadyAt, func() { s.kickSwitch(0, swIdx) })
	s.eng.At(now+dur, func() { s.kickSource(src) })
}

func (s *legacySim) kickSwitch(st, sw int) {
	now := s.eng.Now()
	s.rr[st][sw]++
	for out := 0; out < s.cfg.Radix; out++ {
		if s.outBusyUntil[st][sw][out] > now {
			continue
		}
		bestIn := -1
		bestLen := 0
		for k := 0; k < s.cfg.Radix; k++ {
			in := (k + s.rr[st][sw]) % s.cfg.Radix
			b := s.bufs[st][sw][in]
			if s.readCount[st][sw][in] >= b.MaxReadsPerCycle() {
				continue
			}
			if s.transmitting[st][sw][[2]int{in, out}] {
				continue
			}
			p := b.Head(out)
			if p == nil || p.ReadyAt > now {
				continue
			}
			if !s.downstreamAccepts(st, sw, out, p) {
				continue
			}
			if l := b.QueueLen(out); bestIn == -1 || l > bestLen {
				bestIn, bestLen = in, l
			}
		}
		if bestIn >= 0 {
			s.startTx(st, sw, bestIn, out)
		}
	}
}

func (s *legacySim) downstreamAccepts(st, sw, out int, p *packet.Packet) bool {
	if st == s.top.Stages()-1 {
		return true // sinks always accept
	}
	nsw, nport := s.top.NextStage(sw, out)
	probe := *p
	probe.OutPort = s.top.RouteDigit(p.Dest, st+1)
	return s.bufs[st+1][nsw][nport].CanAccept(&probe)
}

func (s *legacySim) startTx(st, sw, in, out int) {
	now := s.eng.Now()
	b := s.bufs[st][sw][in]
	p := b.Head(out)
	dur := s.duration(p)
	s.outBusyUntil[st][sw][out] = now + dur
	s.readCount[st][sw][in]++
	s.transmitting[st][sw][[2]int{in, out}] = true

	last := st == s.top.Stages()-1
	if last {
		s.eng.At(now+dur, func() { s.deliver(p) })
	} else {
		nsw, nport := s.top.NextStage(sw, out)
		np := *p
		np.OutPort = s.top.RouteDigit(p.Dest, st+1)
		np.ReadyAt = now + s.cfg.RouteDelay
		if err := s.bufs[st+1][nsw][nport].Accept(&np); err != nil {
			panic(fmt.Sprintf("eventsim: downstream accept after probe: %v", err))
		}
		s.eng.At(np.ReadyAt, func() { s.kickSwitch(st+1, nsw) })
	}

	s.eng.At(now+dur, func() { s.completeTx(st, sw, in, out) })
}

func (s *legacySim) completeTx(st, sw, in, out int) {
	b := s.bufs[st][sw][in]
	if b.Pop(out) == nil {
		panic("eventsim: completion found empty queue")
	}
	s.readCount[st][sw][in]--
	delete(s.transmitting[st][sw], [2]int{in, out})
	s.kickSwitch(st, sw)
	line := omega.Line(s.cfg.Radix, sw, in)
	upLine := s.top.InverseShuffle(line)
	if st == 0 {
		s.kickSource(upLine)
	} else {
		usw, _ := omega.SwitchPort(s.cfg.Radix, upLine)
		s.kickSwitch(st-1, usw)
	}
}

func (s *legacySim) deliver(p *packet.Packet) {
	now := s.eng.Now()
	if s.onDeliver != nil {
		s.onDeliver(p, now)
	}
	if s.res == nil || now < s.measureStart || now >= s.measureEnd {
		return
	}
	s.res.Delivered++
	s.busyCycles += s.duration(p)
	if p.Born >= s.measureStart {
		s.res.Latency.Add(float64(now - p.Born))
	}
}

func (s *legacySim) Run() *Result {
	for src := 0; src < s.cfg.Inputs; src++ {
		s.scheduleGeneration(src)
	}
	s.measureStart = s.cfg.Warmup
	s.measureEnd = s.cfg.Warmup + s.cfg.Measure
	s.res = &Result{Config: s.cfg}
	s.eng.RunUntil(s.measureEnd)
	s.res.LinkUtilization = float64(s.busyCycles) /
		(float64(s.cfg.Inputs) * float64(s.cfg.Measure))
	return s.res
}
