package omega

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 4); err == nil {
		t.Error("accepted radix 1")
	}
	if _, err := New(4, 2); err == nil {
		t.Error("accepted inputs < radix")
	}
	if _, err := New(4, 48); err == nil {
		t.Error("accepted non-power inputs")
	}
	top, err := New(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if top.Stages() != 3 || top.SwitchesPerStage() != 16 || top.Radix() != 4 || top.Inputs() != 64 {
		t.Fatalf("64-input radix-4: %+v", top)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(4, 63)
}

func TestShuffleIsPermutation(t *testing.T) {
	for _, cfg := range []struct{ k, n int }{{2, 8}, {4, 64}, {2, 64}, {4, 16}} {
		top := MustNew(cfg.k, cfg.n)
		seen := make([]bool, cfg.n)
		for x := 0; x < cfg.n; x++ {
			y := top.Shuffle(x)
			if y < 0 || y >= cfg.n || seen[y] {
				t.Fatalf("k=%d n=%d: shuffle not a permutation at %d->%d", cfg.k, cfg.n, x, y)
			}
			seen[y] = true
		}
	}
}

func TestShuffleRotatesDigits(t *testing.T) {
	// For k=2, N=8: shuffle(x) is a left rotate of 3 bits.
	top := MustNew(2, 8)
	cases := map[int]int{0: 0, 1: 2, 2: 4, 3: 6, 4: 1, 5: 3, 6: 5, 7: 7}
	for x, want := range cases {
		if got := top.Shuffle(x); got != want {
			t.Errorf("shuffle(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestSwitchPortLineRoundTrip(t *testing.T) {
	f := func(sw, port uint8) bool {
		k := 4
		s, p := int(sw)%16, int(port)%k
		line := Line(k, s, p)
		gs, gp := SwitchPort(k, line)
		return gs == s && gp == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRouteDigit(t *testing.T) {
	top := MustNew(4, 64)
	// dest 0b digits: dest = d0*16 + d1*4 + d2 (MSB first).
	dest := 2*16 + 3*4 + 1
	if top.RouteDigit(dest, 0) != 2 || top.RouteDigit(dest, 1) != 3 || top.RouteDigit(dest, 2) != 1 {
		t.Fatalf("digits = %d,%d,%d", top.RouteDigit(dest, 0), top.RouteDigit(dest, 1), top.RouteDigit(dest, 2))
	}
}

// TestAllPathsDeliver is the key topology correctness check: for every
// (src, dest) pair, following the shuffle wiring and digit routing must
// arrive at exactly dest.
func TestAllPathsDeliver(t *testing.T) {
	for _, cfg := range []struct{ k, n int }{{2, 8}, {2, 16}, {4, 16}, {4, 64}} {
		top := MustNew(cfg.k, cfg.n)
		for src := 0; src < cfg.n; src++ {
			for dest := 0; dest < cfg.n; dest++ {
				hops := top.Path(src, dest)
				if len(hops) != top.Stages() {
					t.Fatalf("path %d->%d has %d hops", src, dest, len(hops))
				}
				last := hops[len(hops)-1]
				got := top.LastStageOutput(last.Switch, last.OutPort)
				if got != dest {
					t.Fatalf("k=%d n=%d: path %d->%d delivers to %d (hops %v)",
						cfg.k, cfg.n, src, dest, got, hops)
				}
			}
		}
	}
}

// TestStageWiringConsistent checks that NextStage agrees with Path.
func TestStageWiringConsistent(t *testing.T) {
	top := MustNew(4, 64)
	for src := 0; src < 64; src += 7 {
		for dest := 0; dest < 64; dest += 5 {
			hops := top.Path(src, dest)
			for s := 0; s+1 < len(hops); s++ {
				nsw, nport := top.NextStage(hops[s].Switch, hops[s].OutPort)
				if nsw != hops[s+1].Switch || nport != hops[s+1].InPort {
					t.Fatalf("wiring mismatch at stage %d of %d->%d", s, src, dest)
				}
			}
		}
	}
}

func TestInverseShuffle(t *testing.T) {
	for _, cfg := range []struct{ k, n int }{{2, 8}, {4, 64}, {4, 16}, {8, 64}} {
		top := MustNew(cfg.k, cfg.n)
		for x := 0; x < cfg.n; x++ {
			if got := top.InverseShuffle(top.Shuffle(x)); got != x {
				t.Fatalf("k=%d n=%d: InverseShuffle(Shuffle(%d)) = %d", cfg.k, cfg.n, x, got)
			}
			if got := top.Shuffle(top.InverseShuffle(x)); got != x {
				t.Fatalf("k=%d n=%d: Shuffle(InverseShuffle(%d)) = %d", cfg.k, cfg.n, x, got)
			}
		}
	}
}

// TestUniqueFirstStagePorts: the pre-stage shuffle must spread the 64
// sources across all 64 stage-0 input ports bijectively.
func TestUniqueFirstStagePorts(t *testing.T) {
	top := MustNew(4, 64)
	seen := map[[2]int]bool{}
	for src := 0; src < 64; src++ {
		sw, port := top.FirstStageSwitch(src)
		key := [2]int{sw, port}
		if seen[key] {
			t.Fatalf("two sources share stage-0 port %v", key)
		}
		seen[key] = true
	}
}
