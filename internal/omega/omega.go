// Package omega builds the Omega multistage interconnection network
// (Lawrie 1975) used in the paper's Section 4.2 evaluation: a k-ary
// N-input network with log_k(N) stages of k×k switches, connected by the
// perfect shuffle.
//
// The paper simulates a 64×64 Omega network of 4×4 switches (3 stages of
// 16 switches). This package provides topology construction, the shuffle
// wiring, and destination-digit routing for arbitrary k and N = k^stages.
package omega

import "fmt"

// Topology describes one Omega network instance.
type Topology struct {
	k        int // switch radix (ports per switch)
	stages   int // number of switch stages
	inputs   int // network inputs = k^stages
	switches int // switches per stage = inputs / k
}

// New returns the topology for an inputs-wide Omega network of k×k
// switches. inputs must be a positive power of k.
func New(k, inputs int) (*Topology, error) {
	if k < 2 {
		return nil, fmt.Errorf("omega: radix must be >= 2, got %d", k)
	}
	if inputs < k {
		return nil, fmt.Errorf("omega: inputs %d smaller than radix %d", inputs, k)
	}
	stages := 0
	n := 1
	for n < inputs {
		n *= k
		stages++
	}
	if n != inputs {
		return nil, fmt.Errorf("omega: inputs %d is not a power of radix %d", inputs, k)
	}
	return &Topology{k: k, stages: stages, inputs: inputs, switches: inputs / k}, nil
}

// MustNew is New for known-good parameters.
func MustNew(k, inputs int) *Topology {
	t, err := New(k, inputs)
	if err != nil {
		panic(err)
	}
	return t
}

// Radix returns k, the switch size.
func (t *Topology) Radix() int { return t.k }

// Stages returns the number of switch stages.
func (t *Topology) Stages() int { return t.stages }

// Inputs returns the number of network inputs (= outputs).
func (t *Topology) Inputs() int { return t.inputs }

// SwitchesPerStage returns the number of switches in each stage.
func (t *Topology) SwitchesPerStage() int { return t.switches }

// Shuffle is the k-ary perfect shuffle on line numbers: the wiring pattern
// applied to the N lines entering every stage. Line x maps to
// (x*k + x/(N/k)) mod N — a left rotation of x's base-k digit string.
func (t *Topology) Shuffle(line int) int {
	return (line*t.k)%t.inputs + line/(t.inputs/t.k)
}

// InverseShuffle is the right digit rotation undoing Shuffle: it answers
// "which line of the previous stage boundary feeds this one", which
// event-driven simulators need to wake the correct upstream sender when
// buffer space frees.
func (t *Topology) InverseShuffle(line int) int {
	return line/t.k + (line%t.k)*(t.inputs/t.k)
}

// SwitchPort converts a line number (0..N-1) at a stage boundary into the
// (switch, port) pair it attaches to: consecutive lines fill consecutive
// ports of each switch.
func SwitchPort(k, line int) (sw, port int) { return line / k, line % k }

// Line converts (switch, port) back into a line number.
func Line(k, sw, port int) int { return sw*k + port }

// FirstStageSwitch returns the stage-0 switch and input port fed by
// network input src: the shuffle is applied before the first stage, as in
// Lawrie's definition.
func (t *Topology) FirstStageSwitch(src int) (sw, port int) {
	return SwitchPort(t.k, t.Shuffle(src))
}

// NextStage returns the stage s+1 switch and input port wired to output
// port out of switch sw in stage s. The inter-stage wiring is the same
// perfect shuffle on line numbers.
func (t *Topology) NextStage(sw, out int) (nsw, nport int) {
	return SwitchPort(t.k, t.Shuffle(Line(t.k, sw, out)))
}

// RouteDigit returns the output port a packet for destination dest must
// take at stage (0-based). Omega routing is destination-digit routing:
// stage s consumes the s-th most significant base-k digit of dest.
func (t *Topology) RouteDigit(dest, stage int) int {
	shift := t.stages - 1 - stage
	d := dest
	for i := 0; i < shift; i++ {
		d /= t.k
	}
	return d % t.k
}

// LastStageOutput returns the network output line reached from output
// port out of switch sw in the last stage.
func (t *Topology) LastStageOutput(sw, out int) int {
	return Line(t.k, sw, out)
}

// Path traces the complete route from network input src to network output
// dest: for each stage, the (switch, inPort, outPort) traversed. It is
// used by tests to validate that shuffle wiring plus digit routing indeed
// delivers every packet, and by examples that want to show a route.
func (t *Topology) Path(src, dest int) []Hop {
	hops := make([]Hop, 0, t.stages)
	sw, port := t.FirstStageSwitch(src)
	for s := 0; s < t.stages; s++ {
		out := t.RouteDigit(dest, s)
		hops = append(hops, Hop{Stage: s, Switch: sw, InPort: port, OutPort: out})
		if s < t.stages-1 {
			sw, port = t.NextStage(sw, out)
		}
	}
	return hops
}

// Hop is one switch traversal on a path.
type Hop struct {
	Stage   int
	Switch  int
	InPort  int
	OutPort int
}
