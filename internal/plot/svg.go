// Package plot renders latency-vs-throughput sweeps as standalone SVG
// documents, using only the standard library. It exists so Figure 3 can
// be regenerated as an actual figure, not just an ASCII sketch: the
// omegasim CLI writes the SVG next to its text output.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"damq/internal/stats"
)

// Options controls figure geometry and scaling.
type Options struct {
	Width, Height int     // pixel dimensions (default 720x480)
	LatencyCap    float64 // clip latencies above this (default 300)
	Title         string
	XLabel        string
	YLabel        string
}

func (o Options) withDefaults() Options {
	if o.Width <= 0 {
		o.Width = 720
	}
	if o.Height <= 0 {
		o.Height = 480
	}
	if o.LatencyCap <= 0 {
		o.LatencyCap = 300
	}
	if o.Title == "" {
		o.Title = "Latency vs throughput"
	}
	if o.XLabel == "" {
		o.XLabel = "throughput (packets/input/cycle)"
	}
	if o.YLabel == "" {
		o.YLabel = "latency (clock cycles)"
	}
	return o
}

// palette holds distinguishable stroke colors for up to eight series.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd",
	"#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
}

const margin = 56.0

// SVG renders the series into one SVG document.
func SVG(series []stats.Series, opts Options) string {
	opts = opts.withDefaults()
	w, h := float64(opts.Width), float64(opts.Height)
	plotW, plotH := w-2*margin, h-2*margin

	maxThr := 0.0
	minLat := math.Inf(1)
	for _, s := range series {
		for _, p := range s.Points {
			if p.Throughput > maxThr {
				maxThr = p.Throughput
			}
			if p.Latency < minLat {
				minLat = p.Latency
			}
		}
	}
	if maxThr <= 0 {
		maxThr = 1
	}
	if math.IsInf(minLat, 1) {
		minLat = 0
	}
	maxLat := opts.LatencyCap

	// Round the x-axis up to a tidy 0.1 boundary.
	maxThr = math.Ceil(maxThr*10) / 10

	x := func(thr float64) float64 { return margin + thr/maxThr*plotW }
	y := func(lat float64) float64 {
		if lat > maxLat {
			lat = maxLat
		}
		if lat < minLat {
			lat = minLat
		}
		return margin + plotH - (lat-minLat)/(maxLat-minLat)*plotH
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		opts.Width, opts.Height, opts.Width, opts.Height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)

	// Axes.
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`,
		margin, margin+plotH, margin+plotW, margin+plotH)
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`,
		margin, margin, margin, margin+plotH)

	// X ticks every 0.1.
	for t := 0.0; t <= maxThr+1e-9; t += 0.1 {
		px := x(t)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`,
			px, margin+plotH, px, margin+plotH+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" text-anchor="middle">%.1f</text>`,
			px, margin+plotH+18, t)
	}
	// Y ticks: 5 divisions.
	for i := 0; i <= 5; i++ {
		lat := minLat + (maxLat-minLat)*float64(i)/5
		py := y(lat)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`,
			margin-5, py, margin, py)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" text-anchor="end">%.0f</text>`,
			margin-8, py+4, lat)
	}

	// Labels and title.
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="13" text-anchor="middle">%s</text>`,
		margin+plotW/2, h-10, escape(opts.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%.1f" font-size="13" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`,
		margin+plotH/2, margin+plotH/2, escape(opts.YLabel))
	fmt.Fprintf(&b, `<text x="%.1f" y="24" font-size="15" text-anchor="middle" font-weight="bold">%s</text>`,
		w/2, escape(opts.Title))

	// Series: sort points by throughput for a sane polyline, draw line +
	// markers.
	for si, s := range series {
		color := palette[si%len(palette)]
		pts := append([]stats.Point(nil), s.Points...)
		sort.Slice(pts, func(i, j int) bool { return pts[i].Throughput < pts[j].Throughput })
		var path []string
		for _, p := range pts {
			path = append(path, fmt.Sprintf("%.1f,%.1f", x(p.Throughput), y(p.Latency)))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`,
			strings.Join(path, " "), color)
		for _, p := range pts {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`,
				x(p.Throughput), y(p.Latency), color)
		}
		// Legend entry.
		ly := margin + 16 + float64(si)*16
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2"/>`,
			margin+12, ly, margin+36, ly, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="12">%s</text>`,
			margin+42, ly+4, escape(s.Name))
	}

	b.WriteString(`</svg>`)
	return b.String()
}

// escape makes text safe for SVG.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
