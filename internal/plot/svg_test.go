package plot

import (
	"encoding/xml"
	"strings"
	"testing"

	"damq/internal/stats"
)

func sample() []stats.Series {
	var a, b stats.Series
	a.Name = "FIFO/4"
	b.Name = "DAMQ/4"
	for _, p := range []stats.Point{
		{Offered: 0.2, Throughput: 0.2, Latency: 45},
		{Offered: 0.5, Throughput: 0.5, Latency: 90},
		{Offered: 0.8, Throughput: 0.51, Latency: 5000},
	} {
		a.Add(p)
	}
	for _, p := range []stats.Point{
		{Offered: 0.2, Throughput: 0.2, Latency: 44},
		{Offered: 0.7, Throughput: 0.7, Latency: 120},
	} {
		b.Add(p)
	}
	return []stats.Series{a, b}
}

func TestSVGWellFormedXML(t *testing.T) {
	out := SVG(sample(), Options{Title: "Figure 3 <test> & co"})
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG is not well-formed XML: %v", err)
		}
	}
}

func TestSVGContainsSeries(t *testing.T) {
	out := SVG(sample(), Options{})
	for _, want := range []string{"FIFO/4", "DAMQ/4", "<polyline", "<circle"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// Two polylines, one per series.
	if n := strings.Count(out, "<polyline"); n != 2 {
		t.Fatalf("polylines = %d", n)
	}
}

func TestSVGDefaults(t *testing.T) {
	out := SVG(nil, Options{})
	if !strings.Contains(out, `width="720"`) || !strings.Contains(out, `height="480"`) {
		t.Fatal("default dimensions not applied")
	}
	if !strings.Contains(out, "Latency vs throughput") {
		t.Fatal("default title missing")
	}
}

func TestSVGLatencyClipped(t *testing.T) {
	// The 5000-latency point must be clipped to the cap, i.e. plotted at
	// the top of the plot area (y == margin), not off-canvas.
	out := SVG(sample(), Options{LatencyCap: 300})
	if strings.Contains(out, "cy=\"-") {
		t.Fatal("point drawn above the canvas")
	}
}

func TestEscape(t *testing.T) {
	if escape("a<b>&c") != "a&lt;b&gt;&amp;c" {
		t.Fatalf("escape = %q", escape("a<b>&c"))
	}
}
