// Package cfgerr defines the sentinel validation errors shared by the
// simulator Config types (netsim.Config, sw.Config, comcobb.Config,
// buffer.Config). Every Validate method and parser wraps one of these
// with %w and a package-qualified message, so callers — the facade, the
// CLIs, and tests — classify failures with errors.Is instead of matching
// ad-hoc error strings.
package cfgerr

import "errors"

var (
	// ErrBadKind reports an unknown buffer organization.
	ErrBadKind = errors.New("invalid buffer kind")
	// ErrBadCapacity reports a slot count that is non-positive or not
	// storable by the selected organization (e.g. SAMQ capacity not
	// divisible by the port count).
	ErrBadCapacity = errors.New("invalid capacity")
	// ErrBadPorts reports a non-positive port or output count.
	ErrBadPorts = errors.New("invalid port count")
	// ErrBadRadix reports an unbuildable radix/width combination.
	ErrBadRadix = errors.New("invalid radix or network width")
	// ErrBadLoad reports an offered load outside [0, 1].
	ErrBadLoad = errors.New("load out of range")
	// ErrBadTraffic reports an unknown or inconsistent traffic spec.
	ErrBadTraffic = errors.New("invalid traffic spec")
	// ErrBadPolicy reports an unknown arbitration policy name.
	ErrBadPolicy = errors.New("invalid arbitration policy")
	// ErrBadProtocol reports an unknown flow-control protocol name.
	ErrBadProtocol = errors.New("invalid protocol")
	// ErrBadFaultRate reports a fault-injection rate outside [0, 1].
	ErrBadFaultRate = errors.New("fault rate out of range")
	// ErrBadRetryLimit reports a negative retransmit retry limit or
	// backoff in a fault config.
	ErrBadRetryLimit = errors.New("invalid retry limit")
	// ErrBadWorkers reports an intra-run worker count the network cannot
	// shard to (more workers than switches per stage).
	ErrBadWorkers = errors.New("invalid worker count")
	// ErrBadSharing reports inconsistent buffer-sharing knobs: a sharing
	// parameter (alpha/classes/delay target) out of range or set for a
	// kind whose admission policy does not read it, or a shared-pool
	// request for a statically partitioned kind.
	ErrBadSharing = errors.New("invalid sharing config")
	// ErrBadCheckpoint reports a checkpoint stream that cannot be
	// restored: wrong magic, truncation, a failed CRC, or decoded state
	// that violates a structural invariant. Every decode failure short of
	// a version skew wraps this sentinel; corrupted inputs never panic.
	ErrBadCheckpoint = errors.New("invalid checkpoint")
	// ErrCheckpointVersion reports a checkpoint written by an
	// incompatible codec version — a well-formed stream this build cannot
	// interpret, as opposed to a corrupted one.
	ErrCheckpointVersion = errors.New("unsupported checkpoint version")
)
