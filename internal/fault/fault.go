// Package fault is the deterministic fault-injection engine. The paper's
// DAMQ correctness hangs entirely on the integrity of its hardware linked
// lists (per-slot pointer registers, head/tail registers, free list) and on
// the byte-serial ComCoBB wire protocol; this package supplies the faults
// that stress those structures and the contract the recovery machinery in
// internal/buffer, internal/comcobb, and internal/netsim is tested against.
//
// The determinism contract: every fault decision is a pure function of
// (seed, site, cycle). An Injector holds no mutable state, so fault
// schedules are replayable byte-for-byte regardless of query order, worker
// count, or how often a site is probed. Two runs with the same seed and
// the same site numbering see exactly the same faults; a run with all
// rates zero sees none and consumes no randomness from the simulation's
// own RNG streams (the injector hashes, it does not draw).
//
// Fault taxonomy (Kind):
//
//   - SlotStuck: a buffer slot fails permanently at a per-slot failure
//     cycle drawn geometrically from SlotStuckRate (per slot-cycle). The
//     buffer layer quarantines the slot so capacity shrinks instead of the
//     linked list corrupting.
//   - WireCorrupt: a byte on a chip link is corrupted (one data bit
//     flipped, parity left stale) with probability WireCorruptRate per
//     (link, cycle). The chip layer detects the parity mismatch and NACKs.
//   - LinkTransient: an Omega-network link drops this cycle's traffic
//     with probability LinkTransientRate per (link, cycle).
//   - LinkDead: an Omega-network link fails permanently at a per-link
//     cycle drawn geometrically from LinkDeadRate (per link-cycle).
//
// Site numbering is owned by the consumer (each simulation numbers its own
// buffers and links); the helpers at the bottom pack multi-coordinate
// sites into the uint64 the injector hashes.
package fault

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"damq/internal/cfgerr"
)

// Kind identifies one fault class.
type Kind int

const (
	// SlotStuck is a permanently dead buffer slot.
	SlotStuck Kind = iota
	// WireCorrupt is a corrupted byte on a chip wire.
	WireCorrupt
	// LinkTransient is a network link dropping one cycle's traffic.
	LinkTransient
	// LinkDead is a network link failing permanently.
	LinkDead
)

var kindNames = [...]string{"SlotStuck", "WireCorrupt", "LinkTransient", "LinkDead"}

// String returns the fault kind's name.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Kinds lists every fault kind in declaration order.
func Kinds() []Kind { return []Kind{SlotStuck, WireCorrupt, LinkTransient, LinkDead} }

// ParseKind converts a name like "slotstuck" (any case) to its Kind. The
// error lists every valid name and wraps cfgerr.ErrBadTraffic-style
// sentinel semantics via ErrBadFaultRate's sibling convention: unknown
// kinds wrap cfgerr.ErrBadKind so callers classify with errors.Is,
// mirroring buffer.ParseKind.
func ParseKind(s string) (Kind, error) {
	for i, n := range kindNames {
		if strings.EqualFold(s, n) {
			return Kind(i), nil
		}
	}
	valid := make([]string, len(kindNames))
	for i, n := range kindNames {
		valid[i] = strings.ToLower(n)
	}
	return 0, fmt.Errorf("fault: unknown kind %q (want %s): %w",
		s, strings.Join(valid, "|"), cfgerr.ErrBadKind)
}

// Config describes a fault schedule. The zero value disables everything.
type Config struct {
	// Seed is the fault schedule's own seed, independent of the
	// simulation seed so the same traffic can be replayed under different
	// fault schedules and vice versa. Consumers treat 0 as "derive from
	// the simulation seed".
	Seed uint64
	// SlotStuckRate is the per-slot, per-cycle probability that a buffer
	// slot fails permanently (each slot fails at most once).
	SlotStuckRate float64
	// WireCorruptRate is the per-link, per-cycle probability that a valid
	// byte on a chip wire is corrupted.
	WireCorruptRate float64
	// LinkTransientRate is the per-link, per-cycle probability that a
	// network link drops the packet crossing it this cycle.
	LinkTransientRate float64
	// LinkDeadRate is the per-link, per-cycle probability that a network
	// link fails permanently (each link dies at most once).
	LinkDeadRate float64
	// RetryLimit bounds retransmit attempts after a NACK (chip driver).
	// 0 means no retransmission.
	RetryLimit int
	// RetryBackoff is the idle-cycle base of the retransmit backoff:
	// attempt k waits RetryBackoff << (k-1) cycles before resending.
	// 0 means the consumer's default (DefaultRetryBackoff).
	RetryBackoff int
}

// DefaultRetryBackoff is the retransmit backoff base used when a Config
// leaves RetryBackoff zero: 2 idle cycles, enough for the one-cycle wire
// plus the receiver's one-cycle synchronizer to drain between attempts.
const DefaultRetryBackoff = 2

// Enabled reports whether any fault class can fire.
func (c Config) Enabled() bool {
	return c.SlotStuckRate > 0 || c.WireCorruptRate > 0 ||
		c.LinkTransientRate > 0 || c.LinkDeadRate > 0
}

// Validate checks the config under the repo-wide sentinel-error
// convention: rate errors wrap cfgerr.ErrBadFaultRate, retry errors wrap
// cfgerr.ErrBadRetryLimit.
func (c Config) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"SlotStuckRate", c.SlotStuckRate},
		{"WireCorruptRate", c.WireCorruptRate},
		{"LinkTransientRate", c.LinkTransientRate},
		{"LinkDeadRate", c.LinkDeadRate},
	} {
		if r.v < 0 || r.v > 1 || math.IsNaN(r.v) {
			return fmt.Errorf("fault: %s %v out of [0,1]: %w", r.name, r.v, cfgerr.ErrBadFaultRate)
		}
	}
	if c.RetryLimit < 0 {
		return fmt.Errorf("fault: RetryLimit must be >= 0, got %d: %w", c.RetryLimit, cfgerr.ErrBadRetryLimit)
	}
	if c.RetryBackoff < 0 {
		return fmt.Errorf("fault: RetryBackoff must be >= 0, got %d: %w", c.RetryBackoff, cfgerr.ErrBadRetryLimit)
	}
	return nil
}

// ParseSpec parses the CLIs' -faults flag: comma-separated key=value
// pairs where each key is a fault kind (any case, per ParseKind) mapping
// to its rate, plus "seed=N", "retries=N", and "backoff=N". Examples:
//
//	slotstuck=1e-5,linktransient=1e-3
//	wirecorrupt=0.01,retries=3,seed=7
//
// An empty spec returns the zero (disabled) Config. The result is
// validated before it is returned.
func ParseSpec(spec string) (Config, error) {
	var c Config
	if strings.TrimSpace(spec) == "" {
		return c, nil
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return c, fmt.Errorf("fault: bad spec field %q (want key=value)", field)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch strings.ToLower(key) {
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return c, fmt.Errorf("fault: bad seed %q: %v", val, err)
			}
			c.Seed = n
			continue
		case "retries":
			n, err := strconv.Atoi(val)
			if err != nil {
				return c, fmt.Errorf("fault: bad retries %q: %v", val, err)
			}
			c.RetryLimit = n
			continue
		case "backoff":
			n, err := strconv.Atoi(val)
			if err != nil {
				return c, fmt.Errorf("fault: bad backoff %q: %v", val, err)
			}
			c.RetryBackoff = n
			continue
		}
		kind, err := ParseKind(key)
		if err != nil {
			return c, err
		}
		rate, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return c, fmt.Errorf("fault: bad rate %q for %v: %v", val, kind, err)
		}
		switch kind {
		case SlotStuck:
			c.SlotStuckRate = rate
		case WireCorrupt:
			c.WireCorruptRate = rate
		case LinkTransient:
			c.LinkTransientRate = rate
		case LinkDead:
			c.LinkDeadRate = rate
		}
	}
	if err := c.Validate(); err != nil {
		return c, err
	}
	return c, nil
}

// Injector evaluates a Config's fault schedule. It is immutable after
// construction and safe for concurrent use: every method is a pure
// function of its arguments and the seed.
type Injector struct {
	cfg Config
}

// NewInjector validates cfg and returns its injector.
func NewInjector(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{cfg: cfg}, nil
}

// Config returns the injector's configuration.
func (in *Injector) Config() Config { return in.cfg }

// mix hashes the seed with up to three coordinates through two rounds of
// the SplitMix64 finalizer. Coordinates are pre-whitened with distinct
// odd constants so (site=1, cycle=2) and (site=2, cycle=1) land far
// apart.
func (in *Injector) mix(kind Kind, site uint64, cycle int64) uint64 {
	z := in.cfg.Seed ^
		(uint64(kind)+1)*0x9e3779b97f4a7c15 ^
		site*0xbf58476d1ce4e5b9 ^
		uint64(cycle)*0x94d049bb133111eb
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// u01 maps a hash to a uniform float64 in [0, 1).
func u01(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// firstFailure converts a uniform draw and a per-cycle rate into the
// cycle of the first failure (geometric distribution on {0, 1, 2, ...}),
// or -1 for "never" (rate zero, or the draw maps past the horizon).
func firstFailure(u, rate float64) int64 {
	if rate <= 0 {
		return -1
	}
	if rate >= 1 {
		return 0
	}
	// Inverse CDF of the geometric distribution counting failures before
	// the first success: floor(ln(1-u) / ln(1-rate)).
	k := math.Floor(math.Log1p(-u) / math.Log1p(-rate))
	if k < 0 {
		return 0
	}
	if k > math.MaxInt64/2 {
		return -1
	}
	return int64(k)
}

// SlotFailCycle returns the cycle at which slot `slot` of buffer site
// `site` fails permanently, or -1 if it never fails. A slot whose fail
// cycle is 0 is stuck from power-on.
// damqvet:hotpath
func (in *Injector) SlotFailCycle(site uint64, slot int) int64 {
	return firstFailure(u01(in.mix(SlotStuck, site^uint64(slot)*0xd6e8feb86659fd93, 0)), in.cfg.SlotStuckRate)
}

// LinkDeadCycle returns the cycle at which link `site` fails permanently,
// or -1 if it never does.
func (in *Injector) LinkDeadCycle(site uint64) int64 {
	return firstFailure(u01(in.mix(LinkDead, site, 0)), in.cfg.LinkDeadRate)
}

// LinkDown reports whether link `site` is down at `cycle`: permanently
// dead (at or past its dead cycle) or transiently dropping this cycle.
// damqvet:hotpath
func (in *Injector) LinkDown(site uint64, cycle int64) bool {
	if in.cfg.LinkDeadRate > 0 {
		if dc := in.LinkDeadCycle(site); dc >= 0 && cycle >= dc {
			return true
		}
	}
	if in.cfg.LinkTransientRate > 0 {
		return u01(in.mix(LinkTransient, site, cycle)) < in.cfg.LinkTransientRate
	}
	return false
}

// CorruptWire reports whether the byte on link `site` at `cycle` is
// corrupted, and with which single-bit XOR mask. The mask is never zero
// when ok is true.
// damqvet:hotpath
func (in *Injector) CorruptWire(site uint64, cycle int64) (mask byte, ok bool) {
	if in.cfg.WireCorruptRate <= 0 {
		return 0, false
	}
	h := in.mix(WireCorrupt, site, cycle)
	if u01(h) >= in.cfg.WireCorruptRate {
		return 0, false
	}
	// Reuse the hash's low bits (independent of the high bits u01 used)
	// to pick which of the 8 data wires flips.
	return 1 << (h & 7), true
}

// Site packing ------------------------------------------------------------

// NetLinkSite numbers the Omega-network link leaving output `out` of
// switch `sw` in stage `st` (the last stage's links feed the memory
// modules).
func NetLinkSite(st, sw, out int) uint64 {
	return 1<<40 | uint64(st)<<28 | uint64(sw)<<8 | uint64(out)
}

// BufferSite numbers the input buffer at port `in` of switch `sw` in
// stage `st`.
func BufferSite(st, sw, in int) uint64 {
	return 2<<40 | uint64(st)<<28 | uint64(sw)<<8 | uint64(in)
}

// ChipLinkSite numbers the wire feeding input port `port` of chip `chip`
// (chip numbering is the caller's; standalone chips use 0).
func ChipLinkSite(chip, port int) uint64 {
	return 3<<40 | uint64(chip)<<8 | uint64(port)
}

// Metric names -------------------------------------------------------------
//
// The fault.* instrument names every layer registers when both faults and
// an observer are attached. Defined here so netsim, comcobb, and the
// facade agree on the exported schema.
const (
	// MetricSlotsQuarantined counts buffer slots removed from service.
	MetricSlotsQuarantined = "fault.slots.quarantined"
	// MetricLinkDrops counts packets lost to dead or flapping network
	// links (netsim's faulted-discard class).
	MetricLinkDrops = "fault.net.link_drops"
	// MetricWireCorrupted counts injected wire-byte corruptions.
	MetricWireCorrupted = "fault.wire.corrupted"
	// MetricNACKs counts parity failures NACKed back to the sender.
	MetricNACKs = "fault.wire.nacks"
	// MetricRxDropped counts packets a receiver dropped on parity failure.
	MetricRxDropped = "fault.rx.dropped"
	// MetricRxPoisoned counts packets that were already cutting through
	// when corruption arrived: the damage propagates downstream and only
	// an end-to-end check can catch it.
	MetricRxPoisoned = "fault.rx.poisoned"
	// MetricRetries counts driver retransmissions.
	MetricRetries = "fault.driver.retries"
	// MetricGaveUp counts packets abandoned after the retry budget.
	MetricGaveUp = "fault.driver.gaveup"
	// MetricRetryAttempts is the recovery histogram: attempts needed per
	// eventually-delivered packet (1 = clean first try).
	MetricRetryAttempts = "fault.driver.retry_attempts"
)
