package fault

import (
	"errors"
	"math"
	"strings"
	"testing"

	"damq/internal/cfgerr"
)

func mustInjector(t *testing.T, cfg Config) *Injector {
	t.Helper()
	in, err := NewInjector(cfg)
	if err != nil {
		t.Fatalf("NewInjector(%+v): %v", cfg, err)
	}
	return in
}

// The determinism contract: every fault decision is a pure function of
// (seed, site, cycle), so two injectors with the same config agree on
// every query, regardless of query order.
func TestInjectorDeterministic(t *testing.T) {
	cfg := Config{
		Seed:              42,
		SlotStuckRate:     1e-3,
		WireCorruptRate:   1e-2,
		LinkTransientRate: 5e-3,
		LinkDeadRate:      1e-4,
	}
	a := mustInjector(t, cfg)
	b := mustInjector(t, cfg)

	// Query b in reverse order to prove statelessness.
	type wireQ struct {
		site  uint64
		cycle int64
		mask  byte
		ok    bool
	}
	var fwd []wireQ
	for site := uint64(0); site < 8; site++ {
		for cycle := int64(0); cycle < 200; cycle++ {
			m, ok := a.CorruptWire(site, cycle)
			fwd = append(fwd, wireQ{site, cycle, m, ok})
		}
	}
	for i := len(fwd) - 1; i >= 0; i-- {
		q := fwd[i]
		m, ok := b.CorruptWire(q.site, q.cycle)
		if m != q.mask || ok != q.ok {
			t.Fatalf("CorruptWire(%d,%d) order-dependent: (%#x,%v) vs (%#x,%v)",
				q.site, q.cycle, q.mask, q.ok, m, ok)
		}
	}
	for site := uint64(0); site < 32; site++ {
		if got, want := b.LinkDeadCycle(site), a.LinkDeadCycle(site); got != want {
			t.Fatalf("LinkDeadCycle(%d) = %d vs %d", site, got, want)
		}
		for slot := 0; slot < 8; slot++ {
			if got, want := b.SlotFailCycle(site, slot), a.SlotFailCycle(site, slot); got != want {
				t.Fatalf("SlotFailCycle(%d,%d) = %d vs %d", site, slot, got, want)
			}
		}
		for cycle := int64(0); cycle < 100; cycle++ {
			if got, want := b.LinkDown(site, cycle), a.LinkDown(site, cycle); got != want {
				t.Fatalf("LinkDown(%d,%d) = %v vs %v", site, cycle, got, want)
			}
		}
	}
}

func TestInjectorSeedsDiffer(t *testing.T) {
	a := mustInjector(t, Config{Seed: 1, WireCorruptRate: 0.5})
	b := mustInjector(t, Config{Seed: 2, WireCorruptRate: 0.5})
	same := 0
	const n = 512
	for cycle := int64(0); cycle < n; cycle++ {
		_, okA := a.CorruptWire(7, cycle)
		_, okB := b.CorruptWire(7, cycle)
		if okA == okB {
			same++
		}
	}
	if same == n {
		t.Fatalf("seeds 1 and 2 produced identical corruption schedules over %d cycles", n)
	}
}

func TestZeroRatesNeverFire(t *testing.T) {
	in := mustInjector(t, Config{Seed: 9})
	for site := uint64(0); site < 64; site++ {
		if in.LinkDeadCycle(site) != -1 {
			t.Fatalf("LinkDeadCycle(%d) fired with zero rate", site)
		}
		if in.SlotFailCycle(site, 3) != -1 {
			t.Fatalf("SlotFailCycle(%d,3) fired with zero rate", site)
		}
		for cycle := int64(0); cycle < 64; cycle++ {
			if in.LinkDown(site, cycle) {
				t.Fatalf("LinkDown(%d,%d) fired with zero rate", site, cycle)
			}
			if _, ok := in.CorruptWire(site, cycle); ok {
				t.Fatalf("CorruptWire(%d,%d) fired with zero rate", site, cycle)
			}
		}
	}
}

func TestRateOneFiresImmediately(t *testing.T) {
	in := mustInjector(t, Config{Seed: 3, SlotStuckRate: 1, LinkDeadRate: 1, LinkTransientRate: 1, WireCorruptRate: 1})
	if got := in.SlotFailCycle(5, 2); got != 0 {
		t.Fatalf("SlotFailCycle at rate 1 = %d, want 0", got)
	}
	if got := in.LinkDeadCycle(5); got != 0 {
		t.Fatalf("LinkDeadCycle at rate 1 = %d, want 0", got)
	}
	if !in.LinkDown(5, 0) {
		t.Fatal("LinkDown at rate 1 = false")
	}
	mask, ok := in.CorruptWire(5, 0)
	if !ok || mask == 0 || mask&(mask-1) != 0 {
		t.Fatalf("CorruptWire at rate 1 = (%#x,%v), want single-bit mask", mask, ok)
	}
}

// The permanent-death model is monotone: once LinkDown reports true via
// the dead path it must stay true for all later cycles.
func TestLinkDeadIsPermanent(t *testing.T) {
	in := mustInjector(t, Config{Seed: 11, LinkDeadRate: 0.05})
	for site := uint64(0); site < 64; site++ {
		dc := in.LinkDeadCycle(site)
		if dc < 0 {
			continue
		}
		for _, cycle := range []int64{dc, dc + 1, dc + 17, dc + 1000} {
			if !in.LinkDown(site, cycle) {
				t.Fatalf("site %d dead at %d but LinkDown(%d) = false", site, dc, cycle)
			}
		}
		if dc > 0 && in.LinkDown(site, dc-1) {
			t.Fatalf("site %d dead at %d but already down at %d", site, dc, dc-1)
		}
	}
}

// The geometric schedule should fire at roughly rate * horizon sites over
// a horizon — a loose sanity band, not a statistical test.
func TestGeometricRateSanity(t *testing.T) {
	const (
		rate    = 1e-3
		horizon = 1000
		sites   = 4000
	)
	in := mustInjector(t, Config{Seed: 5, LinkDeadRate: rate})
	fired := 0
	for site := uint64(0); site < sites; site++ {
		if dc := in.LinkDeadCycle(site); dc >= 0 && dc < horizon {
			fired++
		}
	}
	// E[fired] = sites * (1 - (1-rate)^horizon) ~ 2529.
	want := sites * (1 - math.Pow(1-rate, horizon))
	if f := float64(fired); f < want*0.8 || f > want*1.2 {
		t.Fatalf("fired %d of %d sites within %d cycles; expected about %.0f", fired, sites, horizon, want)
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want error
	}{
		{"zero ok", Config{}, nil},
		{"full ok", Config{Seed: 1, SlotStuckRate: 0.1, WireCorruptRate: 1, LinkTransientRate: 0.5, LinkDeadRate: 0, RetryLimit: 3, RetryBackoff: 4}, nil},
		{"negative rate", Config{SlotStuckRate: -0.1}, cfgerr.ErrBadFaultRate},
		{"rate above one", Config{LinkTransientRate: 1.5}, cfgerr.ErrBadFaultRate},
		{"nan rate", Config{WireCorruptRate: math.NaN()}, cfgerr.ErrBadFaultRate},
		{"negative retries", Config{RetryLimit: -1}, cfgerr.ErrBadRetryLimit},
		{"negative backoff", Config{RetryBackoff: -2}, cfgerr.ErrBadRetryLimit},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.want == nil {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Validate() = %v, want errors.Is(%v)", err, tc.want)
			}
		})
	}
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config reports Enabled")
	}
	if (Config{RetryLimit: 5}).Enabled() {
		t.Fatal("retry-only config reports Enabled")
	}
	for _, cfg := range []Config{
		{SlotStuckRate: 1e-9},
		{WireCorruptRate: 1e-9},
		{LinkTransientRate: 1e-9},
		{LinkDeadRate: 1e-9},
	} {
		if !cfg.Enabled() {
			t.Fatalf("%+v not Enabled", cfg)
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range Kinds() {
		for _, s := range []string{k.String(), strings.ToLower(k.String()), strings.ToUpper(k.String())} {
			got, err := ParseKind(s)
			if err != nil || got != k {
				t.Fatalf("ParseKind(%q) = %v, %v; want %v", s, got, err, k)
			}
		}
	}
	_, err := ParseKind("meteor")
	if !errors.Is(err, cfgerr.ErrBadKind) {
		t.Fatalf("ParseKind(meteor) = %v, want errors.Is(ErrBadKind)", err)
	}
	for _, name := range []string{"slotstuck", "wirecorrupt", "linktransient", "linkdead"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("ParseKind error %q does not list %q", err, name)
		}
	}
}

func TestParseSpec(t *testing.T) {
	got, err := ParseSpec("slotstuck=1e-5, LinkTransient=0.001,wirecorrupt=0.01,linkdead=2e-6,seed=7,retries=3,backoff=4")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	want := Config{
		Seed:              7,
		SlotStuckRate:     1e-5,
		WireCorruptRate:   0.01,
		LinkTransientRate: 0.001,
		LinkDeadRate:      2e-6,
		RetryLimit:        3,
		RetryBackoff:      4,
	}
	if got != want {
		t.Fatalf("ParseSpec = %+v, want %+v", got, want)
	}

	if got, err := ParseSpec(""); err != nil || got != (Config{}) {
		t.Fatalf("ParseSpec(\"\") = %+v, %v; want zero config", got, err)
	}
	if _, err := ParseSpec("slotstuck"); err == nil {
		t.Fatal("ParseSpec without '=' succeeded")
	}
	if _, err := ParseSpec("meteor=1"); !errors.Is(err, cfgerr.ErrBadKind) {
		t.Fatalf("ParseSpec(meteor=1) = %v, want ErrBadKind", err)
	}
	if _, err := ParseSpec("slotstuck=2"); !errors.Is(err, cfgerr.ErrBadFaultRate) {
		t.Fatalf("ParseSpec(slotstuck=2) = %v, want ErrBadFaultRate", err)
	}
	if _, err := ParseSpec("retries=-1"); !errors.Is(err, cfgerr.ErrBadRetryLimit) {
		t.Fatalf("ParseSpec(retries=-1) = %v, want ErrBadRetryLimit", err)
	}
	if _, err := ParseSpec("slotstuck=zebra"); err == nil {
		t.Fatal("ParseSpec with non-numeric rate succeeded")
	}
	if _, err := ParseSpec("seed=-3"); err == nil {
		t.Fatal("ParseSpec with negative seed succeeded")
	}
}

func TestCorruptWireMaskSingleBit(t *testing.T) {
	in := mustInjector(t, Config{Seed: 17, WireCorruptRate: 0.3})
	seen := map[byte]bool{}
	for site := uint64(0); site < 16; site++ {
		for cycle := int64(0); cycle < 400; cycle++ {
			mask, ok := in.CorruptWire(site, cycle)
			if !ok {
				if mask != 0 {
					t.Fatalf("CorruptWire(%d,%d) returned mask %#x with ok=false", site, cycle, mask)
				}
				continue
			}
			if mask == 0 || mask&(mask-1) != 0 {
				t.Fatalf("CorruptWire(%d,%d) mask %#x is not a single bit", site, cycle, mask)
			}
			seen[mask] = true
		}
	}
	if len(seen) < 4 {
		t.Fatalf("only %d distinct bit positions flipped; mask selection looks stuck", len(seen))
	}
}

func TestSitePackingDisjoint(t *testing.T) {
	seen := map[uint64]string{}
	add := func(site uint64, what string) {
		t.Helper()
		if prev, dup := seen[site]; dup {
			t.Fatalf("site collision: %s and %s both map to %#x", prev, what, site)
		}
		seen[site] = what
	}
	for st := 0; st < 3; st++ {
		for sw := 0; sw < 16; sw++ {
			for p := 0; p < 4; p++ {
				add(NetLinkSite(st, sw, p), "net link")
				add(BufferSite(st, sw, p), "buffer")
			}
		}
	}
	for chip := 0; chip < 4; chip++ {
		for port := 0; port < 4; port++ {
			add(ChipLinkSite(chip, port), "chip link")
		}
	}
}
