// Package stats provides the statistical machinery used by the simulators:
// streaming summaries (Welford), histograms, batch-means confidence
// intervals, latency-vs-throughput series, and saturation detection for
// reproducing the paper's "saturation throughput" columns.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates a stream of observations with numerically stable
// (Welford) mean and variance. The zero value is ready to use.
type Summary struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// AddN records the same observation value n times.
func (s *Summary) AddN(x float64, n int64) {
	for i := int64(0); i < n; i++ {
		s.Add(x)
	}
}

// Merge folds other into s, as if all of other's observations had been
// added to s directly (Chan et al. parallel variance combination).
func (s *Summary) Merge(other *Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	delta := other.mean - s.mean
	total := s.n + other.n
	s.m2 += other.m2 + delta*delta*float64(s.n)*float64(other.n)/float64(total)
	s.mean += delta * float64(other.n) / float64(total)
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.n = total
}

// N returns the number of observations.
func (s *Summary) N() int64 { return s.n }

// Mean returns the sample mean (0 if empty).
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the minimum observation (0 if empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the maximum observation (0 if empty).
func (s *Summary) Max() float64 { return s.max }

// Variance returns the unbiased sample variance (0 for n < 2).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of an approximate 95% confidence interval
// for the mean, using the normal critical value (observation counts in the
// simulators are large enough that the t correction is negligible).
func (s *Summary) CI95() float64 { return 1.96 * s.StdErr() }

// String formats the summary for human-readable experiment logs.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ±%.2g sd=%.4g min=%.4g max=%.4g",
		s.n, s.mean, s.CI95(), s.StdDev(), s.min, s.max)
}

// Counter is a simple named event counter with a rate helper.
type Counter struct {
	count int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.count++ }

// Apply adds n to the counter.
func (c *Counter) Apply(n int64) { c.count += n }

// Count returns the current value.
func (c *Counter) Count() int64 { return c.count }

// RatePer returns count divided by the given denominator (0 if denom==0).
func (c *Counter) RatePer(denom float64) float64 {
	if denom == 0 {
		return 0
	}
	return float64(c.count) / denom
}

// Histogram is a fixed-width bucket histogram over [0, width*buckets), with
// an overflow bucket for larger values.
type Histogram struct {
	width    float64
	counts   []int64
	overflow int64
	total    int64
	sum      float64
}

// NewHistogram returns a histogram with the given number of buckets each
// covering width units.
func NewHistogram(buckets int, width float64) *Histogram {
	if buckets <= 0 || width <= 0 {
		panic("stats: NewHistogram needs positive buckets and width")
	}
	return &Histogram{width: width, counts: make([]int64, buckets)}
}

// Add records one observation. Negative values clamp into bucket 0.
func (h *Histogram) Add(x float64) {
	h.total++
	h.sum += x
	if x < 0 {
		h.counts[0]++
		return
	}
	i := int(x / h.width)
	if i >= len(h.counts) {
		h.overflow++
		return
	}
	h.counts[i]++
}

// Merge folds other into h bucket by bucket, as if all of other's
// observations had been added to h directly. The combination is exact
// (integer counts, one float sum), so merging per-shard histograms in any
// fixed order reproduces the serial histogram byte for byte. Both
// histograms must share the same bucket count and width.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.total == 0 {
		return
	}
	if len(h.counts) != len(other.counts) || h.width != other.width {
		panic(fmt.Sprintf("stats: merging histogram %dx%v into %dx%v",
			len(other.counts), other.width, len(h.counts), h.width))
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.overflow += other.overflow
	h.total += other.total
	h.sum += other.sum
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 { return h.total }

// Mean returns the exact mean of all added observations.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Quantile returns an approximation of the q-quantile (0<=q<=1) assuming
// observations sit at their bucket midpoints. Overflow observations are
// treated as lying at the overflow boundary.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(h.total))
	if target >= h.total {
		target = h.total - 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum > target {
			return (float64(i) + 0.5) * h.width
		}
	}
	return float64(len(h.counts)) * h.width
}

// Buckets returns a copy of the bucket counts (excluding overflow).
func (h *Histogram) Buckets() []int64 {
	out := make([]int64, len(h.counts))
	copy(out, h.counts)
	return out
}

// Overflow returns the overflow bucket count.
func (h *Histogram) Overflow() int64 { return h.overflow }

// BatchMeans estimates a confidence interval for the mean of a correlated
// stationary sequence (e.g. per-cycle latencies from one simulation run) by
// splitting it into batches and treating batch means as independent.
type BatchMeans struct {
	batchSize int
	current   Summary
	batches   Summary
}

// NewBatchMeans returns an estimator with the given batch size.
func NewBatchMeans(batchSize int) *BatchMeans {
	if batchSize <= 0 {
		panic("stats: batch size must be positive")
	}
	return &BatchMeans{batchSize: batchSize}
}

// Add records one observation, closing a batch when it fills.
func (b *BatchMeans) Add(x float64) {
	b.current.Add(x)
	if b.current.N() == int64(b.batchSize) {
		b.batches.Add(b.current.Mean())
		b.current = Summary{}
	}
}

// Mean returns the mean over completed batches.
func (b *BatchMeans) Mean() float64 { return b.batches.Mean() }

// CI95 returns the 95% CI half-width computed over completed batches.
func (b *BatchMeans) CI95() float64 { return b.batches.CI95() }

// Batches returns the number of completed batches.
func (b *BatchMeans) Batches() int64 { return b.batches.N() }

// Point is one (throughput, latency) measurement on a load sweep.
type Point struct {
	Offered    float64 // offered load, fraction of link capacity
	Throughput float64 // delivered throughput, fraction of link capacity
	Latency    float64 // mean latency, clock cycles
	Discarded  float64 // fraction of generated packets discarded (discarding protocol)
}

// Series is an ordered set of sweep points, used to render Figure-3-style
// latency/throughput curves and to locate saturation.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point, keeping the series sorted by offered load.
func (s *Series) Add(p Point) {
	s.Points = append(s.Points, p)
	sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].Offered < s.Points[j].Offered })
}

// SaturationThroughput estimates the saturation throughput of a series as
// the maximum delivered throughput observed across the sweep. In a blocking
// network the delivered throughput plateaus at saturation while latency
// diverges, so the plateau height is the saturation throughput — the same
// definition Pfister and Norton use for their latency/throughput graphs.
func (s *Series) SaturationThroughput() float64 {
	max := 0.0
	for _, p := range s.Points {
		if p.Throughput > max {
			max = p.Throughput
		}
	}
	return max
}

// LatencyAt returns the latency at the sweep point whose delivered
// throughput is closest to the requested value, interpolating linearly
// between the two bracketing points when possible. ok is false if the
// series is empty.
func (s *Series) LatencyAt(throughput float64) (latency float64, ok bool) {
	if len(s.Points) == 0 {
		return 0, false
	}
	// Points are sorted by offered load; throughput is monotone below
	// saturation. Find bracketing pair by throughput.
	pts := s.Points
	if throughput <= pts[0].Throughput {
		return pts[0].Latency, true
	}
	for i := 1; i < len(pts); i++ {
		a, b := pts[i-1], pts[i]
		if throughput <= b.Throughput && b.Throughput > a.Throughput {
			f := (throughput - a.Throughput) / (b.Throughput - a.Throughput)
			return a.Latency + f*(b.Latency-a.Latency), true
		}
	}
	return pts[len(pts)-1].Latency, true
}

// Mean computes the arithmetic mean of xs (0 if empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// RelErr returns |a-b| / max(|a|,|b|, eps): a symmetric relative error used
// by cross-validation tests (Markov vs Monte-Carlo).
func RelErr(a, b float64) float64 {
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m < 1e-12 {
		return d
	}
	return d / m
}
