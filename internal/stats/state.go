package stats

import "fmt"

// SummaryState is the serializable state of a Summary, exposed for the
// simulator checkpoint codec (DESIGN.md §13). Restoring it and adding
// further observations reproduces the uninterrupted accumulator
// bit-for-bit: Welford's update is a pure function of (state, x).
type SummaryState struct {
	N    int64
	Mean float64
	M2   float64
	Min  float64
	Max  float64
}

// Save captures the accumulator state.
func (s *Summary) Save() SummaryState {
	return SummaryState{N: s.n, Mean: s.mean, M2: s.m2, Min: s.min, Max: s.max}
}

// Load overwrites the accumulator with a previously saved state. A
// negative observation count is structurally impossible and rejected.
func (s *Summary) Load(st SummaryState) error {
	if st.N < 0 {
		return fmt.Errorf("stats: summary with negative count %d", st.N)
	}
	s.n, s.mean, s.m2, s.min, s.max = st.N, st.Mean, st.M2, st.Min, st.Max
	return nil
}

// HistogramState is the serializable state of a Histogram. The bucket
// layout (count and width) is carried so Load can verify it matches the
// histogram it restores into: shapes are derived from the simulation
// config, and a checkpointed histogram from a different shape is corrupt.
type HistogramState struct {
	Width    float64
	Counts   []int64
	Overflow int64
	Total    int64
	Sum      float64
}

// Save captures the histogram state; Counts is a copy.
func (h *Histogram) Save() HistogramState {
	return HistogramState{
		Width:    h.width,
		Counts:   h.Buckets(),
		Overflow: h.overflow,
		Total:    h.total,
		Sum:      h.sum,
	}
}

// Load overwrites the histogram with a previously saved state. The
// stored shape must match the receiver's, and the counts must be
// non-negative and consistent with the stored total.
func (h *Histogram) Load(st HistogramState) error {
	if len(st.Counts) != len(h.counts) || st.Width != h.width {
		return fmt.Errorf("stats: histogram shape mismatch: stored %d×%g, have %d×%g",
			len(st.Counts), st.Width, len(h.counts), h.width)
	}
	var total int64
	for _, c := range st.Counts {
		if c < 0 {
			return fmt.Errorf("stats: histogram with negative bucket count %d", c)
		}
		total += c
	}
	if st.Overflow < 0 || total+st.Overflow != st.Total {
		return fmt.Errorf("stats: histogram total %d does not match bucket sum %d",
			st.Total, total+st.Overflow)
	}
	copy(h.counts, st.Counts)
	h.overflow, h.total, h.sum = st.Overflow, st.Total, st.Sum
	return nil
}
