package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"damq/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if !almostEq(s.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v", s.Mean())
	}
	// Population variance of this classic set is 4; sample variance is 32/7.
	if !almostEq(s.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("variance = %v", s.Variance())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.StdErr() != 0 || s.CI95() != 0 {
		t.Fatal("empty summary should report zeros")
	}
}

func TestSummarySingle(t *testing.T) {
	var s Summary
	s.Add(3.5)
	if s.Mean() != 3.5 || s.Variance() != 0 || s.Min() != 3.5 || s.Max() != 3.5 {
		t.Fatalf("single-element summary wrong: %v", s.String())
	}
}

func TestSummaryAddN(t *testing.T) {
	var a, b Summary
	a.AddN(2.0, 5)
	for i := 0; i < 5; i++ {
		b.Add(2.0)
	}
	if a.N() != b.N() || a.Mean() != b.Mean() {
		t.Fatal("AddN disagrees with repeated Add")
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	f := func(xs []float64, split uint8) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				return true // skip pathological inputs
			}
		}
		if len(xs) == 0 {
			return true
		}
		k := int(split) % len(xs)
		var whole, left, right Summary
		for _, x := range xs {
			whole.Add(x)
		}
		for _, x := range xs[:k] {
			left.Add(x)
		}
		for _, x := range xs[k:] {
			right.Add(x)
		}
		left.Merge(&right)
		return left.N() == whole.N() &&
			almostEq(left.Mean(), whole.Mean(), 1e-6*(1+math.Abs(whole.Mean()))) &&
			almostEq(left.Variance(), whole.Variance(), 1e-4*(1+whole.Variance()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryMergeMinMax(t *testing.T) {
	var a, b Summary
	a.Add(5)
	a.Add(7)
	b.Add(1)
	b.Add(9)
	a.Merge(&b)
	if a.Min() != 1 || a.Max() != 9 || a.N() != 4 {
		t.Fatalf("merge min/max wrong: %v", a.String())
	}
}

func TestSummaryString(t *testing.T) {
	var s Summary
	s.Add(1)
	s.Add(2)
	out := s.String()
	for _, want := range []string{"n=2", "mean=1.5", "min=1", "max=2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("String() = %q missing %q", out, want)
		}
	}
}

func TestHistogramMeanEmpty(t *testing.T) {
	h := NewHistogram(4, 1)
	if h.Mean() != 0 {
		t.Fatal("empty histogram mean should be 0")
	}
}

func TestHistogramQuantileClamps(t *testing.T) {
	h := NewHistogram(4, 1)
	h.Add(0.5)
	h.Add(1.5)
	if q := h.Quantile(-1); q != h.Quantile(0) {
		t.Fatalf("negative q not clamped: %v", q)
	}
	if q := h.Quantile(2); q != h.Quantile(1) {
		t.Fatalf("q>1 not clamped: %v", q)
	}
}

func TestHistogramQuantileAllOverflow(t *testing.T) {
	h := NewHistogram(2, 1)
	h.Add(100)
	// All mass in overflow: quantile reports the overflow boundary.
	if q := h.Quantile(0.5); q != 2 {
		t.Fatalf("overflow quantile = %v, want 2", q)
	}
}

func TestNewBatchMeansPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBatchMeans(0)
}

func TestSummaryMergeEmpty(t *testing.T) {
	var a, b Summary
	a.Add(1)
	a.Add(3)
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 2 || a.Mean() != 2 {
		t.Fatal("merge with empty changed the summary")
	}
	b.Merge(&a) // merging into empty copies
	if b.N() != 2 || b.Mean() != 2 {
		t.Fatal("merge into empty did not copy")
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	src := rng.New(1)
	var small, large Summary
	for i := 0; i < 100; i++ {
		small.Add(src.Float64())
	}
	for i := 0; i < 10000; i++ {
		large.Add(src.Float64())
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI did not shrink: %v vs %v", large.CI95(), small.CI95())
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Inc()
	c.Apply(3)
	if c.Count() != 5 {
		t.Fatalf("count = %d", c.Count())
	}
	if c.RatePer(10) != 0.5 {
		t.Fatalf("rate = %v", c.RatePer(10))
	}
	if c.RatePer(0) != 0 {
		t.Fatal("rate with zero denominator should be 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 1.0)
	for _, x := range []float64{0.5, 1.5, 1.7, 9.9, 100} {
		h.Add(x)
	}
	if h.Total() != 5 {
		t.Fatalf("total = %d", h.Total())
	}
	b := h.Buckets()
	if b[0] != 1 || b[1] != 2 || b[9] != 1 {
		t.Fatalf("buckets = %v", b)
	}
	if h.Overflow() != 1 {
		t.Fatalf("overflow = %d", h.Overflow())
	}
	if !almostEq(h.Mean(), (0.5+1.5+1.7+9.9+100)/5, 1e-12) {
		t.Fatalf("mean = %v", h.Mean())
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	h := NewHistogram(4, 1)
	h.Add(-3)
	if h.Buckets()[0] != 1 {
		t.Fatal("negative value did not clamp to bucket 0")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(100, 1.0)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	med := h.Quantile(0.5)
	if med < 45 || med > 55 {
		t.Fatalf("median = %v", med)
	}
	if q := h.Quantile(0); q > 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := h.Quantile(1); q < 98 {
		t.Fatalf("q1 = %v", q)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram(4, 1)
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}

func TestNewHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(0, 1)
}

func TestBatchMeans(t *testing.T) {
	bm := NewBatchMeans(10)
	src := rng.New(2)
	for i := 0; i < 1000; i++ {
		bm.Add(5 + src.Float64())
	}
	if bm.Batches() != 100 {
		t.Fatalf("batches = %d", bm.Batches())
	}
	if !almostEq(bm.Mean(), 5.5, 0.05) {
		t.Fatalf("mean = %v", bm.Mean())
	}
	if bm.CI95() <= 0 || bm.CI95() > 0.1 {
		t.Fatalf("ci = %v", bm.CI95())
	}
}

func TestSeriesSorted(t *testing.T) {
	var s Series
	s.Add(Point{Offered: 0.5, Latency: 50})
	s.Add(Point{Offered: 0.1, Latency: 40})
	s.Add(Point{Offered: 0.3, Latency: 42})
	if s.Points[0].Offered != 0.1 || s.Points[2].Offered != 0.5 {
		t.Fatalf("series not sorted: %+v", s.Points)
	}
}

func TestSaturationThroughput(t *testing.T) {
	var s Series
	for _, p := range []Point{
		{Offered: 0.2, Throughput: 0.2, Latency: 42},
		{Offered: 0.4, Throughput: 0.4, Latency: 48},
		{Offered: 0.6, Throughput: 0.52, Latency: 90},
		{Offered: 0.8, Throughput: 0.51, Latency: 170},
		{Offered: 1.0, Throughput: 0.51, Latency: 171},
	} {
		s.Add(p)
	}
	if got := s.SaturationThroughput(); got != 0.52 {
		t.Fatalf("saturation = %v", got)
	}
}

func TestLatencyAtInterpolates(t *testing.T) {
	var s Series
	s.Add(Point{Offered: 0.2, Throughput: 0.2, Latency: 40})
	s.Add(Point{Offered: 0.4, Throughput: 0.4, Latency: 60})
	l, ok := s.LatencyAt(0.3)
	if !ok || !almostEq(l, 50, 1e-9) {
		t.Fatalf("LatencyAt(0.3) = %v, %v", l, ok)
	}
	l, _ = s.LatencyAt(0.05)
	if l != 40 {
		t.Fatalf("below-range latency = %v", l)
	}
	l, _ = s.LatencyAt(0.9)
	if l != 60 {
		t.Fatalf("above-range latency = %v", l)
	}
}

func TestLatencyAtEmpty(t *testing.T) {
	var s Series
	if _, ok := s.LatencyAt(0.5); ok {
		t.Fatal("empty series should report !ok")
	}
}

func TestMeanHelper(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean([1,2,3]) != 2")
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(0, 0) != 0 {
		t.Fatal("RelErr(0,0) != 0")
	}
	if !almostEq(RelErr(1.0, 1.1), 0.1/1.1, 1e-12) {
		t.Fatalf("RelErr(1,1.1) = %v", RelErr(1.0, 1.1))
	}
	if RelErr(1, 1) != 0 {
		t.Fatal("RelErr(1,1) != 0")
	}
}
