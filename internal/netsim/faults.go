package netsim

import (
	"fmt"
	"sort"

	"damq/internal/fault"
	"damq/internal/obs"
)

// quarantiner is the capability a buffer organization must expose for
// slot-stuck faults to apply. The dynamically allocated organizations
// (DAMQ, DAFC) implement it on their slot pool; statically partitioned
// and FIFO buffers have no slot pool to degrade, so slot faults skip
// them.
type quarantiner interface {
	QuarantineSlot(int) bool
	Quarantined() int
}

// slotEvent is one precomputed slot failure: at cycle, slot slot of the
// buffer at (stage st, switch si, input in) goes out of service.
type slotEvent struct {
	cycle          int64
	st, si, in, sl int32
}

// netFaults is the simulation's fault state: the injector for per-cycle
// link decisions, the precomputed slot-failure schedule, and the running
// totals. Sim holds nil when faults are off, so the fault-free cycle
// path pays one pointer test.
type netFaults struct {
	cfg       fault.Config
	inj       *fault.Injector
	linkDown  bool // any link fault rate non-zero
	events    []slotEvent
	next      int
	quarSlots int64 // slots scheduled out of service
	m         *netFaultMetrics
}

// netFaultMetrics are the fault.* instruments, registered only when both
// faults and an observer are attached — a faults-off snapshot stays
// byte-identical to pre-fault builds.
type netFaultMetrics struct {
	linkDrops   *obs.Counter
	quarantined *obs.Counter
}

func (f *netFaults) register(o *obs.Observer) {
	if o == nil {
		f.m = nil
		return
	}
	r := o.Registry()
	f.m = &netFaultMetrics{
		linkDrops:   r.Counter(fault.MetricLinkDrops),
		quarantined: r.Counter(fault.MetricSlotsQuarantined),
	}
}

// SetFaults arms deterministic fault injection: transiently or
// permanently dead inter-stage links (traffic on them is counted as
// faulted-discard, never silently lost) and stuck buffer slots
// (quarantined out of the DAMQ/DAFC free lists, shrinking capacity). A
// config with Seed 0 derives the fault seed from the simulation seed, so
// distinct runs see distinct schedules by default while an explicit seed
// replays exactly. Fault decisions are pure functions of (seed, site,
// cycle): the schedule is byte-for-byte replayable at any worker count.
//
// Cold path: call before the first Step. A disabled config detaches.
func (s *Sim) SetFaults(fc fault.Config) error {
	if s.cycle != 0 {
		return fmt.Errorf("netsim: SetFaults after cycle %d; faults must be armed before stepping", s.cycle)
	}
	if err := fc.Validate(); err != nil {
		return err
	}
	if !fc.Enabled() {
		s.flt = nil
		return nil
	}
	if fc.Seed == 0 {
		fc.Seed = s.cfg.Seed + 0x9e3779b97f4a7c15
	}
	inj, err := fault.NewInjector(fc)
	if err != nil {
		return err
	}
	f := &netFaults{
		cfg:      fc,
		inj:      inj,
		linkDown: fc.LinkTransientRate > 0 || fc.LinkDeadRate > 0,
	}
	if fc.SlotStuckRate > 0 {
		f.events = s.buildSlotSchedule(inj)
	}
	s.flt = f
	if s.metrics != nil {
		f.register(s.metrics.observer)
	}
	return nil
}

// buildSlotSchedule draws every slot's failure cycle up front and sorts
// the finite ones into one chronological event list. The site/slot
// numbering is positional, so the schedule is independent of evaluation
// order.
func (s *Sim) buildSlotSchedule(inj *fault.Injector) []slotEvent {
	var events []slotEvent
	for st := range s.stages {
		for si, swc := range s.stages[st] {
			for in := 0; in < swc.Ports(); in++ {
				if _, ok := swc.Buffer(in).(quarantiner); !ok {
					continue
				}
				site := fault.BufferSite(st, si, in)
				for sl := 0; sl < swc.Buffer(in).Capacity(); sl++ {
					c := inj.SlotFailCycle(site, sl)
					if c < 0 {
						continue
					}
					events = append(events, slotEvent{
						cycle: c, st: int32(st), si: int32(si), in: int32(in), sl: int32(sl),
					})
				}
			}
		}
	}
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.cycle != b.cycle {
			return a.cycle < b.cycle
		}
		if a.st != b.st {
			return a.st < b.st
		}
		if a.si != b.si {
			return a.si < b.si
		}
		if a.in != b.in {
			return a.in < b.in
		}
		return a.sl < b.sl
	})
	return events
}

// applyDueSlotFaults quarantines every slot whose failure cycle has
// arrived. Runs at the top of Step; the common case (no event due) is
// one comparison.
func (s *Sim) applyDueSlotFaults() {
	f := s.flt
	for f.next < len(f.events) && f.events[f.next].cycle <= s.cycle {
		ev := f.events[f.next]
		f.next++
		q := s.stages[ev.st][ev.si].Buffer(int(ev.in)).(quarantiner)
		if q.QuarantineSlot(int(ev.sl)) {
			f.quarSlots++
			if f.m != nil {
				f.m.quarantined.Inc()
			}
		}
	}
}

// dropOnFaultedLink reports whether the link leaving (stage, switch, out)
// is down this cycle, counting the drop if so. The link decision is a
// pure function of (seed, site, cycle) — fault.Injector holds no mutable
// state — so concurrent shards may query it; the drop counters are
// shard-local (the fault metrics counter only exists with an observer
// attached, which forces serial stepping).
// damqvet:sharded audited: the fault metrics counter only exists with an observer attached, which forces serial stepping; everything else mutated is shard-local
// damqvet:hotpath
func (sh *shard) dropOnFaultedLink(st, si, out int, measuring bool) bool {
	s := sh.sim
	f := s.flt
	if !f.linkDown || !f.inj.LinkDown(fault.NetLinkSite(st, si, out), s.cycle) {
		return false
	}
	sh.faulted++
	if f.m != nil {
		f.m.linkDrops.Inc()
	}
	if measuring {
		sh.partial.FaultedInNet++
	}
	return true
}

// Faulted reports the total packets dropped on faulted links since the
// simulation started (warmup included) — the all-time counterpart of
// Result.FaultedInNet.
func (s *Sim) Faulted() int64 {
	if s.flt == nil {
		return 0
	}
	var n int64
	for _, sh := range s.shards {
		n += sh.faulted
	}
	return n
}

// QuarantinedSlots reports how many buffer slots the fault schedule has
// taken out of service so far.
func (s *Sim) QuarantinedSlots() int64 {
	if s.flt == nil {
		return 0
	}
	return s.flt.quarSlots
}

// CheckBuffers runs every switch buffer's structural self-check (where
// the organization provides one) and returns the first inconsistency.
// The chaos-soak test calls it periodically: under fault injection the
// linked lists must shrink gracefully, never corrupt.
func (s *Sim) CheckBuffers() error {
	for st := range s.stages {
		for si, swc := range s.stages[st] {
			for in := 0; in < swc.Ports(); in++ {
				c, ok := swc.Buffer(in).(interface{ CheckInvariants() error })
				if !ok {
					continue
				}
				if err := c.CheckInvariants(); err != nil {
					return fmt.Errorf("netsim: stage %d switch %d input %d: %w", st, si, in, err)
				}
			}
		}
	}
	return nil
}
