package netsim

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"damq/internal/arbiter"
	"damq/internal/buffer"
	"damq/internal/cfgerr"
	"damq/internal/sw"
)

// modernShardCases cover every 2026 sharing configuration the sharded
// engine must replay byte-identically: each admission policy per-port
// under both protocols, and the pooled geometry (discarding only — the
// blocking combination is rejected by Validate, pinned below).
func modernShardCases() []struct {
	name string
	cfg  Config
} {
	mk := func(kind buffer.Kind, proto sw.Protocol, shared bool, sh buffer.Sharing) Config {
		return Config{
			BufferKind: kind, Capacity: 4, Policy: arbiter.Smart, Protocol: proto,
			Traffic:      TrafficSpec{Kind: Uniform, Load: 0.6},
			WarmupCycles: 200, MeasureCycles: 1200,
			SharedPool: shared, Sharing: sh,
		}
	}
	return []struct {
		name string
		cfg  Config
	}{
		{"blocking DT", mk(buffer.DT, sw.Blocking, false, buffer.Sharing{})},
		{"discarding DT alpha0.5", mk(buffer.DT, sw.Discarding, false, buffer.Sharing{Alpha: 0.5})},
		{"blocking FB", mk(buffer.FB, sw.Blocking, false, buffer.Sharing{Classes: 2})},
		{"blocking BSHARE", mk(buffer.BSHARE, sw.Blocking, false, buffer.Sharing{DelayTarget: 8})},
		{"discarding DT pooled", mk(buffer.DT, sw.Discarding, true, buffer.Sharing{})},
		{"discarding BSHARE pooled", mk(buffer.BSHARE, sw.Discarding, true, buffer.Sharing{})},
		{"discarding DAMQ pooled", mk(buffer.DAMQ, sw.Discarding, true, buffer.Sharing{})},
	}
}

// TestShardedModernMatchesSerial extends the sharded-equals-serial pin
// to the admission-policy kinds and the shared-pool geometry: clocks,
// per-class state and pool-wide admission must all shard cleanly.
func TestShardedModernMatchesSerial(t *testing.T) {
	for _, tc := range modernShardCases() {
		for _, seed := range []uint64{1, 2, 3, 4, 5} {
			t.Run(fmt.Sprintf("%s/seed%d", tc.name, seed), func(t *testing.T) {
				cfg := tc.cfg
				cfg.Seed = seed
				ref, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				want := ref.Run()
				for _, workers := range []int{1, 3, 8} {
					cfg.Workers = workers
					sim, err := New(cfg)
					if err != nil {
						t.Fatal(err)
					}
					got := sim.Run()
					sim.Close()
					if !reflect.DeepEqual(got, want) {
						t.Errorf("workers=%d diverges from serial:\n got: %+v\nwant: %+v",
							workers, got, want)
					}
				}
			})
		}
	}
}

// TestSharedPoolRequiresPooledDiscarding pins the two validation rules
// the shared-pool geometry adds: only slot-pool kinds can share, and the
// blocking protocol is incompatible (its arbitrate-phase probes assume
// port-independent admission; one pool spanning ports can approve n
// probes individually and overflow on their same-cycle sum).
func TestSharedPoolRequiresPooledDiscarding(t *testing.T) {
	cfg := baseCfg(buffer.FIFO, sw.Discarding, 0.5)
	cfg.SharedPool = true
	if _, err := New(cfg); !errors.Is(err, cfgerr.ErrBadSharing) {
		t.Fatalf("SharedPool+FIFO: err = %v, want ErrBadSharing", err)
	}
	cfg = baseCfg(buffer.DT, sw.Blocking, 0.5)
	cfg.SharedPool = true
	if _, err := New(cfg); !errors.Is(err, cfgerr.ErrBadSharing) {
		t.Fatalf("SharedPool+Blocking: err = %v, want ErrBadSharing", err)
	}
	cfg.Protocol = sw.Discarding
	if _, err := New(cfg); err != nil {
		t.Fatalf("SharedPool+DT+Discarding rejected: %v", err)
	}
}

// TestSharedPoolChaosSoakConservation runs the chaos soak over the
// shared-pool geometry: slot faults land in per-view windows of one
// switch-wide pool, and the conservation invariant plus every pool
// self-check must hold while slots quarantine out from under admission.
func TestSharedPoolChaosSoakConservation(t *testing.T) {
	const cycles = 8_000
	var totalQuarantined int64
	for _, kind := range []buffer.Kind{buffer.DAMQ, buffer.DT, buffer.BSHARE} {
		for _, seed := range []uint64{1, 2, 3} {
			t.Run(fmt.Sprintf("%v/seed%d", kind, seed), func(t *testing.T) {
				cfg := chaosConfig(kind, sw.Discarding, seed)
				cfg.SharedPool = true
				s, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				fc := chaosFaults
				fc.Seed = seed * 977
				if err := s.SetFaults(fc); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < cycles; i++ {
					s.Step(true)
					if i%500 == 499 {
						if err := s.CheckBuffers(); err != nil {
							t.Fatalf("cycle %d: %v", i, err)
						}
					}
				}
				if err := s.CheckBuffers(); err != nil {
					t.Fatalf("final: %v", err)
				}
				res := s.Collect()
				got := res.Delivered + res.DiscardedInNet + res.FaultedInNet + s.InFlight()
				if res.Injected != got {
					t.Fatalf("conservation broken: injected %d != delivered %d + discarded %d + faulted %d + inflight %d",
						res.Injected, res.Delivered, res.DiscardedInNet, res.FaultedInNet, s.InFlight())
				}
				totalQuarantined += s.QuarantinedSlots()
			})
		}
	}
	if totalQuarantined == 0 {
		t.Fatal("no slot was quarantined across the shared-pool soak")
	}
}
