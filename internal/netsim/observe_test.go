package netsim

import (
	"reflect"
	"testing"

	"damq/internal/arbiter"
	"damq/internal/buffer"
	"damq/internal/obs"
	"damq/internal/sw"
)

func observeTestConfig(protocol sw.Protocol, load float64) Config {
	return Config{
		Inputs:        16,
		BufferKind:    buffer.DAMQ,
		Capacity:      4,
		Policy:        arbiter.Smart,
		Protocol:      protocol,
		Traffic:       TrafficSpec{Kind: Uniform, Load: load},
		WarmupCycles:  100,
		MeasureCycles: 600,
		Seed:          11,
	}
}

// TestObserverDoesNotChangeResults pins the bit-identical invariant: the
// probes consume no randomness and never alter control flow, so an
// observed run's Result must equal the unobserved run's exactly.
func TestObserverDoesNotChangeResults(t *testing.T) {
	for _, protocol := range []sw.Protocol{sw.Blocking, sw.Discarding} {
		t.Run(protocol.String(), func(t *testing.T) {
			cfg := observeTestConfig(protocol, 0.9)

			plain, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			base := plain.Run()

			observed, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			o := obs.NewObserver()
			o.SetInterval(50)
			observed.SetObserver(o)
			got := observed.Run()

			if !reflect.DeepEqual(base, got) {
				t.Errorf("observed run diverged from unobserved run:\n%+v\nvs\n%+v", base, got)
			}
		})
	}
}

// TestObservedSnapshotShape runs an observed simulation and checks the
// exported snapshot against the ValidateSnapshot contract plus the
// cross-checks against the Result it came from.
func TestObservedSnapshotShape(t *testing.T) {
	cfg := observeTestConfig(sw.Discarding, 1.0)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.NewObserver()
	o.SetInterval(100)
	sim.SetObserver(o)
	res := sim.Run()

	snap := o.Snapshot()
	if err := ValidateSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	raw, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSnapshotJSON(raw); err != nil {
		t.Fatal(err)
	}

	// Counters mirror the Result's measurement-window tallies.
	for _, c := range []struct {
		name string
		want int64
	}{
		{MetricGenerated, res.Generated},
		{MetricInjected, res.Injected},
		{MetricDelivered, res.Delivered},
		{MetricDiscardedEntry, res.DiscardedAtEntry},
		{MetricDiscardedNet, res.DiscardedInNet},
	} {
		if got, _ := snap.Counter(c.name); got != c.want {
			t.Errorf("%s = %d, want %d (Result)", c.name, got, c.want)
		}
	}

	// The latency histogram sums to delivered packets (the acceptance
	// criterion): every measured delivery contributes one sample.
	lat, _ := snap.Histogram(MetricLatencyInjected)
	if lat.Total != res.Delivered {
		t.Errorf("latency samples %d != delivered %d", lat.Total, res.Delivered)
	}
	if res.Delivered > 0 && lat.Sum <= 0 {
		t.Error("latency histogram sum not positive")
	}

	// Saturated discarding traffic must exercise the cause counters.
	if v, _ := snap.Counter(MetricDiscardedEntry); v == 0 {
		t.Error("saturated discarding run recorded no entry discards")
	}
	if v, _ := snap.Counter(MetricGrants); v == 0 {
		t.Error("no grants counted")
	}
	if v, _ := snap.Counter(MetricConflicts); v == 0 {
		t.Error("no conflicts counted under saturation")
	}

	// Per-stage occupancy gauges exist for every stage; queue depth saw
	// every (buffer, queue) pair each measured cycle.
	for st := 0; st < 2; st++ {
		if _, ok := snap.Gauge(StageOccupancyMetric(st)); !ok {
			t.Errorf("missing %s", StageOccupancyMetric(st))
		}
	}
	depth, _ := snap.Histogram(MetricQueueDepth)
	// 16-wide radix-4 network: 2 stages x 4 switches x 4 inputs x 4
	// queues = 128 samples per measured cycle.
	if want := cfg.MeasureCycles * 128; depth.Total != want {
		t.Errorf("queue-depth samples = %d, want %d", depth.Total, want)
	}

	// The time series recorded cumulative, monotone records.
	if len(snap.Series) < 2 {
		t.Fatalf("series = %d records, want >= 2", len(snap.Series))
	}
	last := snap.Series[len(snap.Series)-1]
	if last.Delivered <= snap.Series[0].Delivered {
		t.Error("series not cumulative")
	}

	// Detaching restores the unobserved fast path.
	sim.SetObserver(nil)
	if sim.metrics != nil {
		t.Error("SetObserver(nil) left probes attached")
	}
}

// TestObservedStepSteadyStateAllocs extends the allocation diet to the
// observed hot path: with all instruments registered up front, stepping
// an observed simulation allocates nothing beyond the unobserved
// amortized events (the time series is disabled here; enabled, it
// amortizes one append per interval).
func TestObservedStepSteadyStateAllocs(t *testing.T) {
	sim, err := New(observeTestConfig(sw.Blocking, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	sim.SetObserver(obs.NewObserver())
	for i := 0; i < 2000; i++ {
		sim.Step(true)
	}
	avg := testing.AllocsPerRun(500, func() {
		sim.Step(true)
	})
	const limit = 0.05
	if avg > limit {
		t.Errorf("observed steady-state Step allocates %.3f allocs/op, want <= %v", avg, limit)
	}
}

// TestModernMetricsConditional pins the per-policy instrumentation
// contract: net.pool.slots_used and net.policy.refused exist exactly
// when the run uses a modern kind or a shared pool — 1988 snapshots
// keep their exact key set (the metrics golden depends on this) — and
// when present they carry real observations.
func TestModernMetricsConditional(t *testing.T) {
	snapshotFor := func(mut func(*Config)) *obs.Snapshot {
		cfg := observeTestConfig(sw.Discarding, 1.0)
		mut(&cfg)
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		o := obs.NewObserver()
		sim.SetObserver(o)
		sim.Run()
		return o.Snapshot()
	}

	legacy := snapshotFor(func(*Config) {})
	if _, ok := legacy.Histogram(MetricPoolSlotsUsed); ok {
		t.Errorf("1988 DAMQ snapshot grew %s", MetricPoolSlotsUsed)
	}
	if _, ok := legacy.Counter(MetricPolicyRefused); ok {
		t.Errorf("1988 DAMQ snapshot grew %s", MetricPolicyRefused)
	}

	modern := snapshotFor(func(cfg *Config) { cfg.BufferKind = buffer.DT })
	occ, ok := modern.Histogram(MetricPoolSlotsUsed)
	if !ok || occ.Total == 0 {
		t.Fatalf("DT run: %s missing or empty (%+v)", MetricPoolSlotsUsed, occ)
	}
	if refused, ok := modern.Counter(MetricPolicyRefused); !ok || refused == 0 {
		t.Errorf("saturated DT run: %s = %d, want > 0 (threshold must refuse with free slots)",
			MetricPolicyRefused, refused)
	}

	// Shared-pool occupancy is sampled per pool, not per view: one
	// observation per switch per sampled cycle, with values that can
	// exceed a single view's capacity.
	pooled := snapshotFor(func(cfg *Config) { cfg.SharedPool = true; cfg.BufferKind = buffer.DT })
	pocc, ok := pooled.Histogram(MetricPoolSlotsUsed)
	if !ok || pocc.Total == 0 {
		t.Fatalf("shared-pool run: %s missing or empty", MetricPoolSlotsUsed)
	}
	if occ.Total != 4*pocc.Total {
		t.Errorf("per-buffer samples = %d, pooled samples = %d; want 4x (4 views per pool)",
			occ.Total, pocc.Total)
	}
}
