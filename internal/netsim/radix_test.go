package netsim

import (
	"math"
	"testing"

	"damq/internal/arbiter"
	"damq/internal/buffer"
	"damq/internal/sw"
)

// The paper evaluates a 64×64 network of 4×4 switches, but the Omega
// construction and the buffer designs are radix-generic. These tests run
// the simulator at other radices to pin that generality down.

func radixCfg(radix, inputs int, kind buffer.Kind, load float64) Config {
	return Config{
		Radix:         radix,
		Inputs:        inputs,
		BufferKind:    kind,
		Capacity:      radix, // one slot per output, scaled with radix
		Policy:        arbiter.Smart,
		Protocol:      sw.Blocking,
		Traffic:       TrafficSpec{Kind: Uniform, Load: load},
		WarmupCycles:  500,
		MeasureCycles: 3000,
		Seed:          11,
	}
}

func TestRadix2Network(t *testing.T) {
	// 64 inputs of 2x2 switches: 6 stages. Zero-load latency floor is
	// (stages)*12 clocks from injection.
	cfg := radixCfg(2, 64, buffer.DAMQ, 0.05)
	cfg.Capacity = 4
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Topology().Stages() != 6 {
		t.Fatalf("stages = %d", sim.Topology().Stages())
	}
	res := sim.Run()
	if m := res.LatencyFromInjection.Mean(); m < 72 || m > 75 {
		t.Fatalf("radix-2 zero-load latency = %v, want just above 72", m)
	}
	if math.Abs(res.Throughput()-0.05) > 0.01 {
		t.Fatalf("throughput = %v", res.Throughput())
	}
}

func TestRadix8Network(t *testing.T) {
	// 64 inputs of 8x8 switches: 2 stages.
	cfg := radixCfg(8, 64, buffer.DAMQ, 0.3)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Topology().Stages() != 2 {
		t.Fatalf("stages = %d", sim.Topology().Stages())
	}
	res := sim.Run()
	if math.Abs(res.Throughput()-0.3) > 0.01 {
		t.Fatalf("throughput = %v", res.Throughput())
	}
}

func TestRadix2DAMQStillBeatsFIFO(t *testing.T) {
	if testing.Short() {
		t.Skip("long saturation runs")
	}
	thr := map[buffer.Kind]float64{}
	for _, kind := range []buffer.Kind{buffer.FIFO, buffer.DAMQ} {
		cfg := radixCfg(2, 64, kind, 1.0)
		cfg.Capacity = 4
		cfg.WarmupCycles = 1500
		cfg.MeasureCycles = 6000
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		thr[kind] = sim.Run().Throughput()
	}
	// With only two outputs per switch, HOL blocking is milder, so the
	// gap shrinks — but DAMQ must still win.
	if thr[buffer.DAMQ] <= thr[buffer.FIFO] {
		t.Fatalf("radix 2: DAMQ %v !> FIFO %v", thr[buffer.DAMQ], thr[buffer.FIFO])
	}
}

func TestLargerNetwork256(t *testing.T) {
	if testing.Short() {
		t.Skip("large network")
	}
	// 256x256 of 4x4 switches: 4 stages, 64 switches per stage.
	cfg := radixCfg(4, 256, buffer.DAMQ, 0.4)
	cfg.Capacity = 4
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Topology().Stages() != 4 || sim.Topology().SwitchesPerStage() != 64 {
		t.Fatalf("topology wrong: %d stages, %d/stage",
			sim.Topology().Stages(), sim.Topology().SwitchesPerStage())
	}
	res := sim.Run()
	if math.Abs(res.Throughput()-0.4) > 0.01 {
		t.Fatalf("throughput = %v", res.Throughput())
	}
	// 4 stages -> 48-clock injection floor.
	if res.LatencyFromInjection.Mean() < 48 {
		t.Fatalf("latency below floor: %v", res.LatencyFromInjection.Mean())
	}
}

func TestBurstyTrafficInNetwork(t *testing.T) {
	cfg := baseCfg(buffer.DAMQ, sw.Blocking, 0.4)
	cfg.Traffic = TrafficSpec{Kind: Bursty, Load: 0.4, MeanBurst: 4}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	if math.Abs(res.Throughput()-0.4) > 0.02 {
		t.Fatalf("bursty throughput = %v at offered 0.4", res.Throughput())
	}
	// Bursty traffic at the same load must cost latency vs independent
	// packets.
	uni, err := New(baseCfg(buffer.DAMQ, sw.Blocking, 0.4))
	if err != nil {
		t.Fatal(err)
	}
	uniRes := uni.Run()
	if res.LatencyFromBorn.Mean() <= uniRes.LatencyFromBorn.Mean() {
		t.Fatalf("bursty latency %v <= uniform %v",
			res.LatencyFromBorn.Mean(), uniRes.LatencyFromBorn.Mean())
	}
}

func TestBurstyValidationInConfig(t *testing.T) {
	cfg := baseCfg(buffer.DAMQ, sw.Blocking, 0.4)
	cfg.Traffic = TrafficSpec{Kind: Bursty, Load: 0.4, MeanBurst: 0.5}
	if _, err := New(cfg); err == nil {
		t.Fatal("accepted mean burst < 1")
	}
}
