package netsim

import (
	"fmt"

	"damq/internal/buffer"
	"damq/internal/obs"
	"damq/internal/sw"
)

// Metric names exported by an observed network simulation. They are the
// stable -metrics JSON contract: the golden test pins them and
// ValidateSnapshot checks for them, so renaming one is an API change.
const (
	// Counters. Generated/injected/discard counters share Result's
	// measurement-window semantics; delivered counts every measured
	// delivery, so MetricLatencyInjected's total always equals it.
	// Grant/conflict/blocked/refused counters aggregate over all switches
	// and count from attach (warmup included), since arbitration has no
	// notion of the measurement window.
	MetricGenerated      = "net.packets.generated"
	MetricInjected       = "net.packets.injected"
	MetricDelivered      = "net.packets.delivered"
	MetricDiscardedEntry = "net.packets.discarded_entry"
	MetricDiscardedNet   = "net.packets.discarded_net"
	MetricGrants         = "sw.grants"
	MetricConflicts      = "sw.conflicts"
	MetricBlockedHeads   = "sw.blocked_heads"
	MetricOfferRefused   = "sw.offer_refused"

	// Gauges, sampled at the end of every measured cycle. Per-stage
	// occupancy gauges are named net.stage<N>.occupancy.
	MetricInFlight      = "net.in_flight"
	MetricSourceBacklog = "net.source_backlog"

	// Histograms. Queue depth observes every (input buffer, output queue)
	// pair of every switch once per measured cycle; the latency pair uses
	// ClocksPerCycle-wide buckets like Result.LatencyHist.
	MetricQueueDepth      = "net.queue.depth"
	MetricLatencyBorn     = "net.latency.born_clocks"
	MetricLatencyInjected = "net.latency.injected_clocks"

	// Sharing-policy metrics, registered only when the run exercises a
	// modern admission policy (DT/FB/BSHARE) or a shared pool, so 1988
	// snapshots keep their exact key set. PoolSlotsUsed observes every
	// storage pool's occupied slot count once per measured cycle (one
	// sample per input buffer, or per switch under SharedPool).
	// PolicyRefused counts discards where the pool still had room for
	// the packet — drops the admission rule chose, as opposed to
	// exhaustion; compare it against the discard counters to separate
	// policy pressure from genuine overflow.
	MetricPoolSlotsUsed = "net.pool.slots_used"
	MetricPolicyRefused = "net.policy.refused"
)

// StageOccupancyMetric names the per-stage occupancy gauge for stage st.
func StageOccupancyMetric(st int) string {
	return fmt.Sprintf("net.stage%d.occupancy", st)
}

// netMetrics bundles the instruments an observed Sim updates. All
// instruments are registered once in SetObserver; per-cycle probe code
// only dereferences these pointers, so the observed hot path is as
// allocation-free as the unobserved one.
type netMetrics struct {
	observer *obs.Observer

	generated      *obs.Counter
	injected       *obs.Counter
	delivered      *obs.Counter
	discardedEntry *obs.Counter
	discardedNet   *obs.Counter

	inFlight *obs.Gauge
	backlog  *obs.Gauge
	stageOcc []*obs.Gauge

	queueDepth  *obs.Histogram
	latBorn     *obs.Histogram
	latInjected *obs.Histogram

	// poolSlots/policyRefused are nil unless the run uses a modern
	// policy or a shared pool (see MetricPoolSlotsUsed).
	poolSlots     *obs.Histogram
	policyRefused *obs.Counter

	// lastSample is the cycle of the last time-series record (-1 = none
	// yet); used only when the observer's interval is enabled.
	lastSample int64
}

// SetObserver attaches o's instrument registry to the simulation and to
// every switch (nil detaches everything). Cold path: call it before
// Run/Step. The probes consume no randomness, so an observed run
// produces bit-identical Results to an unobserved one with the same
// config. An observed Sim steps its shards serially even when Workers > 1
// (the instruments are shared across shards); by the sharded-determinism
// contract that changes no result.
func (s *Sim) SetObserver(o *obs.Observer) {
	if o == nil {
		s.metrics = nil
		if s.flt != nil {
			s.flt.m = nil
		}
		for st := range s.stages {
			for _, swc := range s.stages[st] {
				swc.SetMetrics(nil)
			}
		}
		return
	}
	r := o.Registry()
	m := &netMetrics{
		observer:       o,
		generated:      r.Counter(MetricGenerated),
		injected:       r.Counter(MetricInjected),
		delivered:      r.Counter(MetricDelivered),
		discardedEntry: r.Counter(MetricDiscardedEntry),
		discardedNet:   r.Counter(MetricDiscardedNet),
		inFlight:       r.Gauge(MetricInFlight),
		backlog:        r.Gauge(MetricSourceBacklog),
		lastSample:     -1,
	}
	m.stageOcc = make([]*obs.Gauge, len(s.stages))
	for st := range s.stages {
		m.stageOcc[st] = r.Gauge(StageOccupancyMetric(st))
	}
	c := int64(s.cfg.ClocksPerCycle)
	m.queueDepth = r.Histogram(MetricQueueDepth, s.cfg.Capacity+1, 1)
	m.latBorn = r.Histogram(MetricLatencyBorn, 4096, c)
	m.latInjected = r.Histogram(MetricLatencyInjected, 4096, c)
	if buffer.KindModern(s.cfg.BufferKind) || s.cfg.SharedPool {
		poolCap := s.cfg.Capacity
		if s.cfg.SharedPool {
			poolCap *= s.cfg.Radix
		}
		m.poolSlots = r.Histogram(MetricPoolSlotsUsed, poolCap+1, 1)
		m.policyRefused = r.Counter(MetricPolicyRefused)
	}

	// Grant/conflict/blocked/refused counts aggregate across all
	// switches: one shared counter set, fanned out to every stage.
	swm := &sw.Metrics{
		Grants:       r.Counter(MetricGrants),
		Conflicts:    r.Counter(MetricConflicts),
		BlockedHeads: r.Counter(MetricBlockedHeads),
		OfferRefused: r.Counter(MetricOfferRefused),
	}
	for st := range s.stages {
		for _, swc := range s.stages[st] {
			swc.SetMetrics(swm)
		}
	}
	s.metrics = m
	// Fault instruments ride on the same observer, but only when faults
	// are armed: a fault-free snapshot must not grow fault.* keys.
	if s.flt != nil {
		s.flt.register(o)
	}
	// A restored Sim carries the checkpointed instrument values until the
	// first observer attaches; applying them after registration makes the
	// resumed run's final snapshot byte-identical to the uninterrupted
	// run's. The values were validated against this config's instrument
	// set at restore time, so application cannot fail.
	if s.pendingObs != nil {
		s.pendingObs.apply(s)
		s.pendingObs = nil
	}
}

// sampleMetrics runs at the end of every measured cycle with an observer
// attached: per-stage occupancy gauges, the per-queue depth histogram,
// level gauges, and — when the observer's interval is enabled — the
// cumulative time-series record. It allocates only when the time series
// grows (amortized append, off by default).
func (s *Sim) sampleMetrics(backlog int64) {
	m := s.metrics
	inFlight := s.InFlight()
	for st := range s.stages {
		total := int64(0)
		for _, swc := range s.stages[st] {
			total += int64(swc.Len())
			ports := swc.Ports()
			for in := 0; in < ports; in++ {
				b := swc.Buffer(in)
				for out := 0; out < ports; out++ {
					m.queueDepth.Observe(int64(b.QueueLen(out)))
				}
			}
		}
		m.stageOcc[st].Set(total)
	}
	m.inFlight.Set(inFlight)
	m.backlog.Set(backlog)
	if m.poolSlots != nil {
		s.samplePoolSlots()
	}

	iv := m.observer.Interval()
	if iv <= 0 {
		return
	}
	if m.lastSample >= 0 && s.cycle-m.lastSample < iv {
		return
	}
	m.lastSample = s.cycle
	m.observer.RecordInterval(obs.IntervalRecord{
		Cycle:        s.cycle,
		Generated:    m.generated.Value(),
		Injected:     m.injected.Value(),
		Delivered:    m.delivered.Value(),
		Discarded:    m.discardedEntry.Value() + m.discardedNet.Value(),
		InFlight:     inFlight,
		Backlog:      backlog,
		LatencySum:   m.latInjected.Sum(),
		LatencyCount: m.latInjected.Total(),
	})
}

// slotCounter is the per-queue slot accounting every pooled buffer
// exposes; the policy occupancy sampler sums it per storage pool.
type slotCounter interface{ QueueSlots(out int) int }

// samplePoolSlots observes each storage pool's occupied slot count:
// one sample per input buffer normally, one per switch when all its
// inputs share a pool (summing per-view counts walks the whole group).
// Occupied means holding packets — quarantined slots are neither free
// nor used, so the histogram isolates what the admission policy let in.
func (s *Sim) samplePoolSlots() {
	m := s.metrics
	shared := s.cfg.SharedPool
	for st := range s.stages {
		for _, swc := range s.stages[st] {
			ports := swc.Ports()
			used := 0
			for in := 0; in < ports; in++ {
				sc, ok := swc.Buffer(in).(slotCounter)
				if !ok {
					return // non-pooled kind: nothing to sample
				}
				for out := 0; out < ports; out++ {
					used += sc.QueueSlots(out)
				}
				if !shared {
					m.poolSlots.Observe(int64(used))
					used = 0
				}
			}
			if shared {
				m.poolSlots.Observe(int64(used))
			}
		}
	}
}

// ValidateSnapshot checks that a snapshot has the shape an observed
// network simulation exports: all packet/arbitration counters, the level
// gauges plus at least stage 0's occupancy gauge (and contiguous stage
// numbering), the depth/latency histograms, and the structural invariant
// that the injection-latency histogram's total equals the delivered
// counter.
func ValidateSnapshot(s *obs.Snapshot) error {
	for _, name := range []string{
		MetricGenerated, MetricInjected, MetricDelivered,
		MetricDiscardedEntry, MetricDiscardedNet,
		MetricGrants, MetricConflicts, MetricBlockedHeads, MetricOfferRefused,
	} {
		if _, ok := s.Counter(name); !ok {
			return fmt.Errorf("netsim: snapshot missing counter %q", name)
		}
	}
	for _, name := range []string{MetricInFlight, MetricSourceBacklog} {
		if _, ok := s.Gauge(name); !ok {
			return fmt.Errorf("netsim: snapshot missing gauge %q", name)
		}
	}
	if _, ok := s.Gauge(StageOccupancyMetric(0)); !ok {
		return fmt.Errorf("netsim: snapshot missing gauge %q", StageOccupancyMetric(0))
	}
	for _, name := range []string{MetricQueueDepth, MetricLatencyBorn, MetricLatencyInjected} {
		if _, ok := s.Histogram(name); !ok {
			return fmt.Errorf("netsim: snapshot missing histogram %q", name)
		}
	}
	delivered, _ := s.Counter(MetricDelivered)
	latInj, _ := s.Histogram(MetricLatencyInjected)
	if latInj.Total != delivered {
		return fmt.Errorf("netsim: latency histogram total %d != delivered %d", latInj.Total, delivered)
	}
	latBorn, _ := s.Histogram(MetricLatencyBorn)
	if latBorn.Total > delivered {
		return fmt.Errorf("netsim: born-latency samples %d exceed delivered %d", latBorn.Total, delivered)
	}
	return nil
}

// ValidateSnapshotJSON decodes raw (a -metrics file) and runs
// ValidateSnapshot — the check CI applies to the omegasim smoke run.
func ValidateSnapshotJSON(raw []byte) error {
	s, err := obs.DecodeSnapshot(raw)
	if err != nil {
		return err
	}
	return ValidateSnapshot(s)
}
