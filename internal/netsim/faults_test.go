package netsim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"damq/internal/buffer"
	"damq/internal/fault"
	"damq/internal/obs"
	"damq/internal/parallel"
	"damq/internal/sw"
)

// chaosConfig is the soak workload: small enough to run thousands of
// cycles per seed quickly, busy enough that every fault class fires.
func chaosConfig(kind buffer.Kind, proto sw.Protocol, seed uint64) Config {
	return Config{
		Inputs:     16,
		BufferKind: kind,
		Protocol:   proto,
		Traffic:    TrafficSpec{Kind: Uniform, Load: 0.7},
		Seed:       seed,
	}
}

var chaosFaults = fault.Config{
	Seed:              1,
	SlotStuckRate:     2e-5,
	LinkTransientRate: 2e-4,
	LinkDeadRate:      5e-6,
}

// TestChaosSoakConservation is the tentpole's acceptance test: thousands
// of cycles under mixed slot/link faults, across seeds, buffer kinds and
// both protocols, asserting the conservation invariant
//
//	injected == delivered + discarded-in-net + faulted + in-flight
//
// and running every buffer's linked-list self-check periodically — under
// fault injection the pools must shrink gracefully, never corrupt.
func TestChaosSoakConservation(t *testing.T) {
	const cycles = 10_000
	seeds := []uint64{1, 2, 3, 4, 5}
	var totalFaulted, totalQuarantined int64
	for _, kind := range []buffer.Kind{buffer.DAMQ, buffer.DAFC} {
		for _, proto := range []sw.Protocol{sw.Discarding, sw.Blocking} {
			for _, seed := range seeds {
				name := fmt.Sprintf("%v/%v/seed%d", kind, proto, seed)
				t.Run(name, func(t *testing.T) {
					fc := chaosFaults
					fc.Seed = seed * 977
					s, err := New(chaosConfig(kind, proto, seed))
					if err != nil {
						t.Fatal(err)
					}
					if err := s.SetFaults(fc); err != nil {
						t.Fatal(err)
					}
					// No warmup: every cycle is measured, so the Result
					// counters see the whole history and conservation is
					// exact.
					for i := 0; i < cycles; i++ {
						s.Step(true)
						if i%500 == 499 {
							if err := s.CheckBuffers(); err != nil {
								t.Fatalf("cycle %d: %v", i, err)
							}
						}
					}
					if err := s.CheckBuffers(); err != nil {
						t.Fatalf("final: %v", err)
					}
					res := s.Collect()
					got := res.Delivered + res.DiscardedInNet + res.FaultedInNet + s.InFlight()
					if res.Injected != got {
						t.Fatalf("conservation broken: injected %d != delivered %d + discarded %d + faulted %d + inflight %d",
							res.Injected, res.Delivered, res.DiscardedInNet, res.FaultedInNet, s.InFlight())
					}
					if res.FaultedInNet != s.Faulted() {
						t.Fatalf("faulted mismatch: window %d, total %d (warmup was 0)", res.FaultedInNet, s.Faulted())
					}
					if proto == sw.Blocking && res.DiscardedInNet != 0 {
						t.Fatalf("blocking protocol discarded %d in-net (only faults may drop)", res.DiscardedInNet)
					}
					totalFaulted += res.FaultedInNet
					totalQuarantined += s.QuarantinedSlots()
				})
			}
		}
	}
	// The soak is vacuous if no fault ever fired; the rates are chosen so
	// that across 20 runs both classes trigger.
	if totalFaulted == 0 {
		t.Fatal("no link fault fired across the whole soak")
	}
	if totalQuarantined == 0 {
		t.Fatal("no slot was quarantined across the whole soak")
	}
}

// TestFaultsOffDoesNotChangeResults pins the faults-off contract: a
// disabled fault config (zero value, or all rates zero) leaves the run
// byte-identical to one that never touched SetFaults, including the
// metrics snapshot — no fault.* keys may appear.
func TestFaultsOffDoesNotChangeResults(t *testing.T) {
	run := func(arm bool) ([]byte, *Result) {
		cfg := chaosConfig(buffer.DAMQ, sw.Discarding, 42)
		cfg.WarmupCycles = 200
		cfg.MeasureCycles = 2000
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if arm {
			if err := s.SetFaults(fault.Config{RetryLimit: 3}); err != nil {
				t.Fatal(err)
			}
		}
		o := obs.NewObserver()
		s.SetObserver(o)
		res := s.Run()
		raw, err := o.Snapshot().Encode()
		if err != nil {
			t.Fatal(err)
		}
		return raw, res
	}
	rawOff, resOff := run(false)
	rawZero, resZero := run(true)
	if !bytes.Equal(rawOff, rawZero) {
		t.Fatalf("faults-off snapshot differs from never-armed snapshot:\n%s\nvs\n%s", rawZero, rawOff)
	}
	jsonOff, err := json.Marshal(resOff)
	if err != nil {
		t.Fatal(err)
	}
	jsonZero, err := json.Marshal(resZero)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonOff, jsonZero) {
		t.Fatalf("faults-off results differ:\n%s\nvs\n%s", jsonZero, jsonOff)
	}
	if bytes.Contains(jsonOff, []byte("FaultedInNet")) {
		t.Fatal("fault-free Result JSON contains FaultedInNet (omitempty broken)")
	}
	if bytes.Contains(rawOff, []byte("fault.")) {
		t.Fatal("fault-free snapshot contains fault.* metrics")
	}
}

// TestFaultedSnapshotDeterministicAcrossWorkers pins the acceptance
// criterion "same fault seed ⇒ byte-identical metrics snapshot at any
// -workers count": a batch of faulted, observed simulations produces the
// same snapshot bytes whether the batch runs serially or on a pool.
func TestFaultedSnapshotDeterministicAcrossWorkers(t *testing.T) {
	const runs = 6
	snapshots := func(workers int) [][]byte {
		out := make([][]byte, runs)
		err := parallel.For(runs, workers, func(i int) error {
			cfg := chaosConfig(buffer.DAMQ, sw.Discarding, uint64(i+1))
			cfg.WarmupCycles = 100
			cfg.MeasureCycles = 1500
			s, err := New(cfg)
			if err != nil {
				return err
			}
			if err := s.SetFaults(chaosFaults); err != nil {
				return err
			}
			o := obs.NewObserver()
			s.SetObserver(o)
			s.Run()
			raw, err := o.Snapshot().Encode()
			if err != nil {
				return err
			}
			out[i] = raw
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := snapshots(1)
	pooled := snapshots(4)
	for i := range serial {
		if !bytes.Equal(serial[i], pooled[i]) {
			t.Fatalf("run %d: snapshot differs between workers=1 and workers=4", i)
		}
	}
	// The criterion is about faulted runs; make sure faults actually
	// appear in the snapshots being compared.
	if !bytes.Contains(serial[0], []byte(fault.MetricLinkDrops)) {
		t.Fatalf("faulted snapshot missing %s:\n%s", fault.MetricLinkDrops, serial[0])
	}
}

// TestFaultSeedZeroDerivedFromSimSeed: with fault seed 0 the schedule is
// derived from the simulation seed — replayable (same sim seed → same
// faults) but distinct across sim seeds by default.
func TestFaultSeedZeroDerivedFromSimSeed(t *testing.T) {
	run := func(simSeed uint64) int64 {
		s, err := New(chaosConfig(buffer.DAMQ, sw.Discarding, simSeed))
		if err != nil {
			t.Fatal(err)
		}
		fc := fault.Config{LinkTransientRate: 1e-3}
		if err := s.SetFaults(fc); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3000; i++ {
			s.Step(true)
		}
		return s.Faulted()
	}
	a1, a2, b := run(7), run(7), run(8)
	if a1 != a2 {
		t.Fatalf("same sim seed gave different fault totals: %d vs %d", a1, a2)
	}
	if a1 == 0 {
		t.Fatal("no faults fired at rate 1e-3 over 3000 cycles")
	}
	_ = b // b may coincidentally equal a1; deriving distinct schedules is probabilistic
}

// TestSetFaultsAfterStepRejected pins the arm-before-stepping contract.
func TestSetFaultsAfterStepRejected(t *testing.T) {
	s, err := New(chaosConfig(buffer.DAMQ, sw.Discarding, 1))
	if err != nil {
		t.Fatal(err)
	}
	s.Step(false)
	if err := s.SetFaults(chaosFaults); err == nil {
		t.Fatal("SetFaults accepted after stepping")
	}
}

// TestSetFaultsValidates propagates config validation.
func TestSetFaultsValidates(t *testing.T) {
	s, err := New(chaosConfig(buffer.DAMQ, sw.Discarding, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetFaults(fault.Config{LinkDeadRate: 2}); err == nil {
		t.Fatal("SetFaults accepted rate 2")
	}
}

// TestStaticBuffersSkipSlotFaults: organizations without a slot pool
// (FIFO, SAMQ) ignore slot faults instead of crashing, and link faults
// still work.
func TestStaticBuffersSkipSlotFaults(t *testing.T) {
	for _, kind := range []buffer.Kind{buffer.FIFO, buffer.SAMQ} {
		cfg := chaosConfig(kind, sw.Discarding, 3)
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fc := chaosFaults
		fc.SlotStuckRate = 0.01 // aggressive: would quarantine everything if applied
		if err := s.SetFaults(fc); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			s.Step(true)
		}
		res := s.Collect()
		if s.QuarantinedSlots() != 0 {
			t.Fatalf("%v: quarantined %d slots on a pool-less organization", kind, s.QuarantinedSlots())
		}
		got := res.Delivered + res.DiscardedInNet + res.FaultedInNet + s.InFlight()
		if res.Injected != got {
			t.Fatalf("%v: conservation broken", kind)
		}
	}
}
