package netsim

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"reflect"
	"testing"

	"damq/internal/arbiter"
	"damq/internal/buffer"
	"damq/internal/cfgerr"
	"damq/internal/checkpoint"
	"damq/internal/fault"
	"damq/internal/obs"
	"damq/internal/rng"
	"damq/internal/sw"
)

// runWithCheckpointAt drives s to completion exactly like Run, writing a
// checkpoint when the cycle counter reaches at (before stepping that
// cycle). It returns the checkpoint bytes and the final result, so one
// sim serves as both the snapshot source and the uninterrupted twin.
func runWithCheckpointAt(t *testing.T, s *Sim, at int64) ([]byte, *Result) {
	t.Helper()
	var buf bytes.Buffer
	save := func() {
		if s.cycle != at {
			return
		}
		if err := s.Checkpoint(&buf); err != nil {
			t.Fatalf("Checkpoint at cycle %d: %v", at, err)
		}
	}
	for s.cycle < s.cfg.WarmupCycles {
		save()
		s.Step(false)
	}
	if s.measured == 0 {
		s.warmupBoundary = s.cycle
	}
	for s.measured < s.cfg.MeasureCycles {
		save()
		s.Step(true)
	}
	if buf.Len() == 0 {
		t.Fatalf("checkpoint cycle %d never reached", at)
	}
	return buf.Bytes(), s.Collect()
}

// tortureCase is one cell of the kill-and-resume matrix: a config
// variant, whether faults are armed, and the worker counts on the two
// sides of the checkpoint.
type tortureCase struct {
	name    string
	cfg     Config
	faults  bool
	observe bool
}

func tortureCases() []tortureCase {
	base := func(seed uint64) Config {
		return Config{
			Radix: 4, Inputs: 64, Capacity: 4, ClocksPerCycle: 12,
			WarmupCycles: 60, MeasureCycles: 200, Seed: seed,
			Traffic: TrafficSpec{Kind: Uniform, Load: 0.7},
		}
	}
	var cases []tortureCase
	for seed := uint64(1); seed <= 5; seed++ {
		cfg := base(seed)
		switch seed {
		case 1:
			cfg.BufferKind = buffer.DAMQ
			cfg.Protocol = sw.Discarding
		case 2:
			cfg.BufferKind = buffer.DAMQ
			cfg.Protocol = sw.Blocking
			cfg.Traffic = TrafficSpec{Kind: HotSpot, Load: 0.5, HotFraction: 0.05}
		case 3:
			cfg.BufferKind = buffer.FIFO
			cfg.Protocol = sw.Discarding
			cfg.Traffic = TrafficSpec{Kind: Bursty, Load: 0.6, MeanBurst: 3}
		case 4:
			cfg.BufferKind = buffer.DT
			cfg.SharedPool = true
			cfg.Protocol = sw.Discarding
			cfg.Traffic.MinSlots, cfg.Traffic.MaxSlots = 1, 4
		case 5:
			cfg.BufferKind = buffer.BSHARE
			cfg.Protocol = sw.Discarding
			perm := make([]int, cfg.Inputs)
			for i := range perm {
				perm[i] = (i + 17) % cfg.Inputs
			}
			cfg.Traffic = TrafficSpec{Kind: Permutation, Load: 0.8, Perm: perm}
		}
		for _, faults := range []bool{false, true} {
			cases = append(cases, tortureCase{
				name:   fmt.Sprintf("seed%d/kind=%v/faults=%v", seed, cfg.BufferKind, faults),
				cfg:    cfg,
				faults: faults,
				// Observed sims step serially, so half the matrix keeps the
				// gang path exercised by staying unobserved.
				observe: seed%2 == 1,
			})
		}
	}
	return cases
}

func tortureFaults() fault.Config {
	return fault.Config{SlotStuckRate: 2e-5, LinkTransientRate: 5e-4, LinkDeadRate: 1e-5}
}

// TestCheckpointResumeTorture is the kill-and-resume harness: for every
// matrix cell it checkpoints a run at a pseudo-random cycle, restores at
// a different worker count, finishes both, and requires the resumed run
// to match the uninterrupted twin exactly — aggregate Result, metric
// snapshot bytes, and the per-packet delivery tuples after the
// checkpoint cycle.
func TestCheckpointResumeTorture(t *testing.T) {
	for _, tc := range tortureCases() {
		for _, workers := range []int{1, 8} {
			workers := workers
			tc := tc
			t.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(t *testing.T) {
				t.Parallel()
				cfg := tc.cfg
				cfg.Workers = workers
				total := cfg.WarmupCycles + cfg.MeasureCycles
				at := 1 + int64(rng.New(cfg.Seed*977+uint64(workers)).Intn(int(total-1)))

				twin, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer twin.Close()
				twin.RecordDeliveries(true)
				if tc.faults {
					if err := twin.SetFaults(tortureFaults()); err != nil {
						t.Fatal(err)
					}
				}
				var twinObs *obs.Observer
				if tc.observe {
					twinObs = obs.NewObserver()
					twinObs.SetInterval(16)
					twin.SetObserver(twinObs)
				}
				raw, want := runWithCheckpointAt(t, twin, at)

				// Resume at the flipped worker count: the checkpoint must be
				// execution-knob agnostic.
				resumedWorkers := 8
				if workers == 8 {
					resumedWorkers = 1
				}
				res, err := RestoreSimOpts(bytes.NewReader(raw), RestoreOpts{Workers: resumedWorkers, WorkersSet: true})
				if err != nil {
					t.Fatalf("restore at cycle %d: %v", at, err)
				}
				defer res.Close()
				res.RecordDeliveries(true)
				var resObs *obs.Observer
				if tc.observe {
					resObs = obs.NewObserver()
					res.SetObserver(resObs)
				}
				got := res.Run()

				if !reflect.DeepEqual(want, got) {
					t.Errorf("resumed Result differs from uninterrupted twin (checkpoint at cycle %d)\nwant %+v\ngot  %+v", at, want, got)
				}
				var tail []Delivery
				for _, dl := range twin.Deliveries() {
					if dl.DeliveredAt >= at {
						tail = append(tail, dl)
					}
				}
				if !reflect.DeepEqual(tail, res.Deliveries()) {
					t.Errorf("delivery tuples after cycle %d diverge: twin tail %d, resumed %d",
						at, len(tail), len(res.Deliveries()))
				}
				if tc.observe {
					wantSnap, err := twinObs.Snapshot().Encode()
					if err != nil {
						t.Fatal(err)
					}
					gotSnap, err := resObs.Snapshot().Encode()
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(wantSnap, gotSnap) {
						t.Errorf("metric snapshots diverge after resume at cycle %d:\nwant %s\ngot  %s",
							at, wantSnap, gotSnap)
					}
				}
			})
		}
	}
}

// TestCheckpointCompletedRun: a checkpoint of a finished simulation
// restores to a Sim whose Run is a no-op returning the same Result.
func TestCheckpointCompletedRun(t *testing.T) {
	cfg := Config{Inputs: 16, WarmupCycles: 20, MeasureCycles: 50, Seed: 7,
		BufferKind: buffer.DAMQ, Traffic: TrafficSpec{Kind: Uniform, Load: 0.6}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := s.Run()
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	res, err := RestoreSim(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Run(); !reflect.DeepEqual(want, got) {
		t.Errorf("restored completed run diverges:\nwant %+v\ngot  %+v", want, got)
	}
	if res.Cycle() != cfg.WarmupCycles+cfg.MeasureCycles {
		t.Errorf("restored cycle %d, want %d", res.Cycle(), cfg.WarmupCycles+cfg.MeasureCycles)
	}
}

// TestRestoreWorkersOverride checks the knob plumbing: without an
// override the checkpointed Workers applies; with one, the override.
func TestRestoreWorkersOverride(t *testing.T) {
	cfg := Config{Inputs: 64, Workers: 8, WarmupCycles: 10, MeasureCycles: 10, Seed: 3,
		BufferKind: buffer.DAMQ, Traffic: TrafficSpec{Kind: Uniform, Load: 0.5}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	same, err := RestoreSim(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer same.Close()
	if same.Workers() != 8 {
		t.Errorf("restored Workers = %d, want the checkpointed 8", same.Workers())
	}
	over, err := RestoreSimOpts(bytes.NewReader(raw), RestoreOpts{Workers: 1, WorkersSet: true})
	if err != nil {
		t.Fatal(err)
	}
	defer over.Close()
	if over.Workers() != 1 {
		t.Errorf("overridden Workers = %d, want 1", over.Workers())
	}
}

// corpusCheckpoint builds a small checkpoint exercising every section:
// faults armed, observer attached, blocking backlog, variable lengths.
func corpusCheckpoint(t testing.TB) []byte {
	cfg := Config{
		Radix: 4, Inputs: 16, Capacity: 4, ClocksPerCycle: 12,
		WarmupCycles: 30, MeasureCycles: 40, Seed: 11,
		BufferKind: buffer.DAMQ, Protocol: sw.Blocking,
		Traffic: TrafficSpec{Kind: Uniform, Load: 0.9},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetFaults(tortureFaults()); err != nil {
		t.Fatal(err)
	}
	o := obs.NewObserver()
	o.SetInterval(8)
	s.SetObserver(o)
	for i := 0; i < 30; i++ {
		s.Step(false)
	}
	s.warmupBoundary = s.cycle
	for i := 0; i < 20; i++ {
		s.Step(true)
	}
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// wantCheckpointError asserts the corrupted-stream contract: decoding
// must fail with one of the two typed sentinels and must not panic.
func wantCheckpointError(t *testing.T, raw []byte, what string) {
	t.Helper()
	s, err := RestoreSim(bytes.NewReader(raw))
	if s != nil {
		s.Close()
	}
	if err == nil {
		t.Fatalf("%s: corrupted checkpoint restored without error", what)
	}
	if !errors.Is(err, cfgerr.ErrBadCheckpoint) && !errors.Is(err, cfgerr.ErrCheckpointVersion) {
		t.Fatalf("%s: error %v is not a checkpoint sentinel", what, err)
	}
}

// corruptionOffsets picks the byte offsets the corruption sweeps hit:
// every byte of the structure-rich prefix (frame header, config, core,
// and the leading switch state) and of the CRC-bearing tail, with the
// histogram-dominated bulk sampled on a prime stride. A full every-byte
// sweep is O(n²) in the checkpoint size for no added structural
// coverage — the bulk is long runs of identical zero buckets.
func corruptionOffsets(n int) []int {
	var offs []int
	for i := 0; i < n && i < 4096; i++ {
		offs = append(offs, i)
	}
	for i := 4096; i < n-128; i += 191 {
		offs = append(offs, i)
	}
	for i := n - 128; i < n; i++ {
		if i >= 4096 {
			offs = append(offs, i)
		}
	}
	return offs
}

// TestCheckpointTruncation: prefixes of a valid checkpoint fail with a
// typed error — every boundary in the structured prefix and tail, the
// bulk strided.
func TestCheckpointTruncation(t *testing.T) {
	raw := corpusCheckpoint(t)
	for _, i := range corruptionOffsets(len(raw)) {
		wantCheckpointError(t, raw[:i], fmt.Sprintf("truncated to %d bytes", i))
	}
}

// TestCheckpointBitFlips flips bytes with the frame CRC left stale (the
// checksum must catch every one) and, separately, with the CRC patched
// to match — driving the structural validators — where the contract is
// "typed error or clean restore, never a panic".
func TestCheckpointBitFlips(t *testing.T) {
	raw := corpusCheckpoint(t)
	offs := corruptionOffsets(len(raw))
	for _, i := range offs {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x10
		wantCheckpointError(t, mut, fmt.Sprintf("stale-CRC flip at byte %d", i))
	}
	// CRC-patched flips drive the structural validators past the
	// checksum; a flip in pure statistics (a histogram bucket) may
	// restore cleanly, which is fine — the contract is no panic and no
	// untyped error.
	for _, i := range offs {
		if i >= len(raw)-4 {
			continue
		}
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x10
		patchCRC(mut)
		s, err := RestoreSim(bytes.NewReader(mut))
		if s != nil {
			s.Close()
		}
		if err != nil && !errors.Is(err, cfgerr.ErrBadCheckpoint) && !errors.Is(err, cfgerr.ErrCheckpointVersion) {
			t.Fatalf("patched-CRC flip at byte %d: error %v is not a checkpoint sentinel", i, err)
		}
	}
}

// patchCRC rewrites the trailing frame checksum to match the mutated
// bytes, so decoding proceeds past the envelope into the validators.
func patchCRC(raw []byte) {
	if len(raw) < 4 {
		return
	}
	sum := crc32.ChecksumIEEE(raw[:len(raw)-4])
	raw[len(raw)-4] = byte(sum)
	raw[len(raw)-3] = byte(sum >> 8)
	raw[len(raw)-2] = byte(sum >> 16)
	raw[len(raw)-1] = byte(sum >> 24)
}

// TestCheckpointVersionSkew: a bumped version field fails with the
// version sentinel even with a correct CRC.
func TestCheckpointVersionSkew(t *testing.T) {
	raw := corpusCheckpoint(t)
	mut := append([]byte(nil), raw...)
	mut[8]++ // version u32 follows the 8-byte magic
	patchCRC(mut)
	_, err := RestoreSim(bytes.NewReader(mut))
	if !errors.Is(err, cfgerr.ErrCheckpointVersion) {
		t.Fatalf("version skew: got %v, want ErrCheckpointVersion", err)
	}
}

// TestCheckpointStructuralCorruption hand-builds streams that pass the
// CRC but violate the section contract.
func TestCheckpointStructuralCorruption(t *testing.T) {
	frame := func(build func(e *checkpoint.Encoder)) []byte {
		e := checkpoint.NewEncoder()
		build(e)
		var buf bytes.Buffer
		if err := e.Emit(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	wantCheckpointError(t, frame(func(e *checkpoint.Encoder) {}), "empty payload")
	wantCheckpointError(t, frame(func(e *checkpoint.Encoder) {
		e.Section(42, func(e *checkpoint.Encoder) { e.I64(1) })
	}), "unknown section tag")
	wantCheckpointError(t, frame(func(e *checkpoint.Encoder) {
		// Config alone: every other mandatory section missing.
		e.Section(1, func(e *checkpoint.Encoder) {
			s, err := New(Config{Inputs: 16, Traffic: TrafficSpec{Kind: Uniform, Load: 0.5}})
			if err != nil {
				t.Fatal(err)
			}
			s.encodeConfig(e)
		})
	}), "missing sections")
	wantCheckpointError(t, frame(func(e *checkpoint.Encoder) {
		// Sections out of order: core before config.
		e.Section(2, func(e *checkpoint.Encoder) { e.I64(0) })
		e.Section(1, func(e *checkpoint.Encoder) { e.I64(0) })
	}), "out-of-order sections")
	wantCheckpointError(t, frame(func(e *checkpoint.Encoder) {
		// A config whose geometry passes shape checks but blows the
		// restore allocation cap.
		var c Config
		c.Radix, c.Inputs, c.Capacity = 2, 1<<16, 1<<12
		c.ClocksPerCycle, c.WarmupCycles, c.MeasureCycles = 12, 1, 1
		c.Traffic = TrafficSpec{Kind: Uniform, Load: 0.5}
		sim := &Sim{cfg: c}
		e.Section(1, sim.encodeConfig)
	}), "oversized geometry")
}

// TestCheckpointRejectsTrailingGarbage: extra bytes after a section body
// or after the payload are corruption, not slack.
func TestCheckpointRejectsTrailingGarbage(t *testing.T) {
	raw := corpusCheckpoint(t)
	mut := append(append([]byte(nil), raw...), 0xEE)
	wantCheckpointError(t, mut, "trailing byte after frame")
}

// TestArbiterStateRoundTrip pins the arbiter Save/Load pair the switch
// section rides on.
func TestArbiterStateRoundTrip(t *testing.T) {
	a := arbiter.New(arbiter.Smart, 4, 4)
	st := a.SaveState()
	st.Prio = 99
	if err := a.LoadState(st); err == nil {
		t.Error("LoadState accepted an out-of-range priority pointer")
	}
	st.Prio = 2
	if err := a.LoadState(st); err != nil {
		t.Errorf("LoadState rejected a valid state: %v", err)
	}
	if got := a.SaveState(); !reflect.DeepEqual(got.Stale, st.Stale) || got.Prio != 2 {
		t.Errorf("arbiter state did not round-trip: %+v vs %+v", got, st)
	}
}
