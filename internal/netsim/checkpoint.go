// Checkpoint codec for the network simulator (DESIGN.md §13): Checkpoint
// serializes a complete mid-run Sim — cycle position, every slot pool's
// register state, buffered and source-queued packets with identities,
// RNG stream states, fault-injection position, measurement partials, and
// (when observed) instrument values — and RestoreSim rebuilds a Sim that
// continues byte-identically to the uninterrupted run, at any worker
// count. Everything derivable from the config is rebuilt by New, not
// stored: topology, shard partition, probes, scratch buffers, and the
// packet allocators' free lists. The scratch (pending grants, outboxes)
// is dead at cycle boundaries, which is where checkpoints are taken.
//
// Corrupted streams are rejected with errors wrapping
// cfgerr.ErrBadCheckpoint (or cfgerr.ErrCheckpointVersion for version
// skew), never a panic: every count, index, and register decoded here is
// validated against the geometry rebuilt from the config before any
// structure walks it.
package netsim

import (
	"fmt"
	"io"

	"damq/internal/arbiter"
	"damq/internal/buffer"
	"damq/internal/cfgerr"
	"damq/internal/checkpoint"
	"damq/internal/fault"
	"damq/internal/obs"
	"damq/internal/packet"
	"damq/internal/rng"
	"damq/internal/stats"
	"damq/internal/sw"
	"damq/internal/traffic"
)

// Section tags of the checkpoint payload, in stream order. Faults and
// observer sections are present only when the corresponding subsystem is
// attached, so a fault-free unobserved checkpoint has exactly five
// sections.
const (
	secConfig   uint8 = 1
	secCore     uint8 = 2
	secSwitches uint8 = 3
	secSources  uint8 = 4
	secShards   uint8 = 5
	secFaults   uint8 = 6
	secObserver uint8 = 7
)

// pktWireSize is the encoded size of one packet body, the unit Count
// uses to bound packet-list lengths against the remaining payload.
const pktWireSize = 9*8 + 1

// Delivery is the identity tuple of one measured delivery, logged when
// RecordDeliveries is on. The torture tests compare delivery logs of a
// restored run against the uninterrupted twin's tail, which pins not
// just the aggregate metrics but which packet arrived where and when.
type Delivery struct {
	ID          uint64
	Source      int
	Dest        int
	Born        int64
	Injected    int64
	DeliveredAt int64
}

// RecordDeliveries toggles per-delivery identity logging. Off by default:
// the log grows linearly with the measured run. The flag is an execution
// knob like Workers and is not part of a checkpoint.
func (s *Sim) RecordDeliveries(on bool) { s.recordDeliv = on }

// Deliveries returns the logged measured deliveries, merged in shard
// order (the same topology-determined order Collect merges partials in,
// so the sequence is identical at every worker count).
func (s *Sim) Deliveries() []Delivery {
	var out []Delivery
	for _, sh := range s.shards {
		out = append(out, sh.deliv...)
	}
	return out
}

// Measured returns the number of measuring Steps taken so far.
func (s *Sim) Measured() int64 { return s.measured }

// Config returns the simulation's resolved configuration — after a
// restore, the checkpointed one (with any Workers override applied), so
// CLIs can describe a resumed run without re-supplying its flags.
func (s *Sim) Config() Config { return s.cfg }

// ckptErr wraps a restore-time structural failure in the checkpoint
// sentinel so callers classify with errors.Is(err, cfgerr.ErrBadCheckpoint).
func ckptErr(format string, args ...any) error {
	return fmt.Errorf("netsim: "+format+": %w", append(args, cfgerr.ErrBadCheckpoint)...)
}

// Checkpoint writes the simulation's complete state to w. Call it only
// between cycles (never from another goroutine mid-Step); Run-level
// checkpointing (RunCtxCheckpoint) does exactly that. The stream is
// self-describing and versioned; it does not capture the Workers knob's
// effect (there is none — results are byte-identical at every worker
// count), the observer attachment itself, or the delivery log.
func (s *Sim) Checkpoint(w io.Writer) error {
	e := checkpoint.NewEncoder()
	var encErr error
	e.Section(secConfig, s.encodeConfig)
	e.Section(secCore, func(e *checkpoint.Encoder) {
		e.I64(s.cycle)
		e.I64(s.warmupBoundary)
		e.I64(s.measured)
		encodeSummary(e, s.backlog.Save())
	})
	e.Section(secSwitches, func(e *checkpoint.Encoder) {
		if err := s.encodeSwitches(e); err != nil && encErr == nil {
			encErr = err
		}
	})
	e.Section(secSources, s.encodeSources)
	e.Section(secShards, func(e *checkpoint.Encoder) {
		if err := s.encodeShards(e); err != nil && encErr == nil {
			encErr = err
		}
	})
	if s.flt != nil {
		e.Section(secFaults, s.encodeFaults)
	}
	if s.metrics != nil {
		e.Section(secObserver, s.encodeObserver)
	}
	if encErr != nil {
		return encErr
	}
	return e.Emit(w)
}

func (s *Sim) encodeConfig(e *checkpoint.Encoder) {
	c := s.cfg
	e.Int(c.Radix)
	e.Int(c.Inputs)
	e.Int(int(c.BufferKind))
	e.Int(c.Capacity)
	e.Int(int(c.Policy))
	e.Int(int(c.Protocol))
	e.Int(c.ClocksPerCycle)
	e.Int(int(c.Traffic.Kind))
	e.F64(c.Traffic.Load)
	e.F64(c.Traffic.HotFraction)
	e.Int(c.Traffic.HotDest)
	e.Ints(c.Traffic.Perm)
	e.F64(c.Traffic.MeanBurst)
	e.Int(c.Traffic.MinSlots)
	e.Int(c.Traffic.MaxSlots)
	e.I64(c.WarmupCycles)
	e.I64(c.MeasureCycles)
	e.U64(c.Seed)
	e.Int(c.Workers)
	e.Bool(c.SharedPool)
	e.F64(c.Sharing.Alpha)
	e.Int(c.Sharing.Classes)
	e.I64(c.Sharing.DelayTarget)
}

func decodeConfig(d *checkpoint.Decoder) Config {
	var c Config
	c.Radix = d.Int()
	c.Inputs = d.Int()
	c.BufferKind = buffer.Kind(d.Int())
	c.Capacity = d.Int()
	c.Policy = arbiter.Policy(d.Int())
	c.Protocol = sw.Protocol(d.Int())
	c.ClocksPerCycle = d.Int()
	c.Traffic.Kind = TrafficKind(d.Int())
	c.Traffic.Load = d.F64()
	c.Traffic.HotFraction = d.F64()
	c.Traffic.HotDest = d.Int()
	c.Traffic.Perm = d.Ints()
	c.Traffic.MeanBurst = d.F64()
	c.Traffic.MinSlots = d.Int()
	c.Traffic.MaxSlots = d.Int()
	c.WarmupCycles = d.I64()
	c.MeasureCycles = d.I64()
	c.Seed = d.U64()
	c.Workers = d.Int()
	c.SharedPool = d.Bool()
	c.Sharing.Alpha = d.F64()
	c.Sharing.Classes = d.Int()
	c.Sharing.DelayTarget = d.I64()
	return c
}

func encodePacket(e *checkpoint.Encoder, p *packet.Packet) {
	e.U64(p.ID)
	e.Int(p.Source)
	e.Int(p.Dest)
	e.Int(p.Slots)
	e.I64(p.Born)
	e.I64(p.Injected)
	e.Bool(p.Hot)
	e.Int(p.OutPort)
	e.Int(p.Bytes)
	e.I64(p.ReadyAt)
}

// decodePacket reads one packet body and validates the fields the
// simulator indexes with: Source feeds FirstStageSwitch, OutPort names a
// crossbar output, and Slots is charged against a maxSlots-slot pool.
func (s *Sim) decodePacket(d *checkpoint.Decoder, maxSlots int) (*packet.Packet, error) {
	p := &packet.Packet{
		ID:       d.U64(),
		Source:   d.Int(),
		Dest:     d.Int(),
		Slots:    d.Int(),
		Born:     d.I64(),
		Injected: d.I64(),
		Hot:      d.Bool(),
		OutPort:  d.Int(),
		Bytes:    d.Int(),
		ReadyAt:  d.I64(),
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	if p.Source < 0 || p.Source >= s.cfg.Inputs || p.Dest < 0 || p.Dest >= s.cfg.Inputs {
		return nil, ckptErr("packet %d addressed %d->%d outside the %d-input network",
			p.ID, p.Source, p.Dest, s.cfg.Inputs)
	}
	if p.Slots < 1 || p.Slots > maxSlots {
		return nil, ckptErr("packet %d occupies %d slots of a %d-slot pool", p.ID, p.Slots, maxSlots)
	}
	if p.OutPort < 0 || p.OutPort >= s.cfg.Radix {
		return nil, ckptErr("packet %d routed to output %d of a radix-%d switch", p.ID, p.OutPort, s.cfg.Radix)
	}
	if p.Injected < -1 || p.Bytes < 0 {
		return nil, ckptErr("packet %d has impossible bookkeeping (injected %d, %d bytes)",
			p.ID, p.Injected, p.Bytes)
	}
	return p, nil
}

func encodeSummary(e *checkpoint.Encoder, st stats.SummaryState) {
	e.I64(st.N)
	e.F64(st.Mean)
	e.F64(st.M2)
	e.F64(st.Min)
	e.F64(st.Max)
}

func decodeSummary(d *checkpoint.Decoder) stats.SummaryState {
	return stats.SummaryState{N: d.I64(), Mean: d.F64(), M2: d.F64(), Min: d.F64(), Max: d.F64()}
}

func encodeRng(e *checkpoint.Encoder, src *rng.Source) {
	st := src.State()
	e.U64(st[0])
	e.U64(st[1])
	e.U64(st[2])
	e.U64(st[3])
}

func decodeRng(d *checkpoint.Decoder, src *rng.Source, what string) error {
	st := [4]uint64{d.U64(), d.U64(), d.U64(), d.U64()}
	if d.Err() != nil {
		return d.Err()
	}
	if err := src.SetState(st); err != nil {
		return ckptErr("%s stream: %v", what, err)
	}
	return nil
}

// rngSourced is the accessor every RNG-backed traffic pattern exposes.
type rngSourced interface{ Src() *rng.Source }

func (s *Sim) encodeSwitches(e *checkpoint.Encoder) error {
	for st := range s.stages {
		for _, swc := range s.stages[st] {
			ast := swc.Arbiter().SaveState()
			e.Int(ast.Prio)
			e.I64s(ast.Stale)
			if err := s.encodeSwitchPools(e, swc); err != nil {
				return err
			}
		}
	}
	return nil
}

// encodeSwitchPools writes the slot-pool state behind one switch: one
// pool when the switch shares storage across its inputs, one per input
// port otherwise. Packet bodies ride inside the pool state, each exactly
// once (multi-slot packets occupy several slots but serialize once).
func (s *Sim) encodeSwitchPools(e *checkpoint.Encoder, swc *sw.Switch) error {
	pools := swc.Ports()
	if s.cfg.SharedPool {
		pools = 1
	}
	for in := 0; in < pools; in++ {
		sp, ok := buffer.PoolOf(swc.Buffer(in))
		if !ok {
			return fmt.Errorf("netsim: %T buffer cannot be checkpointed", swc.Buffer(in))
		}
		st := sp.SaveState()
		e.I32s(st.Next)
		e.I32s(st.Owner)
		e.I32(st.FreeHead)
		e.I32(st.FreeTail)
		e.Int(st.FreeCount)
		e.I32s(st.QHead)
		e.I32s(st.QTail)
		e.Ints(st.QPkts)
		e.Ints(st.QSlots)
		e.Bool(st.Quar != nil)
		if st.Quar != nil {
			e.Bytes(st.Quar)
		}
		e.Int(st.QuarCount)
		e.Bool(st.HasClock)
		if st.HasClock {
			e.I64s(st.Stamp)
			e.I64(st.Now)
		}
		e.Int(len(st.Packets))
		for _, p := range st.Packets {
			encodePacket(e, p)
		}
	}
	return nil
}

func (s *Sim) decodeSwitches(d *checkpoint.Decoder) error {
	for st := range s.stages {
		for si, swc := range s.stages[st] {
			ast := arbiter.State{Prio: d.Int(), Stale: d.I64s()}
			if d.Err() != nil {
				return d.Err()
			}
			if err := swc.Arbiter().LoadState(ast); err != nil {
				return ckptErr("stage %d switch %d arbiter: %v", st, si, err)
			}
			if err := s.decodeSwitchPools(d, st, si, swc); err != nil {
				return err
			}
			swc.ResyncLen()
		}
	}
	return nil
}

func (s *Sim) decodeSwitchPools(d *checkpoint.Decoder, stIdx, si int, swc *sw.Switch) error {
	pools := swc.Ports()
	maxSlots := s.cfg.Capacity
	if s.cfg.SharedPool {
		pools = 1
		maxSlots = s.cfg.Capacity * s.cfg.Radix
	}
	for in := 0; in < pools; in++ {
		st := &buffer.SlotPoolState{
			Next:      d.I32s(),
			Owner:     d.I32s(),
			FreeHead:  d.I32(),
			FreeTail:  d.I32(),
			FreeCount: d.Int(),
			QHead:     d.I32s(),
			QTail:     d.I32s(),
			QPkts:     d.Ints(),
			QSlots:    d.Ints(),
		}
		if d.Bool() {
			st.Quar = d.Bytes()
		}
		st.QuarCount = d.Int()
		st.HasClock = d.Bool()
		if st.HasClock {
			st.Stamp = d.I64s()
			st.Now = d.I64()
		}
		n := d.Count(pktWireSize)
		for i := 0; i < n; i++ {
			p, err := s.decodePacket(d, maxSlots)
			if err != nil {
				return err
			}
			st.Packets = append(st.Packets, p)
		}
		if d.Err() != nil {
			return d.Err()
		}
		sp, ok := buffer.PoolOf(swc.Buffer(in))
		if !ok {
			return ckptErr("stage %d switch %d has no restorable pool", stIdx, si)
		}
		if err := sp.LoadState(st); err != nil {
			return ckptErr("stage %d switch %d input %d: %v", stIdx, si, in, err)
		}
		views := []buffer.Buffer{swc.Buffer(in)}
		if s.cfg.SharedPool {
			views = swc.Buffers()
		}
		if err := buffer.ResyncAfterRestore(views); err != nil {
			return ckptErr("stage %d switch %d input %d: %v", stIdx, si, in, err)
		}
	}
	return nil
}

// encodeSources writes the blocking protocol's unbounded source queues:
// per network input, the waiting packets front to back. Under discarding
// every queue is empty and the section is a run of zero counts.
func (s *Sim) encodeSources(e *checkpoint.Encoder) {
	for i := range s.srcQ {
		q := &s.srcQ[i]
		e.Int(q.Len())
		for j := 0; j < q.Len(); j++ {
			encodePacket(e, q.At(j))
		}
	}
}

func (s *Sim) decodeSources(d *checkpoint.Decoder) error {
	// A source-queued packet's size is only charged at admission (where
	// the buffer bounds it); the structural requirement here is the queue
	// index, so the slot bound is the loosest the config can generate.
	slotCap := s.cfg.Capacity
	if s.cfg.Traffic.MaxSlots > slotCap {
		slotCap = s.cfg.Traffic.MaxSlots
	}
	if s.cfg.Traffic.MinSlots > slotCap {
		slotCap = s.cfg.Traffic.MinSlots
	}
	for i := range s.srcQ {
		n := d.Count(pktWireSize)
		for j := 0; j < n; j++ {
			p, err := s.decodePacket(d, slotCap)
			if err != nil {
				return err
			}
			if p.Source != i {
				return ckptErr("packet %d queued at source %d claims source %d", p.ID, i, p.Source)
			}
			s.srcQ[i].PushBack(p)
		}
	}
	return d.Err()
}

func (s *Sim) encodeShards(e *checkpoint.Encoder) error {
	e.Int(len(s.shards))
	for _, sh := range s.shards {
		pat, ok := sh.pattern.(rngSourced)
		if !ok {
			return fmt.Errorf("netsim: %T traffic pattern cannot be checkpointed", sh.pattern)
		}
		encodeRng(e, pat.Src())
		if b, ok := sh.pattern.(*traffic.Bursty); ok {
			rem, dst := b.BurstState()
			e.Ints(rem)
			e.Ints(dst)
		}
		if ul, ok := sh.lengths.(traffic.UniformLengths); ok {
			encodeRng(e, ul.Src)
		}
		encodeRng(e, sh.phase)
		e.U64(sh.alloc.Issued())
		e.I64(sh.inFlight)
		e.I64(sh.srcBacklog)
		e.I64(sh.faulted)
		encodePartial(e, &sh.partial)
		for st := range sh.lastArb {
			e.I64s(sh.lastArb[st])
		}
	}
	return nil
}

func (s *Sim) decodeShards(d *checkpoint.Decoder, cycle int64) error {
	if n := d.Int(); n != len(s.shards) || d.Err() != nil {
		if d.Err() != nil {
			return d.Err()
		}
		return ckptErr("%d shard records for a %d-shard topology", n, len(s.shards))
	}
	for _, sh := range s.shards {
		pat, ok := sh.pattern.(rngSourced)
		if !ok {
			return ckptErr("%T traffic pattern cannot be restored", sh.pattern)
		}
		if err := decodeRng(d, pat.Src(), "traffic"); err != nil {
			return err
		}
		if b, ok := sh.pattern.(*traffic.Bursty); ok {
			rem, dst := d.Ints(), d.Ints()
			if d.Err() != nil {
				return d.Err()
			}
			if err := b.SetBurstState(rem, dst); err != nil {
				return ckptErr("shard %d burst registers: %v", sh.id, err)
			}
		}
		if ul, ok := sh.lengths.(traffic.UniformLengths); ok {
			if err := decodeRng(d, ul.Src, "length"); err != nil {
				return err
			}
		}
		if err := decodeRng(d, sh.phase, "phase"); err != nil {
			return err
		}
		sh.alloc.SetIssued(d.U64())
		sh.inFlight = d.I64()
		sh.srcBacklog = d.I64()
		sh.faulted = d.I64()
		if d.Err() != nil {
			return d.Err()
		}
		if sh.srcBacklog < 0 || sh.faulted < 0 {
			return ckptErr("shard %d has negative backlog or fault count", sh.id)
		}
		if err := decodePartial(d, &sh.partial, sh.id); err != nil {
			return err
		}
		for st := range sh.lastArb {
			arb := d.I64s()
			if d.Err() != nil {
				return d.Err()
			}
			if len(arb) != len(sh.lastArb[st]) {
				return ckptErr("shard %d stage %d has %d arbitration stamps for %d switches",
					sh.id, st, len(arb), len(sh.lastArb[st]))
			}
			for i, v := range arb {
				if v < -1 || v > cycle {
					return ckptErr("shard %d stage %d switch %d arbitrated at impossible cycle %d",
						sh.id, st, i, v)
				}
			}
			copy(sh.lastArb[st], arb)
		}
	}
	return nil
}

func encodePartial(e *checkpoint.Encoder, r *Result) {
	e.I64(r.Generated)
	e.I64(r.Injected)
	e.I64(r.Delivered)
	e.I64(r.DiscardedAtEntry)
	e.I64(r.DiscardedInNet)
	e.I64(r.FaultedInNet)
	encodeSummary(e, r.LatencyFromBorn.Save())
	encodeSummary(e, r.LatencyFromInjection.Save())
	encodeSummary(e, r.HotLatency.Save())
	encodeSummary(e, r.ColdLatency.Save())
	encodeSummary(e, r.Occupancy.Save())
	for st := range r.StageOccupancy {
		encodeSummary(e, r.StageOccupancy[st].Save())
	}
	h := r.LatencyHist.Save()
	e.F64(h.Width)
	e.I64s(h.Counts)
	e.I64(h.Overflow)
	e.I64(h.Total)
	e.F64(h.Sum)
}

func decodePartial(d *checkpoint.Decoder, r *Result, shardID int) error {
	r.Generated = d.I64()
	r.Injected = d.I64()
	r.Delivered = d.I64()
	r.DiscardedAtEntry = d.I64()
	r.DiscardedInNet = d.I64()
	r.FaultedInNet = d.I64()
	if d.Err() != nil {
		return d.Err()
	}
	for _, c := range []int64{r.Generated, r.Injected, r.Delivered,
		r.DiscardedAtEntry, r.DiscardedInNet, r.FaultedInNet} {
		if c < 0 {
			return ckptErr("shard %d has a negative packet counter", shardID)
		}
	}
	sums := []*stats.Summary{
		&r.LatencyFromBorn, &r.LatencyFromInjection,
		&r.HotLatency, &r.ColdLatency, &r.Occupancy,
	}
	for st := range r.StageOccupancy {
		sums = append(sums, &r.StageOccupancy[st])
	}
	for _, sum := range sums {
		st := decodeSummary(d)
		if d.Err() != nil {
			return d.Err()
		}
		if err := sum.Load(st); err != nil {
			return ckptErr("shard %d summary: %v", shardID, err)
		}
	}
	h := stats.HistogramState{
		Width:    d.F64(),
		Counts:   d.I64s(),
		Overflow: d.I64(),
		Total:    d.I64(),
		Sum:      d.F64(),
	}
	if d.Err() != nil {
		return d.Err()
	}
	if err := r.LatencyHist.Load(h); err != nil {
		return ckptErr("shard %d latency histogram: %v", shardID, err)
	}
	return nil
}

func (s *Sim) encodeFaults(e *checkpoint.Encoder) {
	fc := s.flt.cfg
	e.U64(fc.Seed)
	e.F64(fc.SlotStuckRate)
	e.F64(fc.WireCorruptRate)
	e.F64(fc.LinkTransientRate)
	e.F64(fc.LinkDeadRate)
	e.Int(fc.RetryLimit)
	e.Int(fc.RetryBackoff)
	e.Int(s.flt.next)
	e.I64(s.flt.quarSlots)
}

// decodeFaults re-arms fault injection from the resolved config (the
// schedule seed was resolved at the original SetFaults, so no derivation
// re-runs) and fast-forwards the slot-failure schedule past the events
// the checkpointed run already applied — the quarantined slots themselves
// ride in the pool states.
func (s *Sim) decodeFaults(d *checkpoint.Decoder) error {
	fc := fault.Config{
		Seed:              d.U64(),
		SlotStuckRate:     d.F64(),
		WireCorruptRate:   d.F64(),
		LinkTransientRate: d.F64(),
		LinkDeadRate:      d.F64(),
		RetryLimit:        d.Int(),
		RetryBackoff:      d.Int(),
	}
	next, quarSlots := d.Int(), d.I64()
	if d.Err() != nil {
		return d.Err()
	}
	if err := s.SetFaults(fc); err != nil {
		return ckptErr("fault config: %v", err)
	}
	if s.flt == nil {
		return ckptErr("fault section present but the stored config is disabled")
	}
	if next < 0 || next > len(s.flt.events) {
		return ckptErr("fault schedule position %d outside the %d-event schedule", next, len(s.flt.events))
	}
	if quarSlots < 0 || quarSlots < int64(next) {
		return ckptErr("%d quarantined slots with %d slot faults applied", quarSlots, next)
	}
	s.flt.next = next
	s.flt.quarSlots = quarSlots
	return nil
}

// obsState carries a checkpoint's instrument values on a restored Sim
// until an observer attaches (SetObserver applies and clears it). The
// names and histogram shapes were validated against this simulation's
// instrument set at restore time, so apply cannot fail or panic.
type obsState struct {
	interval   int64
	lastSample int64
	counters   []namedInt
	gauges     []namedInt
	hists      []histState
	series     []obs.IntervalRecord
}

type namedInt struct {
	name string
	val  int64
}

type histState struct {
	name     string
	width    int64
	buckets  []int64
	overflow int64
	total    int64
	sum      int64
}

func (st *obsState) apply(s *Sim) {
	m := s.metrics
	r := m.observer.Registry()
	for _, c := range st.counters {
		r.Counter(c.name).Set(c.val)
	}
	for _, g := range st.gauges {
		r.Gauge(g.name).Set(g.val)
	}
	for _, h := range st.hists {
		// Shape and totals were pre-validated; Restore cannot fail.
		_ = r.Histogram(h.name, len(h.buckets), h.width).Restore(h.buckets, h.overflow, h.total, h.sum)
	}
	m.observer.SetInterval(st.interval)
	m.observer.RestoreSeries(st.series)
	m.lastSample = st.lastSample
}

func (s *Sim) encodeObserver(e *checkpoint.Encoder) {
	o := s.metrics.observer
	r := o.Registry()
	e.I64(o.Interval())
	e.I64(s.metrics.lastSample)
	cnames := r.CounterNames()
	e.Int(len(cnames))
	for _, n := range cnames {
		e.String(n)
		e.I64(r.Counter(n).Value())
	}
	gnames := r.GaugeNames()
	e.Int(len(gnames))
	for _, n := range gnames {
		e.String(n)
		e.I64(r.Gauge(n).Value())
	}
	hnames := r.HistogramNames()
	e.Int(len(hnames))
	for _, n := range hnames {
		h, _ := r.LookupHistogram(n)
		e.String(n)
		e.I64(h.Width())
		e.I64s(h.Buckets())
		e.I64(h.Overflow())
		e.I64(h.Total())
		e.I64(h.Sum())
	}
	series := o.Series()
	e.Int(len(series))
	for i := range series {
		rec := &series[i]
		e.I64(rec.Cycle)
		e.I64(rec.Generated)
		e.I64(rec.Injected)
		e.I64(rec.Delivered)
		e.I64(rec.Discarded)
		e.I64(rec.InFlight)
		e.I64(rec.Backlog)
		e.I64(rec.LatencySum)
		e.I64(rec.LatencyCount)
	}
}

func (s *Sim) decodeObserver(d *checkpoint.Decoder) (*obsState, error) {
	st := &obsState{interval: d.I64(), lastSample: d.I64()}
	nc := d.Count(9)
	for i := 0; i < nc; i++ {
		st.counters = append(st.counters, namedInt{name: d.String(), val: d.I64()})
	}
	ng := d.Count(9)
	for i := 0; i < ng; i++ {
		st.gauges = append(st.gauges, namedInt{name: d.String(), val: d.I64()})
	}
	nh := d.Count(9)
	for i := 0; i < nh; i++ {
		st.hists = append(st.hists, histState{
			name:     d.String(),
			width:    d.I64(),
			buckets:  d.I64s(),
			overflow: d.I64(),
			total:    d.I64(),
			sum:      d.I64(),
		})
	}
	ns := d.Count(9 * 8)
	for i := 0; i < ns; i++ {
		st.series = append(st.series, obs.IntervalRecord{
			Cycle:        d.I64(),
			Generated:    d.I64(),
			Injected:     d.I64(),
			Delivered:    d.I64(),
			Discarded:    d.I64(),
			InFlight:     d.I64(),
			Backlog:      d.I64(),
			LatencySum:   d.I64(),
			LatencyCount: d.I64(),
		})
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	if err := s.validateObsState(st); err != nil {
		return nil, err
	}
	return st, nil
}

// validateObsState checks a decoded observer section against the
// instrument set this simulation registers: unknown names, mismatched
// histogram shapes, or inconsistent totals are corruption. Passing means
// obsState.apply cannot fail, whichever observer later attaches.
func (s *Sim) validateObsState(st *obsState) error {
	counters := map[string]bool{
		MetricGenerated: true, MetricInjected: true, MetricDelivered: true,
		MetricDiscardedEntry: true, MetricDiscardedNet: true,
		MetricGrants: true, MetricConflicts: true,
		MetricBlockedHeads: true, MetricOfferRefused: true,
	}
	gauges := map[string]bool{MetricInFlight: true, MetricSourceBacklog: true}
	for stage := range s.stages {
		gauges[StageOccupancyMetric(stage)] = true
	}
	type shape struct {
		buckets int
		width   int64
	}
	c := int64(s.cfg.ClocksPerCycle)
	hists := map[string]shape{
		MetricQueueDepth:      {s.cfg.Capacity + 1, 1},
		MetricLatencyBorn:     {4096, c},
		MetricLatencyInjected: {4096, c},
	}
	if buffer.KindModern(s.cfg.BufferKind) || s.cfg.SharedPool {
		poolCap := s.cfg.Capacity
		if s.cfg.SharedPool {
			poolCap *= s.cfg.Radix
		}
		hists[MetricPoolSlotsUsed] = shape{poolCap + 1, 1}
		counters[MetricPolicyRefused] = true
	}
	if s.flt != nil {
		counters[fault.MetricLinkDrops] = true
		counters[fault.MetricSlotsQuarantined] = true
	}
	for _, cv := range st.counters {
		if !counters[cv.name] {
			return ckptErr("checkpointed counter %q is not one this simulation registers", cv.name)
		}
		if cv.val < 0 {
			return ckptErr("checkpointed counter %q is negative", cv.name)
		}
	}
	for _, gv := range st.gauges {
		if !gauges[gv.name] {
			return ckptErr("checkpointed gauge %q is not one this simulation registers", gv.name)
		}
	}
	for _, hv := range st.hists {
		want, ok := hists[hv.name]
		if !ok {
			return ckptErr("checkpointed histogram %q is not one this simulation registers", hv.name)
		}
		if len(hv.buckets) != want.buckets || hv.width != want.width {
			return ckptErr("checkpointed histogram %q has shape %dx%d, this simulation registers %dx%d",
				hv.name, len(hv.buckets), hv.width, want.buckets, want.width)
		}
		var n int64
		for _, b := range hv.buckets {
			if b < 0 {
				return ckptErr("checkpointed histogram %q has a negative bucket", hv.name)
			}
			n += b
		}
		if hv.overflow < 0 || n+hv.overflow != hv.total {
			return ckptErr("checkpointed histogram %q total %d disagrees with its buckets", hv.name, hv.total)
		}
	}
	if st.interval < 0 {
		return ckptErr("negative observer interval %d", st.interval)
	}
	return nil
}

// checkpointSanity bounds a decoded config's geometry before New builds
// it. New's own validation is semantic (power-of-radix widths, policy
// compatibility); these caps are the restore path's defense against a
// corrupted stream that happens to decode into a structurally valid but
// astronomically large topology — the allocation must be refused as
// corruption, not attempted. Every cap sits far above the largest
// configuration the experiments run (the README tour's 1024×1024 network
// uses ~20K slots; the cap allows 4M).
func (c Config) checkpointSanity() error {
	c = c.withDefaults()
	if c.Radix < 2 || c.Radix > 256 || c.Inputs < c.Radix || c.Inputs > 1<<16 {
		return ckptErr("implausible topology (%d inputs, radix %d)", c.Inputs, c.Radix)
	}
	if c.Capacity < 1 || c.Capacity > 1<<12 {
		return ckptErr("implausible buffer capacity %d", c.Capacity)
	}
	if c.ClocksPerCycle < 1 || c.ClocksPerCycle > 1<<16 {
		return ckptErr("implausible clocks-per-cycle %d", c.ClocksPerCycle)
	}
	if c.WarmupCycles < 0 || c.MeasureCycles < 0 {
		return ckptErr("negative run length (%d warmup, %d measured)", c.WarmupCycles, c.MeasureCycles)
	}
	if c.Sharing.Classes < 0 || c.Sharing.Classes > 1<<12 {
		return ckptErr("implausible class count %d", c.Sharing.Classes)
	}
	if c.Traffic.MinSlots < 0 || c.Traffic.MinSlots > 1<<12 ||
		c.Traffic.MaxSlots < 0 || c.Traffic.MaxSlots > 1<<12 {
		return ckptErr("implausible packet sizes (%d..%d slots)", c.Traffic.MinSlots, c.Traffic.MaxSlots)
	}
	stages := 0
	for n := 1; n < c.Inputs && stages <= 16; n *= c.Radix {
		stages++
	}
	if slots := stages * (c.Inputs / c.Radix) * c.Radix * c.Capacity; slots > 1<<22 {
		return ckptErr("topology implies %d buffer slots, over the restore cap", slots)
	}
	return nil
}

// RestoreOpts adjusts how RestoreSimOpts rebuilds the simulation.
type RestoreOpts struct {
	// Workers overrides the checkpointed Workers knob when WorkersSet is
	// true. The shard partition is a pure function of the topology, so a
	// checkpoint taken at any worker count restores at any other with
	// byte-identical results.
	Workers    int
	WorkersSet bool
}

// RestoreSim reads a checkpoint written by Checkpoint and rebuilds the
// simulation at the exact cycle it was captured: continuing it (Run,
// RunCtx, Step) produces byte-identical results to the uninterrupted
// run. Corrupted or truncated input yields an error wrapping
// cfgerr.ErrBadCheckpoint (cfgerr.ErrCheckpointVersion for a version
// mismatch), never a panic. An observed run's instrument values are
// carried over and applied when SetObserver attaches an observer.
func RestoreSim(r io.Reader) (*Sim, error) {
	return RestoreSimOpts(r, RestoreOpts{})
}

// RestoreSimOpts is RestoreSim with execution-knob overrides.
func RestoreSimOpts(r io.Reader, opts RestoreOpts) (*Sim, error) {
	d, err := checkpoint.NewDecoder(r)
	if err != nil {
		return nil, err
	}
	secs := make(map[uint8]*checkpoint.Decoder)
	order := []uint8{secConfig, secCore, secSwitches, secSources, secShards, secFaults, secObserver}
	pos := 0
	for {
		tag, body, ok := d.Section()
		if !ok {
			break
		}
		for pos < len(order) && order[pos] != tag {
			pos++
		}
		if pos == len(order) {
			return nil, ckptErr("unknown or out-of-order section tag %d", tag)
		}
		secs[tag] = body
		pos++
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	for _, tag := range order[:5] {
		if secs[tag] == nil {
			return nil, ckptErr("checkpoint is missing section %d", tag)
		}
	}

	cfgd := secs[secConfig]
	cfg := decodeConfig(cfgd)
	if err := cfgd.Done(); err != nil {
		return nil, err
	}
	if opts.WorkersSet {
		cfg.Workers = opts.Workers
	}
	if err := cfg.checkpointSanity(); err != nil {
		return nil, err
	}
	s, err := New(cfg)
	if err != nil {
		return nil, ckptErr("checkpointed config: %v", err)
	}
	ok := false
	defer func() {
		if !ok {
			s.Close()
		}
	}()

	cored := secs[secCore]
	cycle := cored.I64()
	warmupBoundary := cored.I64()
	measured := cored.I64()
	backlog := decodeSummary(cored)
	if err := cored.Done(); err != nil {
		return nil, err
	}
	if cycle < 0 || measured < 0 || measured > cycle ||
		warmupBoundary < 0 || warmupBoundary > cycle {
		return nil, ckptErr("impossible clock state (cycle %d, measured %d, boundary %d)",
			cycle, measured, warmupBoundary)
	}
	if backlog.N != measured {
		return nil, ckptErr("backlog summary has %d samples over %d measured cycles", backlog.N, measured)
	}

	// Faults re-arm before the cycle counter moves (SetFaults requires
	// cycle 0) and before the observer section is validated (fault
	// instruments are only expected when faults are armed).
	if fd := secs[secFaults]; fd != nil {
		if err := s.decodeFaults(fd); err != nil {
			return nil, err
		}
		if err := fd.Done(); err != nil {
			return nil, err
		}
	}
	if err := s.decodeSwitches(secs[secSwitches]); err != nil {
		return nil, err
	}
	if err := secs[secSwitches].Done(); err != nil {
		return nil, err
	}
	if err := s.decodeSources(secs[secSources]); err != nil {
		return nil, err
	}
	if err := secs[secSources].Done(); err != nil {
		return nil, err
	}
	if err := s.decodeShards(secs[secShards], cycle); err != nil {
		return nil, err
	}
	if err := secs[secShards].Done(); err != nil {
		return nil, err
	}
	if od := secs[secObserver]; od != nil {
		st, err := s.decodeObserver(od)
		if err != nil {
			return nil, err
		}
		if err := od.Done(); err != nil {
			return nil, err
		}
		s.pendingObs = st
	}

	if err := s.resyncAfterRestore(); err != nil {
		return nil, err
	}
	s.cycle = cycle
	s.warmupBoundary = warmupBoundary
	s.measured = measured
	if err := s.backlog.Load(backlog); err != nil {
		return nil, ckptErr("backlog summary: %v", err)
	}
	ok = true
	return s, nil
}

// resyncAfterRestore rebuilds the derived per-shard structures (active
// sets, sorted by construction) and cross-checks the global conservation
// invariants that tie the decoded sections together: the shards'
// in-flight counters must sum to the packets actually buffered, and each
// shard's backlog counter must equal its own source queues' lengths.
func (s *Sim) resyncAfterRestore() error {
	var buffered, inFlight int64
	for st := range s.stages {
		for _, swc := range s.stages[st] {
			buffered += int64(swc.Len())
		}
	}
	for _, sh := range s.shards {
		inFlight += sh.inFlight
		for st := range s.stages {
			sh.active[st] = sh.active[st][:0]
			for si := sh.lo; si < sh.hi; si++ {
				if !s.stages[st][si].Empty() {
					sh.active[st] = append(sh.active[st], int32(si))
				}
			}
		}
		var backlog int64
		for _, src := range sh.srcs {
			backlog += int64(s.srcQ[src].Len())
		}
		if backlog != sh.srcBacklog {
			return ckptErr("shard %d backlog counter %d disagrees with %d queued packets",
				sh.id, sh.srcBacklog, backlog)
		}
	}
	if inFlight != buffered {
		return ckptErr("in-flight counters sum to %d but %d packets are buffered", inFlight, buffered)
	}
	return nil
}
