package netsim

import (
	"testing"

	"damq/internal/buffer"
	"damq/internal/sw"
)

func TestLatencyPercentiles(t *testing.T) {
	sim, err := New(baseCfg(buffer.DAMQ, sw.Blocking, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	p50 := res.LatencyP(0.50)
	p99 := res.LatencyP(0.99)
	if p50 <= 0 || p99 < p50 {
		t.Fatalf("p50 = %v, p99 = %v", p50, p99)
	}
	// The median approximates the mean's neighborhood at moderate load
	// (the distribution is right-skewed, so median <= mean + bucket).
	if p50 > res.LatencyFromBorn.Mean()+12 {
		t.Fatalf("median %v implausibly above mean %v", p50, res.LatencyFromBorn.Mean())
	}
}

func TestLatencyPEmpty(t *testing.T) {
	var r Result
	if r.LatencyP(0.5) != 0 {
		t.Fatal("empty result percentile should be 0")
	}
}

// TestTreeSaturationGradient reproduces the mechanism behind Table 6.
// The saturation tree is rooted at the one last-stage switch feeding the
// hot module: 1 of 16 switches in stage 2, 4 of 16 in stage 1, all 16 in
// stage 0. Averaged per switch, occupancy therefore *increases* toward
// the sources — the congestion "spreads from the hot spot as its root ...
// all the way up to the senders" (Pfister & Norton via the paper).
func TestTreeSaturationGradient(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation run")
	}
	cfg := baseCfg(buffer.DAMQ, sw.Blocking, 1.0)
	cfg.Traffic = TrafficSpec{Kind: HotSpot, Load: 1.0, HotFraction: 0.05, HotDest: 0}
	cfg.WarmupCycles = 3000
	cfg.MeasureCycles = 5000
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	if len(res.StageOccupancy) != 3 {
		t.Fatalf("stage occupancy rows = %d", len(res.StageOccupancy))
	}
	// Compare against uniform traffic at moderate load: the hot-spot
	// saturated network must be much fuller at every stage.
	uniCfg := baseCfg(buffer.DAMQ, sw.Blocking, 0.24)
	uniSim, err := New(uniCfg)
	if err != nil {
		t.Fatal(err)
	}
	uniRes := uniSim.Run()
	s0 := res.StageOccupancy[0].Mean()
	s1 := res.StageOccupancy[1].Mean()
	s2 := res.StageOccupancy[2].Mean()
	// Monotone back-up toward the sources.
	if !(s0 > s1 && s1 > s2) {
		t.Errorf("no tree-saturation gradient: stage occupancies %.2f, %.2f, %.2f", s0, s1, s2)
	}
	// And the first stage is far above its uniform-traffic level, while
	// the last stage (15 of 16 switches outside the tree) stays moderate.
	if u0 := uniRes.StageOccupancy[0].Mean(); s0 < 3*u0 {
		t.Errorf("stage 0 not saturated: %v vs uniform %v", s0, u0)
	}
}
