package netsim

import (
	"testing"

	"damq/internal/arbiter"
	"damq/internal/buffer"
	"damq/internal/sw"
)

// TestStepSteadyStateAllocs pins the simulator's allocation diet: once a
// run reaches steady state (scratch grown, free list populated, histogram
// and occupancy summaries allocated), stepping the network must be
// allocation-free up to rare amortized events — free-list growth when the
// in-flight high-water mark rises, or a ring buffer doubling. Regressions
// here (a closure recreated per cycle, a queue rebuilt per pop, arbiter
// scratch reallocated) show up as allocations proportional to switch or
// packet counts and fail the test loudly.
func TestStepSteadyStateAllocs(t *testing.T) {
	cases := []struct {
		name     string
		kind     buffer.Kind
		protocol sw.Protocol
		load     float64
	}{
		// No saturated blocking case: there the source backlog grows
		// without bound, so the live packet set — and with it genuine
		// allocation — must grow too. Sub-saturation runs reach a plateau
		// and must then be allocation-free.
		{"DAMQ blocking 0.5", buffer.DAMQ, sw.Blocking, 0.5},
		{"DAMQ discarding saturated", buffer.DAMQ, sw.Discarding, 1.0},
		{"FIFO discarding 0.5", buffer.FIFO, sw.Discarding, 0.5},
		{"SAFC blocking 0.5", buffer.SAFC, sw.Blocking, 0.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sim, err := New(Config{
				BufferKind: tc.kind,
				Capacity:   4,
				Policy:     arbiter.Smart,
				Protocol:   tc.protocol,
				Traffic:    TrafficSpec{Kind: Uniform, Load: tc.load},
				Seed:       7,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Reach steady state with measurement on, so all scratch —
			// outboxes, pending-grant lists, free lists — has grown to its
			// high-water mark.
			for i := 0; i < 2000; i++ {
				sim.Step(true)
			}
			avg := testing.AllocsPerRun(500, func() {
				sim.Step(true)
			})
			const limit = 0.05
			if avg > limit {
				t.Errorf("steady-state Step allocates %.3f allocs/op, want <= %v", avg, limit)
			}
		})
	}
}
