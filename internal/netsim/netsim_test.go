package netsim

import (
	"math"
	"testing"

	"damq/internal/arbiter"
	"damq/internal/buffer"
	"damq/internal/sw"
	"damq/internal/traffic"
)

func baseCfg(kind buffer.Kind, proto sw.Protocol, load float64) Config {
	return Config{
		BufferKind:    kind,
		Capacity:      4,
		Policy:        arbiter.Smart,
		Protocol:      proto,
		Traffic:       TrafficSpec{Kind: Uniform, Load: load},
		WarmupCycles:  500,
		MeasureCycles: 4000,
		Seed:          1,
	}
}

func TestNewValidation(t *testing.T) {
	cfg := baseCfg(buffer.FIFO, sw.Blocking, 0.5)
	cfg.Inputs = 63
	if _, err := New(cfg); err == nil {
		t.Error("accepted non-power inputs")
	}
	cfg = baseCfg(buffer.FIFO, sw.Blocking, 1.5)
	if _, err := New(cfg); err == nil {
		t.Error("accepted load > 1")
	}
	cfg = baseCfg(buffer.SAMQ, sw.Blocking, 0.5)
	cfg.Capacity = 5
	if _, err := New(cfg); err == nil {
		t.Error("accepted SAMQ capacity not divisible by radix")
	}
	cfg = baseCfg(buffer.FIFO, sw.Blocking, 0.5)
	cfg.Traffic.Kind = TrafficKind(99)
	if _, err := New(cfg); err == nil {
		t.Error("accepted unknown traffic kind")
	}
}

func TestDefaultsApplied(t *testing.T) {
	sim, err := New(Config{BufferKind: buffer.DAMQ, Traffic: TrafficSpec{Kind: Uniform, Load: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Topology().Inputs() != 64 || sim.Topology().Radix() != 4 {
		t.Fatal("defaults not applied")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		sim, err := New(baseCfg(buffer.DAMQ, sw.Blocking, 0.5))
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run()
	}
	a, b := run(), run()
	if a.Delivered != b.Delivered || a.Generated != b.Generated ||
		a.LatencyFromBorn.Mean() != b.LatencyFromBorn.Mean() {
		t.Fatalf("same seed, different results: %+v vs %+v", a.Delivered, b.Delivered)
	}
}

func TestSeedMatters(t *testing.T) {
	cfg := baseCfg(buffer.DAMQ, sw.Blocking, 0.5)
	simA, _ := New(cfg)
	cfg.Seed = 2
	simB, _ := New(cfg)
	if simA.Run().Generated == simB.Run().Generated {
		t.Fatal("different seeds produced identical generation counts (suspicious)")
	}
}

// TestBlockingConservation: under blocking no packet is ever lost:
// everything generated is delivered, in flight, or queued at a source.
func TestBlockingConservation(t *testing.T) {
	for _, kind := range buffer.Kinds() {
		sim, err := New(baseCfg(kind, sw.Blocking, 0.6))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3000; i++ {
			sim.Step(true)
		}
		res := sim.Collect()
		accounted := res.Delivered + sim.InFlight() + sim.SourceBacklogLen()
		if res.Generated != accounted {
			t.Fatalf("%v: generated %d != delivered %d + inflight %d + backlog %d",
				kind, res.Generated, res.Delivered, sim.InFlight(), sim.SourceBacklogLen())
		}
		if res.DiscardedAtEntry != 0 || res.DiscardedInNet != 0 {
			t.Fatalf("%v: blocking protocol discarded packets", kind)
		}
	}
}

// TestDiscardingConservation: generated = injected + discarded-at-entry;
// injected = delivered + discarded-in-net + in flight.
func TestDiscardingConservation(t *testing.T) {
	for _, kind := range buffer.Kinds() {
		sim, err := New(baseCfg(kind, sw.Discarding, 0.9))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3000; i++ {
			sim.Step(true)
		}
		res := sim.Collect()
		if res.Generated != res.Injected+res.DiscardedAtEntry {
			t.Fatalf("%v: generated %d != injected %d + entry discards %d",
				kind, res.Generated, res.Injected, res.DiscardedAtEntry)
		}
		if res.Injected != res.Delivered+res.DiscardedInNet+sim.InFlight() {
			t.Fatalf("%v: injected %d != delivered %d + net discards %d + inflight %d",
				kind, res.Injected, res.Delivered, res.DiscardedInNet, sim.InFlight())
		}
	}
}

// TestZeroLoadLatencyFloor: with near-zero traffic every packet takes the
// contention-free pipeline: ~42.5 clocks from birth (3 hops x 12 clocks +
// injection cycle - mean half-cycle birth phase), exactly 36 from
// injection.
func TestZeroLoadLatencyFloor(t *testing.T) {
	cfg := baseCfg(buffer.DAMQ, sw.Blocking, 0.02)
	cfg.MeasureCycles = 6000
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	if m := res.LatencyFromInjection.Mean(); m < 36 || m > 37.5 {
		t.Fatalf("near-zero-load injection latency = %v, want just above the 36-clock floor", m)
	}
	if m := res.LatencyFromBorn.Mean(); m < 40 || m > 45 {
		t.Fatalf("zero-load born latency = %v, want ~42.5", m)
	}
}

// TestThroughputMatchesOfferBelowSaturation: a stable network delivers
// what is offered.
func TestThroughputMatchesOfferBelowSaturation(t *testing.T) {
	for _, kind := range buffer.Kinds() {
		sim, err := New(baseCfg(kind, sw.Blocking, 0.3))
		if err != nil {
			t.Fatal(err)
		}
		res := sim.Run()
		if math.Abs(res.Throughput()-0.3) > 0.01 {
			t.Fatalf("%v: throughput %v at offered 0.3", kind, res.Throughput())
		}
	}
}

// TestSaturationOrdering reproduces Table 4's headline: at full offered
// load the DAMQ network sustains ~40%% more throughput than FIFO, with
// SAMQ and SAFC in between.
func TestSaturationOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("long saturation runs")
	}
	thr := map[buffer.Kind]float64{}
	for _, kind := range buffer.Kinds() {
		cfg := baseCfg(kind, sw.Blocking, 1.0)
		cfg.WarmupCycles = 2000
		cfg.MeasureCycles = 8000
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		thr[kind] = sim.Run().Throughput()
	}
	if !(thr[buffer.DAMQ] > thr[buffer.SAFC] && thr[buffer.SAFC] > thr[buffer.SAMQ] && thr[buffer.SAMQ] > thr[buffer.FIFO]-0.02) {
		t.Fatalf("saturation ordering wrong: %v", thr)
	}
	if gain := thr[buffer.DAMQ] / thr[buffer.FIFO]; gain < 1.30 {
		t.Fatalf("DAMQ/FIFO saturation gain = %.2f, want >= 1.30", gain)
	}
}

// TestHotSpotEqualizesSaturation reproduces Table 6: with 5%% hot-spot
// traffic every buffer type tree-saturates at the same ~0.24 throughput.
func TestHotSpotEqualizesSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("long saturation runs")
	}
	for _, kind := range buffer.Kinds() {
		cfg := baseCfg(kind, sw.Blocking, 1.0)
		cfg.Traffic = TrafficSpec{Kind: HotSpot, Load: 1.0, HotFraction: 0.05, HotDest: 0}
		cfg.WarmupCycles = 3000
		cfg.MeasureCycles = 8000
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		thr := sim.Run().Throughput()
		if math.Abs(thr-0.24) > 0.02 {
			t.Fatalf("%v: hot-spot saturation = %v, want ~0.24", kind, thr)
		}
	}
}

// TestDiscardingDAMQBest reproduces Table 3's ordering at 0.5 load.
func TestDiscardingDAMQBest(t *testing.T) {
	frac := map[buffer.Kind]float64{}
	for _, kind := range buffer.Kinds() {
		cfg := baseCfg(kind, sw.Discarding, 0.5)
		cfg.MeasureCycles = 6000
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		frac[kind] = sim.Run().DiscardFraction()
	}
	if !(frac[buffer.DAMQ] < frac[buffer.FIFO] && frac[buffer.DAMQ] < frac[buffer.SAFC] && frac[buffer.DAMQ] < frac[buffer.SAMQ]) {
		t.Fatalf("DAMQ does not discard least: %v", frac)
	}
	if frac[buffer.DAMQ] > 0.01 {
		t.Fatalf("DAMQ discard at 0.5 load = %v, want < 1%%", frac[buffer.DAMQ])
	}
}

// TestPermutationIdentityDeliversAll: the identity permutation is
// conflict-free on an Omega network, so even FIFO at full load suffers no
// contention and latency sits at the floor.
func TestPermutationIdentityDeliversAll(t *testing.T) {
	cfg := baseCfg(buffer.FIFO, sw.Blocking, 1.0)
	cfg.Traffic = TrafficSpec{Kind: Permutation, Load: 1.0, Perm: traffic.Identity(64)}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	if math.Abs(res.Throughput()-1.0) > 0.01 {
		t.Fatalf("identity permutation throughput = %v", res.Throughput())
	}
	if res.LatencyFromInjection.Mean() != 36 {
		t.Fatalf("identity permutation latency = %v, want 36", res.LatencyFromInjection.Mean())
	}
}

// TestVariableLengthRuns: the variable-length extension must run and keep
// conservation; DAMQ must beat FIFO in saturation throughput there too.
func TestVariableLengthRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("long runs")
	}
	thr := map[buffer.Kind]float64{}
	for _, kind := range []buffer.Kind{buffer.FIFO, buffer.DAMQ} {
		cfg := baseCfg(kind, sw.Blocking, 1.0)
		cfg.Capacity = 8
		cfg.Traffic.MinSlots = 1
		cfg.Traffic.MaxSlots = 4
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		thr[kind] = sim.Run().Throughput()
	}
	if thr[buffer.DAMQ] <= thr[buffer.FIFO] {
		t.Fatalf("varlen: DAMQ %v !> FIFO %v", thr[buffer.DAMQ], thr[buffer.FIFO])
	}
}

// TestHotColdLatencySplit: hot packets must see (much) higher latency than
// cold ones near hot-spot saturation.
func TestHotColdLatencySplit(t *testing.T) {
	cfg := baseCfg(buffer.DAMQ, sw.Blocking, 0.22)
	cfg.Traffic = TrafficSpec{Kind: HotSpot, Load: 0.22, HotFraction: 0.05, HotDest: 0}
	cfg.WarmupCycles = 2000
	cfg.MeasureCycles = 6000
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	if res.HotLatency.N() == 0 || res.ColdLatency.N() == 0 {
		t.Fatal("latency split has empty classes")
	}
	if res.HotLatency.Mean() <= res.ColdLatency.Mean() {
		t.Fatalf("hot latency %v <= cold %v near saturation",
			res.HotLatency.Mean(), res.ColdLatency.Mean())
	}
}

// TestSmartVsDumbClose: Table 3's observation — arbitration policy barely
// moves the numbers at moderate load.
func TestSmartVsDumbClose(t *testing.T) {
	get := func(policy arbiter.Policy) float64 {
		cfg := baseCfg(buffer.DAMQ, sw.Blocking, 0.5)
		cfg.Policy = policy
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run().LatencyFromBorn.Mean()
	}
	smart, dumb := get(arbiter.Smart), get(arbiter.Dumb)
	if math.Abs(smart-dumb)/smart > 0.15 {
		t.Fatalf("smart %v vs dumb %v differ by more than 15%%", smart, dumb)
	}
}

func TestResultHelpersEmpty(t *testing.T) {
	var r Result
	if r.Throughput() != 0 || r.OfferedLoad() != 0 || r.DiscardFraction() != 0 {
		t.Fatal("empty result helpers should be 0")
	}
}
