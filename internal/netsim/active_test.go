package netsim

import (
	"reflect"
	"testing"

	"damq/internal/arbiter"
	"damq/internal/buffer"
	"damq/internal/sw"
)

// TestActiveSetMatchesFullScan is the equivalence property behind the
// active-set optimization: a run that arbitrates only switches holding
// packets (with idle fast-forwarding) must produce bit-identical results
// to the naive reference that arbitrates every switch every cycle. Any
// divergence — a missed activation, a wrong AdvanceIdle count, a stale
// occupancy counter — shows up as a mismatch in the Result fields, which
// include every counter, latency summary, histogram bucket, and occupancy
// trace of the run.
func TestActiveSetMatchesFullScan(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"uniform low blocking DAMQ", Config{
			BufferKind: buffer.DAMQ, Capacity: 4, Policy: arbiter.Smart, Protocol: sw.Blocking,
			Traffic: TrafficSpec{Kind: Uniform, Load: 0.15},
			Seed:    11, WarmupCycles: 300, MeasureCycles: 1200,
		}},
		{"uniform high blocking FIFO dumb", Config{
			BufferKind: buffer.FIFO, Capacity: 4, Policy: arbiter.Dumb, Protocol: sw.Blocking,
			Traffic: TrafficSpec{Kind: Uniform, Load: 0.7},
			Seed:    12, WarmupCycles: 300, MeasureCycles: 1200,
		}},
		{"uniform saturated discarding SAMQ", Config{
			BufferKind: buffer.SAMQ, Capacity: 4, Policy: arbiter.Smart, Protocol: sw.Discarding,
			Traffic: TrafficSpec{Kind: Uniform, Load: 1.0},
			Seed:    13, WarmupCycles: 300, MeasureCycles: 1200,
		}},
		{"hot-spot blocking DAMQ", Config{
			BufferKind: buffer.DAMQ, Capacity: 4, Policy: arbiter.Smart, Protocol: sw.Blocking,
			Traffic: TrafficSpec{Kind: HotSpot, Load: 0.3, HotFraction: 0.05},
			Seed:    14, WarmupCycles: 300, MeasureCycles: 1200,
		}},
		{"hot-spot discarding SAFC", Config{
			BufferKind: buffer.SAFC, Capacity: 4, Policy: arbiter.Smart, Protocol: sw.Discarding,
			Traffic: TrafficSpec{Kind: HotSpot, Load: 0.5, HotFraction: 0.05},
			Seed:    15, WarmupCycles: 300, MeasureCycles: 1200,
		}},
		{"bursty blocking DAMQ varlen", Config{
			BufferKind: buffer.DAMQ, Capacity: 8, Policy: arbiter.Smart, Protocol: sw.Blocking,
			Traffic: TrafficSpec{Kind: Bursty, Load: 0.25, MeanBurst: 3, MinSlots: 1, MaxSlots: 2},
			Seed:    16, WarmupCycles: 300, MeasureCycles: 1200,
		}},
		{"small radix-2 network", Config{
			Radix: 2, Inputs: 16,
			BufferKind: buffer.DAMQ, Capacity: 4, Policy: arbiter.Smart, Protocol: sw.Blocking,
			Traffic: TrafficSpec{Kind: Uniform, Load: 0.4},
			Seed:    17, WarmupCycles: 300, MeasureCycles: 1200,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fast, err := New(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := New(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref.fullScan = true

			got := fast.Run()
			want := ref.Run()
			if !reflect.DeepEqual(got, want) {
				t.Errorf("active-set result diverges from full-scan reference:\n got: %+v\nwant: %+v", got, want)
			}
			if fast.InFlight() != ref.InFlight() {
				t.Errorf("InFlight: active-set %d, full-scan %d", fast.InFlight(), ref.InFlight())
			}
			if fast.SourceBacklogLen() != ref.SourceBacklogLen() {
				t.Errorf("SourceBacklogLen: active-set %d, full-scan %d",
					fast.SourceBacklogLen(), ref.SourceBacklogLen())
			}
			// The active lists (unioned across shards) must agree with
			// actual switch occupancy at the end of the run.
			for st := range fast.stages {
				listed := make(map[int]bool)
				for _, sh := range fast.shards {
					for _, si := range sh.active[st] {
						listed[int(si)] = true
					}
				}
				for si, swc := range fast.stages[st] {
					if swc.Empty() == listed[si] {
						t.Errorf("stage %d switch %d: Empty=%v but active-listed=%v",
							st, si, swc.Empty(), listed[si])
					}
					if refLen := ref.stages[st][si].Len(); swc.Len() != refLen {
						t.Errorf("stage %d switch %d: occupancy %d, reference %d",
							st, si, swc.Len(), refLen)
					}
				}
			}
		})
	}
}

// TestActiveSetSortedInvariant checks the structural invariant Step relies
// on for deterministic iteration order: active lists stay sorted and
// duplicate-free as switches churn in and out of the set.
func TestActiveSetSortedInvariant(t *testing.T) {
	sim, err := New(Config{
		BufferKind: buffer.DAMQ, Capacity: 4, Policy: arbiter.Smart, Protocol: sw.Blocking,
		Traffic: TrafficSpec{Kind: Uniform, Load: 0.3}, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 800; i++ {
		sim.Step(true)
		for _, sh := range sim.shards {
			for st := range sh.active {
				for j, si := range sh.active[st] {
					if int(si) < sh.lo || int(si) >= sh.hi {
						t.Fatalf("cycle %d shard %d stage %d: switch %d outside [%d,%d)",
							i, sh.id, st, si, sh.lo, sh.hi)
					}
					if j > 0 && sh.active[st][j-1] >= si {
						t.Fatalf("cycle %d shard %d stage %d: active list not strictly sorted: %v",
							i, sh.id, st, sh.active[st])
					}
				}
			}
		}
	}
}
