package netsim

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"damq/internal/arbiter"
	"damq/internal/buffer"
	"damq/internal/cfgerr"
	"damq/internal/sw"
)

// shardTestCases cover both protocols, the 2×2 fast-path radix, variable
// lengths, and bursty traffic — every code path whose work the shards
// split.
func shardTestCases() []struct {
	name string
	cfg  Config
} {
	return []struct {
		name string
		cfg  Config
	}{
		{"blocking DAMQ uniform", Config{
			BufferKind: buffer.DAMQ, Capacity: 4, Policy: arbiter.Smart, Protocol: sw.Blocking,
			Traffic:      TrafficSpec{Kind: Uniform, Load: 0.6},
			WarmupCycles: 200, MeasureCycles: 1200,
		}},
		{"discarding SAMQ saturated", Config{
			BufferKind: buffer.SAMQ, Capacity: 4, Policy: arbiter.Dumb, Protocol: sw.Discarding,
			Traffic:      TrafficSpec{Kind: Uniform, Load: 0.9},
			WarmupCycles: 200, MeasureCycles: 1200,
		}},
		{"radix-2 blocking FIFO", Config{
			Radix: 2, Inputs: 64,
			BufferKind: buffer.FIFO, Capacity: 4, Policy: arbiter.Smart, Protocol: sw.Blocking,
			Traffic:      TrafficSpec{Kind: Uniform, Load: 0.4},
			WarmupCycles: 200, MeasureCycles: 1200,
		}},
		{"hot-spot bursty varlen DAMQ", Config{
			BufferKind: buffer.DAMQ, Capacity: 8, Policy: arbiter.Smart, Protocol: sw.Blocking,
			Traffic:      TrafficSpec{Kind: Bursty, Load: 0.25, MeanBurst: 3, MinSlots: 1, MaxSlots: 2},
			WarmupCycles: 200, MeasureCycles: 1200,
		}},
	}
}

// TestShardedMatchesSerial is the tentpole's acceptance pin: one network
// stepped with any -workers count produces a Result identical — every
// counter, every Welford summary word, every histogram bucket — to the
// serial run. reflect.DeepEqual compares the unexported float state too,
// so "byte-identical" here is literal. Run under -race this test also
// proves the phase barriers are sound.
func TestShardedMatchesSerial(t *testing.T) {
	for _, tc := range shardTestCases() {
		for _, seed := range []uint64{1, 2, 3, 4, 5} {
			t.Run(fmt.Sprintf("%s/seed%d", tc.name, seed), func(t *testing.T) {
				cfg := tc.cfg
				cfg.Seed = seed
				ref, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				want := ref.Run()
				for _, workers := range []int{1, 3, 8} {
					cfg.Workers = workers
					sim, err := New(cfg)
					if err != nil {
						t.Fatal(err)
					}
					got := sim.Run()
					sim.Close()
					if !reflect.DeepEqual(got, want) {
						t.Errorf("workers=%d diverges from serial:\n got: %+v\nwant: %+v",
							workers, got, want)
					}
					if sim.InFlight() != ref.InFlight() || sim.SourceBacklogLen() != ref.SourceBacklogLen() {
						t.Errorf("workers=%d: InFlight/backlog %d/%d, serial %d/%d", workers,
							sim.InFlight(), sim.SourceBacklogLen(), ref.InFlight(), ref.SourceBacklogLen())
					}
				}
			})
		}
	}
}

// TestShardedStepAfterClose: Close releases the gang but not the Sim —
// further Steps fall back to the serial path and continue the exact same
// trajectory a never-closed run would take.
func TestShardedStepAfterClose(t *testing.T) {
	cfg := baseCfg(buffer.DAMQ, sw.Blocking, 0.5)
	cfg.Workers = 4
	mixed, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for i := 0; i < 400; i++ {
		mixed.Step(true)
		ref.Step(true)
	}
	mixed.Close()
	for i := 0; i < 400; i++ {
		mixed.Step(true)
		ref.Step(true)
	}
	if got, want := mixed.Collect(), ref.Collect(); !reflect.DeepEqual(got, want) {
		t.Errorf("post-Close trajectory diverges:\n got: %+v\nwant: %+v", got, want)
	}
}

// TestWorkersValidation pins Config.Workers semantics: counts above the
// switches-per-stage shard bound are rejected with cfgerr.ErrBadWorkers,
// everything else (including negative = auto) is accepted and clamped.
func TestWorkersValidation(t *testing.T) {
	cfg := baseCfg(buffer.DAMQ, sw.Blocking, 0.3) // 64 inputs, radix 4: 16 switches/stage
	cfg.Workers = 17
	if _, err := New(cfg); !errors.Is(err, cfgerr.ErrBadWorkers) {
		t.Fatalf("Workers=17 on 16 switches/stage: err = %v, want ErrBadWorkers", err)
	}
	cfg.Workers = 17
	if err := cfg.Validate(); !errors.Is(err, cfgerr.ErrBadWorkers) {
		t.Fatalf("Validate(Workers=17) = %v, want ErrBadWorkers", err)
	}
	for _, w := range []int{-1, 0, 1, 16} {
		cfg.Workers = w
		sim, err := New(cfg)
		if err != nil {
			t.Fatalf("Workers=%d rejected: %v", w, err)
		}
		if got := sim.Workers(); got < 1 || got > 16 {
			t.Fatalf("Workers=%d resolved to %d, want within [1,16]", w, got)
		}
		sim.Close()
	}
}

// TestCollectReportsMeasuredCycles: Collect's MeasureCycles reflects the
// measuring steps actually taken, and Workers is scrubbed from the
// reported config (execution knob, not model parameter).
func TestCollectReportsMeasuredCycles(t *testing.T) {
	cfg := baseCfg(buffer.DAMQ, sw.Blocking, 0.3)
	cfg.Workers = 4
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	for i := 0; i < 100; i++ {
		sim.Step(false)
	}
	for i := 0; i < 250; i++ {
		sim.Step(true)
	}
	res := sim.Collect()
	if res.Config.MeasureCycles != 250 {
		t.Errorf("MeasureCycles = %d, want 250", res.Config.MeasureCycles)
	}
	if res.Config.Workers != 0 {
		t.Errorf("reported Workers = %d, want 0", res.Config.Workers)
	}
}

// TestChaosSoakConservationSharded extends the chaos soak to the sharded
// engine: thousands of cycles of mixed slot/link faults at -workers 4,
// asserting the conservation invariant
//
//	injected == delivered + discarded-in-net + faulted + in-flight
//
// and, against a serial twin, that the fault schedule and every counter
// replay byte-for-byte — faults are pure functions of (seed, site,
// cycle), so sharding must not move a single drop.
func TestChaosSoakConservationSharded(t *testing.T) {
	const cycles = 8_000
	var totalFaulted, totalQuarantined int64
	for _, kind := range []buffer.Kind{buffer.DAMQ, buffer.DAFC} {
		for _, proto := range []sw.Protocol{sw.Discarding, sw.Blocking} {
			for _, seed := range []uint64{1, 2, 3} {
				name := fmt.Sprintf("%v/%v/seed%d", kind, proto, seed)
				t.Run(name, func(t *testing.T) {
					fc := chaosFaults
					fc.Seed = seed * 977
					run := func(workers int) (*Sim, *Result) {
						cfg := chaosConfig(kind, proto, seed)
						cfg.Workers = workers
						s, err := New(cfg)
						if err != nil {
							t.Fatal(err)
						}
						if err := s.SetFaults(fc); err != nil {
							t.Fatal(err)
						}
						for i := 0; i < cycles; i++ {
							s.Step(true)
							if i%1000 == 999 {
								if err := s.CheckBuffers(); err != nil {
									t.Fatalf("workers=%d cycle %d: %v", workers, i, err)
								}
							}
						}
						res := s.Collect()
						s.Close()
						return s, res
					}
					s, res := run(4)
					got := res.Delivered + res.DiscardedInNet + res.FaultedInNet + s.InFlight()
					if res.Injected != got {
						t.Fatalf("conservation broken: injected %d != delivered %d + discarded %d + faulted %d + inflight %d",
							res.Injected, res.Delivered, res.DiscardedInNet, res.FaultedInNet, s.InFlight())
					}
					sSerial, resSerial := run(1)
					if !reflect.DeepEqual(res, resSerial) {
						t.Fatalf("faulted sharded run diverges from serial:\n got: %+v\nwant: %+v", res, resSerial)
					}
					if s.Faulted() != sSerial.Faulted() || s.QuarantinedSlots() != sSerial.QuarantinedSlots() {
						t.Fatalf("fault totals diverge: %d/%d vs %d/%d",
							s.Faulted(), s.QuarantinedSlots(), sSerial.Faulted(), sSerial.QuarantinedSlots())
					}
					totalFaulted += res.FaultedInNet
					totalQuarantined += s.QuarantinedSlots()
				})
			}
		}
	}
	if totalFaulted == 0 {
		t.Fatal("no link fault fired across the whole sharded soak")
	}
	if totalQuarantined == 0 {
		t.Fatal("no slot was quarantined across the whole sharded soak")
	}
}
