// Package netsim simulates a multistage Omega network of n×n switches
// under the paper's Section 4.2 assumptions (following Pfister & Norton):
// transmissions are synchronized, so a packet fully moves from one stage
// to the next once per "network cycle" of ClocksPerCycle clock cycles
// (12 in the paper: 8 to transmit + 4 to route); processors are message
// generators, memories are message receivers.
//
// One network cycle (three barrier-separated phases; DESIGN.md §11):
//
//  1. Arbitrate: every switch arbitrates its crossbar against the
//     pre-movement state. Under the blocking protocol a queue whose head
//     cannot be stored downstream is masked from arbitration (the paper's
//     "longest queue ... which was not blocked"). Grants are recorded but
//     nothing is popped, so every arbitration decision — including the
//     downstream-admission probes — reads one consistent snapshot.
//  2. Move: all granted packets are popped, then delivered: last-stage
//     packets exit to their memory module; others are routed toward the
//     next stage's input buffer. Pops happen before accepts, so a slot
//     freed this cycle can hold a packet arriving this cycle.
//  3. Inject: routed packets enter next-stage buffers (under the
//     discarding protocol a packet that finds its buffer full is
//     dropped), then sources inject: newly generated packets (plus,
//     under blocking, the backlog waiting in unbounded source queues)
//     enter first-stage buffers; under discarding a generated packet
//     that does not fit is dropped at entry.
//
// The network is partitioned into shards — contiguous switch ranges
// applied to every stage, plus the sources and deliveries wired to them.
// Each shard owns its switches' buffers, arbiters, active sets, RNG
// streams, and measurement partials; cross-shard traffic moves through
// per-(writer, reader) outboxes handed over at the phase barriers. The
// shard count is a pure function of the topology, so results are
// byte-identical at any worker count (Config.Workers), including 1.
//
// Latency accounting (DESIGN.md §4): a packet is born at clock
// cycle*C + u with u uniform in [0, C); it is delivered at the end of the
// cycle that pops it from the last stage, clock (cycle+1)*C. End-to-end
// latency (LatencyFromBorn) includes source queueing; network latency
// (LatencyFromInjection) counts from the end of the injection cycle and is
// the right metric in saturated regimes where source queues grow without
// bound.
package netsim

import (
	"context"
	"fmt"

	"damq/internal/arbiter"
	"damq/internal/buffer"
	"damq/internal/cfgerr"
	"damq/internal/omega"
	"damq/internal/packet"
	"damq/internal/parallel"
	"damq/internal/pktq"
	"damq/internal/rng"
	"damq/internal/stats"
	"damq/internal/sw"
	"damq/internal/traffic"
)

// TrafficKind selects the workload.
type TrafficKind int

const (
	// Uniform random destinations (paper Tables 3-5, Figure 3).
	Uniform TrafficKind = iota
	// HotSpot re-addresses a fraction of packets to one module (Table 6).
	HotSpot
	// Permutation uses one fixed destination per source.
	Permutation
	// Bursty generates multi-packet messages: geometric-length bursts of
	// packets to one destination, back to back (the message extension).
	Bursty
)

// TrafficSpec describes the workload.
type TrafficSpec struct {
	Kind TrafficKind
	// Load is offered packets per source per network cycle.
	Load float64
	// HotFraction and HotDest configure HotSpot (e.g. 0.05 and 0).
	HotFraction float64
	HotDest     int
	// Perm configures Permutation.
	Perm []int
	// MeanBurst configures Bursty: mean message length in packets (>= 1).
	MeanBurst float64
	// MinSlots/MaxSlots give packet sizes; 0,0 means fixed single-slot
	// packets. MaxSlots > MinSlots enables the variable-length extension.
	MinSlots, MaxSlots int
}

// Config describes one simulation run.
type Config struct {
	Radix          int // switch size n (4 in the paper)
	Inputs         int // network width N (64 in the paper)
	BufferKind     buffer.Kind
	Capacity       int // slots per input buffer (4 in most tables)
	Policy         arbiter.Policy
	Protocol       sw.Protocol
	ClocksPerCycle int // 12 in the paper
	Traffic        TrafficSpec
	WarmupCycles   int64
	MeasureCycles  int64
	Seed           uint64
	// Workers shards this one run's per-cycle work across goroutines:
	// 0 or 1 means serial, n > 1 uses up to n workers (silently clamped
	// to the shard count), and a negative value means GOMAXPROCS. The
	// shard partition is a pure function of the topology, so results are
	// byte-identical at every worker count; Validate rejects counts above
	// SwitchesPerStage (cfgerr.ErrBadWorkers). Collected Results report
	// this field as 0 — it is an execution knob, not a model parameter.
	Workers int
	// SharedPool makes every switch pool its input buffers into one
	// Radix*Capacity-slot storage group (the "2026" sharing geometry).
	// Requires a pooled kind (buffer.KindSharesPool).
	SharedPool bool
	// Sharing tunes the modern admission policies (DT/FB/BSHARE); the
	// zero value means paper-reasonable defaults. Ignored by the four
	// 1988 kinds and DAFC, and Validate rejects knobs set on a kind
	// that does not read them.
	Sharing buffer.Sharing
}

// Validate checks the config (after default-filling, so a zero Config is
// valid) under the repo-wide sentinel-error convention: every failure
// wraps one of the internal/cfgerr sentinels (ErrBadRadix, ErrBadKind,
// ErrBadCapacity, ErrBadPolicy, ErrBadProtocol, ErrBadLoad,
// ErrBadTraffic, ErrBadWorkers) so callers classify with errors.Is. New
// calls it first; CLIs may call it directly for early flag feedback.
func (c Config) Validate() error {
	c = c.withDefaults()
	if _, err := omega.New(c.Radix, c.Inputs); err != nil {
		return fmt.Errorf("netsim: %v: %w", err, cfgerr.ErrBadRadix)
	}
	bufCfg := buffer.Config{Kind: c.BufferKind, NumOutputs: c.Radix, Capacity: c.Capacity, Sharing: c.Sharing}
	if err := bufCfg.Validate(); err != nil {
		return fmt.Errorf("netsim: %w", err)
	}
	if c.SharedPool && !buffer.KindSharesPool(c.BufferKind) {
		return fmt.Errorf("netsim: %v (policy %s) cannot span input ports as a shared pool: %w",
			c.BufferKind, c.BufferKind.PolicyName(), cfgerr.ErrBadSharing)
	}
	if c.SharedPool && c.Protocol == sw.Blocking {
		// Blocking relies on arbitrate-phase probes guaranteeing the
		// inject-phase Offer. Per-port admission is monotone between the
		// two (pops only loosen every policy's threshold), but one pool
		// spanning ports can approve n probes individually and overflow
		// on their sum, so the guarantee does not survive pooling.
		return fmt.Errorf("netsim: shared pool admission is not port-independent, which the blocking protocol's probe contract requires: %w",
			cfgerr.ErrBadSharing)
	}
	if c.Policy != arbiter.Dumb && c.Policy != arbiter.Smart {
		return fmt.Errorf("netsim: unknown policy %v: %w", c.Policy, cfgerr.ErrBadPolicy)
	}
	if c.Protocol != sw.Discarding && c.Protocol != sw.Blocking {
		return fmt.Errorf("netsim: unknown protocol %v: %w", c.Protocol, cfgerr.ErrBadProtocol)
	}
	if c.Traffic.Load < 0 || c.Traffic.Load > 1 {
		return fmt.Errorf("netsim: load %v out of [0,1]: %w", c.Traffic.Load, cfgerr.ErrBadLoad)
	}
	if spp := c.Inputs / c.Radix; c.Workers > spp {
		return fmt.Errorf("netsim: %d workers exceed the %d switches per stage a %d-input radix-%d run can shard to: %w",
			c.Workers, spp, c.Inputs, c.Radix, cfgerr.ErrBadWorkers)
	}
	// Exercise the real traffic constructor so pattern-specific rules
	// (hot fraction range, permutation shape, burst length) cannot drift
	// from what New accepts. The throwaway source is seeded from the
	// caller's own seed and discarded.
	if _, err := c.buildPattern(rng.New(c.Seed)); err != nil {
		return fmt.Errorf("%v: %w", err, cfgerr.ErrBadTraffic)
	}
	return nil
}

// buildPattern constructs the workload's traffic pattern; both Validate
// and New route through it so they cannot disagree.
func (c Config) buildPattern(src *rng.Source) (traffic.Pattern, error) {
	switch c.Traffic.Kind {
	case Uniform:
		return traffic.NewUniform(c.Inputs, c.Traffic.Load, src)
	case HotSpot:
		return traffic.NewHotSpot(c.Inputs, c.Traffic.Load,
			c.Traffic.HotFraction, c.Traffic.HotDest, src)
	case Permutation:
		return traffic.NewPermutation(c.Traffic.Perm, c.Traffic.Load, src)
	case Bursty:
		return traffic.NewBursty(c.Inputs, c.Traffic.Load, c.Traffic.MeanBurst, src)
	}
	return nil, fmt.Errorf("netsim: unknown traffic kind %d", c.Traffic.Kind)
}

// withDefaults fills unset fields with the paper's values.
func (c Config) withDefaults() Config {
	if c.Radix == 0 {
		c.Radix = 4
	}
	if c.Inputs == 0 {
		c.Inputs = 64
	}
	if c.Capacity == 0 {
		c.Capacity = 4
	}
	if c.ClocksPerCycle == 0 {
		c.ClocksPerCycle = 12
	}
	if c.WarmupCycles == 0 {
		c.WarmupCycles = 1000
	}
	if c.MeasureCycles == 0 {
		c.MeasureCycles = 10000
	}
	return c
}

// Result aggregates a run's measurements.
type Result struct {
	Config Config

	Generated        int64 // packets born in the measurement window
	Injected         int64 // packets entering stage 0 in the window
	Delivered        int64 // packets delivered in the window
	DiscardedAtEntry int64 // discarding protocol: dropped before stage 0
	DiscardedInNet   int64 // discarding protocol: dropped between stages
	// FaultedInNet counts packets dropped on dead or flapping links in
	// the window (SetFaults). Distinct from DiscardedInNet so protocol
	// losses and injected-fault losses never blur; zero (and absent from
	// JSON) on fault-free runs.
	FaultedInNet int64 `json:",omitempty"`

	// LatencyFromBorn includes source-queue wait (clock cycles).
	LatencyFromBorn stats.Summary
	// LatencyFromInjection counts from first-stage entry (clock cycles).
	LatencyFromInjection stats.Summary
	// HotLatency/ColdLatency split LatencyFromBorn by packet class.
	HotLatency  stats.Summary
	ColdLatency stats.Summary
	// Occupancy is the time-average number of buffered packets per switch.
	Occupancy stats.Summary
	// StageOccupancy is the per-stage time-average buffered packets per
	// switch; under hot-spot traffic it shows tree saturation filling the
	// stages closest to the hot module first.
	StageOccupancy []stats.Summary
	// LatencyHist buckets LatencyFromBorn (12-clock buckets, 4096-clock
	// span) for percentile reporting.
	LatencyHist *stats.Histogram
	// SourceBacklog is the time-average total source-queue length
	// (blocking protocol only).
	SourceBacklog stats.Summary
}

// LatencyP returns the q-quantile of LatencyFromBorn (e.g. 0.99).
func (r *Result) LatencyP(q float64) float64 {
	if r.LatencyHist == nil {
		return 0
	}
	return r.LatencyHist.Quantile(q)
}

// Throughput is delivered packets per network input per cycle — the
// x-axis of Figure 3 and the "saturation throughput" metric.
func (r *Result) Throughput() float64 {
	d := float64(r.Config.Inputs) * float64(r.Config.MeasureCycles)
	if d == 0 {
		return 0
	}
	return float64(r.Delivered) / d
}

// OfferedLoad is generated packets per input per cycle.
func (r *Result) OfferedLoad() float64 {
	d := float64(r.Config.Inputs) * float64(r.Config.MeasureCycles)
	if d == 0 {
		return 0
	}
	return float64(r.Generated) / d
}

// DiscardFraction is the fraction of generated packets discarded anywhere
// (Table 3's "percent discarded" divided by 100). Fault drops are not
// protocol discards; see FaultFraction.
func (r *Result) DiscardFraction() float64 {
	if r.Generated == 0 {
		return 0
	}
	return float64(r.DiscardedAtEntry+r.DiscardedInNet) / float64(r.Generated)
}

// FaultFraction is the fraction of generated packets lost to injected
// link faults.
func (r *Result) FaultFraction() float64 {
	if r.Generated == 0 {
		return 0
	}
	return float64(r.FaultedInNet) / float64(r.Generated)
}

// maxShards caps the shard count: shards are the unit of both parallelism
// and RNG-stream partitioning, so the count must stay a pure function of
// the topology (never of the machine) for results to be byte-identical
// everywhere. 16 covers every worker count Validate can accept on the
// paper-sized networks and keeps per-shard bookkeeping negligible.
const maxShards = 16

// shardCount returns the fixed shard count for a topology with spp
// switches per stage.
func shardCount(spp int) int {
	if spp < maxShards {
		return spp
	}
	return maxShards
}

// Gang phase numbers (the argument Step hands to parallel.Gang.Run).
const (
	phaseArbitrate = iota
	phaseMove
	phaseInject
)

// Sim is one instantiated network.
type Sim struct {
	cfg    Config
	top    *omega.Topology
	stages [][]*sw.Switch
	srcQ   []pktq.Queue // blocking backlog per network input; shard-partitioned
	cycle  int64
	// warmupBoundary is the cycle measurement began; packets born earlier
	// are excluded from latency statistics.
	warmupBoundary int64
	// measured counts measuring Steps; Collect reports it as the result's
	// MeasureCycles so partial (cancelled) runs describe themselves.
	measured int64
	// measuring is the current Step's measurement flag, published to the
	// gang workers before the first phase barrier of the cycle.
	measuring bool

	// shards partition every stage's switches into contiguous ranges; all
	// mutable per-cycle state lives in them. shardOfSw maps a switch index
	// to its owner.
	shards    []*shard
	shardOfSw []int32
	// workers is the effective intra-run worker count; gang is the
	// lockstep crew driving the shards when workers > 1 (nil otherwise,
	// and ignored while an observer is attached — see Step).
	workers int
	gang    *parallel.Gang

	// backlog holds the coordinator-sampled global source-backlog summary
	// (it needs all shards' counters, so it cannot live in a partial).
	backlog stats.Summary

	// fullScan forces the naive every-switch arbitration path; the
	// active-set equivalence property test runs it as the reference model.
	fullScan bool

	// needTick is set when the buffer kind's admission policy reads
	// packet ages (buffer.KindUsesClock); each shard then ticks its own
	// switches at the end of the inject phase. Clockless runs skip the
	// sweep entirely.
	needTick bool

	// metrics is the attached observability probe set (SetObserver); nil
	// means unobserved. Every hot-path use is nil-guarded, so detached
	// runs execute no instrument code and stay bit-identical — the
	// pattern damqvet's zeroalloc rule polices. An observed Sim always
	// steps its shards serially (the instruments are shared), which by
	// the sharding contract changes nothing.
	metrics *netMetrics

	// flt is the attached fault-injection state (SetFaults); nil means
	// fault-free. Like metrics, every hot-path use sits behind a nil
	// check, so fault-free runs are bit-identical and allocation-free.
	flt *netFaults

	// recordDeliv, when set (RecordDeliveries), makes every shard log the
	// identity tuple of each measured delivery; Deliveries merges the
	// logs in shard order. Off by default — the log grows with the run.
	recordDeliv bool

	// pendingObs carries checkpointed instrument values on a restored
	// Sim until SetObserver re-registers the instruments and applies
	// them; nil otherwise. See netsim/checkpoint.go.
	pendingObs *obsState
}

// shard owns a contiguous range [lo, hi) of every stage's switches, the
// sources wired into its stage-0 range, and the deliveries leaving its
// last-stage range. All its mutable state — buffers (via the switches),
// active sets, RNG streams, measurement partials — is written only by its
// owner; everything a shard reads of its peers (downstream buffers during
// arbitration, outboxes during injection) is frozen by the phase barriers.
// damqvet's sharded rule enforces the ownership discipline at the source
// level.
type shard struct {
	sim    *Sim
	id     int
	lo, hi int // switch range [lo, hi) in every stage

	// srcs lists the network inputs feeding stage-0 switches [lo, hi),
	// ascending — the shuffle wiring strides them across the shards.
	srcs []int32

	// Per-shard RNG-backed generators, split from the master seed in
	// shard order so the streams are a pure function of (seed, shard).
	pattern traffic.Pattern
	lengths traffic.Lengths
	phase   *rng.Source // birth-phase offsets for this shard's deliveries
	alloc   packet.Alloc

	// partial accumulates this shard's measurement slice; Collect merges
	// the partials in shard order. Its Config field stays zero.
	partial Result
	// deliv logs this shard's measured deliveries when the sim's
	// recordDeliv flag is set; Deliveries merges the logs in shard order.
	deliv []Delivery
	// inFlight/srcBacklog/faulted are this shard's slices of the global
	// conservation counters. inFlight can go locally negative (a packet
	// injected here may be delivered by another shard); only the sum is
	// meaningful.
	inFlight   int64
	srcBacklog int64
	faulted    int64

	// Active-set tracking (DESIGN.md "Performance model"): active[st] is
	// the sorted list of this shard's switch indices in stage st holding
	// at least one buffered packet. The arbitrate phase visits only
	// those; a switch leaves the set when its last packet is popped
	// (move phase) and re-enters when a packet lands in it (inject
	// phase); on re-entry its arbiter is fast-forwarded through the empty
	// rounds it sat out (AdvanceIdle), so results are bit-identical to
	// arbitrating every switch every cycle.
	active [][]int32
	// lastArb[st][si-lo] is the cycle the switch last ran (or was fast-
	// forwarded through) arbitration; -1 before its first packet.
	lastArb [][]int64

	// probes holds one blocking probe per (stage, owned switch), built at
	// construction: creating the closures inside the step would allocate.
	probes [][]sw.BlockProbe
	// probePkt is scratch for the blocking probe's routed copy of a head
	// packet; one per shard so concurrent probes never share it.
	probePkt packet.Packet

	grantScratch []arbiter.Grant
	// pending records the arbitrate phase's grants; pops are deferred to
	// the move phase so arbitration network-wide sees one pre-movement
	// snapshot.
	pending []pendingGrant
	// outbox[d] carries this shard's routed transfers into shard d's
	// switches; d drains it in the inject phase, after the barrier.
	outbox [][]xfer
}

// pendingGrant is one recorded arbitration outcome: switch si of stage st
// may pop grant g in the move phase.
type pendingGrant struct {
	st, si int32
	g      arbiter.Grant
}

// xfer is one routed inter-stage transfer: packet p enters input port in
// of switch si in stage st (OutPort already rewritten for that stage).
type xfer struct {
	p          *packet.Packet
	st, si, in int32
}

// New validates cfg and builds the network.
func New(cfg Config) (*Sim, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	top, err := omega.New(cfg.Radix, cfg.Inputs)
	if err != nil {
		return nil, err
	}
	s := &Sim{cfg: cfg, top: top, needTick: buffer.KindUsesClock(cfg.BufferKind)}

	for st := 0; st < top.Stages(); st++ {
		var row []*sw.Switch
		for i := 0; i < top.SwitchesPerStage(); i++ {
			swc, err := sw.New(sw.Config{
				Ports:      cfg.Radix,
				BufferKind: cfg.BufferKind,
				Capacity:   cfg.Capacity,
				Policy:     cfg.Policy,
				SharedPool: cfg.SharedPool,
				Sharing:    cfg.Sharing,
			})
			if err != nil {
				return nil, err
			}
			row = append(row, swc)
		}
		s.stages = append(s.stages, row)
	}
	s.srcQ = make([]pktq.Queue, cfg.Inputs)

	spp := top.SwitchesPerStage()
	nShards := shardCount(spp)
	s.shardOfSw = make([]int32, spp)
	// One master stream; each shard splits three private streams from it
	// in shard order, so the partition of randomness is a pure function
	// of (seed, shard) and never of the worker count.
	master := rng.New(cfg.Seed)
	for k := 0; k < nShards; k++ {
		sh := &shard{
			sim: s,
			id:  k,
			lo:  k * spp / nShards,
			hi:  (k + 1) * spp / nShards,
		}
		trafficSrc := master.Split()
		sh.phase = master.Split()
		lenSrc := master.Split()
		sh.pattern, err = cfg.buildPattern(trafficSrc)
		if err != nil {
			return nil, err
		}
		if cfg.Traffic.MaxSlots > cfg.Traffic.MinSlots {
			sh.lengths = traffic.UniformLengths{Lo: cfg.Traffic.MinSlots, Hi: cfg.Traffic.MaxSlots, Src: lenSrc}
		} else if cfg.Traffic.MinSlots > 1 {
			sh.lengths = traffic.Fixed(cfg.Traffic.MinSlots)
		} else {
			sh.lengths = traffic.Fixed(1)
		}
		sh.alloc.SetIDStream(uint64(k), uint64(nShards))

		own := sh.hi - sh.lo
		for si := sh.lo; si < sh.hi; si++ {
			s.shardOfSw[si] = int32(k)
		}
		sh.partial.LatencyHist = stats.NewHistogram(4096, float64(cfg.ClocksPerCycle))
		sh.partial.StageOccupancy = make([]stats.Summary, top.Stages())
		sh.active = make([][]int32, top.Stages())
		sh.lastArb = make([][]int64, top.Stages())
		sh.probes = make([][]sw.BlockProbe, top.Stages())
		for st := 0; st < top.Stages(); st++ {
			sh.active[st] = make([]int32, 0, own)
			sh.lastArb[st] = make([]int64, own)
			for i := range sh.lastArb[st] {
				sh.lastArb[st][i] = -1
			}
			sh.probes[st] = make([]sw.BlockProbe, own)
			for si := sh.lo; si < sh.hi; si++ {
				sh.probes[st][si-sh.lo] = sh.blockProbe(st, si)
			}
		}
		sh.grantScratch = make([]arbiter.Grant, 0, cfg.Radix)
		sh.pending = make([]pendingGrant, 0, own*top.Stages()*cfg.Radix)
		sh.outbox = make([][]xfer, nShards)
		for d := range sh.outbox {
			sh.outbox[d] = make([]xfer, 0, own*cfg.Radix/nShards+cfg.Radix)
		}
		s.shards = append(s.shards, sh)
	}
	for src := 0; src < cfg.Inputs; src++ {
		swIdx, _ := top.FirstStageSwitch(src)
		sh := s.shards[s.shardOfSw[swIdx]]
		sh.srcs = append(sh.srcs, int32(src))
	}

	w := cfg.Workers
	if w < 0 {
		w = parallel.Workers(0)
	}
	if w < 1 {
		w = 1
	}
	if w > nShards {
		w = nShards
	}
	s.workers = w
	if w > 1 {
		s.gang = parallel.NewGang(w, s.runPhase)
	}
	return s, nil
}

// Topology exposes the network's topology.
func (s *Sim) Topology() *omega.Topology { return s.top }

// Cycle returns the current network cycle.
func (s *Sim) Cycle() int64 { return s.cycle }

// Workers returns the effective intra-run worker count (after clamping).
func (s *Sim) Workers() int { return s.workers }

// InFlight returns the number of packets buffered in switches.
func (s *Sim) InFlight() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.inFlight
	}
	return n
}

// SourceBacklogLen returns the total packets waiting in source queues.
func (s *Sim) SourceBacklogLen() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.srcBacklog
	}
	return n
}

// Close releases the worker goroutines of a sharded Sim (no-op when the
// run is serial, idempotent always). A closed Sim keeps working — further
// Steps fall back to the serial path, which computes identical results.
// Run and RunCtx do not close the Sim; callers who construct a Sim with
// Workers > 1 and abandon it without Close leak its worker goroutines.
func (s *Sim) Close() {
	if s.gang != nil {
		s.gang.Close()
		s.gang = nil
	}
}

// noteAccept records that a packet entered switch si of stage st (owned
// by this shard). On the 0→1 occupancy transition the switch re-enters
// the active set: its arbiter is fast-forwarded through every empty round
// it was skipped for, and it is re-inserted into the sorted index list.
// damqvet:sharded audited: st,si is always an owned coordinate (si in [lo,hi)), so the switch and its arbiter belong to this shard's partition
// damqvet:hotpath
func (sh *shard) noteAccept(st, si int) {
	s := sh.sim
	swc := s.stages[st][si]
	if swc.Len() != 1 || s.fullScan {
		return
	}
	if skipped := s.cycle - sh.lastArb[st][si-sh.lo]; skipped > 0 {
		swc.AdvanceIdle(skipped)
	}
	sh.lastArb[st][si-sh.lo] = s.cycle
	sh.activate(st, si)
}

// activate inserts si into stage st's sorted active list. Insertion moves
// at most the tail of the list; active sets are small by construction.
// damqvet:hotpath
func (sh *shard) activate(st, si int) {
	lst := append(sh.active[st], 0)
	i := len(lst) - 1
	for i > 0 && lst[i-1] > int32(si) {
		lst[i] = lst[i-1]
		i--
	}
	lst[i] = int32(si)
	sh.active[st] = lst
}

// blockProbe builds the blocking-protocol probe for stage st switch si:
// the head packet for output out is blocked iff the downstream buffer it
// would enter cannot store it right now. The downstream switch may belong
// to any shard; the probe only reads it, and only in the arbitrate phase,
// when no buffer changes anywhere.
func (sh *shard) blockProbe(st, si int) sw.BlockProbe {
	s := sh.sim
	if s.cfg.Protocol != sw.Blocking || st == s.top.Stages()-1 {
		// Last stage feeds memories, which always accept.
		return nil
	}
	return func(out int, p *packet.Packet) bool {
		nsw, nport := s.top.NextStage(si, out)
		// Probe with a routed copy so p itself is not mutated; the copy
		// lives in shard-owned scratch to keep the probe allocation-free
		// and race-free across concurrent shards.
		sh.probePkt = *p
		sh.probePkt.OutPort = s.top.RouteDigit(p.Dest, st+1)
		return !s.stages[st+1][nsw].CanAcceptAt(nport, &sh.probePkt)
	}
}

// Step advances the network one cycle. Measurements accumulate in the
// shard partials when measuring is true (the warmup loop passes false);
// read them with Collect.
// damqvet:hotpath
func (s *Sim) Step(measuring bool) {
	// Fault schedule, cycle start: slots whose failure time has arrived
	// leave service before anything moves this cycle, so arbitration and
	// flow control see the shrunken capacity consistently. Coordinator-
	// serial: it precedes the first barrier.
	if s.flt != nil && s.flt.next < len(s.flt.events) {
		s.applyDueSlotFaults()
	}

	s.measuring = measuring
	if g := s.gang; g != nil && s.metrics == nil {
		g.Run(phaseArbitrate)
		g.Run(phaseMove)
		g.Run(phaseInject)
	} else {
		// Serial path: same shards, same phase order, one goroutine. An
		// observed Sim always takes it (shared instruments), and by the
		// sharding contract produces byte-identical results.
		for _, sh := range s.shards {
			sh.phaseArbitrateRun()
		}
		for _, sh := range s.shards {
			sh.phaseMoveRun()
		}
		for _, sh := range s.shards {
			sh.phaseInjectRun()
		}
	}

	if measuring {
		// Global source-backlog sample: needs every shard's counter, so
		// the coordinator takes it after the last barrier. The full-scan
		// reference recomputes it from the queues to cross-check.
		var backlog int64
		for _, sh := range s.shards {
			backlog += sh.srcBacklog
		}
		if s.fullScan {
			backlog = 0
			for i := range s.srcQ {
				backlog += int64(s.srcQ[i].Len())
			}
		}
		s.backlog.Add(float64(backlog))
		if s.metrics != nil {
			s.sampleMetrics(backlog)
		}
		s.measured++
	}
	if s.cycle&(rebalanceStride-1) == rebalanceStride-1 {
		s.rebalanceFreeLists()
	}
	s.cycle++
}

// rebalanceStride is how often (in cycles) the coordinator evens the
// shard packet pools. Between rebalances the birth-heavy pools drift and
// may allocate; that growth is one-time (the surplus stays in
// circulation), so the stride trades a slightly higher pool high-water
// mark for epilogue work too cheap to see in the cycle benchmarks. Must
// be a power of two.
const rebalanceStride = 32

// rebalanceFreeLists evens the shards' packet pools in the serial
// epilogue. Packets recycle into the pool of the shard that retires
// them (delivery or discard site), not the shard that birthed them, so
// left alone the birth-heavy pools allocate every cycle while the
// delivery-heavy ones hoard — a steady allocation leak at scale.
// Free-list lengths are deterministic functions of the trajectory, the
// coordinator moves packets in fixed shard order, and a donated packet
// carries no observable state, so results are unchanged at any worker
// count.
func (s *Sim) rebalanceFreeLists() {
	if len(s.shards) < 2 {
		return
	}
	total := 0
	for _, sh := range s.shards {
		total += sh.alloc.FreeListLen()
	}
	target := total / len(s.shards)
	lo, hi := 0, 0 // next taker, next donor
	for {
		for lo < len(s.shards) && s.shards[lo].alloc.FreeListLen() >= target {
			lo++
		}
		for hi < len(s.shards) && s.shards[hi].alloc.FreeListLen() <= target {
			hi++
		}
		if lo == len(s.shards) || hi == len(s.shards) {
			return
		}
		taker, donor := s.shards[lo], s.shards[hi]
		n := target - taker.alloc.FreeListLen()
		if surplus := donor.alloc.FreeListLen() - target; surplus < n {
			n = surplus
		}
		donor.alloc.Donate(&taker.alloc, n)
	}
}

// runPhase executes one phase for every shard in worker w's static block
// — the function the gang drives. Workers own fixed contiguous shard
// ranges, so scheduling never affects which goroutine touches what.
func (s *Sim) runPhase(w, phase int) {
	lo := w * len(s.shards) / s.workers
	hi := (w + 1) * len(s.shards) / s.workers
	for k := lo; k < hi; k++ {
		sh := s.shards[k]
		switch phase {
		case phaseArbitrate:
			sh.phaseArbitrateRun()
		case phaseMove:
			sh.phaseMoveRun()
		case phaseInject:
			sh.phaseInjectRun()
		}
	}
}

// phaseArbitrateRun is phase 1 for one shard: arbitrate every (active)
// owned switch against the pre-movement state, recording grants without
// popping. Mutates only this shard's arbiters and scratch; reads peer
// shards' buffers through the blocking probes, which is safe because no
// buffer changes until the phase barrier.
// damqvet:sharded audited: arbitration touches only owned switches (si in [lo,hi) or the owned active list); peer state is read-only through probes
// damqvet:hotpath
func (sh *shard) phaseArbitrateRun() {
	s := sh.sim
	sh.pending = sh.pending[:0]
	for d := range sh.outbox {
		sh.outbox[d] = sh.outbox[d][:0]
	}
	nStages := len(s.stages)
	if s.fullScan {
		for st := 0; st < nStages; st++ {
			row := s.stages[st]
			for si := sh.lo; si < sh.hi; si++ {
				sh.arbitrateOne(st, si, row[si])
			}
		}
		return
	}
	for st := 0; st < nStages; st++ {
		row := s.stages[st]
		for _, si := range sh.active[st] {
			sh.arbitrateOne(st, int(si), row[si])
			sh.lastArb[st][int(si)-sh.lo] = s.cycle
		}
	}
}

// arbitrateOne runs one switch's arbitration and records its grants.
// damqvet:hotpath
func (sh *shard) arbitrateOne(st, si int, swc *sw.Switch) {
	sh.grantScratch = swc.Arbitrate(sh.probes[st][si-sh.lo], sh.grantScratch[:0])
	for _, g := range sh.grantScratch {
		sh.pending = append(sh.pending, pendingGrant{st: int32(st), si: int32(si), g: g})
	}
}

// phaseMoveRun is phase 2 for one shard: pop the recorded grants in
// order; deliveries and fault drops are finished locally, inter-stage
// transfers are routed into the destination shard's outbox. Afterwards
// switches whose last packet left drop out of the active set.
// damqvet:sharded audited: grants recorded in phase 1 name only owned switches; cross-shard handoff goes through the outboxes, drained after the barrier
// damqvet:hotpath
func (sh *shard) phaseMoveRun() {
	s := sh.sim
	measuring := s.measuring
	last := len(s.stages) - 1
	for i := range sh.pending {
		pg := &sh.pending[i]
		st, si := int(pg.st), int(pg.si)
		p := s.stages[st][si].PopGrant(pg.g)
		// A granted packet crosses the link leaving its switch; if that
		// link is down this cycle it is dropped here — counted as
		// faulted-discard, never silently lost. This applies under both
		// protocols: blocking flow control cannot see a link die after
		// the grant, exactly like the hardware.
		if s.flt != nil && sh.dropOnFaultedLink(st, si, pg.g.Out, measuring) {
			sh.inFlight--
			sh.alloc.Recycle(p)
			continue
		}
		if st == last {
			sh.inFlight--
			sh.deliver(p, measuring)
			sh.alloc.Recycle(p)
			continue
		}
		nsw, nport := s.top.NextStage(si, pg.g.Out)
		p.OutPort = s.top.RouteDigit(p.Dest, st+1)
		d := s.shardOfSw[nsw]
		sh.outbox[d] = append(sh.outbox[d], xfer{p: p, st: int32(st + 1), si: int32(nsw), in: int32(nport)})
	}
	if s.fullScan {
		return
	}
	for st := range sh.active {
		row := s.stages[st]
		lst := sh.active[st]
		w := 0
		for _, si := range lst {
			if !row[si].Empty() {
				lst[w] = si
				w++
			}
		}
		sh.active[st] = lst[:w]
	}
}

// phaseInjectRun is phase 3 for one shard: accept the transfers addressed
// to its switches (inboxes are drained in source-shard order, so the
// sequence is independent of the worker count), then generate and inject
// at its sources, then sample its occupancy. Only this shard offers into
// its switches, and the shuffle wiring delivers at most one packet per
// input port per cycle, so admission decisions see exactly the state a
// serial sweep would.
// damqvet:sharded audited: inbox entries target owned switches by construction, and the sim-level metrics only exist with an observer attached, which forces serial stepping
// damqvet:hotpath
func (sh *shard) phaseInjectRun() {
	s := sh.sim
	measuring := s.measuring
	for j := range s.shards {
		inbox := s.shards[j].outbox[sh.id]
		for i := range inbox {
			x := &inbox[i]
			st, si := int(x.st), int(x.si)
			if s.stages[st][si].Offer(int(x.in), x.p) {
				sh.noteAccept(st, si)
				continue
			}
			switch s.cfg.Protocol {
			case sw.Discarding:
				sh.inFlight--
				if measuring {
					sh.partial.DiscardedInNet++
					if s.metrics != nil {
						s.metrics.discardedNet.Inc()
						sh.notePolicyRefused(st, si, int(x.in), x.p)
					}
				}
				sh.alloc.Recycle(x.p)
			default:
				// The blocking probe guaranteed admission; reaching here
				// is a simulator bug, not a model outcome.
				panic(fmt.Sprintf("netsim: blocked packet %v escaped upstream", x.p))
			}
		}
	}

	// Generation and injection over this shard's sources, ascending.
	for _, src32 := range sh.srcs {
		src := int(src32)
		dest, hot, ok := sh.pattern.Generate(src)
		if ok {
			p := sh.alloc.New(src, dest, sh.lengths.Draw(), s.cycle)
			p.Hot = hot
			sh.enqueueSource(p, measuring)
		}
		// Blocking: drain as much backlog as fits (at most one packet can
		// enter the stage-0 buffer per cycle — the input link carries one
		// packet per cycle).
		if s.cfg.Protocol == sw.Blocking && s.srcQ[src].Len() > 0 {
			if sh.inject(s.srcQ[src].Front()) {
				s.srcQ[src].PopFront()
				sh.srcBacklog--
				if measuring {
					sh.partial.Injected++
					if s.metrics != nil {
						s.metrics.injected.Inc()
					}
				}
			}
		}
	}

	if measuring {
		// Occupancy snapshots over this shard's switches, total and per
		// stage; incrementally maintained counters, so pure reads.
		for st := range s.stages {
			row := s.stages[st]
			for si := sh.lo; si < sh.hi; si++ {
				n := float64(row[si].Len())
				sh.partial.Occupancy.Add(n)
				sh.partial.StageOccupancy[st].Add(n)
			}
		}
	}

	// Age clocks advance last, after every admission decision of the
	// cycle, so an age-reading policy (BSHARE) sees the same packet ages
	// whether probed by an owned source or a peer shard's blocking probe
	// (those only run during the arbitrate phase). Ticking only owned
	// switches keeps the sweep inside the shard partition.
	if s.needTick {
		for st := range s.stages {
			row := s.stages[st]
			for si := sh.lo; si < sh.hi; si++ {
				row[si].Tick()
			}
		}
	}
}

// enqueueSource routes a newborn packet toward the network.
// damqvet:sharded audited: the source queue index is an owned source, and the sim-level metrics only exist with an observer attached, which forces serial stepping
// damqvet:hotpath
func (sh *shard) enqueueSource(p *packet.Packet, measuring bool) {
	s := sh.sim
	if measuring {
		sh.partial.Generated++
		if s.metrics != nil {
			s.metrics.generated.Inc()
		}
	}
	switch s.cfg.Protocol {
	case sw.Blocking:
		s.srcQ[p.Source].PushBack(p)
		sh.srcBacklog++
	default: // Discarding: offer immediately, drop on refusal.
		if sh.inject(p) {
			if measuring {
				sh.partial.Injected++
				if s.metrics != nil {
					s.metrics.injected.Inc()
				}
			}
		} else {
			if measuring {
				sh.partial.DiscardedAtEntry++
				if s.metrics != nil {
					s.metrics.discardedEntry.Inc()
					swIdx, port := s.top.FirstStageSwitch(p.Source)
					sh.notePolicyRefused(0, swIdx, port, p)
				}
			}
			sh.alloc.Recycle(p)
		}
	}
}

// notePolicyRefused classifies a discard: when the refusing buffer still
// had room for the packet, the admission policy — not pool exhaustion —
// turned it away, and the net.policy.refused counter records that. Only
// reached under s.metrics != nil, so the unobserved hot path never pays
// for the buffer probe.
// damqvet:sharded audited: st,si is an owned coordinate at both call sites, and sim-level metrics only exist with an observer attached, forcing serial stepping
// damqvet:hotpath
func (sh *shard) notePolicyRefused(st, si, in int, p *packet.Packet) {
	m := sh.sim.metrics
	if m.policyRefused != nil {
		if sh.sim.stages[st][si].Buffer(in).Free() >= p.Slots {
			m.policyRefused.Inc()
		}
	}
}

// inject attempts to place p into its stage-0 buffer. The source belongs
// to this shard, so the stage-0 switch does too.
// damqvet:sharded audited: FirstStageSwitch of an owned source is an owned switch
// damqvet:hotpath
func (sh *shard) inject(p *packet.Packet) bool {
	s := sh.sim
	swIdx, port := s.top.FirstStageSwitch(p.Source)
	p.OutPort = s.top.RouteDigit(p.Dest, 0)
	if !s.stages[0][swIdx].Offer(port, p) {
		return false
	}
	sh.noteAccept(0, swIdx)
	p.Injected = s.cycle
	sh.inFlight++
	return true
}

// deliver records a packet reaching its memory module. All deliveries in
// the measurement window count toward throughput; latency samples come
// only from packets born inside the window, so warmup transients do not
// bias the mean. The birth-phase draw comes from this shard's own phase
// stream, in this shard's delivery order — deterministic at any worker
// count.
// damqvet:sharded audited: mutations are shard partials plus sim-level metrics, which only exist with an observer attached, forcing serial stepping
// damqvet:hotpath
func (sh *shard) deliver(p *packet.Packet, measuring bool) {
	if !measuring {
		return
	}
	s := sh.sim
	res := &sh.partial
	res.Delivered++
	if s.recordDeliv {
		sh.deliv = append(sh.deliv, Delivery{
			ID: p.ID, Source: p.Source, Dest: p.Dest,
			Born: p.Born, Injected: p.Injected, DeliveredAt: s.cycle,
		})
	}
	if s.metrics != nil {
		// The injection-based latency is observed for every measured
		// delivery (it needs no RNG), so its histogram total always equals
		// the delivered counter — the invariant ValidateSnapshot checks.
		c := int64(s.cfg.ClocksPerCycle)
		s.metrics.delivered.Inc()
		s.metrics.latInjected.Observe((s.cycle+1)*c - (p.Injected+1)*c)
	}
	if p.Born < s.warmupBoundary {
		return
	}
	c := int64(s.cfg.ClocksPerCycle)
	bornClock := p.Born*c + int64(sh.phase.Intn(int(c)))
	deliveryClock := (s.cycle + 1) * c
	injectClock := (p.Injected + 1) * c
	res.LatencyHist.Add(float64(deliveryClock - bornClock))
	res.LatencyFromBorn.Add(float64(deliveryClock - bornClock))
	res.LatencyFromInjection.Add(float64(deliveryClock - injectClock))
	if s.metrics != nil {
		// Born-based latency reuses the phase draw above, so observing it
		// consumes no extra randomness: observed and unobserved runs stay
		// bit-identical.
		s.metrics.latBorn.Observe(deliveryClock - bornClock)
	}
	if p.Hot {
		res.HotLatency.Add(float64(deliveryClock - bornClock))
	} else {
		res.ColdLatency.Add(float64(deliveryClock - bornClock))
	}
}

// NewResult returns a Result with its measurement structures (latency
// histogram, per-stage occupancy summaries) pre-allocated for this
// simulation, and Config.Workers zeroed (an execution knob has no place
// in a result). Collect builds on it; it is exported for callers that
// want an empty, correctly shaped Result.
func (s *Sim) NewResult() *Result {
	cfg := s.cfg
	cfg.Workers = 0
	return &Result{
		Config:         cfg,
		LatencyHist:    stats.NewHistogram(4096, float64(s.cfg.ClocksPerCycle)),
		StageOccupancy: make([]stats.Summary, len(s.stages)),
	}
}

// Collect merges the per-shard measurement partials, in shard order, into
// one Result covering every measuring Step so far. It is non-destructive
// (call it again after more Steps for an updated view). The merge order
// is fixed by the shard partition — a pure function of the topology — so
// the Result is byte-identical at every worker count. The reported
// MeasureCycles is the measuring-step count, so per-cycle rates like
// Throughput stay correct for partial runs.
func (s *Sim) Collect() *Result {
	res := s.NewResult()
	res.Config.MeasureCycles = s.measured
	for _, sh := range s.shards {
		p := &sh.partial
		res.Generated += p.Generated
		res.Injected += p.Injected
		res.Delivered += p.Delivered
		res.DiscardedAtEntry += p.DiscardedAtEntry
		res.DiscardedInNet += p.DiscardedInNet
		res.FaultedInNet += p.FaultedInNet
		res.LatencyFromBorn.Merge(&p.LatencyFromBorn)
		res.LatencyFromInjection.Merge(&p.LatencyFromInjection)
		res.HotLatency.Merge(&p.HotLatency)
		res.ColdLatency.Merge(&p.ColdLatency)
		res.Occupancy.Merge(&p.Occupancy)
		for st := range res.StageOccupancy {
			res.StageOccupancy[st].Merge(&p.StageOccupancy[st])
		}
		res.LatencyHist.Merge(p.LatencyHist)
	}
	res.SourceBacklog = s.backlog
	return res
}

// Run executes warmup then measurement and returns the collected
// results. The loops are driven by the cycle counter and the measured-
// step count rather than loop-local indices, so Run continues a
// checkpoint-restored Sim from exactly where it stopped — including a
// completed one, where it is a no-op returning the final Result.
func (s *Sim) Run() *Result {
	for s.cycle < s.cfg.WarmupCycles {
		s.Step(false)
	}
	if s.measured == 0 {
		s.warmupBoundary = s.cycle
	}
	for s.measured < s.cfg.MeasureCycles {
		s.Step(true)
	}
	return s.Collect()
}

// ctxCheckStride is how many cycles RunCtx simulates between context
// polls: rare enough to stay off the profile, frequent enough that an
// interrupt lands within milliseconds.
const ctxCheckStride = 256

// RunCtx is Run with cooperative cancellation: it polls ctx every
// ctxCheckStride cycles and, when cancelled, returns the partial Result
// together with ctx.Err(). The partial result describes itself — its
// Config.MeasureCycles is the cycles actually measured (Collect), so
// Throughput and the per-cycle rates stay correct and the caller can
// report "interrupted at N of M". An uncancelled RunCtx returns exactly
// what Run would.
func (s *Sim) RunCtx(ctx context.Context) (*Result, error) {
	return s.RunCtxCheckpoint(ctx, 0, nil)
}

// RunCtxCheckpoint is RunCtx with periodic checkpointing: when every > 0
// it calls save after each multiple of every cycles (and once more on
// cancellation, so the final checkpoint captures the drained cycle the
// partial Result describes). A non-nil save with every <= 0 is called
// only on cancellation — the CLI's "checkpoint on interrupt, not
// periodically" mode. Like Run, the loops continue a restored Sim from
// its checkpointed position. A save error aborts the run.
func (s *Sim) RunCtxCheckpoint(ctx context.Context, every int64, save func() error) (*Result, error) {
	final := func(err error) (*Result, error) {
		res := s.Collect()
		if err != nil && save != nil {
			if serr := save(); serr != nil {
				return res, serr
			}
		}
		return res, err
	}
	for i := int64(0); s.cycle < s.cfg.WarmupCycles; i++ {
		if i%ctxCheckStride == 0 && ctx.Err() != nil {
			return final(ctx.Err())
		}
		s.Step(false)
		if every > 0 && s.cycle%every == 0 {
			if err := save(); err != nil {
				return s.Collect(), err
			}
		}
	}
	if s.measured == 0 {
		s.warmupBoundary = s.cycle
	}
	for i := int64(0); s.measured < s.cfg.MeasureCycles; i++ {
		if i%ctxCheckStride == 0 && ctx.Err() != nil {
			return final(ctx.Err())
		}
		s.Step(true)
		if every > 0 && s.cycle%every == 0 {
			if err := save(); err != nil {
				return s.Collect(), err
			}
		}
	}
	return s.Collect(), nil
}
