// Package netsim simulates a multistage Omega network of n×n switches
// under the paper's Section 4.2 assumptions (following Pfister & Norton):
// transmissions are synchronized, so a packet fully moves from one stage
// to the next once per "network cycle" of ClocksPerCycle clock cycles
// (12 in the paper: 8 to transmit + 4 to route); processors are message
// generators, memories are message receivers.
//
// One network cycle:
//
//  1. Every switch arbitrates its crossbar against the pre-movement
//     state. Under the blocking protocol a queue whose head cannot be
//     stored downstream is masked from arbitration (the paper's "longest
//     queue ... which was not blocked").
//  2. All granted packets are popped, then delivered: last-stage packets
//     exit to their memory module; others enter the next stage's input
//     buffer. Pops happen before accepts, so a slot freed this cycle can
//     hold a packet arriving this cycle. Under the discarding protocol a
//     packet that finds its downstream buffer full is dropped.
//  3. Sources inject: newly generated packets (plus, under blocking, the
//     backlog waiting in unbounded source queues) enter first-stage
//     buffers; under discarding a generated packet that does not fit is
//     dropped at entry.
//
// Latency accounting (DESIGN.md §4): a packet is born at clock
// cycle*C + u with u uniform in [0, C); it is delivered at the end of the
// cycle that pops it from the last stage, clock (cycle+1)*C. End-to-end
// latency (LatencyFromBorn) includes source queueing; network latency
// (LatencyFromInjection) counts from the end of the injection cycle and is
// the right metric in saturated regimes where source queues grow without
// bound.
package netsim

import (
	"context"
	"fmt"

	"damq/internal/arbiter"
	"damq/internal/buffer"
	"damq/internal/cfgerr"
	"damq/internal/omega"
	"damq/internal/packet"
	"damq/internal/pktq"
	"damq/internal/rng"
	"damq/internal/stats"
	"damq/internal/sw"
	"damq/internal/traffic"
)

// TrafficKind selects the workload.
type TrafficKind int

const (
	// Uniform random destinations (paper Tables 3-5, Figure 3).
	Uniform TrafficKind = iota
	// HotSpot re-addresses a fraction of packets to one module (Table 6).
	HotSpot
	// Permutation uses one fixed destination per source.
	Permutation
	// Bursty generates multi-packet messages: geometric-length bursts of
	// packets to one destination, back to back (the message extension).
	Bursty
)

// TrafficSpec describes the workload.
type TrafficSpec struct {
	Kind TrafficKind
	// Load is offered packets per source per network cycle.
	Load float64
	// HotFraction and HotDest configure HotSpot (e.g. 0.05 and 0).
	HotFraction float64
	HotDest     int
	// Perm configures Permutation.
	Perm []int
	// MeanBurst configures Bursty: mean message length in packets (>= 1).
	MeanBurst float64
	// MinSlots/MaxSlots give packet sizes; 0,0 means fixed single-slot
	// packets. MaxSlots > MinSlots enables the variable-length extension.
	MinSlots, MaxSlots int
}

// Config describes one simulation run.
type Config struct {
	Radix          int // switch size n (4 in the paper)
	Inputs         int // network width N (64 in the paper)
	BufferKind     buffer.Kind
	Capacity       int // slots per input buffer (4 in most tables)
	Policy         arbiter.Policy
	Protocol       sw.Protocol
	ClocksPerCycle int // 12 in the paper
	Traffic        TrafficSpec
	WarmupCycles   int64
	MeasureCycles  int64
	Seed           uint64
}

// Validate checks the config (after default-filling, so a zero Config is
// valid) under the repo-wide sentinel-error convention: every failure
// wraps one of the internal/cfgerr sentinels (ErrBadRadix, ErrBadKind,
// ErrBadCapacity, ErrBadPolicy, ErrBadProtocol, ErrBadLoad,
// ErrBadTraffic) so callers classify with errors.Is. New calls it first;
// CLIs may call it directly for early flag feedback.
func (c Config) Validate() error {
	c = c.withDefaults()
	if _, err := omega.New(c.Radix, c.Inputs); err != nil {
		return fmt.Errorf("netsim: %v: %w", err, cfgerr.ErrBadRadix)
	}
	bufCfg := buffer.Config{Kind: c.BufferKind, NumOutputs: c.Radix, Capacity: c.Capacity}
	if err := bufCfg.Validate(); err != nil {
		return fmt.Errorf("netsim: %w", err)
	}
	if c.Policy != arbiter.Dumb && c.Policy != arbiter.Smart {
		return fmt.Errorf("netsim: unknown policy %v: %w", c.Policy, cfgerr.ErrBadPolicy)
	}
	if c.Protocol != sw.Discarding && c.Protocol != sw.Blocking {
		return fmt.Errorf("netsim: unknown protocol %v: %w", c.Protocol, cfgerr.ErrBadProtocol)
	}
	if c.Traffic.Load < 0 || c.Traffic.Load > 1 {
		return fmt.Errorf("netsim: load %v out of [0,1]: %w", c.Traffic.Load, cfgerr.ErrBadLoad)
	}
	// Exercise the real traffic constructor so pattern-specific rules
	// (hot fraction range, permutation shape, burst length) cannot drift
	// from what New accepts. The throwaway source is seeded from the
	// caller's own seed and discarded.
	if _, err := c.buildPattern(rng.New(c.Seed)); err != nil {
		return fmt.Errorf("%v: %w", err, cfgerr.ErrBadTraffic)
	}
	return nil
}

// buildPattern constructs the workload's traffic pattern; both Validate
// and New route through it so they cannot disagree.
func (c Config) buildPattern(src *rng.Source) (traffic.Pattern, error) {
	switch c.Traffic.Kind {
	case Uniform:
		return traffic.NewUniform(c.Inputs, c.Traffic.Load, src)
	case HotSpot:
		return traffic.NewHotSpot(c.Inputs, c.Traffic.Load,
			c.Traffic.HotFraction, c.Traffic.HotDest, src)
	case Permutation:
		return traffic.NewPermutation(c.Traffic.Perm, c.Traffic.Load, src)
	case Bursty:
		return traffic.NewBursty(c.Inputs, c.Traffic.Load, c.Traffic.MeanBurst, src)
	}
	return nil, fmt.Errorf("netsim: unknown traffic kind %d", c.Traffic.Kind)
}

// withDefaults fills unset fields with the paper's values.
func (c Config) withDefaults() Config {
	if c.Radix == 0 {
		c.Radix = 4
	}
	if c.Inputs == 0 {
		c.Inputs = 64
	}
	if c.Capacity == 0 {
		c.Capacity = 4
	}
	if c.ClocksPerCycle == 0 {
		c.ClocksPerCycle = 12
	}
	if c.WarmupCycles == 0 {
		c.WarmupCycles = 1000
	}
	if c.MeasureCycles == 0 {
		c.MeasureCycles = 10000
	}
	return c
}

// Result aggregates a run's measurements.
type Result struct {
	Config Config

	Generated        int64 // packets born in the measurement window
	Injected         int64 // packets entering stage 0 in the window
	Delivered        int64 // packets delivered in the window
	DiscardedAtEntry int64 // discarding protocol: dropped before stage 0
	DiscardedInNet   int64 // discarding protocol: dropped between stages
	// FaultedInNet counts packets dropped on dead or flapping links in
	// the window (SetFaults). Distinct from DiscardedInNet so protocol
	// losses and injected-fault losses never blur; zero (and absent from
	// JSON) on fault-free runs.
	FaultedInNet int64 `json:",omitempty"`

	// LatencyFromBorn includes source-queue wait (clock cycles).
	LatencyFromBorn stats.Summary
	// LatencyFromInjection counts from first-stage entry (clock cycles).
	LatencyFromInjection stats.Summary
	// HotLatency/ColdLatency split LatencyFromBorn by packet class.
	HotLatency  stats.Summary
	ColdLatency stats.Summary
	// Occupancy is the time-average number of buffered packets per switch.
	Occupancy stats.Summary
	// StageOccupancy is the per-stage time-average buffered packets per
	// switch; under hot-spot traffic it shows tree saturation filling the
	// stages closest to the hot module first.
	StageOccupancy []stats.Summary
	// LatencyHist buckets LatencyFromBorn (12-clock buckets, 4096-clock
	// span) for percentile reporting.
	LatencyHist *stats.Histogram
	// SourceBacklog is the time-average total source-queue length
	// (blocking protocol only).
	SourceBacklog stats.Summary
}

// LatencyP returns the q-quantile of LatencyFromBorn (e.g. 0.99).
func (r *Result) LatencyP(q float64) float64 {
	if r.LatencyHist == nil {
		return 0
	}
	return r.LatencyHist.Quantile(q)
}

// Throughput is delivered packets per network input per cycle — the
// x-axis of Figure 3 and the "saturation throughput" metric.
func (r *Result) Throughput() float64 {
	d := float64(r.Config.Inputs) * float64(r.Config.MeasureCycles)
	if d == 0 {
		return 0
	}
	return float64(r.Delivered) / d
}

// OfferedLoad is generated packets per input per cycle.
func (r *Result) OfferedLoad() float64 {
	d := float64(r.Config.Inputs) * float64(r.Config.MeasureCycles)
	if d == 0 {
		return 0
	}
	return float64(r.Generated) / d
}

// DiscardFraction is the fraction of generated packets discarded anywhere
// (Table 3's "percent discarded" divided by 100). Fault drops are not
// protocol discards; see FaultFraction.
func (r *Result) DiscardFraction() float64 {
	if r.Generated == 0 {
		return 0
	}
	return float64(r.DiscardedAtEntry+r.DiscardedInNet) / float64(r.Generated)
}

// FaultFraction is the fraction of generated packets lost to injected
// link faults.
func (r *Result) FaultFraction() float64 {
	if r.Generated == 0 {
		return 0
	}
	return float64(r.FaultedInNet) / float64(r.Generated)
}

// Sim is one instantiated network.
type Sim struct {
	cfg     Config
	top     *omega.Topology
	stages  [][]*sw.Switch
	srcQ    []pktq.Queue // blocking backlog per network input
	pattern traffic.Pattern
	lengths traffic.Lengths
	alloc   packet.Alloc
	phase   *rng.Source // birth-phase offsets
	cycle   int64
	// warmupBoundary is the cycle measurement began; packets born earlier
	// are excluded from latency statistics.
	warmupBoundary int64
	// inFlight tracks buffered packets for conservation checks.
	inFlight int64
	// srcBacklog mirrors the total length of the source queues so the
	// per-cycle backlog snapshot is a counter read, not a 1-per-input scan.
	srcBacklog int64

	// Active-set tracking (DESIGN.md "Performance model"): active[st] is
	// the sorted list of switch indices in stage st holding at least one
	// buffered packet. Step arbitrates only those, so the per-cycle cost is
	// proportional to traffic rather than network size. A switch leaves the
	// set when its last packet is popped (phase 1) and re-enters when a
	// packet lands in it (phases 2-3); on re-entry its arbiter is
	// fast-forwarded through the empty rounds it sat out (AdvanceIdle), so
	// results are bit-identical to arbitrating every switch every cycle.
	active [][]int32
	// lastArb[st][si] is the cycle the switch last ran (or was fast-
	// forwarded through) arbitration; -1 before its first packet.
	lastArb [][]int64
	// fullScan forces the naive every-switch arbitration path; the
	// active-set equivalence property test runs it as the reference model.
	fullScan bool

	// probes holds one blocking probe per (stage, switch), built once at
	// construction: creating the closures inside Step would allocate
	// stages*switches closures per cycle.
	probes [][]sw.BlockProbe
	// probePkt is scratch for the blocking probe's routed copy of a head
	// packet; reusing one Sim-owned packet keeps the probe allocation-free.
	probePkt packet.Packet

	grantScratch []arbiter.Grant
	moveScratch  []move

	// metrics is the attached observability probe set (SetObserver); nil
	// means unobserved. Every hot-path use is nil-guarded, so detached
	// runs execute no instrument code and stay bit-identical — the
	// pattern damqvet's zeroalloc rule polices.
	metrics *netMetrics

	// flt is the attached fault-injection state (SetFaults); nil means
	// fault-free. Like metrics, every hot-path use sits behind a nil
	// check, so fault-free runs are bit-identical and allocation-free.
	flt *netFaults
}

type move struct {
	p     *packet.Packet
	stage int
	swIdx int
	out   int
}

// New validates cfg and builds the network.
func New(cfg Config) (*Sim, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	top, err := omega.New(cfg.Radix, cfg.Inputs)
	if err != nil {
		return nil, err
	}
	s := &Sim{cfg: cfg, top: top}

	master := rng.New(cfg.Seed)
	trafficSrc := master.Split()
	s.phase = master.Split()
	lenSrc := master.Split()

	s.pattern, err = cfg.buildPattern(trafficSrc)
	if err != nil {
		return nil, err
	}

	if cfg.Traffic.MaxSlots > cfg.Traffic.MinSlots {
		s.lengths = traffic.UniformLengths{Lo: cfg.Traffic.MinSlots, Hi: cfg.Traffic.MaxSlots, Src: lenSrc}
	} else if cfg.Traffic.MinSlots > 1 {
		s.lengths = traffic.Fixed(cfg.Traffic.MinSlots)
	} else {
		s.lengths = traffic.Fixed(1)
	}

	for st := 0; st < top.Stages(); st++ {
		var row []*sw.Switch
		for i := 0; i < top.SwitchesPerStage(); i++ {
			swc, err := sw.New(sw.Config{
				Ports:      cfg.Radix,
				BufferKind: cfg.BufferKind,
				Capacity:   cfg.Capacity,
				Policy:     cfg.Policy,
			})
			if err != nil {
				return nil, err
			}
			row = append(row, swc)
		}
		s.stages = append(s.stages, row)
	}
	s.srcQ = make([]pktq.Queue, cfg.Inputs)

	// Pre-build the blocking probes and pre-size the per-cycle scratch:
	// at most one grant per buffer read port per switch, and every grant
	// produces one move.
	s.probes = make([][]sw.BlockProbe, top.Stages())
	maxMoves := 0
	for st := range s.stages {
		s.probes[st] = make([]sw.BlockProbe, len(s.stages[st]))
		for si := range s.stages[st] {
			s.probes[st][si] = s.blockProbe(st, si)
			maxMoves += cfg.Radix
		}
	}
	s.grantScratch = make([]arbiter.Grant, 0, cfg.Radix)
	s.moveScratch = make([]move, 0, maxMoves)

	s.active = make([][]int32, top.Stages())
	s.lastArb = make([][]int64, top.Stages())
	for st := range s.stages {
		s.active[st] = make([]int32, 0, len(s.stages[st]))
		s.lastArb[st] = make([]int64, len(s.stages[st]))
		for si := range s.lastArb[st] {
			s.lastArb[st][si] = -1
		}
	}
	return s, nil
}

// Topology exposes the network's topology.
func (s *Sim) Topology() *omega.Topology { return s.top }

// Cycle returns the current network cycle.
func (s *Sim) Cycle() int64 { return s.cycle }

// InFlight returns the number of packets buffered in switches.
func (s *Sim) InFlight() int64 { return s.inFlight }

// SourceBacklogLen returns the total packets waiting in source queues.
func (s *Sim) SourceBacklogLen() int64 { return s.srcBacklog }

// noteAccept records that a packet entered switch si of stage st. On the
// 0→1 occupancy transition the switch re-enters the active set: its
// arbiter is fast-forwarded through every empty round it was skipped for,
// and it is re-inserted into the stage's sorted index list.
// damqvet:hotpath
func (s *Sim) noteAccept(st, si int) {
	swc := s.stages[st][si]
	if swc.Len() != 1 || s.fullScan {
		return
	}
	if skipped := s.cycle - s.lastArb[st][si]; skipped > 0 {
		swc.AdvanceIdle(skipped)
	}
	s.lastArb[st][si] = s.cycle
	s.activate(st, si)
}

// activate inserts si into stage st's sorted active list. Insertion moves
// at most the tail of the list; active sets are small by construction.
// damqvet:hotpath
func (s *Sim) activate(st, si int) {
	lst := append(s.active[st], 0)
	i := len(lst) - 1
	for i > 0 && lst[i-1] > int32(si) {
		lst[i] = lst[i-1]
		i--
	}
	lst[i] = int32(si)
	s.active[st] = lst
}

// blockProbe builds the blocking-protocol probe for stage st switch si:
// the head packet for output out is blocked iff the downstream buffer it
// would enter cannot store it right now.
func (s *Sim) blockProbe(st, si int) sw.BlockProbe {
	if s.cfg.Protocol != sw.Blocking || st == s.top.Stages()-1 {
		// Last stage feeds memories, which always accept.
		return nil
	}
	return func(out int, p *packet.Packet) bool {
		nsw, nport := s.top.NextStage(si, out)
		// Probe with a routed copy so p itself is not mutated; the copy
		// lives in Sim-owned scratch to keep the probe allocation-free.
		s.probePkt = *p
		s.probePkt.OutPort = s.top.RouteDigit(p.Dest, st+1)
		return !s.stages[st+1][nsw].CanAcceptAt(nport, &s.probePkt)
	}
}

// Step advances the network one cycle. res accumulates measurements when
// measuring is true (the warmup loop passes false).
// damqvet:hotpath
func (s *Sim) Step(res *Result, measuring bool) {
	nStages := s.top.Stages()

	// Fault schedule, cycle start: slots whose failure time has arrived
	// leave service before anything moves this cycle, so arbitration and
	// flow control see the shrunken capacity consistently.
	if s.flt != nil && s.flt.next < len(s.flt.events) {
		s.applyDueSlotFaults()
	}

	if measuring {
		// Allocate the lazily created measurement structures once per run
		// rather than testing for them on every delivery (use NewResult to
		// avoid even this per-cycle branch).
		if res.LatencyHist == nil {
			res.LatencyHist = stats.NewHistogram(4096, float64(s.cfg.ClocksPerCycle))
		}
		if res.StageOccupancy == nil {
			res.StageOccupancy = make([]stats.Summary, len(s.stages))
		}
	}

	// Phase 1: arbitration against pre-movement state. Only switches
	// holding packets can produce grants, so the active-set path visits
	// exactly those, in the same (stage, switch) order as a full scan; a
	// switch whose last packet is popped here leaves the set.
	s.moveScratch = s.moveScratch[:0]
	if s.fullScan {
		for st := 0; st < nStages; st++ {
			for si, swc := range s.stages[st] {
				s.arbitrateOne(st, si, swc)
			}
		}
	} else {
		for st := 0; st < nStages; st++ {
			lst := s.active[st]
			w := 0
			for _, si := range lst {
				swc := s.stages[st][int(si)]
				s.arbitrateOne(st, int(si), swc)
				s.lastArb[st][si] = s.cycle
				if !swc.Empty() {
					lst[w] = si
					w++
				}
			}
			s.active[st] = lst[:w]
		}
	}

	// Phase 2: deliveries and inter-stage transfers (pops already done).
	for i := range s.moveScratch {
		mv := &s.moveScratch[i]
		// A granted packet crosses the link leaving its switch; if that
		// link is down this cycle it is dropped here — counted as
		// faulted-discard, never silently lost. This applies under both
		// protocols: blocking flow control cannot see a link die after
		// the grant, exactly like the hardware.
		if s.flt != nil && s.dropOnFaultedLink(mv.stage, mv.swIdx, mv.out, res, measuring) {
			s.inFlight--
			s.alloc.Recycle(mv.p)
			mv.p = nil
			continue
		}
		if mv.stage == nStages-1 {
			s.inFlight--
			s.deliver(mv.p, res, measuring)
			s.alloc.Recycle(mv.p)
			mv.p = nil
			continue
		}
		nsw, nport := s.top.NextStage(mv.swIdx, mv.out)
		mv.p.OutPort = s.top.RouteDigit(mv.p.Dest, mv.stage+1)
		next := s.stages[mv.stage+1][nsw]
		if next.Offer(nport, mv.p) {
			s.noteAccept(mv.stage+1, nsw)
			mv.p = nil
			continue
		}
		switch s.cfg.Protocol {
		case sw.Discarding:
			s.inFlight--
			if measuring {
				res.DiscardedInNet++
				if s.metrics != nil {
					s.metrics.discardedNet.Inc()
				}
			}
			s.alloc.Recycle(mv.p)
			mv.p = nil
		default:
			// The blocking probe guaranteed admission; reaching here is a
			// simulator bug, not a model outcome.
			panic(fmt.Sprintf("netsim: blocked packet %v escaped upstream", mv.p))
		}
	}

	// Phase 3: generation and injection.
	for src := 0; src < s.cfg.Inputs; src++ {
		dest, hot, ok := s.pattern.Generate(src)
		if ok {
			p := s.alloc.New(src, dest, s.lengths.Draw(), s.cycle)
			p.Hot = hot
			s.enqueueSource(p, res, measuring)
		}
		// Blocking: drain as much backlog as fits (at most one packet can
		// enter the stage-0 buffer per cycle — the input link carries one
		// packet per cycle).
		if s.cfg.Protocol == sw.Blocking && s.srcQ[src].Len() > 0 {
			if s.inject(s.srcQ[src].Front()) {
				s.srcQ[src].PopFront()
				s.srcBacklog--
				if measuring {
					res.Injected++
					if s.metrics != nil {
						s.metrics.injected.Inc()
					}
				}
			}
		}
	}

	if measuring {
		// Occupancy snapshots, total and per stage. Switch occupancy and
		// the source backlog are incrementally maintained counters, so the
		// snapshot is pure reads; the full-scan reference recomputes the
		// backlog from the queues to cross-check the counter.
		for st := range s.stages {
			for _, swc := range s.stages[st] {
				n := float64(swc.Len())
				res.Occupancy.Add(n)
				res.StageOccupancy[st].Add(n)
			}
		}
		backlog := s.srcBacklog
		if s.fullScan {
			backlog = 0
			for i := range s.srcQ {
				backlog += int64(s.srcQ[i].Len())
			}
		}
		res.SourceBacklog.Add(float64(backlog))
		if s.metrics != nil {
			s.sampleMetrics(backlog)
		}
	}
	s.cycle++
}

// arbitrateOne runs one switch's arbitration and queues its granted
// packets as moves.
// damqvet:hotpath
func (s *Sim) arbitrateOne(st, si int, swc *sw.Switch) {
	s.grantScratch = swc.Arbitrate(s.probes[st][si], s.grantScratch[:0])
	for _, g := range s.grantScratch {
		p := swc.PopGrant(g)
		s.moveScratch = append(s.moveScratch, move{p: p, stage: st, swIdx: si, out: g.Out})
	}
}

// enqueueSource routes a newborn packet toward the network.
// damqvet:hotpath
func (s *Sim) enqueueSource(p *packet.Packet, res *Result, measuring bool) {
	if measuring {
		res.Generated++
		if s.metrics != nil {
			s.metrics.generated.Inc()
		}
	}
	switch s.cfg.Protocol {
	case sw.Blocking:
		s.srcQ[p.Source].PushBack(p)
		s.srcBacklog++
	default: // Discarding: offer immediately, drop on refusal.
		if s.inject(p) {
			if measuring {
				res.Injected++
				if s.metrics != nil {
					s.metrics.injected.Inc()
				}
			}
		} else {
			if measuring {
				res.DiscardedAtEntry++
				if s.metrics != nil {
					s.metrics.discardedEntry.Inc()
				}
			}
			s.alloc.Recycle(p)
		}
	}
}

// inject attempts to place p into its stage-0 buffer.
// damqvet:hotpath
func (s *Sim) inject(p *packet.Packet) bool {
	swIdx, port := s.top.FirstStageSwitch(p.Source)
	p.OutPort = s.top.RouteDigit(p.Dest, 0)
	if !s.stages[0][swIdx].Offer(port, p) {
		return false
	}
	s.noteAccept(0, swIdx)
	p.Injected = s.cycle
	s.inFlight++
	return true
}

// deliver records a packet reaching its memory module. All deliveries in
// the measurement window count toward throughput; latency samples come
// only from packets born inside the window, so warmup transients do not
// bias the mean.
// damqvet:hotpath
func (s *Sim) deliver(p *packet.Packet, res *Result, measuring bool) {
	if !measuring {
		return
	}
	res.Delivered++
	if s.metrics != nil {
		// The injection-based latency is observed for every measured
		// delivery (it needs no RNG), so its histogram total always equals
		// the delivered counter — the invariant ValidateSnapshot checks.
		c := int64(s.cfg.ClocksPerCycle)
		s.metrics.delivered.Inc()
		s.metrics.latInjected.Observe((s.cycle+1)*c - (p.Injected+1)*c)
	}
	if p.Born < s.warmupBoundary {
		return
	}
	c := int64(s.cfg.ClocksPerCycle)
	bornClock := p.Born*c + int64(s.phase.Intn(int(c)))
	deliveryClock := (s.cycle + 1) * c
	injectClock := (p.Injected + 1) * c
	// res.LatencyHist is guaranteed non-nil here: Run allocates it up
	// front (NewResult) and Step re-checks once per measured cycle, so the
	// per-delivery path carries no lazy-allocation branch.
	res.LatencyHist.Add(float64(deliveryClock - bornClock))
	res.LatencyFromBorn.Add(float64(deliveryClock - bornClock))
	res.LatencyFromInjection.Add(float64(deliveryClock - injectClock))
	if s.metrics != nil {
		// Born-based latency reuses the phase draw above, so observing it
		// consumes no extra randomness: observed and unobserved runs stay
		// bit-identical.
		s.metrics.latBorn.Observe(deliveryClock - bornClock)
	}
	if p.Hot {
		res.HotLatency.Add(float64(deliveryClock - bornClock))
	} else {
		res.ColdLatency.Add(float64(deliveryClock - bornClock))
	}
}

// NewResult returns a Result with its measurement structures (latency
// histogram, per-stage occupancy summaries) pre-allocated for this
// simulation. Direct Step callers should prefer it over a zero Result so
// nothing is lazily allocated on the measurement path.
func (s *Sim) NewResult() *Result {
	return &Result{
		Config:         s.cfg,
		LatencyHist:    stats.NewHistogram(4096, float64(s.cfg.ClocksPerCycle)),
		StageOccupancy: make([]stats.Summary, len(s.stages)),
	}
}

// Run executes warmup then measurement and returns the results.
func (s *Sim) Run() *Result {
	res := s.NewResult()
	for i := int64(0); i < s.cfg.WarmupCycles; i++ {
		s.Step(res, false)
	}
	s.warmupBoundary = s.cycle
	for i := int64(0); i < s.cfg.MeasureCycles; i++ {
		s.Step(res, true)
	}
	return res
}

// ctxCheckStride is how many cycles RunCtx simulates between context
// polls: rare enough to stay off the profile, frequent enough that an
// interrupt lands within milliseconds.
const ctxCheckStride = 256

// RunCtx is Run with cooperative cancellation: it polls ctx every
// ctxCheckStride cycles and, when cancelled, returns the partial Result
// together with ctx.Err(). The partial result describes itself — its
// Config.MeasureCycles is rewritten to the cycles actually measured, so
// Throughput and the per-cycle rates stay correct and the caller can
// report "interrupted at N of M". An uncancelled RunCtx returns exactly
// what Run would.
func (s *Sim) RunCtx(ctx context.Context) (*Result, error) {
	res := s.NewResult()
	for i := int64(0); i < s.cfg.WarmupCycles; i++ {
		if i%ctxCheckStride == 0 && ctx.Err() != nil {
			res.Config.MeasureCycles = 0
			return res, ctx.Err()
		}
		s.Step(res, false)
	}
	s.warmupBoundary = s.cycle
	for i := int64(0); i < s.cfg.MeasureCycles; i++ {
		if i%ctxCheckStride == 0 && ctx.Err() != nil {
			res.Config.MeasureCycles = i
			return res, ctx.Err()
		}
		s.Step(res, true)
	}
	return res, nil
}
