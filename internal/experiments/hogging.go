package experiments

import (
	"fmt"
	"strings"

	"damq/internal/arbiter"
	"damq/internal/buffer"
	"damq/internal/rng"
	"damq/internal/sw"
)

// HogRow reports per-input discard fractions under the Section 2 hogging
// scenario for one buffer organization.
type HogRow struct {
	Design    string
	PerInput  []float64 // discard fraction per input port
	LightMean float64   // mean over the light (victim) inputs
}

// Hogging reproduces the observation (Fujimoto, cited in the paper's
// Section 2) that made the authors reject central buffer pools: two
// inputs flood one output at full rate while the other inputs offer
// light traffic to idle outputs. With a shared central pool the flood
// consumes all storage and the light traffic is discarded wholesale;
// with the same total storage split into per-input DAMQ buffers the
// victims are isolated and lose nothing.
func Hogging(sc Scale) ([]HogRow, error) {
	const (
		ports     = 4
		totalCap  = 16
		lightLoad = 0.3
	)
	cycles := sc.Measure * 10

	central, err := sw.RunCentralHog(ports, totalCap, lightLoad, cycles, rng.New(sc.Seed))
	if err != nil {
		return nil, err
	}
	s, err := sw.New(sw.Config{
		Ports:      ports,
		BufferKind: buffer.DAMQ,
		Capacity:   totalCap / ports,
		Policy:     arbiter.Smart,
	})
	if err != nil {
		return nil, err
	}
	part := s.RunPartitionedHog(lightLoad, cycles, rng.New(sc.Seed))

	mk := func(name string, r sw.HogResult) HogRow {
		row := HogRow{Design: name}
		light := 0.0
		for i := 0; i < ports; i++ {
			f := r.DiscardFraction(i)
			row.PerInput = append(row.PerInput, f)
			if i >= 2 {
				light += f
			}
		}
		row.LightMean = light / 2
		return row
	}
	return []HogRow{
		mk("central pool (16 shared)", central),
		mk("per-input DAMQ (4x4)", part),
	}, nil
}

// RenderHogging formats the hogging comparison.
func RenderHogging(rows []HogRow) string {
	var b strings.Builder
	b.WriteString("Central-pool hogging (§2): inputs 0+1 flood output 0; inputs 2+3 offer\n")
	b.WriteString("light traffic to idle outputs. Discard fraction per input:\n")
	fmt.Fprintf(&b, "%-26s %8s %8s %8s %8s %12s\n",
		"design", "in0", "in1", "in2", "in3", "victim mean")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s", r.Design)
		for _, f := range r.PerInput {
			fmt.Fprintf(&b, " %8.3f", f)
		}
		fmt.Fprintf(&b, " %12.3f\n", r.LightMean)
	}
	b.WriteString("The shared pool starves the quiet inputs even though their outputs are\n")
	b.WriteString("idle; per-input buffers isolate them — why the paper buffers at inputs.\n")
	return b.String()
}
