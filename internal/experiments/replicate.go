package experiments

import (
	"fmt"
	"strings"

	"damq/internal/arbiter"
	"damq/internal/buffer"
	"damq/internal/parallel"
	"damq/internal/stats"
	"damq/internal/sw"
)

// Replicate runs a measurement across independent seeds and summarizes
// it. The recorded tables are single-seed (deterministic, regenerable);
// this utility quantifies how much the published cells would wobble under
// reseeding — the error bars the original paper never printed.
//
// Seeds run concurrently on up to workers goroutines (<=0 means
// GOMAXPROCS); measure must therefore be safe to call from multiple
// goroutines, which every netRun-style measurement is because each run
// builds its own simulator. Values enter the summary in seed order, so
// the result is identical at any worker count.
func Replicate(seeds []uint64, workers int, measure func(seed uint64) (float64, error)) (stats.Summary, error) {
	vals, err := parallel.Map(len(seeds), workers, func(i int) (float64, error) {
		return measure(seeds[i])
	})
	if err != nil {
		return stats.Summary{}, err
	}
	var sum stats.Summary
	for _, v := range vals {
		sum.Add(v)
	}
	return sum, nil
}

// Seeds generates n distinct seeds from a base.
func Seeds(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)*1_000_003
	}
	return out
}

// CIRow is one buffer kind's replicated saturation measurement.
type CIRow struct {
	Kind    buffer.Kind
	Summary stats.Summary
}

// SaturationCI replicates the Table 4 saturation-throughput measurement
// across reps seeds for every buffer kind.
func SaturationCI(reps int, sc Scale) ([]CIRow, error) {
	var rows []CIRow
	for _, kind := range KindOrder {
		sum, err := Replicate(Seeds(sc.Seed, reps), sc.Workers, func(seed uint64) (float64, error) {
			s := sc
			s.Seed = seed
			r, err := netRun(kind, sw.Blocking, arbiter.Smart, 4, uniform(1.0), s)
			if err != nil {
				return 0, err
			}
			return r.Throughput(), nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, CIRow{Kind: kind, Summary: sum})
	}
	return rows, nil
}

// RenderCI formats the replicated measurement.
func RenderCI(rows []CIRow) string {
	var b strings.Builder
	b.WriteString("Saturation throughput, replicated across seeds (mean ± 95% CI)\n")
	fmt.Fprintf(&b, "%-6s %10s %12s %6s\n", "Buffer", "mean", "95% CI", "seeds")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %10.3f %12.4f %6d\n",
			r.Kind, r.Summary.Mean(), r.Summary.CI95(), r.Summary.N())
	}
	return b.String()
}
