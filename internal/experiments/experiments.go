// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4) from this repository's models: Table 2 from the
// exact Markov chains, Tables 3-6 and Figure 3 from the Omega-network
// simulator, Table 1 from the cycle-accurate chip model, plus the
// variable-length extension the paper's conclusion motivates. Each
// experiment returns a structured result with a Render method producing
// the text table; cmd/experiments assembles them into an
// EXPERIMENTS-style report.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"damq/internal/arbiter"
	"damq/internal/buffer"
	"damq/internal/comcobb"
	"damq/internal/markov2x2"
	"damq/internal/netsim"
	"damq/internal/parallel"
	"damq/internal/stats"
	"damq/internal/sw"
)

// Scale tunes how long the simulations run. Full reproduces the numbers
// in EXPERIMENTS.md; Quick is for benchmarks and smoke tests.
type Scale struct {
	Warmup  int64
	Measure int64
	Seed    uint64
	// Workers bounds how many simulation points run concurrently
	// (0 = GOMAXPROCS). Every point is independently seeded and results
	// are assembled in submission order, so the rendered tables are
	// byte-identical at any worker count. Excluded from JSON reports for
	// the same reason: the report must not depend on how it was computed.
	Workers int `json:"-"`
	// Ctx, when non-nil, cancels sweeps cooperatively: no new simulation
	// points start after cancellation, the point in flight stops at its
	// next stride boundary, and the sweep returns ctx.Err() alongside
	// whatever completed. The CLIs set it from SIGINT/SIGTERM so an
	// interrupted sweep flushes partial results instead of dying mid-write.
	// Excluded from JSON for the same reason as Workers.
	Ctx context.Context `json:"-"`
}

// ctx resolves the scale's context, defaulting to Background.
func (sc Scale) ctx() context.Context {
	if sc.Ctx == nil {
		return context.Background()
	}
	return sc.Ctx
}

// Full is the scale used for the recorded results.
var Full = Scale{Warmup: 3000, Measure: 20000, Seed: 1988}

// Quick is a cheap scale for benchmarks and CI smoke runs.
var Quick = Scale{Warmup: 500, Measure: 3000, Seed: 1988}

// KindOrder is the presentation order used in the paper's tables.
var KindOrder = []buffer.Kind{buffer.FIFO, buffer.DAMQ, buffer.SAMQ, buffer.SAFC}

// ---------------------------------------------------------------------------
// Table 2: Markov analysis of 2x2 discarding switches.

// Table2Loads are the traffic levels of the paper's Table 2.
var Table2Loads = []float64{0.25, 0.50, 0.75, 0.80, 0.85, 0.90, 0.95, 0.99}

// Table2Row is one (buffer kind, slots) row of discard probabilities.
type Table2Row struct {
	Kind     buffer.Kind
	Slots    int
	PDiscard []float64 // aligned with the loads used
	States   int       // chain size, for the record
}

// Table2Result is the whole table.
type Table2Result struct {
	Loads []float64
	Rows  []Table2Row
}

// Table2Specs returns the (kind, slots) combinations of the paper's
// Table 2: FIFO and DAMQ at 2-6 slots, SAMQ and SAFC at even sizes.
func Table2Specs() []struct {
	Kind  buffer.Kind
	Slots int
} {
	var specs []struct {
		Kind  buffer.Kind
		Slots int
	}
	add := func(k buffer.Kind, slots ...int) {
		for _, s := range slots {
			specs = append(specs, struct {
				Kind  buffer.Kind
				Slots int
			}{k, s})
		}
	}
	add(buffer.FIFO, 2, 3, 4, 5, 6)
	add(buffer.DAMQ, 2, 3, 4, 5, 6)
	add(buffer.SAMQ, 2, 4, 6)
	add(buffer.SAFC, 2, 4, 6)
	return specs
}

// Table2 solves every cell exactly, one row per worker at a time
// (workers <= 0 means GOMAXPROCS). The solver is deterministic, so the
// table is identical at any worker count.
func Table2(loads []float64, workers int) (*Table2Result, error) {
	res, _, err := Table2Ctx(context.Background(), loads, workers)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Table2Ctx is Table2 with cooperative cancellation: on ctx cancellation
// it returns the rows that finished — in table order, with the
// unfinished ones dropped — together with the planned row count and
// ctx.Err(), so a CLI can render the completed prefix and report
// "interrupted at N/M rows". A solver error still discards everything.
func Table2Ctx(ctx context.Context, loads []float64, workers int) (*Table2Result, int, error) {
	if loads == nil {
		loads = Table2Loads
	}
	specs := Table2Specs()
	rows, _, err := parallel.MapCtx(ctx, len(specs), workers, func(i int) (Table2Row, error) {
		spec := specs[i]
		row := Table2Row{Kind: spec.Kind, Slots: spec.Slots}
		for _, load := range loads {
			r, err := markov2x2.Solve(spec.Kind, spec.Slots, load)
			if err != nil {
				return row, fmt.Errorf("table2 %v/%d@%v: %w", spec.Kind, spec.Slots, load, err)
			}
			row.PDiscard = append(row.PDiscard, r.PDiscard)
			row.States = r.States
		}
		return row, nil
	})
	if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		return nil, len(specs), err
	}
	// MapCtx leaves zero values at indices whose solves did not finish;
	// a completed row always has per-load entries.
	done := rows[:0]
	for _, row := range rows {
		if row.PDiscard != nil {
			done = append(done, row)
		}
	}
	return &Table2Result{Loads: loads, Rows: done}, len(specs), err
}

// Render formats the table in the paper's layout.
func (t *Table2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: probability of discarding, 2x2 discarding switch (exact Markov analysis)\n")
	fmt.Fprintf(&b, "%-6s %-5s", "Switch", "Slots")
	for _, l := range t.Loads {
		fmt.Fprintf(&b, " %6.0f%%", l*100)
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%-6s %-5d", row.Kind, row.Slots)
		for _, p := range row.PDiscard {
			if p > 0 && p < 0.0005 {
				fmt.Fprintf(&b, " %7s", "0+")
			} else {
				fmt.Fprintf(&b, " %7.3f", p)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Network experiment plumbing shared by Tables 3-6 and Figure 3.

// netRun executes one network simulation.
func netRun(kind buffer.Kind, proto sw.Protocol, policy arbiter.Policy,
	capacity int, spec netsim.TrafficSpec, sc Scale) (*netsim.Result, error) {
	sim, err := netsim.New(netsim.Config{
		BufferKind:    kind,
		Capacity:      capacity,
		Policy:        policy,
		Protocol:      proto,
		Traffic:       spec,
		WarmupCycles:  sc.Warmup,
		MeasureCycles: sc.Measure,
		Seed:          sc.Seed,
	})
	if err != nil {
		return nil, err
	}
	if sc.Ctx != nil {
		return sim.RunCtx(sc.Ctx)
	}
	return sim.Run(), nil
}

// runSpec names one independent simulation point of a sweep.
type runSpec struct {
	kind     buffer.Kind
	proto    sw.Protocol
	policy   arbiter.Policy
	capacity int
	traffic  netsim.TrafficSpec
}

// runAll fans the given simulation points out over sc.Workers goroutines
// and returns their results in spec order. Every point builds its own
// simulator from its own seed, so points share no mutable state; ordered
// results keep every table byte-identical to the serial rendering.
func runAll(specs []runSpec, sc Scale) ([]*netsim.Result, error) {
	results, _, err := runAllPartial(specs, sc)
	if err != nil {
		return nil, err
	}
	return results, nil
}

// runAllPartial is runAll without the all-or-nothing contract: on
// cancellation (sc.Ctx) it returns whatever points completed — nil
// entries mark the rest — together with the completed count, so sweeps
// can flush partial output with an "interrupted at done/total" footer.
func runAllPartial(specs []runSpec, sc Scale) ([]*netsim.Result, int, error) {
	return parallel.MapCtx(sc.ctx(), len(specs), sc.Workers, func(i int) (*netsim.Result, error) {
		s := specs[i]
		return netRun(s.kind, s.proto, s.policy, s.capacity, s.traffic, sc)
	})
}

// uniform builds a uniform-traffic spec at the given load.
func uniform(load float64) netsim.TrafficSpec {
	return netsim.TrafficSpec{Kind: netsim.Uniform, Load: load}
}

// hotspot builds the paper's 5% hot-spot spec.
func hotspot(load float64) netsim.TrafficSpec {
	return netsim.TrafficSpec{Kind: netsim.HotSpot, Load: load, HotFraction: 0.05, HotDest: 0}
}

// ---------------------------------------------------------------------------
// Table 3: discarding switches, uniform traffic, four slots.

// Table3Cell is one buffer type's discard behaviour.
type Table3Cell struct {
	Kind buffer.Kind
	// PctDiscarded at offered loads 0.25 and 0.50 under smart and dumb
	// arbitration, plus the over-capacity (offered 1.0) point.
	Smart25, Smart50 float64
	OverPct, OverThr float64
	Dumb50           float64
}

// Table3Result is the whole table.
type Table3Result struct {
	Cells []Table3Cell
}

// Table3 runs the discarding-network experiment: four independent
// simulation points per buffer kind, all fanned out through the pool.
func Table3(sc Scale) (*Table3Result, error) {
	var specs []runSpec
	for _, kind := range KindOrder {
		specs = append(specs,
			runSpec{kind, sw.Discarding, arbiter.Smart, 4, uniform(0.25)},
			runSpec{kind, sw.Discarding, arbiter.Smart, 4, uniform(0.50)},
			runSpec{kind, sw.Discarding, arbiter.Dumb, 4, uniform(0.50)},
			runSpec{kind, sw.Discarding, arbiter.Smart, 4, uniform(1.0)},
		)
	}
	results, err := runAll(specs, sc)
	if err != nil {
		return nil, err
	}
	res := &Table3Result{}
	for i, kind := range KindOrder {
		rs := results[4*i : 4*i+4]
		res.Cells = append(res.Cells, Table3Cell{
			Kind:    kind,
			Smart25: 100 * rs[0].DiscardFraction(),
			Smart50: 100 * rs[1].DiscardFraction(),
			Dumb50:  100 * rs[2].DiscardFraction(),
			OverPct: 100 * rs[3].DiscardFraction(),
			OverThr: rs[3].Throughput(),
		})
	}
	return res, nil
}

// Render formats Table 3.
func (t *Table3Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 3: discarding switches, % packets discarded, uniform traffic, 4 slots/buffer\n")
	fmt.Fprintf(&b, "%-6s %8s %8s %12s %10s %10s\n", "Buffer", "0.25", "0.50", "over-cap %", "over thr", "dumb 0.50")
	for _, c := range t.Cells {
		fmt.Fprintf(&b, "%-6s %8.2f %8.2f %12.2f %10.2f %10.2f\n",
			c.Kind, c.Smart25, c.Smart50, c.OverPct, c.OverThr, c.Dumb50)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 4 / Table 5: blocking networks, latency vs load and slot count.

// LatencyRow is one (kind, slots) row: latency at fixed loads plus the
// saturated regime.
type LatencyRow struct {
	Kind       buffer.Kind
	Slots      int
	Loads      []float64
	Latency    []float64 // LatencyFromBorn at each load
	SatLatency float64   // LatencyFromInjection at offered 1.0
	SatThr     float64   // delivered throughput at offered 1.0
}

// LatencyTable runs one row for each requested (kind, slots) pair. Every
// (row, load) cell plus each row's saturation point is an independent
// simulation, so the whole table fans out through the pool at once.
func LatencyTable(kinds []buffer.Kind, slotSizes []int, loads []float64, sc Scale) ([]LatencyRow, error) {
	type rowSpec struct {
		kind  buffer.Kind
		slots int
	}
	var rowSpecs []rowSpec
	for _, kind := range kinds {
		for _, slots := range slotSizes {
			if (kind == buffer.SAMQ || kind == buffer.SAFC) && slots%4 != 0 {
				continue // static designs need slots divisible by the radix
			}
			rowSpecs = append(rowSpecs, rowSpec{kind, slots})
		}
	}
	perRow := len(loads) + 1 // measured loads plus the saturation point
	var specs []runSpec
	for _, rs := range rowSpecs {
		for _, load := range loads {
			specs = append(specs, runSpec{rs.kind, sw.Blocking, arbiter.Smart, rs.slots, uniform(load)})
		}
		specs = append(specs, runSpec{rs.kind, sw.Blocking, arbiter.Smart, rs.slots, uniform(1.0)})
	}
	results, err := runAll(specs, sc)
	if err != nil {
		return nil, err
	}
	var rows []LatencyRow
	for i, rs := range rowSpecs {
		cells := results[perRow*i : perRow*(i+1)]
		row := LatencyRow{Kind: rs.kind, Slots: rs.slots, Loads: loads}
		for _, r := range cells[:len(loads)] {
			row.Latency = append(row.Latency, r.LatencyFromBorn.Mean())
		}
		sat := cells[len(loads)]
		row.SatLatency = sat.LatencyFromInjection.Mean()
		row.SatThr = sat.Throughput()
		rows = append(rows, row)
	}
	return rows, nil
}

// Table4 is the paper's Table 4: all four kinds, 4 slots.
func Table4(sc Scale) ([]LatencyRow, error) {
	return LatencyTable(KindOrder, []int{4}, []float64{0.25, 0.30, 0.40, 0.50}, sc)
}

// Table5 is the paper's Table 5: FIFO and DAMQ at 3, 4, 8 slots.
func Table5(sc Scale) ([]LatencyRow, error) {
	return LatencyTable([]buffer.Kind{buffer.FIFO, buffer.DAMQ}, []int{3, 4, 8},
		[]float64{0.25, 0.50}, sc)
}

// RenderLatencyRows formats Table 4/5-style results.
func RenderLatencyRows(title string, rows []LatencyRow) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	if len(rows) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-6s %-5s", "Buffer", "Slots")
	for _, l := range rows[0].Loads {
		fmt.Fprintf(&b, " %8.2f", l)
	}
	fmt.Fprintf(&b, " %10s %8s\n", "saturated", "sat thr")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-6s %-5d", row.Kind, row.Slots)
		for _, l := range row.Latency {
			fmt.Fprintf(&b, " %8.2f", l)
		}
		fmt.Fprintf(&b, " %10.2f %8.2f\n", row.SatLatency, row.SatThr)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 6: hot-spot traffic.

// Table6Row is one buffer type under 5% hot-spot traffic.
type Table6Row struct {
	Kind       buffer.Kind
	Lat125     float64 // latency at 12.5% load
	Lat200     float64 // latency at 20% load
	SatLatency float64
	SatThr     float64
}

// Table6 runs the hot-spot experiment: three independent points per
// buffer kind, fanned out through the pool.
func Table6(sc Scale) ([]Table6Row, error) {
	var specs []runSpec
	for _, kind := range KindOrder {
		specs = append(specs,
			runSpec{kind, sw.Blocking, arbiter.Smart, 4, hotspot(0.125)},
			runSpec{kind, sw.Blocking, arbiter.Smart, 4, hotspot(0.20)},
			runSpec{kind, sw.Blocking, arbiter.Smart, 4, hotspot(1.0)},
		)
	}
	results, err := runAll(specs, sc)
	if err != nil {
		return nil, err
	}
	var rows []Table6Row
	for i, kind := range KindOrder {
		rs := results[3*i : 3*i+3]
		rows = append(rows, Table6Row{
			Kind:       kind,
			Lat125:     rs[0].LatencyFromBorn.Mean(),
			Lat200:     rs[1].LatencyFromBorn.Mean(),
			SatLatency: rs[2].LatencyFromInjection.Mean(),
			SatThr:     rs[2].Throughput(),
		})
	}
	return rows, nil
}

// RenderTable6 formats the hot-spot table.
func RenderTable6(rows []Table6Row) string {
	var b strings.Builder
	b.WriteString("Table 6: average latency with 5% hot-spot traffic, 4 slots/buffer\n")
	fmt.Fprintf(&b, "%-6s %8s %8s %10s %8s\n", "Buffer", "12.5%", "20.0%", "saturated", "sat thr")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %8.2f %8.2f %10.2f %8.2f\n", r.Kind, r.Lat125, r.Lat200, r.SatLatency, r.SatThr)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 3: latency vs throughput curves.

// Figure3Loads is the default offered-load sweep.
var Figure3Loads = []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40,
	0.45, 0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.90, 1.0}

// Figure3 sweeps offered load and returns one latency/throughput series
// per buffer kind (blocking protocol, uniform traffic). Every (kind,
// load) point fans out through the pool — for the default 18-load sweep
// over two kinds that is 36 concurrent simulations.
func Figure3(kinds []buffer.Kind, capacity int, loads []float64, sc Scale) ([]stats.Series, error) {
	if loads == nil {
		loads = Figure3Loads
	}
	var specs []runSpec
	for _, kind := range kinds {
		for _, load := range loads {
			specs = append(specs, runSpec{kind, sw.Blocking, arbiter.Smart, capacity, uniform(load)})
		}
	}
	results, err := runAll(specs, sc)
	if err != nil {
		return nil, err
	}
	var out []stats.Series
	for ki, kind := range kinds {
		series := stats.Series{Name: fmt.Sprintf("%v/%d", kind, capacity)}
		for li, load := range loads {
			r := results[ki*len(loads)+li]
			series.Add(stats.Point{
				Offered:    load,
				Throughput: r.Throughput(),
				Latency:    r.LatencyFromBorn.Mean(),
			})
		}
		out = append(out, series)
	}
	return out, nil
}

// RenderFigure3 renders the series as a text table plus an ASCII plot of
// latency (y, capped) against throughput (x).
func RenderFigure3(series []stats.Series) string {
	var b strings.Builder
	b.WriteString("Figure 3: latency vs throughput, blocking protocol, uniform traffic\n")
	for _, s := range series {
		fmt.Fprintf(&b, "\n%s  (saturation throughput %.2f)\n", s.Name, s.SaturationThroughput())
		fmt.Fprintf(&b, "%10s %12s %12s\n", "offered", "throughput", "latency")
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%10.2f %12.3f %12.1f\n", p.Offered, p.Throughput, p.Latency)
		}
	}
	b.WriteString("\n" + AsciiPlot(series, 64, 20, 300))
	return b.String()
}

// AsciiPlot draws latency-vs-throughput curves with one mark per series
// (a, b, c, ...). Latencies above latCap are clipped to the top row —
// exactly how the paper's Figure 3 shows the near-vertical saturation
// wall.
func AsciiPlot(series []stats.Series, width, height int, latCap float64) string {
	if width < 8 || height < 4 {
		return ""
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	maxThr := 0.0
	for _, s := range series {
		for _, p := range s.Points {
			if p.Throughput > maxThr {
				maxThr = p.Throughput
			}
		}
	}
	if maxThr == 0 {
		maxThr = 1
	}
	minLat := latCap
	for _, s := range series {
		for _, p := range s.Points {
			if p.Latency < minLat {
				minLat = p.Latency
			}
		}
	}
	for si, s := range series {
		mark := byte('a' + si%26)
		for _, p := range s.Points {
			x := int(p.Throughput / maxThr * float64(width-1))
			lat := p.Latency
			if lat > latCap {
				lat = latCap
			}
			y := 0
			if latCap > minLat {
				y = int((lat - minLat) / (latCap - minLat) * float64(height-1))
			}
			row := height - 1 - y
			grid[row][x] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "latency (clipped at %.0f clocks) vs throughput (0..%.2f)\n", latCap, maxThr)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n")
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", 'a'+si%26, s.Name))
	}
	sort.Strings(legend)
	b.WriteString("  " + strings.Join(legend, "  ") + "\n")
	return b.String()
}

// ---------------------------------------------------------------------------
// Variable-length extension (paper Section 5 outlook).

// VarLenRow compares a buffer kind under fixed vs variable packet sizes.
type VarLenRow struct {
	Kind       buffer.Kind
	FixedThr   float64 // saturation throughput, fixed 1-slot packets, cap 8
	VarThr     float64 // saturation throughput, 1-4 slot packets, cap 8
	FixedLat50 float64
	VarLat50   float64
}

// VarLen runs the extension: same storage (8 slots), fixed single-slot
// packets vs uniformly distributed 1-4 slot packets. Only the dynamic
// designs are compared: a statically partitioned buffer whose per-queue
// share (2 slots here) is smaller than the maximum packet (4 slots) can
// never accept that packet at all — under the blocking protocol its
// sources wedge permanently, which is itself a finding the paper's
// Section 2 anticipates ("packets may be rejected ... even though there
// are some empty buffers"), but makes a latency table meaningless.
func VarLen(sc Scale) ([]VarLenRow, error) {
	kinds := []buffer.Kind{buffer.FIFO, buffer.DAMQ}
	varOf := func(load float64) netsim.TrafficSpec {
		t := uniform(load)
		t.MinSlots, t.MaxSlots = 1, 4
		return t
	}
	var specs []runSpec
	for _, kind := range kinds {
		specs = append(specs,
			runSpec{kind, sw.Blocking, arbiter.Smart, 8, uniform(1.0)},
			runSpec{kind, sw.Blocking, arbiter.Smart, 8, varOf(1.0)},
			runSpec{kind, sw.Blocking, arbiter.Smart, 8, uniform(0.5)},
			runSpec{kind, sw.Blocking, arbiter.Smart, 8, varOf(0.5)},
		)
	}
	results, err := runAll(specs, sc)
	if err != nil {
		return nil, err
	}
	var rows []VarLenRow
	for i, kind := range kinds {
		r := results[4*i : 4*i+4]
		rows = append(rows, VarLenRow{
			Kind:       kind,
			FixedThr:   r[0].Throughput(),
			VarThr:     r[1].Throughput(),
			FixedLat50: r[2].LatencyFromBorn.Mean(),
			VarLat50:   r[3].LatencyFromBorn.Mean(),
		})
	}
	return rows, nil
}

// RenderVarLen formats the extension's comparison.
func RenderVarLen(rows []VarLenRow) string {
	var b strings.Builder
	b.WriteString("Extension: fixed 1-slot vs variable 1-4 slot packets, 8 slots/buffer, blocking\n")
	fmt.Fprintf(&b, "%-6s %10s %10s %12s %12s\n", "Buffer", "fix satthr", "var satthr", "fix lat@.5", "var lat@.5")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %10.3f %10.3f %12.1f %12.1f\n", r.Kind, r.FixedThr, r.VarThr, r.FixedLat50, r.VarLat50)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 1: chip-level cut-through timing.

// Table1Result records the measured turn-around per packet length.
type Table1Result struct {
	Lengths    []int
	TurnAround []int64
	Trace      []string // rendered event schedule for the 8-byte packet
}

// Table1 runs the cycle-accurate chip model and measures the cut-through
// turn-around for several packet lengths.
func Table1() (*Table1Result, error) {
	res := &Table1Result{}
	for _, n := range []int{1, 8, 16, 32} {
		chip := comcobb.NewChip(comcobb.Config{Trace: &comcobb.Trace{}})
		if err := chip.In(0).Router().Set(0x01, comcobb.Route{Out: 1, NewHeader: 0x02}); err != nil {
			return nil, err
		}
		d := comcobb.NewDriver(chip.InLink(0))
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i)
		}
		d.Queue(0x01, data, 0)
		for i := 0; i < n+40; i++ {
			d.Tick()
			chip.Tick()
		}
		in, ok1 := chip.Trace().Find("in[0]", "start bit detected; synchronizer armed")
		out, ok2 := chip.Trace().Find("out[1]", "start bit transmitted")
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("table1: missing trace events for n=%d", n)
		}
		res.Lengths = append(res.Lengths, n)
		res.TurnAround = append(res.TurnAround, out.Cycle-in.Cycle)
		if n == 8 {
			for _, e := range chip.Trace().Events {
				res.Trace = append(res.Trace, e.String())
			}
		}
	}
	return res, nil
}

// Render formats the Table 1 reproduction.
func (t *Table1Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 1: virtual cut-through turn-around (cycle-accurate chip model)\n")
	fmt.Fprintf(&b, "%-12s %s\n", "data bytes", "turn-around (clock cycles)")
	for i, n := range t.Lengths {
		fmt.Fprintf(&b, "%-12d %d\n", n, t.TurnAround[i])
	}
	b.WriteString("\nEvent schedule for the 8-byte packet:\n")
	for _, line := range t.Trace {
		b.WriteString("  " + line + "\n")
	}
	return b.String()
}
