package experiments

import (
	"strings"
	"testing"

	"damq/internal/buffer"
	"damq/internal/stats"
)

// tiny is an even cheaper scale than Quick for unit tests.
var tiny = Scale{Warmup: 200, Measure: 1500, Seed: 3}

func TestTable2SubsetMatchesPaperShape(t *testing.T) {
	// Solve a cheap subset and verify the orderings the paper highlights.
	res, err := Table2([]float64{0.75, 0.90}, 0)
	if err != nil {
		t.Fatal(err)
	}
	get := func(kind buffer.Kind, slots int, loadIdx int) float64 {
		for _, row := range res.Rows {
			if row.Kind == kind && row.Slots == slots {
				return row.PDiscard[loadIdx]
			}
		}
		t.Fatalf("row %v/%d missing", kind, slots)
		return 0
	}
	if !(get(buffer.DAMQ, 4, 1) < get(buffer.SAFC, 4, 1)) {
		t.Error("DAMQ !< SAFC at 90%")
	}
	if !(get(buffer.DAMQ, 3, 1) <= get(buffer.FIFO, 6, 1)) {
		t.Error("DAMQ(3) worse than FIFO(6) at 90%")
	}
	out := res.Render()
	if !strings.Contains(out, "DAMQ") || !strings.Contains(out, "Table 2") {
		t.Error("render missing content")
	}
}

func TestTable2Specs(t *testing.T) {
	specs := Table2Specs()
	if len(specs) != 16 {
		t.Fatalf("expected 16 specs, got %d", len(specs))
	}
	for _, s := range specs {
		if (s.Kind == buffer.SAMQ || s.Kind == buffer.SAFC) && s.Slots%2 != 0 {
			t.Fatalf("static design with odd slots in specs: %+v", s)
		}
	}
}

func TestTable3RunsAndOrdersDAMQFirst(t *testing.T) {
	res, err := Table3(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	var damq, fifo Table3Cell
	for _, c := range res.Cells {
		switch c.Kind {
		case buffer.DAMQ:
			damq = c
		case buffer.FIFO:
			fifo = c
		}
	}
	if damq.Smart50 >= fifo.Smart50 {
		t.Errorf("DAMQ %.2f%% !< FIFO %.2f%% at 0.50", damq.Smart50, fifo.Smart50)
	}
	if damq.OverThr <= fifo.OverThr {
		t.Errorf("DAMQ over-capacity throughput %.2f !> FIFO %.2f", damq.OverThr, fifo.OverThr)
	}
	if !strings.Contains(res.Render(), "Table 3") {
		t.Error("render missing title")
	}
}

func TestTable4Shape(t *testing.T) {
	rows, err := Table4(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	thr := map[buffer.Kind]float64{}
	for _, r := range rows {
		thr[r.Kind] = r.SatThr
		if len(r.Latency) != 4 {
			t.Fatalf("latency cells = %d", len(r.Latency))
		}
	}
	if thr[buffer.DAMQ] <= thr[buffer.FIFO] {
		t.Errorf("DAMQ sat thr %.2f !> FIFO %.2f", thr[buffer.DAMQ], thr[buffer.FIFO])
	}
	out := RenderLatencyRows("Table 4", rows)
	if !strings.Contains(out, "sat thr") {
		t.Error("render missing header")
	}
}

func TestTable5SkipsInvalidStaticSizes(t *testing.T) {
	rows, err := LatencyTable([]buffer.Kind{buffer.SAMQ}, []int{3, 4}, []float64{0.25}, tiny)
	if err != nil {
		t.Fatal(err)
	}
	// SAMQ with 3 slots is not constructible on a 4x4 switch; only the
	// 4-slot row should appear.
	if len(rows) != 1 || rows[0].Slots != 4 {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestTable6Equalizes(t *testing.T) {
	rows, err := Table6(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SatThr < 0.20 || r.SatThr > 0.30 {
			t.Errorf("%v: hot-spot sat thr %.3f outside [0.20, 0.30]", r.Kind, r.SatThr)
		}
	}
	if !strings.Contains(RenderTable6(rows), "hot-spot") {
		t.Error("render missing title")
	}
}

func TestFigure3SeriesShape(t *testing.T) {
	series, err := Figure3([]buffer.Kind{buffer.FIFO, buffer.DAMQ}, 4,
		[]float64{0.2, 0.5, 0.8}, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	var fifoSat, damqSat float64
	for _, s := range series {
		if strings.HasPrefix(s.Name, "FIFO") {
			fifoSat = s.SaturationThroughput()
		} else {
			damqSat = s.SaturationThroughput()
		}
		if len(s.Points) != 3 {
			t.Fatalf("points = %d", len(s.Points))
		}
		// Latency must be non-decreasing along the sweep.
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Latency < s.Points[i-1].Latency-1 {
				t.Errorf("%s: latency decreased along load sweep", s.Name)
			}
		}
	}
	if damqSat <= fifoSat {
		t.Errorf("DAMQ saturation %.2f !> FIFO %.2f", damqSat, fifoSat)
	}
	out := RenderFigure3(series)
	if !strings.Contains(out, "Figure 3") || !strings.Contains(out, "latency") {
		t.Error("render missing content")
	}
}

func TestAsciiPlot(t *testing.T) {
	s := stats.Series{Name: "x"}
	s.Add(stats.Point{Offered: 0.2, Throughput: 0.2, Latency: 40})
	s.Add(stats.Point{Offered: 0.8, Throughput: 0.5, Latency: 400})
	out := AsciiPlot([]stats.Series{s}, 40, 10, 300)
	if !strings.Contains(out, "a") || !strings.Contains(out, "a=x") {
		t.Fatalf("plot missing marks:\n%s", out)
	}
	if AsciiPlot(nil, 2, 2, 100) != "" {
		t.Error("degenerate plot should be empty")
	}
}

func TestVarLenDAMQAdvantage(t *testing.T) {
	rows, err := VarLen(tiny)
	if err != nil {
		t.Fatal(err)
	}
	var damq, fifo VarLenRow
	for _, r := range rows {
		switch r.Kind {
		case buffer.DAMQ:
			damq = r
		case buffer.FIFO:
			fifo = r
		}
	}
	if damq.VarThr <= fifo.VarThr {
		t.Errorf("varlen: DAMQ %.3f !> FIFO %.3f", damq.VarThr, fifo.VarThr)
	}
	if !strings.Contains(RenderVarLen(rows), "variable") {
		t.Error("render missing title")
	}
}

func TestTable1FourCycles(t *testing.T) {
	res, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range res.Lengths {
		if res.TurnAround[i] != 4 {
			t.Errorf("n=%d: turn-around %d, want 4", n, res.TurnAround[i])
		}
	}
	out := res.Render()
	if !strings.Contains(out, "cut-through") || !strings.Contains(out, "cycle") {
		t.Error("render missing content")
	}
}
