package experiments

import (
	"fmt"
	"strings"
	"time"

	"damq/internal/arbiter"
	"damq/internal/buffer"
	"damq/internal/markov"
	"damq/internal/markov2x2"
	"damq/internal/netsim"
	"damq/internal/sw"
)

// This file holds the ablation studies DESIGN.md §7 calls out: design
// choices the paper discusses qualitatively, quantified on our models.

// ---------------------------------------------------------------------------
// Connectivity ablation: what does full connectivity buy on top of
// dynamic allocation? DAFC = DAMQ pool + SAFC read bandwidth.

// ConnectivityRow compares one buffer organization along both evaluation
// axes.
type ConnectivityRow struct {
	Kind     buffer.Kind
	PDiscard float64 // 2x2 Markov, 4 slots, 90% load
	SatThr   float64 // 64x64 network saturation throughput, 4 slots
	Lat50    float64 // network latency at 0.5 offered load
}

// AblationConnectivity evaluates SAMQ, SAFC, DAMQ and DAFC with equal
// storage. The interesting comparisons: SAFC-SAMQ (connectivity under
// static allocation) vs DAFC-DAMQ (connectivity under dynamic
// allocation). The paper's claim is that the second gap is small — the
// single read port is not the bottleneck once allocation is dynamic.
func AblationConnectivity(sc Scale) ([]ConnectivityRow, error) {
	kinds := []buffer.Kind{buffer.SAMQ, buffer.SAFC, buffer.DAMQ, buffer.DAFC}
	var specs []runSpec
	for _, kind := range kinds {
		specs = append(specs,
			runSpec{kind, sw.Blocking, arbiter.Smart, 4, uniform(1.0)},
			runSpec{kind, sw.Blocking, arbiter.Smart, 4, uniform(0.5)},
		)
	}
	results, err := runAll(specs, sc)
	if err != nil {
		return nil, err
	}
	var rows []ConnectivityRow
	for i, kind := range kinds {
		mr, err := markov2x2.Solve(kind, 4, 0.90)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ConnectivityRow{
			Kind:     kind,
			PDiscard: mr.PDiscard,
			SatThr:   results[2*i].Throughput(),
			Lat50:    results[2*i+1].LatencyFromBorn.Mean(),
		})
	}
	return rows, nil
}

// RenderConnectivity formats the connectivity ablation.
func RenderConnectivity(rows []ConnectivityRow) string {
	var b strings.Builder
	b.WriteString("Ablation: read connectivity x allocation policy (4 slots/buffer)\n")
	fmt.Fprintf(&b, "%-6s %14s %10s %10s\n", "Buffer", "P(discard)@90%", "sat thr", "lat@0.5")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %14.4f %10.3f %10.1f\n", r.Kind, r.PDiscard, r.SatThr, r.Lat50)
	}
	b.WriteString("SAFC-SAMQ gap = connectivity under static allocation;\n")
	b.WriteString("DAFC-DAMQ gap = connectivity under dynamic allocation (the paper: small;\n")
	b.WriteString("here it can even be slightly negative — the wider tie-set changes what\n")
	b.WriteString("longest-queue arbitration picks — confirming the read port is not the\n")
	b.WriteString("bottleneck once allocation is dynamic).\n")
	return b.String()
}

// ---------------------------------------------------------------------------
// Arbitration ablation: smart vs dumb round-robin at and below saturation.

// ArbitrationRow holds one (kind, policy) measurement pair.
type ArbitrationRow struct {
	Kind        buffer.Kind
	SmartSatThr float64
	DumbSatThr  float64
	SmartLat40  float64
	DumbLat40   float64
}

// AblationArbitration quantifies Table 3's "smart ≈ dumb" observation on
// the blocking network across all four paper designs.
func AblationArbitration(sc Scale) ([]ArbitrationRow, error) {
	var specs []runSpec
	for _, kind := range KindOrder {
		specs = append(specs,
			runSpec{kind, sw.Blocking, arbiter.Smart, 4, uniform(1.0)},
			runSpec{kind, sw.Blocking, arbiter.Dumb, 4, uniform(1.0)},
			runSpec{kind, sw.Blocking, arbiter.Smart, 4, uniform(0.4)},
			runSpec{kind, sw.Blocking, arbiter.Dumb, 4, uniform(0.4)},
		)
	}
	results, err := runAll(specs, sc)
	if err != nil {
		return nil, err
	}
	var rows []ArbitrationRow
	for i, kind := range KindOrder {
		r := results[4*i : 4*i+4]
		rows = append(rows, ArbitrationRow{
			Kind:        kind,
			SmartSatThr: r[0].Throughput(),
			DumbSatThr:  r[1].Throughput(),
			SmartLat40:  r[2].LatencyFromBorn.Mean(),
			DumbLat40:   r[3].LatencyFromBorn.Mean(),
		})
	}
	return rows, nil
}

// RenderArbitration formats the arbitration ablation.
func RenderArbitration(rows []ArbitrationRow) string {
	var b strings.Builder
	b.WriteString("Ablation: smart vs dumb arbitration (blocking, uniform, 4 slots)\n")
	fmt.Fprintf(&b, "%-6s %12s %12s %12s %12s\n",
		"Buffer", "smart satthr", "dumb satthr", "smart lat@.4", "dumb lat@.4")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %12.3f %12.3f %12.1f %12.1f\n",
			r.Kind, r.SmartSatThr, r.DumbSatThr, r.SmartLat40, r.DumbLat40)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Burstiness ablation: multi-packet messages (the ComCoBB's workload
// shape) vs independent packets at equal offered load.

// BurstRow compares one buffer kind under uniform vs bursty traffic.
type BurstRow struct {
	Kind       buffer.Kind
	UniformLat float64 // latency at 0.4 load, independent packets
	BurstLat   float64 // latency at 0.4 load, mean-4-packet messages
	UniformSat float64 // saturation throughput, independent packets
	BurstSat   float64 // saturation throughput, bursty
}

// AblationBurstiness measures how message-structured traffic (bursts of
// packets to one destination) shifts the comparison. Bursts pile packets
// onto a single destination queue, so designs that segregate per
// destination keep other traffic moving, while a FIFO's head-of-line
// blocking worsens.
func AblationBurstiness(sc Scale) ([]BurstRow, error) {
	const meanBurst = 4
	burst := func(load float64) netsim.TrafficSpec {
		return netsim.TrafficSpec{Kind: netsim.Bursty, Load: load, MeanBurst: meanBurst}
	}
	var specs []runSpec
	for _, kind := range KindOrder {
		specs = append(specs,
			runSpec{kind, sw.Blocking, arbiter.Smart, 4, uniform(0.4)},
			runSpec{kind, sw.Blocking, arbiter.Smart, 4, burst(0.4)},
			runSpec{kind, sw.Blocking, arbiter.Smart, 4, uniform(1.0)},
			runSpec{kind, sw.Blocking, arbiter.Smart, 4, burst(1.0)},
		)
	}
	results, err := runAll(specs, sc)
	if err != nil {
		return nil, err
	}
	var rows []BurstRow
	for i, kind := range KindOrder {
		r := results[4*i : 4*i+4]
		rows = append(rows, BurstRow{
			Kind:       kind,
			UniformLat: r[0].LatencyFromBorn.Mean(),
			BurstLat:   r[1].LatencyFromBorn.Mean(),
			UniformSat: r[2].Throughput(),
			BurstSat:   r[3].Throughput(),
		})
	}
	return rows, nil
}

// RenderBurstiness formats the burstiness ablation.
func RenderBurstiness(rows []BurstRow) string {
	var b strings.Builder
	b.WriteString("Ablation: independent packets vs mean-4-packet messages (blocking, 4 slots)\n")
	fmt.Fprintf(&b, "%-6s %12s %12s %12s %12s\n",
		"Buffer", "unif lat@.4", "burst lat@.4", "unif satthr", "burst satthr")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %12.1f %12.1f %12.3f %12.3f\n",
			r.Kind, r.UniformLat, r.BurstLat, r.UniformSat, r.BurstSat)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Solver ablation: power iteration vs Gauss-Seidel, plus mixing times
// that justify the simulators' warm-up lengths.

// SolverRow is one chain's solver comparison.
type SolverRow struct {
	Name       string
	States     int
	PowerTime  time.Duration
	GSTime     time.Duration
	MaxDiff    float64 // max |pi_power - pi_gs|
	MixingTime int     // steps to 0.01 total variation from empty start
}

// AblationSolver solves representative Table 2 chains with both solvers
// and measures how many long-clock cycles each chain needs to mix — the
// analytic justification for the network simulator's warm-up period.
//
// clock supplies the wall-clock readings for the solver timing columns;
// the CLI passes time.Now. A nil clock yields zero durations, keeping
// the rendered table byte-identical across runs — tests and golden
// outputs use that.
func AblationSolver(clock func() time.Time) ([]SolverRow, error) {
	if clock == nil {
		clock = func() time.Time { return time.Time{} }
	}
	cases := []struct {
		name  string
		kind  buffer.Kind
		slots int
		load  float64
	}{
		{"DAMQ/4 @ 90%", buffer.DAMQ, 4, 0.90},
		{"FIFO/6 @ 90%", buffer.FIFO, 6, 0.90},
		{"SAFC/6 @ 75%", buffer.SAFC, 6, 0.75},
	}
	var rows []SolverRow
	for _, cse := range cases {
		model, err := markov2x2.New(cse.kind, cse.slots, cse.load)
		if err != nil {
			return nil, err
		}
		chain, err := markov.Build(model, 0)
		if err != nil {
			return nil, err
		}
		var row SolverRow
		row.Name = cse.name
		row.States = chain.NumStates()

		start := clock()
		power, err := chain.Steady(markov.SolveOpts{})
		if err != nil {
			return nil, err
		}
		row.PowerTime = clock().Sub(start)

		start = clock()
		gs, err := chain.SteadyGaussSeidel(markov.SolveOpts{})
		if err != nil {
			return nil, err
		}
		row.GSTime = clock().Sub(start)

		for i := range power {
			d := power[i] - gs[i]
			if d < 0 {
				d = -d
			}
			if d > row.MaxDiff {
				row.MaxDiff = d
			}
		}
		mix, err := chain.MixingTime(power, 0.01, 1_000_000)
		if err != nil {
			return nil, err
		}
		row.MixingTime = mix
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderSolver formats the solver ablation.
func RenderSolver(rows []SolverRow) string {
	var b strings.Builder
	b.WriteString("Ablation: steady-state solver comparison + chain mixing times\n")
	fmt.Fprintf(&b, "%-14s %8s %12s %12s %10s %10s\n",
		"chain", "states", "power", "gauss-seidel", "max diff", "mix steps")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %8d %12s %12s %10.2e %10d\n",
			r.Name, r.States, r.PowerTime.Round(time.Microsecond),
			r.GSTime.Round(time.Microsecond), r.MaxDiff, r.MixingTime)
	}
	b.WriteString("Mixing times are tens of cycles; the simulators warm up for >=500,\n")
	b.WriteString("so steady-state measurements are not biased by the empty start.\n")
	return b.String()
}
