package experiments

import (
	"strings"
	"testing"
)

func TestHogging(t *testing.T) {
	rows, err := Hogging(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	central, part := rows[0], rows[1]
	if central.LightMean < 0.2 {
		t.Errorf("central pool victims lose only %.3f — hogging not reproduced", central.LightMean)
	}
	if part.LightMean > 0.01 {
		t.Errorf("partitioned victims lose %.3f, want ~0", part.LightMean)
	}
	out := RenderHogging(rows)
	if !strings.Contains(out, "victim mean") || !strings.Contains(out, "central pool") {
		t.Error("render missing content")
	}
}
