package experiments

import (
	"fmt"
	"strings"

	"damq/internal/buffer"
	"damq/internal/eventsim"
	"damq/internal/parallel"
)

// AsyncRow is one buffer kind's behaviour in the asynchronous
// event-driven network (experiment E9: the paper's closing conjecture).
type AsyncRow struct {
	Kind buffer.Kind
	// Fixed-length (8-byte) packets.
	FixedLat50  float64 // mean latency at 0.5 load, cycles
	FixedSatUtl float64 // link utilization at offered 1.0
	// Variable-length (1-32 byte) packets, same storage.
	VarLat50  float64
	VarSatUtl float64
}

// asyncScale converts the long-clock Scale to event-sim cycle spans (one
// long clock = 12 link cycles).
func asyncScale(sc Scale) (warmup, measure int64) {
	return sc.Warmup * 12, sc.Measure * 12
}

// Async runs the asynchronous network experiment: FIFO vs DAMQ, fixed vs
// variable packet lengths, 8 slots per buffer, blocking flow control with
// per-hop virtual cut-through (4-cycle turn-around, Table 1's figure).
func Async(sc Scale) ([]AsyncRow, error) {
	warm, meas := asyncScale(sc)
	return asyncRows(sc, func(load float64, minB, maxB int) (int64, int64) {
		return warm, meas
	})
}

// AsyncPackets runs E9 with each point's measurement span sized to
// deliver roughly the given number of packets, instead of sc's fixed
// cycle count: packet birth rate is inputs·load/E[duration] per cycle
// (64 inputs, 3 overhead cycles, uniform payload sizes), so the window
// is packets·E[duration]/(inputs·load) cycles. This decouples statistical
// weight from wall-clock across loads and length distributions — the
// `omegasim -exp async -packets N` knob. packets <= 0 falls back to
// Async's spans.
func AsyncPackets(sc Scale, packets int64) ([]AsyncRow, error) {
	if packets <= 0 {
		return Async(sc)
	}
	warm, _ := asyncScale(sc)
	return asyncRows(sc, func(load float64, minB, maxB int) (int64, int64) {
		meanDur := 3 + float64(minB+maxB)/2
		meas := int64(float64(packets)*meanDur/(64*load)) + 1
		return warm, meas
	})
}

// asyncRows runs the E9 spec grid, asking spans for each point's warmup
// and measurement windows.
func asyncRows(sc Scale, spans func(load float64, minB, maxB int) (int64, int64)) ([]AsyncRow, error) {
	kinds := []buffer.Kind{buffer.FIFO, buffer.DAMQ}
	type asyncSpec struct {
		kind       buffer.Kind
		load       float64
		minB, maxB int
	}
	var specs []asyncSpec
	for _, kind := range kinds {
		specs = append(specs,
			asyncSpec{kind, 0.5, 8, 8},
			asyncSpec{kind, 1.0, 8, 8},
			asyncSpec{kind, 0.5, 1, 32},
			asyncSpec{kind, 1.0, 1, 32},
		)
	}
	results, err := parallel.Map(len(specs), sc.Workers, func(i int) (*eventsim.Result, error) {
		s := specs[i]
		warm, meas := spans(s.load, s.minB, s.maxB)
		sim, err := eventsim.New(eventsim.Config{
			BufferKind: s.kind,
			Capacity:   8,
			MinBytes:   s.minB,
			MaxBytes:   s.maxB,
			Load:       s.load,
			Warmup:     warm,
			Measure:    meas,
			Seed:       sc.Seed,
		})
		if err != nil {
			return nil, err
		}
		return sim.Run(), nil
	})
	if err != nil {
		return nil, err
	}
	var rows []AsyncRow
	for i, kind := range kinds {
		r := results[4*i : 4*i+4]
		rows = append(rows, AsyncRow{
			Kind:        kind,
			FixedLat50:  r[0].Latency.Mean(),
			FixedSatUtl: r[1].LinkUtilization,
			VarLat50:    r[2].Latency.Mean(),
			VarSatUtl:   r[3].LinkUtilization,
		})
	}
	return rows, nil
}

// RenderAsync formats the asynchronous experiment.
func RenderAsync(rows []AsyncRow) string {
	var b strings.Builder
	b.WriteString("Extension E9: asynchronous event-driven network (virtual cut-through,\n")
	b.WriteString("4-cycle turn-around/hop, 8 slots/buffer, blocking). Latency in link cycles.\n")
	fmt.Fprintf(&b, "%-6s %13s %13s %13s %13s\n",
		"Buffer", "fix lat@.5", "fix sat utl", "var lat@.5", "var sat utl")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %13.1f %13.3f %13.1f %13.3f\n",
			r.Kind, r.FixedLat50, r.FixedSatUtl, r.VarLat50, r.VarSatUtl)
	}
	return b.String()
}
