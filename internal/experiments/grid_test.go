package experiments

import (
	"bytes"
	"strings"
	"testing"

	"damq/internal/arbiter"
	"damq/internal/buffer"
	"damq/internal/netsim"
	"damq/internal/sw"
)

func TestGridRunAndCSV(t *testing.T) {
	g := Grid{
		Kinds:      []buffer.Kind{buffer.FIFO, buffer.DAMQ, buffer.SAMQ},
		Loads:      []float64{0.2, 0.4},
		Capacities: []int{4, 6}, // 6 invalid for SAMQ -> skipped
		Protocol:   sw.Blocking,
		Policy:     arbiter.Smart,
		Traffic:    netsim.Uniform,
	}
	points, err := g.Run(tiny)
	if err != nil {
		t.Fatal(err)
	}
	// FIFO: 2 caps x 2 loads; DAMQ: 4; SAMQ: only cap 4 -> 2. Total 10.
	if len(points) != 10 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Throughput <= 0 || p.Latency <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
		if p.Kind == buffer.SAMQ && p.Capacity == 6 {
			t.Fatal("invalid SAMQ capacity not skipped")
		}
	}

	var buf bytes.Buffer
	if err := WriteCSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 11 {
		t.Fatalf("CSV lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "kind,capacity,load,") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "FIFO,4,0.2,") {
		t.Fatalf("first row = %q", lines[1])
	}
}

func TestGridBurstyAndHotspot(t *testing.T) {
	g := Grid{
		Kinds:      []buffer.Kind{buffer.DAMQ},
		Loads:      []float64{0.3},
		Capacities: []int{4},
		Protocol:   sw.Blocking,
		Policy:     arbiter.Smart,
		Traffic:    netsim.Bursty,
		MeanBurst:  3,
	}
	if _, err := g.Run(tiny); err != nil {
		t.Fatalf("bursty grid: %v", err)
	}
	g.Traffic = netsim.HotSpot
	g.HotFraction = 0.05
	if _, err := g.Run(tiny); err != nil {
		t.Fatalf("hotspot grid: %v", err)
	}
}
