package experiments

import (
	"fmt"
	"strings"

	"damq/internal/arbiter"
	"damq/internal/buffer"
	"damq/internal/fault"
	"damq/internal/netsim"
	"damq/internal/parallel"
	"damq/internal/sw"
)

// The fault-curve experiment extends the paper's discarding-network
// comparison (Table 3) with injected link faults: how does delivered
// throughput degrade, and how much traffic turns into explicit
// faulted-discards, as the per-link per-cycle fault rate climbs? The
// paper argues the DAMQ's value is robustness to contention; this curve
// measures robustness to hardware failure, the dimension the fault
// engine adds.

// FaultCurveRates is the default per-link fault-rate sweep (0 is the
// fault-free baseline anchoring each curve).
var FaultCurveRates = []float64{0, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2}

// FaultPoint is one (kind, rate) measurement.
type FaultPoint struct {
	Rate        float64 // per-link per-cycle transient fault rate
	Throughput  float64 // delivered packets/input/cycle
	FaultedPct  float64 // % of injected packets lost to faulted links
	DiscardPct  float64 // % of generated packets discarded by the protocol
	Quarantined int64   // buffer slots taken out of service during the run
}

// FaultCurveRow is one buffer kind's degradation curve.
type FaultCurveRow struct {
	Kind   buffer.Kind
	Points []FaultPoint
}

// FaultCurve sweeps link fault rates for each buffer kind on the
// discarding network (uniform load 0.5, 4 slots, smart arbitration) and
// reports the degradation curve. Slot faults ride along at a tenth of
// the link rate so the dynamically allocated kinds also exercise
// quarantine. nil kinds defaults to FIFO vs DAMQ, nil rates to
// FaultCurveRates. Every point is an independent simulation fanned out
// through the worker pool; the fault seed is derived per point from
// sc.Seed so the whole curve replays exactly.
func FaultCurve(kinds []buffer.Kind, rates []float64, sc Scale) ([]FaultCurveRow, error) {
	if kinds == nil {
		kinds = []buffer.Kind{buffer.FIFO, buffer.DAMQ}
	}
	if rates == nil {
		rates = FaultCurveRates
	}
	type pointSpec struct {
		kind buffer.Kind
		rate float64
	}
	var specs []pointSpec
	for _, kind := range kinds {
		for _, rate := range rates {
			specs = append(specs, pointSpec{kind, rate})
		}
	}
	type pointResult struct {
		res  *netsim.Result
		quar int64
	}
	results, _, err := parallel.MapCtx(sc.ctx(), len(specs), sc.Workers, func(i int) (pointResult, error) {
		s := specs[i]
		sim, err := netsim.New(netsim.Config{
			BufferKind:    s.kind,
			Capacity:      4,
			Policy:        arbiter.Smart,
			Protocol:      sw.Discarding,
			Traffic:       netsim.TrafficSpec{Kind: netsim.Uniform, Load: 0.5},
			WarmupCycles:  sc.Warmup,
			MeasureCycles: sc.Measure,
			Seed:          sc.Seed,
		})
		if err != nil {
			return pointResult{}, err
		}
		if s.rate > 0 {
			if err := sim.SetFaults(fault.Config{
				Seed:              sc.Seed + uint64(i+1),
				LinkTransientRate: s.rate,
				SlotStuckRate:     s.rate / 10,
			}); err != nil {
				return pointResult{}, err
			}
		}
		res, err := sim.RunCtx(sc.ctx())
		if err != nil {
			return pointResult{}, err
		}
		return pointResult{res: res, quar: sim.QuarantinedSlots()}, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]FaultCurveRow, 0, len(kinds))
	for ki, kind := range kinds {
		row := FaultCurveRow{Kind: kind}
		for ri, rate := range rates {
			pr := results[ki*len(rates)+ri]
			row.Points = append(row.Points, FaultPoint{
				Rate:        rate,
				Throughput:  pr.res.Throughput(),
				FaultedPct:  100 * pr.res.FaultFraction(),
				DiscardPct:  100 * pr.res.DiscardFraction(),
				Quarantined: pr.quar,
			})
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderFaultCurve formats the degradation curves.
func RenderFaultCurve(rows []FaultCurveRow) string {
	var b strings.Builder
	b.WriteString("Graceful degradation: discarding network, uniform 0.50 load, 4 slots/buffer,\n")
	b.WriteString("transient link faults at the given per-link per-cycle rate (slot faults at rate/10)\n")
	fmt.Fprintf(&b, "%-6s %10s %10s %10s %10s %12s\n",
		"Buffer", "fault rate", "thr", "faulted %", "discard %", "slots lost")
	for _, row := range rows {
		for _, p := range row.Points {
			fmt.Fprintf(&b, "%-6s %10.4g %10.3f %10.2f %10.2f %12d\n",
				row.Kind, p.Rate, p.Throughput, p.FaultedPct, p.DiscardPct, p.Quarantined)
		}
	}
	return b.String()
}
