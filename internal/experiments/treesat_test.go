package experiments

import (
	"strings"
	"testing"
)

func TestTreeSaturation(t *testing.T) {
	sc := tiny
	sc.Warmup = 1500 // tree saturation needs time to establish
	rows, err := TreeSaturation(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r.PerStage) != 3 {
			t.Fatalf("%v: %d stages", r.Kind, len(r.PerStage))
		}
		// The gradient: stage 0 fullest, last stage lightest.
		if !(r.PerStage[0] > r.PerStage[2]) {
			t.Errorf("%v: no gradient: %v", r.Kind, r.PerStage)
		}
		if r.PerStage[0] <= r.UniformS0 {
			t.Errorf("%v: stage 0 %v not above uniform reference %v",
				r.Kind, r.PerStage[0], r.UniformS0)
		}
	}
	out := RenderTreeSat(rows)
	if !strings.Contains(out, "stage 0") || !strings.Contains(out, "Tree saturation") {
		t.Error("render missing content")
	}
}
