package experiments

import (
	"fmt"
	"strings"

	"damq/internal/arbiter"
	"damq/internal/buffer"
	"damq/internal/parallel"
	"damq/internal/rng"
	"damq/internal/sw"
)

// The paper's Section 4.1 limits exact Markov analysis to 2×2 switches
// ("For the four-by-four switches, the state space was too large for
// Markov modeling, so the evaluation was done using event-driven
// simulation"). Switch4x4 is that bridge: the same standalone discarding
// switch measured by Monte-Carlo at radix 4 — Table 2's shape, one size
// up, before any network effects.

// Switch4Row is one (kind, slots) row of simulated discard fractions.
type Switch4Row struct {
	Kind     buffer.Kind
	Slots    int
	PDiscard []float64 // aligned with Switch4Loads
}

// Switch4Loads are the traffic levels reported.
var Switch4Loads = []float64{0.50, 0.75, 0.90, 0.99}

// Switch4x4 simulates standalone 4×4 discarding switches. Every
// (kind, slots, load) cell runs on its own switch instance with its own
// rng stream, so the 32 cells fan out through the pool independently.
func Switch4x4(cycles int64, seed uint64, workers int) ([]Switch4Row, error) {
	specs := []struct {
		kind  buffer.Kind
		slots int
	}{
		{buffer.FIFO, 4}, {buffer.FIFO, 8},
		{buffer.DAMQ, 4}, {buffer.DAMQ, 8},
		{buffer.SAMQ, 4}, {buffer.SAMQ, 8},
		{buffer.SAFC, 4}, {buffer.SAFC, 8},
	}
	nl := len(Switch4Loads)
	cells, err := parallel.Map(len(specs)*nl, workers, func(i int) (float64, error) {
		spec := specs[i/nl]
		s, err := sw.New(sw.Config{
			Ports:      4,
			BufferKind: spec.kind,
			Capacity:   spec.slots,
			Policy:     arbiter.Smart,
		})
		if err != nil {
			return 0, err
		}
		res := s.RunDiscarding(Switch4Loads[i%nl], cycles, rng.New(seed))
		return res.DiscardFraction(), nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Switch4Row
	for si, spec := range specs {
		rows = append(rows, Switch4Row{
			Kind:     spec.kind,
			Slots:    spec.slots,
			PDiscard: cells[si*nl : si*nl+nl],
		})
	}
	return rows, nil
}

// RenderSwitch4 formats the 4×4 switch table.
func RenderSwitch4(rows []Switch4Row) string {
	var b strings.Builder
	b.WriteString("4x4 discarding switch, Monte-Carlo (Table 2's shape at the paper's real radix)\n")
	fmt.Fprintf(&b, "%-6s %-5s", "Switch", "Slots")
	for _, l := range Switch4Loads {
		fmt.Fprintf(&b, " %6.0f%%", l*100)
	}
	b.WriteByte('\n')
	for _, row := range rows {
		fmt.Fprintf(&b, "%-6s %-5d", row.Kind, row.Slots)
		for _, p := range row.PDiscard {
			fmt.Fprintf(&b, " %7.3f", p)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Tail latency: means hide what saturation does to the unlucky packets.

// TailRow reports latency percentiles for one buffer kind.
type TailRow struct {
	Kind buffer.Kind
	Load float64
	Mean float64
	P50  float64
	P95  float64
	P99  float64
}

// TailLatency measures the latency distribution at the given load
// (blocking, uniform, 4 slots).
func TailLatency(load float64, sc Scale) ([]TailRow, error) {
	var specs []runSpec
	for _, kind := range KindOrder {
		specs = append(specs, runSpec{kind, sw.Blocking, arbiter.Smart, 4, uniform(load)})
	}
	results, err := runAll(specs, sc)
	if err != nil {
		return nil, err
	}
	var rows []TailRow
	for i, kind := range KindOrder {
		r := results[i]
		rows = append(rows, TailRow{
			Kind: kind,
			Load: load,
			Mean: r.LatencyFromBorn.Mean(),
			P50:  r.LatencyP(0.50),
			P95:  r.LatencyP(0.95),
			P99:  r.LatencyP(0.99),
		})
	}
	return rows, nil
}

// RenderTail formats the percentile table.
func RenderTail(rows []TailRow) string {
	var b strings.Builder
	if len(rows) > 0 {
		fmt.Fprintf(&b, "Latency distribution at %.2f offered load (clocks; blocking, uniform, 4 slots)\n",
			rows[0].Load)
	}
	fmt.Fprintf(&b, "%-6s %8s %8s %8s %8s\n", "Buffer", "mean", "p50", "p95", "p99")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %8.1f %8.1f %8.1f %8.1f\n", r.Kind, r.Mean, r.P50, r.P95, r.P99)
	}
	return b.String()
}
