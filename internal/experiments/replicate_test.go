package experiments

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"damq/internal/buffer"
)

func TestSeeds(t *testing.T) {
	s := Seeds(10, 5)
	if len(s) != 5 {
		t.Fatalf("len = %d", len(s))
	}
	seen := map[uint64]bool{}
	for _, v := range s {
		if seen[v] {
			t.Fatal("duplicate seed")
		}
		seen[v] = true
	}
	if s[0] != 10 {
		t.Fatalf("base seed not first: %v", s)
	}
}

func TestReplicatePropagatesErrors(t *testing.T) {
	wantErr := errors.New("boom")
	_, err := Replicate(Seeds(1, 3), 0, func(uint64) (float64, error) { return 0, wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
}

func TestSaturationCI(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated saturation runs")
	}
	rows, err := SaturationCI(3, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	var damq, fifo CIRow
	for _, r := range rows {
		if r.Summary.N() != 3 {
			t.Fatalf("%v: %d replicates", r.Kind, r.Summary.N())
		}
		// Across-seed variation of a saturation throughput must be small
		// relative to the mean (the measurement is stable).
		if r.Summary.CI95() > 0.15*r.Summary.Mean() {
			t.Errorf("%v: CI %v too wide for mean %v", r.Kind, r.Summary.CI95(), r.Summary.Mean())
		}
		switch r.Kind {
		case buffer.DAMQ:
			damq = r
		case buffer.FIFO:
			fifo = r
		}
	}
	// The DAMQ-FIFO gap must dwarf both CIs: the headline result is not
	// a seed artifact.
	gap := damq.Summary.Mean() - fifo.Summary.Mean()
	if gap < 3*(damq.Summary.CI95()+fifo.Summary.CI95()) {
		t.Errorf("gap %v not clearly outside noise (CIs %v, %v)",
			gap, damq.Summary.CI95(), fifo.Summary.CI95())
	}
	if !strings.Contains(RenderCI(rows), "95% CI") {
		t.Error("render missing header")
	}
}

func TestRunAllJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick evaluation")
	}
	rep, err := RunAll(tiny, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Table2 != nil {
		t.Error("markov should have been skipped")
	}
	if rep.Table1 == nil || rep.Table3 == nil || len(rep.Table4) == 0 ||
		len(rep.Async) == 0 || rep.Ablate == nil {
		t.Fatal("report incomplete")
	}
	raw, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	// Round trip: the JSON must decode back into an equivalent skeleton.
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Table4) != len(rep.Table4) || back.Table4[0].Kind != rep.Table4[0].Kind {
		t.Fatal("round trip lost data")
	}
	if !strings.Contains(string(raw), "\"table6\"") {
		t.Error("JSON missing sections")
	}
}
