package experiments

import (
	"strings"
	"testing"

	"damq/internal/buffer"
)

func TestSwitch4x4Ordering(t *testing.T) {
	rows, err := Switch4x4(100_000, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(kind buffer.Kind, slots int) []float64 {
		for _, r := range rows {
			if r.Kind == kind && r.Slots == slots {
				return r.PDiscard
			}
		}
		t.Fatalf("missing %v/%d", kind, slots)
		return nil
	}
	// Table 2's shape at radix 4: at 90% load (index 2), DAMQ < SAFC <=
	// SAMQ and DAMQ < FIFO; more slots help every design.
	i90 := 2
	damq4, fifo4 := get(buffer.DAMQ, 4), get(buffer.FIFO, 4)
	samq4, safc4 := get(buffer.SAMQ, 4), get(buffer.SAFC, 4)
	if !(damq4[i90] < safc4[i90] && safc4[i90] <= samq4[i90]+0.01 && damq4[i90] < fifo4[i90]) {
		t.Fatalf("ordering broken at 90%%: DAMQ %v SAFC %v SAMQ %v FIFO %v",
			damq4[i90], safc4[i90], samq4[i90], fifo4[i90])
	}
	for _, kind := range KindOrder {
		small, big := get(kind, 4), get(kind, 8)
		for i := range small {
			if big[i] > small[i]+0.005 {
				t.Errorf("%v: more slots increased discards at load %v: %v -> %v",
					kind, Switch4Loads[i], small[i], big[i])
			}
		}
	}
	// A 4-slot DAMQ beats an 8-slot FIFO (the paper's chip-area trade).
	damq4s, fifo8 := get(buffer.DAMQ, 4), get(buffer.FIFO, 8)
	if damq4s[i90] > fifo8[i90] {
		t.Errorf("DAMQ/4 %v !<= FIFO/8 %v at 90%%", damq4s[i90], fifo8[i90])
	}
	if !strings.Contains(RenderSwitch4(rows), "4x4") {
		t.Error("render missing title")
	}
}

func TestTailLatency(t *testing.T) {
	rows, err := TailLatency(0.45, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	var damq, fifo TailRow
	for _, r := range rows {
		if r.P50 > r.P95 || r.P95 > r.P99 {
			t.Errorf("%v: percentiles not monotone: %v %v %v", r.Kind, r.P50, r.P95, r.P99)
		}
		switch r.Kind {
		case buffer.DAMQ:
			damq = r
		case buffer.FIFO:
			fifo = r
		}
	}
	// At 0.45 load FIFO is near its knee: its tail must be far worse
	// than DAMQ's even though medians stay comparable.
	if damq.P99 >= fifo.P99 {
		t.Errorf("p99: DAMQ %v !< FIFO %v", damq.P99, fifo.P99)
	}
	if !strings.Contains(RenderTail(rows), "p99") {
		t.Error("render missing header")
	}
}
