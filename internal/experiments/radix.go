package experiments

import (
	"fmt"
	"strings"

	"damq/internal/arbiter"
	"damq/internal/buffer"
	"damq/internal/netsim"
	"damq/internal/parallel"
	"damq/internal/sw"
)

// RadixRow compares FIFO and DAMQ saturation at one switch radix. The
// head-of-line ceiling worsens with radix (Karol: 0.75 at n=2, 0.655 at
// n=4, toward 0.586), while a multi-queue buffer keeps every output
// servable — so the DAMQ's advantage should grow with the radix. The
// 64-input network needs 6/3/2 stages at radix 2/4/8; the ratio column is
// the comparable quantity across rows.
type RadixRow struct {
	Radix   int
	Stages  int
	FIFOSat float64
	DAMQSat float64
	Ratio   float64
}

// RadixSweep measures saturation throughput for FIFO vs DAMQ Omega
// networks of 64 inputs at radix 2, 4 and 8, one slot per output port at
// every radix (capacity = radix) so per-port storage scales identically.
func RadixSweep(sc Scale) ([]RadixRow, error) {
	radixes := []int{2, 4, 8}
	kinds := []buffer.Kind{buffer.FIFO, buffer.DAMQ}
	// Radix is a netsim.Config field runSpec cannot express, so this sweep
	// fans out through parallel.Map directly.
	type satResult struct {
		stages float64
		thr    float64
	}
	results, err := parallel.Map(len(radixes)*len(kinds), sc.Workers, func(i int) (satResult, error) {
		sim, err := netsim.New(netsim.Config{
			Radix:         radixes[i/len(kinds)],
			Inputs:        64,
			BufferKind:    kinds[i%len(kinds)],
			Capacity:      radixes[i/len(kinds)],
			Policy:        arbiter.Smart,
			Protocol:      sw.Blocking,
			Traffic:       netsim.TrafficSpec{Kind: netsim.Uniform, Load: 1.0},
			WarmupCycles:  sc.Warmup,
			MeasureCycles: sc.Measure,
			Seed:          sc.Seed,
		})
		if err != nil {
			return satResult{}, err
		}
		res := sim.Run()
		return satResult{stages: float64(sim.Topology().Stages()), thr: res.Throughput()}, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []RadixRow
	for ri, radix := range radixes {
		fifo, damq := results[ri*len(kinds)], results[ri*len(kinds)+1]
		rows = append(rows, RadixRow{
			Radix:   radix,
			Stages:  int(fifo.stages),
			FIFOSat: fifo.thr,
			DAMQSat: damq.thr,
			Ratio:   damq.thr / fifo.thr,
		})
	}
	return rows, nil
}

// RenderRadix formats the radix sweep.
func RenderRadix(rows []RadixRow) string {
	var b strings.Builder
	b.WriteString("Radix sweep: saturation throughput, 64-input Omega, capacity = radix slots\n")
	fmt.Fprintf(&b, "%-6s %-7s %10s %10s %10s\n", "radix", "stages", "FIFO sat", "DAMQ sat", "DAMQ/FIFO")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %-7d %10.3f %10.3f %10.2f\n",
			r.Radix, r.Stages, r.FIFOSat, r.DAMQSat, r.Ratio)
	}
	b.WriteString("Head-of-line blocking worsens with radix; per-destination queueing does\n")
	b.WriteString("not — the DAMQ's margin grows with switch size.\n")
	return b.String()
}
