package experiments

import (
	"fmt"
	"strings"

	"damq/internal/arbiter"
	"damq/internal/buffer"
	"damq/internal/netsim"
	"damq/internal/parallel"
	"damq/internal/stats"
	"damq/internal/sw"
)

// ---------------------------------------------------------------------------
// "1988 vs 2026": the paper's DAMQ against modern shared-buffer admission
// policies, on the same Omega network and load grid as Figure 3.
//
// The 1988 designs split storage across ports and admit whenever a slot is
// free (complete sharing inside one port). The decades since added
// admission control on top of sharing: dynamic thresholds (DT), per-class
// reservations with geometric spill (FB), and delay-driven shrinking
// (BSHARE) — plus the option of pooling one storage across all of a
// switch's inputs. This experiment reruns Figure 3 over that design space.

// ModernVariant names one sharing configuration of the 1988-vs-2026 sweep:
// a buffer kind, whether the switch's inputs pool their storage, and the
// policy knobs.
type ModernVariant struct {
	Name       string
	Kind       buffer.Kind
	SharedPool bool
	Sharing    buffer.Sharing
}

// ModernVariants is the default comparison set: DAMQ as the 1988 baseline,
// each 2026 policy with per-port storage at the same total capacity, and
// the two strongest policies again with one pool spanning the switch.
func ModernVariants() []ModernVariant {
	return []ModernVariant{
		{Name: "damq-1988", Kind: buffer.DAMQ},
		{Name: "dt", Kind: buffer.DT},
		{Name: "fb", Kind: buffer.FB},
		{Name: "bshare", Kind: buffer.BSHARE},
		{Name: "dt-pool", Kind: buffer.DT, SharedPool: true},
		{Name: "bshare-pool", Kind: buffer.BSHARE, SharedPool: true},
	}
}

// ModernLoads is the default offered-load sweep — Figure 3's grid.
var ModernLoads = Figure3Loads

// Modern sweeps offered load for every variant and returns one
// latency/throughput series per variant: Figure 3's grid and axes, but
// under the discarding protocol (shared-pool admission is not
// port-independent, which blocking's probe contract requires — see
// netsim.Config.Validate — and one protocol keeps the variants
// comparable), with smart arbitration and uniform traffic. nil variants
// and loads select the defaults. Every (variant, load) point is an
// independent, independently seeded simulation fanned out over
// sc.Workers; results are byte-identical at any worker count.
func Modern(variants []ModernVariant, capacity int, loads []float64, sc Scale) ([]stats.Series, error) {
	if variants == nil {
		variants = ModernVariants()
	}
	if loads == nil {
		loads = ModernLoads
	}
	type point struct {
		v    ModernVariant
		load float64
	}
	var pts []point
	for _, v := range variants {
		for _, load := range loads {
			pts = append(pts, point{v, load})
		}
	}
	results, _, err := parallel.MapCtx(sc.ctx(), len(pts), sc.Workers, func(i int) (*netsim.Result, error) {
		p := pts[i]
		sim, err := netsim.New(netsim.Config{
			BufferKind:    p.v.Kind,
			Capacity:      capacity,
			Policy:        arbiter.Smart,
			Protocol:      sw.Discarding,
			Traffic:       uniform(p.load),
			WarmupCycles:  sc.Warmup,
			MeasureCycles: sc.Measure,
			Seed:          sc.Seed,
			SharedPool:    p.v.SharedPool,
			Sharing:       p.v.Sharing,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.v.Name, err)
		}
		if sc.Ctx != nil {
			return sim.RunCtx(sc.Ctx)
		}
		return sim.Run(), nil
	})
	if err != nil {
		return nil, err
	}
	var out []stats.Series
	for vi, v := range variants {
		series := stats.Series{Name: fmt.Sprintf("%s/%d", v.Name, capacity)}
		for li, load := range loads {
			r := results[vi*len(loads)+li]
			series.Add(stats.Point{
				Offered:    load,
				Throughput: r.Throughput(),
				Latency:    r.LatencyFromBorn.Mean(),
			})
		}
		out = append(out, series)
	}
	return out, nil
}

// RenderModern formats the 1988-vs-2026 sweep: a summary table (saturation
// throughput plus latency at a light and a heavy load) and the full
// per-variant curves with the Figure-3 ASCII plot.
func RenderModern(series []stats.Series) string {
	var b strings.Builder
	b.WriteString("1988 vs 2026: sharing policies on the discarding Omega network, uniform traffic\n\n")
	fmt.Fprintf(&b, "%-16s %8s %12s %12s\n", "variant", "sat thr", "lat @ 0.25", "lat @ 0.50")
	for _, s := range series {
		fmt.Fprintf(&b, "%-16s %8.3f %12.1f %12.1f\n",
			s.Name, s.SaturationThroughput(), latencyAt(s, 0.25), latencyAt(s, 0.50))
	}
	for _, s := range series {
		fmt.Fprintf(&b, "\n%s\n", s.Name)
		fmt.Fprintf(&b, "%10s %12s %12s\n", "offered", "throughput", "latency")
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%10.2f %12.3f %12.1f\n", p.Offered, p.Throughput, p.Latency)
		}
	}
	b.WriteString("\n" + AsciiPlot(series, 64, 20, 300))
	return b.String()
}

// latencyAt picks the series' latency at the offered load closest to want.
func latencyAt(s stats.Series, want float64) float64 {
	best, dist := 0.0, -1.0
	for _, p := range s.Points {
		d := p.Offered - want
		if d < 0 {
			d = -d
		}
		if dist < 0 || d < dist {
			best, dist = p.Latency, d
		}
	}
	return best
}
