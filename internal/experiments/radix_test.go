package experiments

import (
	"strings"
	"testing"
)

func TestRadixSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("six saturation runs")
	}
	sc := tiny
	sc.Warmup = 800
	rows, err := RadixSweep(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	wantStages := map[int]int{2: 6, 4: 3, 8: 2}
	for _, r := range rows {
		if r.Stages != wantStages[r.Radix] {
			t.Errorf("radix %d: %d stages, want %d", r.Radix, r.Stages, wantStages[r.Radix])
		}
		if r.Ratio <= 1 {
			t.Errorf("radix %d: DAMQ/FIFO ratio %v not > 1", r.Radix, r.Ratio)
		}
	}
	// The advantage grows with radix (allowing simulation slack at the
	// small end).
	if rows[2].Ratio < rows[0].Ratio-0.05 {
		t.Errorf("ratio did not grow with radix: %v -> %v", rows[0].Ratio, rows[2].Ratio)
	}
	if !strings.Contains(RenderRadix(rows), "DAMQ/FIFO") {
		t.Error("render missing header")
	}
}
