package experiments

import (
	"context"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"damq/internal/arbiter"
	"damq/internal/buffer"
	"damq/internal/netsim"
	"damq/internal/sw"
)

// Grid describes a custom parameter sweep over the network simulator —
// the "run your own experiment" surface a downstream user of this
// repository needs when their question is not one of the paper's tables.
type Grid struct {
	Kinds      []buffer.Kind
	Loads      []float64
	Capacities []int
	Protocol   sw.Protocol
	Policy     arbiter.Policy
	Traffic    netsim.TrafficKind
	// HotFraction/HotDest apply when Traffic == netsim.HotSpot;
	// MeanBurst when Traffic == netsim.Bursty.
	HotFraction float64
	HotDest     int
	MeanBurst   float64
}

// GridPoint is one completed cell of the sweep.
type GridPoint struct {
	Kind       buffer.Kind `json:"kind"`
	Capacity   int         `json:"capacity"`
	Load       float64     `json:"load"`
	Throughput float64     `json:"throughput"`
	Latency    float64     `json:"latency"`
	LatencyP99 float64     `json:"latency_p99"`
	Discarded  float64     `json:"discard_fraction"`
	Backlog    float64     `json:"source_backlog"`
}

// Run executes every (kind, capacity, load) combination, fanning the
// valid cells through the worker pool. Invalid combinations (static
// buffers whose capacity is not divisible by the radix) are skipped
// rather than failing the sweep.
//
// When sc.Ctx is cancelled mid-sweep, Run returns the completed points
// (in spec order, incomplete cells omitted) together with ctx's error,
// so callers can flush partial output instead of discarding the work.
func (g Grid) Run(sc Scale) ([]GridPoint, error) {
	specs := g.specs()
	results, _, err := runAllPartial(specs, sc)
	if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		return nil, fmt.Errorf("grid sweep: %w", err)
	}
	out := make([]GridPoint, 0, len(specs))
	for i, s := range specs {
		r := results[i]
		if r == nil {
			continue // cancelled before this cell completed
		}
		out = append(out, GridPoint{
			Kind:       s.kind,
			Capacity:   s.capacity,
			Load:       s.traffic.Load,
			Throughput: r.Throughput(),
			Latency:    r.LatencyFromBorn.Mean(),
			LatencyP99: r.LatencyP(0.99),
			Discarded:  r.DiscardFraction(),
			Backlog:    r.SourceBacklog.Mean(),
		})
	}
	// err is nil or the cancellation cause; either way out holds every
	// completed point.
	return out, err
}

// specs enumerates the sweep's valid cells in output order.
func (g Grid) specs() []runSpec {
	var specs []runSpec
	for _, kind := range g.Kinds {
		for _, cap := range g.Capacities {
			if (kind == buffer.SAMQ || kind == buffer.SAFC) && cap%4 != 0 {
				continue
			}
			for _, load := range g.Loads {
				specs = append(specs, runSpec{kind, g.Protocol, g.Policy, cap, netsim.TrafficSpec{
					Kind:        g.Traffic,
					Load:        load,
					HotFraction: g.HotFraction,
					HotDest:     g.HotDest,
					MeanBurst:   g.MeanBurst,
				}})
			}
		}
	}
	return specs
}

// Points reports how many cells the sweep will run — the denominator of
// an "interrupted at N/M" report.
func (g Grid) Points() int { return len(g.specs()) }

// WriteCSV emits the sweep results with a header row.
func WriteCSV(w io.Writer, points []GridPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"kind", "capacity", "load", "throughput", "latency_mean", "latency_p99",
		"discard_fraction", "source_backlog",
	}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
	for _, p := range points {
		rec := []string{
			p.Kind.String(),
			strconv.Itoa(p.Capacity),
			f(p.Load), f(p.Throughput), f(p.Latency), f(p.LatencyP99),
			f(p.Discarded), f(p.Backlog),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
