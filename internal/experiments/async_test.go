package experiments

import (
	"strings"
	"testing"

	"damq/internal/buffer"
)

func TestAsyncExperiment(t *testing.T) {
	rows, err := Async(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var fifo, damq AsyncRow
	for _, r := range rows {
		switch r.Kind {
		case buffer.FIFO:
			fifo = r
		case buffer.DAMQ:
			damq = r
		}
	}
	if damq.FixedSatUtl <= fifo.FixedSatUtl {
		t.Errorf("async fixed: DAMQ %v !> FIFO %v", damq.FixedSatUtl, fifo.FixedSatUtl)
	}
	if damq.VarSatUtl <= fifo.VarSatUtl {
		t.Errorf("async varlen: DAMQ %v !> FIFO %v", damq.VarSatUtl, fifo.VarSatUtl)
	}
	if !strings.Contains(RenderAsync(rows), "asynchronous") {
		t.Error("render missing content")
	}
}
