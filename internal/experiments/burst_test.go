package experiments

import (
	"strings"
	"testing"

	"damq/internal/buffer"
)

func TestAblationBurstiness(t *testing.T) {
	rows, err := AblationBurstiness(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	var damq, fifo BurstRow
	for _, r := range rows {
		switch r.Kind {
		case buffer.DAMQ:
			damq = r
		case buffer.FIFO:
			fifo = r
		}
		// Bursty traffic can only hurt (or match) each design.
		if r.BurstSat > r.UniformSat+0.03 {
			t.Errorf("%v: bursty saturation %v above uniform %v", r.Kind, r.BurstSat, r.UniformSat)
		}
	}
	// DAMQ must retain its lead under bursty traffic.
	if damq.BurstSat <= fifo.BurstSat {
		t.Errorf("bursty: DAMQ %v !> FIFO %v", damq.BurstSat, fifo.BurstSat)
	}
	if !strings.Contains(RenderBurstiness(rows), "messages") {
		t.Error("render missing content")
	}
}
