package experiments

import (
	"fmt"
	"strings"

	"damq/internal/netsim"
	"damq/internal/obs"
	"damq/internal/stats"
)

// InstrumentedRun runs one observed network simulation and snapshots its
// metrics. interval > 0 additionally records the cumulative time series
// every interval measured cycles, which CurveFromIntervals can difference
// into a Figure-3-style curve — one run instead of a whole load sweep.
// The returned Result is bit-identical to an unobserved run of cfg.
func InstrumentedRun(cfg netsim.Config, interval int64) (*netsim.Result, *obs.Snapshot, error) {
	sim, err := netsim.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	o := obs.NewObserver()
	o.SetInterval(interval)
	sim.SetObserver(o)
	res := sim.Run()
	return res, o.Snapshot(), nil
}

// CurveFromIntervals differences adjacent cumulative time-series records
// into per-interval operating points: offered load and throughput as
// packets per input per cycle, latency as the interval's mean
// injection-to-delivery clocks. During the ramp toward saturation each
// interval sits at a different effective load, so a single
// over-subscribed run traces out the latency-vs-throughput shape of
// Figure 3. inputs is the network width the rates are normalized by.
func CurveFromIntervals(name string, inputs int, recs []obs.IntervalRecord) stats.Series {
	series := stats.Series{Name: name}
	if inputs <= 0 {
		return series
	}
	for i := 1; i < len(recs); i++ {
		prev, cur := recs[i-1], recs[i]
		cycles := cur.Cycle - prev.Cycle
		if cycles <= 0 {
			continue
		}
		norm := float64(cycles) * float64(inputs)
		p := stats.Point{
			Offered:    float64(cur.Generated-prev.Generated) / norm,
			Throughput: float64(cur.Delivered-prev.Delivered) / norm,
		}
		if dc := cur.LatencyCount - prev.LatencyCount; dc > 0 {
			p.Latency = float64(cur.LatencySum-prev.LatencySum) / float64(dc)
		}
		if dg := cur.Generated - prev.Generated; dg > 0 {
			p.Discarded = float64(cur.Discarded-prev.Discarded) / float64(dg)
		}
		series.Add(p)
	}
	return series
}

// RenderIntervals formats a recorded time series as a text table, the
// cmd/experiments -metrics companion output.
func RenderIntervals(recs []obs.IntervalRecord) string {
	var b strings.Builder
	b.WriteString("  cycle   generated   delivered   discarded   in-flight   backlog   latency\n")
	for i := 1; i < len(recs); i++ {
		prev, cur := recs[i-1], recs[i]
		lat := 0.0
		if dc := cur.LatencyCount - prev.LatencyCount; dc > 0 {
			lat = float64(cur.LatencySum-prev.LatencySum) / float64(dc)
		}
		fmt.Fprintf(&b, "%7d %11d %11d %11d %11d %9d %9.1f\n",
			cur.Cycle,
			cur.Generated-prev.Generated,
			cur.Delivered-prev.Delivered,
			cur.Discarded-prev.Discarded,
			cur.InFlight,
			cur.Backlog,
			lat)
	}
	return b.String()
}
