package experiments

import (
	"fmt"
	"strings"

	"damq/internal/arbiter"
	"damq/internal/buffer"
	"damq/internal/sw"
)

// TreeSatRow shows where packets pile up under saturating hot-spot
// traffic: mean buffered packets per switch, per stage. The saturation
// tree is rooted at the single last-stage switch feeding the hot module
// (1 of 16 switches), grows to 4 of 16 in the middle stage, and reaches
// all 16 first-stage switches — so the per-switch average rises toward
// the sources. This is the mechanism ("tree saturation", Pfister &
// Norton) behind Table 6's universal ~0.24 ceiling.
type TreeSatRow struct {
	Kind      buffer.Kind
	PerStage  []float64 // mean packets per switch per stage, hot spot @ 1.0
	UniformS0 float64   // stage-0 reference under uniform traffic @ 0.24
}

// TreeSaturation measures the gradient for every buffer kind.
func TreeSaturation(sc Scale) ([]TreeSatRow, error) {
	var specs []runSpec
	for _, kind := range KindOrder {
		specs = append(specs,
			runSpec{kind, sw.Blocking, arbiter.Smart, 4, hotspot(1.0)},
			runSpec{kind, sw.Blocking, arbiter.Smart, 4, uniform(0.24)},
		)
	}
	results, err := runAll(specs, sc)
	if err != nil {
		return nil, err
	}
	var rows []TreeSatRow
	for i, kind := range KindOrder {
		var row TreeSatRow
		row.Kind = kind
		for _, s := range results[2*i].StageOccupancy {
			row.PerStage = append(row.PerStage, s.Mean())
		}
		if u := results[2*i+1]; len(u.StageOccupancy) > 0 {
			row.UniformS0 = u.StageOccupancy[0].Mean()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTreeSat formats the gradient table.
func RenderTreeSat(rows []TreeSatRow) string {
	var b strings.Builder
	b.WriteString("Tree saturation: mean buffered packets/switch per stage,\n")
	b.WriteString("5% hot-spot traffic at offered 1.0 (uniform @0.24 stage-0 for reference)\n")
	fmt.Fprintf(&b, "%-6s", "Buffer")
	if len(rows) > 0 {
		for st := range rows[0].PerStage {
			fmt.Fprintf(&b, " %9s", fmt.Sprintf("stage %d", st))
		}
	}
	fmt.Fprintf(&b, " %12s\n", "uniform s0")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s", r.Kind)
		for _, v := range r.PerStage {
			fmt.Fprintf(&b, " %9.2f", v)
		}
		fmt.Fprintf(&b, " %12.2f\n", r.UniformS0)
	}
	b.WriteString("Occupancy rises toward the sources: the congestion tree (1, 4, then all\n")
	b.WriteString("16 switches per stage) backs up from the hot module to every sender.\n")
	return b.String()
}
