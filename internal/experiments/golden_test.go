package experiments

import (
	"os"
	"testing"
)

// TestTable2Golden pins the full exact Table 2 output against a recorded
// golden file. The Markov solution is deterministic (no sampling), so any
// diff means the model, the arbitration rule, or the solver changed —
// exactly the regressions this repo must catch. Regenerate with:
//
//	go run ./cmd/markov > internal/experiments/testdata/table2.golden
//
// after convincing yourself the change is intentional.
func TestTable2Golden(t *testing.T) {
	if testing.Short() {
		t.Skip("solves 128 chains")
	}
	want, err := os.ReadFile("testdata/table2.golden")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Table2(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Render()
	if got != string(want) {
		t.Errorf("Table 2 output changed.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
