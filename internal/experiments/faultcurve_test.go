package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"

	"damq/internal/buffer"
)

func TestFaultCurve(t *testing.T) {
	sc := Scale{Warmup: 200, Measure: 1500, Seed: 5, Workers: 2}
	rows, err := FaultCurve(nil, []float64{0, 5e-3}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || len(rows[0].Points) != 2 {
		t.Fatalf("shape: %d rows", len(rows))
	}
	for _, row := range rows {
		clean, faulted := row.Points[0], row.Points[1]
		if clean.Rate != 0 || clean.FaultedPct != 0 || clean.Quarantined != 0 {
			t.Fatalf("%v: rate-0 baseline shows faults: %+v", row.Kind, clean)
		}
		if faulted.FaultedPct == 0 {
			t.Fatalf("%v: no faulted traffic at link rate 5e-3", row.Kind)
		}
		if faulted.Throughput >= clean.Throughput {
			t.Fatalf("%v: throughput did not degrade under faults (%.3f >= %.3f)",
				row.Kind, faulted.Throughput, clean.Throughput)
		}
	}
	// DAMQ has a slot pool: the riding slot faults must quarantine some.
	for _, row := range rows {
		if row.Kind == buffer.DAMQ && row.Points[1].Quarantined == 0 {
			t.Fatal("DAMQ point quarantined no slots at slot rate 5e-4")
		}
	}

	text := RenderFaultCurve(rows)
	if !strings.Contains(text, "DAMQ") || !strings.Contains(text, "faulted %") {
		t.Fatalf("render malformed:\n%s", text)
	}

	// The curve is deterministic: same scale, same rows.
	again, err := FaultCurve(nil, []float64{0, 5e-3}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if RenderFaultCurve(again) != text {
		t.Fatal("fault curve not reproducible")
	}
}

// TestScaleCtxCancelsSweep: a cancelled scale context aborts a sweep with
// context.Canceled; Grid.Run flushes the completed points instead of
// discarding them.
func TestScaleCtxCancelsSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sc := Scale{Warmup: 100, Measure: 500, Seed: 1, Workers: 1, Ctx: ctx}

	if _, err := Table3(sc); !errors.Is(err, context.Canceled) {
		t.Fatalf("Table3 err = %v, want context.Canceled", err)
	}

	g := Grid{
		Kinds: []buffer.Kind{buffer.DAMQ}, Loads: []float64{0.3, 0.5},
		Capacities: []int{4},
	}
	points, err := g.Run(sc)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Grid.Run err = %v, want context.Canceled", err)
	}
	if len(points) != 0 {
		t.Fatalf("pre-cancelled grid completed %d points", len(points))
	}

	// Live context: identical output to a no-context run.
	sc.Ctx = context.Background()
	live, err := g.Run(sc)
	if err != nil || len(live) != 2 {
		t.Fatalf("live grid: %v (%d points)", err, len(live))
	}
	sc.Ctx = nil
	plain, err := g.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if live[i] != plain[i] {
			t.Fatalf("point %d differs with live ctx: %+v vs %+v", i, live[i], plain[i])
		}
	}
}
