package experiments

import (
	"testing"

	"damq/internal/buffer"
)

// TestParallelDeterminism pins the parallel engine's core contract: the
// rendered output of an experiment is byte-identical whether its points
// run serially or fanned out across 8 workers. Every simulation point is
// independently seeded and owns all of its state, and the pool returns
// results in submission order, so worker count must never leak into the
// numbers. A diff here means a point read shared mutable state (a shared
// rng, a shared scratch buffer) — exactly the corruption this test exists
// to catch before it silently skews a recorded table.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two quick-scale experiment sets")
	}
	render := func(workers int) string {
		sc := tiny
		sc.Workers = workers
		t4, err := Table4(sc)
		if err != nil {
			t.Fatalf("workers=%d: table4: %v", workers, err)
		}
		fig, err := Figure3([]buffer.Kind{buffer.FIFO, buffer.DAMQ}, 4,
			[]float64{0.2, 0.5, 0.8}, sc)
		if err != nil {
			t.Fatalf("workers=%d: figure3: %v", workers, err)
		}
		return RenderLatencyRows("Table 4", t4) + RenderFigure3(fig)
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Errorf("output differs between workers=1 and workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}
