package experiments

import (
	"encoding/json"
	"fmt"
)

// Report is the machine-readable form of the full evaluation, for
// downstream tooling (plotting, regression dashboards). Fields are
// omitted when their experiment was not run.
type Report struct {
	Scale   Scale            `json:"scale"`
	Table1  *Table1Result    `json:"table1,omitempty"`
	Table2  *Table2Result    `json:"table2,omitempty"`
	Table3  *Table3Result    `json:"table3,omitempty"`
	Table4  []LatencyRow     `json:"table4,omitempty"`
	Table5  []LatencyRow     `json:"table5,omitempty"`
	Table6  []Table6Row      `json:"table6,omitempty"`
	VarLen  []VarLenRow      `json:"varlen,omitempty"`
	Async   []AsyncRow       `json:"async,omitempty"`
	TreeSat []TreeSatRow     `json:"treesat,omitempty"`
	Ablate  *AblationSection `json:"ablations,omitempty"`
}

// AblationSection groups the ablation results.
type AblationSection struct {
	Connectivity []ConnectivityRow `json:"connectivity,omitempty"`
	Arbitration  []ArbitrationRow  `json:"arbitration,omitempty"`
	Burstiness   []BurstRow        `json:"burstiness,omitempty"`
}

// RunAll executes the complete evaluation at the given scale and returns
// a Report. includeMarkov toggles Table 2 (the slowest exact piece).
func RunAll(sc Scale, includeMarkov bool) (*Report, error) {
	rep := &Report{Scale: sc}
	var err error
	if rep.Table1, err = Table1(); err != nil {
		return nil, fmt.Errorf("table1: %w", err)
	}
	if includeMarkov {
		if rep.Table2, err = Table2(nil, sc.Workers); err != nil {
			return nil, fmt.Errorf("table2: %w", err)
		}
	}
	if rep.Table3, err = Table3(sc); err != nil {
		return nil, fmt.Errorf("table3: %w", err)
	}
	if rep.Table4, err = Table4(sc); err != nil {
		return nil, fmt.Errorf("table4: %w", err)
	}
	if rep.Table5, err = Table5(sc); err != nil {
		return nil, fmt.Errorf("table5: %w", err)
	}
	if rep.Table6, err = Table6(sc); err != nil {
		return nil, fmt.Errorf("table6: %w", err)
	}
	if rep.VarLen, err = VarLen(sc); err != nil {
		return nil, fmt.Errorf("varlen: %w", err)
	}
	if rep.Async, err = Async(sc); err != nil {
		return nil, fmt.Errorf("async: %w", err)
	}
	if rep.TreeSat, err = TreeSaturation(sc); err != nil {
		return nil, fmt.Errorf("treesat: %w", err)
	}
	rep.Ablate = &AblationSection{}
	if rep.Ablate.Connectivity, err = AblationConnectivity(sc); err != nil {
		return nil, fmt.Errorf("ablation connectivity: %w", err)
	}
	if rep.Ablate.Arbitration, err = AblationArbitration(sc); err != nil {
		return nil, fmt.Errorf("ablation arbitration: %w", err)
	}
	if rep.Ablate.Burstiness, err = AblationBurstiness(sc); err != nil {
		return nil, fmt.Errorf("ablation burstiness: %w", err)
	}
	return rep, nil
}

// JSON marshals the report with indentation.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
