package experiments

import (
	"strings"
	"testing"

	"damq/internal/buffer"
)

func TestAblationConnectivity(t *testing.T) {
	rows, err := AblationConnectivity(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(kind buffer.Kind) ConnectivityRow {
		for _, r := range rows {
			if r.Kind == kind {
				return r
			}
		}
		t.Fatalf("missing %v", kind)
		return ConnectivityRow{}
	}
	damq, dafc := get(buffer.DAMQ), get(buffer.DAFC)
	samq, safc := get(buffer.SAMQ), get(buffer.SAFC)
	// The headline of this ablation: connectivity barely moves the needle
	// once allocation is dynamic. (The sign can go either way — the wider
	// action set changes what longest-queue arbitration picks — but the
	// gap must be small relative to the allocation gap below.)
	gap := abs(dafc.PDiscard - damq.PDiscard)
	if gap > 0.3*damq.PDiscard {
		t.Errorf("DAFC-DAMQ gap %v too large relative to DAMQ %v", gap, damq.PDiscard)
	}
	// The paper's structural claim: the connectivity gap under dynamic
	// allocation is smaller than the allocation gap itself — DAMQ alone
	// already beats fully connected static allocation.
	if damq.PDiscard >= safc.PDiscard {
		t.Errorf("DAMQ %v !< SAFC %v", damq.PDiscard, safc.PDiscard)
	}
	if samq.PDiscard < safc.PDiscard-1e-9 {
		t.Errorf("SAMQ beat SAFC in exact analysis: %v vs %v", samq.PDiscard, safc.PDiscard)
	}
	out := RenderConnectivity(rows)
	if !strings.Contains(out, "DAFC") {
		t.Error("render missing DAFC")
	}
}

func TestAblationArbitration(t *testing.T) {
	rows, err := AblationArbitration(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Table 3's observation: the policies are close (within 15%).
		if rel := abs(r.SmartSatThr-r.DumbSatThr) / r.SmartSatThr; rel > 0.15 {
			t.Errorf("%v: smart %v vs dumb %v differ by %.0f%%",
				r.Kind, r.SmartSatThr, r.DumbSatThr, rel*100)
		}
	}
	if !strings.Contains(RenderArbitration(rows), "smart") {
		t.Error("render missing content")
	}
}

func TestAblationSolver(t *testing.T) {
	rows, err := AblationSolver(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MaxDiff > 1e-6 {
			t.Errorf("%s: solvers disagree by %v", r.Name, r.MaxDiff)
		}
		if r.MixingTime <= 0 || r.MixingTime > 500 {
			t.Errorf("%s: implausible mixing time %d", r.Name, r.MixingTime)
		}
		if r.States <= 0 {
			t.Errorf("%s: no states", r.Name)
		}
	}
	if !strings.Contains(RenderSolver(rows), "gauss-seidel") {
		t.Error("render missing content")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
