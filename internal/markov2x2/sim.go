package markov2x2

import (
	"damq/internal/buffer"
	"damq/internal/rng"
)

// SimResult summarizes a Monte-Carlo run of the same process the Markov
// model describes. It exists to cross-validate the exact analysis: the
// simulation samples the identical departure-action distribution and
// arrival process, so for long runs its discard fraction must converge to
// the Markov answer.
type SimResult struct {
	Cycles     int64
	Arrivals   int64
	Discards   int64
	Departures int64
}

// PDiscard is the empirical discard probability.
func (r SimResult) PDiscard() float64 {
	if r.Arrivals == 0 {
		return 0
	}
	return float64(r.Discards) / float64(r.Arrivals)
}

// Simulate runs the 2×2 switch process for the given number of cycles.
func Simulate(kind buffer.Kind, slots int, load float64, cycles int64, src *rng.Source) (SimResult, error) {
	m, err := New(kind, slots, load)
	if err != nil {
		return SimResult{}, err
	}
	ps := [2]port{m.emptyPort(), m.emptyPort()}
	var res SimResult
	for c := int64(0); c < cycles; c++ {
		// Departures: sample uniformly among the arbitration's actions.
		actions := m.departureActions(ps)
		act := actions[src.Intn(len(actions))]
		ps = m.applyAction(ps, act)
		res.Departures += int64(len(act))
		// Arrivals.
		for pi := 0; pi < 2; pi++ {
			if !src.Bool(load) {
				continue
			}
			res.Arrivals++
			dest := src.Intn(2)
			if m.canAccept(ps[pi], dest) {
				ps[pi] = m.push(ps[pi], dest)
			} else {
				res.Discards++
			}
		}
	}
	res.Cycles = cycles
	return res, nil
}
