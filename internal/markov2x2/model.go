// Package markov2x2 defines exact Markov models of the paper's 2×2
// discarding switches, one per buffer organization, for reproduction of
// Table 2 ("Probability for Discarding - Markov Analysis").
//
// Modeling assumptions follow Section 4.1 of the paper:
//
//   - fixed-length packets (one slot each) and a "long clock": a packet
//     completely arrives or completely departs within one cycle;
//   - each input port independently receives a packet with probability
//     equal to the traffic level, addressed to either output with equal
//     probability;
//   - arbitration transmits two packets whenever any assignment of
//     buffers to output ports allows it, otherwise one packet from the
//     longest queue; remaining ties are broken uniformly at random (the
//     paper does not specify a tie-break; a fair coin keeps the chain
//     symmetric between ports);
//   - a packet arriving at a buffer that cannot store it is discarded;
//   - within a cycle, departures precede arrivals, so a slot freed this
//     cycle can hold a packet arriving this cycle.
//
// Buffer state per input port:
//
//   - FIFO: the ordered sequence of destination bits (queue order
//     matters: only the head is transmittable);
//   - DAMQ: per-output packet counts n0,n1 with n0+n1 ≤ slots (order
//     within a queue is irrelevant for fixed-size packets);
//   - SAMQ/SAFC: per-output counts bounded by slots/2 each (static
//     partition). SAFC can transmit from both of a port's queues in one
//     cycle (one RAM per queue); SAMQ and DAMQ transmit at most one
//     packet per port per cycle (single read port).
package markov2x2

import (
	"fmt"

	"damq/internal/buffer"
	"damq/internal/markov"
)

// Model is a markov.Model of one 2×2 discarding switch.
type Model struct {
	kind  buffer.Kind
	slots int
	load  float64
}

// Reward dimensions produced by the model.
const (
	RewardArrivals = iota // packets offered to the switch
	RewardDiscards        // packets discarded at full buffers
	RewardDepartures
	numRewards
)

// New validates parameters and constructs a model. SAMQ and SAFC need an
// even slot count ("they can only have an even number of slots").
func New(kind buffer.Kind, slots int, load float64) (*Model, error) {
	if slots <= 0 || slots > 12 {
		return nil, fmt.Errorf("markov2x2: slots must be in 1..12, got %d", slots)
	}
	if load < 0 || load > 1 {
		return nil, fmt.Errorf("markov2x2: load must be in [0,1], got %v", load)
	}
	if (kind == buffer.SAMQ || kind == buffer.SAFC) && slots%2 != 0 {
		return nil, fmt.Errorf("markov2x2: %v needs an even slot count, got %d", kind, slots)
	}
	switch kind {
	case buffer.FIFO, buffer.SAMQ, buffer.SAFC, buffer.DAMQ, buffer.DAFC:
	default:
		return nil, fmt.Errorf("markov2x2: unknown buffer kind %v", kind)
	}
	return &Model{kind: kind, slots: slots, load: load}, nil
}

// NumRewards implements markov.Model.
func (m *Model) NumRewards() int { return numRewards }

// Initial implements markov.Model: both ports empty.
func (m *Model) Initial() uint64 {
	return m.encode([2]port{m.emptyPort(), m.emptyPort()})
}

// port is the decoded state of one input port's buffer.
type port struct {
	// FIFO representation: qlen destinations, bit i of qbits is the
	// destination of the i-th oldest packet (bit 0 = head).
	qlen  int
	qbits uint16
	// Count representation (DAMQ/SAMQ/SAFC).
	n [2]int
}

func (m *Model) emptyPort() port { return port{} }

// used returns occupied slots.
func (m *Model) used(p port) int {
	if m.kind == buffer.FIFO {
		return p.qlen
	}
	return p.n[0] + p.n[1]
}

// servable reports whether the port could send a packet to out this cycle.
func (m *Model) servable(p port, out int) bool {
	if m.kind == buffer.FIFO {
		return p.qlen > 0 && int(p.qbits&1) == out
	}
	return p.n[out] > 0
}

// queueLen is the "longest queue" metric for arbitration: for a FIFO the
// whole buffer is one queue; for multi-queue buffers it is the per-output
// queue length.
func (m *Model) queueLen(p port, out int) int {
	if m.kind == buffer.FIFO {
		if m.servable(p, out) {
			return p.qlen
		}
		return 0
	}
	return p.n[out]
}

// pop removes the packet serving out. Callers must check servable first.
func (m *Model) pop(p port, out int) port {
	if m.kind == buffer.FIFO {
		p.qbits >>= 1
		p.qlen--
		return p
	}
	p.n[out]--
	return p
}

// canAccept reports whether a packet destined for dest fits.
func (m *Model) canAccept(p port, dest int) bool {
	switch m.kind {
	case buffer.FIFO, buffer.DAMQ, buffer.DAFC:
		return m.used(p) < m.slots
	default: // SAMQ, SAFC: static partition
		return p.n[dest] < m.slots/2
	}
}

// push stores a packet destined for dest. Callers must check canAccept.
func (m *Model) push(p port, dest int) port {
	if m.kind == buffer.FIFO {
		p.qbits |= uint16(dest) << p.qlen
		p.qlen++
		return p
	}
	p.n[dest]++
	return p
}

// maxReads is the per-port transmit limit per cycle.
func (m *Model) maxReads() int {
	if m.kind == buffer.SAFC || m.kind == buffer.DAFC {
		return 2
	}
	return 1
}

// encode packs both port states into a uint64 key (16 bits per port).
func (m *Model) encode(ps [2]port) uint64 {
	var k uint64
	for i, p := range ps {
		var v uint64
		if m.kind == buffer.FIFO {
			// Marker encoding: 1 << qlen flags the length, low bits hold
			// the destinations. qlen <= 12 fits 13 bits.
			v = uint64(1)<<p.qlen | uint64(p.qbits)
		} else {
			v = uint64(p.n[0]) | uint64(p.n[1])<<8
		}
		k |= v << (16 * i)
	}
	return k
}

// decode unpacks a state key.
func (m *Model) decode(k uint64) [2]port {
	var ps [2]port
	for i := 0; i < 2; i++ {
		v := (k >> (16 * i)) & 0xffff
		if m.kind == buffer.FIFO {
			// Find the marker bit.
			qlen := 15
			for ; qlen > 0; qlen-- {
				if v&(1<<qlen) != 0 {
					break
				}
			}
			ps[i] = port{qlen: qlen, qbits: uint16(v &^ (1 << qlen))}
		} else {
			ps[i] = port{n: [2]int{int(v & 0xff), int(v >> 8)}}
		}
	}
	return ps
}

// pair is one potential crossbar connection.
type pair struct{ port, out int }

// departureActions returns the set of equally likely departure actions
// under the paper's arbitration rule, given the current port states. Each
// action is a list of (port, out) connections, all actions returned have
// the same probability 1/len(actions).
func (m *Model) departureActions(ps [2]port) [][]pair {
	// Enumerate all candidate pairs.
	var cands []pair
	for pi := 0; pi < 2; pi++ {
		for out := 0; out < 2; out++ {
			if m.servable(ps[pi], out) {
				cands = append(cands, pair{pi, out})
			}
		}
	}
	// Enumerate valid subsets (at most 4 candidates -> at most 16 subsets).
	reads := m.maxReads()
	var best [][]pair
	bestSize := 0
	for mask := 0; mask < 1<<len(cands); mask++ {
		var act []pair
		outUsed := [2]bool{}
		portUsed := [2]int{}
		valid := true
		for ci := 0; ci < len(cands) && valid; ci++ {
			if mask&(1<<ci) == 0 {
				continue
			}
			c := cands[ci]
			if outUsed[c.out] || portUsed[c.port] >= reads {
				valid = false
				break
			}
			outUsed[c.out] = true
			portUsed[c.port]++
			act = append(act, c)
		}
		if !valid {
			continue
		}
		if len(act) > bestSize {
			bestSize = len(act)
			best = best[:0]
		}
		if len(act) == bestSize {
			best = append(best, act)
		}
	}
	if bestSize == 0 {
		return [][]pair{nil}
	}
	// Longest-queue rule: among maximum-cardinality actions keep those
	// serving the greatest total queue length (for a single departure this
	// is exactly "send a packet from the longest queue"; for double
	// departures it extends the same principle), remaining ties are
	// resolved by a fair coin.
	maxLen := -1
	for _, act := range best {
		if l := m.servedLen(ps, act); l > maxLen {
			maxLen = l
		}
	}
	var filtered [][]pair
	for _, act := range best {
		if m.servedLen(ps, act) == maxLen {
			filtered = append(filtered, act)
		}
	}
	return filtered
}

// servedLen is the total length of the queues an action serves.
func (m *Model) servedLen(ps [2]port, act []pair) int {
	total := 0
	for _, c := range act {
		total += m.queueLen(ps[c.port], c.out)
	}
	return total
}

// applyAction returns the port states after the departures in act.
func (m *Model) applyAction(ps [2]port, act []pair) [2]port {
	for _, c := range act {
		ps[c.port] = m.pop(ps[c.port], c.out)
	}
	return ps
}

// arrival describes one port's arrival event for a cycle.
type arrival struct {
	p    float64
	has  bool
	dest int
}

// arrivalEvents is the per-port arrival distribution.
func (m *Model) arrivalEvents() []arrival {
	return []arrival{
		{p: 1 - m.load, has: false},
		{p: m.load / 2, has: true, dest: 0},
		{p: m.load / 2, has: true, dest: 1},
	}
}

// Next implements markov.Model.
func (m *Model) Next(s uint64, dst []markov.Arc) []markov.Arc {
	ps := m.decode(s)
	actions := m.departureActions(ps)
	actP := 1.0 / float64(len(actions))
	events := m.arrivalEvents()

	for _, act := range actions {
		afterDep := m.applyAction(ps, act)
		departures := float64(len(act))
		for _, e0 := range events {
			if e0.p == 0 {
				continue
			}
			for _, e1 := range events {
				if e1.p == 0 {
					continue
				}
				next := afterDep
				arrivals, discards := 0.0, 0.0
				for pi, e := range [2]arrival{e0, e1} {
					if !e.has {
						continue
					}
					arrivals++
					if m.canAccept(next[pi], e.dest) {
						next[pi] = m.push(next[pi], e.dest)
					} else {
						discards++
					}
				}
				dst = append(dst, markov.Arc{
					To:      m.encode(next),
					P:       actP * e0.p * e1.p,
					Rewards: []float64{arrivals, discards, departures},
				})
			}
		}
	}
	return dst
}

// Result of solving one Table 2 cell.
type Result struct {
	Kind        buffer.Kind
	Slots       int
	Load        float64
	States      int
	PDiscard    float64 // probability an arriving packet is discarded
	Throughput  float64 // departures per port per cycle
	ArrivalRate float64 // arrivals per cycle (2 ports)
}

// Solve builds the chain, computes the stationary distribution, and
// returns the discard probability — one cell of Table 2.
func Solve(kind buffer.Kind, slots int, load float64) (Result, error) {
	m, err := New(kind, slots, load)
	if err != nil {
		return Result{}, err
	}
	chain, err := markov.Build(m, 2_000_000)
	if err != nil {
		return Result{}, err
	}
	pi, err := chain.Steady(markov.SolveOpts{})
	if err != nil {
		return Result{}, err
	}
	rates := chain.RewardRates(pi)
	res := Result{
		Kind:        kind,
		Slots:       slots,
		Load:        load,
		States:      chain.NumStates(),
		ArrivalRate: rates[RewardArrivals],
		Throughput:  rates[RewardDepartures] / 2,
	}
	if rates[RewardArrivals] > 0 {
		res.PDiscard = rates[RewardDiscards] / rates[RewardArrivals]
	}
	return res, nil
}
