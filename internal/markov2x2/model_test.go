package markov2x2

import (
	"math"
	"testing"

	"damq/internal/buffer"
	"damq/internal/markov"
	"damq/internal/rng"
	"damq/internal/stats"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(buffer.SAMQ, 3, 0.5); err == nil {
		t.Error("SAMQ accepted odd slots")
	}
	if _, err := New(buffer.FIFO, 0, 0.5); err == nil {
		t.Error("accepted zero slots")
	}
	if _, err := New(buffer.FIFO, 13, 0.5); err == nil {
		t.Error("accepted oversized slots")
	}
	if _, err := New(buffer.FIFO, 4, 1.5); err == nil {
		t.Error("accepted load > 1")
	}
	if _, err := New(buffer.FIFO, 4, -0.1); err == nil {
		t.Error("accepted negative load")
	}
	if _, err := New(buffer.Kind(9), 4, 0.5); err == nil {
		t.Error("accepted unknown kind")
	}
	if _, err := New(buffer.DAMQ, 3, 0.5); err != nil {
		t.Errorf("DAMQ rejected odd slots: %v", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	// FIFO round trip across queue contents.
	m, _ := New(buffer.FIFO, 4, 0.5)
	for qlen := 0; qlen <= 4; qlen++ {
		for bits := uint16(0); bits < 1<<qlen; bits++ {
			ps := [2]port{{qlen: qlen, qbits: bits}, {}}
			got := m.decode(m.encode(ps))
			if got != ps {
				t.Fatalf("FIFO round trip: %+v -> %+v", ps, got)
			}
		}
	}
	// Count round trip.
	m, _ = New(buffer.DAMQ, 6, 0.5)
	for n0 := 0; n0 <= 6; n0++ {
		for n1 := 0; n0+n1 <= 6; n1++ {
			ps := [2]port{{n: [2]int{n0, n1}}, {n: [2]int{n1, n0}}}
			got := m.decode(m.encode(ps))
			if got != ps {
				t.Fatalf("count round trip: %+v -> %+v", ps, got)
			}
		}
	}
}

func TestStateSpaceSizes(t *testing.T) {
	// DAMQ with B slots: per-port states = (B+1)(B+2)/2; the joint
	// reachable set is bounded by the square but arbitration (which always
	// drains a non-empty switch) makes a few full-full combinations
	// unreachable.
	for _, B := range []int{2, 3, 4} {
		m, _ := New(buffer.DAMQ, B, 0.9)
		c, err := markov.Build(m, 0)
		if err != nil {
			t.Fatal(err)
		}
		per := (B + 1) * (B + 2) / 2
		if c.NumStates() > per*per || c.NumStates() < per {
			t.Errorf("DAMQ B=%d: %d states, want in (%d, %d]", B, c.NumStates(), per, per*per)
		}
	}
	// FIFO with B slots: per-port states = 2^(B+1)-1.
	m, _ := New(buffer.FIFO, 3, 0.9)
	c, err := markov.Build(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	per := 1<<4 - 1
	if c.NumStates() != per*per {
		t.Errorf("FIFO B=3: %d states, want %d", c.NumStates(), per*per)
	}
	// SAMQ with B slots: per-port states are (B/2+1)^2 but the joint
	// reachable set is smaller (arbitration always drains a non-empty
	// switch, so some full-full combinations can never be entered).
	m, _ = New(buffer.SAMQ, 4, 0.9)
	c, err = markov.Build(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	per = 3 * 3
	if c.NumStates() > per*per || c.NumStates() < per {
		t.Errorf("SAMQ B=4: %d states, want in (%d, %d]", c.NumStates(), per, per*per)
	}
}

func TestDepartureActionsMaxMatching(t *testing.T) {
	m, _ := New(buffer.DAMQ, 4, 0.5)
	// Port 0 can serve both outputs, port 1 only output 0. Max matching
	// is 2: port0->out1, port1->out0 (forced).
	ps := [2]port{{n: [2]int{2, 1}}, {n: [2]int{3, 0}}}
	acts := m.departureActions(ps)
	if len(acts) != 1 || len(acts[0]) != 2 {
		t.Fatalf("actions = %v", acts)
	}
	seen := map[pair]bool{}
	for _, c := range acts[0] {
		seen[c] = true
	}
	if !seen[pair{0, 1}] || !seen[pair{1, 0}] {
		t.Fatalf("wrong matching: %v", acts[0])
	}
}

func TestDepartureActionsLongestQueue(t *testing.T) {
	m, _ := New(buffer.DAMQ, 4, 0.5)
	// Both ports only serve output 0; only one can win: the longer queue.
	ps := [2]port{{n: [2]int{1, 0}}, {n: [2]int{3, 0}}}
	acts := m.departureActions(ps)
	if len(acts) != 1 || len(acts[0]) != 1 || acts[0][0] != (pair{1, 0}) {
		t.Fatalf("actions = %v, want port 1 only", acts)
	}
	// Equal queues: fair coin between the two ports.
	ps = [2]port{{n: [2]int{2, 0}}, {n: [2]int{2, 0}}}
	acts = m.departureActions(ps)
	if len(acts) != 2 {
		t.Fatalf("tie should give 2 actions, got %v", acts)
	}
}

func TestDepartureActionsSAFCDouble(t *testing.T) {
	m, _ := New(buffer.SAFC, 4, 0.5)
	// Only port 0 holds packets, for both outputs: SAFC sends both in one
	// cycle; SAMQ (single read port) sends one.
	ps := [2]port{{n: [2]int{1, 1}}, {}}
	acts := m.departureActions(ps)
	if len(acts) != 1 || len(acts[0]) != 2 {
		t.Fatalf("SAFC actions = %v, want one double action", acts)
	}
	ms, _ := New(buffer.SAMQ, 4, 0.5)
	acts = ms.departureActions(ps)
	for _, a := range acts {
		if len(a) != 1 {
			t.Fatalf("SAMQ sent %d packets from one port", len(a))
		}
	}
	if len(acts) != 2 {
		t.Fatalf("SAMQ tie actions = %v", acts)
	}
}

func TestDepartureActionsEmpty(t *testing.T) {
	m, _ := New(buffer.FIFO, 2, 0.5)
	acts := m.departureActions([2]port{{}, {}})
	if len(acts) != 1 || len(acts[0]) != 0 {
		t.Fatalf("empty switch actions = %v", acts)
	}
}

func TestFIFOHeadOnlyServable(t *testing.T) {
	m, _ := New(buffer.FIFO, 4, 0.5)
	// Queue: head for output 1, then output 0.
	p := port{qlen: 2, qbits: 0b01}
	if m.servable(p, 0) {
		t.Fatal("FIFO served a non-head packet")
	}
	if !m.servable(p, 1) {
		t.Fatal("FIFO did not serve its head")
	}
	popped := m.pop(p, 1)
	if popped.qlen != 1 || popped.qbits != 0 {
		t.Fatalf("pop result: %+v", popped)
	}
	if !m.servable(popped, 0) {
		t.Fatal("FIFO head after pop wrong")
	}
}

func TestSolveBasicSanity(t *testing.T) {
	r, err := Solve(buffer.DAMQ, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if r.PDiscard <= 0 || r.PDiscard > 0.2 {
		t.Fatalf("DAMQ B=2 p=0.5 discard = %v", r.PDiscard)
	}
	if math.Abs(r.ArrivalRate-1.0) > 1e-9 { // 2 ports x 0.5
		t.Fatalf("arrival rate = %v", r.ArrivalRate)
	}
	// Flow conservation in steady state: departures/cycle must equal
	// accepted arrivals/cycle.
	accepted := r.ArrivalRate * (1 - r.PDiscard)
	if math.Abs(accepted-2*r.Throughput) > 1e-6 {
		t.Fatalf("flow not conserved: accepted %v, departures %v", accepted, 2*r.Throughput)
	}
}

func TestDiscardMonotoneInLoad(t *testing.T) {
	for _, kind := range buffer.Kinds() {
		prev := -1.0
		for _, load := range []float64{0.25, 0.5, 0.75, 0.9, 0.99} {
			r, err := Solve(kind, 4, load)
			if err != nil {
				t.Fatal(err)
			}
			if r.PDiscard < prev-1e-9 {
				t.Fatalf("%v: discard decreased with load: %v -> %v", kind, prev, r.PDiscard)
			}
			prev = r.PDiscard
		}
	}
}

func TestDiscardMonotoneInSlots(t *testing.T) {
	for _, kind := range []buffer.Kind{buffer.FIFO, buffer.DAMQ} {
		prev := 2.0
		for _, slots := range []int{2, 3, 4, 5, 6} {
			r, err := Solve(kind, slots, 0.9)
			if err != nil {
				t.Fatal(err)
			}
			if r.PDiscard > prev+1e-9 {
				t.Fatalf("%v: discard increased with slots: %v -> %v", kind, prev, r.PDiscard)
			}
			prev = r.PDiscard
		}
	}
}

// TestTable2Ordering checks the paper's headline orderings at high load.
func TestTable2Ordering(t *testing.T) {
	load := 0.9
	get := func(kind buffer.Kind, slots int) float64 {
		r, err := Solve(kind, slots, load)
		if err != nil {
			t.Fatal(err)
		}
		return r.PDiscard
	}
	fifo := get(buffer.FIFO, 4)
	damq := get(buffer.DAMQ, 4)
	samq := get(buffer.SAMQ, 4)
	safc := get(buffer.SAFC, 4)
	if !(damq < safc && safc <= samq && samq < fifo) {
		t.Fatalf("ordering violated: DAMQ=%v SAFC=%v SAMQ=%v FIFO=%v", damq, safc, samq, fifo)
	}
	// DAMQ with 3 slots discards no more than FIFO with 6 (paper's claim).
	damq3 := get(buffer.DAMQ, 3)
	fifo6 := get(buffer.FIFO, 6)
	if damq3 > fifo6+1e-9 {
		t.Fatalf("DAMQ(3)=%v > FIFO(6)=%v", damq3, fifo6)
	}
}

// TestFIFOBeatsStaticAtLowLoadSmallBuffers reproduces the paper's
// observation that at 25%% load with 2 slots the FIFO outperforms the
// statically partitioned designs (pooled storage wins when contention is
// rare).
func TestFIFOBeatsStaticAtLowLoadSmallBuffers(t *testing.T) {
	fifo, err := Solve(buffer.FIFO, 2, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	samq, err := Solve(buffer.SAMQ, 2, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if fifo.PDiscard >= samq.PDiscard {
		t.Fatalf("FIFO %v !< SAMQ %v at low load", fifo.PDiscard, samq.PDiscard)
	}
}

// TestMarkovMatchesMonteCarlo is the repo's strongest correctness check:
// the exact chain and a long simulation of the same process must agree.
func TestMarkovMatchesMonteCarlo(t *testing.T) {
	if testing.Short() {
		t.Skip("long cross-validation")
	}
	for _, kind := range buffer.Kinds() {
		slots := 4
		load := 0.85
		exact, err := Solve(kind, slots, load)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := Simulate(kind, slots, load, 2_000_000, rng.New(123))
		if err != nil {
			t.Fatal(err)
		}
		if re := stats.RelErr(exact.PDiscard, sim.PDiscard()); re > 0.05 {
			t.Errorf("%v: Markov %v vs MC %v (rel err %.3f)", kind, exact.PDiscard, sim.PDiscard(), re)
		}
	}
}

func TestSimulateDeterminism(t *testing.T) {
	a, _ := Simulate(buffer.DAMQ, 4, 0.8, 10000, rng.New(5))
	b, _ := Simulate(buffer.DAMQ, 4, 0.8, 10000, rng.New(5))
	if a != b {
		t.Fatal("simulation not deterministic for fixed seed")
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(buffer.SAMQ, 3, 0.5, 10, rng.New(1)); err == nil {
		t.Fatal("Simulate accepted invalid config")
	}
}

func TestZeroLoadNoDiscards(t *testing.T) {
	for _, kind := range buffer.Kinds() {
		r, err := Solve(kind, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		if r.PDiscard != 0 || r.Throughput != 0 {
			t.Errorf("%v: zero load gave discard=%v throughput=%v", kind, r.PDiscard, r.Throughput)
		}
	}
}

func BenchmarkSolveDAMQ4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Solve(buffer.DAMQ, 4, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveFIFO6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Solve(buffer.FIFO, 6, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}
