package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %d != %d", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws of 64", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	s := New(0)
	// Must not be the all-zero xoshiro fixed point.
	var allZero bool = true
	for i := 0; i < 16; i++ {
		if s.Uint64() != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("seed 0 produced the all-zero stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Child must not replay the parent's upcoming stream.
	same := 0
	for i := 0; i < 64; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("parent/child streams coincide in %d of 64 draws", same)
	}
}

func TestSplitDeterminism(t *testing.T) {
	c1 := New(9).Split()
	c2 := New(9).Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("mean of %d uniforms = %v, want ~0.5", n, mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	s := New(13)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("value %d drawn %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestUint64nPowerOfTwo(t *testing.T) {
	s := New(17)
	for i := 0; i < 1000; i++ {
		if v := s.Uint64n(16); v >= 16 {
			t.Fatalf("Uint64n(16) = %d", v)
		}
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
		{0xdeadbeefcafebabe, 0x123456789abcdef0, 0x0fd5bdeeeb2a01d7, 0xeb689f4ea447d620},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%#x,%#x) = (%#x,%#x), want (%#x,%#x)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestMul64MatchesBigProperty(t *testing.T) {
	// Property: low 64 bits of the product must equal wrapping a*b.
	f := func(a, b uint64) bool {
		_, lo := mul64(a, b)
		return lo == a*b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoolProbabilities(t *testing.T) {
	s := New(19)
	if s.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !s.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency %v", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(23)
	for n := 0; n <= 20; n++ {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	s := New(29)
	const n, draws = 5, 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Perm(n)[0]]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("Perm first element %d appeared %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestShuffle(t *testing.T) {
	s := New(31)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, v := range xs {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("Shuffle lost elements: %v", xs)
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(37)
	const p, n = 0.25, 100000
	sum := 0
	for i := 0; i < n; i++ {
		v := s.Geometric(p)
		if v < 1 {
			t.Fatalf("Geometric returned %d < 1", v)
		}
		sum += v
	}
	mean := float64(sum) / n
	if math.Abs(mean-1/p) > 0.1 {
		t.Fatalf("Geometric(%v) mean %v, want ~%v", p, mean, 1/p)
	}
}

func TestGeometricOne(t *testing.T) {
	s := New(41)
	for i := 0; i < 100; i++ {
		if v := s.Geometric(1); v != 1 {
			t.Fatalf("Geometric(1) = %d", v)
		}
	}
}

func TestGeometricPanics(t *testing.T) {
	for _, p := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Geometric(%v) did not panic", p)
				}
			}()
			New(1).Geometric(p)
		}()
	}
}

func TestIntnRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntnRange(5,4) did not panic")
		}
	}()
	New(1).IntnRange(5, 4)
}

func TestIntnRange(t *testing.T) {
	s := New(43)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.IntnRange(3, 7)
		if v < 3 || v > 7 {
			t.Fatalf("IntnRange(3,7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("IntnRange(3,7) did not cover the range: %v", seen)
	}
	if v := s.IntnRange(4, 4); v != 4 {
		t.Fatalf("IntnRange(4,4) = %d", v)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += s.Intn(100)
	}
	_ = sink
}
