// Package rng provides a small, deterministic, splittable pseudo-random
// number generator for simulation use.
//
// Simulations in this repository must be exactly reproducible from a seed,
// independent of Go version and of the number of independent random streams
// in use. The standard library's math/rand/v2 would work, but a local
// implementation guarantees the bit stream never changes underneath the
// recorded experiment outputs, and gives us cheap stream splitting: each
// simulated entity (source, switch, arbiter) owns its own stream derived
// from the master seed, so adding an entity never perturbs the draws seen
// by the others.
//
// The core generator is xoshiro256**, seeded through SplitMix64, both as
// published by Blackman and Vigna (public domain reference code).
package rng

import (
	"errors"
	"math"
)

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used for seeding so that correlated user seeds (0, 1, 2, ...)
// still produce well-separated xoshiro states.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a xoshiro256** generator. The zero value is invalid; create
// sources with New or Source.Split.
type Source struct {
	s0, s1, s2, s3 uint64
}

// New returns a Source seeded from seed via SplitMix64.
func New(seed uint64) *Source {
	var src Source
	src.reseed(seed)
	return &src
}

func (s *Source) reseed(seed uint64) {
	sm := seed
	s.s0 = splitMix64(&sm)
	s.s1 = splitMix64(&sm)
	s.s2 = splitMix64(&sm)
	s.s3 = splitMix64(&sm)
	// xoshiro requires a nonzero state; SplitMix64 outputs are zero for
	// at most one of the four words, but guard anyway.
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = 1
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return result
}

// Split derives a new independent Source from this one. The parent stream
// advances by one draw; the child is seeded from that draw, so parent and
// child sequences are uncorrelated for simulation purposes.
func (s *Source) Split() *Source {
	child := &Source{}
	child.reseed(s.Uint64())
	return child
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	// 53 high bits -> [0,1) with full double precision.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return s.Uint64() & (n - 1)
	}
	// Lemire rejection sampling on the high 64 bits of a 128-bit product.
	for {
		v := s.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= -n%n {
			// Accept: the product's low word is outside the biased zone.
			// (The standard condition is lo >= (2^64 - n) mod n == -n % n.)
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32

	t := aLo * bLo
	lo32 := t & mask32
	carry := t >> 32

	t = aHi*bLo + carry
	mid1 := t & mask32
	carry = t >> 32

	t = aLo*bHi + mid1
	mid2 := t & mask32
	carry2 := t >> 32

	hi = aHi*bHi + carry + carry2
	lo = mid2<<32 | lo32
	return hi, lo
}

// Bool returns true with probability p. Values of p outside [0,1] clamp.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	// Fisher-Yates.
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes xs in place uniformly at random.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Geometric returns a draw from the geometric distribution on {1, 2, ...}
// with success probability p: the number of Bernoulli(p) trials up to and
// including the first success. It panics unless 0 < p <= 1.
func (s *Source) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric needs 0 < p <= 1")
	}
	if p == 1 {
		return 1
	}
	u := s.Float64()
	// Inverse CDF: ceil(ln(1-u) / ln(1-p)).
	k := int(math.Ceil(math.Log1p(-u) / math.Log1p(-p)))
	if k < 1 {
		k = 1
	}
	return k
}

// IntnRange returns a uniform int in [lo, hi] inclusive. Panics if hi < lo.
func (s *Source) IntnRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntnRange with hi < lo")
	}
	return lo + s.Intn(hi-lo+1)
}

// State returns the generator's four state words, for checkpointing. A
// Source restored with SetState continues the identical stream.
func (s *Source) State() [4]uint64 { return [4]uint64{s.s0, s.s1, s.s2, s.s3} }

// SetState overwrites the generator state with a previously captured
// State. The all-zero state is xoshiro's single invalid fixed point
// (the generator would emit zeros forever) and is rejected.
func (s *Source) SetState(st [4]uint64) error {
	if st[0]|st[1]|st[2]|st[3] == 0 {
		return errors.New("rng: all-zero state is invalid")
	}
	s.s0, s.s1, s.s2, s.s3 = st[0], st[1], st[2], st[3]
	return nil
}
