// Package chipnet assembles cycle-accurate ComCoBB chips into an Omega
// multistage interconnection network — the deployment the paper says the
// DAMQ design targets beyond the coprocessor ("an almost identical design
// can be used for DAMQ buffers in a switch of a multistage
// interconnection network", Section 3).
//
// Where package netsim abstracts a switch hop into one long clock,
// chipnet moves every byte through real synchronizers, routers, slot RAMs
// and crossbars. It is three orders of magnitude slower per simulated
// packet and exists for validation, not capacity planning: it confirms
// that the long-clock model's latency structure (pipelined 4-cycle
// cut-through per hop) is what the micro-architecture actually produces.
//
// Topology: N inputs of 4×4 chips, log4(N) stages, perfect-shuffle
// wiring, destination-digit routing — identical to internal/omega, with
// the header byte carrying the destination address. Chips run in MIN
// mode (port-pair turnback allowed). The processor-interface port of
// every chip is left unused.
package chipnet

import (
	"fmt"

	"damq/internal/comcobb"
	"damq/internal/omega"
)

// Network is an Omega network of ComCoBB chips.
type Network struct {
	top     *omega.Topology
	stages  [][]*comcobb.Chip
	net     *comcobb.Network
	drivers []*comcobb.Driver // one per network input
	cycle   int64
}

// Config parameterizes the network.
type Config struct {
	// Inputs is the network width; must be a power of 4 (the chip is a
	// 4×4 switch). Default 16.
	Inputs int
	// Slots per input buffer per chip. Default comcobb.DefaultSlots.
	Slots int
	// Trace enables per-chip event traces (expensive; keep networks
	// small when tracing).
	Trace bool
}

// New builds and wires the network.
func New(cfg Config) (*Network, error) {
	if cfg.Inputs == 0 {
		cfg.Inputs = 16
	}
	top, err := omega.New(4, cfg.Inputs)
	if err != nil {
		return nil, err
	}
	if cfg.Inputs > 256 {
		return nil, fmt.Errorf("chipnet: %d inputs exceeds the 8-bit header address space", cfg.Inputs)
	}
	n := &Network{top: top}
	n.net = comcobb.NewNetwork()

	// Instantiate chips.
	for s := 0; s < top.Stages(); s++ {
		var row []*comcobb.Chip
		for i := 0; i < top.SwitchesPerStage(); i++ {
			var tr *comcobb.Trace
			if cfg.Trace {
				tr = &comcobb.Trace{}
			}
			chip := comcobb.NewChip(comcobb.Config{Slots: cfg.Slots, Trace: tr, MINMode: true})
			row = append(row, chip)
			n.net.Add(chip)
		}
		n.stages = append(n.stages, row)
	}

	// Program routing tables: the header byte is the destination line
	// number; stage s consumes digit s.
	for s := 0; s < top.Stages(); s++ {
		for _, chip := range n.stages[s] {
			for in := 0; in < 4; in++ {
				for dest := 0; dest < cfg.Inputs; dest++ {
					route := comcobb.Route{
						Out:       top.RouteDigit(dest, s),
						NewHeader: byte(dest),
					}
					if err := chip.In(in).Router().Set(byte(dest), route); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	// Wire the stages with the perfect shuffle.
	for s := 0; s+1 < top.Stages(); s++ {
		for i, chip := range n.stages[s] {
			for out := 0; out < 4; out++ {
				nsw, nport := top.NextStage(i, out)
				comcobb.Connect(chip, out, n.stages[s+1][nsw], nport)
			}
		}
	}

	// Drivers at the first stage (one per network input, pre-shuffled).
	n.drivers = make([]*comcobb.Driver, cfg.Inputs)
	for src := 0; src < cfg.Inputs; src++ {
		sw, port := top.FirstStageSwitch(src)
		n.drivers[src] = comcobb.NewDriver(n.stages[0][sw].InLink(port))
	}
	return n, nil
}

// Topology exposes the network's shape.
func (n *Network) Topology() *omega.Topology { return n.top }

// Chip returns the chip at (stage, index) for trace inspection.
func (n *Network) Chip(stage, index int) *comcobb.Chip { return n.stages[stage][index] }

// Send queues a packet at network input src addressed to network output
// dest, with the given payload and an idle gap after it.
func (n *Network) Send(src, dest int, data []byte, gap int) error {
	if src < 0 || src >= len(n.drivers) {
		return fmt.Errorf("chipnet: source %d out of range", src)
	}
	if dest < 0 || dest >= n.top.Inputs() {
		return fmt.Errorf("chipnet: destination %d out of range", dest)
	}
	n.drivers[src].Queue(byte(dest), data, gap)
	return nil
}

// Pending reports queued-but-untransmitted symbols across all drivers.
func (n *Network) Pending() int {
	total := 0
	for _, d := range n.drivers {
		total += d.Pending()
	}
	return total
}

// Tick advances the whole network one clock cycle.
func (n *Network) Tick() {
	for _, d := range n.drivers {
		d.Tick()
	}
	n.net.Tick()
	n.cycle++
}

// Run ticks for the given number of cycles.
func (n *Network) Run(cycles int) {
	for i := 0; i < cycles; i++ {
		n.Tick()
	}
}

// Cycle returns the elapsed clock cycles.
func (n *Network) Cycle() int64 { return n.cycle }

// Delivered returns the packets that have arrived at network output dest.
func (n *Network) Delivered(dest int) []comcobb.DecodedPacket {
	sw, port := omega.SwitchPort(4, dest)
	return n.stages[len(n.stages)-1][sw].Delivered(port)
}

// DeliveredCount totals deliveries across all outputs.
func (n *Network) DeliveredCount() int {
	total := 0
	for d := 0; d < n.top.Inputs(); d++ {
		total += len(n.Delivered(d))
	}
	return total
}
