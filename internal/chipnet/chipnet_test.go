package chipnet

import (
	"bytes"
	"testing"

	"damq/internal/rng"
)

func payload(n int, base byte) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = base + byte(i)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Inputs: 24}); err == nil {
		t.Error("accepted non-power-of-4 width")
	}
	if _, err := New(Config{Inputs: 1024}); err == nil {
		t.Error("accepted width beyond header address space")
	}
	n, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if n.Topology().Inputs() != 16 || n.Topology().Stages() != 2 {
		t.Fatalf("default topology wrong: %+v", n.Topology())
	}
}

func TestSendValidation(t *testing.T) {
	n, _ := New(Config{})
	if err := n.Send(-1, 0, payload(4, 0), 0); err == nil {
		t.Error("accepted negative source")
	}
	if err := n.Send(0, 99, payload(4, 0), 0); err == nil {
		t.Error("accepted out-of-range destination")
	}
}

// TestAllPairsDeliver pushes one packet through every (src, dest) pair of
// a 16×16 chip network — byte-level validation of shuffle wiring plus
// digit routing on the real micro-architecture.
func TestAllPairsDeliver(t *testing.T) {
	for dest := 0; dest < 16; dest++ {
		n, err := New(Config{})
		if err != nil {
			t.Fatal(err)
		}
		// All 16 sources send to this destination (worst-case output
		// contention), with distinguishable payloads.
		for src := 0; src < 16; src++ {
			if err := n.Send(src, dest, payload(8, byte(src*16)), 0); err != nil {
				t.Fatal(err)
			}
		}
		n.Run(1200)
		got := n.Delivered(dest)
		if len(got) != 16 {
			t.Fatalf("dest %d: delivered %d of 16 packets", dest, len(got))
		}
		seen := map[byte]bool{}
		for _, p := range got {
			if int(p.Header) != dest {
				t.Fatalf("dest %d: packet carries header %d", dest, p.Header)
			}
			if len(p.Data) != 8 {
				t.Fatalf("dest %d: payload length %d", dest, len(p.Data))
			}
			seen[p.Data[0]] = true
		}
		if len(seen) != 16 {
			t.Fatalf("dest %d: only %d distinct sources arrived", dest, len(seen))
		}
	}
}

// TestTwoHopCutThroughLatency: an idle two-stage path turns the packet
// around in 4 cycles per hop; the start bit reaches the output sink at
// cycle 8 relative to injection.
func TestTwoHopCutThroughLatency(t *testing.T) {
	n, err := New(Config{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Send(0, 5, payload(8, 0), 0); err != nil {
		t.Fatal(err)
	}
	n.Run(60)
	if len(n.Delivered(5)) != 1 {
		t.Fatal("packet lost")
	}
	// Find per-stage turnarounds in the traces.
	for s := 0; s < 2; s++ {
		found := false
		for i := 0; i < 4; i++ {
			tr := n.Chip(s, i).Trace()
			var inCycle, outCycle int64 = -1, -1
			for _, e := range tr.Events {
				if e.Msg == "start bit detected; synchronizer armed" && inCycle < 0 {
					inCycle = e.Cycle
				}
				if e.Msg == "start bit transmitted" && outCycle < 0 {
					outCycle = e.Cycle
				}
			}
			if inCycle >= 0 && outCycle >= 0 {
				found = true
				if outCycle-inCycle != 4 {
					t.Fatalf("stage %d chip %d: turn-around %d, want 4", s, i, outCycle-inCycle)
				}
			}
		}
		if !found {
			t.Fatalf("stage %d: no chip saw the packet", s)
		}
	}
}

// TestVariableLengthMixSoak: random variable-length packets from all
// sources to random destinations; everything must arrive intact (blocking
// flow control, no discards at chip level).
func TestVariableLengthMixSoak(t *testing.T) {
	n, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(77)
	type sent struct {
		dest int
		data []byte
	}
	var all []sent
	for s := 0; s < 16; s++ {
		for k := 0; k < 12; k++ {
			dest := src.Intn(16)
			data := payload(src.IntnRange(1, 32), byte(src.Intn(200)))
			if err := n.Send(s, dest, data, src.Intn(6)); err != nil {
				t.Fatal(err)
			}
			all = append(all, sent{dest: dest, data: data})
		}
	}
	// Run until drained (bounded).
	for i := 0; i < 200 && (n.Pending() > 0 || n.DeliveredCount() < len(all)); i++ {
		n.Run(100)
	}
	if got := n.DeliveredCount(); got != len(all) {
		t.Fatalf("delivered %d of %d packets", got, len(all))
	}
	// Per destination, the multiset of payloads must match (order across
	// sources is not deterministic, so compare as multisets).
	for dest := 0; dest < 16; dest++ {
		var want [][]byte
		for _, s := range all {
			if s.dest == dest {
				want = append(want, s.data)
			}
		}
		got := n.Delivered(dest)
		if len(got) != len(want) {
			t.Fatalf("dest %d: %d packets, want %d", dest, len(got), len(want))
		}
		used := make([]bool, len(want))
		for _, p := range got {
			matched := false
			for i, w := range want {
				if !used[i] && bytes.Equal(p.Data, w) {
					used[i] = true
					matched = true
					break
				}
			}
			if !matched {
				t.Fatalf("dest %d: unexpected payload %v", dest, p.Data)
			}
		}
	}
}

// TestPerSourceFIFOOrder: two packets from the same source to the same
// destination must arrive in order (virtual circuits preserve order).
func TestPerSourceFIFOOrder(t *testing.T) {
	n, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Send(3, 9, payload(8, 0x01), 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(3, 9, payload(8, 0x81), 0); err != nil {
		t.Fatal(err)
	}
	n.Run(400)
	got := n.Delivered(9)
	if len(got) != 2 {
		t.Fatalf("delivered %d", len(got))
	}
	if got[0].Data[0] != 0x01 || got[1].Data[0] != 0x81 {
		t.Fatalf("order violated: %x, %x", got[0].Data[0], got[1].Data[0])
	}
}

// Test64WideNetwork builds the paper's full 64×64 shape out of chips and
// pushes a permutation through it.
func Test64WideNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("48 chips at byte level")
	}
	n, err := New(Config{Inputs: 64})
	if err != nil {
		t.Fatal(err)
	}
	if n.Topology().Stages() != 3 {
		t.Fatalf("stages = %d", n.Topology().Stages())
	}
	for srcIdx := 0; srcIdx < 64; srcIdx++ {
		dest := (srcIdx + 17) % 64
		if err := n.Send(srcIdx, dest, payload(16, byte(srcIdx)), 0); err != nil {
			t.Fatal(err)
		}
	}
	n.Run(2500)
	if got := n.DeliveredCount(); got != 64 {
		t.Fatalf("delivered %d of 64", got)
	}
	for srcIdx := 0; srcIdx < 64; srcIdx++ {
		dest := (srcIdx + 17) % 64
		pkts := n.Delivered(dest)
		if len(pkts) != 1 || pkts[0].Data[0] != byte(srcIdx) {
			t.Fatalf("dest %d: wrong delivery %+v", dest, pkts)
		}
	}
}
