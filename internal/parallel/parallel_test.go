package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersDefaults(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		got, err := Map(100, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestForRunsEveryIndexOnce(t *testing.T) {
	const n = 500
	var counts [n]atomic.Int32
	if err := For(n, 7, func(i int) error {
		counts[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Errorf("index %d ran %d times", i, c)
		}
	}
}

func TestForReturnsLowestIndexedError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := For(50, workers, func(i int) error {
			if i == 7 || i == 23 {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: expected an error", workers)
		}
		// With cancellation, job 23 may never run; whichever errors are
		// observed, the lowest-indexed one wins, and job 7 always runs
		// before job 23 can be the only error (indexes are issued in
		// order).
		if err.Error() != "job 7 failed" {
			t.Errorf("workers=%d: got %q, want job 7's error", workers, err)
		}
	}
}

func TestForCancelsAfterError(t *testing.T) {
	var started atomic.Int32
	sentinel := errors.New("boom")
	err := For(10_000, 2, func(i int) error {
		started.Add(1)
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if n := started.Load(); n > 100 {
		t.Errorf("started %d jobs after first error; cancellation is not working", n)
	}
}

func TestForPropagatesPanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Errorf("workers=%d: expected panic to propagate", workers)
				}
			}()
			_ = For(8, workers, func(i int) error {
				if i == 3 {
					panic("simulated simulator bug")
				}
				return nil
			})
		}()
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(0, 4, func(i int) (string, error) { return "x", nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("Map(0) = %v, %v", got, err)
	}
}

func TestForCtxCancelStopsNewJobs(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var started atomic.Int32
		err := ForCtx(ctx, 10_000, workers, func(i int) error {
			if started.Add(1) == 3 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if n := started.Load(); n > 100 {
			t.Errorf("workers=%d: started %d jobs after cancel", workers, n)
		}
	}
}

func TestForCtxBackgroundIsFor(t *testing.T) {
	var ran atomic.Int32
	if err := ForCtx(context.Background(), 64, 4, func(i int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 64 {
		t.Fatalf("ran %d jobs, want 64", ran.Load())
	}
}

func TestMapCtxKeepsPartialResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var fired atomic.Bool
	out, done, err := MapCtx(ctx, 1000, 1, func(i int) (int, error) {
		if i == 10 && !fired.Swap(true) {
			cancel()
		}
		return i + 1, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if done < 10 || done >= 1000 {
		t.Fatalf("done = %d, want partial", done)
	}
	if len(out) != 1000 {
		t.Fatalf("len(out) = %d", len(out))
	}
	// The serial path completes exactly jobs [0, done); their results must
	// be present, the rest zero.
	for i := 0; i < done; i++ {
		if out[i] != i+1 {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], i+1)
		}
	}
	for i := done; i < 1000; i++ {
		if out[i] != 0 {
			t.Fatalf("out[%d] = %d, want 0 (never ran)", i, out[i])
		}
	}
}
