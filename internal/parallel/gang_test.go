package parallel

import (
	"sync/atomic"
	"testing"
)

func TestGangRunsEveryWorkerEveryPhase(t *testing.T) {
	const n = 4
	var hits [n]int64
	var phases [n][]int
	g := NewGang(n, func(w, p int) {
		atomic.AddInt64(&hits[w], 1)
		// Only worker 0 runs on the calling goroutine, but phases are
		// barrier-separated, so appending under w is race-free.
		phases[w] = append(phases[w], p)
	})
	defer g.Close()
	for p := 0; p < 5; p++ {
		g.Run(p)
	}
	for w := 0; w < n; w++ {
		if hits[w] != 5 {
			t.Fatalf("worker %d ran %d phases, want 5", w, hits[w])
		}
		for p, got := range phases[w] {
			if got != p {
				t.Fatalf("worker %d phase order %v", w, phases[w])
			}
		}
	}
}

// TestGangBarrier pins the happens-before contract: all of phase p's
// writes are visible to every worker in phase p+1.
func TestGangBarrier(t *testing.T) {
	const n = 8
	buf := make([]int, n)
	g := NewGang(n, func(w, p int) {
		if p%2 == 0 {
			buf[w] = p
			return
		}
		// Odd phases read every even-phase write.
		for i, v := range buf {
			if v != p-1 {
				t.Errorf("phase %d worker %d sees buf[%d]=%d", p, w, i, v)
				return
			}
		}
	})
	defer g.Close()
	for p := 0; p < 6; p++ {
		g.Run(p)
	}
}

func TestGangPanicPropagates(t *testing.T) {
	g := NewGang(3, func(w, p int) {
		if w == 2 {
			panic("shard invariant broken")
		}
	})
	defer g.Close()
	defer func() {
		if r := recover(); r != "shard invariant broken" {
			t.Fatalf("recovered %v", r)
		}
		// The gang must still be usable for the next phase after a panic.
		ran := int64(0)
		g2 := NewGang(2, func(w, p int) { atomic.AddInt64(&ran, 1) })
		defer g2.Close()
		g2.Run(0)
		if ran != 2 {
			t.Fatalf("post-panic gang ran %d workers", ran)
		}
	}()
	g.Run(0)
}

func TestGangOfOne(t *testing.T) {
	ran := 0
	g := NewGang(1, func(w, p int) {
		if w != 0 {
			t.Fatalf("worker %d in gang of 1", w)
		}
		ran++
	})
	g.Run(0)
	g.Run(1)
	g.Close()
	g.Close() // idempotent
	if ran != 2 {
		t.Fatalf("ran %d", ran)
	}
}
