package parallel

// Gang is a fixed crew of worker goroutines driven in lockstep phases,
// built for sharded simulation stepping: the caller owns a static
// partition of the work (worker w always handles the same shard block)
// and repeatedly runs short phases separated by barriers. Unlike For/Map,
// a Gang never rebalances — determinism comes from the static assignment,
// and the per-phase cost is two channel operations per worker, with no
// allocation in steady state.
//
// The calling goroutine acts as worker 0, so a Gang of size n occupies
// exactly n goroutines during Run (n-1 parked between phases). Phases are
// totally ordered: every worker observes phase p complete (Run returns)
// before any worker starts phase p+1, which is the happens-before edge a
// sharded simulator needs between its arbitrate/move/inject phases.
//
// A panic in any worker's phase function is re-raised on the calling
// goroutine after all workers finish the phase (lowest worker index wins
// when several panic), so a simulation invariant failure inside a shard
// surfaces exactly like it would in a serial run.
type Gang struct {
	n     int
	run   func(worker, phase int)
	start []chan int    // one per spawned worker (workers 1..n-1)
	done  chan struct{} // one token per spawned worker per phase
	rec   []any         // recovered panic per worker, reset each phase
	open  bool
}

// NewGang starts n-1 worker goroutines and returns the gang. run(w, p)
// executes phase p's work for worker w's static partition; it is invoked
// with w in [0, n) exactly once per Run call. n must be at least 1; a
// gang of 1 spawns nothing and Run degenerates to a direct call.
func NewGang(n int, run func(worker, phase int)) *Gang {
	if n < 1 {
		panic("parallel: gang size must be at least 1")
	}
	g := &Gang{
		n:    n,
		run:  run,
		done: make(chan struct{}, n),
		rec:  make([]any, n),
		open: true,
	}
	for w := 1; w < n; w++ {
		ch := make(chan int, 1)
		g.start = append(g.start, ch)
		go g.loop(w, ch)
	}
	return g
}

// Size returns the gang's worker count (including the caller).
func (g *Gang) Size() int { return g.n }

// loop is the spawned workers' life: wait for a phase number, execute it,
// signal done; exit when the start channel closes (Close).
func (g *Gang) loop(w int, start chan int) {
	for phase := range start {
		g.call(w, phase)
		g.done <- struct{}{}
	}
}

// call runs one worker's phase under a recover so a shard panic does not
// kill the process from a worker goroutine (it is re-raised by Run).
func (g *Gang) call(w, phase int) {
	defer g.recoverInto(w)
	g.rec[w] = nil
	g.run(w, phase)
}

// recoverInto records a panic raised by worker w's phase function. It
// must be the deferred function itself (not wrapped in a literal) for
// recover to see the panic; deferring the bound method also keeps the
// phase hot path free of a closure allocation.
func (g *Gang) recoverInto(w int) {
	if r := recover(); r != nil {
		g.rec[w] = r
	}
}

// Run executes phase on every worker and returns when all have finished —
// the barrier between simulation phases. The caller executes worker 0's
// share itself. Run must not be called after Close, nor concurrently.
func (g *Gang) Run(phase int) {
	if !g.open {
		panic("parallel: Run on a closed gang")
	}
	for _, ch := range g.start {
		ch <- phase
	}
	g.call(0, phase)
	for range g.start {
		<-g.done
	}
	for w := 0; w < g.n; w++ {
		if r := g.rec[w]; r != nil {
			panic(r)
		}
	}
}

// Close releases the spawned worker goroutines. Idempotent; after Close
// the gang cannot Run again (callers fall back to a serial loop, which by
// the determinism contract computes identical results).
func (g *Gang) Close() {
	if !g.open {
		return
	}
	g.open = false
	for _, ch := range g.start {
		close(ch)
	}
	g.start = nil
}
