// Package parallel provides the bounded worker pool the experiment layer
// uses to fan independent simulation points out across CPU cores.
//
// Every sweep in internal/experiments is embarrassingly parallel: each
// point is an independently seeded simulation (or an independent Markov
// solve), so points can run in any order as long as results are assembled
// in submission order. Map guarantees exactly that — results come back
// indexed by job, so a parallel sweep renders byte-identically to the
// serial one.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values <= 0 mean GOMAXPROCS.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// For runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers <= 0 means GOMAXPROCS). After the first error no new jobs are
// started; For returns the error with the lowest index among those
// observed, matching what a serial loop would have surfaced if that job
// alone failed. A panic in fn is re-raised on the calling goroutine.
//
// With workers == 1 (or n <= 1) fn runs on the calling goroutine with no
// synchronization at all, so a single-worker run is exactly the serial
// loop it replaced.
func For(n, workers int, fn func(i int) error) error {
	return ForCtx(context.Background(), n, workers, fn)
}

// ForCtx is For with cooperative cancellation: once ctx is cancelled no
// new jobs start (jobs already running finish normally — fn is not
// interrupted). If the loop was cut short by cancellation ForCtx returns
// ctx.Err(), which takes precedence over job errors; a Background
// context makes it exactly For.
func ForCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return ctx.Err()
	}

	var (
		next     atomic.Int64
		stopped  atomic.Bool
		mu       sync.Mutex
		firstIdx = -1
		firstErr error
		panicked any
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stopped.Load() && ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				err := func() (err error) {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if panicked == nil {
								panicked = r
							}
							mu.Unlock()
							stopped.Store(true)
						}
					}()
					return fn(i)
				}()
				if err != nil {
					mu.Lock()
					if firstIdx == -1 || i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
					stopped.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return firstErr
}

// Map runs fn(i) for every i in [0, n) through For and returns the
// results in index order. On error the partial results are discarded and
// only the error is returned.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out, _, err := MapCtx(context.Background(), n, workers, fn)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MapCtx is Map with cooperative cancellation. Unlike Map it never
// discards work: it always returns the results slice (zero values at
// indices whose jobs did not complete) together with the completed-job
// count, so a cancelled sweep can flush what it finished — report
// "interrupted at done/n" — instead of throwing it away.
func MapCtx[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) (out []T, done int, err error) {
	out = make([]T, n)
	var completed atomic.Int64
	err = ForCtx(ctx, n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		completed.Add(1)
		return nil
	})
	return out, int(completed.Load()), err
}
