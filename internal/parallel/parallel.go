// Package parallel provides the bounded worker pool the experiment layer
// uses to fan independent simulation points out across CPU cores.
//
// Every sweep in internal/experiments is embarrassingly parallel: each
// point is an independently seeded simulation (or an independent Markov
// solve), so points can run in any order as long as results are assembled
// in submission order. Map guarantees exactly that — results come back
// indexed by job, so a parallel sweep renders byte-identically to the
// serial one.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values <= 0 mean GOMAXPROCS.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// For runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers <= 0 means GOMAXPROCS). After the first error no new jobs are
// started; For returns the error with the lowest index among those
// observed, matching what a serial loop would have surfaced if that job
// alone failed. A panic in fn is re-raised on the calling goroutine.
//
// With workers == 1 (or n <= 1) fn runs on the calling goroutine with no
// synchronization at all, so a single-worker run is exactly the serial
// loop it replaced.
func For(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64
		stopped  atomic.Bool
		mu       sync.Mutex
		firstIdx = -1
		firstErr error
		panicked any
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stopped.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				err := func() (err error) {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if panicked == nil {
								panicked = r
							}
							mu.Unlock()
							stopped.Store(true)
						}
					}()
					return fn(i)
				}()
				if err != nil {
					mu.Lock()
					if firstIdx == -1 || i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
					stopped.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return firstErr
}

// Map runs fn(i) for every i in [0, n) through For and returns the
// results in index order. On error the partial results are discarded and
// only the error is returned.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := For(n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
