// Package damq is a library reproduction of Tamir & Frazier,
// "High-Performance Multi-Queue Buffers for VLSI Communication Switches"
// (UCLA CSD-880003 / ISCA 1988) — the paper that introduced the
// dynamically allocated multi-queue (DAMQ) buffer.
//
// The package is a facade over the repository's internals, exposing:
//
//   - the four buffer organizations the paper compares (FIFO, SAMQ, SAFC,
//     DAMQ) behind one Buffer interface, with the DAMQ implemented as a
//     slot pool threaded by hardware-style linked lists;
//   - exact Markov analysis of 2×2 discarding switches (the paper's
//     Table 2);
//   - a synchronized 64×64 Omega-network simulator with blocking and
//     discarding flow control, smart/dumb arbitration, uniform and
//     hot-spot traffic (Tables 3-6, Figure 3);
//   - a clock-cycle/phase-accurate model of the ComCoBB chip's DAMQ
//     micro-architecture demonstrating 4-cycle virtual cut-through
//     (Table 1);
//   - experiment harnesses that regenerate every table and figure.
//
// See README.md for a tour and EXPERIMENTS.md for paper-vs-measured
// results.
package damq

import (
	"context"
	"fmt"
	"io"

	"damq/internal/arbiter"
	"damq/internal/buffer"
	"damq/internal/cfgerr"
	"damq/internal/chipnet"
	"damq/internal/comcobb"
	"damq/internal/eventsim"
	"damq/internal/experiments"
	"damq/internal/fault"
	"damq/internal/markov2x2"
	"damq/internal/netsim"
	"damq/internal/obs"
	"damq/internal/packet"
	"damq/internal/plot"
	"damq/internal/stats"
	"damq/internal/sw"
)

// Config validation -------------------------------------------------------
//
// Every Config in the library carries a Validate() error method, and every
// validation failure wraps exactly one of these sentinels, so callers
// classify errors with errors.Is instead of string matching.
var (
	// ErrBadKind reports an unknown buffer kind (constructor or parser).
	ErrBadKind = cfgerr.ErrBadKind
	// ErrBadCapacity reports a slot capacity that is non-positive or not
	// divisible as the buffer organization requires (SAMQ/SAFC).
	ErrBadCapacity = cfgerr.ErrBadCapacity
	// ErrBadPorts reports a non-positive port or output count.
	ErrBadPorts = cfgerr.ErrBadPorts
	// ErrBadRadix reports an Omega-network radix/width mismatch.
	ErrBadRadix = cfgerr.ErrBadRadix
	// ErrBadLoad reports an offered load outside [0, 1].
	ErrBadLoad = cfgerr.ErrBadLoad
	// ErrBadTraffic reports an invalid traffic specification.
	ErrBadTraffic = cfgerr.ErrBadTraffic
	// ErrBadPolicy reports an unknown arbitration policy.
	ErrBadPolicy = cfgerr.ErrBadPolicy
	// ErrBadProtocol reports an unknown flow-control protocol.
	ErrBadProtocol = cfgerr.ErrBadProtocol
	// ErrBadFaultRate reports a fault probability outside [0, 1].
	ErrBadFaultRate = cfgerr.ErrBadFaultRate
	// ErrBadRetryLimit reports a negative retransmit limit or backoff.
	ErrBadRetryLimit = cfgerr.ErrBadRetryLimit
	// ErrBadWorkers reports an intra-run worker count the network cannot
	// shard to (more workers than switches per stage).
	ErrBadWorkers = cfgerr.ErrBadWorkers
	// ErrBadSharing reports invalid sharing-policy knobs: parameters set
	// for a buffer kind that does not read them, out-of-range values, or
	// a shared pool requested for a kind without pooled storage.
	ErrBadSharing = cfgerr.ErrBadSharing
	// ErrBadCheckpoint reports a corrupted, truncated, or structurally
	// inconsistent checkpoint stream (Restore).
	ErrBadCheckpoint = cfgerr.ErrBadCheckpoint
	// ErrCheckpointVersion reports a checkpoint written by an
	// incompatible format version of this library.
	ErrCheckpointVersion = cfgerr.ErrCheckpointVersion
)

// BufferKind identifies one of the four buffer organizations.
type BufferKind = buffer.Kind

// The four buffer organizations of the paper, in its comparison order.
const (
	FIFO = buffer.FIFO
	SAMQ = buffer.SAMQ
	SAFC = buffer.SAFC
	DAMQ = buffer.DAMQ
	// DAFC is the ablation variant: DAMQ's dynamic pool with SAFC's full
	// read connectivity. Not one of the paper's four designs.
	DAFC = buffer.DAFC
)

// The modern (post-1988) admission policies over DAMQ's pooled storage:
// dynamic thresholds, per-class flexible sharing with reservations, and
// queueing-delay-driven sharing. See internal/buffer and DESIGN.md §"The
// admission/storage split".
const (
	DT     = buffer.DT
	FB     = buffer.FB
	BSHARE = buffer.BSHARE
)

// BufferKinds lists the paper's four kinds.
func BufferKinds() []BufferKind { return buffer.Kinds() }

// ModernBufferKinds lists the 2026 sharing policies (DT, FB, BSHARE).
func ModernBufferKinds() []BufferKind { return buffer.ModernKinds() }

// ParseBufferKind converts a name such as "damq" or "DAMQ" to its kind
// (case-insensitive). Unknown names return an error wrapping ErrBadKind
// that lists the valid names.
func ParseBufferKind(s string) (BufferKind, error) { return buffer.ParseKind(s) }

// BufferSharing tunes the modern admission policies; the zero value means
// defaults (alpha 1.0, 2 classes, delay target 16 cycles). The 1988 kinds
// ignore it, and Validate rejects knobs set on a kind that does not read
// them (ErrBadSharing).
type BufferSharing = buffer.Sharing

// ParseBufferSpec parses a CLI-style buffer spec: a kind name optionally
// followed by sharing knobs, e.g. "damq", "dt:alpha=0.5", or
// "fb:alpha=2,classes=4". Errors wrap ErrBadKind or ErrBadSharing.
func ParseBufferSpec(s string) (BufferKind, BufferSharing, error) {
	cfg, err := buffer.ParseSpec(s)
	if err != nil {
		return 0, BufferSharing{}, err
	}
	return cfg.Kind, cfg.Sharing, nil
}

// Buffer is the behavioural interface shared by all four organizations
// under the long-clock model. See internal/buffer for semantics.
type Buffer = buffer.Buffer

// DAMQBuffer is the paper's contribution: per-output FIFO queues threaded
// through a shared slot pool with explicit linked lists and a free list.
// It exposes CheckInvariants for structural verification.
type DAMQBuffer = buffer.DAMQBuffer

// Packet is the unit of traffic in the long-clock simulators.
type Packet = packet.Packet

// NewBuffer constructs a buffer of the given kind for an n-output switch
// with the given total slot capacity. With WithObserver the buffer is
// wrapped so accept/reject/pop outcomes count under the buffer.*
// metrics; without options the raw buffer is returned unchanged. With
// WithFaults, slots of a dynamically allocated organization whose
// deterministic failure draw lands on cycle 0 ("stuck at power-on") are
// quarantined out of the free list before the buffer is returned —
// capacity shrinks, structure stays sound.
func NewBuffer(kind BufferKind, outputs, capacity int, opts ...Option) (Buffer, error) {
	b, err := buffer.New(buffer.Config{Kind: kind, NumOutputs: outputs, Capacity: capacity})
	if err != nil {
		return nil, err
	}
	op := applyOptions(opts)
	if op.faultsSet {
		if err := quarantineStuckAtBirth(b, op.faults); err != nil {
			return nil, err
		}
	}
	if op.observer == nil {
		return b, nil
	}
	r := op.observer.Registry()
	return buffer.Instrument(b, &buffer.Metrics{
		Accepted: r.Counter(buffer.MetricAccepted),
		Rejected: r.Counter(buffer.MetricRejected),
		Popped:   r.Counter(buffer.MetricPopped),
	}), nil
}

// quarantineStuckAtBirth applies a fault config to a standalone buffer:
// slots whose deterministic failure cycle is 0 are taken out of service
// immediately. Organizations without a slot pool have nothing to
// quarantine and are returned unchanged.
func quarantineStuckAtBirth(b Buffer, fc FaultConfig) error {
	if err := fc.Validate(); err != nil {
		return err
	}
	q, ok := b.(interface{ QuarantineSlot(int) bool })
	if !ok || fc.SlotStuckRate <= 0 {
		return nil
	}
	inj, err := fault.NewInjector(fc)
	if err != nil {
		return err
	}
	site := fault.BufferSite(0, 0, 0)
	for sl := 0; sl < b.Capacity(); sl++ {
		if inj.SlotFailCycle(site, sl) == 0 {
			q.QuarantineSlot(sl)
		}
	}
	return nil
}

// NewDAMQBuffer constructs the concrete DAMQ type directly.
func NewDAMQBuffer(outputs, capacity int) *DAMQBuffer {
	return buffer.NewDAMQ(outputs, capacity)
}

// ArbitrationPolicy selects the crossbar fairness scheme.
type ArbitrationPolicy = arbiter.Policy

// Arbitration policies (Section 4.2 of the paper).
const (
	DumbArbitration  = arbiter.Dumb
	SmartArbitration = arbiter.Smart
)

// ParseArbitrationPolicy converts "smart" or "dumb" (any case) to a
// policy. Unknown names return an error wrapping ErrBadPolicy.
func ParseArbitrationPolicy(s string) (ArbitrationPolicy, error) { return arbiter.ParsePolicy(s) }

// Protocol is the network flow-control discipline.
type Protocol = sw.Protocol

// Flow-control protocols.
const (
	Discarding = sw.Discarding
	Blocking   = sw.Blocking
)

// ParseProtocol converts "blocking" or "discarding" (any case) to a
// protocol. Unknown names return an error wrapping ErrBadProtocol.
func ParseProtocol(s string) (Protocol, error) { return sw.ParseProtocol(s) }

// Switch is one n×n switch (buffers + crossbar + arbiter).
type Switch = sw.Switch

// SwitchConfig parameterizes a switch. It is owned by this package: the
// previous release re-exported the internal sw.Config directly, which
// let the facade's surface drift with internal refactors; struct
// literals written against the old alias compile unchanged.
type SwitchConfig struct {
	Ports      int // n: number of input ports and of output ports
	BufferKind BufferKind
	Capacity   int // slots per input buffer
	Policy     ArbitrationPolicy
	// SharedPool pools all input ports' storage into one Ports*Capacity
	// slot group. Requires a pooled kind (DAMQ, DAFC, DT, FB, BSHARE).
	SharedPool bool
	// Sharing tunes the modern admission policies (DT/FB/BSHARE).
	Sharing BufferSharing
}

// Validate checks the config; failures wrap the ErrBad* sentinels.
func (cfg SwitchConfig) Validate() error { return cfg.internal().Validate() }

func (cfg SwitchConfig) internal() sw.Config {
	return sw.Config{
		Ports:      cfg.Ports,
		BufferKind: cfg.BufferKind,
		Capacity:   cfg.Capacity,
		Policy:     cfg.Policy,
		SharedPool: cfg.SharedPool,
		Sharing:    cfg.Sharing,
	}
}

// NewSwitch builds one switch. With WithObserver its grant, conflict,
// blocked-head, and refused-offer counts register under the sw.* metrics.
func NewSwitch(cfg SwitchConfig, opts ...Option) (*Switch, error) {
	s, err := sw.New(cfg.internal())
	if err != nil {
		return nil, err
	}
	op := applyOptions(opts)
	if op.observer != nil {
		r := op.observer.Registry()
		s.SetMetrics(&sw.Metrics{
			Grants:       r.Counter(netsim.MetricGrants),
			Conflicts:    r.Counter(netsim.MetricConflicts),
			BlockedHeads: r.Counter(netsim.MetricBlockedHeads),
			OfferRefused: r.Counter(netsim.MetricOfferRefused),
		})
	}
	return s, nil
}

// DiscardProbability solves the paper's Table 2 Markov model exactly: the
// steady-state probability that a packet arriving at a 2×2 discarding
// switch with the given buffer kind and per-port slot count is discarded,
// at the given traffic level.
func DiscardProbability(kind BufferKind, slots int, load float64) (float64, error) {
	r, err := markov2x2.Solve(kind, slots, load)
	if err != nil {
		return 0, err
	}
	return r.PDiscard, nil
}

// Fault injection ----------------------------------------------------------

// FaultConfig parameterizes deterministic fault injection (WithFaults).
// Rates are per-site-per-cycle probabilities; zero rates everywhere mean
// faults are off. Seed 0 derives the fault seed from the simulation seed
// where one exists.
type FaultConfig = fault.Config

// FaultKind identifies one class of injected fault.
type FaultKind = fault.Kind

// The fault classes.
const (
	FaultSlotStuck     = fault.SlotStuck     // buffer slot goes permanently out of service
	FaultWireCorrupt   = fault.WireCorrupt   // single-bit flip on a chip wire byte
	FaultLinkTransient = fault.LinkTransient // network link drops this cycle's packet
	FaultLinkDead      = fault.LinkDead      // network link fails permanently
)

// FaultKinds lists all fault classes.
func FaultKinds() []FaultKind { return fault.Kinds() }

// ParseFaultKind converts a name such as "slot-stuck" (case-insensitive)
// to its kind. Unknown names return an error wrapping ErrBadKind that
// lists the valid names.
func ParseFaultKind(s string) (FaultKind, error) { return fault.ParseKind(s) }

// ParseFaultSpec parses a CLI-style comma-separated fault spec such as
// "slot-stuck=1e-5,link-transient=1e-4,seed=7,retries=4" and validates
// the result — the format behind the CLIs' -faults flag.
func ParseFaultSpec(s string) (FaultConfig, error) { return fault.ParseSpec(s) }

// Network simulation -----------------------------------------------------

// NetworkConfig parameterizes an Omega-network simulation (64×64 of 4×4
// switches by default).
type NetworkConfig = netsim.Config

// TrafficSpec describes the workload of a network simulation.
type TrafficSpec = netsim.TrafficSpec

// Traffic kinds.
const (
	UniformTraffic     = netsim.Uniform
	HotSpotTraffic     = netsim.HotSpot
	PermutationTraffic = netsim.Permutation
)

// NetworkResult aggregates a run's measurements.
type NetworkResult = netsim.Result

// NetworkSim is an instantiated network; use Run or Step.
type NetworkSim = netsim.Sim

// NewNetwork builds an Omega-network simulation. WithSeed overrides
// cfg.Seed; WithObserver attaches per-cycle probes (per-stage occupancy,
// per-queue depth, discard/block causes, latency histograms) whose
// presence does not change the simulated results. WithWorkers shards
// this one run's stepping across cores (see NetworkConfig.Workers);
// results are byte-identical at any worker count, and a sharded Sim
// should be Closed when abandoned to release its worker goroutines.
func NewNetwork(cfg NetworkConfig, opts ...Option) (*NetworkSim, error) {
	op := applyOptions(opts)
	if op.seedSet {
		cfg.Seed = op.seed
	}
	if op.workersSet {
		if op.workers <= 0 {
			cfg.Workers = -1 // option semantics: 0 = GOMAXPROCS
		} else {
			cfg.Workers = op.workers
		}
	}
	sim, err := netsim.New(cfg)
	if err != nil {
		return nil, err
	}
	if op.faultsSet {
		if err := sim.SetFaults(op.faults); err != nil {
			return nil, err
		}
	}
	if op.observer != nil {
		sim.SetObserver(op.observer)
	}
	return sim, nil
}

// RunNetwork builds and runs a simulation in one call, honoring the same
// options as NewNetwork.
func RunNetwork(cfg NetworkConfig, opts ...Option) (*NetworkResult, error) {
	sim, err := NewNetwork(cfg, opts...)
	if err != nil {
		return nil, err
	}
	defer sim.Close()
	return sim.Run(), nil
}

// RunNetworkCtx is RunNetwork with cooperative cancellation: on ctx
// cancellation it stops at the next stride boundary and returns the
// partial result (Config.MeasureCycles rewritten to the cycles actually
// measured) together with ctx.Err(), so callers can report interrupted
// runs honestly instead of discarding them.
func RunNetworkCtx(ctx context.Context, cfg NetworkConfig, opts ...Option) (*NetworkResult, error) {
	sim, err := NewNetwork(cfg, opts...)
	if err != nil {
		return nil, err
	}
	defer sim.Close()
	return sim.RunCtx(ctx)
}

// Checkpoint / restore ----------------------------------------------------

// Checkpoint serializes sim's complete mid-run state — resolved config,
// every buffered packet, arbiter and RNG state, fault-schedule progress,
// and (when observed) instrument values — as a versioned, checksummed
// binary stream. Restoring the stream and continuing produces results
// byte-identical to the uninterrupted run. Cold path: call it between
// cycles (Step returns / Run not in progress), never concurrently with
// stepping.
func Checkpoint(sim *NetworkSim, w io.Writer) error { return sim.Checkpoint(w) }

// Restore rebuilds a simulation from a Checkpoint stream at the exact
// cycle it was captured. WithWorkers overrides the checkpointed worker
// count — the shard partition is a pure function of topology and seed,
// so a checkpoint taken at any worker count restores at any other with
// byte-identical results. WithObserver re-attaches an observer whose
// instruments resume from the checkpointed values. Any other option is
// rejected: the seed, fault schedule, and run length are part of the
// captured state. Corrupted or truncated input yields an error wrapping
// ErrBadCheckpoint (ErrCheckpointVersion for a version mismatch), never
// a panic.
func Restore(r io.Reader, opts ...Option) (*NetworkSim, error) {
	op := applyOptions(opts)
	if op.seedSet || op.faultsSet || op.scaleSet {
		return nil, fmt.Errorf("damq: Restore accepts only WithWorkers and WithObserver: %w", ErrBadCheckpoint)
	}
	var ro netsim.RestoreOpts
	if op.workersSet {
		ro.WorkersSet = true
		if op.workers <= 0 {
			ro.Workers = -1 // option semantics: 0 = GOMAXPROCS
		} else {
			ro.Workers = op.workers
		}
	}
	sim, err := netsim.RestoreSimOpts(r, ro)
	if err != nil {
		return nil, err
	}
	if op.observer != nil {
		sim.SetObserver(op.observer)
	}
	return sim, nil
}

// Observability -----------------------------------------------------------

// Observer collects metrics from the simulations it is attached to (via
// WithObserver): an integer counter/gauge/histogram registry updated
// allocation-free on simulation hot paths, plus an optional per-interval
// time series (SetInterval). One observer should instrument one
// simulation; attaching it never changes simulated results.
type Observer = obs.Observer

// MetricsSnapshot is the stable JSON export shape of an observer's
// registry — what the CLIs write for -metrics.
type MetricsSnapshot = obs.Snapshot

// MetricsHistogram is one exported histogram inside a snapshot.
type MetricsHistogram = obs.HistogramSnapshot

// MetricsInterval is one cumulative point of the optional time series.
type MetricsInterval = obs.IntervalRecord

// NewObserver returns an empty observer ready to pass to WithObserver.
func NewObserver() *Observer { return obs.NewObserver() }

// DecodeMetrics parses a snapshot previously written by
// MetricsSnapshot.Encode (e.g. a -metrics file).
func DecodeMetrics(raw []byte) (*MetricsSnapshot, error) { return obs.DecodeSnapshot(raw) }

// ValidateMetricsJSON checks that raw is a well-formed network metrics
// snapshot: all packet and arbitration counters present, per-stage
// occupancy and level gauges present, and the injection-latency
// histogram total equal to the delivered count.
func ValidateMetricsJSON(raw []byte) error { return netsim.ValidateSnapshotJSON(raw) }

// Chip-level model --------------------------------------------------------

// Chip is the cycle/phase-accurate ComCoBB model (five port pairs around
// a 5×5 crossbar, DAMQ buffers with 8-byte slots).
type Chip = comcobb.Chip

// ChipConfig parameterizes a chip.
type ChipConfig = comcobb.Config

// ChipTrace records cycle/phase events for timing analysis.
type ChipTrace = comcobb.Trace

// Route is a virtual-circuit table entry.
type Route = comcobb.Route

// ChipNetwork ticks multiple connected chips in lockstep.
type ChipNetwork = comcobb.Network

// NewChip builds a chip. WithObserver registers the chip.* cycle, grant,
// and port counters (equivalent to setting cfg.Observer directly), and
// WithFaults arms wire-byte corruption with parity detection and NACK
// (equivalent to setting cfg.Faults). Explicit config fields win over
// options.
func NewChip(cfg ChipConfig, opts ...Option) *Chip {
	op := applyOptions(opts)
	if op.observer != nil && cfg.Observer == nil {
		cfg.Observer = op.observer
	}
	if op.faultsSet && !cfg.Faults.Enabled() {
		cfg.Faults = op.faults
	}
	return comcobb.NewChip(cfg)
}

// ConnectChips wires output port out of chip a to input port in of b.
func ConnectChips(a *Chip, out int, b *Chip, in int) { comcobb.Connect(a, out, b, in) }

// NewChipNetwork groups chips for lockstep ticking.
func NewChipNetwork(chips ...*Chip) *ChipNetwork { return comcobb.NewNetwork(chips...) }

// ChipLink is one unidirectional byte-serial wire between chips (or
// between a testbench driver and a chip).
type ChipLink = comcobb.Link

// ChipDriver feeds scripted packets into a chip link, standing in for an
// upstream node.
type ChipDriver = comcobb.Driver

// NewChipDriver attaches a driver to a link. WithObserver registers the
// driver's retransmit instruments (fault.driver.*); WithFaults applies
// the config's retry policy (SetRetryPolicy spells it out explicitly).
func NewChipDriver(link *ChipLink, opts ...Option) *ChipDriver {
	d := comcobb.NewDriver(link)
	op := applyOptions(opts)
	if op.faultsSet && op.faults.RetryLimit > 0 {
		d.SetRetryPolicy(op.faults.RetryLimit, op.faults.RetryBackoff)
	}
	if op.observer != nil {
		d.ObserveFaults(op.observer)
	}
	return d
}

// DecodedPacket is a packet recovered from a chip output capture.
type DecodedPacket = comcobb.DecodedPacket

// Experiments --------------------------------------------------------------

// ExperimentScale tunes how long experiment simulations run.
type ExperimentScale = experiments.Scale

// Predefined scales.
var (
	FullScale  = experiments.Full
	QuickScale = experiments.Quick
)

// ReproduceTable1 measures chip-level cut-through turn-around (Table 1).
func ReproduceTable1() (*experiments.Table1Result, error) { return experiments.Table1() }

// ReproduceTable2 solves the full Markov table (Table 2), one chain per
// worker goroutine (WithWorkers bounds the count; 0 = GOMAXPROCS).
func ReproduceTable2(opts ...Option) (*experiments.Table2Result, error) {
	return experiments.Table2(nil, applyOptions(opts).workers)
}

// ReproduceTable3 runs the discarding-network experiment (Table 3).
// Options (WithScale, WithSeed, WithWorkers) refine sc; the same applies
// to every Reproduce*/Ablate* runner below.
func ReproduceTable3(sc ExperimentScale, opts ...Option) (*experiments.Table3Result, error) {
	return experiments.Table3(applyOptions(opts).scaleFor(sc))
}

// ReproduceTable4 runs the blocking-network latency table (Table 4).
func ReproduceTable4(sc ExperimentScale, opts ...Option) ([]experiments.LatencyRow, error) {
	return experiments.Table4(applyOptions(opts).scaleFor(sc))
}

// ReproduceTable5 varies slots per buffer for FIFO and DAMQ (Table 5).
func ReproduceTable5(sc ExperimentScale, opts ...Option) ([]experiments.LatencyRow, error) {
	return experiments.Table5(applyOptions(opts).scaleFor(sc))
}

// ReproduceTable6 runs the hot-spot experiment (Table 6).
func ReproduceTable6(sc ExperimentScale, opts ...Option) ([]experiments.Table6Row, error) {
	return experiments.Table6(applyOptions(opts).scaleFor(sc))
}

// Figure3Series is one latency-vs-throughput curve from a load sweep.
type Figure3Series = stats.Series

// Figure3Point is one measurement on a curve.
type Figure3Point = stats.Point

// ReproduceFigure3 sweeps offered load and returns latency/throughput
// series (Figure 3).
func ReproduceFigure3(kinds []BufferKind, capacity int, sc ExperimentScale, opts ...Option) ([]Figure3Series, error) {
	return experiments.Figure3(kinds, capacity, nil, applyOptions(opts).scaleFor(sc))
}

// ModernVariant names one sharing configuration of the 1988-vs-2026
// comparison: a buffer kind, whether the switch's inputs pool their
// storage, and the policy knobs.
type ModernVariant = experiments.ModernVariant

// ReproduceModern reruns the Figure 3 sweep over modern shared-buffer
// admission policies (DT, FB, BSHARE, with and without a switch-wide
// shared pool) against the 1988 DAMQ baseline. nil variants selects the
// default comparison set (experiments.ModernVariants).
func ReproduceModern(variants []ModernVariant, capacity int, sc ExperimentScale, opts ...Option) ([]Figure3Series, error) {
	return experiments.Modern(variants, capacity, nil, applyOptions(opts).scaleFor(sc))
}

// RenderModern formats the 1988-vs-2026 sweep as a summary table plus the
// per-variant curves and ASCII plot.
func RenderModern(series []Figure3Series) string { return experiments.RenderModern(series) }

// ReproduceVarLen runs the paper's variable-length-packet outlook as an
// experiment: fixed 1-slot vs uniform 1-4-slot packets at equal storage.
func ReproduceVarLen(sc ExperimentScale, opts ...Option) ([]experiments.VarLenRow, error) {
	return experiments.VarLen(applyOptions(opts).scaleFor(sc))
}

// ReproduceAsync runs the asynchronous event-driven network experiment
// (the paper's closing conjecture: variable-length packets arriving
// asynchronously).
func ReproduceAsync(sc ExperimentScale, opts ...Option) ([]experiments.AsyncRow, error) {
	return experiments.Async(applyOptions(opts).scaleFor(sc))
}

// ReproduceFaultCurve sweeps injected link-fault rates on the discarding
// network and reports each buffer kind's graceful-degradation curve
// (delivered throughput, faulted-discard percentage, quarantined slots).
// nil kinds defaults to FIFO vs DAMQ, nil rates to the standard sweep.
func ReproduceFaultCurve(kinds []BufferKind, rates []float64, sc ExperimentScale, opts ...Option) ([]experiments.FaultCurveRow, error) {
	return experiments.FaultCurve(kinds, rates, applyOptions(opts).scaleFor(sc))
}

// AblateConnectivity quantifies what full read connectivity buys on top
// of dynamic allocation (the DAFC variant).
func AblateConnectivity(sc ExperimentScale, opts ...Option) ([]experiments.ConnectivityRow, error) {
	return experiments.AblationConnectivity(applyOptions(opts).scaleFor(sc))
}

// AblateArbitration compares smart vs dumb round-robin arbitration.
func AblateArbitration(sc ExperimentScale, opts ...Option) ([]experiments.ArbitrationRow, error) {
	return experiments.AblationArbitration(applyOptions(opts).scaleFor(sc))
}

// AblateBurstiness compares independent packets against multi-packet
// message traffic at equal offered load.
func AblateBurstiness(sc ExperimentScale, opts ...Option) ([]experiments.BurstRow, error) {
	return experiments.AblationBurstiness(applyOptions(opts).scaleFor(sc))
}

// AsyncNetworkConfig parameterizes the asynchronous event-driven
// simulator directly.
type AsyncNetworkConfig = eventsim.Config

// AsyncNetworkResult aggregates an asynchronous run.
type AsyncNetworkResult = eventsim.Result

// RunAsyncNetwork builds and runs an asynchronous network simulation.
func RunAsyncNetwork(cfg AsyncNetworkConfig) (*AsyncNetworkResult, error) {
	sim, err := eventsim.New(cfg)
	if err != nil {
		return nil, err
	}
	return sim.Run(), nil
}

// ChipOmegaNetwork is an Omega network built from cycle-accurate ComCoBB
// chips (byte-level simulation; for validation, not capacity planning).
type ChipOmegaNetwork = chipnet.Network

// ChipOmegaConfig parameterizes a chip-level network.
type ChipOmegaConfig = chipnet.Config

// NewChipOmegaNetwork builds an Omega network of ComCoBB chips.
func NewChipOmegaNetwork(cfg ChipOmegaConfig) (*ChipOmegaNetwork, error) {
	return chipnet.New(cfg)
}

// RenderFigure3 formats series as a text table plus an ASCII plot.
func RenderFigure3(series []Figure3Series) string { return experiments.RenderFigure3(series) }

// RenderFigure3SVG renders series as a standalone SVG figure.
func RenderFigure3SVG(series []Figure3Series, title string) string {
	return plot.SVG(series, plot.Options{Title: title})
}

// BurstyTraffic generates multi-packet messages (geometric length, one
// destination per message) — the workload shape of the ComCoBB's
// message/virtual-circuit design.
const BurstyTraffic = netsim.Bursty
