// Hot-spot traffic: the paper's Table 6 scenario via the public API.
//
// With 5% of all packets addressed to a single memory module, the tree
// of switches feeding that module saturates ("tree saturation", Pfister &
// Norton) and every buffer organization — including the DAMQ — hits the
// same throughput ceiling of ~0.24. This example reproduces that and
// shows the per-class latency split that explains it: hot packets crawl
// while cold packets still move, until the tree fills.
//
//	go run ./examples/hotspot
package main

import (
	"fmt"
	"log"

	"damq"
)

func main() {
	fmt.Println("64x64 Omega network, 5% hot-spot traffic, 4 slots/buffer, blocking protocol")
	fmt.Println()
	fmt.Printf("%-8s %22s %28s\n", "buffer", "throughput@offered=1.0", "hot vs cold latency @ 0.20")

	for _, kind := range []damq.BufferKind{damq.FIFO, damq.SAMQ, damq.SAFC, damq.DAMQ} {
		// Saturation: sources always backlogged.
		sat, err := damq.RunNetwork(hotCfg(kind, 1.0))
		if err != nil {
			log.Fatal(err)
		}
		// Moderate load: measure the class split.
		mid, err := damq.RunNetwork(hotCfg(kind, 0.20))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8v %22.3f %14.1f / %-8.1f\n",
			kind, sat.Throughput(), mid.HotLatency.Mean(), mid.ColdLatency.Mean())
	}

	fmt.Println()
	fmt.Println("All four organizations saturate at ~0.24: the hot module's link is the")
	fmt.Println("bottleneck (0.05*64 + 0.95 ≈ 4.15x its capacity), so buffer structure")
	fmt.Println("cannot help — the paper's argument for a separate combining network.")
}

func hotCfg(kind damq.BufferKind, load float64) damq.NetworkConfig {
	return damq.NetworkConfig{
		BufferKind: kind,
		Capacity:   4,
		Policy:     damq.SmartArbitration,
		Protocol:   damq.Blocking,
		Traffic: damq.TrafficSpec{
			Kind:        damq.HotSpotTraffic,
			Load:        load,
			HotFraction: 0.05,
			HotDest:     0,
		},
		WarmupCycles:  2000,
		MeasureCycles: 6000,
		Seed:          7,
	}
}
