// Omega-network sweep: Figure 3 of the paper via the public API.
//
// Sweeps offered load on a 64×64 Omega network of 4×4 switches (blocking
// protocol, uniform traffic, four slots per input buffer) for all four
// buffer organizations, prints each curve, and renders the ASCII version
// of the paper's Figure 3 — the hockey-stick whose wall the DAMQ pushes
// ~40% to the right.
//
//	go run ./examples/omega_uniform
package main

import (
	"fmt"
	"log"

	"damq"
)

func main() {
	kinds := []damq.BufferKind{damq.FIFO, damq.SAMQ, damq.SAFC, damq.DAMQ}

	series, err := damq.ReproduceFigure3(kinds, 4, damq.QuickScale)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("64x64 Omega network, 4x4 switches, 4 slots/input buffer, blocking protocol")
	fmt.Println()
	for _, s := range series {
		sat := s.SaturationThroughput()
		lat, _ := s.LatencyAt(0.4)
		fmt.Printf("%-8s saturation throughput %.2f   latency at 0.40 load %6.1f clocks\n",
			s.Name, sat, lat)
	}

	fmt.Println()
	fmt.Print(damq.RenderFigure3(series))

	// The number the paper leads with: DAMQ vs FIFO saturation.
	var fifoSat, damqSat float64
	for _, s := range series {
		switch s.Name {
		case "FIFO/4":
			fifoSat = s.SaturationThroughput()
		case "DAMQ/4":
			damqSat = s.SaturationThroughput()
		}
	}
	fmt.Printf("\nDAMQ saturates %.0f%% higher than FIFO (paper: ~40%%)\n",
		100*(damqSat/fifoSat-1))
}
