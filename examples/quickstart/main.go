// Quickstart: the DAMQ buffer in isolation.
//
// This example shows the property that gives the dynamically allocated
// multi-queue buffer its edge over a FIFO: packets for idle output ports
// are never stuck behind packets for busy ones, while the whole slot pool
// remains available to any destination.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"damq"
)

func main() {
	// A buffer for one input port of a 4x4 switch, 8 storage slots.
	buf := damq.NewDAMQBuffer(4, 8)

	// Three packets arrive in order: two for output 0, one for output 2.
	// (OutPort is what the switch's router assigned; Slots is storage
	// footprint — variable-length packets take several slots.)
	first := &damq.Packet{ID: 1, Dest: 0, OutPort: 0, Slots: 2}
	second := &damq.Packet{ID: 2, Dest: 0, OutPort: 0, Slots: 1}
	third := &damq.Packet{ID: 3, Dest: 2, OutPort: 2, Slots: 4}
	for _, p := range []*damq.Packet{first, second, third} {
		if err := buf.Accept(p); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("buffered %d packets; %d of %d slots free\n",
		buf.Len(), buf.Free(), buf.Capacity())

	// Output 0 is busy elsewhere. With a FIFO, packet 3 would be blocked
	// behind packets 1 and 2 (head-of-line blocking). The DAMQ serves
	// output 2 immediately:
	if p := buf.Pop(2); p != nil {
		fmt.Printf("output 2 idle -> transmitted %v ahead of older traffic\n", p)
	}

	// Queues are FIFO per output: packets 1 and 2 leave in arrival order.
	fmt.Printf("output 0 drains in order: %v, then %v\n", buf.Pop(0), buf.Pop(0))

	// The slot pool is healthy (linked lists intact, slot conservation
	// exact) — the same check the test suite runs after random soaks.
	if err := buf.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("invariants OK; %d slots free again\n", buf.Free())

	// The same API runs the paper's exact Markov analysis. Compare a
	// 3-slot DAMQ to a 6-slot FIFO at 90% load (the paper's headline
	// Table 2 observation: the small DAMQ wins).
	damq3, err := damq.DiscardProbability(damq.DAMQ, 3, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	fifo6, err := damq.DiscardProbability(damq.FIFO, 6, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(discard) at 90%% load: DAMQ with 3 slots %.4f vs FIFO with 6 slots %.4f\n",
		damq3, fifo6)
}
