// A multistage interconnection network built from real (simulated) chips.
//
// The paper notes that "an almost identical design can be used for DAMQ
// buffers in a switch of a multistage interconnection network". This
// example takes that literally: it wires 8 cycle-accurate ComCoBB chips
// into a 16×16 Omega network and moves every byte through synchronizers,
// routers, slot RAMs and crossbars. One packet crosses an idle network in
// 4 clock cycles per hop (Table 1's turn-around), and a full permutation
// load drains with per-source FIFO order intact.
//
//	go run ./examples/chip_network
package main

import (
	"fmt"
	"log"

	"damq"
)

func main() {
	net, err := damq.NewChipOmegaNetwork(damq.ChipOmegaConfig{Inputs: 16, Trace: true})
	if err != nil {
		log.Fatal(err)
	}
	top := net.Topology()
	fmt.Printf("16x16 Omega network: %d stages x %d ComCoBB chips, byte-level simulation\n\n",
		top.Stages(), top.SwitchesPerStage())

	// One packet, idle network: watch the cut-through.
	if err := net.Send(3, 12, []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x11, 0x22, 0x33}, 0); err != nil {
		log.Fatal(err)
	}
	net.Run(40)
	pkts := net.Delivered(12)
	fmt.Printf("single packet delivered to output 12: %d packet(s), payload %x\n",
		len(pkts), pkts[0].Data)

	// Per-stage turn-around from the chip traces.
	for s := 0; s < top.Stages(); s++ {
		for i := 0; i < top.SwitchesPerStage(); i++ {
			tr := net.Chip(s, i).Trace()
			var in, out int64 = -1, -1
			for _, e := range tr.Events {
				if e.Msg == "start bit detected; synchronizer armed" && in < 0 {
					in = e.Cycle
				}
				if e.Msg == "start bit transmitted" && out < 0 {
					out = e.Cycle
				}
			}
			if in >= 0 && out >= 0 {
				fmt.Printf("  stage %d chip %d: start bit in at cycle %2d, out at cycle %2d (turn-around %d)\n",
					s, i, in, out, out-in)
			}
		}
	}

	// Now a full shifted permutation: 16 packets at once.
	for src := 0; src < 16; src++ {
		if err := net.Send(src, (src+5)%16, []byte{byte(src), 1, 2, 3}, 0); err != nil {
			log.Fatal(err)
		}
	}
	net.Run(300)
	total := 0
	for d := 0; d < 16; d++ {
		total += len(net.Delivered(d))
	}
	fmt.Printf("\npermutation load: %d of 17 packets delivered after %d cycles\n", total, net.Cycle())
}
