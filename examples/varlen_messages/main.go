// Variable-length packets and message traffic: the paper's Section 5
// outlook, quantified.
//
// The paper concludes: "We believe that the DAMQ buffer will outperform
// its competition by an even wider margin for the more realistic case of
// variable length packets". This example runs that case on the Omega
// network — fixed single-slot packets vs 1-4-slot packets at the same
// storage — and adds message-structured (bursty) traffic, the workload
// shape the ComCoBB's multi-packet messages imply.
//
//	go run ./examples/varlen_messages
package main

import (
	"fmt"
	"log"

	"damq"
)

func main() {
	fmt.Println("Variable-length packets (blocking, 8 slots/buffer, offered load 1.0)")
	fmt.Printf("%-8s %18s %18s %10s\n", "buffer", "fixed sat thr", "varlen sat thr", "retained")
	type satPair struct{ fixed, varlen float64 }
	sats := map[damq.BufferKind]satPair{}
	for _, kind := range []damq.BufferKind{damq.FIFO, damq.DAMQ} {
		fixed := run(kind, damq.TrafficSpec{Kind: damq.UniformTraffic, Load: 1.0}, 8)
		varlen := run(kind, damq.TrafficSpec{
			Kind: damq.UniformTraffic, Load: 1.0, MinSlots: 1, MaxSlots: 4,
		}, 8)
		sats[kind] = satPair{fixed.Throughput(), varlen.Throughput()}
		fmt.Printf("%-8v %18.3f %18.3f %9.0f%%\n", kind,
			fixed.Throughput(), varlen.Throughput(),
			100*varlen.Throughput()/fixed.Throughput())
	}
	f, d := sats[damq.FIFO], sats[damq.DAMQ]
	fmt.Printf("\nDAMQ/FIFO advantage: %.2fx fixed -> %.2fx variable-length\n",
		d.fixed/f.fixed, d.varlen/f.varlen)

	fmt.Println("\nMessage traffic (mean 4-packet bursts to one destination, 4 slots/buffer)")
	fmt.Printf("%-8s %16s %16s\n", "buffer", "latency @ 0.4", "sat throughput")
	for _, kind := range []damq.BufferKind{damq.FIFO, damq.SAMQ, damq.SAFC, damq.DAMQ} {
		mid := run(kind, damq.TrafficSpec{Kind: damq.BurstyTraffic, Load: 0.4, MeanBurst: 4}, 4)
		sat := run(kind, damq.TrafficSpec{Kind: damq.BurstyTraffic, Load: 1.0, MeanBurst: 4}, 4)
		fmt.Printf("%-8v %16.1f %16.3f\n", kind, mid.LatencyFromBorn.Mean(), sat.Throughput())
	}
	fmt.Println("\nBursts concentrate packets on one destination queue; designs that")
	fmt.Println("segregate per destination (DAMQ) keep the rest of the switch moving.")
}

func run(kind damq.BufferKind, spec damq.TrafficSpec, capacity int) *damq.NetworkResult {
	res, err := damq.RunNetwork(damq.NetworkConfig{
		BufferKind:    kind,
		Capacity:      capacity,
		Policy:        damq.SmartArbitration,
		Protocol:      damq.Blocking,
		Traffic:       spec,
		WarmupCycles:  1500,
		MeasureCycles: 6000,
		Seed:          5,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}
