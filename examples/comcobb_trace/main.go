// Chip-level virtual cut-through: the paper's Table 1, live.
//
// Builds a two-chip ComCoBB system, programs virtual circuits, sends one
// message of three variable-length packets through both hops, and prints
// the phase-accurate event schedule. Each idle hop turns the packet
// around in exactly four clock cycles, independent of length.
//
//	go run ./examples/comcobb_trace
package main

import (
	"fmt"
	"log"

	"damq"
)

func main() {
	// Chip A: input 0 carries circuit 0x10 toward output 2.
	ta := &damq.ChipTrace{}
	a := damq.NewChip(damq.ChipConfig{Trace: ta})
	must(a.In(0).Router().Set(0x10, damq.Route{Out: 2, NewHeader: 0x20}))

	// Chip B: input 1 (fed by A's output 2) carries 0x20 to the local
	// processor (port 4).
	tb := &damq.ChipTrace{}
	b := damq.NewChip(damq.ChipConfig{Trace: tb})
	must(b.In(1).Router().Set(0x20, damq.Route{Out: 4, NewHeader: 0x20}))

	damq.ConnectChips(a, 2, b, 1)
	net := damq.NewChipNetwork(a, b)

	// A three-packet message on circuit 0x10: 32 + 32 + 9 bytes (only the
	// last packet of a message may be short).
	drv := damq.NewChipDriver(a.InLink(0))
	drv.Queue(0x10, pattern(32, 0x00), 0)
	drv.Queue(0x10, pattern(32, 0x40), 0)
	drv.Queue(0x10, pattern(9, 0x80), 0)

	for cycle := 0; cycle < 200; cycle++ {
		drv.Tick()
		net.Tick()
	}

	fmt.Println("Chip A events (first packet):")
	printFirstPacket(ta)
	fmt.Println("\nChip B events (first packet):")
	printFirstPacket(tb)

	delivered := b.Delivered(4)
	fmt.Printf("\nprocessor at chip B received %d packets:", len(delivered))
	for _, p := range delivered {
		fmt.Printf(" [hdr %#02x, %d bytes]", p.Header, len(p.Data))
	}
	fmt.Println()

	inA, _ := ta.Find("in[0]", "start bit detected; synchronizer armed")
	outA, _ := ta.Find("out[2]", "start bit transmitted")
	inB, _ := tb.Find("in[1]", "start bit detected; synchronizer armed")
	outB, _ := tb.Find("out[4]", "start bit transmitted")
	fmt.Printf("\nturn-around: chip A %d cycles, chip B %d cycles (paper Table 1: 4)\n",
		outA.Cycle-inA.Cycle, outB.Cycle-inB.Cycle)
}

// printFirstPacket prints the first ~10 events — the Table 1 window.
func printFirstPacket(t *damq.ChipTrace) {
	for i, e := range t.Events {
		if i >= 10 {
			break
		}
		fmt.Println("  ", e)
	}
}

func pattern(n int, base byte) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = base + byte(i)
	}
	return p
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
