package damq_test

import (
	"testing"

	"damq"
)

// TestQuickstartFlow exercises the facade the way README's quickstart
// does: build a DAMQ buffer, demonstrate non-FIFO forwarding, verify
// invariants.
func TestQuickstartFlow(t *testing.T) {
	buf := damq.NewDAMQBuffer(4, 8)
	a := &damq.Packet{ID: 1, Dest: 0, OutPort: 0, Slots: 1}
	b := &damq.Packet{ID: 2, Dest: 2, OutPort: 2, Slots: 1}
	if err := buf.Accept(a); err != nil {
		t.Fatal(err)
	}
	if err := buf.Accept(b); err != nil {
		t.Fatal(err)
	}
	// b overtakes a: output 2 is served even though a arrived first.
	if got := buf.Pop(2); got != b {
		t.Fatalf("Pop(2) = %v", got)
	}
	if err := buf.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNewBufferAllKinds(t *testing.T) {
	for _, kind := range damq.BufferKinds() {
		buf, err := damq.NewBuffer(kind, 4, 8)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if buf.Kind() != kind {
			t.Fatalf("%v: wrong kind", kind)
		}
	}
	if _, err := damq.NewBuffer(damq.SAMQ, 4, 7); err == nil {
		t.Fatal("SAMQ accepted indivisible capacity")
	}
}

func TestParseBufferKind(t *testing.T) {
	k, err := damq.ParseBufferKind("DAMQ")
	if err != nil || k != damq.DAMQ {
		t.Fatalf("parse: %v %v", k, err)
	}
}

func TestDiscardProbabilityFacade(t *testing.T) {
	p, err := damq.DiscardProbability(damq.DAMQ, 4, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 || p > 0.05 {
		t.Fatalf("DAMQ/4 @ 90%% = %v, expected ~0.012", p)
	}
	if _, err := damq.DiscardProbability(damq.SAMQ, 3, 0.9); err == nil {
		t.Fatal("accepted odd SAMQ slots")
	}
}

func TestRunNetworkFacade(t *testing.T) {
	res, err := damq.RunNetwork(damq.NetworkConfig{
		BufferKind:    damq.DAMQ,
		Capacity:      4,
		Policy:        damq.SmartArbitration,
		Protocol:      damq.Blocking,
		Traffic:       damq.TrafficSpec{Kind: damq.UniformTraffic, Load: 0.3},
		WarmupCycles:  200,
		MeasureCycles: 1000,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput() < 0.25 || res.Throughput() > 0.35 {
		t.Fatalf("throughput = %v", res.Throughput())
	}
}

func TestChipFacade(t *testing.T) {
	chip := damq.NewChip(damq.ChipConfig{Trace: &damq.ChipTrace{}})
	if err := chip.In(0).Router().Set(0x01, damq.Route{Out: 1, NewHeader: 0x02}); err != nil {
		t.Fatal(err)
	}
	// Two-chip mini network through the facade.
	far := damq.NewChip(damq.ChipConfig{})
	if err := far.In(0).Router().Set(0x02, damq.Route{Out: 3, NewHeader: 0x02}); err != nil {
		t.Fatal(err)
	}
	damq.ConnectChips(chip, 1, far, 0)
	net := damq.NewChipNetwork(chip, far)
	net.Run(5)
	if chip.Cycle() != 5 || far.Cycle() != 5 {
		t.Fatal("network tick did not advance both chips")
	}
}

func TestSwitchFacade(t *testing.T) {
	s, err := damq.NewSwitch(damq.SwitchConfig{
		Ports: 4, BufferKind: damq.DAMQ, Capacity: 4, Policy: damq.SmartArbitration,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Ports() != 4 {
		t.Fatal("wrong port count")
	}
}

func TestReproduceTable1Facade(t *testing.T) {
	res, err := damq.ReproduceTable1()
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Lengths {
		if res.TurnAround[i] != 4 {
			t.Fatalf("turn-around %d != 4", res.TurnAround[i])
		}
	}
}
