package damq_test

import (
	"fmt"

	"damq"
)

// Example demonstrates the DAMQ buffer's defining behaviour: no
// head-of-line blocking, shared storage, per-output FIFO order.
func Example() {
	buf := damq.NewDAMQBuffer(4, 8)

	// Two packets for output 0 arrive first, then one for output 2.
	buf.Accept(&damq.Packet{ID: 1, OutPort: 0, Slots: 1})
	buf.Accept(&damq.Packet{ID: 2, OutPort: 0, Slots: 1})
	buf.Accept(&damq.Packet{ID: 3, OutPort: 2, Slots: 1})

	// Output 2 is served immediately, ahead of the older packets.
	fmt.Println("pop out2:", buf.Pop(2).ID)
	fmt.Println("pop out0:", buf.Pop(0).ID)
	fmt.Println("pop out0:", buf.Pop(0).ID)
	fmt.Println("free slots:", buf.Free())
	// Output:
	// pop out2: 3
	// pop out0: 1
	// pop out0: 2
	// free slots: 8
}

// ExampleDiscardProbability solves one cell of the paper's Table 2
// exactly: the discard probability of a 2×2 switch with DAMQ buffers.
func ExampleDiscardProbability() {
	p, err := damq.DiscardProbability(damq.DAMQ, 3, 0.90)
	if err != nil {
		panic(err)
	}
	fmt.Printf("DAMQ, 3 slots, 90%% load: %.3f\n", p)
	// Output:
	// DAMQ, 3 slots, 90% load: 0.028
}

// ExampleNewChip runs one packet through the cycle-accurate ComCoBB chip
// and reports the virtual cut-through turn-around of Table 1.
func ExampleNewChip() {
	trace := &damq.ChipTrace{}
	chip := damq.NewChip(damq.ChipConfig{Trace: trace})
	if err := chip.In(0).Router().Set(0x01, damq.Route{Out: 1, NewHeader: 0x02}); err != nil {
		panic(err)
	}
	drv := damq.NewChipDriver(chip.InLink(0))
	drv.Queue(0x01, []byte{1, 2, 3, 4, 5, 6, 7, 8}, 0)
	for i := 0; i < 40; i++ {
		drv.Tick()
		chip.Tick()
	}
	in, _ := trace.Find("in[0]", "start bit detected; synchronizer armed")
	out, _ := trace.Find("out[1]", "start bit transmitted")
	fmt.Printf("turn-around: %d cycles\n", out.Cycle-in.Cycle)
	fmt.Printf("delivered: %d packet(s)\n", len(chip.Delivered(1)))
	// Output:
	// turn-around: 4 cycles
	// delivered: 1 packet(s)
}

// ExampleRunNetwork measures a 64×64 DAMQ Omega network below
// saturation: delivered throughput equals the offered load.
func ExampleRunNetwork() {
	res, err := damq.RunNetwork(damq.NetworkConfig{
		BufferKind:    damq.DAMQ,
		Capacity:      4,
		Policy:        damq.SmartArbitration,
		Protocol:      damq.Blocking,
		Traffic:       damq.TrafficSpec{Kind: damq.UniformTraffic, Load: 0.30},
		WarmupCycles:  500,
		MeasureCycles: 4000,
		Seed:          1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("throughput: %.2f packets/input/cycle\n", res.Throughput())
	// Output:
	// throughput: 0.30 packets/input/cycle
}
