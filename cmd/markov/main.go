// Command markov reproduces the paper's Table 2: exact Markov analysis of
// 2×2 discarding switches for all four buffer organizations.
//
// Usage:
//
//	markov                 # the full table, paper layout
//	markov -kind damq -slots 3 -load 0.9   # one cell, with diagnostics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"damq"
	"damq/internal/experiments"
	"damq/internal/markov2x2"
	"damq/internal/rng"
)

func main() {
	kind := flag.String("kind", "", "buffer kind (fifo|samq|safc|damq|dafc); empty = full table")
	slots := flag.Int("slots", 4, "slots per input port")
	load := flag.Float64("load", 0.9, "traffic level in [0,1]")
	simCycles := flag.Int64("sim", 0, "also cross-check the cell by Monte-Carlo for this many cycles")
	seed := flag.Uint64("seed", 1988, "Monte-Carlo seed")
	workers := flag.Int("workers", 0, "full table: max concurrent chain solves (0 = GOMAXPROCS)")
	flag.Parse()

	if *kind == "" {
		// SIGINT/SIGTERM cancel the solve; finished rows are still
		// rendered, in the exit-130 partial-results convention the other
		// CLIs follow.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		res, total, err := experiments.Table2Ctx(ctx, nil, *workers)
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			fatal(err)
		}
		fmt.Print(res.Render())
		if err != nil {
			fmt.Fprintf(os.Stderr, "markov: interrupted at %d/%d rows; the table above covers the completed ones\n",
				len(res.Rows), total)
			os.Exit(130)
		}
		return
	}

	k, err := damq.ParseBufferKind(*kind)
	if err != nil {
		fatal(err)
	}
	r, err := markov2x2.Solve(k, *slots, *load)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("buffer        %v\n", r.Kind)
	fmt.Printf("slots/port    %d\n", r.Slots)
	fmt.Printf("traffic       %.0f%%\n", r.Load*100)
	fmt.Printf("chain states  %d\n", r.States)
	fmt.Printf("P(discard)    %.6f\n", r.PDiscard)
	fmt.Printf("throughput    %.6f packets/port/cycle\n", r.Throughput)

	if *simCycles > 0 {
		sim, err := markov2x2.Simulate(k, *slots, *load, *simCycles, rng.New(*seed))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("monte-carlo   %.6f over %d cycles (seed %d)\n",
			sim.PDiscard(), *simCycles, *seed)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "markov:", err)
	os.Exit(1)
}
