// Command omegasim runs the paper's Omega-network experiments.
//
// Usage:
//
//	omegasim -exp table3            # Table 3 (discarding, uniform)
//	omegasim -exp table4            # Table 4 (blocking latencies)
//	omegasim -exp table5            # Table 5 (slot-count sweep)
//	omegasim -exp table6            # Table 6 (hot spot)
//	omegasim -exp figure3           # Figure 3 (latency vs throughput)
//	omegasim -exp modern            # 1988 vs 2026 sharing policies
//	omegasim -exp varlen            # variable-length extension
//	omegasim -exp async             # asynchronous event-driven extension
//	omegasim -exp async -packets 200000       # ~200k delivered packets/point
//	omegasim -exp run -kind damq -load 0.6 -protocol blocking  # one run
//	omegasim -exp run -kind dt:alpha=0.5 -shared -protocol discarding  # pooled switch
//	omegasim -exp run -inputs 1024 -workers 8                  # sharded 1024×1024
//	omegasim -exp run -checkpoint-every 500 -checkpoint-file run.ckpt  # crash-safe snapshots
//	omegasim -exp run -resume run.ckpt                         # continue after a kill
//
// -scale quick|full selects run length (full is what EXPERIMENTS.md
// records; quick is a fast smoke version). -workers parallelizes: for
// sweeps it fans points out across cores; for -exp run it shards the
// single network's stages across cores, stepping them in lock-step
// phases — either way the results are byte-identical at any count.
//
// With -exp run, -metrics <file> attaches an observer and writes its
// JSON snapshot (per-stage occupancy, per-queue depth, discard/block
// counters, latency histograms); -metrics-interval N adds a cumulative
// time series every N cycles. -check-metrics <file> validates a
// previously written snapshot and exits — the CI smoke check.
//
// -checkpoint-file <file> makes -exp run crash-safe: the simulation state
// is saved atomically every -checkpoint-every cycles (or only on
// interrupt when that is 0), and SIGINT/SIGTERM drain the current cycle
// and write a final checkpoint before exiting 130. -resume <file>
// continues such a run from exactly where it stopped; the resumed run's
// results are byte-identical to never having been interrupted, at any
// -workers count.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"damq"
	"damq/internal/checkpoint"
	"damq/internal/experiments"
	"damq/internal/plot"
)

func main() {
	exp := flag.String("exp", "table4",
		"experiment: table3|table4|table5|table6|figure3|modern|varlen|async|treesat|tail|switch4|radix|ablation|faults|run")
	svgPath := flag.String("svg", "", "figure3/modern: also write an SVG figure to this path")
	scaleName := flag.String("scale", "quick", "simulation scale: quick|full")
	kind := flag.String("kind", "damq", `run: buffer kind, optionally with sharing knobs ("dt:alpha=0.5,classes=4")`)
	shared := flag.Bool("shared", false, "run: pool all of a switch's input buffers into one shared storage group")
	load := flag.Float64("load", 0.5, "run: offered load")
	inputs := flag.Int("inputs", 0, "run: network size (ports per side, power of the radix; 0 = the paper's 64)")
	capacity := flag.Int("capacity", 4, "run: slots per input buffer")
	protocol := flag.String("protocol", "blocking", "run: blocking|discarding")
	policy := flag.String("policy", "smart", "run: smart|dumb arbitration")
	hot := flag.Float64("hot", 0, "run: hot-spot fraction (0 = uniform)")
	seed := flag.Uint64("seed", 1988, "run: PRNG seed")
	packets := flag.Int64("packets", 0, "async: size each point's measurement window to deliver ~this many packets (0 = -scale's cycle spans)")
	workers := flag.Int("workers", 0, "parallelism: concurrent simulations for sweeps, shard workers stepping the one network for -exp run (0 = GOMAXPROCS, 1 = serial); results are identical at any setting")
	metricsPath := flag.String("metrics", "", "run: attach an observer and write its JSON snapshot to this path")
	metricsInterval := flag.Int64("metrics-interval", 0, "run: record a cumulative time-series point every N cycles in the -metrics snapshot (0 = off)")
	checkMetrics := flag.String("check-metrics", "", "validate a -metrics JSON file and exit (CI smoke check)")
	faultsSpec := flag.String("faults", "", `run/faults: fault spec, e.g. "linktransient=1e-3,slotstuck=1e-5,seed=7" (see damq.ParseFaultSpec)`)
	ckptEvery := flag.Int64("checkpoint-every", 0, "run: save a checkpoint to -checkpoint-file after every N cycles (0 = only on interrupt)")
	ckptFile := flag.String("checkpoint-file", "", "run: checkpoint path, written atomically (temp file, fsync, rename) so a kill mid-save never corrupts it")
	resumePath := flag.String("resume", "", "run: resume from this checkpoint instead of starting fresh; topology, seed, progress, and fault schedule come from the file (-workers and -metrics still apply)")
	flag.Parse()
	workersSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "workers" {
			workersSet = true
		}
	})

	if *checkMetrics != "" {
		raw, err := os.ReadFile(*checkMetrics)
		orDie(err)
		orDie(damq.ValidateMetricsJSON(raw))
		fmt.Printf("%s: valid network metrics snapshot\n", *checkMetrics)
		return
	}

	sc := experiments.Quick
	switch *scaleName {
	case "quick":
	case "full":
		sc = experiments.Full
	default:
		fatal(fmt.Errorf("unknown scale %q", *scaleName))
	}
	sc.Seed = *seed
	sc.Workers = *workers

	// SIGINT/SIGTERM cancel the scale context: running sweeps drain their
	// in-flight points and return what they finished; a second signal
	// kills the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	sc.Ctx = ctx

	switch *exp {
	case "table3":
		res, err := experiments.Table3(sc)
		orDie(err)
		fmt.Print(res.Render())
	case "table4":
		rows, err := experiments.Table4(sc)
		orDie(err)
		fmt.Print(experiments.RenderLatencyRows(
			"Table 4: average latency (clocks) for given load, 4 slots/buffer, blocking, uniform", rows))
	case "table5":
		rows, err := experiments.Table5(sc)
		orDie(err)
		fmt.Print(experiments.RenderLatencyRows(
			"Table 5: average latency varying slots/buffer, blocking, uniform", rows))
	case "table6":
		rows, err := experiments.Table6(sc)
		orDie(err)
		fmt.Print(experiments.RenderTable6(rows))
	case "figure3":
		series, err := experiments.Figure3([]damq.BufferKind{damq.FIFO, damq.DAMQ}, 4, nil, sc)
		orDie(err)
		fmt.Print(experiments.RenderFigure3(series))
		if *svgPath != "" {
			svg := plot.SVG(series, plot.Options{
				Title: "Figure 3: FIFO vs DAMQ, 4 slots, uniform traffic, blocking",
			})
			orDie(os.WriteFile(*svgPath, []byte(svg), 0o644))
			fmt.Printf("\nSVG figure written to %s\n", *svgPath)
		}
	case "modern":
		series, err := experiments.Modern(nil, 4, nil, sc)
		orDie(err)
		fmt.Print(experiments.RenderModern(series))
		if *svgPath != "" {
			svg := plot.SVG(series, plot.Options{
				Title: "1988 vs 2026: DAMQ vs DT/FB/BSHARE, 4 slots, uniform traffic, discarding",
			})
			orDie(os.WriteFile(*svgPath, []byte(svg), 0o644))
			fmt.Printf("\nSVG figure written to %s\n", *svgPath)
		}
	case "ablation":
		conn, err := experiments.AblationConnectivity(sc)
		orDie(err)
		fmt.Print(experiments.RenderConnectivity(conn))
		fmt.Println()
		arb, err := experiments.AblationArbitration(sc)
		orDie(err)
		fmt.Print(experiments.RenderArbitration(arb))
		fmt.Println()
		burst, err := experiments.AblationBurstiness(sc)
		orDie(err)
		fmt.Print(experiments.RenderBurstiness(burst))
		fmt.Println()
		solver, err := experiments.AblationSolver(time.Now)
		orDie(err)
		fmt.Print(experiments.RenderSolver(solver))
	case "varlen":
		rows, err := experiments.VarLen(sc)
		orDie(err)
		fmt.Print(experiments.RenderVarLen(rows))
	case "async":
		rows, err := experiments.AsyncPackets(sc, *packets)
		orDie(err)
		fmt.Print(experiments.RenderAsync(rows))
	case "treesat":
		rows, err := experiments.TreeSaturation(sc)
		orDie(err)
		fmt.Print(experiments.RenderTreeSat(rows))
	case "tail":
		rows, err := experiments.TailLatency(0.45, sc)
		orDie(err)
		fmt.Print(experiments.RenderTail(rows))
	case "switch4":
		rows, err := experiments.Switch4x4(sc.Measure*20, sc.Seed, sc.Workers)
		orDie(err)
		fmt.Print(experiments.RenderSwitch4(rows))
	case "radix":
		rows, err := experiments.RadixSweep(sc)
		orDie(err)
		fmt.Print(experiments.RenderRadix(rows))
	case "faults":
		var rates []float64
		if *faultsSpec != "" {
			fc, err := damq.ParseFaultSpec(*faultsSpec)
			orDie(err)
			if fc.LinkTransientRate > 0 {
				rates = []float64{0, fc.LinkTransientRate}
			}
		}
		rows, err := experiments.FaultCurve(nil, rates, sc)
		orDie(err)
		fmt.Print(experiments.RenderFaultCurve(rows))
	case "run":
		runOne(ctx, *kind, *shared, *load, *inputs, *capacity, *protocol, *policy, *hot, sc, workersSet, *metricsPath, *metricsInterval, *faultsSpec,
			*ckptEvery, *ckptFile, *resumePath)
	default:
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
}

func runOne(ctx context.Context, kindName string, shared bool, load float64, inputs, capacity int, protoName, policyName string, hot float64, sc experiments.Scale, workersSet bool, metricsPath string, metricsInterval int64, faultsSpec string, ckptEvery int64, ckptFile, resumePath string) {
	if ckptEvery > 0 && ckptFile == "" {
		fatal(errors.New("-checkpoint-every requires -checkpoint-file"))
	}
	var observer *damq.Observer
	var opts []damq.Option
	if workersSet {
		// For a single run the workers knob means intra-run sharding: the
		// one network is stepped across cores, byte-identically.
		opts = append(opts, damq.WithWorkers(sc.Workers))
	}
	if metricsPath != "" {
		observer = damq.NewObserver()
		observer.SetInterval(metricsInterval)
		opts = append(opts, damq.WithObserver(observer))
	}

	var sim *damq.NetworkSim
	var faults damq.FaultConfig
	if resumePath != "" {
		// The checkpoint carries the topology, seed, progress, and fault
		// schedule; only the execution knobs above may be re-chosen.
		if faultsSpec != "" {
			fatal(errors.New("-faults cannot be combined with -resume: the fault schedule is part of the checkpoint"))
		}
		f, err := os.Open(resumePath)
		orDie(err)
		sim, err = damq.Restore(f, opts...)
		f.Close()
		orDie(err)
	} else {
		kind, sharing, err := damq.ParseBufferSpec(kindName)
		orDie(err)
		pol, err := damq.ParseArbitrationPolicy(policyName)
		orDie(err)
		proto, err := damq.ParseProtocol(protoName)
		orDie(err)
		spec := damq.TrafficSpec{Kind: damq.UniformTraffic, Load: load}
		if hot > 0 {
			spec = damq.TrafficSpec{Kind: damq.HotSpotTraffic, Load: load, HotFraction: hot}
		}
		if faultsSpec != "" {
			faults, err = damq.ParseFaultSpec(faultsSpec)
			orDie(err)
			opts = append(opts, damq.WithFaults(faults))
		}
		sim, err = damq.NewNetwork(damq.NetworkConfig{
			Inputs:        inputs,
			BufferKind:    kind,
			Capacity:      capacity,
			Policy:        pol,
			Protocol:      proto,
			Traffic:       spec,
			WarmupCycles:  sc.Warmup,
			MeasureCycles: sc.Measure,
			Seed:          sc.Seed,
			SharedPool:    shared,
			Sharing:       sharing,
		}, opts...)
		orDie(err)
	}
	defer sim.Close()

	var save func() error
	if ckptFile != "" {
		save = func() error { return checkpoint.WriteFile(ckptFile, sim.Checkpoint) }
	}
	targetCycles := sim.Config().MeasureCycles
	res, err := sim.RunCtxCheckpoint(ctx, ckptEvery, save)
	interrupted := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	if err != nil && !interrupted {
		orDie(err)
	}
	if observer != nil {
		raw, err := observer.Snapshot().Encode()
		orDie(err)
		orDie(os.WriteFile(metricsPath, raw, 0o644))
		fmt.Printf("metrics snapshot written to %s\n", metricsPath)
	}
	cfg := res.Config // the resolved config: flag-derived or checkpointed
	poolNote := ""
	if cfg.SharedPool {
		poolNote = ", switch-wide shared pool"
	}
	fmt.Printf("buffer              %v (%d slots%s)\n", cfg.BufferKind, cfg.Capacity, poolNote)
	fmt.Printf("protocol            %v, %v arbitration\n", cfg.Protocol, cfg.Policy)
	fmt.Printf("offered load        %.3f\n", res.OfferedLoad())
	fmt.Printf("throughput          %.3f packets/input/cycle\n", res.Throughput())
	fmt.Printf("latency (born)      %.1f clocks (±%.1f)\n", res.LatencyFromBorn.Mean(), res.LatencyFromBorn.CI95())
	fmt.Printf("latency (injected)  %.1f clocks\n", res.LatencyFromInjection.Mean())
	fmt.Printf("discarded           %.2f%% of generated\n", 100*res.DiscardFraction())
	fmt.Printf("mean occupancy      %.2f packets/switch\n", res.Occupancy.Mean())
	fmt.Printf("source backlog      %.1f packets\n", res.SourceBacklog.Mean())
	if faults.Enabled() || res.FaultedInNet > 0 {
		fmt.Printf("faulted in net      %.2f%% of injected (%d packets)\n", 100*res.FaultFraction(), res.FaultedInNet)
	}
	if ckptFile != "" && !interrupted && ckptEvery > 0 {
		fmt.Printf("checkpoints written to %s\n", ckptFile)
	}
	if interrupted {
		fmt.Printf("interrupted at %d/%d measured cycles; results above cover the completed prefix\n",
			res.Config.MeasureCycles, targetCycles)
		if ckptFile != "" {
			fmt.Printf("checkpoint saved to %s; continue with: omegasim -exp run -resume %s\n", ckptFile, ckptFile)
		}
		os.Exit(130)
	}
}

func orDie(err error) {
	if err == nil {
		return
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "omegasim: interrupted before the experiment completed")
		os.Exit(130)
	}
	fatal(err)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "omegasim:", err)
	os.Exit(1)
}
