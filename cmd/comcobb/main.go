// Command comcobb demonstrates the cycle/phase-accurate ComCoBB chip
// model: it pushes a packet through an idle chip and prints the Table-1
// event schedule showing virtual cut-through in four clock cycles.
//
// Usage:
//
//	comcobb              # 8-byte packet, full trace
//	comcobb -bytes 32    # longest packet
//	comcobb -busy        # destination port busy: packet is buffered
//	comcobb -faults "wirecorrupt=0.05,retries=4"  # inject wire faults; parity NACK + retransmit
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"damq"
)

func main() {
	nbytes := flag.Int("bytes", 8, "payload bytes (1..32)")
	busy := flag.Bool("busy", false, "pre-occupy the destination output so the packet is buffered, not cut through")
	faultsSpec := flag.String("faults", "", `fault spec, e.g. "wirecorrupt=0.05,retries=4,seed=7" (see damq.ParseFaultSpec)`)
	flag.Parse()

	if *nbytes < 1 || *nbytes > 32 {
		fmt.Fprintln(os.Stderr, "comcobb: -bytes must be 1..32")
		os.Exit(1)
	}

	var faults damq.FaultConfig
	if *faultsSpec != "" {
		var err error
		faults, err = damq.ParseFaultSpec(*faultsSpec)
		must(err)
	}

	trace := &damq.ChipTrace{}
	chip := damq.NewChip(damq.ChipConfig{Trace: trace}, damq.WithFaults(faults))
	// Circuits: input 0 header 0x01 -> output 1; input 2 header 0x05 ->
	// output 1 (the competing stream for -busy).
	must(chip.In(0).Router().Set(0x01, damq.Route{Out: 1, NewHeader: 0x02}))
	must(chip.In(2).Router().Set(0x05, damq.Route{Out: 1, NewHeader: 0x06}))

	payload := make([]byte, *nbytes)
	for i := range payload {
		payload[i] = byte(0xA0 + i)
	}

	// SIGINT/SIGTERM stop the tick loops at a clock boundary; the trace
	// collected so far is still printed, in the exit-130 partial-results
	// convention the other CLIs follow.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ticks := 0
	interrupted := false
	run := func(n int, tick func()) {
		for i := 0; i < n && !interrupted; i++ {
			if ctx.Err() != nil {
				interrupted = true
				return
			}
			tick()
			ticks++
		}
	}

	drv := damq.NewChipDriver(chip.InLink(0), damq.WithFaults(faults))
	if *busy {
		competing := damq.NewChipDriver(chip.InLink(2))
		competing.Queue(0x05, make([]byte, 32), 0)
		both := func() { competing.Tick(); drv.Tick(); chip.Tick() }
		// Let the competing packet win output 1 first.
		run(6, both)
		if !interrupted {
			drv.Queue(0x01, payload, 0)
		}
		run(120, both)
	} else {
		drv.Queue(0x01, payload, 0)
		run(*nbytes+40, func() { drv.Tick(); chip.Tick() })
	}
	// Under injected faults the driver may still be retransmitting; keep
	// ticking until it drains (bounded), then flush the chip pipeline.
	for i := 0; i < 10_000 && drv.Pending() > 0 && !interrupted; i++ {
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		drv.Tick()
		chip.Tick()
		ticks++
	}
	run(8, func() { drv.Tick(); chip.Tick() })

	fmt.Printf("ComCoBB chip trace (%d payload bytes%s):\n\n", *nbytes, busyNote(*busy))
	for _, e := range trace.Events {
		fmt.Println(" ", e)
	}

	in, ok1 := trace.Find("in[0]", "start bit detected; synchronizer armed")
	out, ok2 := trace.Find("out[1]", "start bit transmitted")
	if ok1 && ok2 {
		fmt.Printf("\nturn-around: %d clock cycles (paper Table 1: 4 for cut-through)\n", out.Cycle-in.Cycle)
	}
	for _, p := range chip.Delivered(1) {
		fmt.Printf("delivered at output 1: header %#02x, %d bytes\n", p.Header, len(p.Data))
	}
	if faults.Enabled() {
		st := chip.FaultStats()
		fmt.Printf("\nfault summary: %d bytes corrupted, %d NACKs, %d packets dropped at receiver, %d poisoned\n",
			st.Corrupted, st.Nacks, st.Dropped, st.Poisoned)
		fmt.Printf("driver recovery: %d retransmissions, %d given up\n", drv.Retries(), drv.GaveUp())
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "comcobb: interrupted after %d ticks; the trace above covers the completed prefix\n", ticks)
		os.Exit(130)
	}
}

func busyNote(b bool) string {
	if b {
		return ", destination output pre-occupied"
	}
	return ""
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "comcobb:", err)
		os.Exit(1)
	}
}
