// Command damqvet is the repo's design-rule checker: a dependency-free
// static analyzer (stdlib go/parser + go/types only) that enforces the
// simulator's determinism, phase-safety, and zero-allocation invariants
// at the source level — including the cross-function forms, via a
// whole-program call graph. See DESIGN.md, "Machine-checked invariants".
//
// Usage:
//
//	go run ./cmd/damqvet [-rules determinism,phase,taint,zeroalloc,structure,waiver] [-json] [packages]
//
// Package patterns accept ./..., dir/..., directories, and full import
// paths; the default is ./... from the enclosing module root. Findings
// print as file:line: rule-name: message (or as byte-stable JSON records
// with -json) and make the exit status 1; load or usage errors exit 2.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	rules := flag.String("rules", "", "comma-separated rule families to run: determinism, phase, taint, zeroalloc, structure, waiver (default all)")
	jsonOut := flag.Bool("json", false, "emit findings as JSON records instead of text")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: damqvet [-rules list] [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	os.Exit(run(*rules, *jsonOut, flag.Args(), os.Stdout, os.Stderr))
}

// jsonFinding is the -json record shape. Field order, the module-rooted
// forward-slash file path, and the sorted finding order together make
// the output byte-stable across machines and runs.
type jsonFinding struct {
	Rule  string   `json:"rule"`
	File  string   `json:"file"`
	Line  int      `json:"line"`
	Msg   string   `json:"msg"`
	Chain []string `json:"chain,omitempty"`
}

func run(rules string, jsonOut bool, patterns []string, out, errw io.Writer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	modRoot, err := findModuleRoot(".")
	if err != nil {
		fmt.Fprintln(errw, "damqvet:", err)
		return 2
	}
	loader, err := NewLoader(modRoot)
	if err != nil {
		fmt.Fprintln(errw, "damqvet:", err)
		return 2
	}
	var ruleList []string
	if rules != "" {
		for _, r := range strings.Split(rules, ",") {
			if r = strings.TrimSpace(r); r != "" {
				ruleList = append(ruleList, r)
			}
		}
	}
	checker, err := NewChecker(loader.Fset, ruleList)
	if err != nil {
		fmt.Fprintln(errw, "damqvet:", err)
		return 2
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintln(errw, "damqvet:", err)
		return 2
	}
	for _, path := range paths {
		p, err := loader.Load(path)
		if err != nil {
			fmt.Fprintln(errw, "damqvet:", err)
			return 2
		}
		checker.Add(p)
	}
	checker.Finish()

	cwd, _ := os.Getwd()
	relTo := func(base, name string) (string, bool) {
		if base == "" {
			return name, false
		}
		rel, err := filepath.Rel(base, name)
		if err != nil || strings.HasPrefix(rel, "..") {
			return name, false
		}
		return rel, true
	}
	findings := checker.Sorted()
	enc := json.NewEncoder(out)
	enc.SetEscapeHTML(false) // keep "->" chains readable in records
	for _, f := range findings {
		if jsonOut {
			name := f.Pos.Filename
			if rel, ok := relTo(modRoot, name); ok {
				name = rel
			}
			enc.Encode(jsonFinding{
				Rule:  f.Rule,
				File:  filepath.ToSlash(name),
				Line:  f.Pos.Line,
				Msg:   f.Msg,
				Chain: f.Chain,
			})
			continue
		}
		name := f.Pos.Filename
		if rel, ok := relTo(cwd, name); ok {
			name = rel
		}
		fmt.Fprintf(out, "%s:%d: %s: %s\n", name, f.Pos.Line, f.Rule, f.Msg)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
