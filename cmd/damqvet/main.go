// Command damqvet is the repo's design-rule checker: a dependency-free
// static analyzer (stdlib go/parser + go/types only) that enforces the
// simulator's determinism and zero-allocation invariants at the source
// level. See DESIGN.md, "Machine-checked invariants".
//
// Usage:
//
//	go run ./cmd/damqvet [-rules determinism,zeroalloc,structure] [packages]
//
// Package patterns accept ./..., dir/..., directories, and full import
// paths; the default is ./... from the enclosing module root. Findings
// print as file:line: rule-name: message and make the exit status 1;
// load or usage errors exit 2.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	rules := flag.String("rules", "", "comma-separated rule families to run: determinism, zeroalloc, structure (default all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: damqvet [-rules list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	os.Exit(run(*rules, flag.Args(), os.Stdout, os.Stderr))
}

func run(rules string, patterns []string, out, errw io.Writer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	modRoot, err := findModuleRoot(".")
	if err != nil {
		fmt.Fprintln(errw, "damqvet:", err)
		return 2
	}
	loader, err := NewLoader(modRoot)
	if err != nil {
		fmt.Fprintln(errw, "damqvet:", err)
		return 2
	}
	var ruleList []string
	if rules != "" {
		for _, r := range strings.Split(rules, ",") {
			if r = strings.TrimSpace(r); r != "" {
				ruleList = append(ruleList, r)
			}
		}
	}
	checker, err := NewChecker(loader.Fset, ruleList)
	if err != nil {
		fmt.Fprintln(errw, "damqvet:", err)
		return 2
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintln(errw, "damqvet:", err)
		return 2
	}
	for _, path := range paths {
		p, err := loader.Load(path)
		if err != nil {
			fmt.Fprintln(errw, "damqvet:", err)
			return 2
		}
		checker.Check(p)
	}
	cwd, _ := os.Getwd()
	findings := checker.Sorted()
	for _, f := range findings {
		name := f.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Fprintf(out, "%s:%d: %s: %s\n", name, f.Pos.Line, f.Rule, f.Msg)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
