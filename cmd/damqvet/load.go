package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package bundles everything the rule passes need to know about one
// type-checked package.
type Package struct {
	Path  string // import path, e.g. "damq/internal/netsim"
	Dir   string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	fset  *token.FileSet
}

// Loader parses and type-checks the packages of one module using only the
// standard library: module-internal imports are resolved from source
// relative to the module root, and everything else (the standard library)
// is delegated to go/importer's source importer. This keeps damqvet free
// of external dependencies — go.mod stays at zero requires.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string
	ModPath string
	std     types.Importer
	byPath  map[string]*Package
	loading map[string]bool
}

// NewLoader reads modRoot/go.mod for the module path and prepares a
// loader rooted there.
func NewLoader(modRoot string) (*Loader, error) {
	abs, err := filepath.Abs(modRoot)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModRoot: abs,
		ModPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		byPath:  map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("%s: no module declaration", gomod)
}

// Import implements types.Importer: module-internal paths load from
// source, "unsafe" maps to the builtin package, and everything else goes
// through the standard-library source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}

// Load parses and type-checks the module package with the given import
// path (memoized).
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.byPath[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
	dir := filepath.Join(l.ModRoot, filepath.FromSlash(rel))
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no non-test Go files", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Pkg: pkg, Info: info, fset: l.Fset}
	l.byPath[path] = p
	return p, nil
}

// parseDir parses every non-test Go file of dir with comments attached
// (the rule passes read annotation comments).
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Expand resolves package patterns to sorted import paths. Supported
// forms: "./...", "dir/...", a directory path, or a full import path of
// this module. testdata, hidden, and nested-module directories are
// skipped, mirroring the go tool.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, pat := range patterns {
		if strings.HasPrefix(pat, l.ModPath) && !strings.Contains(pat, "...") {
			add(pat)
			continue
		}
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		if !recursive {
			path, err := l.dirImportPath(abs)
			if err != nil {
				return nil, err
			}
			add(path)
			continue
		}
		if err := l.walk(abs, add); err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

// dirImportPath maps an absolute directory inside the module to its
// import path.
func (l *Loader) dirImportPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("%s is outside module %s", dir, l.ModRoot)
	}
	if rel == "." {
		return l.ModPath, nil
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// walk adds every package directory under root that contains at least one
// non-test Go file.
func (l *Loader) walk(root string, add func(string)) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if path != root && path != l.ModRoot {
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") &&
				!strings.HasPrefix(n, ".") && !strings.HasPrefix(n, "_") {
				p, err := l.dirImportPath(path)
				if err != nil {
					return err
				}
				add(p)
				break
			}
		}
		return nil
	})
}

// findModuleRoot walks upward from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}
