package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// determinism enforces the byte-identical-output invariant inside the
// simulation/experiment packages: no map-order-dependent iteration, no
// wall-clock reads, no process-global randomness, and no ad-hoc
// goroutines (concurrency is routed through internal/parallel, which
// merges results in deterministic order). The cross-function halves of
// the invariant live in the interprocedural families: phase safety in
// shard.go, laundered nondeterminism in taint.go.
func (c *Checker) determinism(p *Package) {
	if !c.isSimPackage(p.Path) {
		return
	}
	par := isParallelPackage(p.Path)
	for _, f := range p.Files {
		ann := c.annots[f]
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				c.report(imp.Pos(), ruleDeterminism,
					"simulation package imports %s (process-global randomness); thread a seeded *rng.Source instead", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.GoStmt:
				if !par {
					c.report(x.Pos(), ruleDeterminism,
						"bare go statement in simulation package; route concurrency through internal/parallel")
				}
			case *ast.CallExpr:
				if calleeFromPkg(p.Info, x, "time", "Now") {
					c.report(x.Pos(), ruleDeterminism,
						"time.Now in simulation package; inject a clock so wall-clock readings cannot leak into results")
				} else if calleeFromPkg(p.Info, x, "time", "Since") {
					c.report(x.Pos(), ruleDeterminism,
						"time.Since in simulation package; inject a clock so wall-clock readings cannot leak into results")
				}
			case *ast.BlockStmt:
				c.checkMapRanges(p, ann, x.List)
			case *ast.CaseClause:
				c.checkMapRanges(p, ann, x.Body)
			case *ast.CommClause:
				c.checkMapRanges(p, ann, x.Body)
			}
			return true
		})
	}
}

// checkMapRanges flags range-over-map statements in one statement list
// unless the loop is provably order-insensitive, feeds a sorted key
// slice, or carries a // damqvet:ordered waiver. The list is needed (not
// just the statement) so the keys-sorted pattern can look at later
// siblings for the sort call. The waiver is consulted only after the
// structural outs, so a waiver on a loop the rule would have accepted
// anyway earns no suppression credit and the audit reports it as stale.
func (c *Checker) checkMapRanges(p *Package, ann *fileAnnots, list []ast.Stmt) {
	for i, st := range list {
		for {
			ls, ok := st.(*ast.LabeledStmt)
			if !ok {
				break
			}
			st = ls.Stmt
		}
		rs, ok := st.(*ast.RangeStmt)
		if !ok {
			continue
		}
		tv, ok := p.Info.Types[rs.X]
		if !ok {
			continue
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			continue
		}
		waiver := ann.markerFor(markOrdered, c.Fset.Position(rs.Pos()).Line)
		if orderInsensitiveBody(rs.Body) {
			continue
		}
		if keysSortedAfter(p.Info, rs, list[i+1:]) {
			continue
		}
		if waiver != nil {
			waiver.suppressed = true
			continue
		}
		c.report(rs.Pos(), ruleDeterminism,
			"range over map: iteration order is nondeterministic; sort the keys first, make the body commutative, or waive with // damqvet:ordered")
	}
}

// orderInsensitiveBody reports whether every top-level statement of the
// loop body is a commutative accumulation (x++, x--, or a compound
// assignment whose operator is order-independent: += *= |= &= ^=).
// Anything else — appends, plain assignment, calls, nested control flow —
// may observe iteration order and disqualifies the loop.
func orderInsensitiveBody(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	for _, st := range body.List {
		switch s := st.(type) {
		case *ast.IncDecStmt:
			// commutative
		case *ast.AssignStmt:
			switch s.Tok {
			case token.ADD_ASSIGN, token.MUL_ASSIGN, token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
			default:
				return false
			}
		default:
			return false
		}
	}
	return true
}

// keysSortedAfter recognizes the canonical deterministic-iteration idiom:
//
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys)            // or slices.Sort(keys), sort.Slice(keys, ...)
//
// The loop body must be exactly the self-append, and some later sibling
// statement must pass the same slice to a sort or slices function.
func keysSortedAfter(info *types.Info, rs *ast.RangeStmt, rest []ast.Stmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	arg0, ok := call.Args[0].(*ast.Ident)
	obj := objOf(info, lhs)
	if !ok || obj == nil || objOf(info, arg0) != obj {
		return false
	}
	for _, st := range rest {
		sorted := false
		ast.Inspect(st, func(n ast.Node) bool {
			sc, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := sc.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pn := pkgNameOf(info, sel.X)
			if pn == nil {
				return true
			}
			if ip := pn.Imported().Path(); ip != "sort" && ip != "slices" {
				return true
			}
			for _, a := range sc.Args {
				if id, ok := a.(*ast.Ident); ok && objOf(info, id) == obj {
					sorted = true
				}
			}
			return true
		})
		if sorted {
			return true
		}
	}
	return false
}
