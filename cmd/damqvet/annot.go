package main

import (
	"go/ast"
	"go/token"
	"strings"
)

// The three source annotations damqvet understands:
//
//	// damqvet:hotpath — this function (or function literal) is on a
//	0-allocs/op benchmark path; the zeroalloc rules apply to its body.
//
//	// damqvet:ordered — this range-over-map has been audited: its
//	result does not depend on iteration order. The determinism rule
//	accepts the loop without further analysis.
//
//	// damqvet:sharded — this shard method has been audited: the
//	coordinator-state writes in its body are barrier-owned (they run in
//	a serial section, or every shard writes a disjoint slot). The
//	sharded-determinism rule accepts the function without further
//	analysis.
//
// A marker applies to the node that starts on the same line (trailing
// comment) or on the line immediately below the marker; for function
// declarations, a marker anywhere in the doc comment also counts.
const (
	markHotpath = "damqvet:hotpath"
	markOrdered = "damqvet:ordered"
	markSharded = "damqvet:sharded"
)

// fileAnnots records, per marker kind, the source lines carrying one.
type fileAnnots struct {
	hotpath map[int]bool
	ordered map[int]bool
	sharded map[int]bool
}

// collectAnnots scans a file's comments for damqvet markers. A marker
// must be the first token of its comment; trailing justification text
// ("// damqvet:ordered keys feed a histogram") is allowed and encouraged.
func collectAnnots(fset *token.FileSet, f *ast.File) fileAnnots {
	a := fileAnnots{hotpath: map[int]bool{}, ordered: map[int]bool{}, sharded: map[int]bool{}}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
			line := fset.Position(c.Pos()).Line
			switch {
			case isMarker(text, markHotpath):
				a.hotpath[line] = true
			case isMarker(text, markOrdered):
				a.ordered[line] = true
			case isMarker(text, markSharded):
				a.sharded[line] = true
			}
		}
	}
	return a
}

// isMarker reports whether text begins with the marker as a whole token.
func isMarker(text, marker string) bool {
	if !strings.HasPrefix(text, marker) {
		return false
	}
	rest := text[len(marker):]
	return rest == "" || rest[0] == ' ' || rest[0] == '\t'
}

// appliesTo reports whether a marker recorded in marks governs a node
// starting at nodeLine.
func appliesTo(marks map[int]bool, nodeLine int) bool {
	return marks[nodeLine] || marks[nodeLine-1]
}

// docHasMarker reports whether a doc comment group contains the marker.
func docHasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
		if isMarker(text, marker) {
			return true
		}
	}
	return false
}

// isHotpathFunc reports whether a function declaration is annotated as a
// hot path (doc marker, or marker on/above its first line).
func isHotpathFunc(ann fileAnnots, fset *token.FileSet, decl *ast.FuncDecl) bool {
	if docHasMarker(decl.Doc, markHotpath) {
		return true
	}
	return appliesTo(ann.hotpath, fset.Position(decl.Pos()).Line)
}

// isHotpathLit reports whether a function literal is annotated as a hot
// path via a marker on its own line or the line above (the annotated
// anonymous function case).
func isHotpathLit(ann fileAnnots, fset *token.FileSet, lit *ast.FuncLit) bool {
	return appliesTo(ann.hotpath, fset.Position(lit.Pos()).Line)
}

// isOrderedWaiver reports whether a range statement carries the ordered
// waiver.
func isOrderedWaiver(ann fileAnnots, fset *token.FileSet, pos token.Pos) bool {
	return appliesTo(ann.ordered, fset.Position(pos).Line)
}

// isShardedFunc reports whether a function declaration carries the
// sharded waiver (doc marker, or marker on/above its first line).
func isShardedFunc(ann fileAnnots, fset *token.FileSet, decl *ast.FuncDecl) bool {
	if docHasMarker(decl.Doc, markSharded) {
		return true
	}
	return appliesTo(ann.sharded, fset.Position(decl.Pos()).Line)
}
