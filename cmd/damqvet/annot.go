package main

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// The source annotations damqvet understands. Each one is either an
// obligation marker or a waiver:
//
//   - "hotpath" marks a function (or function literal) as being on a
//     0-allocs/op benchmark path. The zeroalloc rules apply to its body
//     and, transitively, to every function it can reach through the
//     static call graph.
//
//   - "ordered" waives one range-over-map after an audit: its result
//     does not depend on iteration order. The determinism rule accepts
//     the loop, and the taint pass stops treating the loop variables as
//     an order-taint source.
//
//   - "sharded" waives one shard method after an audit: the
//     coordinator-state writes in (or reachable from) its body are
//     barrier-owned. The phase-safety rule accepts the function.
//
//   - "coldcall" waives one call line inside a hot-reachable body after
//     an audit: the callee allocates only on an amortized or aborting
//     path (pool refill, ring growth). The transitive zeroalloc pass
//     does not descend through calls on that line and suppresses alloc
//     findings on it.
//
// A marker applies to the node that starts on the same line (trailing
// comment) or on the line immediately below the marker; for function
// declarations, a marker anywhere in the doc comment also counts. The
// waiver-audit family cross-checks the inventory: a marker that attaches
// to nothing, a waiver that suppresses nothing, and an unknown
// "damqvet:" spelling are all findings, so annotations cannot rot.
const (
	markHotpath  = "hotpath"
	markOrdered  = "ordered"
	markSharded  = "sharded"
	markColdcall = "coldcall"
)

const markPrefix = "damqvet:"

// knownMarks lists every recognized marker kind.
var knownMarks = []string{markHotpath, markOrdered, markSharded, markColdcall}

// marker is one damqvet annotation comment, with the audit state the
// waiver family reports on: whether any rule pass attached it to a node,
// and whether it suppressed at least one would-be finding.
type marker struct {
	kind       string // one of knownMarks, or the raw unknown spelling
	known      bool
	pos        token.Pos
	line       int
	attached   bool
	suppressed bool
}

// fileAnnots indexes one file's markers by source line.
type fileAnnots struct {
	byLine map[int]*marker
	all    []*marker
}

// collectAnnots scans a file's comments for damqvet markers. A marker
// must be the first token of its comment; trailing justification text
// ("// damqvet:ordered keys feed a histogram") is allowed and
// encouraged. Unknown kinds are collected too — the waiver audit turns
// them into findings instead of silently ignoring a typo.
func collectAnnots(fset *token.FileSet, f *ast.File) *fileAnnots {
	a := &fileAnnots{byLine: map[int]*marker{}}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
			rest, ok := strings.CutPrefix(text, markPrefix)
			if !ok {
				continue
			}
			kind := rest
			if i := strings.IndexAny(rest, " \t"); i >= 0 {
				kind = rest[:i]
			}
			m := &marker{kind: kind, pos: c.Pos(), line: fset.Position(c.Pos()).Line}
			for _, k := range knownMarks {
				if kind == k {
					m.known = true
				}
			}
			a.byLine[m.line] = m
			a.all = append(a.all, m)
		}
	}
	return a
}

// markerFor returns the marker of the given kind governing a node that
// starts at nodeLine — same line (trailing comment) or the line
// immediately above — marking it attached. Nil when the node carries no
// such marker.
func (a *fileAnnots) markerFor(kind string, nodeLine int) *marker {
	for _, line := range [2]int{nodeLine, nodeLine - 1} {
		if m := a.byLine[line]; m != nil && m.kind == kind {
			m.attached = true
			return m
		}
	}
	return nil
}

// markerInDoc returns the marker of the given kind inside a doc comment
// group, marking it attached. Nil when the group carries none.
func (a *fileAnnots) markerInDoc(fset *token.FileSet, doc *ast.CommentGroup, kind string) *marker {
	if doc == nil {
		return nil
	}
	for _, c := range doc.List {
		line := fset.Position(c.Pos()).Line
		if m := a.byLine[line]; m != nil && m.kind == kind {
			m.attached = true
			return m
		}
	}
	return nil
}

// funcMarker returns the marker of the given kind on a function
// declaration: in its doc comment, or on/above its first line.
func (a *fileAnnots) funcMarker(fset *token.FileSet, fd *ast.FuncDecl, kind string) *marker {
	if m := a.markerInDoc(fset, fd.Doc, kind); m != nil {
		return m
	}
	return a.markerFor(kind, fset.Position(fd.Pos()).Line)
}

// auditWaivers reports the waiver-family findings over every collected
// marker: unknown spellings, markers that attached to nothing, and
// waivers that suppressed nothing. Obligation markers (hotpath) only
// need to attach; the waiver kinds must also have suppressed at least
// one would-be finding, or they are stale and the audit fails them so
// the inventory cannot rot.
func (c *Checker) auditWaivers() {
	var all []*marker
	for _, a := range c.annots {
		all = append(all, a.all...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].pos < all[j].pos })
	for _, m := range all {
		switch {
		case !m.known:
			c.report(m.pos, ruleWaiver,
				"unknown annotation %s%s (known: %s)", markPrefix, m.kind, strings.Join(knownMarks, ", "))
		case !m.attached:
			c.report(m.pos, ruleWaiver,
				"%s%s attaches to nothing; move it onto (or directly above) the construct it governs, or delete it", markPrefix, m.kind)
		case m.kind != markHotpath && !m.suppressed:
			c.report(m.pos, ruleWaiver,
				"stale %s%s waiver: it suppresses no finding; delete it or re-audit the code below", markPrefix, m.kind)
		}
	}
}
