package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// structure enforces explicit randomness plumbing in the simulation
// packages: an exported entry point may only construct an RNG from a
// seed its caller supplied (directly or via a config struct), and no
// package may hold a package-level *rng.Source. Implicit randomness is
// how irreproducible experiment rows happen.
func (c *Checker) structure(p *Package) {
	if !c.isSimPackage(p.Path) {
		return
	}
	scope := p.Pkg.Scope()
	for _, name := range scope.Names() {
		v, ok := scope.Lookup(name).(*types.Var)
		if !ok {
			continue
		}
		if isRNGSource(v.Type()) {
			c.report(v.Pos(), ruleStructure,
				"package-level RNG source %s; thread a *rng.Source or seed through the entry points instead", name)
		}
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			c.checkEntrySeeds(p, fd)
		}
	}
}

// checkEntrySeeds flags rng.New calls inside an exported function whose
// seed argument cannot be traced back to the caller (receiver, any
// parameter — including parameters of enclosing or nested function
// literals — or a value derived from one by assignment).
func (c *Checker) checkEntrySeeds(p *Package, fd *ast.FuncDecl) {
	info := p.Info
	tainted := map[types.Object]bool{}
	paramObjects(info, fd.Recv, fd.Type, tainted)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			paramObjects(info, nil, lit.Type, tainted)
		}
		return true
	})
	propagateTaint(info, fd.Body, tainted)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !calleeFromPkg(info, call, "rng", "New") {
			return true
		}
		if len(call.Args) == 0 || !refsAnyOf(info, call.Args[0], tainted) {
			c.report(call.Pos(), ruleStructure,
				"exported entry point %s seeds an RNG from a value the caller did not supply; accept an explicit seed or *rng.Source", fd.Name.Name)
		}
		return true
	})
}

// propagateTaint extends tainted with every variable assigned from an
// expression that references a tainted object, to a fixpoint:
// `s := cfg.Seed ^ salt` keeps s caller-derived.
func propagateTaint(info *types.Info, body *ast.BlockStmt, tainted map[types.Object]bool) {
	for {
		changed := false
		mark := func(id *ast.Ident) {
			if id == nil || id.Name == "_" {
				return
			}
			if o := objOf(info, id); o != nil && !tainted[o] {
				tainted[o] = true
				changed = true
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				if len(x.Lhs) == len(x.Rhs) {
					for i, lhs := range x.Lhs {
						if id, ok := lhs.(*ast.Ident); ok && refsAnyOf(info, x.Rhs[i], tainted) {
							mark(id)
						}
					}
				} else if len(x.Rhs) == 1 && refsAnyOf(info, x.Rhs[0], tainted) {
					for _, lhs := range x.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							mark(id)
						}
					}
				}
			case *ast.ValueSpec:
				for i, id := range x.Names {
					if i < len(x.Values) && refsAnyOf(info, x.Values[i], tainted) {
						mark(id)
					}
				}
			}
			return true
		})
		if !changed {
			return
		}
	}
}

// isRNGSource matches *rng.Source for any package whose import path is
// "rng" or ends in "/rng" (the repo's internal/rng and the fixtures'
// local mini-package).
func isRNGSource(t types.Type) bool {
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Source" || obj.Pkg() == nil {
		return false
	}
	ip := obj.Pkg().Path()
	return ip == "rng" || strings.HasSuffix(ip, "/rng")
}
